GO ?= go

# Hot-path benchmark selection shared by `bench` and the A/B harness.
BENCH_RE := BenchmarkHotPath|BenchmarkTaintMap$$|BenchmarkWireCodec|BenchmarkTaintCombine

.PHONY: build test race race-taintmap vet lint check ci chaos bench bench-taintmap bench-resilience bench-cleanpath fuzz fuzz-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The concurrency-heavy taint map suite under the race detector; part of
# `race` too, but callable alone for a quick pre-commit signal.
race-taintmap:
	$(GO) test -race ./internal/taintmap/...

vet:
	$(GO) vet ./...

# distavet: the in-tree static-analysis suite (internal/analysis) that
# enforces the taint-soundness invariants — shadowdrop, labelcopy,
# errcmp, lockorder, mustcheck. Exits non-zero on any finding; silence
# a deliberate exception with `//lint:ignore distavet/<name> reason`.
lint:
	$(GO) run ./cmd/distavet ./...

# Chaos suite under the race detector: kill/restart the Taint Map server
# mid-workload, random stream resets — every taint must survive with a
# correct, stable resolution. The instrument scenario additionally pins
# the clean-path bypass: an outage must never downgrade a tainted buffer
# onto the passthrough frame. Part of `check`; callable alone when
# iterating on the resilience layer.
chaos:
	$(GO) test -race -run 'TestChaos' -count=1 ./internal/taintmap ./internal/instrument

# Tier-1 gate: everything CI runs.
check: vet lint build test race chaos fuzz-smoke bench-cleanpath

# Alias for CI pipelines: the full gate, spelled out in build order.
ci: build vet lint test race fuzz-smoke chaos bench-cleanpath

# Run the hot-path microbenchmarks and refresh BENCH_1.json. Medians of
# -count=3 repetitions; seed baselines are embedded in cmd/benchjson.
bench:
	$(GO) test -run=NONE -bench='$(BENCH_RE)' -benchmem -benchtime=1s -count=3 . | tee bench_hotpath.txt
	$(GO) run ./cmd/benchjson -in bench_hotpath.txt -out BENCH_1.json

# Run the concurrent Taint Map service benchmarks (multiplexed client vs
# the stop-and-wait baseline, plus single-client untagged latency) and
# refresh BENCH_2.json. Medians of -count=5 repetitions: the shared box
# is noisy, and the headline criterion is an in-run ratio, so extra
# repetitions buy stability where it matters.
bench-taintmap:
	$(GO) test -run=NONE -bench=BenchmarkTaintMapConcurrent -benchmem -benchtime=1s -count=5 . | tee bench_taintmap.txt
	$(GO) run ./cmd/benchjson -in bench_taintmap.txt -out BENCH_2.json

# Measure the resilience wrapper's fault-free overhead: ResilientClient
# vs the bare multiplexed client on the same mixed workload, refreshed
# into BENCH_3.json. The acceptance criterion is an in-run ratio
# (Resilient8 <= 1.10x Mux8), so host drift cancels out.
bench-resilience:
	$(GO) test -run=NONE -bench='BenchmarkTaintMapConcurrent/(Mux8|Resilient8)$$' -benchmem -benchtime=1s -count=5 . | tee bench_resilience.txt
	$(GO) run ./cmd/benchjson -in bench_resilience.txt -out BENCH_3.json

# Clean-path bypass benchmarks, refreshed into BENCH_5.json. The
# headline criteria are in-run ratios (passthrough >= 5x the
# always-encode path, clean write <= 1.5x the raw netsim copy floor,
# 0 allocs/op on the clean write) plus the tainted exchange held to the
# seed baseline; -benchmem is required for the pool-leak check.
bench-cleanpath:
	$(GO) test -run=NONE -bench='BenchmarkCleanPath|BenchmarkHotPath/MixedStreamExchange' -benchmem -benchtime=0.5s -count=3 . | tee bench_cleanpath.txt
	$(GO) run ./cmd/benchjson -in bench_cleanpath.txt -out BENCH_5.json

# Short fuzz pass over the wire round-trip property (CI smoke; the
# seeded corpus also runs as part of plain `go test`).
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzStreamRoundTrip -fuzztime=20s ./internal/core/wire

# ~10s per target over the taint map protocol surface: the server-side
# frame parser (both protocol generations) and the blob/id list codecs.
# `go test` accepts one -fuzz pattern per invocation, hence two runs.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzServeConn -fuzztime=10s ./internal/taintmap
	$(GO) test -run=NONE -fuzz=FuzzParseBlobList -fuzztime=10s ./internal/taintmap
