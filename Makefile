GO ?= go

# Hot-path benchmark selection shared by `bench` and the A/B harness.
BENCH_RE := BenchmarkHotPath|BenchmarkTaintMap$$|BenchmarkWireCodec|BenchmarkTaintCombine

.PHONY: build test race vet check bench fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Tier-1 gate: everything CI runs.
check: vet build test race

# Run the hot-path microbenchmarks and refresh BENCH_1.json. Medians of
# -count=3 repetitions; seed baselines are embedded in cmd/benchjson.
bench:
	$(GO) test -run=NONE -bench='$(BENCH_RE)' -benchmem -benchtime=1s -count=3 . | tee bench_hotpath.txt
	$(GO) run ./cmd/benchjson -in bench_hotpath.txt -out BENCH_1.json

# Short fuzz pass over the wire round-trip property (CI smoke; the
# seeded corpus also runs as part of plain `go test`).
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzStreamRoundTrip -fuzztime=20s ./internal/core/wire
