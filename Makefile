GO ?= go

# Hot-path benchmark selection shared by `bench` and the A/B harness.
BENCH_RE := BenchmarkHotPath|BenchmarkTaintMap$$|BenchmarkWireCodec|BenchmarkTaintCombine

.PHONY: build test race race-taintmap vet lint check ci chaos bench bench-hotpath bench-taintmap bench-resilience bench-distavet bench-cleanpath bench-cluster bench-grayfail bench-load soak-load fuzz fuzz-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The concurrency-heavy taint map suite under the race detector; part of
# `race` too, but callable alone for a quick pre-commit signal.
race-taintmap:
	$(GO) test -race ./internal/taintmap/...

vet:
	$(GO) vet ./...

# distavet: the in-tree static-analysis suite (internal/analysis) that
# enforces the taint-soundness invariants — shadowdrop, labelcopy,
# errcmp, lockorder, mustcheck, idbits, tierencode, taintflow,
# deadsuppress. Exits non-zero on any finding; silence a deliberate
# exception with `//lint:ignore distavet/<name> reason`. The -facts
# cache makes warm re-runs replay unchanged packages (keyed by content
# hash of the package, its import closure and the analyzer set).
lint:
	$(GO) run ./cmd/distavet -facts .distavet-facts ./...

# Chaos suite under the race detector: kill/restart the Taint Map server
# mid-workload, random stream resets — every taint must survive with a
# correct, stable resolution. The instrument scenario additionally pins
# the clean-path bypass: an outage must never downgrade a tainted buffer
# onto the passthrough frame. Part of `check`; callable alone when
# iterating on the resilience layer.
chaos:
	$(GO) test -race -run 'TestChaos' -count=1 ./internal/taintmap ./internal/instrument

# Tier-1 gate: everything CI runs.
check: vet lint build test race chaos soak-load fuzz-smoke bench-cleanpath bench-cluster bench-grayfail bench-distavet bench-load

# Alias for CI pipelines: the full gate, spelled out in build order.
ci: build vet lint test race fuzz-smoke chaos soak-load bench-cleanpath bench-cluster bench-grayfail bench-distavet bench-load

# Regenerate every benchmark artifact (BENCH_1..10) in one pass.
bench: bench-hotpath bench-taintmap bench-resilience bench-distavet bench-cleanpath bench-cluster bench-grayfail bench-load

# Run the hot-path microbenchmarks and refresh BENCH_1.json. Medians of
# -count=3 repetitions; seed baselines are embedded in cmd/benchjson.
bench-hotpath:
	$(GO) test -run=NONE -bench='$(BENCH_RE)' -benchmem -benchtime=1s -count=3 . | tee bench_hotpath.txt
	$(GO) run ./cmd/benchjson -in bench_hotpath.txt -out BENCH_1.json

# Run the concurrent Taint Map service benchmarks (multiplexed client vs
# the stop-and-wait baseline, plus single-client untagged latency) and
# refresh BENCH_2.json. Medians of -count=5 repetitions: the shared box
# is noisy, and the headline criterion is an in-run ratio, so extra
# repetitions buy stability where it matters.
bench-taintmap:
	$(GO) test -run=NONE -bench=BenchmarkTaintMapConcurrent -benchmem -benchtime=1s -count=5 . | tee bench_taintmap.txt
	$(GO) run ./cmd/benchjson -in bench_taintmap.txt -out BENCH_2.json

# Measure the resilience wrapper's fault-free overhead: ResilientClient
# vs the bare multiplexed client on the same mixed workload, refreshed
# into BENCH_3.json. The acceptance criterion is an in-run ratio
# (Resilient8 <= 1.10x Mux8), so host drift cancels out.
bench-resilience:
	$(GO) test -run=NONE -bench='BenchmarkTaintMapConcurrent/(Mux8|Resilient8)$$' -benchmem -benchtime=1s -count=5 . | tee bench_resilience.txt
	$(GO) run ./cmd/benchjson -in bench_resilience.txt -out BENCH_3.json

# Benchmark the distavet suite itself into BENCH_9.json: the full
# nine-analyzer suite (interprocedural index, summary fixpoint,
# taintflow/deadsuppress included) vs the original five-analyzer core
# over the same pre-loaded module, plus the warm fact-cache replay.
# Both criteria are in-run ratios: Suite <= 1.5x Core (the summary
# engine rides one shared index build) and SuiteWarm <= 0.35x Suite
# (a warm cache must actually skip re-analysis, not just re-verify).
# BENCH_4.json remains frozen as the pre-interprocedural artifact.
bench-distavet:
	$(GO) test -run=NONE -bench=BenchmarkDistavet -benchtime=1s -count=3 . | tee bench_distavet.txt
	$(GO) run ./cmd/benchjson -in bench_distavet.txt -out BENCH_9.json

# Clean-path bypass benchmarks, refreshed into BENCH_5.json, plus the
# adaptive tier suite into BENCH_7.json. The BENCH_5 headline criteria
# are in-run ratios (passthrough >= 5x the always-encode path, clean
# write <= 1.5x the raw netsim copy floor, 0 allocs/op on the clean
# write) plus the tainted exchange held to the seed baseline; -benchmem
# is required for the pool-leak check. The BENCH_7 criteria are all
# in-run ratios over the adaptive endpoint pair: uniform <= 1.3x and
# sparse <= 1.5x of the clean floor, clean and dense each <= 1.05x of
# the static PR 5 paths, and the flapping adversary <= 1.10x of the
# static group encoder (the hysteresis check). The dense and flapping
# pairs are held to tight bounds on GC-heavy multi-ms/op workloads, so
# they get the same treatment as the cluster Mux8/Cluster8 pair: each
# side in its own `go test` process (first-in-process, so heap age and
# GC pacing land evenly) at a fixed iteration count, interleaved five
# times so host drift cancels in the medians.
bench-cleanpath:
	$(GO) test -run=NONE -bench='BenchmarkCleanPath|BenchmarkHotPath/MixedStreamExchange' -benchmem -benchtime=0.5s -count=3 . | tee bench_cleanpath.txt
	$(GO) run ./cmd/benchjson -in bench_cleanpath.txt -out BENCH_5.json
	$(GO) test -run=NONE -bench='BenchmarkAdaptivePath/(CleanExchange|StaticCleanExchange|UniformExchange|SparseExchange)$$' -benchmem -benchtime=0.5s -count=5 . | tee bench_adaptive.txt
	for i in 1 2 3 4 5; do \
		$(GO) test -run=NONE -bench='BenchmarkAdaptivePath/DenseExchange$$' -benchmem -benchtime=100x -count=1 . || exit 1; \
		$(GO) test -run=NONE -bench='BenchmarkAdaptivePath/StaticGroupExchange$$' -benchmem -benchtime=100x -count=1 . || exit 1; \
		$(GO) test -run=NONE -bench='BenchmarkAdaptivePath/FlappingExchange$$' -benchmem -benchtime=100x -count=1 . || exit 1; \
		$(GO) test -run=NONE -bench='BenchmarkAdaptivePath/StaticFlappingExchange$$' -benchmem -benchtime=100x -count=1 . || exit 1; \
	done | tee -a bench_adaptive.txt
	$(GO) run ./cmd/benchjson -in bench_adaptive.txt -out BENCH_7.json

# Taint Map cluster benchmarks, refreshed into BENCH_6.json. Both
# headline criteria are in-run ratios: the scaling series (the same
# 8-goroutine mixed workload against 1, 2 and 4 service-modeled
# members) must register >= 2.5x faster at 4 members, and the cluster
# client pointed at a single plain server must stay within 1.05x of the
# bare multiplexed client. Part of `check`: a change that quietly
# serializes the members (or fattens the routing layer) fails CI.
# The Mux8/Cluster8 pair needs care to measure a 5% bound on a noisy
# shared host: each side runs in its own `go test` process (so both
# benchmarks are first-in-process — heap age and GC pacing are
# position-dependent and would otherwise land entirely on whichever
# ran second) at a fixed iteration count (time-based calibration picks
# different b.N per side, which skews per-op cost), interleaved five
# times so slow host drift cancels in the medians (benchjson requires
# >= 5 samples per point of the scaling series).
bench-cluster:
	$(GO) test -run=NONE -bench='BenchmarkTaintMapCluster' -benchmem -benchtime=0.5s -count=5 . | tee bench_cluster.txt
	for i in 1 2 3 4 5; do \
		$(GO) test -run=NONE -bench='BenchmarkTaintMapConcurrent/Mux8$$' -benchmem -benchtime=2000000x -count=1 . || exit 1; \
		$(GO) test -run=NONE -bench='BenchmarkTaintMapConcurrent/Cluster8$$' -benchmem -benchtime=2000000x -count=1 . || exit 1; \
	done | tee -a bench_cluster.txt
	$(GO) run ./cmd/benchjson -in bench_cluster.txt -out BENCH_6.json

# Gray-failure benchmarks, refreshed into BENCH_8.json. Both criteria
# are in-run ratios. The lookup pair measures memo-cold wire lookups on
# a 2-member RF-2 cluster, healthy vs one replica stalled (accepts
# requests, never answers); the stalled tail must stay <= 3x the
# healthy tail, which holds only if the breaker + hedge machinery turns
# the stall into instant fall-through. Fixed iteration counts keep
# every measured lookup memo-cold (one id pool pass per run, no
# time-based recalibration). The Mixed pair bounds the hedged client's
# clean-path overhead at 1.05x of the sequential PR 7 client, so it
# gets the own-process interleaved treatment like the Mux8/Cluster8
# pair — and additionally alternates which side runs first: on this
# box the second process of a back-to-back pair measures consistently
# slower (frequency/cache state left by the first), a bias bigger than
# the 5% bound itself, so it must land on both sides equally to cancel
# in the medians.
bench-grayfail:
	$(GO) test -run=NONE -bench='BenchmarkGrayFail/(LookupHealthy|LookupStalled)$$' -benchmem -benchtime=5000x -count=5 . | tee bench_grayfail.txt
	for i in 1 2 3; do \
		$(GO) test -run=NONE -bench='BenchmarkGrayFail/MixedUnhedged$$' -benchmem -benchtime=1000000x -count=1 . || exit 1; \
		$(GO) test -run=NONE -bench='BenchmarkGrayFail/MixedHedged$$' -benchmem -benchtime=1000000x -count=1 . || exit 1; \
		$(GO) test -run=NONE -bench='BenchmarkGrayFail/MixedHedged$$' -benchmem -benchtime=1000000x -count=1 . || exit 1; \
		$(GO) test -run=NONE -bench='BenchmarkGrayFail/MixedUnhedged$$' -benchmem -benchtime=1000000x -count=1 . || exit 1; \
	done | tee -a bench_grayfail.txt
	$(GO) run ./cmd/benchjson -in bench_grayfail.txt -out BENCH_8.json

# Load-plane soaks, refreshed into BENCH_10.json. Each benchmark
# iteration is one whole closed-loop run (-benchtime=1x), repeated for
# medians. Both criteria are in-run ratios over identical per-op
# workloads: the 50k-connection soak's p999 must stay <= 12x the
# 1k-connection baseline's p999 (a 50x fan-in priced at strongly
# sub-linear tail growth; measured ~8x median on this box), and the
# polled echo sink must show >= 5x goroutine headroom against the
# goroutine-per-connection sink shape on the same 5k-connection
# workload (measured ~1000x: 5001 parked readers vs 5 poll workers).
bench-load:
	$(GO) test -run=NONE -bench='BenchmarkLoadPlane' -benchtime=1x -count=3 . | tee bench_load.txt
	$(GO) run ./cmd/benchjson -in bench_load.txt -out BENCH_10.json

# The acceptance soak: 50,000 concurrent instrumented connections under
# the race detector, multiplexed over a handful of goroutines (the race
# runtime's ~8k goroutine ceiling makes goroutine-per-connection
# impossible — finishing at all is the fabric claim).
soak-load:
	$(GO) test -race -run 'TestSoak50k' -count=1 -v ./internal/load

# Short fuzz pass over the wire round-trip property (CI smoke; the
# seeded corpus also runs as part of plain `go test`).
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzStreamRoundTrip -fuzztime=20s ./internal/core/wire

# ~10s per target over the taint map protocol surface — the server-side
# frame parser (both protocol generations) and the blob/id list codecs —
# plus the tier-transition fuzzer, which drives an adaptive endpoint
# pair through random density schedules and checks per-byte label
# delivery across encoding switches. `go test` accepts one -fuzz
# pattern per invocation, hence one run per target.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzServeConn -fuzztime=10s ./internal/taintmap
	$(GO) test -run=NONE -fuzz=FuzzParseBlobList -fuzztime=10s ./internal/taintmap
	$(GO) test -run=NONE -fuzz='FuzzClusterServeConn$$' -fuzztime=10s ./internal/taintmap
	$(GO) test -run=NONE -fuzz='FuzzParseRing$$' -fuzztime=5s ./internal/taintmap
	$(GO) test -run=NONE -fuzz='FuzzTierTransition$$' -fuzztime=10s ./internal/instrument
