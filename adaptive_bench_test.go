package dista

import (
	"io"
	"testing"

	"dista/internal/core/taint"
	"dista/internal/core/tracker"
	"dista/internal/instrument"
	"dista/internal/netsim"
	"dista/internal/taintmap"
)

// Adaptive fast-path benchmarks backing BENCH_7.json: the taint-density
// tiering engine must price each traffic shape at its own tier —
// uniformly tainted bulk rides the 4-byte uniform frame instead of the
// 5x group codec, sparse traffic pays only for its dirty islands, and
// the two shapes the tiers cannot help (clean, dense) must cost what
// the static PR 5 paths already charged. A flapping adversary that
// alternates uniform and dense payloads is held near the static group
// encoder: hysteresis must keep the tracker from burning its win on
// transition churn. All criteria are same-run ratios, so host drift
// cancels out.
func BenchmarkAdaptivePath(b *testing.B) {
	const size = 64 << 10

	clean := func(a *tracker.Agent) []taint.Bytes {
		return []taint.Bytes{taint.MakeBytes(size)}
	}
	uniform := func(a *tracker.Agent) []taint.Bytes {
		p := taint.MakeBytes(size)
		p.SetRange(0, size, a.Source("vu", "u"))
		return []taint.Bytes{p}
	}
	// Four 256-byte dirty islands: 1 KiB tainted of 64 KiB.
	sparse := func(a *tracker.Agent) []taint.Bytes {
		p := taint.MakeBytes(size)
		src := a.Source("vs", "s")
		for off := 0; off < size; off += size / 4 {
			p.SetRange(off, off+256, src)
		}
		return []taint.Bytes{p}
	}
	// Alternating labels byte by byte: maximal fragmentation, the shape
	// only the group codec can carry.
	dense := func(a *tracker.Agent) []taint.Bytes {
		p := taint.MakeBytes(size)
		s1, s2 := a.Source("vd1", "d1"), a.Source("vd2", "d2")
		for i := 0; i < size; i += 2 {
			p.SetLabel(i, s1)
		}
		for i := 1; i < size; i += 2 {
			p.SetLabel(i, s2)
		}
		return []taint.Bytes{p}
	}
	// The adversarial schedule for the tier tracker: alternate a uniform
	// and a dense payload every write.
	flapping := func(a *tracker.Agent) []taint.Bytes {
		return append(uniform(a), dense(a)...)
	}

	// CleanExchange is the in-run floor: an untainted payload through the
	// adaptive endpoint pair must ride the passthrough tier.
	b.Run("CleanExchange", func(b *testing.B) {
		benchTierExchange(b, size, true, clean)
	})
	// StaticCleanExchange is the PR 5 comparator for the same payload —
	// the adaptive clean path may not regress against it.
	b.Run("StaticCleanExchange", func(b *testing.B) {
		benchTierExchange(b, size, false, clean)
	})
	b.Run("UniformExchange", func(b *testing.B) {
		benchTierExchange(b, size, true, uniform)
	})
	b.Run("SparseExchange", func(b *testing.B) {
		benchTierExchange(b, size, true, sparse)
	})
	b.Run("DenseExchange", func(b *testing.B) {
		benchTierExchange(b, size, true, dense)
	})
	// StaticGroupExchange prices the dense payload on the non-adaptive
	// PR 5 endpoint: the group codec the dense and flapping comparisons
	// are made against.
	b.Run("StaticGroupExchange", func(b *testing.B) {
		benchTierExchange(b, size, false, dense)
	})
	// Hysteresis holds the flapping stream at groups, so the cost must
	// stay near the static encoder fed the identical schedule.
	b.Run("FlappingExchange", func(b *testing.B) {
		benchTierExchange(b, size, true, flapping)
	})
	b.Run("StaticFlappingExchange", func(b *testing.B) {
		benchTierExchange(b, size, false, flapping)
	})
}

// benchTierExchange round-trips the payload cycle built by mk through
// an endpoint pair — adaptive (tier-capable) or the static PR 5 framed
// codec — with the receiver decoding into a reused buffer, like
// benchExchange.
func benchTierExchange(b *testing.B, size int, adaptive bool, mk func(*tracker.Agent) []taint.Bytes) {
	net := netsim.New()
	store := taintmap.NewStore()
	sAgent, rAgent := benchAgent("s", store), benchAgent("r", store)
	cs, cr := net.Pipe()
	var sender, receiver *instrument.Endpoint
	if adaptive {
		sender = instrument.NewAdaptiveEndpoint(sAgent, cs)
		receiver = instrument.NewAdaptiveEndpoint(rAgent, cr)
	} else {
		sender = instrument.NewEndpoint(sAgent, cs)
		receiver = instrument.NewEndpoint(rAgent, cr)
	}
	payloads := mk(sAgent)

	done := make(chan error, 1)
	go func() {
		buf := taint.MakeBytes(size)
		for {
			if _, err := receiver.Read(&buf); err != nil {
				if err == io.EOF {
					done <- nil
				} else {
					done <- err
				}
				return
			}
		}
	}()

	// Warm up: converge the density tracker, register the labels (the
	// GlobalID cache makes later writes pure encode), and size the
	// endpoint scratch, so steady state is what gets measured.
	for i := 0; i < 8; i++ {
		if err := sender.Write(payloads[i%len(payloads)]); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sender.Write(payloads[i%len(payloads)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	cs.Close()
	if err := <-done; err != nil {
		b.Fatal(err)
	}
}
