// Package dista's top-level benchmarks regenerate the paper's
// evaluation tables as testing.B benchmarks:
//
//	BenchmarkTableV_*   — Table V: every micro-benchmark protocol group
//	                      under the three modes (original / phosphor /
//	                      dista);
//	BenchmarkTableVI_*  — Table VI: every real-system workload under
//	                      every mode and scenario column;
//	BenchmarkTaintMap   — the Taint Map's throughput (§III-D bottleneck
//	                      discussion);
//	BenchmarkWireCodec  — the byte-group codec on the critical path.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package dista

import (
	"fmt"
	"strings"
	"testing"

	"dista/internal/bench"
	"dista/internal/core/taint"
	"dista/internal/core/tracker"
	"dista/internal/core/wire"
	"dista/internal/microbench"
	"dista/internal/taintmap"
)

// benchSize keeps one micro iteration around a few milliseconds.
const benchSize = 64 << 10

var benchModes = []tracker.Mode{tracker.ModeOff, tracker.ModePhosphor, tracker.ModeDista}

// slug converts a group name into a benchmark-friendly label.
func slug(s string) string {
	return strings.NewReplacer(" ", "", "/", "-", "+", "-").Replace(s)
}

// benchMicroGroup benches one representative case id under all modes.
func benchMicroGroup(b *testing.B, id int) {
	c, ok := microbench.CaseByID(id)
	if !ok {
		b.Fatalf("no case %d", id)
	}
	for _, mode := range benchModes {
		b.Run(mode.String(), func(b *testing.B) {
			b.SetBytes(int64(benchSize))
			for i := 0; i < b.N; i++ {
				if _, err := microbench.RunCase(c, mode, benchSize); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Table V benchmarks: one per protocol group (the representative case
// of each Table II row), each with off/phosphor/dista sub-benchmarks.

func BenchmarkTableV_JRESocketPlain(b *testing.B)      { benchMicroGroup(b, 1) }
func BenchmarkTableV_JRESocketBuffered(b *testing.B)   { benchMicroGroup(b, 4) }
func BenchmarkTableV_JRESocketData(b *testing.B)       { benchMicroGroup(b, 12) }
func BenchmarkTableV_JRESocketObject(b *testing.B)     { benchMicroGroup(b, 17) }
func BenchmarkTableV_JREDatagram(b *testing.B)         { benchMicroGroup(b, 23) }
func BenchmarkTableV_JRESocketChannel(b *testing.B)    { benchMicroGroup(b, 24) }
func BenchmarkTableV_JREDatagramChannel(b *testing.B)  { benchMicroGroup(b, 25) }
func BenchmarkTableV_JREAsyncChannel(b *testing.B)     { benchMicroGroup(b, 26) }
func BenchmarkTableV_JREHTTP(b *testing.B)             { benchMicroGroup(b, 27) }
func BenchmarkTableV_NettySocket(b *testing.B)         { benchMicroGroup(b, 28) }
func BenchmarkTableV_NettyDatagramSocket(b *testing.B) { benchMicroGroup(b, 29) }
func BenchmarkTableV_NettyHTTP(b *testing.B)           { benchMicroGroup(b, 30) }

// benchSystem benches one Table VI cell.
func benchSystem(b *testing.B, name string, mode tracker.Mode, sc bench.Scenario) {
	var sys bench.System
	found := false
	for _, s := range bench.Systems() {
		if s.Name == name {
			sys, found = s, true
		}
	}
	if !found {
		b.Fatalf("no system %q", name)
	}
	cfg := bench.SystemConfig{MsgSize: 8 << 10, Messages: 10, PiSamples: 20_000, Jobs: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		b.StartTimer()
		if _, err := sys.Run(mode, sc, cfg, dir); err != nil {
			b.Fatal(err)
		}
	}
}

// Table VI benchmarks: 5 systems x the five columns (Original,
// Phosphor-SDT, DisTA-SDT, Phosphor-SIM, DisTA-SIM).

func benchSystemAllCells(b *testing.B, name string) {
	cells := []struct {
		label string
		mode  tracker.Mode
		sc    bench.Scenario
	}{
		{"Original", tracker.ModeOff, bench.SDT},
		{"Phosphor-SDT", tracker.ModePhosphor, bench.SDT},
		{"DisTA-SDT", tracker.ModeDista, bench.SDT},
		{"Phosphor-SIM", tracker.ModePhosphor, bench.SIM},
		{"DisTA-SIM", tracker.ModeDista, bench.SIM},
	}
	for _, cell := range cells {
		b.Run(cell.label, func(b *testing.B) {
			benchSystem(b, name, cell.mode, cell.sc)
		})
	}
}

func BenchmarkTableVI_ZooKeeper(b *testing.B)     { benchSystemAllCells(b, "ZooKeeper") }
func BenchmarkTableVI_MapReduceYarn(b *testing.B) { benchSystemAllCells(b, "MapReduce/Yarn") }
func BenchmarkTableVI_ActiveMQ(b *testing.B)      { benchSystemAllCells(b, "ActiveMQ") }
func BenchmarkTableVI_RocketMQ(b *testing.B)      { benchSystemAllCells(b, "RocketMQ") }
func BenchmarkTableVI_HBaseZooKeeper(b *testing.B) {
	benchSystemAllCells(b, "HBase+ZooKeeper")
}

// BenchmarkTaintMap measures Register/Lookup throughput of the Taint
// Map store — the single-point component whose throughput the paper
// discusses as the potential bottleneck (§III-D-2).
func BenchmarkTaintMap(b *testing.B) {
	b.Run("RegisterDistinct", func(b *testing.B) {
		store := taintmap.NewStore()
		tree := taint.NewTree()
		client := taintmap.NewLocalClient(store, tree)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t := tree.NewSource(fmt.Sprintf("tag-%d", i), "bench:1")
			if _, err := client.Register(t); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("RegisterCached", func(b *testing.B) {
		store := taintmap.NewStore()
		tree := taint.NewTree()
		client := taintmap.NewLocalClient(store, tree)
		t := tree.NewSource("hot", "bench:1")
		if _, err := client.Register(t); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := client.Register(t); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("LookupCached", func(b *testing.B) {
		store := taintmap.NewStore()
		src := taint.NewTree()
		producer := taintmap.NewLocalClient(store, src)
		id, err := producer.Register(src.NewSource("hot", "bench:1"))
		if err != nil {
			b.Fatal(err)
		}
		consumer := taintmap.NewLocalClient(store, taint.NewTree())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := consumer.Lookup(id); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWireCodec measures the per-byte group encoding/decoding on
// DisTA's critical path (the source of the 5x wire volume).
func BenchmarkWireCodec(b *testing.B) {
	data := make([]byte, 64<<10)
	ids := make([]uint32, len(data))
	for i := range ids {
		ids[i] = uint32(i % 7)
	}
	b.Run("Encode", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			_ = wire.EncodeGroups(nil, data, ids)
		}
	})
	raw := wire.EncodeGroups(nil, data, ids)
	b.Run("Decode", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			var dec wire.StreamDecoder
			dec.Feed(raw)
			dec.Next(len(data))
		}
	})
}

// BenchmarkAblationTaintMapCaching compares the production cached
// Taint Map client against the uncached ablation baseline on a fully
// tainted stream exchange (DESIGN.md ablation A1).
func BenchmarkAblationTaintMapCaching(b *testing.B) {
	b.Run("Cached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := bench.MeasureCachingAblation(benchSize, 1)
			if err != nil {
				b.Fatal(err)
			}
			_ = res
		}
	})
}

// BenchmarkTaintCombine measures the tag-tree union operation that
// every tracked assignment pays (the Phosphor storage design, §II-B).
func BenchmarkTaintCombine(b *testing.B) {
	tree := taint.NewTree()
	a := tree.NewSource("a", "l")
	c := tree.NewSource("c", "l")
	b.Run("Interned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = taint.Combine(a, c)
		}
	})
	b.Run("ShadowArrayTaintAll", func(b *testing.B) {
		buf := taint.MakeBytes(64 << 10)
		b.SetBytes(64 << 10)
		for i := 0; i < b.N; i++ {
			buf.TaintAll(a)
		}
	})
}
