package dista

import (
	"io"
	"testing"

	"dista/internal/core/taint"
	"dista/internal/core/tracker"
	"dista/internal/instrument"
	"dista/internal/netsim"
	"dista/internal/taintmap"
)

// Clean-path benchmarks backing BENCH_5.json: untainted traffic through
// an instrumented endpoint must cost a small constant over the plain
// netsim copy loop (and allocate nothing per write), while the same
// payload through the pre-bypass always-encode path pays the full 5x
// group codec — the ratio the passthrough frame exists to win.
func BenchmarkCleanPath(b *testing.B) {
	const size = 64 << 10

	// NetsimCopy is the uninstrumented floor: a raw []byte write with a
	// persistent goroutine draining the peer. Everything the bypass adds
	// is measured against this.
	b.Run("NetsimCopy", func(b *testing.B) {
		net := netsim.New()
		cs, cr := net.Pipe()
		go drainRaw(cr)
		payload := make([]byte, size)
		b.SetBytes(size)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cs.Write(payload); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		cs.Close()
	})

	// PassthroughWrite is the same shape with the full dista endpoint in
	// front: clean gate, frame header, two socket writes. The allocs/op
	// figure is the pool-leak check — it must be 0.
	b.Run("PassthroughWrite", func(b *testing.B) {
		net := netsim.New()
		store := taintmap.NewStore()
		agent := benchAgent("s", store)
		cs, cr := net.Pipe()
		go drainRaw(cr)
		sender := instrument.NewEndpoint(agent, cs)
		payload := taint.MakeBytes(size) // shadowed: exercises the epoch memo
		// Warm up the endpoint scratch and the pipe's backing array so
		// steady state is what gets measured.
		for i := 0; i < 4; i++ {
			if err := sender.Write(payload); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(size)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sender.Write(payload); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		cs.Close()
	})

	// PassthroughExchange is the full round trip: clean write, framed
	// decode, stale-label clear on a reused receive buffer.
	b.Run("PassthroughExchange", func(b *testing.B) {
		benchExchange(b, size, false)
	})

	// AlwaysEncodeExchange pushes the identical clean payload through
	// the pre-bypass wire format (every byte a group): what the same
	// traffic cost before this change, measured in the same run.
	b.Run("AlwaysEncodeExchange", func(b *testing.B) {
		benchExchange(b, size, true)
	})
}

// benchAgent builds a dista-mode agent on a shared local Taint Map.
func benchAgent(name string, store *taintmap.Store) *tracker.Agent {
	a := tracker.New(name, tracker.ModeDista)
	return tracker.New(name, tracker.ModeDista,
		tracker.WithTaintMap(taintmap.NewLocalClient(store, a.Tree())))
}

// drainRaw reads and discards the peer's bytes until the stream closes,
// allocation-free (it runs inside -benchmem's accounting).
func drainRaw(c *netsim.Conn) {
	buf := make([]byte, 64<<10)
	for {
		if _, err := c.Read(buf); err != nil {
			return
		}
	}
}

// benchExchange round-trips a clean payload through endpoint write +
// endpoint read, over the framed codec or the legacy always-encode one.
func benchExchange(b *testing.B, size int, legacy bool) {
	net := netsim.New()
	store := taintmap.NewStore()
	sAgent, rAgent := benchAgent("s", store), benchAgent("r", store)
	cs, cr := net.Pipe()
	var sender *instrument.Endpoint
	if legacy {
		sender = instrument.NewLegacyEndpoint(sAgent, cs)
	} else {
		sender = instrument.NewEndpoint(sAgent, cs)
	}
	receiver := instrument.NewEndpoint(rAgent, cr)
	payload := taint.MakeBytes(size)

	done := make(chan error, 1)
	go func() {
		buf := taint.MakeBytes(size)
		var total int64
		for {
			n, err := receiver.Read(&buf)
			if err != nil {
				if err == io.EOF {
					done <- nil
				} else {
					done <- err
				}
				return
			}
			total += int64(n)
		}
	}()

	b.SetBytes(int64(size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sender.Write(payload); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	cs.Close()
	if err := <-done; err != nil {
		b.Fatal(err)
	}
}
