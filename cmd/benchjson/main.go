// Command benchjson turns `go test -bench` output into the repo's
// BENCH_N.json artifact: per-benchmark ns/op, B/op and allocs/op
// (median across -count repetitions), next to the frozen seed baselines
// so the speedups the PR claims are recomputable from the artifact
// alone.
//
// Usage:
//
//	go test -run=NONE -bench='...' -benchmem -count=3 . | go run ./cmd/benchjson -out BENCH_1.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// seedBaseline is one benchmark measured at the seed commit.
type seedBaseline struct {
	NsPerOp     float64
	AllocsPerOp int64
}

// seedBaselines holds the pre-refactor numbers for the hot-path
// benchmarks: the seed tree (commit 85f4d41) plus the identical
// benchmark harness, run back-to-back with the current tree on the same
// host so the ratios are load-comparable. Composite seed paths use the
// seed per-byte APIs (per-byte Register with the endpoint's
// adjacent-byte memo, per-byte id encode), matching what the seed
// Endpoint did on the wire path.
var seedBaselines = map[string]seedBaseline{}

// seedJSON is the frozen measurement described above; parsed into
// seedBaselines at startup. Kept as data so re-baselining is a
// copy-paste, not a code edit. Medians of 4 interleaved repetitions
// (seed/current alternating, -benchtime=0.5s) on a shared
// Intel Xeon @ 2.10GHz box, 2026-08-06.
//
// The TaintMapConcurrent entries were measured the same way against the
// pre-sharding tree (commit fbd77bd): its stop-and-wait RemoteClient
// driven by the identical 8-goroutine 90/10 mixed harness is the seed
// for both Mux8 and StopAndWait8 (one client replaces it, the other is
// its byte-compatible port), and its single-goroutine untagged register
// loop is the seed for UntaggedSingle.
const seedJSON = `{
  "HotPath/TaintAllUniform":          {"NsPerOp": 174195.0, "AllocsPerOp": 0},
  "HotPath/UnionUniform":             {"NsPerOp": 147903.5, "AllocsPerOp": 0},
  "HotPath/EncodePathUniform":        {"NsPerOp": 440426.5, "AllocsPerOp": 2},
  "HotPath/DecodePathUniform":        {"NsPerOp": 588292.5, "AllocsPerOp": 49},
  "HotPath/MixedSetLabel":            {"NsPerOp": 10630.5,  "AllocsPerOp": 0},
  "HotPath/MixedLabelAt":             {"NsPerOp": 4715.5,   "AllocsPerOp": 0},
  "HotPath/MixedStreamExchange":      {"NsPerOp": 254514.5, "AllocsPerOp": 38},
  "HotPath/CombineCached":            {"NsPerOp": 67.5,     "AllocsPerOp": 1},
  "HotPath/SingleTaintEncode":        {"NsPerOp": 105473.5, "AllocsPerOp": 1},
  "HotPath/SingleTaintDecode":        {"NsPerOp": 374077.5, "AllocsPerOp": 48},
  "TaintMap/RegisterDistinct":        {"NsPerOp": 3069.0,   "AllocsPerOp": 7},
  "TaintMap/RegisterCached":          {"NsPerOp": 21.48,    "AllocsPerOp": 0},
  "TaintMap/LookupCached":            {"NsPerOp": 22.01,    "AllocsPerOp": 0},
  "WireCodec/Encode":                 {"NsPerOp": 101752.0, "AllocsPerOp": 1},
  "WireCodec/Decode":                 {"NsPerOp": 376847.0, "AllocsPerOp": 48},
  "TaintCombine/Interned":            {"NsPerOp": 69.75,    "AllocsPerOp": 1},
  "TaintCombine/ShadowArrayTaintAll": {"NsPerOp": 169886.0, "AllocsPerOp": 0},

  "TaintMapConcurrent/Mux8":           {"NsPerOp": 1404.5,  "AllocsPerOp": 1},
  "TaintMapConcurrent/StopAndWait8":   {"NsPerOp": 1404.5,  "AllocsPerOp": 1},
  "TaintMapConcurrent/UntaggedSingle": {"NsPerOp": 12829.5, "AllocsPerOp": 13}
}`

type result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	P99NsPerOp  float64 `json:"p99_ns_per_op,omitempty"`
	P999NsPerOp float64 `json:"p999_ns_per_op,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Samples     int     `json:"samples"`

	// Metrics holds the remaining b.ReportMetric units (medians), e.g.
	// the load plane's goroutine counts and taints/sec.
	Metrics map[string]float64 `json:"metrics,omitempty"`

	SeedNsPerOp     float64 `json:"seed_ns_per_op,omitempty"`
	SeedAllocsPerOp int64   `json:"seed_allocs_per_op,omitempty"`
	Speedup         float64 `json:"speedup_vs_seed,omitempty"`
}

type criterion struct {
	Name      string  `json:"name"`
	Benchmark string  `json:"benchmark"`
	Require   string  `json:"require"`
	Measured  float64 `json:"measured"`
	Pass      bool    `json:"pass"`
}

type report struct {
	Note     string      `json:"note"`
	GoOS     string      `json:"goos,omitempty"`
	GoArch   string      `json:"goarch,omitempty"`
	CPU      string      `json:"cpu,omitempty"`
	Results  []result    `json:"results"`
	Criteria []criterion `json:"criteria"`
}

// benchName strips the GOMAXPROCS suffix from a benchmark line's first
// field. The rest of the line is free-form (value, unit) pairs — ns/op
// and the -benchmem pair interleaved with whatever custom units
// b.ReportMetric emitted, printed in the testing package's order — so
// the parser tokenizes pairs generically instead of pinning an order.
var benchName = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?$`)

func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

func main() {
	in := flag.String("in", "-", "benchmark output file ('-' = stdin)")
	out := flag.String("out", "BENCH_1.json", "output JSON path")
	flag.Parse()

	if err := json.Unmarshal([]byte(seedJSON), &seedBaselines); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: bad embedded seed baselines: %v\n", err)
		os.Exit(1)
	}

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}

	type agg struct {
		ns      []float64
		p99     []float64
		p999    []float64
		bytes   []float64
		allocs  []float64
		metrics map[string][]float64
	}
	aggs := map[string]*agg{}
	var order []string
	rep := report{Note: "seed = pre-change baseline measured with the identical harness on the same host, back-to-back: commit 85f4d41 (pre-run-representation) for the HotPath/Wire suites, commit fbd77bd (pre-sharding stop-and-wait taint map) for the TaintMapConcurrent suite"}

	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		nm := benchName.FindStringSubmatch(fields[0])
		if nm == nil {
			continue
		}
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue // not an iteration count — not a result line
		}
		name := strings.TrimPrefix(nm[1], "Benchmark")
		a := aggs[name]
		if a == nil {
			a = &agg{metrics: map[string][]float64{}}
			aggs[name] = a
			order = append(order, name)
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				a.ns = append(a.ns, v)
			case "p99-ns/op":
				a.p99 = append(a.p99, v)
			case "p999-ns/op":
				a.p999 = append(a.p999, v)
			case "B/op":
				a.bytes = append(a.bytes, v)
			case "allocs/op":
				a.allocs = append(a.allocs, v)
			case "MB/s":
				// throughput restatement of ns/op; skip
			default:
				a.metrics[unit] = append(a.metrics[unit], v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	for _, name := range order {
		a := aggs[name]
		res := result{
			Name:        name,
			NsPerOp:     median(a.ns),
			P99NsPerOp:  median(a.p99),
			P999NsPerOp: median(a.p999),
			BytesPerOp:  int64(median(a.bytes)),
			AllocsPerOp: int64(median(a.allocs)),
			Samples:     len(a.ns),
		}
		for unit, vs := range a.metrics {
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[unit] = median(vs)
		}
		if sb, ok := seedBaselines[name]; ok {
			res.SeedNsPerOp = sb.NsPerOp
			res.SeedAllocsPerOp = sb.AllocsPerOp
			if res.NsPerOp > 0 {
				res.Speedup = sb.NsPerOp / res.NsPerOp
			}
		}
		rep.Results = append(rep.Results, res)
	}

	find := func(name string) *result {
		for i := range rep.Results {
			if rep.Results[i].Name == name {
				return &rep.Results[i]
			}
		}
		return nil
	}
	// Each criterion is attached only when its benchmark is present in
	// this run, so a partial run (say, only the taintmap suite) reports
	// only the criteria it can actually measure instead of spurious
	// failures for benchmarks that never executed.
	speedupAtLeast := func(label, bench string, min float64) {
		r := find(bench)
		if r == nil {
			return
		}
		c := criterion{Name: label, Benchmark: bench, Require: fmt.Sprintf(">= %.1fx vs seed", min)}
		if r.Speedup > 0 {
			c.Measured = r.Speedup
			c.Pass = r.Speedup >= min
		}
		rep.Criteria = append(rep.Criteria, c)
	}
	slowdownAtMost := func(label, bench string, max float64) {
		r := find(bench)
		if r == nil {
			return
		}
		c := criterion{Name: label, Benchmark: bench, Require: fmt.Sprintf("<= %.1fx of seed", max)}
		if r.Speedup > 0 {
			c.Measured = 1 / r.Speedup
			c.Pass = c.Measured <= max
		}
		rep.Criteria = append(rep.Criteria, c)
	}
	// ratioAtLeast compares two benchmarks from the *same run* (slow
	// over fast), which is immune to day-to-day drift of the host.
	ratioAtLeast := func(label, slow, fast string, min float64) {
		rs, rf := find(slow), find(fast)
		if rs == nil || rf == nil {
			return
		}
		c := criterion{
			Name:      label,
			Benchmark: fast,
			Require:   fmt.Sprintf(">= %.1fx vs %s (same run)", min, slow),
		}
		if rs.NsPerOp > 0 && rf.NsPerOp > 0 {
			c.Measured = rs.NsPerOp / rf.NsPerOp
			c.Pass = c.Measured >= min
		}
		rep.Criteria = append(rep.Criteria, c)
	}
	// ratioAtMost bounds one benchmark by another from the same run
	// (num over denom) — the overhead form of ratioAtLeast.
	ratioAtMost := func(label, num, denom string, max float64) {
		rn, rd := find(num), find(denom)
		if rn == nil || rd == nil {
			return
		}
		c := criterion{
			Name:      label,
			Benchmark: num,
			Require:   fmt.Sprintf("<= %.2fx of %s (same run)", max, denom),
		}
		if rn.NsPerOp > 0 && rd.NsPerOp > 0 {
			c.Measured = rn.NsPerOp / rd.NsPerOp
			c.Pass = c.Measured <= max
		}
		rep.Criteria = append(rep.Criteria, c)
	}
	// scalingAtLeast checks a same-run scaling series: every benchmark in
	// the series ran, and throughput from the first member (the 1-server
	// baseline) to the last (the full cluster) improved by at least min.
	// The intermediate points must not regress below the baseline, so a
	// series that only wins at the final size by luck still fails. Each
	// member must carry at least scalingMinSamples repetitions — a
	// scaling claim from a single noisy sample per point is no claim.
	const scalingMinSamples = 5
	scalingAtLeast := func(label string, series []string, min float64) {
		rs := make([]*result, len(series))
		for i, name := range series {
			if rs[i] = find(name); rs[i] == nil {
				return
			}
		}
		c := criterion{
			Name:      label,
			Benchmark: series[len(series)-1],
			Require: fmt.Sprintf(">= %.1fx vs %s (same-run series, >= %d samples/point)",
				min, series[0], scalingMinSamples),
		}
		base, last := rs[0].NsPerOp, rs[len(rs)-1].NsPerOp
		if base > 0 && last > 0 {
			c.Measured = base / last
			c.Pass = c.Measured >= min
			for _, r := range rs[1:] {
				if r.NsPerOp > base {
					c.Pass = false
				}
			}
			for _, r := range rs {
				if r.Samples < scalingMinSamples {
					c.Pass = false
				}
			}
		}
		rep.Criteria = append(rep.Criteria, c)
	}
	// p99RatioAtMost bounds one benchmark's reported tail latency
	// (p99-ns/op custom metric) by another's from the same run — the
	// gray-failure form of ratioAtMost: means hide a stalled replica
	// behind the healthy majority, the p99 does not.
	p99RatioAtMost := func(label, num, denom string, max float64) {
		rn, rd := find(num), find(denom)
		if rn == nil || rd == nil {
			return
		}
		c := criterion{
			Name:      label,
			Benchmark: num,
			Require:   fmt.Sprintf("p99 <= %.1fx of %s p99 (same run)", max, denom),
		}
		if rn.P99NsPerOp > 0 && rd.P99NsPerOp > 0 {
			c.Measured = rn.P99NsPerOp / rd.P99NsPerOp
			c.Pass = c.Measured <= max
		}
		rep.Criteria = append(rep.Criteria, c)
	}
	// p999RatioAtMost is p99RatioAtMost one decade further out: the
	// load-plane soak criterion compares p999-ns/op between two runs of
	// the same per-op workload at different connection counts, so the
	// bound prices fabric scaling alone.
	p999RatioAtMost := func(label, num, denom string, max float64) {
		rn, rd := find(num), find(denom)
		if rn == nil || rd == nil {
			return
		}
		c := criterion{
			Name:      label,
			Benchmark: num,
			Require:   fmt.Sprintf("p999 <= %.1fx of %s p999 (same run)", max, denom),
		}
		if rn.P999NsPerOp > 0 && rd.P999NsPerOp > 0 {
			c.Measured = rn.P999NsPerOp / rd.P999NsPerOp
			c.Pass = c.Measured <= max
		}
		rep.Criteria = append(rep.Criteria, c)
	}
	// metricRatioAtLeast bounds the ratio of an arbitrary custom metric
	// between two same-run benchmarks — the goroutine-headroom form:
	// sink-goroutines under the goroutine-per-connection sink over the
	// polled sink's.
	metricRatioAtLeast := func(label, num, denom, metric string, min float64) {
		rn, rd := find(num), find(denom)
		if rn == nil || rd == nil {
			return
		}
		c := criterion{
			Name:      label,
			Benchmark: num,
			Require:   fmt.Sprintf("%s >= %.1fx of %s (same run)", metric, min, denom),
		}
		if rn.Metrics[metric] > 0 && rd.Metrics[metric] > 0 {
			c.Measured = rn.Metrics[metric] / rd.Metrics[metric]
			c.Pass = c.Measured >= min
		}
		rep.Criteria = append(rep.Criteria, c)
	}
	// allocsAtMost bounds a benchmark's allocs/op — the pool-leak check
	// for the zero-allocation clean path. Requires the run to have been
	// collected with -benchmem.
	allocsAtMost := func(label, bench string, max int64) {
		r := find(bench)
		if r == nil {
			return
		}
		c := criterion{
			Name:      label,
			Benchmark: bench,
			Require:   fmt.Sprintf("<= %d allocs/op", max),
			Measured:  float64(r.AllocsPerOp),
			Pass:      r.AllocsPerOp <= max,
		}
		rep.Criteria = append(rep.Criteria, c)
	}
	speedupAtLeast("uniform TaintAll", "HotPath/TaintAllUniform", 5)
	speedupAtLeast("uniform Union", "HotPath/UnionUniform", 5)
	speedupAtLeast("single-taint 64KiB encode path", "HotPath/EncodePathUniform", 5)
	speedupAtLeast("single-taint 64KiB decode path", "HotPath/DecodePathUniform", 5)
	slowdownAtMost("mixed per-byte-label workload", "HotPath/MixedStreamExchange", 1.2)
	ratioAtLeast("concurrent taint map throughput (in-run)",
		"TaintMapConcurrent/StopAndWait8", "TaintMapConcurrent/Mux8", 3)
	speedupAtLeast("concurrent taint map throughput (vs seed)", "TaintMapConcurrent/Mux8", 3)
	slowdownAtMost("untagged single-client latency", "TaintMapConcurrent/UntaggedSingle", 1.3)
	ratioAtMost("resilience wrapper overhead (fault-free, in-run)",
		"TaintMapConcurrent/Resilient8", "TaintMapConcurrent/Mux8", 1.10)
	// BENCH_5 criteria: the clean-path bypass. The bypass ratio and the
	// copy-floor overhead are same-run comparisons; the tainted path is
	// held to the seed within measurement noise (the frame adds 5 bytes
	// per write to a 20 KiB group stream).
	ratioAtLeast("clean-path bypass vs always-encode (in-run)",
		"CleanPath/AlwaysEncodeExchange", "CleanPath/PassthroughExchange", 5)
	ratioAtMost("clean write overhead vs plain netsim copy (in-run)",
		"CleanPath/PassthroughWrite", "CleanPath/NetsimCopy", 1.5)
	allocsAtMost("clean write allocation-free (pool-leak check)",
		"CleanPath/PassthroughWrite", 0)
	slowdownAtMost("tainted exchange unchanged by the bypass", "HotPath/MixedStreamExchange", 1.05)
	// BENCH_6 criteria: the taint-map cluster. Scaling is the tentpole —
	// the same 8-goroutine mixed workload against 1, 2 and 4 members,
	// each member a fixed-capacity service-time model, must register at
	// least 2.5x faster at 4 members. The overhead bound keeps the
	// cluster client honest for the degenerate single-server deployment.
	scalingAtLeast("register throughput scaling 1->4 members",
		[]string{"TaintMapCluster/Scale1", "TaintMapCluster/Scale2", "TaintMapCluster/Scale4"}, 2.5)
	ratioAtMost("cluster client single-server overhead (in-run)",
		"TaintMapConcurrent/Cluster8", "TaintMapConcurrent/Mux8", 1.05)
	// BENCH_7 criteria: the adaptive tier engine. Every bound is a
	// same-run ratio. The uniform and sparse tiers must land close to
	// the clean-path floor (that is the point of the new frames); the
	// two shapes tiering cannot help — clean and dense — may not
	// regress against the static PR 5 paths that already priced them;
	// and the flapping adversary is held near the static group encoder,
	// pinning the hysteresis (a tracker that chases the oscillation
	// would pay tier-transition churn here).
	ratioAtMost("uniform-tainted bulk vs clean floor (in-run)",
		"AdaptivePath/UniformExchange", "AdaptivePath/CleanExchange", 1.3)
	ratioAtMost("sparse-tainted bulk vs clean floor (in-run)",
		"AdaptivePath/SparseExchange", "AdaptivePath/CleanExchange", 1.5)
	ratioAtMost("adaptive clean path vs static passthrough (in-run)",
		"AdaptivePath/CleanExchange", "AdaptivePath/StaticCleanExchange", 1.05)
	ratioAtMost("adaptive dense path vs static group encode (in-run)",
		"AdaptivePath/DenseExchange", "AdaptivePath/StaticGroupExchange", 1.05)
	ratioAtMost("flapping adversary vs static group encode (in-run)",
		"AdaptivePath/FlappingExchange", "AdaptivePath/StaticFlappingExchange", 1.10)
	// BENCH_8 criteria: gray-failure hardening. A replica that accepts
	// requests but never answers may cost the lookup tail at most 3x the
	// healthy tail — the hedge/breaker machinery absorbs it — while the
	// hedged client on clean traffic stays within noise of the PR 7
	// sequential client (memo hits never arm a hedge).
	p99RatioAtMost("stalled-replica lookup tail (in-run)",
		"GrayFail/LookupStalled", "GrayFail/LookupHealthy", 3)
	ratioAtMost("hedging clean-path overhead (in-run)",
		"GrayFail/MixedHedged", "GrayFail/MixedUnhedged", 1.05)
	// BENCH_9 criteria: the distavet suite with the interprocedural
	// layer. The nine-analyzer suite — call graph, summary fixpoint and
	// the two new analyzers included — must stay within 1.5x of the
	// original five-analyzer core over the same package set: the index
	// is built once and shared, so the summary engine may not multiply
	// the per-analyzer cost. The warm-cache bound is the fact store's
	// reason to exist: a re-run over an unchanged tree replays cached
	// package entries and must land at or below 0.35x of the cold suite.
	// (BENCH_4.json froze the pre-interprocedural 1.15x six-analyzer
	// bound as a historical artifact; this pair supersedes it.)
	ratioAtMost("distavet 9-analyzer suite vs five-analyzer core (in-run)",
		"Distavet/Suite", "Distavet/Core", 1.5)
	ratioAtMost("distavet warm fact-cache replay vs cold suite (in-run)",
		"Distavet/SuiteWarm", "Distavet/Suite", 0.35)
	// BENCH_10 criteria: the scheduler-fabric load plane. Both soaks run
	// the identical closed-loop per-connection workload (2 ops x 512 B,
	// default transport and taint mix), differing only in connection
	// count, so the 50k/1k p999 ratio measures how the fabric's run
	// queues, accept rings and credit backpressure price a 50x fan-in —
	// the bound holds the tail to single-digit growth where a
	// goroutine-per-connection fabric would not finish at all. The
	// headroom criterion compares the echo sink's goroutine bill for the
	// same 5k-connection workload under the polled fabric versus the
	// pre-fabric one-goroutine-per-accept shape.
	p999RatioAtMost("50k-conn soak tail vs 1k-conn baseline (in-run)",
		"LoadPlane/Soak50k", "LoadPlane/Soak1k", 12)
	metricRatioAtLeast("sink goroutine headroom, per-conn vs polled (in-run)",
		"LoadPlane/SinkGoroutine5k", "LoadPlane/SinkPolled5k", "sink-goroutines", 5)

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %s (%d benchmarks, %d criteria)\n", *out, len(rep.Results), len(rep.Criteria))
	for _, c := range rep.Criteria {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		fmt.Printf("  [%s] %-32s %s (measured %.2fx)\n", status, c.Name, c.Require, c.Measured)
	}
}
