// Command dista-bench regenerates the paper's evaluation artifacts:
//
//	-table 1      Table I  (instrumented methods; same as dista-methods)
//	-table 2      Table II (micro benchmark case inventory)
//	-table 5      Table V  (micro benchmark runtime overhead)
//	-table 6      Table VI (real-system runtime overhead, SDT and SIM)
//	-taintcount   §V-F global-taint analysis (SDT vs SIM)
//	-network      §V-F network-overhead measurement (~5x prediction)
//	-all          everything above
//
// Scale knobs: -size (micro payload), -iters (micro repetitions),
// -messages/-msgsize/-jobs/-samples (system workloads).
package main

import (
	"flag"
	"fmt"
	"os"

	"dista/internal/bench"
	"dista/internal/core/tracker"
	"dista/internal/instrument"
	"dista/internal/microbench"
)

func main() {
	var (
		table      = flag.Int("table", 0, "table to regenerate: 1, 2, 5 or 6")
		taintCount = flag.Bool("taintcount", false, "print the SDT-vs-SIM global taint analysis")
		network    = flag.Bool("network", false, "print the network-overhead measurement")
		ablation   = flag.Bool("ablation", false, "run the design-choice ablations (caching, wire format)")
		memory     = flag.Bool("memory", false, "measure shadow-memory overhead (Phosphor's 1x-8x band)")
		all        = flag.Bool("all", false, "regenerate everything")

		size  = flag.Int("size", 512<<10, "micro-benchmark payload bytes per side")
		iters = flag.Int("iters", 3, "micro-benchmark repetitions per mode")

		messages = flag.Int("messages", 30, "messages/rows per system workload")
		msgSize  = flag.Int("msgsize", 32<<10, "system workload payload bytes")
		jobs     = flag.Int("jobs", 3, "MapReduce jobs")
		samples  = flag.Int64("samples", 100_000, "MapReduce Pi samples per job")
	)
	flag.Parse()

	cfg := bench.SystemConfig{
		MsgSize:   *msgSize,
		Messages:  *messages,
		PiSamples: *samples,
		Jobs:      *jobs,
	}
	if err := run(*table, *taintCount, *network, *ablation, *memory, *all, *size, *iters, cfg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(table int, taintCount, network, ablation, memory, all bool, size, iters int, cfg bench.SystemConfig) error {
	ran := false
	if all || table == 1 {
		printTableI()
		ran = true
	}
	if all || table == 2 {
		bench.WriteTableII(os.Stdout)
		fmt.Println()
		ran = true
	}
	if all || table == 5 {
		fmt.Printf("(measuring %d cases x 3 modes, %d bytes per side, %d iters)\n", len(microbench.Cases()), size, iters)
		rows, err := bench.MeasureAllCases(size, iters)
		if err != nil {
			return err
		}
		bench.WriteTableV(os.Stdout, bench.SummarizeTableV(rows))
		fmt.Println()
		ran = true
	}

	var sysRows []bench.SystemRow
	needSystems := all || table == 6 || taintCount
	if needSystems {
		dir, err := os.MkdirTemp("", "dista-bench-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		fmt.Printf("(measuring 5 systems x 5 mode/scenario cells, %d messages of %d bytes)\n", cfg.Messages, cfg.MsgSize)
		if sysRows, err = bench.MeasureSystems(cfg, dir); err != nil {
			return err
		}
	}
	if all || table == 6 {
		bench.WriteTableVI(os.Stdout, sysRows)
		fmt.Println()
		ran = true
	}
	if all || taintCount {
		bench.WriteTaintCounts(os.Stdout, sysRows)
		fmt.Println()
		ran = true
	}
	if all || network {
		if err := printNetworkOverhead(size); err != nil {
			return err
		}
		ran = true
	}
	if all || ablation {
		if err := bench.WriteAblations(os.Stdout, size, iters); err != nil {
			return err
		}
		fmt.Println()
		ran = true
	}
	if all || memory {
		bench.WriteMemoryOverhead(os.Stdout, 32, 64<<10)
		fmt.Println()
		ran = true
	}
	if !ran {
		return fmt.Errorf("dista-bench: nothing selected; use -table N, -taintcount, -network, -ablation, -memory or -all")
	}
	return nil
}

func printTableI() {
	fmt.Println("TABLE I: INSTRUMENTED METHODS AND THEIR TYPES")
	fmt.Printf("%-40s %-24s %s\n", "Class", "Method", "Type")
	for _, m := range instrument.Registry {
		fmt.Printf("%-40s %-24s %s\n", m.Class, m.Name, m.Type)
	}
	fmt.Println()
}

// printNetworkOverhead measures payload-vs-wire bytes on a fully
// tainted stream exchange (experiment E7).
func printNetworkOverhead(size int) error {
	fmt.Println("NETWORK OVERHEAD (§V-F: \"about 5X\")")
	c, _ := microbench.CaseByID(1)
	for _, mode := range []tracker.Mode{tracker.ModeOff, tracker.ModeDista} {
		h, err := microbench.RunCase(c, mode, size)
		if err != nil {
			return err
		}
		d1, w1 := h.Node1.Agent.Traffic()
		d2, w2 := h.Node2.Agent.Traffic()
		fmt.Printf("mode %-8s payload %8d B   wire %8d B   factor %.2fx\n",
			mode, d1+d2, w1+w2, float64(w1+w2)/float64(d1+d2))
	}
	fmt.Println()
	return nil
}
