package main

import (
	"testing"

	"dista/internal/bench"
)

func tinyCfg() bench.SystemConfig {
	return bench.SystemConfig{MsgSize: 1 << 10, Messages: 2, PiSamples: 1000, Jobs: 1}
}

func TestRunNothingSelected(t *testing.T) {
	if err := run(0, false, false, false, false, false, 1024, 1, tinyCfg()); err == nil {
		t.Fatal("want usage error")
	}
}

func TestRunTableI(t *testing.T) {
	if err := run(1, false, false, false, false, false, 1024, 1, tinyCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestRunTableII(t *testing.T) {
	if err := run(2, false, false, false, false, false, 1024, 1, tinyCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestRunNetworkAndAblation(t *testing.T) {
	if err := run(0, false, true, true, false, false, 8<<10, 1, tinyCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestRunTaintCount(t *testing.T) {
	if err := run(0, true, false, false, false, false, 1024, 1, tinyCfg()); err != nil {
		t.Fatal(err)
	}
}
