// Command dista-load is the closed-loop load generator for the netsim
// scheduler fabric (DESIGN.md §12): it drives tens of thousands of
// concurrent instrumented connections — stream, datagram and vectored
// paths over a configurable taint-density mix, optionally against a
// live simulated taintmap cluster — and reports the tail latency the
// fabric actually delivers.
//
// Usage:
//
//	go run ./cmd/dista-load -conns 50000 -ops 4 -payload 1024
//	go run ./cmd/dista-load -conns 10000 -cluster 4 -adaptive -json
//
// The default output is the human-readable report (throughput,
// p50/p99/p999, goroutine bill); -json emits the same fields as one
// JSON object for scripting.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dista/internal/load"
)

func main() {
	var (
		conns       = flag.Int("conns", 10000, "concurrent sessions (connections)")
		ops         = flag.Int("ops", 8, "operations per session")
		payload     = flag.Int("payload", 1024, "payload bytes per operation")
		workers     = flag.Int("workers", 4, "driver goroutines multiplexing the sessions")
		sinkWorkers = flag.Int("sink-workers", 4, "echo-sink goroutines (polled mode)")
		mix         = flag.String("mix", "70/10/10/10", "clean/uniform/sparse/dense percentage split")
		paths       = flag.String("paths", "60/20/20", "stream/datagram/vectored percentage split")
		adaptive    = flag.Bool("adaptive", false, "use the density-tiering endpoints")
		cluster     = flag.Int("cluster", 0, "taintmap cluster members (0 = shared local store)")
		perConn     = flag.Bool("sink-per-conn", false, "goroutine-per-connection echo sink (pre-fabric comparison shape)")
		jsonOut     = flag.Bool("json", false, "emit the report as JSON")
	)
	flag.Parse()

	cfg := load.Config{
		Conns:                *conns,
		Ops:                  *ops,
		Payload:              *payload,
		Workers:              *workers,
		SinkWorkers:          *sinkWorkers,
		Adaptive:             *adaptive,
		ClusterMembers:       *cluster,
		SinkGoroutinePerConn: *perConn,
	}
	var err error
	if cfg.Mix, err = parseMix(*mix); err != nil {
		fmt.Fprintln(os.Stderr, "dista-load:", err)
		os.Exit(2)
	}
	if cfg.Paths, err = parsePaths(*paths); err != nil {
		fmt.Fprintln(os.Stderr, "dista-load:", err)
		os.Exit(2)
	}
	if err := run(cfg, *jsonOut, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dista-load:", err)
		os.Exit(1)
	}
}

func run(cfg load.Config, jsonOut bool, w io.Writer) error {
	r, err := load.Run(cfg)
	if err != nil {
		return err
	}
	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(jsonReport(r))
	}
	_, err = fmt.Fprintln(w, r)
	return err
}

// jsonReport flattens the Report into stable machine-readable fields
// (durations in nanoseconds, derived rates precomputed).
func jsonReport(r load.Report) map[string]any {
	return map[string]any{
		"conns":           r.Conns,
		"ops":             r.Ops,
		"bytes":           r.Bytes,
		"taint_bytes":     r.TaintBytes,
		"elapsed_ns":      r.Elapsed.Nanoseconds(),
		"p50_ns":          r.P50.Nanoseconds(),
		"p99_ns":          r.P99.Nanoseconds(),
		"p999_ns":         r.P999.Nanoseconds(),
		"ops_per_sec":     r.OpsPerSec(),
		"bytes_per_sec":   r.BytesPerSec(),
		"taints_per_sec":  r.TaintsPerSec(),
		"sink_goroutines": r.SinkGoroutines,
		"peak_goroutines": r.PeakGoroutines,
	}
}

// parseMix parses "clean/uniform/sparse/dense" percentages.
func parseMix(s string) (load.Mix, error) {
	ps, err := splitPercents(s, 4)
	if err != nil {
		return load.Mix{}, fmt.Errorf("-mix %q: %w", s, err)
	}
	return load.Mix{Clean: ps[0], Uniform: ps[1], Sparse: ps[2], Dense: ps[3]}, nil
}

// parsePaths parses "stream/datagram/vectored" percentages.
func parsePaths(s string) (load.PathMix, error) {
	ps, err := splitPercents(s, 3)
	if err != nil {
		return load.PathMix{}, fmt.Errorf("-paths %q: %w", s, err)
	}
	return load.PathMix{Stream: ps[0], Datagram: ps[1], Vectored: ps[2]}, nil
}

func splitPercents(s string, n int) ([]int, error) {
	parts := strings.Split(s, "/")
	if len(parts) != n {
		return nil, fmt.Errorf("want %d '/'-separated percentages", n)
	}
	out := make([]int, n)
	sum := 0
	for i, p := range parts {
		v := 0
		if _, err := fmt.Sscanf(p, "%d", &v); err != nil || v < 0 {
			return nil, fmt.Errorf("bad percentage %q", p)
		}
		out[i] = v
		sum += v
	}
	if sum != 100 {
		return nil, fmt.Errorf("percentages sum to %d, want 100", sum)
	}
	return out, nil
}
