package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dista/internal/load"
)

func TestParseMix(t *testing.T) {
	m, err := parseMix("70/10/10/10")
	if err != nil {
		t.Fatal(err)
	}
	if m != (load.Mix{Clean: 70, Uniform: 10, Sparse: 10, Dense: 10}) {
		t.Fatalf("mix = %+v", m)
	}
	for _, bad := range []string{"70/10/10", "70/10/10/20", "a/b/c/d", "-10/50/30/30"} {
		if _, err := parseMix(bad); err == nil {
			t.Fatalf("parseMix(%q) accepted", bad)
		}
	}
	p, err := parsePaths("60/20/20")
	if err != nil {
		t.Fatal(err)
	}
	if p != (load.PathMix{Stream: 60, Datagram: 20, Vectored: 20}) {
		t.Fatalf("paths = %+v", p)
	}
	if _, err := parsePaths("50/50"); err == nil {
		t.Fatal("short path mix accepted")
	}
}

func TestRunHuman(t *testing.T) {
	var out bytes.Buffer
	cfg := load.Config{Conns: 50, Ops: 2, Payload: 256}
	if err := run(cfg, false, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "p999=") {
		t.Fatalf("human report missing quantiles: %q", out.String())
	}
}

func TestRunJSON(t *testing.T) {
	var out bytes.Buffer
	cfg := load.Config{Conns: 50, Ops: 2, Payload: 256}
	if err := run(cfg, true, &out); err != nil {
		t.Fatal(err)
	}
	var rep map[string]any
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if rep["ops"].(float64) != 100 {
		t.Fatalf("ops = %v, want 100", rep["ops"])
	}
	for _, k := range []string{"p50_ns", "p99_ns", "p999_ns", "sink_goroutines", "taints_per_sec"} {
		if _, ok := rep[k]; !ok {
			t.Fatalf("JSON report missing %q", k)
		}
	}
}
