// Command dista-methods prints the instrumented-method registry — the
// reproduction of the paper's Table I — and the §III-B summary (13 JNI
// natives in 5 classes, 23 instrumented methods in total).
package main

import (
	"fmt"

	"dista/internal/instrument"
)

func main() {
	fmt.Println("TABLE I: INSTRUMENTED METHODS AND THEIR TYPES")
	fmt.Printf("%-40s %-24s %-5s %-4s %s\n", "Class", "Method", "Type", "JNI", "Direction")
	for _, m := range instrument.Registry {
		jni := ""
		if m.JNI {
			jni = "yes"
		}
		fmt.Printf("%-40s %-24s %-5s %-4s %s\n", m.Class, m.Name, m.Type, jni, m.Direction)
	}
	fmt.Printf("\n%d instrumented methods in total (§IV);", len(instrument.Registry))
	fmt.Printf(" %d bottom-level JNI natives in %d classes (§III-B).\n",
		len(instrument.JNIMethods()), len(instrument.JNIClasses()))
}
