// Command dista-micro runs a single micro-benchmark case (Table II) in
// a chosen tracking mode and reports what the check() sink observed —
// the per-case RQ1 soundness/precision demonstration.
//
// Usage:
//
//	dista-micro [-case 1] [-mode dista] [-size 10485760] [-list]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dista/internal/bench"
	"dista/internal/core/tracker"
	"dista/internal/microbench"
)

func main() {
	caseID := flag.Int("case", 1, "Table II case id (1-30)")
	modeStr := flag.String("mode", "dista", "tracking mode: off | phosphor | dista")
	size := flag.Int("size", 10<<20, "payload bytes per side (paper: ~10MB)")
	list := flag.Bool("list", false, "list all cases and exit")
	flag.Parse()

	if err := run(*caseID, *modeStr, *size, *list); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(caseID int, modeStr string, size int, list bool) error {
	if list {
		bench.WriteTableII(os.Stdout)
		return nil
	}
	c, ok := microbench.CaseByID(caseID)
	if !ok {
		return fmt.Errorf("dista-micro: no case %d (1-30)", caseID)
	}
	mode, err := tracker.ParseMode(modeStr)
	if err != nil {
		return err
	}

	fmt.Printf("case %d: %s / %s (mode %s, %d bytes per side)\n", c.ID, c.Group, c.Name, mode, size)
	start := time.Now()
	h, err := microbench.RunCase(c, mode, size)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	tags := h.SinkTags()
	fmt.Printf("elapsed: %v\n", elapsed)
	fmt.Printf("check() observed taints: [%s]\n", strings.Join(tags, ", "))
	d1, w1 := h.Node1.Agent.Traffic()
	d2, w2 := h.Node2.Agent.Traffic()
	if d1+d2 > 0 {
		fmt.Printf("traffic: %d payload bytes, %d wire bytes (%.2fx)\n",
			d1+d2, w1+w2, float64(w1+w2)/float64(d1+d2))
	}
	fmt.Printf("global taints in Taint Map: %d\n", h.Store.Stats().GlobalTaints)

	if mode == tracker.ModeDista {
		want := "Data1, Data2"
		if strings.Join(tags, ", ") == want {
			fmt.Println("RESULT: sound and precise (exactly {Data1, Data2} at the sink)")
		} else {
			fmt.Printf("RESULT: UNEXPECTED (want [%s])\n", want)
		}
	}
	return nil
}
