package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run(0, "dista", 0, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunSmallCase(t *testing.T) {
	for _, mode := range []string{"off", "phosphor", "dista"} {
		if err := run(1, mode, 8<<10, false); err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
	}
}

func TestRunBadCase(t *testing.T) {
	if err := run(99, "dista", 1024, false); err == nil {
		t.Fatal("want error for unknown case")
	}
}

func TestRunBadMode(t *testing.T) {
	if err := run(1, "warp", 1024, false); err == nil {
		t.Fatal("want error for unknown mode")
	}
}
