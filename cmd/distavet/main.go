// Command distavet runs the distavet static-analysis suite: vet-style
// analyzers that enforce this tree's taint-soundness invariants
// (shadowdrop, labelcopy, errcmp, lockorder, mustcheck — see
// DESIGN.md §6). It is built entirely on the standard library and
// type-checks the module itself, so it needs neither golang.org/x/tools
// nor network access.
//
// Usage:
//
//	distavet [-tests=false] [-run name,name] [-list] [-facts dir] [-json] [package dirs]
//
// With no arguments (or "./...") every package of the enclosing module
// is analyzed, test files included. Explicit directory arguments are
// analyzed instead — including directories under testdata/, which the
// go tool ignores; the analyzer golden corpora are loaded this way.
//
// -facts names a cache directory for per-package analysis facts
// (function summaries + raw diagnostics, keyed by content hash of the
// package, its import closure and the analyzer set): a warm run
// replays unchanged packages instead of re-analyzing them. -json
// emits the diagnostics as a JSON array instead of vet-style lines.
//
// Diagnostics print one per line as "file:line: analyzer: message".
// The exit status is 1 when any diagnostic is reported, 2 on usage or
// load errors, 0 on a clean tree. Findings can be suppressed with
//
//	//lint:ignore distavet/<analyzer> reason
//
// on the offending line or the line above it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"dista/internal/analysis"
	"dista/internal/analysis/loader"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("distavet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tests := fs.Bool("tests", true, "analyze _test.go files too")
	runNames := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	factsDir := fs.String("facts", "", "fact-cache directory; warm runs replay unchanged packages")
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *runNames != "" {
		var err error
		if analyzers, err = analysis.ByName(*runNames); err != nil {
			fmt.Fprintf(stderr, "distavet: %v\n", err)
			return 2
		}
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "distavet: %v\n", err)
		return 2
	}
	root, err := loader.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "distavet: %v\n", err)
		return 2
	}
	prog, err := loader.New(root, *tests)
	if err != nil {
		fmt.Fprintf(stderr, "distavet: %v\n", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var pkgs []*loader.Package
	for _, pat := range patterns {
		switch pat {
		case "./...", "all":
			mod, err := prog.ModulePackages()
			if err != nil {
				fmt.Fprintf(stderr, "distavet: %v\n", err)
				return 2
			}
			pkgs = append(pkgs, mod...)
		default:
			pkg, err := prog.LoadDir(pat)
			if err != nil {
				fmt.Fprintf(stderr, "distavet: %s: %v\n", pat, err)
				return 2
			}
			pkgs = append(pkgs, pkg)
		}
	}

	var facts *analysis.FactStore
	if *factsDir != "" {
		if facts, err = analysis.NewFactStore(*factsDir); err != nil {
			fmt.Fprintf(stderr, "distavet: %v\n", err)
			return 2
		}
	}

	diags := analysis.RunWithFacts(prog, pkgs, analyzers, facts)
	if *jsonOut {
		type jsonDiag struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			name := d.Pos.Filename
			if rel, err := filepath.Rel(cwd, name); err == nil && len(rel) < len(name) {
				name = rel
			}
			out = append(out, jsonDiag{File: name, Line: d.Pos.Line, Analyzer: d.Analyzer, Message: d.Message})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "distavet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			name := d.Pos.Filename
			if rel, err := filepath.Rel(cwd, name); err == nil && len(rel) < len(name) {
				name = rel
			}
			fmt.Fprintf(stdout, "%s:%d: %s: %s\n", name, d.Pos.Line, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "distavet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
