package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

var corpus = filepath.Join("..", "..", "internal", "analysis", "testdata", "src")

// TestSeededViolationsFailTheRun pins the vet contract: analyzing a
// package seeded with violations prints file:line: analyzer: message
// diagnostics and exits non-zero.
func TestSeededViolationsFailTheRun(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{filepath.Join(corpus, "errcmp")}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "errcmp.go:") || !strings.Contains(out, ": errcmp: sentinel error") {
		t.Fatalf("diagnostics missing file:line: analyzer: message shape:\n%s", out)
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Fatalf("stderr should summarize the finding count, got %q", stderr.String())
	}
}

// TestRunFilter covers -run selection and unknown-analyzer rejection.
func TestRunFilter(t *testing.T) {
	var stdout, stderr bytes.Buffer
	// lockorder has nothing to say about the errcmp corpus.
	if code := run([]string{"-run", "lockorder", filepath.Join(corpus, "errcmp")}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if code := run([]string{"-run", "nosuch"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown analyzer: exit = %d, want 2", code)
	}
}

// TestList covers -list output.
func TestList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, name := range []string{"shadowdrop", "labelcopy", "errcmp", "lockorder", "mustcheck"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout.String())
		}
	}
}
