package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var corpus = filepath.Join("..", "..", "internal", "analysis", "testdata", "src")

// TestSeededViolationsFailTheRun pins the vet contract: analyzing a
// package seeded with violations prints file:line: analyzer: message
// diagnostics and exits non-zero.
func TestSeededViolationsFailTheRun(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{filepath.Join(corpus, "errcmp")}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "errcmp.go:") || !strings.Contains(out, ": errcmp: sentinel error") {
		t.Fatalf("diagnostics missing file:line: analyzer: message shape:\n%s", out)
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Fatalf("stderr should summarize the finding count, got %q", stderr.String())
	}
}

// TestRunFilter covers -run selection and unknown-analyzer rejection.
func TestRunFilter(t *testing.T) {
	var stdout, stderr bytes.Buffer
	// lockorder has nothing to say about the errcmp corpus.
	if code := run([]string{"-run", "lockorder", filepath.Join(corpus, "errcmp")}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if code := run([]string{"-run", "nosuch"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown analyzer: exit = %d, want 2", code)
	}
}

// TestFactsWarmRun pins the cache contract: a second run against an
// unchanged corpus with the same -facts dir replays identical output
// and the same exit code, and actually populates the cache directory.
func TestFactsWarmRun(t *testing.T) {
	dir := t.TempDir()
	target := filepath.Join(corpus, "errcmp")

	var cold, coldErr bytes.Buffer
	codeCold := run([]string{"-facts", dir, target}, &cold, &coldErr)
	if codeCold != 1 {
		t.Fatalf("cold run exit = %d, want 1\nstderr: %s", codeCold, coldErr.String())
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("cold run left no fact entries in %s (err=%v)", dir, err)
	}

	var warm, warmErr bytes.Buffer
	codeWarm := run([]string{"-facts", dir, target}, &warm, &warmErr)
	if codeWarm != codeCold {
		t.Fatalf("warm exit = %d, cold = %d", codeWarm, codeCold)
	}
	if warm.String() != cold.String() {
		t.Fatalf("warm replay diverged from cold run:\ncold:\n%s\nwarm:\n%s", cold.String(), warm.String())
	}
}

// TestJSONOutput covers -json: a well-formed array whose entries carry
// the file/line/analyzer/message fields of the plain format.
func TestJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", filepath.Join(corpus, "errcmp")}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, stderr.String())
	}
	var diags []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(diags) == 0 {
		t.Fatal("-json reported no diagnostics for the seeded corpus")
	}
	for _, d := range diags {
		if d.File == "" || d.Line <= 0 || d.Analyzer != "errcmp" || d.Message == "" {
			t.Fatalf("malformed diagnostic: %+v", d)
		}
	}
}

// TestList covers -list output.
func TestList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, name := range []string{"shadowdrop", "labelcopy", "errcmp", "lockorder", "mustcheck"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout.String())
		}
	}
}
