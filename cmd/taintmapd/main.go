// Command taintmapd runs a standalone Taint Map server over real TCP —
// the independent process of DSN'22 §III-D that all nodes of a DisTA
// deployment contact to exchange Global IDs for taints.
//
// The server speaks both protocol generations on every connection:
// the legacy untagged stop-and-wait frames and the tagged pipelined
// frames that multiplexed clients interleave on one connection. The
// store behind it is sharded, so concurrent connections register and
// look up taints without funneling through one lock.
//
// Usage:
//
//	taintmapd [-addr :7431] [-v] [-stats-every 1m] [-read-timeout 0]
//	          [-max-conns 0] [-grace 5s]
//
// On SIGINT/SIGTERM the server drains gracefully: it stops accepting,
// lets in-flight connections finish (bounded by -grace), logs the final
// store counters, and exits. A second signal forces an immediate stop.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dista/internal/taintmap"
)

func main() {
	addr := flag.String("addr", ":7431", "TCP listen address")
	verbose := flag.Bool("v", false, "log connection errors")
	statsEvery := flag.Duration("stats-every", 0,
		"periodically log store counters (0 disables)")
	readTimeout := flag.Duration("read-timeout", 0,
		"drop connections idle or mid-frame for this long (0 disables)")
	maxConns := flag.Int("max-conns", 0,
		"refuse connections over this concurrency cap (0 means unlimited)")
	grace := flag.Duration("grace", 5*time.Second,
		"how long a signal-triggered shutdown waits for connections to drain")
	flag.Parse()

	if err := run(*addr, *verbose, *statsEvery, *readTimeout, *maxConns, *grace); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// tcpAcceptor adapts net.Listener to the taintmap.Acceptor interface.
type tcpAcceptor struct {
	l net.Listener
}

func (a tcpAcceptor) Accept() (io.ReadWriteCloser, error) { return a.l.Accept() }
func (a tcpAcceptor) Close() error                        { return a.l.Close() }

func run(addr string, verbose bool, statsEvery, readTimeout time.Duration, maxConns int, grace time.Duration) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("taintmapd: listen: %w", err)
	}
	logf := func(string, ...any) {}
	if verbose {
		logf = log.Printf
	}
	srv := taintmap.NewServer(taintmap.NewStore(), tcpAcceptor{l: l}, logf,
		taintmap.WithReadTimeout(readTimeout), taintmap.WithMaxConns(maxConns))
	srv.Start()
	log.Printf("taintmapd: serving on %s", l.Addr())

	stopStats := make(chan struct{})
	if statsEvery > 0 {
		go func() {
			t := time.NewTicker(statsEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					st := srv.Store().Stats()
					log.Printf("taintmapd: %d global taints, %d registrations, %d lookups",
						st.GlobalTaints, st.Registrations, st.Lookups)
				case <-stopStats:
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	close(stopStats)
	log.Printf("taintmapd: draining (up to %v); signal again to force stop", grace)

	// A second signal skips the drain.
	go func() {
		<-sig
		log.Printf("taintmapd: forced stop")
		srv.Close()
	}()
	err = srv.Shutdown(grace)

	st := srv.Store().Stats()
	log.Printf("taintmapd: shut down (%d global taints, %d registrations, %d lookups)",
		st.GlobalTaints, st.Registrations, st.Lookups)
	return err
}
