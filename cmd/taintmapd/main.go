// Command taintmapd runs a standalone Taint Map server over real TCP —
// the independent process of DSN'22 §III-D that all nodes of a DisTA
// deployment contact to exchange Global IDs for taints.
//
// The server speaks both protocol generations on every connection:
// the legacy untagged stop-and-wait frames and the tagged pipelined
// frames that multiplexed clients interleave on one connection. The
// store behind it is sharded, so concurrent connections register and
// look up taints without funneling through one lock.
//
// Usage:
//
//	taintmapd [-addr :7431] [-v] [-stats-every 1m] [-read-timeout 0]
//	          [-max-conns 0] [-max-active 0] [-max-queue -1] [-grace 5s]
//	          [-part 0] [-peers part@addr,part@addr,...] [-rf 2]
//	          [-join host:port]
//
// Overload behavior: -max-active bounds the requests executing at once
// (with up to -max-queue more waiting; beyond that requests are
// answered with an overloaded error instead of executing), and
// connections over -max-conns are browned out — briefly answered with
// overloaded errors so well-behaved clients back off — rather than
// silently dropped.
//
// Cluster mode: with -peers (a static membership list) or -join (a seed
// member of a running cluster), the server becomes partition -part of a
// partitioned Taint Map — it answers ring/join requests, replicates its
// fresh registrations to its ring successors before acking, and adopts
// the entries its predecessors replicate to it. -advertise overrides
// the address peers and clients should dial for this server (defaults
// to -addr, which is rarely routable when it is just ":port").
//
// On SIGINT/SIGTERM the server drains gracefully: it stops accepting,
// lets in-flight connections finish (bounded by -grace), logs the final
// store counters, and exits. A second signal forces an immediate stop.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"dista/internal/taintmap"
)

func main() {
	addr := flag.String("addr", ":7431", "TCP listen address")
	verbose := flag.Bool("v", false, "log connection errors")
	statsEvery := flag.Duration("stats-every", 0,
		"periodically log store counters (0 disables)")
	readTimeout := flag.Duration("read-timeout", 0,
		"drop connections idle or mid-frame for this long (0 disables)")
	maxConns := flag.Int("max-conns", 0,
		"brown out connections over this concurrency cap (0 means unlimited)")
	maxActive := flag.Int("max-active", 0,
		"max requests executing at once; excess queue then shed (0 means unlimited)")
	maxQueue := flag.Int("max-queue", -1,
		"max requests waiting for an execution slot (-1 means 4*max-active)")
	grace := flag.Duration("grace", 5*time.Second,
		"how long a signal-triggered shutdown waits for connections to drain")
	part := flag.Uint("part", 0, "cluster partition index of this server")
	peers := flag.String("peers", "",
		"static cluster membership as part@addr,part@addr,... (this server included or not)")
	rf := flag.Int("rf", taintmap.DefaultReplication,
		"cluster replication factor (owner + rf-1 successors)")
	join := flag.String("join", "",
		"join a running cluster via this seed member address")
	advertise := flag.String("advertise", "",
		"address peers/clients dial for this server (default -addr)")
	flag.Parse()

	cl := clusterFlags{part: uint32(*part), peers: *peers, rf: *rf, join: *join, advertise: *advertise}
	adm := admissionFlags{maxActive: *maxActive, maxQueue: *maxQueue}
	if err := run(*addr, *verbose, *statsEvery, *readTimeout, *maxConns, adm, *grace, cl); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// tcpAcceptor adapts net.Listener to the taintmap.Acceptor interface.
type tcpAcceptor struct {
	l net.Listener
}

func (a tcpAcceptor) Accept() (io.ReadWriteCloser, error) { return a.l.Accept() }
func (a tcpAcceptor) Close() error                        { return a.l.Close() }

// admissionFlags carries the request-gate command line.
type admissionFlags struct {
	maxActive int
	maxQueue  int
}

// clusterFlags carries the cluster-mode command line.
type clusterFlags struct {
	part      uint32
	peers     string
	rf        int
	join      string
	advertise string
}

// parsePeers decodes -peers: comma-separated part@addr entries.
func parsePeers(s string) ([]taintmap.Member, error) {
	var members []taintmap.Member
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		at := strings.IndexByte(entry, '@')
		if at <= 0 {
			return nil, fmt.Errorf("taintmapd: -peers entry %q is not part@addr", entry)
		}
		part, err := strconv.ParseUint(entry[:at], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("taintmapd: -peers entry %q: %v", entry, err)
		}
		members = append(members, taintmap.Member{Part: uint32(part), Addr: entry[at+1:]})
	}
	return members, nil
}

func run(addr string, verbose bool, statsEvery, readTimeout time.Duration, maxConns int, adm admissionFlags, grace time.Duration, cl clusterFlags) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("taintmapd: listen: %w", err)
	}
	logf := func(string, ...any) {}
	if verbose {
		logf = log.Printf
	}

	opts := []taintmap.ServerOption{
		taintmap.WithReadTimeout(readTimeout), taintmap.WithMaxConns(maxConns),
		taintmap.WithAdmission(adm.maxActive, adm.maxQueue),
	}
	store := taintmap.NewStore()
	var node *taintmap.ClusterNode
	if cl.peers != "" || cl.join != "" {
		if store, err = taintmap.NewPartitionStore(cl.part); err != nil {
			return err
		}
		self := taintmap.Member{Part: cl.part, Addr: cl.advertise}
		if self.Addr == "" {
			self.Addr = l.Addr().String()
		}
		members, err := parsePeers(cl.peers)
		if err != nil {
			return err
		}
		dial := func(peerAddr string) (io.ReadWriteCloser, error) {
			return net.DialTimeout("tcp", peerAddr, 2*time.Second)
		}
		if node, err = taintmap.NewClusterNode(self, members, cl.rf, dial); err != nil {
			return err
		}
		if cl.join != "" {
			ring, err := node.JoinVia(cl.join)
			if err != nil {
				return err
			}
			log.Printf("taintmapd: joined cluster epoch %d (%d members)", ring.Epoch, len(ring.Members()))
		}
		opts = append(opts, taintmap.WithClusterNode(node))
		log.Printf("taintmapd: cluster partition %d, rf %d", cl.part, node.Ring().RF)
	}

	srv := taintmap.NewServer(store, tcpAcceptor{l: l}, logf, opts...)
	srv.Start()
	log.Printf("taintmapd: serving on %s", l.Addr())

	stopStats := make(chan struct{})
	if statsEvery > 0 {
		go func() {
			t := time.NewTicker(statsEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					st := srv.Store().Stats()
					log.Printf("taintmapd: %d global taints, %d registrations, %d lookups",
						st.GlobalTaints, st.Registrations, st.Lookups)
					ss := srv.Stats()
					log.Printf("taintmapd: %d conns (%d accepted, %d browned out, %d refused); requests %d admitted, %d queued, %d shed",
						ss.ActiveConns, ss.Accepted, ss.ShedConns, ss.RefusedConns,
						ss.AdmittedReqs, ss.QueuedReqs, ss.ShedReqs)
				case <-stopStats:
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	close(stopStats)
	log.Printf("taintmapd: draining (up to %v); signal again to force stop", grace)

	// A second signal skips the drain.
	go func() {
		<-sig
		log.Printf("taintmapd: forced stop")
		srv.Close()
	}()
	err = srv.Shutdown(grace)
	if node != nil {
		node.Close()
	}

	st := srv.Store().Stats()
	log.Printf("taintmapd: shut down (%d global taints, %d registrations, %d lookups)",
		st.GlobalTaints, st.Registrations, st.Lookups)
	return err
}
