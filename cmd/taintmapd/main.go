// Command taintmapd runs a standalone Taint Map server over real TCP —
// the independent process of DSN'22 §III-D that all nodes of a DisTA
// deployment contact to exchange Global IDs for taints.
//
// Usage:
//
//	taintmapd [-addr :7431] [-v]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"dista/internal/taintmap"
)

func main() {
	addr := flag.String("addr", ":7431", "TCP listen address")
	verbose := flag.Bool("v", false, "log connection errors")
	flag.Parse()

	if err := run(*addr, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// tcpAcceptor adapts net.Listener to the taintmap.Acceptor interface.
type tcpAcceptor struct {
	l net.Listener
}

func (a tcpAcceptor) Accept() (io.ReadWriteCloser, error) { return a.l.Accept() }
func (a tcpAcceptor) Close() error                        { return a.l.Close() }

func run(addr string, verbose bool) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("taintmapd: listen: %w", err)
	}
	logf := func(string, ...any) {}
	if verbose {
		logf = log.Printf
	}
	srv := taintmap.NewServer(taintmap.NewStore(), tcpAcceptor{l: l}, logf)
	srv.Start()
	log.Printf("taintmapd: serving on %s", l.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	st := srv.Store().Stats()
	log.Printf("taintmapd: shutting down (%d global taints, %d registrations, %d lookups)",
		st.GlobalTaints, st.Registrations, st.Lookups)
	return srv.Close()
}
