package dista

import (
	"sync"
	"testing"

	"dista/internal/analysis"
	"dista/internal/analysis/loader"
)

// BenchmarkDistavet measures the distavet analysis pass itself: the
// full six-analyzer suite against the original five-analyzer core, both
// over the same pre-loaded module. Loading (parse + type-check of the
// module and its stdlib closure) happens once outside the timed region
// — the artifact pins the marginal cost of *analysis*, which is what
// grows as the suite gains invariants. The acceptance criterion is the
// in-run ratio Suite/Core <= 1.15x: each added analyzer must ride the
// shared load, not multiply it.
var distavetBench struct {
	once sync.Once
	prog *loader.Program
	pkgs []*loader.Package
	err  error
}

func distavetLoad(b *testing.B) (*loader.Program, []*loader.Package) {
	b.Helper()
	distavetBench.once.Do(func() {
		root, err := loader.FindModuleRoot(".")
		if err != nil {
			distavetBench.err = err
			return
		}
		prog, err := loader.New(root, true)
		if err != nil {
			distavetBench.err = err
			return
		}
		pkgs, err := prog.ModulePackages()
		if err != nil {
			distavetBench.err = err
			return
		}
		distavetBench.prog, distavetBench.pkgs = prog, pkgs
	})
	if distavetBench.err != nil {
		b.Fatal(distavetBench.err)
	}
	return distavetBench.prog, distavetBench.pkgs
}

func benchAnalyzers(b *testing.B, as []*analysis.Analyzer) {
	prog, pkgs := distavetLoad(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if diags := analysis.Run(prog.Fset, pkgs, as); len(diags) != 0 {
			b.Fatalf("module is not distavet-clean: %s", diags[0])
		}
	}
}

func BenchmarkDistavet(b *testing.B) {
	b.Run("Core", func(b *testing.B) {
		core, err := analysis.ByName("shadowdrop,labelcopy,errcmp,lockorder,mustcheck")
		if err != nil {
			b.Fatal(err)
		}
		benchAnalyzers(b, core)
	})
	b.Run("Suite", func(b *testing.B) {
		benchAnalyzers(b, analysis.All())
	})
}
