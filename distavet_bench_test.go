package dista

import (
	"sync"
	"testing"

	"dista/internal/analysis"
	"dista/internal/analysis/loader"
)

// BenchmarkDistavet measures the distavet analysis pass itself over
// the pre-loaded module. Loading (parse + type-check of the module and
// its stdlib closure) happens once outside the timed region — the
// artifact pins the marginal cost of *analysis*, which is what grows
// as the suite gains invariants. Three variants:
//
//   - Core: the original PR 4 five-analyzer set, cold (index rebuilt
//     every iteration);
//   - Suite: the full nine-analyzer interprocedural suite, cold —
//     call-graph build, summary fixpoint and all analyzers;
//   - SuiteWarm: the full suite against a primed fact cache — every
//     package replays its recorded diagnostics, no analyzers and no
//     index build run.
//
// Acceptance criteria (BENCH_9.json): Suite/Core <= 1.5x — the
// interprocedural layer plus four extra analyzers must ride the
// shared load, not multiply it — and SuiteWarm/Suite <= 0.35x — the
// fact cache must make warm lint runs cheap.
var distavetBench struct {
	once sync.Once
	prog *loader.Program
	pkgs []*loader.Package
	err  error
}

func distavetLoad(b *testing.B) (*loader.Program, []*loader.Package) {
	b.Helper()
	distavetBench.once.Do(func() {
		root, err := loader.FindModuleRoot(".")
		if err != nil {
			distavetBench.err = err
			return
		}
		prog, err := loader.New(root, true)
		if err != nil {
			distavetBench.err = err
			return
		}
		pkgs, err := prog.ModulePackages()
		if err != nil {
			distavetBench.err = err
			return
		}
		distavetBench.prog, distavetBench.pkgs = prog, pkgs
	})
	if distavetBench.err != nil {
		b.Fatal(distavetBench.err)
	}
	return distavetBench.prog, distavetBench.pkgs
}

func benchAnalyzers(b *testing.B, as []*analysis.Analyzer, facts *analysis.FactStore) {
	prog, pkgs := distavetLoad(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Every iteration pays the full interprocedural cost (or, in
		// the warm variant, proves it can skip it): the memoized index
		// would otherwise make iterations 2..N nearly free.
		analysis.ResetIndexCache()
		if diags := analysis.RunWithFacts(prog, pkgs, as, facts); len(diags) != 0 {
			b.Fatalf("module is not distavet-clean: %s", diags[0])
		}
	}
}

func BenchmarkDistavet(b *testing.B) {
	b.Run("Core", func(b *testing.B) {
		core, err := analysis.ByName("shadowdrop,labelcopy,errcmp,lockorder,mustcheck")
		if err != nil {
			b.Fatal(err)
		}
		benchAnalyzers(b, core, nil)
	})
	b.Run("Suite", func(b *testing.B) {
		benchAnalyzers(b, analysis.All(), nil)
	})
	b.Run("SuiteWarm", func(b *testing.B) {
		facts, err := analysis.NewFactStore(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		prog, pkgs := distavetLoad(b)
		analysis.ResetIndexCache()
		if diags := analysis.RunWithFacts(prog, pkgs, analysis.All(), facts); len(diags) != 0 {
			b.Fatalf("module is not distavet-clean: %s", diags[0])
		}
		benchAnalyzers(b, analysis.All(), facts)
	})
}
