// Cross-system tracking: the HBase+ZooKeeper scenario (paper Table III
// row 5). Region-server names read from config files travel RS ->
// ZooKeeper -> HMaster, and the tainted TableName travels client ->
// region server -> client — taints crossing the boundary between two
// distinct distributed systems, which is exactly what system-specific
// trackers like Kakute cannot do.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"dista/internal/core/tracker"
	"dista/internal/jre"
	"dista/internal/netsim"
	"dista/internal/systems/hbase"
	"dista/internal/taintmap"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	workDir, err := os.MkdirTemp("", "dista-crosssystem-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(workDir)

	net := netsim.New()
	store := taintmap.NewStore()
	newNode := func(name string) *jre.Env {
		agent := tracker.New(name, tracker.ModeDista)
		agent = tracker.New(name, tracker.ModeDista,
			tracker.WithTaintMap(taintmap.NewLocalClient(store, agent.Tree())))
		return jre.NewEnv(net, agent)
	}

	// Region-server config files: the SIM sources.
	var confs []string
	for i := 1; i <= 2; i++ {
		path := filepath.Join(workDir, fmt.Sprintf("rs%d.conf", i))
		if err := os.WriteFile(path, []byte(fmt.Sprintf("region-host-%d", i)), 0o644); err != nil {
			return err
		}
		confs = append(confs, path)
	}

	cluster, err := hbase.StartCluster("demo",
		newNode("zknode"), newNode("hmaster"),
		[]*jre.Env{newNode("rs1"), newNode("rs2")}, confs,
		[]string{"users", "events"})
	if err != nil {
		return err
	}
	defer cluster.Stop()

	fmt.Println("HMaster log (server names travelled RS -> ZooKeeper -> master):")
	for _, e := range cluster.Master.Log.Entries() {
		fmt.Printf("  [%s] tainted=%v  %s\n", e.Node, e.Tainted, e.Message)
	}

	// The SDT flow: a tainted TableName through a Get.
	client, err := hbase.NewClient(newNode("client"), cluster.ZKAddr)
	if err != nil {
		return err
	}
	defer client.Close()
	table := client.TableName("users")
	if err := client.Put(table, "row1", "name", "alice"); err != nil {
		return err
	}
	res, err := client.Get(table, "row1")
	if err != nil {
		return err
	}
	fmt.Printf("\nclient Get(%q, row1) -> %d cell(s); Result table taint: %s\n",
		res.Table.Value, len(res.Cells), res.Table.Label)
	fmt.Printf("taint map now holds %d global taints\n", store.Stats().GlobalTaints)
	return nil
}
