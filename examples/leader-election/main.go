// Leader election: the ZooKeeper SDT scenario of the paper's Table IV.
// Three mini-ZooKeeper peers run fast leader election with their Vote
// variables tainted at the source point; the followers' checkLeader
// sink reveals which vote won and where it came from — a specific data
// trace across nodes.
package main

import (
	"fmt"
	"log"

	"dista/internal/core/tracker"
	"dista/internal/jre"
	"dista/internal/netsim"
	"dista/internal/systems/zk"
	"dista/internal/taintmap"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net := netsim.New()
	store := taintmap.NewStore()
	peers := make([]*zk.Peer, 3)
	for i := range peers {
		name := fmt.Sprintf("zk%d", i+1)
		agent := tracker.New(name, tracker.ModeDista)
		agent = tracker.New(name, tracker.ModeDista,
			tracker.WithTaintMap(taintmap.NewLocalClient(store, agent.Tree())))
		peers[i] = zk.NewPeer(int64(i+1), jre.NewEnv(net, agent), "")
	}

	if err := zk.RunElection("demo", peers); err != nil {
		return err
	}

	leader := peers[0].Result().LeaderID.Value
	fmt.Printf("elected leader: peer %d\n\n", leader)
	for _, p := range peers {
		role := "follower"
		if p.ID == leader {
			role = "LEADER"
		}
		fmt.Printf("peer %d (%s):\n", p.ID, role)
		tags := p.Env.Agent.SinkTagValues(zk.SinkCheckLeader)
		if len(tags) == 0 {
			fmt.Println("  checkLeader sink: no taints (leaders do not run checkLeader)")
			continue
		}
		for _, obs := range p.Env.Agent.Observations() {
			if obs.Sink == zk.SinkCheckLeader {
				fmt.Printf("  checkLeader observed %s\n", obs.Taint)
			}
		}
	}
	fmt.Println("\ncross-node taint flows detected:")
	agents := make([]*tracker.Agent, len(peers))
	for i, p := range peers {
		agents[i] = p.Env.Agent
	}
	for _, flow := range tracker.CrossNodeFlows(agents...) {
		fmt.Println("  " + flow)
	}
	fmt.Printf("\nglobal taints exchanged through the Taint Map: %d (SDT scenarios stay small, §V-F)\n",
		store.Stats().GlobalTaints)
	return nil
}
