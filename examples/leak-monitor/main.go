// Leak monitor: the ZooKeeper SIM scenario (paper Fig. 11). Each peer
// reads three transaction-log files at startup — every read is a taint
// source — and the election carries the recovered epoch across nodes.
// LOG.info is the sink: whenever a node prints a value derived from
// another node's files, the monitor reports a potential leak.
//
// The source/sink configuration is loaded from a spec file exactly as a
// user of the real tool would write it (§V-E), and the agent arguments
// use the launch-flag syntax.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"dista/internal/core/tracker"
	"dista/internal/dlog"
	"dista/internal/jre"
	"dista/internal/netsim"
	"dista/internal/systems/zk"
	"dista/internal/taintmap"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	workDir, err := os.MkdirTemp("", "dista-leak-monitor-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(workDir)

	// The user's spec file: file reads are sources, LOG.info is the sink.
	specPath := filepath.Join(workDir, "simspec.txt")
	specText := "# ZooKeeper SIM scenario\nsource " + zk.SourceTxnRead + "\nsink " + dlog.SinkDesc + "\n"
	if err := os.WriteFile(specPath, []byte(specText), 0o644); err != nil {
		return err
	}

	// The launch-script flag, parsed the way the agent would.
	args, err := tracker.ParseAgentArgs("mode=dista,spec=" + specPath)
	if err != nil {
		return err
	}
	spec, err := tracker.LoadSpec(args.SpecPath)
	if err != nil {
		return err
	}
	fmt.Printf("agent config: mode=%s, %d source(s), %d sink(s)\n\n",
		args.Mode, len(spec.Sources()), len(spec.Sinks()))

	net := netsim.New()
	store := taintmap.NewStore()
	peers := make([]*zk.Peer, 3)
	for i := range peers {
		name := fmt.Sprintf("zk%d", i+1)
		agent := tracker.New(name, args.Mode)
		agent = tracker.New(name, args.Mode,
			tracker.WithTaintMap(taintmap.NewLocalClient(store, agent.Tree())),
			tracker.WithSpec(spec))
		dir := filepath.Join(workDir, name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		// Three txn logs per node; the last holds the largest zxid.
		base := int64(i+1) * 100
		if err := zk.WriteTxnLogs(dir, base+1, base+2, base+3); err != nil {
			return err
		}
		peers[i] = zk.NewPeer(int64(i+1), jre.NewEnv(net, agent), dir)
	}

	if err := zk.RunElection("leakdemo", peers); err != nil {
		return err
	}

	fmt.Println("log statements that printed tainted data:")
	for _, p := range peers {
		for _, e := range p.Log.Entries() {
			if !e.Tainted {
				continue
			}
			fmt.Printf("  [%s] %s\n", e.Node, e.Message)
		}
		for _, obs := range p.Env.Agent.Observations() {
			fmt.Printf("    -> sink %s on %s saw %s\n", obs.Sink, obs.Node, obs.Taint)
		}
	}
	fmt.Println("\nfull sink report:")
	agents := make([]*tracker.Agent, len(peers))
	for i, p := range peers {
		agents[i] = p.Env.Agent
	}
	tracker.WriteReport(os.Stdout, agents...)

	fmt.Printf("\nnote: only the *last* log file's taint (zxid3) crosses nodes — the\n")
	fmt.Printf("earlier reads are overwritten before the value is sent (Fig. 11).\n")
	return nil
}
