// Quickstart: the smallest possible DisTA-Go program. Two simulated
// nodes share a Taint Map; node1 taints a message and sends it through
// the instrumented socket stack; node2 checks its sink point and sees
// the taint — with the originating node identified by the tag's
// LocalID.
package main

import (
	"fmt"
	"log"

	"dista/internal/core/taint"
	"dista/internal/core/tracker"
	"dista/internal/jre"
	"dista/internal/netsim"
	"dista/internal/taintmap"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// One simulated network and one Taint Map for the whole cluster.
	net := netsim.New()
	store := taintmap.NewStore()

	// Each node is an Env: its network attachment plus a DisTA agent
	// (the -javaagent of the paper, in mode "dista").
	newNode := func(name string) *jre.Env {
		agent := tracker.New(name, tracker.ModeDista)
		agent = tracker.New(name, tracker.ModeDista,
			tracker.WithTaintMap(taintmap.NewLocalClient(store, agent.Tree())))
		return jre.NewEnv(net, agent)
	}
	node1 := newNode("node1")
	node2 := newNode("node2")

	// node2: a server that checks everything it receives at a sink point.
	ss, err := jre.ListenSocket(node2, "node2:9000")
	if err != nil {
		return err
	}
	defer ss.Close()
	done := make(chan error, 1)
	go func() {
		sock, err := ss.Accept()
		if err != nil {
			done <- err
			return
		}
		defer sock.Close()
		buf := taint.MakeBytes(14)
		if err := jre.ReadFull(sock.InputStream(), &buf); err != nil {
			done <- err
			return
		}
		hit := node2.Agent.CheckSinkBytes("Server#handle", buf)
		fmt.Printf("node2 received %q, tainted: %v\n", buf.Data, hit)
		done <- nil
	}()

	// node1: taint a secret at a source point and send it.
	secret := taint.FromString("secret-payload",
		node1.Agent.Source("Config#read", "db-password"))
	sock, err := jre.DialSocket(node1, "node2:9000")
	if err != nil {
		return err
	}
	defer sock.Close()
	if err := sock.OutputStream().Write(secret); err != nil {
		return err
	}
	if err := <-done; err != nil {
		return err
	}

	// Inspect what the sink saw: the tag value and where it was minted.
	for _, obs := range node2.Agent.Observations() {
		fmt.Printf("sink %q on %s observed taint %s\n", obs.Sink, obs.Node, obs.Taint)
	}
	fmt.Printf("taint map now holds %d global taint(s)\n", store.Stats().GlobalTaints)
	return nil
}
