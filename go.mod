module dista

go 1.22
