package dista

import (
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	"dista/internal/core/taint"
	"dista/internal/netsim"
	"dista/internal/taintmap"
)

// BenchmarkGrayFail measures the PR 8 gray-failure criteria on a
// 2-member RF-2 netsim cluster:
//
//	LookupHealthy — memo-cold wire lookups against two healthy replicas;
//	                every id is looked up exactly once, so each
//	                iteration pays a real round trip. The per-lookup
//	                latency distribution's p99 is reported as p99-ns/op.
//	LookupStalled — the same workload with one replica gray-failed
//	                (SetHostStall: it accepts dials and absorbs requests
//	                but its replies freeze). The breaker is tripped
//	                before the clock starts, so this measures steady
//	                state: rotation fall-through plus the occasional
//	                hedge, not first-contact timeout storms. The
//	                acceptance bound is p99 <= 3x the healthy p99.
//	MixedUnhedged — the standard 8-goroutine 90/10 mixed workload with
//	                hedging disabled (HedgeDelay < 0): the PR 7
//	                sequential-rotation client, the in-run baseline.
//	MixedHedged   — the same workload with hedging on defaults. Clean
//	                traffic almost never arms a hedge (memo hits return
//	                before the engine spins up), so this must stay
//	                within 1.05x of MixedUnhedged.
//
// Run with fixed iteration counts (-benchtime=Nx) so the id pool is
// minted once per run and every measured lookup stays memo-cold.
const (
	grayMembers   = 2
	grayWarmIDs   = 128
	grayRegChunk  = 2048
	grayTripWait  = 10 * time.Second
	grayCallTO    = 25 * time.Millisecond
	grayHedgeInit = 2 * time.Millisecond
)

func startGrayCluster(b *testing.B) (*netsim.Network, *taintmap.Ring) {
	b.Helper()
	network := netsim.New()
	members := make([]taintmap.Member, grayMembers)
	for i := range members {
		members[i] = taintmap.Member{Part: uint32(i), Addr: fmt.Sprintf("tm%d:1", i)}
	}
	ring, err := taintmap.NewRing(1, 2, members)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < grayMembers; i++ {
		store, err := taintmap.NewPartitionStore(uint32(i))
		if err != nil {
			b.Fatal(err)
		}
		srv, node, err := taintmap.StartSimClusterMember(network, ring, uint32(i), store)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { srv.Close(); node.Close() })
	}
	return network, ring
}

// grayLookupOpts keeps the fault reaction fast enough to reach steady
// state inside a benchmark run: short call timeout, a two-strike
// breaker, and a budget generous enough that hedges and reconnect
// probes are never denied (the bench measures latency, not starvation).
func grayLookupOpts() taintmap.ClusterOptions {
	return taintmap.ClusterOptions{
		Resilient: taintmap.ResilientOptions{
			CallTimeout:      grayCallTO,
			BackoffBase:      time.Millisecond,
			BackoffMax:       50 * time.Millisecond,
			BreakerThreshold: 2,
		},
		HedgeDelay:  grayHedgeInit,
		BudgetRate:  1000,
		BudgetBurst: 2000,
	}
}

// mintGrayIDs registers n distinct taints through the writer and
// returns their Global IDs. Chunked so a large -benchtime stays one
// batch round trip per chunk per partition.
func mintGrayIDs(b *testing.B, w taintmap.Client, tree *taint.Tree, prefix string, n int) []uint32 {
	b.Helper()
	ids := make([]uint32, 0, n)
	for off := 0; off < n; off += grayRegChunk {
		c := grayRegChunk
		if off+c > n {
			c = n - off
		}
		ts := make([]taint.Taint, c)
		for i := range ts {
			ts[i] = tree.NewSource(fmt.Sprintf("%s-%d", prefix, off+i), "bench:1")
		}
		got, err := w.RegisterBatch(ts)
		if err != nil {
			b.Fatal(err)
		}
		ids = append(ids, got...)
	}
	return ids
}

func benchGrayLookup(b *testing.B, stall bool) {
	network, ring := startGrayCluster(b)
	opt := grayLookupOpts()

	wtree := taint.NewTree()
	writer, err := taintmap.DialSimCluster(network, "writer:1", ring, wtree, opt)
	if err != nil {
		b.Fatal(err)
	}
	defer writer.Close()
	warm := mintGrayIDs(b, writer, wtree, "graywarm", grayWarmIDs)
	ids := mintGrayIDs(b, writer, wtree, "gray", b.N)

	rtree := taint.NewTree()
	reader, err := taintmap.DialSimCluster(network, "reader:1", ring, rtree, opt)
	if err != nil {
		b.Fatal(err)
	}
	defer reader.Close()

	if stall {
		network.SetHostStall("tm0", true)
		b.Cleanup(func() { network.SetHostStall("tm0", false) })
	}
	// Warm the hedge tracker (>= hedgeWarmup observations) and, when
	// stalled, let the watchdog timeouts trip the stalled member's
	// breaker so the timed loop measures steady-state fall-through.
	for _, id := range warm {
		if _, err := reader.Lookup(id); err != nil && !errors.Is(err, taintmap.ErrDegraded) {
			b.Fatal(err)
		}
	}
	if stall {
		deadline := time.Now().Add(grayTripWait)
		for !reader.Healths()[0].Degraded {
			if time.Now().After(deadline) {
				b.Fatal("stalled member never tripped the breaker")
			}
			time.Sleep(time.Millisecond)
		}
	}

	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if _, err := reader.Lookup(ids[i]); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, time.Since(start))
	}
	b.StopTimer()

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	rank := (99*len(lat) + 99) / 100 // ceil(0.99*n), matching the tracker's rounding
	if rank > len(lat) {
		rank = len(lat)
	}
	b.ReportMetric(float64(lat[rank-1].Nanoseconds()), "p99-ns/op")
}

func benchGrayMixed(b *testing.B, hedge bool) {
	network, ring := startGrayCluster(b)
	opt := taintmap.ClusterOptions{}
	if !hedge {
		opt.HedgeDelay = -1
	}
	tree := taint.NewTree()
	client, err := taintmap.DialSimCluster(network, "bench:1", ring, tree, opt)
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	runMixed(b, nil, client, tree, benchClients)
}

func BenchmarkGrayFail(b *testing.B) {
	b.Run("LookupHealthy", func(b *testing.B) { benchGrayLookup(b, false) })
	b.Run("LookupStalled", func(b *testing.B) { benchGrayLookup(b, true) })
	b.Run("MixedUnhedged", func(b *testing.B) { benchGrayMixed(b, false) })
	b.Run("MixedHedged", func(b *testing.B) { benchGrayMixed(b, true) })
}
