package dista

import (
	"sync"
	"testing"

	"dista/internal/core/taint"
	"dista/internal/core/tracker"
	"dista/internal/core/wire"
	"dista/internal/instrument"
	"dista/internal/netsim"
	"dista/internal/taintmap"
)

// Hot-path benchmarks backing BENCH_1.json: the operations the
// run-based shadow representation targets. Uniform cases model the
// dominant real workload (a whole buffer carrying one taint); Mixed
// cases are the adversarial per-byte-label workload that must not
// regress past the dense representation.

const mixedSize = 4 << 10

// encodeLabelsToWire is the sender's composite label→wire path: walk
// the label runs, register each distinct taint, and emit groups — what
// Endpoint.Write does between the caller's Bytes and socketWrite0.
func encodeLabelsToWire(client taintmap.Client, b taint.Bytes) []byte {
	var runs []wire.Run
	var ts []taint.Taint
	b.ForEachRun(func(from, to int, t taint.Taint) {
		runs = append(runs, wire.Run{N: to - from})
		ts = append(ts, t)
	})
	ids, err := client.RegisterBatch(ts)
	if err != nil {
		panic(err)
	}
	for i := range runs {
		runs[i].ID = ids[i]
	}
	return wire.EncodeRuns(nil, b.Data, runs)
}

// decodeWireToLabels is the receiver's composite wire→label path: feed
// the stream decoder, resolve the run ids, and label the destination
// buffer — what Endpoint.Read does between socketRead0 and the
// caller's Bytes.
func decodeWireToLabels(client taintmap.Client, raw []byte, n int) taint.Bytes {
	var dec wire.StreamDecoder
	dec.Feed(raw)
	data, runs := dec.NextRuns(n)
	ids := make([]uint32, len(runs))
	for i, r := range runs {
		ids[i] = r.ID
	}
	ts, err := client.LookupBatch(ids)
	if err != nil {
		panic(err)
	}
	buf := taint.WrapBytes(data)
	pos := 0
	for i, r := range runs {
		buf.SetRange(pos, pos+r.N, ts[i])
		pos += r.N
	}
	return buf
}

func BenchmarkHotPath(b *testing.B) {
	b.Run("TaintAllUniform", func(b *testing.B) {
		tree := taint.NewTree()
		tag := tree.NewSource("u", "l")
		buf := taint.MakeBytes(benchSize)
		b.SetBytes(benchSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.TaintAll(tag)
		}
	})
	b.Run("UnionUniform", func(b *testing.B) {
		tree := taint.NewTree()
		buf := taint.MakeBytes(benchSize)
		buf.TaintAll(tree.NewSource("u", "l"))
		b.SetBytes(benchSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = buf.Union()
		}
	})
	b.Run("EncodePathUniform", func(b *testing.B) {
		tree := taint.NewTree()
		client := taintmap.NewLocalClient(taintmap.NewStore(), tree)
		buf := taint.MakeBytes(benchSize)
		buf.TaintAll(tree.NewSource("u", "l"))
		b.SetBytes(benchSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = encodeLabelsToWire(client, buf)
		}
	})
	b.Run("DecodePathUniform", func(b *testing.B) {
		tree := taint.NewTree()
		client := taintmap.NewLocalClient(taintmap.NewStore(), tree)
		buf := taint.MakeBytes(benchSize)
		buf.TaintAll(tree.NewSource("u", "l"))
		raw := encodeLabelsToWire(client, buf)
		b.SetBytes(benchSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = decodeWireToLabels(client, raw, benchSize)
		}
	})
	b.Run("MixedSetLabel", func(b *testing.B) {
		tree := taint.NewTree()
		t1 := tree.NewSource("m1", "l")
		t2 := tree.NewSource("m2", "l")
		buf := taint.MakeBytes(mixedSize)
		b.SetBytes(mixedSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < mixedSize; j++ {
				if j%2 == 0 {
					buf.SetLabel(j, t1)
				} else {
					buf.SetLabel(j, t2)
				}
			}
		}
	})
	b.Run("MixedLabelAt", func(b *testing.B) {
		tree := taint.NewTree()
		t1 := tree.NewSource("m1", "l")
		t2 := tree.NewSource("m2", "l")
		buf := taint.MakeBytes(mixedSize)
		for j := 0; j < mixedSize; j++ {
			if j%2 == 0 {
				buf.SetLabel(j, t1)
			} else {
				buf.SetLabel(j, t2)
			}
		}
		b.SetBytes(mixedSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < mixedSize; j++ {
				_ = buf.LabelAt(j)
			}
		}
	})
	// MixedStreamExchange is the end-to-end mixed per-byte-label
	// workload: a payload alternating two taints on every byte crosses
	// an instrumented connection (label walk, Taint Map traffic, group
	// encode, stream decode, label adoption). This is the workload-level
	// benchmark behind the "mixed labels no slower than ~1.2x of seed"
	// criterion; per-call accessor costs are tracked separately by
	// MixedSetLabel/MixedLabelAt.
	b.Run("MixedStreamExchange", func(b *testing.B) {
		const size = 4 << 10
		net := netsim.New()
		store := taintmap.NewStore()
		mk := func(name string) *tracker.Agent {
			a := tracker.New(name, tracker.ModeDista)
			return tracker.New(name, tracker.ModeDista,
				tracker.WithTaintMap(taintmap.NewLocalClient(store, a.Tree())))
		}
		sAgent, rAgent := mk("s"), mk("r")
		cs, cr := net.Pipe()
		sender := instrument.NewEndpoint(sAgent, cs)
		receiver := instrument.NewEndpoint(rAgent, cr)
		payload := taint.MakeBytes(size)
		t1 := sAgent.Source("s", "mix1")
		t2 := sAgent.Source("s", "mix2")
		for i := 0; i < size; i++ {
			if i%2 == 0 {
				payload.SetLabel(i, t1)
			} else {
				payload.SetLabel(i, t2)
			}
		}
		b.SetBytes(size)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			wg.Add(1)
			var recvErr error
			go func() {
				defer wg.Done()
				buf := taint.MakeBytes(size)
				got := 0
				for got < size {
					n, err := receiver.Read(&buf)
					if err != nil {
						recvErr = err
						return
					}
					got += n
				}
			}()
			if err := sender.Write(payload); err != nil {
				b.Fatal(err)
			}
			wg.Wait()
			if recvErr != nil {
				b.Fatal(recvErr)
			}
		}
	})
	b.Run("CombineCached", func(b *testing.B) {
		tree := taint.NewTree()
		x := tree.NewSource("x", "l")
		y := tree.NewSource("y", "l")
		taint.Combine(x, y) // warm the memo
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = taint.Combine(x, y)
		}
	})
	b.Run("SingleTaintEncode", func(b *testing.B) {
		data := make([]byte, benchSize)
		runs := []wire.Run{{N: benchSize, ID: 42}}
		b.SetBytes(benchSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = wire.EncodeRuns(nil, data, runs)
		}
	})
	b.Run("SingleTaintDecode", func(b *testing.B) {
		data := make([]byte, benchSize)
		raw := wire.EncodeRuns(nil, data, []wire.Run{{N: benchSize, ID: 42}})
		b.SetBytes(benchSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var dec wire.StreamDecoder
			dec.Feed(raw)
			_, _ = dec.NextRuns(benchSize)
		}
	})
}
