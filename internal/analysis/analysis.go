// Package analysis is distavet's static-analysis suite: a small
// go/analysis-style framework plus the analyzers that machine-check
// the taint-soundness invariants of this tree (see DESIGN.md §6).
//
// The framework mirrors golang.org/x/tools/go/analysis in shape — an
// Analyzer runs over one type-checked package via a Pass and reports
// position-anchored diagnostics — but is built entirely on the
// standard library so the module keeps zero external dependencies.
//
// A finding can be silenced with a staticcheck-style comment on the
// offending line or the line directly above it:
//
//	//lint:ignore distavet/<analyzer> reason the drop is deliberate
//
// The reason is mandatory: a suppression without one is itself
// reported (as analyzer "suppression") so audits never go stale.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"dista/internal/analysis/loader"
)

// An Analyzer checks one invariant over one package at a time.
type Analyzer struct {
	Name string // short name; diagnostics print as "file:line: <Name>: msg"
	Doc  string // one-paragraph description of the invariant enforced
	Run  func(*Pass)
}

// A Pass is one (analyzer, package) execution: the type-checked
// package plus the reporting sink.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Path     string // import path of the package under analysis
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// A Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// All returns the full distavet suite, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{ShadowDrop, LabelCopy, ErrCmp, LockOrder, MustCheck, IdBits, TierEncode}
}

// ByName resolves a comma-separated analyzer-name list against All.
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
	}
	return out, nil
}

// Run applies the analyzers to every package (external test packages
// included), honors //lint:ignore suppressions, and returns the
// surviving diagnostics sorted by position. Malformed suppression
// comments are reported under the pseudo-analyzer "suppression".
func Run(fset *token.FileSet, pkgs []*loader.Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	var targets []*loader.Package
	for _, pkg := range pkgs {
		targets = append(targets, pkg)
		if pkg.XTest != nil {
			targets = append(targets, pkg.XTest)
		}
	}
	for _, pkg := range targets {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     fset,
				Path:     pkg.Path,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			a.Run(pass)
		}
	}
	sup, bad := collectSuppressions(fset, targets)
	diags = append(diags, bad...)
	diags = applySuppressions(diags, sup)
	diags = dedup(diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}

// dedup collapses identical findings: analyses that rescan a region
// under a different symbolic state (lockorder's loop-carried pass) may
// report the same violation twice.
func dedup(diags []Diagnostic) []Diagnostic {
	seen := make(map[Diagnostic]bool, len(diags))
	keep := diags[:0]
	for _, d := range diags {
		if !seen[d] {
			seen[d] = true
			keep = append(keep, d)
		}
	}
	return keep
}

// suppression is one well-formed //lint:ignore comment: it silences
// the named analyzers on its own line and the line directly below.
type suppression struct {
	file      string
	line      int
	analyzers map[string]bool
}

var ignoreRE = regexp.MustCompile(`^//lint:ignore\s+(distavet/\w+(?:\s*,\s*distavet/\w+)*)\s+(\S.*)$`)

// collectSuppressions scans every comment of every file for
// //lint:ignore markers, returning the valid suppressions and a
// diagnostic for each malformed one.
func collectSuppressions(fset *token.FileSet, pkgs []*loader.Package) ([]suppression, []Diagnostic) {
	var sups []suppression
	var bad []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(c.Text)
					if !strings.HasPrefix(text, "//lint:ignore") {
						continue
					}
					m := ignoreRE.FindStringSubmatch(text)
					if m == nil {
						bad = append(bad, Diagnostic{
							Analyzer: "suppression",
							Pos:      fset.Position(c.Pos()),
							Message:  "malformed //lint:ignore comment: needs a reason (//lint:ignore distavet/<analyzer> reason)",
						})
						continue
					}
					names := make(map[string]bool)
					for _, n := range strings.Split(m[1], ",") {
						names[strings.TrimPrefix(strings.TrimSpace(n), "distavet/")] = true
					}
					pos := fset.Position(c.Pos())
					sups = append(sups, suppression{file: pos.Filename, line: pos.Line, analyzers: names})
				}
			}
		}
	}
	return sups, bad
}

// applySuppressions drops the diagnostics covered by a suppression.
func applySuppressions(diags []Diagnostic, sups []suppression) []Diagnostic {
	if len(sups) == 0 {
		return diags
	}
	keep := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, s := range sups {
			if s.file == d.Pos.Filename && (s.line == d.Pos.Line || s.line+1 == d.Pos.Line) &&
				s.analyzers[d.Analyzer] {
				suppressed = true
				break
			}
		}
		if !suppressed {
			keep = append(keep, d)
		}
	}
	return keep
}
