// Package analysis is distavet's static-analysis suite: a small
// go/analysis-style framework plus the analyzers that machine-check
// the taint-soundness invariants of this tree (see DESIGN.md §6, §11).
//
// The framework mirrors golang.org/x/tools/go/analysis in shape — an
// Analyzer runs over one type-checked package via a Pass and reports
// position-anchored diagnostics — but is built entirely on the
// standard library so the module keeps zero external dependencies.
// Since PR 9 the suite is interprocedural: before any analyzer runs,
// the driver builds a module-wide call graph and per-function
// summaries (callgraph.go, summary.go) that every Pass can query
// through Pass.Index, and packages are analyzed in parallel (bounded
// by GOMAXPROCS) with deterministic output ordering.
//
// A finding can be silenced with a staticcheck-style comment on the
// offending line or the line directly above it:
//
//	//lint:ignore distavet/<analyzer> reason the drop is deliberate
//
// The reason is mandatory: a suppression without one is itself
// reported (as analyzer "suppression") so audits never go stale. And
// since PR 9 a well-formed suppression whose diagnostic no longer
// fires is reported by the deadsuppress analyzer, so stale ignores
// can't linger after the code they excused is gone.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"sync"

	"dista/internal/analysis/loader"
)

// An Analyzer checks one invariant over one package at a time.
type Analyzer struct {
	Name string // short name; diagnostics print as "file:line: <Name>: msg"
	Doc  string // one-paragraph description of the invariant enforced
	Run  func(*Pass)
}

// A Pass is one (analyzer, package) execution: the type-checked
// package plus the interprocedural index and the reporting sink.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Path     string // import path of the package under analysis
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Index    *Index // module-wide call graph + function summaries

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// A Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// All returns the full distavet suite, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{ShadowDrop, LabelCopy, ErrCmp, LockOrder, MustCheck,
		IdBits, TierEncode, TaintFlow, DeadSuppress}
}

// ByName resolves a comma-separated analyzer-name list against All.
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
	}
	return out, nil
}

// indexCache memoizes the interprocedural index per load session. A
// Program's package set only grows (LoadDir adds golden targets), so
// the universe size is a sufficient validity stamp: same size → same
// packages → same summaries.
var (
	indexMu    sync.Mutex
	indexCache = map[*loader.Program]*indexEntry{}
)

type indexEntry struct {
	universe int
	idx      *Index
}

// indexFor returns the (possibly cached) index over prog's current
// package universe, building it with preset summaries on a miss.
func indexFor(prog *loader.Program, preset map[*types.Func]*FuncSummary) *Index {
	universe := prog.Packages()
	indexMu.Lock()
	defer indexMu.Unlock()
	if e, ok := indexCache[prog]; ok && e.universe == len(universe) {
		return e.idx
	}
	idx := BuildIndex(universe, preset)
	indexCache[prog] = &indexEntry{universe: len(universe), idx: idx}
	return idx
}

// ResetIndexCache drops every memoized interprocedural index. The
// benchmarks use it to measure cold-start analysis cost; real drivers
// never need to call it.
func ResetIndexCache() {
	indexMu.Lock()
	defer indexMu.Unlock()
	indexCache = map[*loader.Program]*indexEntry{}
}

// Run applies the analyzers to every package (external test packages
// included), honors //lint:ignore suppressions, and returns the
// surviving diagnostics sorted by position. Malformed suppression
// comments are reported under the pseudo-analyzer "suppression".
// Packages are analyzed concurrently; output order is deterministic.
func Run(prog *loader.Program, pkgs []*loader.Package, analyzers []*Analyzer) []Diagnostic {
	return RunWithFacts(prog, pkgs, analyzers, nil)
}

// RunWithFacts is Run with an optional summary/diagnostic cache: a
// package whose fact key (content hash of itself, its import closure
// and the analyzer set) is present in the store replays its recorded
// raw diagnostics and summaries instead of re-running the analyzers.
// When every target hits, even the call-graph build is skipped.
func RunWithFacts(prog *loader.Program, pkgs []*loader.Package, analyzers []*Analyzer, facts *FactStore) []Diagnostic {
	var targets []*loader.Package
	for _, pkg := range pkgs {
		targets = append(targets, pkg)
		if pkg.XTest != nil {
			targets = append(targets, pkg.XTest)
		}
	}

	runSet := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		runSet[a.Name] = true
	}

	// Facts: compute keys and probe the store.
	keys := make([]string, len(targets))
	cached := make([]*factEntry, len(targets))
	allCached := facts != nil
	if facts != nil {
		keyer := newFactKeyer(prog, analyzers)
		for i, t := range targets {
			keys[i] = keyer.key(t)
			cached[i] = facts.load(keys[i])
			if cached[i] == nil {
				allCached = false
			}
		}
	}

	// The interprocedural index. Cached packages contribute their
	// stored summaries as presets; on a full hit no index is needed
	// at all — that is the warm-lint fast path.
	var idx *Index
	if !allCached {
		preset := make(map[*types.Func]*FuncSummary)
		for i, e := range cached {
			if e != nil {
				e.presetInto(targets[i], preset)
			}
		}
		idx = indexFor(prog, preset)
	}

	// Per-target analysis, cached targets replayed, the rest run
	// concurrently with pass-local diagnostic slices.
	results := make([][]Diagnostic, len(targets))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, pkg := range targets {
		if cached[i] != nil {
			results[i] = cached[i].Diags
			continue
		}
		wg.Add(1)
		go func(i int, pkg *loader.Package) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var local []Diagnostic
			for _, a := range analyzers {
				a.Run(&Pass{
					Analyzer: a,
					Fset:     prog.Fset,
					Path:     pkg.Path,
					Files:    pkg.Files,
					Pkg:      pkg.Types,
					Info:     pkg.Info,
					Index:    idx,
					diags:    &local,
				})
			}
			results[i] = local
			if facts != nil {
				facts.save(keys[i], newFactEntry(local, idx, pkg))
			}
		}(i, pkg)
	}
	wg.Wait()

	var diags []Diagnostic
	for _, r := range results {
		diags = append(diags, r...)
	}

	sup, bad := collectSuppressions(prog.Fset, targets)
	if runSet[DeadSuppress.Name] {
		diags = append(diags, deadSuppressions(diags, sup, runSet)...)
	}
	diags = append(diags, bad...)
	diags = applySuppressions(diags, sup)
	diags = dedup(diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}

// dedup collapses identical findings: analyses that rescan a region
// under a different symbolic state (lockorder's loop-carried pass) may
// report the same violation twice.
func dedup(diags []Diagnostic) []Diagnostic {
	seen := make(map[Diagnostic]bool, len(diags))
	keep := diags[:0]
	for _, d := range diags {
		if !seen[d] {
			seen[d] = true
			keep = append(keep, d)
		}
	}
	return keep
}

// suppression is one well-formed //lint:ignore comment: it silences
// the named analyzers on its own line and the line directly below.
type suppression struct {
	file      string
	line      int
	analyzers map[string]bool
}

var ignoreRE = regexp.MustCompile(`^//lint:ignore\s+(distavet/\w+(?:\s*,\s*distavet/\w+)*)\s+(\S.*)$`)

// collectSuppressions scans every comment of every file for
// //lint:ignore markers, returning the valid suppressions and a
// diagnostic for each malformed one.
func collectSuppressions(fset *token.FileSet, pkgs []*loader.Package) ([]suppression, []Diagnostic) {
	var sups []suppression
	var bad []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(c.Text)
					if !strings.HasPrefix(text, "//lint:ignore") {
						continue
					}
					m := ignoreRE.FindStringSubmatch(text)
					if m == nil {
						bad = append(bad, Diagnostic{
							Analyzer: "suppression",
							Pos:      fset.Position(c.Pos()),
							Message:  "malformed //lint:ignore comment: needs a reason (//lint:ignore distavet/<analyzer> reason)",
						})
						continue
					}
					names := make(map[string]bool)
					for _, n := range strings.Split(m[1], ",") {
						names[strings.TrimPrefix(strings.TrimSpace(n), "distavet/")] = true
					}
					pos := fset.Position(c.Pos())
					sups = append(sups, suppression{file: pos.Filename, line: pos.Line, analyzers: names})
				}
			}
		}
	}
	return sups, bad
}

// applySuppressions drops the diagnostics covered by a suppression.
func applySuppressions(diags []Diagnostic, sups []suppression) []Diagnostic {
	if len(sups) == 0 {
		return diags
	}
	keep := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, s := range sups {
			if s.file == d.Pos.Filename && (s.line == d.Pos.Line || s.line+1 == d.Pos.Line) &&
				s.analyzers[d.Analyzer] {
				suppressed = true
				break
			}
		}
		if !suppressed {
			keep = append(keep, d)
		}
	}
	return keep
}

// deadSuppressions implements the deadsuppress analyzer: a well-formed
// suppression is dead when every analyzer it names was part of this
// run and none of them produced a diagnostic the suppression covers —
// the finding it once excused no longer fires. Suppressions naming an
// analyzer outside the run set are left alone (a partial run proves
// nothing about them).
func deadSuppressions(raw []Diagnostic, sups []suppression, runSet map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, s := range sups {
		judgeable := true
		var names []string
		for name := range s.analyzers {
			names = append(names, name)
			if !runSet[name] {
				judgeable = false
			}
		}
		if !judgeable {
			continue
		}
		matched := false
		for _, d := range raw {
			if s.file == d.Pos.Filename && (s.line == d.Pos.Line || s.line+1 == d.Pos.Line) &&
				s.analyzers[d.Analyzer] {
				matched = true
				break
			}
		}
		if matched {
			continue
		}
		sort.Strings(names)
		out = append(out, Diagnostic{
			Analyzer: DeadSuppress.Name,
			Pos:      token.Position{Filename: s.file, Line: s.line},
			Message: fmt.Sprintf("suppression of distavet/%s matches no diagnostic; "+
				"the finding it excused no longer fires — delete the stale //lint:ignore",
				strings.Join(names, ", distavet/")),
		})
	}
	return out
}
