// Package analysistest is the golden-test harness for distavet
// analyzers. A test points it at a testdata/src/<analyzer> package
// seeded with deliberate violations; expectations are written inline
// as comments on the offending lines:
//
//	conn.Write(b.Data) // want "raw .Data"
//	//lint:ignore distavet/shadowdrop reason   ← suppressions are honored,
//	conn.Write(b.Data)                         //   so no want comment here
//
// Each `// want "substr"` expects one diagnostic from the analyzer
// under test at that exact line whose message contains substr;
// several quoted strings expect several diagnostics. A named form
// `// want suppression "substr"` matches the given analyzer name
// instead (used to pin malformed-suppression reporting). Unexpected
// diagnostics and unmatched expectations both fail the test.
package analysistest

import (
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"dista/internal/analysis"
	"dista/internal/analysis/loader"
)

var (
	progMu sync.Mutex
	progs  = map[string]*loader.Program{} // one shared load session per module root
)

// sharedProgram returns the cached Program for the module enclosing
// the current directory, so the golden tests type-check the standard
// library once instead of once per analyzer.
func sharedProgram(t *testing.T) *loader.Program {
	t.Helper()
	root, err := loader.FindModuleRoot(".")
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	progMu.Lock()
	defer progMu.Unlock()
	if p, ok := progs[root]; ok {
		return p
	}
	p, err := loader.New(root, true)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	progs[root] = p
	return p
}

// expectation is one parsed want comment entry.
type expectation struct {
	file     string
	line     int
	analyzer string
	substr   string
	matched  bool
}

// wantRE captures an optional analyzer name and the quoted substrings.
var wantRE = regexp.MustCompile(`//\s*want\s+((?:\w+\s+)?)((?:"(?:[^"\\]|\\.)*"\s*)+)$`)
var wantStrRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// Run loads the package in dir, applies the analyzer (suppressions
// included), and compares the surviving diagnostics against the want
// comments in the package's files.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	RunAnalyzers(t, []*analysis.Analyzer{a}, dir)
}

// RunAnalyzers is Run for an analyzer set — needed by analyzers whose
// findings are a whole-run property (deadsuppress judges suppressions
// against the diagnostics of the other analyzers in the same run).
// Unnamed want comments default to the first analyzer; the named form
// (`// want deadsuppress "..."`) picks any analyzer in the set.
func RunAnalyzers(t *testing.T, as []*analysis.Analyzer, dir string) {
	t.Helper()
	prog := sharedProgram(t)
	progMu.Lock()
	pkg, err := prog.LoadDir(dir)
	progMu.Unlock()
	if err != nil {
		t.Fatalf("analysistest: load %s: %v", dir, err)
	}

	var wants []*expectation
	for _, f := range pkg.Files {
		filename := prog.Fset.File(f.Pos()).Name()
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				name := strings.TrimSpace(m[1])
				if name == "" {
					name = as[0].Name
				}
				line := prog.Fset.Position(c.Pos()).Line
				for _, q := range wantStrRE.FindAllStringSubmatch(m[2], -1) {
					wants = append(wants, &expectation{
						file: filename, line: line, analyzer: name, substr: unquote(q[1]),
					})
				}
			}
		}
	}

	diags := analysis.Run(prog, []*loader.Package{pkg}, as)
	for _, d := range diags {
		if matchWant(wants, d) {
			continue
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected %s diagnostic containing %q, got none",
				w.file, w.line, w.analyzer, w.substr)
		}
	}
}

// matchWant consumes the first unmatched expectation covering d.
func matchWant(wants []*expectation, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line &&
			w.analyzer == d.Analyzer && strings.Contains(d.Message, w.substr) {
			w.matched = true
			return true
		}
	}
	return false
}

// unquote undoes the minimal escaping the want regexp allows.
func unquote(s string) string {
	out, err := strconv.Unquote(`"` + s + `"`)
	if err != nil {
		return s
	}
	return out
}
