package analysis

import (
	"go/ast"
	"go/types"
	"sync"

	"dista/internal/analysis/loader"
)

// Index is the interprocedural layer of the distavet suite: a
// module-wide view of every function with a body in the loaded
// universe, the call edges between them (static calls plus interface
// dispatch resolved via types.Implements), and the per-function
// summaries computed bottom-up over the strongly-connected components
// of that graph (DESIGN.md §11). Analyzers reach it through
// Pass.Index; it is immutable after BuildIndex except for the lazily
// grown dispatch cache, which is mutex-guarded so the parallel driver
// can query it from several packages at once.
type Index struct {
	fns       map[*types.Func]*fnInfo
	summaries map[*types.Func]*FuncSummary
	named     []*types.Named // concrete named types, dispatch candidates

	dmu      sync.Mutex
	dispatch map[*types.Func][]*types.Func
}

// fnInfo ties a declared function to its AST and owning package.
type fnInfo struct {
	decl *ast.FuncDecl
	pkg  *loader.Package
}

// BuildIndex constructs the call graph and computes summaries for
// every function in universe that does not already have one in preset
// (the facts-cache path hands in deserialized summaries for unchanged
// packages; pass nil to compute everything).
func BuildIndex(universe []*loader.Package, preset map[*types.Func]*FuncSummary) *Index {
	idx := &Index{
		fns:       make(map[*types.Func]*fnInfo),
		summaries: make(map[*types.Func]*FuncSummary, len(preset)),
		dispatch:  make(map[*types.Func][]*types.Func),
	}
	for fn, s := range preset {
		idx.summaries[fn] = s
	}
	seenNamed := make(map[*types.Named]bool)
	for _, pkg := range universe {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				idx.fns[fn] = &fnInfo{decl: fd, pkg: pkg}
			}
		}
		// Named types (with or without methods) are the dispatch
		// candidate set for interface-method resolution.
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || seenNamed[named] {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			seenNamed[named] = true
			idx.named = append(idx.named, named)
		}
	}
	idx.computeSummaries()
	return idx
}

// SummaryOf returns the summary for fn, or nil when fn has no body in
// the analyzed universe (stdlib, interface methods).
func (idx *Index) SummaryOf(fn *types.Func) *FuncSummary {
	return idx.summaries[fn]
}

// FuncsOf returns the (fn → summary) pairs declared in pkg, for the
// facts cache to serialize.
func (idx *Index) FuncsOf(pkg *loader.Package) map[*types.Func]*FuncSummary {
	out := make(map[*types.Func]*FuncSummary)
	for fn, info := range idx.fns {
		if info.pkg == pkg {
			if s := idx.summaries[fn]; s != nil {
				out[fn] = s
			}
		}
	}
	return out
}

// interfaceMethod reports whether fn is an abstract interface method,
// returning the interface it belongs to.
func interfaceMethod(fn *types.Func) (*types.Interface, bool) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, false
	}
	t := sig.Recv().Type()
	if named, ok := namedOf(t); ok {
		t = named.Underlying()
	}
	iface, ok := t.Underlying().(*types.Interface)
	return iface, ok
}

// Implementations resolves an interface method to the concrete methods
// of the universe's named types that satisfy it — the dispatch
// fan-out. Results are cached per abstract method. Only methods with
// bodies in the universe are returned; external implementations are
// invisible, which is the documented approximation.
func (idx *Index) Implementations(fn *types.Func) []*types.Func {
	iface, ok := interfaceMethod(fn)
	if !ok {
		return nil
	}
	idx.dmu.Lock()
	defer idx.dmu.Unlock()
	if impls, ok := idx.dispatch[fn]; ok {
		return impls
	}
	var impls []*types.Func
	for _, named := range idx.named {
		var recv types.Type = named
		if !types.Implements(recv, iface) {
			recv = types.NewPointer(named)
			if !types.Implements(recv, iface) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, fn.Pkg(), fn.Name())
		m, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if _, has := idx.fns[m]; has {
			impls = append(impls, m)
		}
	}
	idx.dispatch[fn] = impls
	return impls
}

// callees returns every function the body of fn may invoke that has a
// body in the universe: static callees plus the dispatch fan-out of
// interface-method calls. Used to build the SCC graph; the summary
// evaluator re-resolves the same sets with argument positions.
func (idx *Index) callees(info *fnInfo) []*types.Func {
	var out []*types.Func
	seen := make(map[*types.Func]bool)
	add := func(fn *types.Func) {
		if fn != nil && !seen[fn] {
			if _, has := idx.fns[fn]; has {
				seen[fn] = true
				out = append(out, fn)
			}
		}
	}
	ast.Inspect(info.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFuncInfo(info.pkg.Info, call)
		if fn == nil {
			return true
		}
		if _, isIface := interfaceMethod(fn); isIface {
			for _, impl := range idx.Implementations(fn) {
				add(impl)
			}
			return true
		}
		add(fn)
		return true
	})
	return out
}

// computeSummaries runs the bottom-up pass: Tarjan's SCC over the call
// graph (static + dispatch edges), then one evaluation per function in
// reverse topological order, iterating to a fixpoint inside each
// component so mutual recursion converges. Summary facts are monotone
// (escape bits only ever turn on), so the fixpoint terminates in at
// most params+1 rounds per component.
func (idx *Index) computeSummaries() {
	// Collect the functions still to compute (no preset summary).
	var todo []*types.Func
	for fn := range idx.fns {
		if idx.summaries[fn] == nil {
			todo = append(todo, fn)
		}
	}
	sccs := idx.tarjan(todo)
	for _, scc := range sccs { // already callee-first
		// Escape/raw bits only turn on, so a component converges in
		// a handful of rounds; the cap guards the one non-monotone
		// interaction (DeclaresClean growth can retract an escape via
		// labelSafeCallee) from oscillating in pathological cycles.
		maxRounds := 4*len(scc) + 4
		for round := 0; round < maxRounds; round++ {
			changed := false
			for _, fn := range scc {
				next := idx.evalSummary(fn)
				if prev := idx.summaries[fn]; prev == nil || !prev.equal(next) {
					idx.summaries[fn] = next
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
}

// tarjan computes strongly-connected components over the given nodes,
// returned in reverse topological order (callees before callers).
func (idx *Index) tarjan(nodes []*types.Func) [][]*types.Func {
	type nodeState struct {
		index, lowlink int
		onStack        bool
	}
	states := make(map[*types.Func]*nodeState, len(nodes))
	inSet := make(map[*types.Func]bool, len(nodes))
	for _, fn := range nodes {
		inSet[fn] = true
	}
	var (
		counter int
		stack   []*types.Func
		sccs    [][]*types.Func
	)
	// Iterative Tarjan: the module's deepest call chains exceed what a
	// recursive walk over testdata-sized stacks would allow anyway.
	type frame struct {
		fn      *types.Func
		callees []*types.Func
		next    int
	}
	var visit func(root *types.Func)
	visit = func(root *types.Func) {
		frames := []frame{{fn: root}}
		states[root] = &nodeState{index: counter, lowlink: counter}
		counter++
		stack = append(stack, root)
		states[root].onStack = true
		frames[0].callees = idx.filteredCallees(root, inSet)
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.next < len(f.callees) {
				c := f.callees[f.next]
				f.next++
				cs := states[c]
				if cs == nil {
					states[c] = &nodeState{index: counter, lowlink: counter, onStack: true}
					counter++
					stack = append(stack, c)
					frames = append(frames, frame{fn: c, callees: idx.filteredCallees(c, inSet)})
				} else if cs.onStack {
					if cs.index < states[f.fn].lowlink {
						states[f.fn].lowlink = cs.index
					}
				}
				continue
			}
			// Done with f.fn.
			st := states[f.fn]
			if st.lowlink == st.index {
				var scc []*types.Func
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					states[top].onStack = false
					scc = append(scc, top)
					if top == f.fn {
						break
					}
				}
				sccs = append(sccs, scc)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if st.lowlink < states[parent.fn].lowlink {
					states[parent.fn].lowlink = st.lowlink
				}
			}
		}
	}
	for _, fn := range nodes {
		if states[fn] == nil {
			visit(fn)
		}
	}
	return sccs
}

// filteredCallees is callees restricted to the to-compute node set.
func (idx *Index) filteredCallees(fn *types.Func, inSet map[*types.Func]bool) []*types.Func {
	all := idx.callees(idx.fns[fn])
	keep := all[:0]
	for _, c := range all {
		if inSet[c] {
			keep = append(keep, c)
		}
	}
	return keep
}
