package analysis

// DeadSuppress reports //lint:ignore comments whose diagnostic no
// longer fires. A suppression is an audited exception — the two zk
// snapshot ignores from PR 4 each pin a deliberate, justified label
// drop — and an exception that outlives the code it excused is worse
// than noise: it will silently swallow the next real finding on that
// line. A well-formed suppression is dead when every analyzer it
// names ran in this invocation and none of them produced a diagnostic
// the suppression covers.
//
// The check is a whole-run property, not a per-package walk, so the
// logic lives in the driver (deadSuppressions in analysis.go), which
// sees the raw pre-suppression diagnostics of every package; this
// analyzer's Run is intentionally empty and only puts the name into
// the run set. Suppressions naming an analyzer outside the run set
// are never judged: a partial `-run` invocation proves nothing about
// them.
var DeadSuppress = &Analyzer{
	Name: "deadsuppress",
	Doc: "a //lint:ignore whose diagnostic no longer fires is stale and must " +
		"be deleted (checked over the whole run in the driver)",
	Run: func(*Pass) {},
}
