package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// ErrCmp enforces the typed-error discipline introduced with the
// resilience layer (taintmap.ErrDegraded, ErrCallTimeout, …): package
// sentinel errors must be matched with errors.Is, never ==/!=. The
// resilient client wraps sentinels (ErrJournalFull wraps ErrDegraded,
// call errors carry %w chains), so an identity comparison silently
// stops matching the moment a wrap is added — exactly the regression
// class errors.Is exists for. Comparisons against io sentinels
// (io.EOF et al.) are exempt: the io.Reader contract guarantees they
// are returned unwrapped.
//
// It also flags errors.As(err, &Sentinel) where Sentinel is one of
// those package sentinels: the target then has type *error, so As
// matches the first error in the chain unconditionally and assigns it
// into the package-level sentinel — a mutation of shared state dressed
// up as a check. The wire path makes this tempting: the client
// re-types the server's ErrOverloaded marker into a fresh %w wrap
// (protocol decode), and As "works" on it in tests while silently
// corrupting the sentinel for every other comparison in the process.
var ErrCmp = &Analyzer{
	Name: "errcmp",
	Doc: "sentinel errors (Err*/err*) must be matched with errors.Is, not ==/!=, " +
		"switch cases, or errors.As against the sentinel; io.EOF conventions are exempt",
	Run: runErrCmp,
}

// sentinelNameRE matches the naming convention of package sentinel
// errors in this tree: ErrClosed, ErrDegraded, errProtocol, …
var sentinelNameRE = regexp.MustCompile(`^(Err|err)[A-Z]`)

func runErrCmp(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				x, y := unparen(n.X), unparen(n.Y)
				if isNilIdent(pass, x) || isNilIdent(pass, y) {
					return true // nil checks are fine
				}
				s := sentinelVar(pass, x)
				if s == nil {
					s = sentinelVar(pass, y)
				}
				if s == nil || hasPathSuffix(s.Pkg(), "io") {
					return true
				}
				pass.Reportf(n.Pos(),
					"sentinel error %s compared with %s; wrapped errors will not match — use errors.Is",
					s.Name(), n.Op)
			case *ast.CallExpr:
				if !isErrorsAs(pass, n) || len(n.Args) != 2 {
					return true
				}
				addr, ok := unparen(n.Args[1]).(*ast.UnaryExpr)
				if !ok || addr.Op != token.AND {
					return true
				}
				s := sentinelVar(pass, unparen(addr.X))
				if s == nil || hasPathSuffix(s.Pkg(), "io") {
					return true
				}
				pass.Reportf(n.Pos(),
					"errors.As target &%s is a pointer to the sentinel itself: it matches any error "+
						"and overwrites %s — use errors.Is(err, %s)",
					s.Name(), s.Name(), s.Name())
			case *ast.SwitchStmt:
				if n.Tag == nil {
					return true
				}
				if t := pass.TypeOf(n.Tag); t == nil || !implementsError(t) {
					return true
				}
				for _, stmt := range n.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if s := sentinelVar(pass, unparen(e)); s != nil && !hasPathSuffix(s.Pkg(), "io") {
							pass.Reportf(e.Pos(),
								"sentinel error %s used as a switch case (identity comparison); use an errors.Is chain",
								s.Name())
						}
					}
				}
			}
			return true
		})
	}
}

// sentinelVar returns the package-level error variable e refers to, if
// its name follows the sentinel convention.
func sentinelVar(pass *Pass, e ast.Expr) *types.Var {
	var obj types.Object
	switch e := e.(type) {
	case *ast.Ident:
		obj = pass.Info.Uses[e]
	case *ast.SelectorExpr:
		obj = pass.Info.Uses[e.Sel]
	default:
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !sentinelNameRE.MatchString(v.Name()) || !implementsError(v.Type()) {
		return nil
	}
	return v
}

// isErrorsAs reports whether call invokes the stdlib errors.As.
func isErrorsAs(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "As" {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "errors"
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(pass *Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pass.Info.Uses[id].(*types.Nil)
	return isNil
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func implementsError(t types.Type) bool {
	return types.Implements(t, errorIface)
}
