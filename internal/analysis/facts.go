package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"dista/internal/analysis/loader"
)

// factsVersion invalidates every cached entry when the summary lattice
// or the serialization shape changes. Bump it whenever FuncSummary or
// an analyzer's semantics change in a way the content hash can't see.
const factsVersion = 1

// A FactStore caches per-package analysis facts on disk: the raw
// (pre-suppression) diagnostics and the function summaries of one
// package, keyed by a content hash of the package, its import closure
// and the analyzer set. A warm `make lint` replays unchanged packages
// from the store instead of re-running the analyzers; when everything
// hits, even the call-graph build is skipped.
//
// Known approximation: the key covers a package's import closure, but
// interface-dispatch edges can cross it — editing an implementation
// outside the closure of a cached caller does not invalidate the
// caller's entry. `make lint FACTS=` (cold run) or deleting the cache
// dir restores full precision; the tier-1 tests always run cold.
type FactStore struct {
	dir string
}

// NewFactStore opens (creating if needed) a fact cache rooted at dir.
func NewFactStore(dir string) (*FactStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &FactStore{dir: dir}, nil
}

// factEntry is the serialized record of one (package, analyzer-set)
// analysis: raw diagnostics plus the summaries of the package's own
// functions, keyed by stable function ID.
type factEntry struct {
	Diags     []Diagnostic            `json:"diags"`
	Summaries map[string]*FuncSummary `json:"summaries"`
}

func (s *FactStore) load(key string) *factEntry {
	data, err := os.ReadFile(filepath.Join(s.dir, key+".json"))
	if err != nil {
		return nil
	}
	var e factEntry
	if json.Unmarshal(data, &e) != nil {
		return nil
	}
	return &e
}

func (s *FactStore) save(key string, e *factEntry) {
	data, err := json.Marshal(e)
	if err != nil {
		return
	}
	// Write-then-rename so a concurrent reader never sees a torn
	// entry; a lost race overwrites with identical content.
	tmp := filepath.Join(s.dir, key+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, filepath.Join(s.dir, key+".json"))
}

// newFactEntry captures the analysis products of one package.
func newFactEntry(diags []Diagnostic, idx *Index, pkg *loader.Package) *factEntry {
	e := &factEntry{Diags: diags, Summaries: make(map[string]*FuncSummary)}
	if idx != nil {
		for fn, s := range idx.FuncsOf(pkg) {
			e.Summaries[funcIDOf(fn)] = s
		}
	}
	return e
}

// presetInto resolves the entry's stored summaries against the live
// type objects of pkg, seeding the index build so cached packages are
// not re-evaluated.
func (e *factEntry) presetInto(pkg *loader.Package, preset map[*types.Func]*FuncSummary) {
	if len(e.Summaries) == 0 {
		return
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			if s, ok := e.Summaries[funcIDOf(fn)]; ok {
				preset[fn] = s
			}
		}
	}
}

// funcIDOf is a stable cross-process identifier for a declared
// function: package path, receiver type (with pointerness) and name.
func funcIDOf(fn *types.Func) string {
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			recv = "*"
			t = p.Elem()
		}
		if named, ok := namedOf(t); ok {
			recv += named.Obj().Name() + "."
		}
	}
	path := ""
	if fn.Pkg() != nil {
		path = fn.Pkg().Path()
	}
	return path + "::" + recv + fn.Name()
}

// factKeyer computes per-package cache keys: a content hash over the
// facts version, toolchain, analyzer set, the package's files, and —
// recursively — the keys of its loaded import closure (out-of-module
// imports contribute their path only; the stdlib is pinned by the
// toolchain version).
type factKeyer struct {
	prog      *loader.Program
	byPath    map[string]*loader.Package
	analyzers string
	memo      map[string]string
}

func newFactKeyer(prog *loader.Program, analyzers []*Analyzer) *factKeyer {
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	byPath := make(map[string]*loader.Package)
	for _, pkg := range prog.Packages() {
		byPath[pkg.Path] = pkg
	}
	return &factKeyer{
		prog:      prog,
		byPath:    byPath,
		analyzers: strings.Join(names, ","),
		memo:      make(map[string]string),
	}
}

func (k *factKeyer) key(pkg *loader.Package) string {
	if v, ok := k.memo[pkg.Path]; ok {
		return v
	}
	h := sha256.New()
	fmt.Fprintf(h, "distavet-facts/v%d\n%s\n%s\n%s\n",
		factsVersion, runtime.Version(), k.analyzers, pkg.Path)
	for _, f := range pkg.Files {
		name := k.prog.Fset.File(f.Pos()).Name()
		data, err := os.ReadFile(name)
		if err != nil {
			fmt.Fprintf(h, "file %s unreadable\n", name)
			continue
		}
		fmt.Fprintf(h, "file %s %d\n", name, len(data))
		h.Write(data)
	}
	var depKeys []string
	for _, imp := range pkg.Types.Imports() {
		if dep, ok := k.byPath[imp.Path()]; ok {
			depKeys = append(depKeys, dep.Path+"="+k.key(dep))
		} else {
			depKeys = append(depKeys, "std:"+imp.Path())
		}
	}
	sort.Strings(depKeys)
	for _, dk := range depKeys {
		fmt.Fprintln(h, dk)
	}
	sum := hex.EncodeToString(h.Sum(nil))[:32]
	k.memo[pkg.Path] = sum
	return sum
}
