package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"dista/internal/analysis"
	"dista/internal/analysis/analysistest"
	"dista/internal/analysis/loader"
)

// TestGolden runs every analyzer over its seeded violation package
// under testdata/src: positives must be reported at their exact lines
// (the want comments), clean code must stay silent, and //lint:ignore
// suppressions must be honored.
func TestGolden(t *testing.T) {
	for _, a := range analysis.All() {
		t.Run(a.Name, func(t *testing.T) {
			if a.Name == analysis.DeadSuppress.Name {
				// deadsuppress judges suppressions against another
				// analyzer's findings, so its golden runs as a pair.
				analysistest.RunAnalyzers(t,
					[]*analysis.Analyzer{analysis.ShadowDrop, analysis.DeadSuppress},
					filepath.Join("testdata", "src", a.Name))
				return
			}
			analysistest.Run(t, a, filepath.Join("testdata", "src", a.Name))
		})
	}
}

// TestTaintFlowRecursion pins the summary fixpoint: a raw escape
// reachable only through a mutually recursive helper pair must still
// be found, and the recursion must converge rather than loop.
func TestTaintFlowRecursion(t *testing.T) {
	analysistest.Run(t, analysis.TaintFlow, filepath.Join("testdata", "src", "taintflowrec"))
}

// TestTaintFlowDispatch pins interface-method resolution: an escape
// inside one concrete implementation must surface at a call through
// the interface, and a clean implementation must not taint it.
func TestTaintFlowDispatch(t *testing.T) {
	analysistest.Run(t, analysis.TaintFlow, filepath.Join("testdata", "src", "taintflowiface"))
}

// TestTierEncodeWireRules runs the tierencode analyzer over a package
// that *presents* as a wire codec (package name "wire" in a non-wire
// path): Rule A must bind it — encoder-signature lookalikes outside
// the real internal/core/wire are still held to the convention.
func TestTierEncodeWireRules(t *testing.T) {
	analysistest.Run(t, analysis.TierEncode, filepath.Join("testdata", "src", "tierencodewire"))
}

// TestSuppressions pins the //lint:ignore machinery directly: a
// well-formed suppression (line-above and trailing form) silences its
// finding, a reason-less one suppresses nothing and is itself
// reported, and the un-suppressed violation under it still surfaces.
func TestSuppressions(t *testing.T) {
	root, err := loader.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := loader.New(root, true)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := prog.LoadDir(filepath.Join("testdata", "src", "suppress"))
	if err != nil {
		t.Fatal(err)
	}
	diags := analysis.Run(prog, []*loader.Package{pkg}, []*analysis.Analyzer{analysis.ErrCmp})
	var got []string
	for _, d := range diags {
		got = append(got, d.Analyzer+": "+d.Message)
	}
	if len(diags) != 2 {
		t.Fatalf("want exactly 2 diagnostics (malformed comment + unsuppressed finding), got %d:\n%s",
			len(diags), strings.Join(got, "\n"))
	}
	if diags[0].Analyzer != "suppression" || !strings.Contains(diags[0].Message, "needs a reason") {
		t.Errorf("first diagnostic should flag the malformed suppression, got %s", got[0])
	}
	if diags[1].Analyzer != "errcmp" {
		t.Errorf("the violation under the malformed suppression must still be reported, got %s", got[1])
	}
	if diags[0].Pos.Line+1 != diags[1].Pos.Line {
		t.Errorf("expected the surviving errcmp finding directly under the malformed comment (lines %d, %d)",
			diags[0].Pos.Line, diags[1].Pos.Line)
	}
}

// TestByName covers the -run analyzer selection used by the driver.
func TestByName(t *testing.T) {
	as, err := analysis.ByName("errcmp, lockorder")
	if err != nil || len(as) != 2 || as[0].Name != "errcmp" || as[1].Name != "lockorder" {
		t.Fatalf("ByName = %v, %v", as, err)
	}
	if _, err := analysis.ByName("nosuch"); err == nil {
		t.Fatal("ByName must reject unknown analyzers")
	}
}
