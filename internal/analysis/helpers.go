package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// hasPathSuffix reports whether pkg's import path equals suffix or
// ends in "/"+suffix. Matching by suffix instead of the full "dista/…"
// path keeps the analyzers working if the module is ever renamed.
func hasPathSuffix(pkg *types.Package, suffix string) bool {
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// pathHasSuffix is hasPathSuffix for a bare import-path string.
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// unparen strips any number of parentheses around e.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// namedOf unwraps pointers and aliases down to the named type of t.
func namedOf(t types.Type) (*types.Named, bool) {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u, true
		default:
			return nil, false
		}
	}
}

// calleeFunc resolves the called function or method of a call, or nil
// for builtins, conversions and calls through function values.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	return calleeFuncInfo(pass.Info, call)
}

// calleeFuncInfo is calleeFunc against a bare types.Info, usable from
// the summary engine where no Pass exists.
func calleeFuncInfo(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(pass *Pass, call *ast.CallExpr, name string) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// taintedValueType reports whether named is one of the tracked value
// types whose Data field is raw label-less storage: core/taint.Bytes
// or jni.DirectBuffer.
func taintedValueType(named *types.Named) (string, bool) {
	obj := named.Obj()
	switch {
	case obj.Name() == "Bytes" && hasPathSuffix(obj.Pkg(), "internal/core/taint"):
		return "taint.Bytes", true
	case obj.Name() == "DirectBuffer" && hasPathSuffix(obj.Pkg(), "internal/jni"):
		return "jni.DirectBuffer", true
	}
	return "", false
}

// taintedRawData reports whether e denotes the raw []byte backing a
// tracked value: a (possibly re-sliced) selection of the Data field of
// taint.Bytes or jni.DirectBuffer. The returned string names the
// owning type for the diagnostic.
func taintedRawData(pass *Pass, e ast.Expr) (string, bool) {
	return taintedRawDataInfo(pass.Info, e)
}

// taintedRawDataInfo is taintedRawData against a bare types.Info.
func taintedRawDataInfo(info *types.Info, e ast.Expr) (string, bool) {
	for {
		switch v := unparen(e).(type) {
		case *ast.SliceExpr:
			e = v.X
		case *ast.SelectorExpr:
			sel := info.Selections[v]
			if sel == nil || sel.Kind() != types.FieldVal || sel.Obj().Name() != "Data" {
				return "", false
			}
			named, ok := namedOf(sel.Recv())
			if !ok {
				return "", false
			}
			return taintedValueType(named)
		default:
			return "", false
		}
	}
}

// corePackages are the layers allowed to touch raw tainted storage:
// the label store itself and the instrumented native/JRE surface that
// is responsible for moving labels alongside data.
var corePackages = []string{
	"internal/core/taint",
	"internal/jni",
	"internal/jre",
	"internal/instrument",
}

// isCorePackage reports whether the pass's package is one of the
// whitelisted raw-data layers.
func isCorePackage(pass *Pass) bool {
	for _, suffix := range corePackages {
		// The "_test" variant of a core package is core too.
		if pathHasSuffix(strings.TrimSuffix(pass.Path, "_test"), suffix) {
			return true
		}
	}
	return false
}

// trustedPackage reports whether pkg belongs to the label-moving trust
// domain: the core layers plus the wire codec. Functions defined here
// may take raw tainted storage — moving labels next to data is exactly
// their job — so their summaries never mark a parameter as escaping,
// and raw .Data handed to their label-safe parameters is the sanctioned
// fast path rather than a drop. The boundary is the package layer, not
// a naming convention: a lookalike helper elsewhere earns nothing.
func trustedPackage(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	if hasPathSuffix(pkg, "internal/core/wire") {
		return true
	}
	for _, suffix := range corePackages {
		if hasPathSuffix(pkg, suffix) {
			return true
		}
	}
	return false
}

// byteSlice reports whether t's underlying type is []byte.
func byteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// carriesLabels reports whether the signature has a parameter that can
// hold a payload's labels: []Run, []DirtyRange, []uint32, a single
// uint32 Global ID, or a core taint.Taint value.
func carriesLabels(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		t := sig.Params().At(i).Type()
		if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.Uint32 {
			return true
		}
		if named, ok := namedOf(t); ok {
			if named.Obj().Name() == "Taint" && hasPathSuffix(named.Obj().Pkg(), "internal/core/taint") {
				return true
			}
		}
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			continue
		}
		if b, ok := s.Elem().Underlying().(*types.Basic); ok && b.Kind() == types.Uint32 {
			return true
		}
		if named, ok := namedOf(s.Elem()); ok {
			if n := named.Obj().Name(); n == "Run" || n == "DirtyRange" {
				return true
			}
		}
	}
	return false
}

// labelSafeCallee reports whether handing the raw .Data of a tracked
// value to fn is sanctioned. This replaces the old name-based
// *Passthrough*/*Uniform*/*Sparse* allowlist: the exemption is now a
// fact derived from the callee, not its name. fn is label-safe when it
// is defined in the trust domain AND either
//
//   - its signature carries the payload's labels ([]Run, []DirtyRange,
//     Global IDs, or a taint.Taint) — the uniform/sparse tier shape
//     that Rule A of tierencode verifies, or
//   - its summary declares the payload untainted (DeclaresClean): the
//     parameter flows, possibly through wrappers, into a passthrough
//     emission — semantics the caller must have Clean()-gated, which
//     tierencode Rule B enforces.
//
// Interface methods and other bodiless functions fall back to the
// signature test plus the passthrough name marker (Rule A pins that
// naming in the wire codec), preserving the old behavior where no
// summary can exist.
func labelSafeCallee(idx *Index, fn *types.Func) bool {
	if fn == nil || !trustedPackage(fn.Pkg()) {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if carriesLabels(sig) {
		return true
	}
	if idx != nil {
		if s := idx.SummaryOf(fn); s != nil {
			return s.AnyDeclaresClean()
		}
	}
	// Bodiless (interface method, or no index): the declaration marker.
	return strings.Contains(fn.Name(), "Passthrough") ||
		strings.Contains(fn.Name(), "Uniform") || strings.Contains(fn.Name(), "Sparse")
}

// writeVerb reports whether a function name is write-shaped I/O.
func writeVerb(name string) bool {
	for _, prefix := range []string{"Write", "Send", "Publish", "Post", "Broadcast"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}
