package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// hasPathSuffix reports whether pkg's import path equals suffix or
// ends in "/"+suffix. Matching by suffix instead of the full "dista/…"
// path keeps the analyzers working if the module is ever renamed.
func hasPathSuffix(pkg *types.Package, suffix string) bool {
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// pathHasSuffix is hasPathSuffix for a bare import-path string.
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// unparen strips any number of parentheses around e.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// namedOf unwraps pointers and aliases down to the named type of t.
func namedOf(t types.Type) (*types.Named, bool) {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u, true
		default:
			return nil, false
		}
	}
}

// calleeFunc resolves the called function or method of a call, or nil
// for builtins, conversions and calls through function values.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.Info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(pass *Pass, call *ast.CallExpr, name string) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// taintedValueType reports whether named is one of the tracked value
// types whose Data field is raw label-less storage: core/taint.Bytes
// or jni.DirectBuffer.
func taintedValueType(named *types.Named) (string, bool) {
	obj := named.Obj()
	switch {
	case obj.Name() == "Bytes" && hasPathSuffix(obj.Pkg(), "internal/core/taint"):
		return "taint.Bytes", true
	case obj.Name() == "DirectBuffer" && hasPathSuffix(obj.Pkg(), "internal/jni"):
		return "jni.DirectBuffer", true
	}
	return "", false
}

// taintedRawData reports whether e denotes the raw []byte backing a
// tracked value: a (possibly re-sliced) selection of the Data field of
// taint.Bytes or jni.DirectBuffer. The returned string names the
// owning type for the diagnostic.
func taintedRawData(pass *Pass, e ast.Expr) (string, bool) {
	for {
		switch v := unparen(e).(type) {
		case *ast.SliceExpr:
			e = v.X
		case *ast.SelectorExpr:
			sel := pass.Info.Selections[v]
			if sel == nil || sel.Kind() != types.FieldVal || sel.Obj().Name() != "Data" {
				return "", false
			}
			named, ok := namedOf(sel.Recv())
			if !ok {
				return "", false
			}
			return taintedValueType(named)
		default:
			return "", false
		}
	}
}

// corePackages are the layers allowed to touch raw tainted storage:
// the label store itself and the instrumented native/JRE surface that
// is responsible for moving labels alongside data.
var corePackages = []string{
	"internal/core/taint",
	"internal/jni",
	"internal/jre",
	"internal/instrument",
}

// isCorePackage reports whether the pass's package is one of the
// whitelisted raw-data layers.
func isCorePackage(pass *Pass) bool {
	for _, suffix := range corePackages {
		// The "_test" variant of a core package is core too.
		if pathHasSuffix(strings.TrimSuffix(pass.Path, "_test"), suffix) {
			return true
		}
	}
	return false
}
