package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// IdBits proves the Global-ID bit layout sound at compile time: the
// provisional bit (PR 3's journal marker), the partition-index field
// (the cluster's routing bits) and the per-partition sequence field
// must be pairwise disjoint, or a journaled provisional id could alias
// a real id minted by another partition — silently resolving to the
// wrong taint. The check fires in any package declaring the layout
// constants (provisionalBit, partitionMask, seqMask), so a refactor
// that widens one field past another's edge fails `make lint` instead
// of corrupting resolutions at runtime.
var IdBits = &Analyzer{
	Name: "idbits",
	Doc: "the Global-ID bit fields (provisional bit, partition index, sequence) " +
		"must be pairwise disjoint",
	Run: runIdBits,
}

func runIdBits(pass *Pass) {
	type field struct {
		val uint64
		pos token.Pos
	}
	fields := map[string]field{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					switch name.Name {
					case "provisionalBit", "partitionMask", "seqMask":
					default:
						continue
					}
					obj, _ := pass.Info.Defs[name].(*types.Const)
					if obj == nil {
						continue
					}
					if v, ok := constant.Uint64Val(constant.ToInt(obj.Val())); ok {
						fields[name.Name] = field{val: v, pos: name.Pos()}
					}
				}
			}
		}
	}
	prov, hasProv := fields["provisionalBit"]
	part, hasPart := fields["partitionMask"]
	seq, hasSeq := fields["seqMask"]
	if hasProv && prov.val&(prov.val-1) != 0 {
		pass.Reportf(prov.pos,
			"provisional bit 0x%x is not a single bit", prov.val)
	}
	if hasProv && hasPart && prov.val&part.val != 0 {
		pass.Reportf(part.pos,
			"partition-index mask 0x%x overlaps the provisional bit 0x%x: a journaled id could alias a cluster id",
			part.val, prov.val)
	}
	if hasPart && hasSeq && part.val&seq.val != 0 {
		pass.Reportf(seq.pos,
			"sequence mask 0x%x overlaps the partition-index mask 0x%x: two partitions could mint the same id",
			seq.val, part.val)
	}
	if hasProv && hasSeq && prov.val&seq.val != 0 {
		pass.Reportf(seq.pos,
			"sequence mask 0x%x overlaps the provisional bit 0x%x", seq.val, prov.val)
	}
}
