package analysis

import (
	"go/ast"
	"go/types"
)

// LabelCopy flags data moves that bypass the label plane: the builtin
// copy/append applied to the raw .Data of a tracked value. Data and
// labels must move together — taint.Bytes provides CopyInto /
// CopyLabelsInto / Append for exactly this — so a raw copy is only
// sound when the enclosing function also performs a paired label-run
// operation (which audited call sites do, e.g. a copy followed by
// CopyLabelsInto). Functions that move raw bytes with no label
// operation anywhere in their body are reported.
//
// Like shadowdrop, the core label-moving layers are whitelisted; the
// analysis is per enclosing function, so a paired operation in a
// different function does not count. A call to a label-safe core
// fast-path helper (labelSafeCallee: trust domain + label-carrying
// signature or a DeclaresClean summary) also counts as the paired
// label operation: those helpers move or declare the labels
// themselves, so a raw byte move feeding one is the sanctioned tier
// encode.
var LabelCopy = &Analyzer{
	Name: "labelcopy",
	Doc: "copy/append on the raw .Data of a tracked value needs a paired label " +
		"operation (CopyInto/CopyLabelsInto/SetRange/…) in the same function",
	Run: runLabelCopy,
}

// labelOps are the taint.Bytes / jni.DirectBuffer methods that move or
// rewrite shadow labels; any one of them in the enclosing function
// marks the raw copy as paired.
var labelOps = map[string]bool{
	"CopyInto":       true,
	"CopyLabelsInto": true,
	"SetRange":       true,
	"SetLabel":       true,
	"TaintRange":     true,
	"TaintAll":       true,
	"ForEachRun":     true,
}

func runLabelCopy(pass *Pass) {
	if isCorePackage(pass) {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLabelCopy(pass, fd.Body)
		}
	}
}

// checkLabelCopy reports unpaired raw copies within one function body.
func checkLabelCopy(pass *Pass, body *ast.BlockStmt) {
	type rawMove struct {
		pos   ast.Expr
		verb  string
		owner string
	}
	var moves []rawMove
	paired := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isBuiltin(pass, call, "copy"), isBuiltin(pass, call, "append"):
			verb := "copy"
			if isBuiltin(pass, call, "append") {
				verb = "append"
			}
			for _, arg := range call.Args {
				if owner, ok := taintedRawData(pass, arg); ok {
					moves = append(moves, rawMove{pos: arg, verb: verb, owner: owner})
				}
			}
		default:
			fn := calleeFunc(pass, call)
			if fn == nil {
				break
			}
			if (labelOps[fn.Name()] && labelOpReceiver(fn)) || labelSafeCallee(pass.Index, fn) {
				paired = true
			}
		}
		return true
	})
	if paired {
		return
	}
	for _, m := range moves {
		pass.Reportf(m.pos.Pos(),
			"%s moves the raw .Data of %s with no label operation in this function; labels are left behind — use CopyInto/CopyLabelsInto or taint.Bytes.Append",
			m.verb, m.owner)
	}
}

// labelOpReceiver confirms the method really is the tracked-value API,
// not an unrelated method that happens to share a name.
func labelOpReceiver(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named, ok := namedOf(sig.Recv().Type())
	if !ok {
		return false
	}
	_, ok = taintedValueType(named)
	return ok
}
