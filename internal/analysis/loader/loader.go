// Package loader parses and type-checks every package of the
// enclosing module using only the standard library: ASTs come from
// go/parser, types from go/types, and out-of-module imports (the
// standard library) from go/importer's source importer. It exists so
// the distavet analysis suite needs no golang.org/x/tools dependency
// and no network access.
//
// Unlike the go tool, the loader will also type-check packages that
// live under testdata/ directories (via LoadDir), which is how the
// analyzer golden tests compile their deliberately-broken inputs.
package loader

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package: its ASTs plus the go/types
// objects the analyzers consume.
type Package struct {
	Path  string      // import path ("dista/internal/core/taint")
	Dir   string      // absolute directory the files came from
	Name  string      // package name from the package clauses
	Files []*ast.File // files type-checked into Types (tests included when requested)
	Types *types.Package
	Info  *types.Info

	// XTest is the external (package foo_test) test package of the
	// same directory, when one exists and test loading is on.
	XTest *Package
}

// Program owns the file set, build context and package cache of one
// load session. It is not safe for concurrent use.
type Program struct {
	Fset         *token.FileSet
	Root         string // module root: the directory holding go.mod
	Module       string // module path from go.mod
	IncludeTests bool

	std     types.Importer      // source importer for out-of-module paths
	pkgs    map[string]*Package // by import path (and synthetic LoadDir paths)
	loading map[string]bool     // cycle detection
}

// New prepares a load session for the module rooted at root. The
// module path is read from go.mod. Cgo is disabled process-wide so the
// source importer resolves cgo-using stdlib packages (net) through
// their pure-Go fallbacks.
func New(root string, includeTests bool) (*Program, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	module, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Program{
		Fset:         fset,
		Root:         abs,
		Module:       module,
		IncludeTests: includeTests,
		std:          importer.ForCompiler(fset, "source", nil),
		pkgs:         make(map[string]*Package),
		loading:      make(map[string]bool),
	}, nil
}

// FindModuleRoot walks up from dir to the nearest directory holding a
// go.mod file.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("loader: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("loader: no module line in %s", gomod)
}

// ModulePackages loads every package of the module, in deterministic
// (import-path) order. Directories named testdata or vendor and
// dot/underscore directories are skipped, matching the go tool.
func (p *Program) ModulePackages() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(p.Root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != p.Root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(p.Root, dir)
		if err != nil {
			return nil, err
		}
		ipath := p.Module
		if rel != "." {
			ipath = p.Module + "/" + filepath.ToSlash(rel)
		}
		pkg, err := p.load(ipath)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// Package returns the already-loaded package for an import path, or
// loads it on demand (module paths only).
func (p *Program) Package(path string) (*Package, error) {
	return p.load(path)
}

// Packages returns a snapshot of every package loaded so far — module
// packages and LoadDir targets, external test packages included as
// their own entries — in deterministic import-path order. The
// interprocedural analysis layer uses this as the summary universe:
// a target package's callees are always in here, because type-checking
// the target forced their load.
func (p *Program) Packages() []*Package {
	paths := make([]string, 0, len(p.pkgs))
	for path := range p.pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	var out []*Package
	for _, path := range paths {
		pkg := p.pkgs[path]
		out = append(out, pkg)
		if pkg.XTest != nil {
			out = append(out, pkg.XTest)
		}
	}
	return out
}

// LoadDir type-checks the single package rooted at dir — which may be
// anywhere under the module, including testdata trees the go tool
// ignores — under a synthetic import path derived from its location.
func (p *Program) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(p.Root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		rel = filepath.Base(abs)
	}
	synthetic := "distavet.test/" + filepath.ToSlash(rel)
	if pkg, ok := p.pkgs[synthetic]; ok {
		return pkg, nil
	}
	pkg, err := p.loadDir(abs, synthetic)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("loader: no buildable Go files in %s", dir)
	}
	return pkg, nil
}

// hasGoFiles reports whether dir directly contains any .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// load resolves a module import path to its directory and loads it.
func (p *Program) load(path string) (*Package, error) {
	if pkg, ok := p.pkgs[path]; ok {
		return pkg, nil
	}
	if p.loading[path] {
		return nil, fmt.Errorf("loader: import cycle through %s", path)
	}
	p.loading[path] = true
	defer delete(p.loading, path)

	dir := p.Root
	if path != p.Module {
		rest, ok := strings.CutPrefix(path, p.Module+"/")
		if !ok {
			return nil, fmt.Errorf("loader: %s is outside module %s", path, p.Module)
		}
		dir = filepath.Join(p.Root, filepath.FromSlash(rest))
	}
	return p.loadDir(dir, path)
}

// loadDir parses, partitions and type-checks the package in dir,
// registering it (and its external test package, if any) under path.
// Returns (nil, nil) when the directory has no buildable files.
func (p *Program) loadDir(dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !p.IncludeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		// Respect build constraints (//go:build lines, GOOS/GOARCH
		// file suffixes) the same way the go tool would.
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		f, err := parser.ParseFile(p.Fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	// Partition: the primary package (plain files plus same-package
	// _test.go files) and the external foo_test package.
	primaryName := ""
	for _, f := range files {
		if !strings.HasSuffix(p.Fset.File(f.Pos()).Name(), "_test.go") {
			primaryName = f.Name.Name
			break
		}
	}
	if primaryName == "" { // test-only directory (e.g. the module root)
		primaryName = strings.TrimSuffix(files[0].Name.Name, "_test")
	}
	var primary, xtest []*ast.File
	for _, f := range files {
		if f.Name.Name == primaryName+"_test" {
			xtest = append(xtest, f)
		} else {
			primary = append(primary, f)
		}
	}

	pkg, err := p.check(path, primaryName, dir, primary)
	if err != nil {
		return nil, err
	}
	p.pkgs[path] = pkg // register before xtest so its self-import resolves
	if len(xtest) > 0 {
		xpkg, err := p.check(path+"_test", primaryName+"_test", dir, xtest)
		if err != nil {
			return nil, err
		}
		pkg.XTest = xpkg
	}
	return pkg, nil
}

// check runs the go/types checker over one file set.
func (p *Program) check(path, name, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	var errs []error
	conf := types.Config{
		Importer: importerFunc(p.importPkg),
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
		Error:    func(err error) { errs = append(errs, err) },
	}
	tpkg, _ := conf.Check(path, p.Fset, files, info)
	if len(errs) > 0 {
		msgs := make([]string, 0, len(errs))
		for i, e := range errs {
			if i == 10 {
				msgs = append(msgs, fmt.Sprintf("... and %d more", len(errs)-10))
				break
			}
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("loader: type errors in %s:\n\t%s", path, strings.Join(msgs, "\n\t"))
	}
	return &Package{Path: path, Dir: dir, Name: name, Files: files, Types: tpkg, Info: info}, nil
}

// importPkg resolves one import encountered while type-checking:
// module paths through this loader, everything else (the standard
// library) through the source importer.
func (p *Program) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == p.Module || strings.HasPrefix(path, p.Module+"/") {
		pkg, err := p.load(path)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("loader: no buildable Go files for %s", path)
		}
		return pkg.Types, nil
	}
	return p.std.Import(path)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
