package analysis

import "go/ast"

// LockOrder enforces the documented mutex orders of the hot-path
// structures, which so far lived only in comments:
//
//   - taint tree (core/taint/tree.go): at most one node mutex is held
//     at a time, and the combine-cache RWMutex (Tree.cmu) is taken
//     only while no node mutex is held;
//   - taint map store (taintmap/store.go): shard locks come before
//     growMu — growMu is the innermost lock, so acquiring a shard
//     lock while holding growMu inverts the Reset/RegisterBlob order
//     and can deadlock against them;
//   - admission control (taintmap/server.go, PR 8): the admission
//     semaphore is a mutex+cond pair whose admit() can block
//     indefinitely waiting for a slot. admission.mu is therefore the
//     outermost tracked lock — taking it (or calling admit(), which
//     is modeled as a transient acquire+release) while any tracked
//     lock is held parks that lock behind the admission queue.
//     release() only signals under a brief a.mu critical section that
//     acquires nothing else, so it is safe under other locks and not
//     modeled. The hedgeTracker next to it is atomics-only (no
//     mutex), so it has no lock class at all;
//   - cluster client (taintmap/clusterclient.go, PR 8):
//     ClusterClient.mu guards membership changes only; the routing
//     table is a lock-free atomic.Pointer read on the request path.
//     It is a leaf — no tracked lock may be acquired under it.
//
// The pinned global order is therefore:
//
//	admission.mu  >  shard.mu > growMu  |  node.mu, Tree.cmu (disjoint)  >  ClusterClient.mu
//
// (admission outermost, growMu inside shard, ClusterClient.mu a leaf;
// the tree locks never interleave with the store locks in code today,
// so no cross pair is in the table.)
//
// Lock classes are recognized by (receiver type name, field name) —
// node.mu, Tree.cmu, shard.mu, Store.growMu, admission.mu,
// ClusterClient.mu — so a refactor that renames the fields must update
// this table (a cheap, visible cost; silently losing the check would
// be the expensive one). The analysis is intra-procedural and
// path-insensitive: statements are scanned in order, branches with a
// copy of the held set, and a deferred Unlock keeps its mutex held to
// the end of the function, which matches how these functions are
// written.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "documented mutex orders: at most one taint-tree node mutex; Tree.cmu " +
		"never under a node mutex; no shard lock while Store.growMu is held; " +
		"admission.mu (and blocking admit()) outermost; ClusterClient.mu a leaf",
	Run: runLockOrder,
}

// lockClass identifies one mutex family in the order table.
type lockClass int

const (
	lockNone lockClass = iota
	lockNodeMu
	lockTreeCmu
	lockShardMu
	lockGrowMu
	lockAdmissionMu
	lockClusterMu
)

var lockClassName = map[lockClass]string{
	lockNodeMu:      "node.mu",
	lockTreeCmu:     "Tree.cmu",
	lockShardMu:     "shard.mu",
	lockGrowMu:      "Store.growMu",
	lockAdmissionMu: "admission.mu",
	lockClusterMu:   "ClusterClient.mu",
}

const (
	admissionOutermost = "the admission semaphore can block on its condition variable; " +
		"admission.mu must be the outermost tracked lock (admission lock order)"
	clusterLeaf = "ClusterClient.mu guards membership only and is a leaf; " +
		"no tracked lock may be acquired under it (cluster lock order)"
)

// forbiddenNesting maps (held, acquiring) pairs to the invariant they
// violate.
var forbiddenNesting = map[[2]lockClass]string{
	{lockNodeMu, lockNodeMu}:  "at most one node mutex may be held at a time (taint tree lock order)",
	{lockNodeMu, lockTreeCmu}: "the combine-cache mutex is taken only while no node mutex is held",
	{lockGrowMu, lockShardMu}: "shard locks come before growMu (Store lock order); growMu is innermost",

	// admission.mu is outermost: admit() may park the caller on the
	// cond var for as long as the server is saturated, so any lock
	// held across it is held for that whole wait.
	{lockNodeMu, lockAdmissionMu}:      admissionOutermost,
	{lockTreeCmu, lockAdmissionMu}:     admissionOutermost,
	{lockShardMu, lockAdmissionMu}:     admissionOutermost,
	{lockGrowMu, lockAdmissionMu}:      admissionOutermost,
	{lockClusterMu, lockAdmissionMu}:   admissionOutermost,
	{lockAdmissionMu, lockAdmissionMu}: admissionOutermost,

	// ClusterClient.mu is a leaf: membership swaps publish through an
	// atomic.Pointer, so nothing slower than a field update belongs
	// under it.
	{lockClusterMu, lockNodeMu}:    clusterLeaf,
	{lockClusterMu, lockTreeCmu}:   clusterLeaf,
	{lockClusterMu, lockShardMu}:   clusterLeaf,
	{lockClusterMu, lockGrowMu}:    clusterLeaf,
	{lockClusterMu, lockClusterMu}: clusterLeaf,
}

func runLockOrder(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkLockOrder(pass, fd.Body)
			}
		}
	}
}

// checkLockOrder analyzes one function body, then every function
// literal inside it with a fresh held set (literals run later, on
// their own goroutine or call).
func checkLockOrder(pass *Pass, body *ast.BlockStmt) {
	walkLockStmts(pass, body.List, nil)
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			walkLockStmts(pass, lit.Body.List, nil)
			return false
		}
		return true
	})
}

// walkLockStmts scans a statement list in order, threading the held
// multiset through and returning it. Branch bodies are analyzed with a
// copy: locks taken and released inside a branch do not leak out, and
// the fall-through path keeps the entry state.
func walkLockStmts(pass *Pass, stmts []ast.Stmt, held []lockClass) []lockClass {
	for _, stmt := range stmts {
		held = walkLockStmt(pass, stmt, held)
	}
	return held
}

func walkLockStmt(pass *Pass, stmt ast.Stmt, held []lockClass) []lockClass {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			held = applyLockCall(pass, call, held)
		}
	case *ast.DeferStmt:
		// A deferred Unlock releases at return; the mutex stays held
		// for the rest of the body, which is what the entry in held
		// already says. A deferred Lock would be bizarre; ignore both.
	case *ast.BlockStmt:
		held = walkLockStmts(pass, s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held = walkLockStmt(pass, s.Init, held)
		}
		walkLockStmts(pass, s.Body.List, cloneLocks(held))
		if s.Else != nil {
			walkLockStmt(pass, s.Else, cloneLocks(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held = walkLockStmt(pass, s.Init, held)
		}
		held = walkLockLoop(pass, s.Body.List, held)
	case *ast.RangeStmt:
		held = walkLockLoop(pass, s.Body.List, held)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				walkLockStmts(pass, cc.Body, cloneLocks(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				walkLockStmts(pass, cc.Body, cloneLocks(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				walkLockStmts(pass, cc.Body, cloneLocks(held))
			}
		}
	case *ast.LabeledStmt:
		held = walkLockStmt(pass, s.Stmt, held)
	}
	return held
}

// walkLockLoop analyzes a loop body. A body that acquires without
// releasing carries its locks into the next iteration (hand-over-hand
// walks, the Reset lock-every-shard pattern), so when one symbolic
// iteration changes the held set the body is analyzed once more with
// the carried state; duplicate reports are collapsed in Run.
func walkLockLoop(pass *Pass, body []ast.Stmt, held []lockClass) []lockClass {
	after := walkLockStmts(pass, body, cloneLocks(held))
	if !sameLocks(after, held) {
		walkLockStmts(pass, body, cloneLocks(after))
	}
	return after
}

func sameLocks(a, b []lockClass) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// applyLockCall updates held for one x.Lock()/x.Unlock() call and
// reports forbidden nestings at the acquisition site.
func applyLockCall(pass *Pass, call *ast.CallExpr, held []lockClass) []lockClass {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return held
	}
	var acquire bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	case "admit":
		// admission.admit() is a transient acquire+release of
		// admission.mu that can park on the cond var: report it like
		// an acquisition, but leave the held set unchanged.
		if admissionReceiver(pass, sel.X) {
			for _, h := range held {
				pass.Reportf(call.Pos(), "admit() blocks on %s while %s is held: %s",
					lockClassName[lockAdmissionMu], lockClassName[h], admissionOutermost)
			}
		}
		return held
	default:
		return held
	}
	class := lockClassOf(pass, sel.X)
	if class == lockNone {
		return held
	}
	if !acquire {
		for i := len(held) - 1; i >= 0; i-- {
			if held[i] == class {
				return append(held[:i:i], held[i+1:]...)
			}
		}
		return held
	}
	for _, h := range held {
		if why, bad := forbiddenNesting[[2]lockClass{h, class}]; bad {
			pass.Reportf(call.Pos(), "%s acquired while %s is held: %s",
				lockClassName[class], lockClassName[h], why)
		}
	}
	return append(cloneLocks(held), class)
}

// lockClassOf classifies the mutex operand of a Lock/Unlock call: a
// field selection recv.field whose (type, field) pair is in the table.
func lockClassOf(pass *Pass, e ast.Expr) lockClass {
	sel, ok := unparen(e).(*ast.SelectorExpr)
	if !ok {
		return lockNone
	}
	t := pass.TypeOf(sel.X)
	if t == nil {
		return lockNone
	}
	named, ok := namedOf(t)
	if !ok {
		return lockNone
	}
	switch [2]string{named.Obj().Name(), sel.Sel.Name} {
	case [2]string{"node", "mu"}:
		return lockNodeMu
	case [2]string{"Tree", "cmu"}:
		return lockTreeCmu
	case [2]string{"shard", "mu"}:
		return lockShardMu
	case [2]string{"Store", "growMu"}:
		return lockGrowMu
	case [2]string{"admission", "mu"}:
		return lockAdmissionMu
	case [2]string{"ClusterClient", "mu"}:
		return lockClusterMu
	}
	return lockNone
}

// admissionReceiver reports whether e has the admission semaphore type
// (by type name, matching the class table's convention).
func admissionReceiver(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	named, ok := namedOf(t)
	return ok && named.Obj().Name() == "admission"
}

func cloneLocks(held []lockClass) []lockClass {
	return append([]lockClass(nil), held...)
}
