package analysis_test

import (
	"testing"

	"dista/internal/analysis"
	"dista/internal/analysis/loader"
)

// TestModuleClean is the driver test the lint gate rests on: distavet
// over the real module — every package, test files included — must
// report zero findings. Any invariant regression anywhere in the tree
// fails this test before it ever reaches make lint.
func TestModuleClean(t *testing.T) {
	if raceEnabled {
		// Type-checking the module plus its stdlib closure from source
		// is pure overhead under the race detector; the non-race test
		// run and make lint both cover it.
		t.Skip("skipping whole-module analysis under -race")
	}
	root, err := loader.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := loader.New(root, true)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := prog.ModulePackages()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("module load found only %d packages; the loader is missing most of the tree", len(pkgs))
	}
	for _, d := range analysis.Run(prog, pkgs, analysis.All()) {
		t.Errorf("%s", d)
	}
}
