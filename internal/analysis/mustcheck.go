package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// MustCheck flags discarded results of the Taint Map client/store
// surface: Register*, Lookup*, Drain* and TryTake* calls on
// internal/taintmap types. Dropping the returned Global ID breaks the
// cross-node transfer chain (the byte ships untainted), dropping the
// error hides degraded-mode outcomes (ErrDegraded, ErrJournalFull,
// ErrGlobalIDPending) that callers are required to route — see the
// resilience contract in DESIGN.md §5 — and dropping a Budget.TryTake
// verdict charges the retry budget while ignoring its denial, exactly
// the retry-storm the budget exists to prevent (§10).
var MustCheck = &Analyzer{
	Name: "mustcheck",
	Doc: "results of internal/taintmap Register*/Lookup*/Drain*/TryTake* calls must be used: " +
		"the Global ID, error, and admission verdict carry the soundness signal",
	Run: runMustCheck,
}

func runMustCheck(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			how := "discarded"
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
			case *ast.GoStmt:
				call = n.Call
			case *ast.DeferStmt:
				call = n.Call
			case *ast.AssignStmt:
				if len(n.Rhs) != 1 || !allBlank(n.Lhs) {
					return true
				}
				call, _ = n.Rhs[0].(*ast.CallExpr)
				how = "assigned to blanks"
			default:
				return true
			}
			if call == nil {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || !isTaintMapMust(fn.Name()) {
				return true
			}
			sig, _ := fn.Type().(*types.Signature)
			if sig == nil {
				return true
			}
			if sig.Results().Len() == 0 {
				return true
			}
			// Scope to the taintmap package's own API, wherever the
			// method is declared (client structs, Store, journal).
			if !hasPathSuffix(fn.Pkg(), "internal/taintmap") {
				return true
			}
			pass.Reportf(call.Pos(),
				"result of %s %s; the Global ID / error must be checked (or //lint:ignore with a reason)",
				fn.Name(), how)
			return true
		})
	}
}

// isTaintMapMust reports whether name is part of the must-check
// surface of the taintmap package.
func isTaintMapMust(name string) bool {
	return strings.HasPrefix(name, "Register") ||
		strings.HasPrefix(name, "Lookup") ||
		strings.HasPrefix(name, "Drain") ||
		strings.HasPrefix(name, "TryTake")
}

// allBlank reports whether every expression is the blank identifier.
func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}
