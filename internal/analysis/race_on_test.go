//go:build race

package analysis_test

// raceEnabled reports whether the test binary was built with the race
// detector; the whole-module analysis test skips itself there.
const raceEnabled = true
