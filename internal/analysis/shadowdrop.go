package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ShadowDrop flags the label-dropping bug class: the raw .Data []byte
// of a tracked value (taint.Bytes, jni.DirectBuffer) escaping into an
// I/O or network call. Once the bare slice crosses such a boundary the
// shadow labels stay behind and the bytes travel untainted — a silent
// soundness hole. Reads (len, indexing, string conversion, decoding)
// are fine; only write-shaped escapes are flagged:
//
//   - method calls named Write*/Send*/Publish*/Post*/Broadcast*,
//   - package functions of os, io, net, bufio and internal/netsim
//     with Write*/Send* names, and fmt.Fprint*,
//   - taint.WrapBytes(x.Data): re-wrapping tainted storage as a fresh
//     untainted view, the in-process variant of the same drop.
//
// The core layers that are responsible for moving labels next to data
// (internal/core/taint, internal/jni, internal/jre,
// internal/instrument) are whitelisted wholesale, and so are the
// label-safe fast-path helpers those layers export: a passthrough
// send declares the bytes untainted on the wire after the caller
// proved them Clean(), and the uniform/sparse tier helpers carry the
// labels out-of-band right next to the raw bytes, so handing them the
// raw slice drops nothing. Since PR 9 that exemption is a derived
// fact, not a naming convention: labelSafeCallee (helpers.go) demands
// the callee live in the trust domain AND either carry labels in its
// signature or have a summary that declares its payload clean.
// Anywhere else a deliberate drop needs a //lint:ignore with its
// justification. Escapes laundered through a helper call or a local
// binding are the taintflow analyzer's findings; shadowdrop stays the
// precise syntactic check for direct .Data-into-sink arguments.
var ShadowDrop = &Analyzer{
	Name: "shadowdrop",
	Doc: "raw .Data of a tracked value must not escape into I/O/network calls " +
		"(or taint.WrapBytes) outside the core label-moving layers",
	Run: runShadowDrop,
}

func runShadowDrop(pass *Pass) {
	if isCorePackage(pass) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sink, ok := escapeCallee(pass, call)
			if !ok {
				return true
			}
			for _, arg := range call.Args {
				if owner, ok := taintedRawData(pass, arg); ok {
					pass.Reportf(arg.Pos(),
						"raw .Data of %s escapes into %s; shadow labels are dropped — route through the jre/instrument API",
						owner, sink)
				}
			}
			return true
		})
	}
}

// escapeCallee classifies call as a label-dropping sink, returning a
// printable name for it.
func escapeCallee(pass *Pass, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	name := fn.Name()
	if sig.Recv() != nil {
		if !writeVerb(name) || labelSafeCallee(pass.Index, fn) {
			return "", false
		}
		recv := sig.Recv().Type()
		if named, ok := namedOf(recv); ok {
			return named.Obj().Name() + "." + name, true
		}
		return name, true
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	switch {
	case pkg.Path() == "fmt":
		if strings.HasPrefix(name, "Fprint") {
			return "fmt." + name, true
		}
	case pkg.Path() == "os" || pkg.Path() == "io" || pkg.Path() == "net" ||
		pkg.Path() == "bufio" || hasPathSuffix(pkg, "internal/netsim"):
		if writeVerb(name) {
			return pkg.Name() + "." + name, true
		}
	case hasPathSuffix(pkg, "internal/core/taint") && name == "WrapBytes":
		return "taint.WrapBytes (an untainted re-wrap)", true
	}
	return "", false
}

