package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ShadowDrop flags the label-dropping bug class: the raw .Data []byte
// of a tracked value (taint.Bytes, jni.DirectBuffer) escaping into an
// I/O or network call. Once the bare slice crosses such a boundary the
// shadow labels stay behind and the bytes travel untainted — a silent
// soundness hole. Reads (len, indexing, string conversion, decoding)
// are fine; only write-shaped escapes are flagged:
//
//   - method calls named Write*/Send*/Publish*/Post*/Broadcast*,
//   - package functions of os, io, net, bufio and internal/netsim
//     with Write*/Send* names, and fmt.Fprint*,
//   - taint.WrapBytes(x.Data): re-wrapping tainted storage as a fresh
//     untainted view, the in-process variant of the same drop.
//
// The core layers that are responsible for moving labels next to data
// (internal/core/taint, internal/jni, internal/jre,
// internal/instrument) are whitelisted wholesale, and so are the
// fast-path helpers those layers export (methods named *Passthrough*,
// *Uniform* or *Sparse* on core types): a passthrough send declares
// the bytes untainted on the wire after the caller proved them
// Clean(), and the uniform/sparse tier helpers carry the labels
// out-of-band right next to the raw bytes, so handing them the raw
// slice drops nothing. Anywhere else a deliberate drop needs a
// //lint:ignore with its justification.
var ShadowDrop = &Analyzer{
	Name: "shadowdrop",
	Doc: "raw .Data of a tracked value must not escape into I/O/network calls " +
		"(or taint.WrapBytes) outside the core label-moving layers",
	Run: runShadowDrop,
}

func runShadowDrop(pass *Pass) {
	if isCorePackage(pass) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sink, ok := escapeCallee(pass, call)
			if !ok {
				return true
			}
			for _, arg := range call.Args {
				if owner, ok := taintedRawData(pass, arg); ok {
					pass.Reportf(arg.Pos(),
						"raw .Data of %s escapes into %s; shadow labels are dropped — route through the jre/instrument API",
						owner, sink)
				}
			}
			return true
		})
	}
}

// escapeCallee classifies call as a label-dropping sink, returning a
// printable name for it.
func escapeCallee(pass *Pass, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	name := fn.Name()
	if sig.Recv() != nil {
		if !writeVerb(name) || fastPathHelper(fn) {
			return "", false
		}
		recv := sig.Recv().Type()
		if named, ok := namedOf(recv); ok {
			return named.Obj().Name() + "." + name, true
		}
		return name, true
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	switch {
	case pkg.Path() == "fmt":
		if strings.HasPrefix(name, "Fprint") {
			return "fmt." + name, true
		}
	case pkg.Path() == "os" || pkg.Path() == "io" || pkg.Path() == "net" ||
		pkg.Path() == "bufio" || hasPathSuffix(pkg, "internal/netsim"):
		if writeVerb(name) {
			return pkg.Name() + "." + name, true
		}
	case hasPathSuffix(pkg, "internal/core/taint") && name == "WrapBytes":
		return "taint.WrapBytes (an untainted re-wrap)", true
	}
	return "", false
}

// fastPathHelper reports whether fn is one of the fast-path helpers
// exported by the core label-moving layers or the wire codec. Those
// helpers either declare their payload untainted on the wire
// (*Passthrough*, e.g. instrument.Endpoint.WritePassthrough) or carry
// the labels out-of-band right next to the raw bytes (*Uniform*,
// *Sparse*, e.g. Endpoint.WriteUniform or wire.AppendSparseFrame), so
// feeding them a raw .Data slice is the sanctioned fast path rather
// than a label drop. The exemption is deliberately narrow: the name
// must contain one of the fast-path markers and the function must be
// defined in a core package or internal/core/wire — a lookalike helper
// elsewhere is still flagged.
func fastPathHelper(fn *types.Func) bool {
	name := fn.Name()
	if !strings.Contains(name, "Passthrough") &&
		!strings.Contains(name, "Uniform") && !strings.Contains(name, "Sparse") {
		return false
	}
	if hasPathSuffix(fn.Pkg(), "internal/core/wire") {
		return true
	}
	for _, suffix := range corePackages {
		if hasPathSuffix(fn.Pkg(), suffix) {
			return true
		}
	}
	return false
}

// writeVerb reports whether a function name is write-shaped I/O.
func writeVerb(name string) bool {
	for _, prefix := range []string{"Write", "Send", "Publish", "Post", "Broadcast"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}
