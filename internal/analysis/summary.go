package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// FuncSummary is the interprocedural fact record of one function: how
// its []byte parameters behave with respect to the label plane
// (DESIGN.md §11). The lattice is per-parameter bits plus three
// function-level bits; all facts are computed bottom-up over the call
// graph so a caller's summary is expressed in terms of its callees'.
type FuncSummary struct {
	// Escapes[i]: parameter i's raw bytes can reach a write-shaped
	// I/O sink (directly or through further calls) with no paired
	// label movement — handing tainted .Data to this parameter drops
	// labels. EscapeSink[i] names the sink for diagnostics.
	Escapes    []bool
	EscapeSink []string

	// DeclaresClean[i]: parameter i flows (by identity forwarding
	// only) into a Passthrough emission, i.e. the function declares
	// the bytes label-free on the wire. The caller owes a
	// cleanliness proof — tierencode Rule B's obligation, now
	// transitive through wrappers.
	DeclaresClean []bool

	// ReturnsRaw[i]: result i is the raw .Data of a tracked value
	// (or forwarded from a callee that returns one) — the value a
	// caller receives is label-less tainted storage.
	ReturnsRaw []bool

	// LabelPaired: the body performs a paired label-plane operation
	// (CopyLabelsInto, SetRange, … or a label-safe fast-path call),
	// so raw byte movement inside it is the sanctioned two-plane
	// move. CleanGated: the body performs a cleanliness
	// classification (Clean/Uniform/Stats/ForEachDirtyRun/
	// RunsAllUntainted). Trusted: defined in the label-moving trust
	// domain. Any of the three suppresses Escapes.
	LabelPaired bool
	CleanGated  bool
	Trusted     bool
}

// AnyDeclaresClean reports whether any parameter declares its payload
// label-free on the wire.
func (s *FuncSummary) AnyDeclaresClean() bool {
	for _, b := range s.DeclaresClean {
		if b {
			return true
		}
	}
	return false
}

// AnyEscapes reports whether any parameter escapes to a sink.
func (s *FuncSummary) AnyEscapes() bool {
	for _, b := range s.Escapes {
		if b {
			return true
		}
	}
	return false
}

// equal is structural equality, used for fixpoint termination.
func (s *FuncSummary) equal(t *FuncSummary) bool {
	if s.LabelPaired != t.LabelPaired || s.CleanGated != t.CleanGated || s.Trusted != t.Trusted {
		return false
	}
	eqb := func(a, b []bool) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if !eqb(s.Escapes, t.Escapes) || !eqb(s.DeclaresClean, t.DeclaresClean) || !eqb(s.ReturnsRaw, t.ReturnsRaw) {
		return false
	}
	if len(s.EscapeSink) != len(t.EscapeSink) {
		return false
	}
	for i := range s.EscapeSink {
		if s.EscapeSink[i] != t.EscapeSink[i] {
			return false
		}
	}
	return true
}

// externalSink classifies a callee with no summary (stdlib, bodiless)
// as a label-dropping sink, mirroring shadowdrop's escapeCallee set:
// write-verb methods, write-shaped package functions of os/io/net/
// bufio/netsim, fmt.Fprint*, and taint.WrapBytes. Label-safe callees
// are never sinks.
func externalSink(idx *Index, fn *types.Func) (string, bool) {
	if fn == nil {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	name := fn.Name()
	if sig.Recv() != nil {
		if !writeVerb(name) || labelSafeCallee(idx, fn) {
			return "", false
		}
		if named, ok := namedOf(sig.Recv().Type()); ok {
			return named.Obj().Name() + "." + name, true
		}
		return name, true
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	switch {
	case pkg.Path() == "fmt":
		if strings.HasPrefix(name, "Fprint") {
			return "fmt." + name, true
		}
	case pkg.Path() == "os" || pkg.Path() == "io" || pkg.Path() == "net" ||
		pkg.Path() == "bufio" || hasPathSuffix(pkg, "internal/netsim"):
		if writeVerb(name) {
			return pkg.Name() + "." + name, true
		}
	case hasPathSuffix(pkg, "internal/core/taint") && name == "WrapBytes":
		return "taint.WrapBytes (an untainted re-wrap)", true
	}
	return "", false
}

// paramIndexForArg maps argument position to parameter index,
// collapsing variadic tails onto the last parameter.
func paramIndexForArg(sig *types.Signature, arg int) int {
	n := sig.Params().Len()
	if n == 0 {
		return -1
	}
	if arg >= n {
		if sig.Variadic() {
			return n - 1
		}
		return -1
	}
	return arg
}

// evalSummary computes fn's summary from the current summaries of its
// callees. It is re-invoked by the SCC fixpoint until stable.
func (idx *Index) evalSummary(fn *types.Func) *FuncSummary {
	info := idx.fns[fn]
	sig := fn.Type().(*types.Signature)
	nParams := sig.Params().Len()
	s := &FuncSummary{
		Escapes:       make([]bool, nParams),
		EscapeSink:    make([]string, nParams),
		DeclaresClean: make([]bool, nParams),
		ReturnsRaw:    make([]bool, sig.Results().Len()),
		Trusted:       trustedPackage(fn.Pkg()),
	}

	// Byte-slice parameters are the tracked positions; everything
	// else is opaque to the raw-byte plane.
	byteParam := make(map[types.Object]int)
	for i := 0; i < nParams; i++ {
		p := sig.Params().At(i)
		if byteSlice(p.Type()) {
			byteParam[p] = i
		}
	}

	// A Passthrough-named function declares every byte payload it
	// takes label-free on the wire — the root of the DeclaresClean
	// fact that Rule A's naming convention pins down in the codec.
	if strings.Contains(fn.Name(), "Passthrough") {
		for _, i := range byteParam {
			s.DeclaresClean[i] = true
		}
	}

	// Collect assignments once; derived-from-param and raw-local
	// resolution iterate over this list to their own fixpoints.
	type assign struct {
		lhs types.Object
		rhs ast.Expr
	}
	var assigns []assign
	ast.Inspect(info.decl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return true // multi-value unpacking: handled via ReturnsRaw calls only
			}
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.pkg.Info.Defs[id]
				if obj == nil {
					obj = info.pkg.Info.Uses[id]
				}
				if obj != nil {
					assigns = append(assigns, assign{lhs: obj, rhs: st.Rhs[i]})
				}
			}
		case *ast.ValueSpec:
			if len(st.Names) == len(st.Values) {
				for i, id := range st.Names {
					if obj := info.pkg.Info.Defs[id]; obj != nil {
						assigns = append(assigns, assign{lhs: obj, rhs: st.Values[i]})
					}
				}
			}
		}
		return true
	})

	// deriveMap: local object → the byte parameter it is an identity
	// (or reslice) alias of. Deriving through .Data is deliberately
	// NOT a forward: handing the .Data of a tracked value anywhere is
	// the sink event itself, owned by shadowdrop/taintflow.
	deriveMap := make(map[types.Object]int)
	var resolveParam func(e ast.Expr) (int, bool)
	resolveParam = func(e ast.Expr) (int, bool) {
		for {
			switch v := unparen(e).(type) {
			case *ast.SliceExpr:
				e = v.X
			case *ast.Ident:
				obj := info.pkg.Info.Uses[v]
				if obj == nil {
					return -1, false
				}
				if i, ok := byteParam[obj]; ok {
					return i, true
				}
				if i, ok := deriveMap[obj]; ok {
					return i, true
				}
				return -1, false
			default:
				return -1, false
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, a := range assigns {
			if _, done := deriveMap[a.lhs]; done {
				continue
			}
			if _, isParam := byteParam[a.lhs]; isParam {
				continue // reassigned params keep their own index
			}
			if i, ok := resolveParam(a.rhs); ok {
				deriveMap[a.lhs] = i
				changed = true
			}
		}
	}

	// rawLocals: locals holding the raw .Data of a tracked value —
	// assigned from a syntactic .Data selection or from a callee whose
	// summary says it returns raw tracked bytes.
	rawLocals := make(map[types.Object]bool)
	var isRawExpr func(e ast.Expr) bool
	isRawExpr = func(e ast.Expr) bool {
		e = unparen(e)
		if _, ok := taintedRawDataInfo(info.pkg.Info, e); ok {
			return true
		}
		switch v := e.(type) {
		case *ast.SliceExpr:
			return isRawExpr(v.X)
		case *ast.Ident:
			obj := info.pkg.Info.Uses[v]
			return obj != nil && rawLocals[obj]
		case *ast.CallExpr:
			callee := calleeFuncInfo(info.pkg.Info, v)
			if callee == nil {
				return false
			}
			if cs := idx.summaries[callee]; cs != nil && len(cs.ReturnsRaw) == 1 {
				return cs.ReturnsRaw[0]
			}
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		for _, a := range assigns {
			if rawLocals[a.lhs] {
				continue
			}
			if isRawExpr(a.rhs) {
				rawLocals[a.lhs] = true
				changed = true
			}
		}
	}

	// One walk over every call (function literals included — a
	// closure's calls can run): escape events, DeclaresClean
	// forwarding, and the pairing/gating bits.
	markEscape := func(i int, sink string) {
		if !s.Escapes[i] {
			s.Escapes[i] = true
			s.EscapeSink[i] = sink
		}
	}
	ast.Inspect(info.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFuncInfo(info.pkg.Info, call)
		if callee == nil {
			return true
		}
		name := callee.Name()
		if (labelOps[name] && labelOpReceiver(callee)) || labelSafeCallee(idx, callee) {
			s.LabelPaired = true
		}
		if name == "RunsAllUntainted" || (cleanlinessOps[name] && labelOpReceiver(callee)) {
			s.CleanGated = true
		}

		// Resolve the callee to the summaries that may run: the
		// static one, or the dispatch fan-out for interface methods.
		_, isIfaceCall := interfaceMethod(callee)
		var targets []*FuncSummary
		if isIfaceCall {
			for _, impl := range idx.Implementations(callee) {
				if cs := idx.summaries[impl]; cs != nil {
					targets = append(targets, cs)
				}
			}
		} else if cs := idx.summaries[callee]; cs != nil {
			targets = append(targets, cs)
		}

		calleeSig, _ := callee.Type().(*types.Signature)
		for argIdx, arg := range call.Args {
			srcParam, fromParam := resolveParam(arg)
			if !fromParam {
				continue
			}
			// An interface call may dispatch to implementations outside
			// the universe (stdlib io.Writer, net.Conn), so the
			// syntactic sink classification applies alongside any
			// in-universe candidate summaries; a static callee with a
			// summary is judged by the summary alone.
			if len(targets) == 0 || isIfaceCall {
				if sink, isSink := externalSink(idx, callee); isSink {
					markEscape(srcParam, sink)
				}
			}
			if calleeSig == nil {
				continue
			}
			j := paramIndexForArg(calleeSig, argIdx)
			if j < 0 {
				continue
			}
			for _, cs := range targets {
				if j < len(cs.Escapes) && cs.Escapes[j] {
					markEscape(srcParam, cs.EscapeSink[j]+" (via "+name+")")
				}
				if j < len(cs.DeclaresClean) && cs.DeclaresClean[j] {
					s.DeclaresClean[srcParam] = true
				}
			}
		}
		// Bodiless trusted passthrough callees still root the
		// DeclaresClean forward (interface methods of the codec).
		if len(targets) == 0 && trustedPackage(callee.Pkg()) &&
			strings.Contains(name, "Passthrough") && calleeSig != nil {
			for argIdx, arg := range call.Args {
				if srcParam, ok := resolveParam(arg); ok {
					if j := paramIndexForArg(calleeSig, argIdx); j >= 0 && byteSlice(calleeSig.Params().At(j).Type()) {
						s.DeclaresClean[srcParam] = true
					}
				}
			}
		}
		return true
	})

	// Returns: walked with function literals excluded — a literal's
	// return is not fn's return.
	var walkReturns func(n ast.Node)
	walkReturns = func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false
			}
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			if len(ret.Results) == 1 && len(s.ReturnsRaw) > 1 {
				// return g(...): forward the callee's result facts.
				if call, ok := unparen(ret.Results[0]).(*ast.CallExpr); ok {
					if callee := calleeFuncInfo(info.pkg.Info, call); callee != nil {
						if cs := idx.summaries[callee]; cs != nil && len(cs.ReturnsRaw) == len(s.ReturnsRaw) {
							for i, b := range cs.ReturnsRaw {
								if b {
									s.ReturnsRaw[i] = true
								}
							}
						}
					}
				}
				return true
			}
			for i, e := range ret.Results {
				if i < len(s.ReturnsRaw) && isRawExpr(e) {
					s.ReturnsRaw[i] = true
				}
			}
			return true
		})
	}
	walkReturns(info.decl.Body)

	// The trust domain and functions that pair or gate their raw
	// moves do not escape: moving labels next to data is their job.
	if s.Trusted || s.LabelPaired || s.CleanGated {
		for i := range s.Escapes {
			s.Escapes[i] = false
			s.EscapeSink[i] = ""
		}
	}
	return s
}
