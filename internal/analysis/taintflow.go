package analysis

import (
	"go/ast"
	"go/types"
)

// TaintFlow is the interprocedural escape analyzer: it tracks raw
// tracked-storage bytes (the .Data of taint.Bytes / jni.DirectBuffer,
// and values returned raw by callees) through local assignments and
// across call boundaries using the function summaries of DESIGN.md
// §11, and reports when they can reach write-shaped I/O with no label
// movement. This closes the two blind spots of the purely syntactic
// shadowdrop:
//
//   - laundering through a helper: `emit(b.Data)` where emit's body
//     (or anything it transitively calls, interface dispatch
//     included) hands the bytes to a sink — shadowdrop sees neither
//     the call site (emit is not a sink) nor the helper (no .Data
//     selection there);
//   - laundering through a local: `d := b.Data; w.Write(d)` — the
//     sink argument is a plain identifier, not a .Data selection.
//
// Syntactic `.Data`-into-sink escapes stay shadowdrop's findings and
// are deliberately not re-reported here. Callees with a summary are
// judged by the summary alone (a Write-named method that provably
// pairs labels is not a sink); only summary-less callees (stdlib,
// bodiless) fall back to the syntactic sink classification. The core
// label-moving layers are exempt as everywhere else.
var TaintFlow = &Analyzer{
	Name: "taintflow",
	Doc: "raw tracked bytes must not reach write-shaped I/O through helper " +
		"calls or local bindings; summaries make the check interprocedural",
	Run: runTaintFlow,
}

func runTaintFlow(pass *Pass) {
	if isCorePackage(pass) || pass.Index == nil {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkTaintFlow(pass, fd)
			}
		}
	}
}

func checkTaintFlow(pass *Pass, fd *ast.FuncDecl) {
	idx := pass.Index
	info := pass.Info

	// Collect assignments, then resolve which locals hold raw tracked
	// bytes — seeded by .Data selections and raw-returning calls,
	// propagated to a fixpoint.
	type assign struct {
		lhs types.Object
		rhs ast.Expr
	}
	var assigns []assign
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj != nil {
					assigns = append(assigns, assign{lhs: obj, rhs: st.Rhs[i]})
				}
			}
		case *ast.ValueSpec:
			if len(st.Names) == len(st.Values) {
				for i, id := range st.Names {
					if obj := info.Defs[id]; obj != nil {
						assigns = append(assigns, assign{lhs: obj, rhs: st.Values[i]})
					}
				}
			}
		}
		return true
	})

	rawOwner := make(map[types.Object]string)
	var ownerOf func(e ast.Expr) (string, bool)
	ownerOf = func(e ast.Expr) (string, bool) {
		e = unparen(e)
		if owner, ok := taintedRawData(pass, e); ok {
			return owner, true
		}
		switch v := e.(type) {
		case *ast.SliceExpr:
			return ownerOf(v.X)
		case *ast.Ident:
			obj := info.Uses[v]
			if obj != nil && rawOwner[obj] != "" {
				return rawOwner[obj], true
			}
		case *ast.CallExpr:
			if callee := calleeFunc(pass, v); callee != nil {
				if cs := idx.SummaryOf(callee); cs != nil && len(cs.ReturnsRaw) == 1 && cs.ReturnsRaw[0] {
					return "tracked bytes returned by " + callee.Name(), true
				}
			}
		}
		return "", false
	}
	for changed := true; changed; {
		changed = false
		for _, a := range assigns {
			if rawOwner[a.lhs] != "" {
				continue
			}
			if owner, ok := ownerOf(a.rhs); ok {
				rawOwner[a.lhs] = owner
				changed = true
			}
		}
	}

	// Walk every call, judging each raw argument: callees with
	// summaries by their summaries, summary-less callees by the
	// syntactic sink classification (local bindings only — syntactic
	// .Data into a direct sink is shadowdrop's finding).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pass, call)
		if callee == nil || labelSafeCallee(idx, callee) {
			return true
		}
		calleeSig, _ := callee.Type().(*types.Signature)

		// Resolve the summaries that may run at this site.
		type target struct {
			fn *types.Func
			s  *FuncSummary
		}
		_, isIfaceCall := interfaceMethod(callee)
		var targets []target
		if isIfaceCall {
			for _, impl := range idx.Implementations(callee) {
				if cs := idx.SummaryOf(impl); cs != nil {
					targets = append(targets, target{fn: impl, s: cs})
				}
			}
		} else if cs := idx.SummaryOf(callee); cs != nil {
			targets = append(targets, target{fn: callee, s: cs})
		}

		for argIdx, arg := range call.Args {
			owner, isRaw := ownerOf(arg)
			if !isRaw {
				continue
			}
			_, syntactic := taintedRawData(pass, arg)

			// Interface calls may dispatch outside the universe, so the
			// syntactic sink classification applies alongside candidate
			// summaries; a static callee with a summary is judged by
			// the summary alone.
			if len(targets) == 0 || isIfaceCall {
				if sink, isSink := externalSink(idx, callee); isSink {
					if !syntactic {
						pass.Reportf(arg.Pos(),
							"raw bytes of %s reach %s through a local binding; shadow labels are dropped — route through the jre/instrument API",
							owner, sink)
					}
					continue // the syntactic direct form is shadowdrop's finding
				}
			}
			if calleeSig == nil {
				continue
			}
			j := paramIndexForArg(calleeSig, argIdx)
			if j < 0 {
				continue
			}
			for _, t := range targets {
				if j < len(t.s.Escapes) && t.s.Escapes[j] {
					via := callee.Name()
					if t.fn != callee {
						via = callee.Name() + " (dispatching to " + t.fn.Name() + ")"
					}
					pass.Reportf(arg.Pos(),
						"raw bytes of %s are laundered through %s, which lets them escape into %s with no label movement; shadow labels are dropped — route through the jre/instrument API",
						owner, via, t.s.EscapeSink[j])
					break
				}
			}
		}
		return true
	})
}
