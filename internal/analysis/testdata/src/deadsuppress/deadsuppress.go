// Package deadsuppress seeds //lint:ignore comments in both states for
// the distavet deadsuppress golden test, which runs the shadowdrop +
// deadsuppress pair: a suppression still covering a live finding is
// honored silently, one whose finding no longer fires is itself
// reported, and one naming an analyzer outside the run set is never
// judged.
package deadsuppress

import (
	"io"

	"dista/internal/core/taint"
)

// liveSuppression still excuses a real shadowdrop finding: honored,
// not reported.
func liveSuppression(w io.Writer, b taint.Bytes) {
	//lint:ignore distavet/shadowdrop deliberate drop pinned by this golden
	w.Write(b.Data)
}

// staleSuppression outlived its finding — the escape it once excused
// was refactored into a harmless length read.
func staleSuppression(b taint.Bytes) int {
	//lint:ignore distavet/shadowdrop the sink here was removed long ago // want deadsuppress "matches no diagnostic"
	return len(b.Data)
}

// otherAnalyzer names an analyzer that is not part of this run:
// a partial run proves nothing, so it must not be judged.
func otherAnalyzer(err error) bool {
	//lint:ignore distavet/errcmp wire-frozen comparison audited in PR 4
	return err != nil
}
