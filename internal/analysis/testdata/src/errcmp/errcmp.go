// Package errcmp seeds deliberate sentinel-comparison violations for
// the distavet errcmp analyzer golden test. The go tool never builds
// this tree (it lives under testdata/); distavet's loader does.
package errcmp

import (
	"errors"
	"fmt"
	"io"

	"dista/internal/taintmap"
)

// Package sentinels following the tree's naming convention.
var (
	ErrClosed   = errors.New("closed")
	errInternal = errors.New("internal")
	ErrWrapped  = fmt.Errorf("outer: %w", ErrClosed)
)

// Errand is package-level and error-typed but not sentinel-named, so
// comparisons against it are out of scope.
var Errand error = errors.New("not a sentinel by naming convention")

func bad(err error) int {
	if err == ErrClosed { // want "sentinel error ErrClosed compared with =="
		return 1
	}
	if ErrClosed != err { // want "compared with !="
		return 2
	}
	if err == errInternal { // want "sentinel error errInternal"
		return 3
	}
	if err == ErrWrapped { // want "sentinel error ErrWrapped"
		return 4
	}
	switch err {
	case ErrClosed: // want "switch case"
		return 5
	case nil:
		return 6
	}
	return 0
}

// Cross-package sentinels are in scope too: the overload/budget errors
// arrive wrapped (serverErr re-typing, %w chains), so identity checks
// silently never match.
func badCrossPackage(err error) int {
	if err == taintmap.ErrOverloaded { // want "sentinel error ErrOverloaded compared with =="
		return 1
	}
	if taintmap.ErrBudgetExhausted != err { // want "sentinel error ErrBudgetExhausted compared with !="
		return 2
	}
	switch err {
	case taintmap.ErrOverloaded: // want "switch case"
		return 3
	case taintmap.ErrDeadlineExceeded: // want "switch case"
		return 4
	}
	return 0
}

// badAs aims errors.As at the sentinels themselves. The wire decode
// path re-types the server's overload marker into a fresh %w wrap, so
// As(err, &ErrOverloaded) "matches" every such reply — its target is
// *error, which accepts anything — and assigns the wrap into the
// package sentinel, corrupting every later comparison against it.
func badAs(err error) int {
	if errors.As(err, &taintmap.ErrOverloaded) { // want "matches any error and overwrites ErrOverloaded"
		return 1
	}
	if errors.As(err, &ErrClosed) { // want "overwrites ErrClosed"
		return 2
	}
	return 0
}

// goodAs uses As for what it is for: extracting a concrete typed error
// into a local target.
type codeError struct{ code int }

func (e *codeError) Error() string { return "code" }

func goodAs(err error) int {
	var ce *codeError
	if errors.As(err, &ce) {
		return ce.code
	}
	var plain error
	if errors.As(err, &plain) { // a local *error target is odd but mutates nothing shared
		return 1
	}
	return 0
}

func goodCrossPackage(err error) bool {
	return errors.Is(err, taintmap.ErrOverloaded) ||
		errors.Is(err, taintmap.ErrBudgetExhausted) ||
		errors.Is(err, taintmap.ErrDeadlineExceeded)
}

func good(err error) bool {
	if errors.Is(err, ErrClosed) {
		return true
	}
	if err == io.EOF { // io sentinels are returned unwrapped by contract
		return true
	}
	if errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	if err == nil || nil != err {
		return false
	}
	if err == Errand {
		return true
	}
	var a, b error
	return a == b // comparing two plain error values is fine
}

func suppressed(err error) bool {
	//lint:ignore distavet/errcmp golden test exercises a justified identity check
	return err == ErrClosed
}
