// Package idbits seeds Global-ID bit-layout violations for the
// distavet idbits golden test: a partition-index field wide enough to
// reach the provisional bit, and a sequence field wide enough to reach
// the partition field. The constant names mirror the real layout in
// internal/taintmap/idspace.go — the analyzer keys on the names, so
// any package declaring them is held to the disjointness invariant.
package idbits

const provisionalBit = 1 << 31

const (
	partitionBits  = 5
	partitionShift = 27
	partitionMask  = ((1 << partitionBits) - 1) << partitionShift // want "partition-index mask 0xf8000000 overlaps the provisional bit"
	seqMask        = 1<<28 - 1                                    // want "sequence mask 0xfffffff overlaps the partition-index mask"
)

// The fields are referenced so the package has no unused-constant
// smell; the analyzer cares only about the declarations above.
var _ = [3]uint64{provisionalBit, partitionMask, seqMask}
