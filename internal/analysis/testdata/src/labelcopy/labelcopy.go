// Package labelcopy seeds raw data moves without the paired label
// operation for the distavet labelcopy golden test: copy/append on the
// bare .Data of a tracked value leaves the shadow labels behind unless
// the same function also moves them.
package labelcopy

import (
	"dista/internal/core/taint"
	"dista/internal/instrument"
)

func badCopyOut(dst []byte, b taint.Bytes) {
	copy(dst, b.Data) // want "copy moves the raw .Data of taint.Bytes"
}

func badCopyIn(b taint.Bytes, src []byte) {
	copy(b.Data, src) // want "copy moves the raw .Data"
}

func badAppend(b taint.Bytes) []byte {
	var acc []byte
	acc = append(acc, b.Data...)     // want "append moves the raw .Data"
	acc = append(acc, b.Data[2:]...) // want "append moves the raw .Data"
	return acc
}

func goodPaired(b taint.Bytes) taint.Bytes {
	dst := taint.MakeBytes(b.Len())
	copy(dst.Data, b.Data) // paired with the label move below
	b.CopyLabelsInto(&dst, 0)
	return dst
}

func goodAPI(b taint.Bytes) taint.Bytes {
	dst := taint.MakeBytes(b.Len())
	b.CopyInto(&dst, 0) // data and labels travel together
	return dst
}

func goodUntracked(dst, src []byte) {
	copy(dst, src) // no tracked value involved
}

// A core fast-path helper counts as the paired label operation: the
// assembled bytes leave through a call that carries the label itself.
func goodFastPathPaired(ep *instrument.Endpoint, b taint.Bytes, one taint.Taint) error {
	framed := append([]byte{0x01}, b.Data...) // paired with the uniform send below
	return ep.WriteUniform(framed, one)
}

func suppressed(b taint.Bytes) []byte {
	//lint:ignore distavet/labelcopy checksum input only; the copy never reaches a sink
	return append([]byte(nil), b.Data...)
}
