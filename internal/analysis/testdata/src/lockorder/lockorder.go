// Package lockorder seeds violations of the documented mutex orders
// for the distavet lockorder golden test. The types mirror the shapes
// the analyzer keys on — (type name, field name) pairs node.mu,
// Tree.cmu, shard.mu, Store.growMu, admission.mu, ClusterClient.mu —
// without importing the real packages, whose lock fields are
// unexported. The admission mirror also carries the blocking admit()
// / non-blocking release() method pair the analyzer models.
package lockorder

import "sync"

type Tree struct {
	cmu sync.RWMutex
}

type node struct {
	mu       sync.Mutex
	children map[string]*node
	tree     *Tree
}

type shard struct {
	mu     sync.Mutex
	byBlob map[string]uint32
}

type Store struct {
	shards [4]shard
	growMu sync.Mutex
}

// admission mirrors the server's mutex+cond semaphore: admit() parks
// on the cond var until a slot frees, release() only signals.
type admission struct {
	mu    sync.Mutex
	cond  *sync.Cond
	slots int
}

func (a *admission) admit() {
	a.mu.Lock()
	for a.slots == 0 {
		a.cond.Wait()
	}
	a.slots--
	a.mu.Unlock()
}

func (a *admission) release() {
	a.mu.Lock()
	a.slots++
	a.cond.Signal()
	a.mu.Unlock()
}

// ClusterClient mirrors the membership guard; the request path reads
// an atomic routing table and never touches mu.
type ClusterClient struct {
	mu    sync.Mutex
	epoch uint64
}

func badTwoNodes(a, b *node) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want "at most one node mutex"
	b.mu.Unlock()
}

func badCacheUnderNode(n *node) {
	n.mu.Lock()
	n.tree.cmu.RLock() // want "no node mutex is held"
	n.tree.cmu.RUnlock()
	n.mu.Unlock()
}

func badShardUnderGrow(s *Store) {
	s.growMu.Lock()
	s.shards[0].mu.Lock() // want "shard locks come before growMu"
	s.shards[0].mu.Unlock()
	s.growMu.Unlock()
}

// badLoopNodes models walking a chain hand-over-hand without
// releasing: the second symbolic acquisition still trips the rule via
// loop-carried held state.
func badLoopNodes(ns []*node) {
	for _, n := range ns {
		n.mu.Lock() // want "at most one node mutex"
	}
}

func goodHandOver(a, b *node) {
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Lock()
	b.mu.Unlock()
}

func goodDocumentedOrder(s *Store) {
	// RegisterBlob's order: shard lock first, growMu inside it.
	s.shards[1].mu.Lock()
	s.growMu.Lock()
	s.growMu.Unlock()
	s.shards[1].mu.Unlock()
}

func goodResetPattern(s *Store) {
	// Reset's order: every shard, then growMu; shard self-nesting is
	// allowed because the ranks are disjoint by construction.
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	s.growMu.Lock()
	s.growMu.Unlock()
	for i := range s.shards {
		s.shards[i].mu.Unlock()
	}
}

func goodBranches(a *node, t *Tree, cond bool) {
	if cond {
		a.mu.Lock()
		a.mu.Unlock()
	}
	t.cmu.RLock() // the branch released its node mutex on every path
	t.cmu.RUnlock()
}

func goodCacheThenNode(n *node, t *Tree) {
	// Only the inverse nesting is forbidden; the combine path reads
	// the cache first, then touches nodes.
	t.cmu.RLock()
	t.cmu.RUnlock()
	n.mu.Lock()
	n.mu.Unlock()
}

func goodClosure(a *node) {
	a.mu.Lock()
	defer a.mu.Unlock()
	f := func(b *node) {
		// Runs later on its own stack; fresh held set.
		b.mu.Lock()
		b.mu.Unlock()
	}
	f(a)
}

// badAdmitUnderShard calls the blocking admit() with a shard lock
// held: every writer to that shard now waits behind the admission
// queue.
func badAdmitUnderShard(s *Store, a *admission) {
	s.shards[0].mu.Lock()
	a.admit() // want "blocks on admission.mu while shard.mu is held"
	s.shards[0].mu.Unlock()
	a.release()
}

// badAdmissionUnderNode takes the semaphore mutex directly under a
// node mutex — same inversion without the method sugar.
func badAdmissionUnderNode(n *node, a *admission) {
	n.mu.Lock()
	a.mu.Lock() // want "admission.mu acquired while node.mu is held"
	a.mu.Unlock()
	n.mu.Unlock()
}

// badLockUnderCluster nests a shard lock under the membership guard,
// which is a leaf.
func badLockUnderCluster(c *ClusterClient, s *Store) {
	c.mu.Lock()
	s.shards[2].mu.Lock() // want "shard.mu acquired while ClusterClient.mu is held"
	s.shards[2].mu.Unlock()
	c.mu.Unlock()
}

// goodAdmitFirst is the documented shape: admit before any lock,
// release after every lock is gone.
func goodAdmitFirst(s *Store, a *admission) {
	a.admit()
	s.shards[0].mu.Lock()
	s.shards[0].mu.Unlock()
	a.release()
}

// goodReleaseUnderLock: release() only signals under a short critical
// section of its own and is safe (and common) with locks held.
func goodReleaseUnderLock(s *Store, a *admission) {
	a.admit()
	s.shards[1].mu.Lock()
	a.release()
	s.shards[1].mu.Unlock()
}

// goodClusterUnderShard: taking the leaf under another lock is fine —
// only acquisitions beneath it are forbidden.
func goodClusterUnderShard(c *ClusterClient, s *Store) {
	s.shards[3].mu.Lock()
	c.mu.Lock()
	c.epoch++
	c.mu.Unlock()
	s.shards[3].mu.Unlock()
}

func suppressed(a, b *node) {
	a.mu.Lock()
	//lint:ignore distavet/lockorder golden test: documented rank-ordered double lock
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}
