// Package lockorder seeds violations of the documented mutex orders
// for the distavet lockorder golden test. The types mirror the shapes
// the analyzer keys on — (type name, field name) pairs node.mu,
// Tree.cmu, shard.mu, Store.growMu — without importing the real
// packages, whose lock fields are unexported.
package lockorder

import "sync"

type Tree struct {
	cmu sync.RWMutex
}

type node struct {
	mu       sync.Mutex
	children map[string]*node
	tree     *Tree
}

type shard struct {
	mu     sync.Mutex
	byBlob map[string]uint32
}

type Store struct {
	shards [4]shard
	growMu sync.Mutex
}

func badTwoNodes(a, b *node) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want "at most one node mutex"
	b.mu.Unlock()
}

func badCacheUnderNode(n *node) {
	n.mu.Lock()
	n.tree.cmu.RLock() // want "no node mutex is held"
	n.tree.cmu.RUnlock()
	n.mu.Unlock()
}

func badShardUnderGrow(s *Store) {
	s.growMu.Lock()
	s.shards[0].mu.Lock() // want "shard locks come before growMu"
	s.shards[0].mu.Unlock()
	s.growMu.Unlock()
}

// badLoopNodes models walking a chain hand-over-hand without
// releasing: the second symbolic acquisition still trips the rule via
// loop-carried held state.
func badLoopNodes(ns []*node) {
	for _, n := range ns {
		n.mu.Lock() // want "at most one node mutex"
	}
}

func goodHandOver(a, b *node) {
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Lock()
	b.mu.Unlock()
}

func goodDocumentedOrder(s *Store) {
	// RegisterBlob's order: shard lock first, growMu inside it.
	s.shards[1].mu.Lock()
	s.growMu.Lock()
	s.growMu.Unlock()
	s.shards[1].mu.Unlock()
}

func goodResetPattern(s *Store) {
	// Reset's order: every shard, then growMu; shard self-nesting is
	// allowed because the ranks are disjoint by construction.
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	s.growMu.Lock()
	s.growMu.Unlock()
	for i := range s.shards {
		s.shards[i].mu.Unlock()
	}
}

func goodBranches(a *node, t *Tree, cond bool) {
	if cond {
		a.mu.Lock()
		a.mu.Unlock()
	}
	t.cmu.RLock() // the branch released its node mutex on every path
	t.cmu.RUnlock()
}

func goodCacheThenNode(n *node, t *Tree) {
	// Only the inverse nesting is forbidden; the combine path reads
	// the cache first, then touches nodes.
	t.cmu.RLock()
	t.cmu.RUnlock()
	n.mu.Lock()
	n.mu.Unlock()
}

func goodClosure(a *node) {
	a.mu.Lock()
	defer a.mu.Unlock()
	f := func(b *node) {
		// Runs later on its own stack; fresh held set.
		b.mu.Lock()
		b.mu.Unlock()
	}
	f(a)
}

func suppressed(a, b *node) {
	a.mu.Lock()
	//lint:ignore distavet/lockorder golden test: documented rank-ordered double lock
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}
