// Package mustcheck seeds discarded-result violations on the real
// internal/taintmap API for the distavet mustcheck golden test. The
// clients are never constructed — the code only has to type-check.
package mustcheck

import (
	"dista/internal/core/taint"
	"dista/internal/taintmap"
)

func bad(c *taintmap.RemoteClient, r *taintmap.ResilientClient, s *taintmap.Store, ts []taint.Taint) {
	c.Register(taint.Taint{})         // want "result of Register discarded"
	c.LookupBatch([]uint32{1, 2})     // want "result of LookupBatch discarded"
	s.RegisterBlob([]byte("blob"))    // want "result of RegisterBlob discarded"
	go r.RegisterBatch(ts)            // want "result of RegisterBatch discarded"
	defer c.Lookup(7)                 // want "result of Lookup discarded"
	_, _ = c.Register(taint.Taint{})  // want "result of Register assigned to blanks"
	_, _ = r.LookupBatch([]uint32{3}) // want "result of LookupBatch assigned to blanks"
}

// The cluster client is part of the same must-check surface: a dropped
// Register loses the Global ID the routing minted, a dropped Lookup
// hides which replica (if any) resolved the id.
func badCluster(cc *taintmap.ClusterClient, ts []taint.Taint) {
	cc.Register(taint.Taint{})         // want "result of Register discarded"
	cc.Lookup(9)                       // want "result of Lookup discarded"
	cc.RegisterBatch(ts)               // want "result of RegisterBatch discarded"
	go cc.LookupBatch([]uint32{4})     // want "result of LookupBatch discarded"
	_, _ = cc.Register(taint.Taint{})  // want "result of Register assigned to blanks"
	_, _ = cc.LookupBatch([]uint32{5}) // want "result of LookupBatch assigned to blanks"
}

// The retry budget's verdict is part of the surface: a discarded
// TryTake charges the bucket AND ignores the denial, which is exactly
// the retry storm the budget exists to prevent.
func badBudget(b *taintmap.Budget) {
	b.TryTake(1)       // want "result of TryTake discarded"
	go b.TryTake(1)    // want "result of TryTake discarded"
	_ = b.TryTake(0.5) // want "result of TryTake assigned to blanks"
}

func goodBudget(b *taintmap.Budget) bool {
	if !b.TryTake(1) {
		return false
	}
	ok := b.TryTake(1)
	return ok
}

func goodCluster(cc *taintmap.ClusterClient) error {
	id, err := cc.Register(taint.Taint{})
	if err != nil {
		return err
	}
	if _, err := cc.Lookup(id); err != nil {
		return err
	}
	if _, err := cc.Refresh(); err != nil { // membership ops are not Register*/Lookup*
		return err
	}
	return cc.Close()
}

func good(c *taintmap.RemoteClient, s *taintmap.Store) error {
	id, err := c.Register(taint.Taint{})
	if err != nil {
		return err
	}
	_ = id
	if _, err := c.Lookup(id); err != nil {
		return err
	}
	blob := s.RegisterBlob([]byte("kept"))
	_ = blob
	s.Reset()        // not part of the must-check surface
	return c.Close() // neither is Close
}

func suppressed(c *taintmap.RemoteClient) {
	//lint:ignore distavet/mustcheck warm-up call; the memo is the result
	c.Lookup(1)
}

// lookalike has the right name but the wrong package, so it is out of
// scope: mustcheck keys on the taintmap package, not the method name
// alone.
type lookalike struct{}

func (lookalike) Register(t taint.Taint) (uint32, error) { return 0, nil }

func outOfScope(l lookalike) {
	l.Register(taint.Taint{})
}
