// Package shadowdrop seeds label-dropping escapes of raw tainted
// storage for the distavet shadowdrop golden test: the bare .Data of a
// taint.Bytes (or jni.DirectBuffer) handed to a write-shaped I/O call
// loses its shadow labels.
package shadowdrop

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"dista/internal/core/taint"
	"dista/internal/instrument"
	"dista/internal/jni"
)

func bad(w io.Writer, bw *bytes.Buffer, b taint.Bytes, db *jni.DirectBuffer) {
	w.Write(b.Data)                        // want "raw .Data of taint.Bytes escapes into Writer.Write"
	bw.Write(b.Data[1:3])                  // want "escapes into Buffer.Write"
	os.WriteFile("/tmp/x", b.Data, 0o644)  // want "escapes into os.WriteFile"
	fmt.Fprintf(w, "payload=%s\n", b.Data) // want "escapes into fmt.Fprintf"
	w.Write(db.Data)                       // want "raw .Data of jni.DirectBuffer"
	taint.WrapBytes(b.Data)                // want "untainted re-wrap"
}

func good(w io.Writer, b taint.Bytes) {
	n := len(b.Data)   // reads never drop labels
	_ = string(b.Data) // nor conversions
	_ = b.Data[0]      // nor indexing
	_ = binary.BigEndian.Uint32(b.Data)
	_ = taint.WrapBytes([]byte("fresh")) // wrapping untracked storage is the intended use
	plain := make([]byte, n)
	w.Write(plain) // untracked slices may go anywhere
}

func suppressed(b taint.Bytes) error {
	//lint:ignore distavet/shadowdrop this sink's file format has no label section
	return os.WriteFile("/tmp/snapshot", b.Data, 0o644)
}

// passthrough helpers from the core layers are the sanctioned clean
// path: they declare the payload untainted on the wire, so raw .Data
// handed to them is by design, not a drop.
func cleanPath(ep *instrument.Endpoint, b taint.Bytes) error {
	if !b.Clean() {
		return nil
	}
	return ep.WritePassthrough(b.Data) // allowlisted: core passthrough helper
}

// The uniform/sparse tier helpers are fast paths too: the label (or
// the dirty-range table) travels in the call right next to the raw
// bytes, so nothing is dropped.
func uniformPath(ep *instrument.Endpoint, b taint.Bytes) error {
	one, ok := b.Uniform()
	if !ok {
		return nil
	}
	return ep.WriteUniform(b.Data, one) // allowlisted: core uniform helper
}

// lookalike is NOT in a core package, so its Passthrough/Uniform names
// earn no exemption.
type lookalike struct{}

func (lookalike) WritePassthrough(b []byte) error { return nil }

func (lookalike) WriteUniform(b []byte) error { return nil }

func impostor(l lookalike, b taint.Bytes) error {
	return l.WritePassthrough(b.Data) // want "raw .Data of taint.Bytes escapes into lookalike.WritePassthrough"
}

func impostorUniform(l lookalike, b taint.Bytes) error {
	return l.WriteUniform(b.Data) // want "raw .Data of taint.Bytes escapes into lookalike.WriteUniform"
}
