// Package suppress exercises the //lint:ignore machinery itself: a
// well-formed suppression that must silence its finding, a malformed
// one (no reason) that must not — and must be reported — and a
// trailing same-line suppression. Asserted directly by
// TestSuppressions rather than through want comments, since a line
// comment cannot carry a second comment.
package suppress

import "errors"

var ErrX = errors.New("x")

func honored(err error) bool {
	//lint:ignore distavet/errcmp identity check is the point of this helper
	return err == ErrX
}

func sameLine(err error) bool {
	return err == ErrX //lint:ignore distavet/errcmp trailing-form suppression
}

func malformed(err error) bool {
	//lint:ignore distavet/errcmp
	return err == ErrX
}
