// Package taintflow seeds interprocedural label drops for the distavet
// taintflow golden test: raw tracked bytes that reach write-shaped I/O
// through an intermediate helper or a local binding — the two escape
// shapes the syntactic shadowdrop provably cannot see, because no
// .Data selection appears at any sink argument.
package taintflow

import (
	"io"

	"dista/internal/core/taint"
	"dista/internal/instrument"
)

// emit is the laundering helper: its parameter escapes into the
// io.Writer, but emit itself never touches a .Data selection, and the
// call below hands it one without being a sink name — shadowdrop sees
// nothing at either site.
func emit(w io.Writer, p []byte) {
	w.Write(p)
}

// relay adds a second hop; the summary chains through it.
func relay(w io.Writer, p []byte) {
	emit(w, p)
}

func launder(w io.Writer, b taint.Bytes) {
	emit(w, b.Data) // want "laundered through emit"
}

func launderTwoHops(w io.Writer, b taint.Bytes) {
	relay(w, b.Data) // want "laundered through relay"
}

// localEscape hides the .Data selection behind a local binding: the
// sink argument is a plain identifier, invisible to shadowdrop.
func localEscape(w io.Writer, b taint.Bytes) {
	d := b.Data
	w.Write(d) // want "reach Writer.Write through a local binding"
}

// rawView returns the raw storage of its argument; callers receive
// label-less tracked bytes (ReturnsRaw in the summary).
func rawView(b taint.Bytes) []byte {
	return b.Data
}

func escapeViaReturn(w io.Writer, b taint.Bytes) {
	w.Write(rawView(b)) // want "tracked bytes returned by rawView"
}

// consume only reads its parameter: handing it raw bytes is fine.
func consume(p []byte) int { return len(p) }

func goodHelper(b taint.Bytes) int {
	return consume(b.Data)
}

// goodViaUniform forwards the bytes together with their label into the
// core uniform fast path; its summary is label-paired, not escaping.
func goodViaUniform(ep *instrument.Endpoint, p []byte, one taint.Taint) error {
	return ep.WriteUniform(p, one)
}

func goodUniformCaller(ep *instrument.Endpoint, b taint.Bytes) error {
	one, ok := b.Uniform()
	if !ok {
		return nil
	}
	return goodViaUniform(ep, b.Data, one)
}

func goodPlainBytes(w io.Writer, n int) {
	plain := make([]byte, n)
	emit(w, plain) // untracked storage may go anywhere
}

func suppressed(w io.Writer, b taint.Bytes) {
	//lint:ignore distavet/taintflow checksum mirror; the writer is a sealed digest
	emit(w, b.Data)
}
