// Package taintflowiface pins interface-method resolution in the
// summary engine: a call through an interface fans out to every
// in-universe implementation (types.Implements), so an escape inside
// one concrete emitter surfaces at the abstract call site — while an
// interface whose only implementations are clean stays silent.
package taintflowiface

import (
	"io"

	"dista/internal/core/taint"
)

// emitter is satisfied by both implementations below; Emit is not a
// write-verb name, so nothing here is a syntactic sink.
type emitter interface {
	Emit(p []byte)
}

// fileEmitter leaks its payload into the writer.
type fileEmitter struct {
	w io.Writer
}

func (f *fileEmitter) Emit(p []byte) {
	f.w.Write(p)
}

// countEmitter only measures it.
type countEmitter struct {
	n int
}

func (c *countEmitter) Emit(p []byte) {
	c.n += len(p)
}

func badDispatch(e emitter, b taint.Bytes) {
	e.Emit(b.Data) // want "dispatching to Emit"
}

// sizer's implementations are all clean: dispatch over them must not
// invent an escape.
type sizer interface {
	Size(p []byte) int
}

type byteSizer struct{}

func (byteSizer) Size(p []byte) int { return len(p) }

func goodDispatch(s sizer, b taint.Bytes) int {
	return s.Size(b.Data)
}
