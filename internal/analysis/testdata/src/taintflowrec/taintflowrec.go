// Package taintflowrec pins the summary fixpoint on mutual recursion:
// pingEscape/pongEscape call each other and only the base case sinks
// the bytes, so the escape fact must survive an SCC iteration — and
// the clean recursive pair must converge without inventing one.
package taintflowrec

import (
	"io"

	"dista/internal/core/taint"
)

// pingEscape / pongEscape recurse into each other; the bytes reach
// the writer only in pongEscape's base case. A single bottom-up pass
// without a fixpoint would miss the cycle-carried fact.
func pingEscape(w io.Writer, p []byte, depth int) {
	if depth <= 0 {
		return
	}
	pongEscape(w, p, depth-1)
}

func pongEscape(w io.Writer, p []byte, depth int) {
	if depth == 0 {
		w.Write(p)
		return
	}
	pingEscape(w, p, depth-1)
}

func badRecursive(w io.Writer, b taint.Bytes) {
	pingEscape(w, b.Data, 4) // want "laundered through pingEscape"
}

// pingClean / pongClean recurse the same way but never sink: the
// fixpoint must terminate with a clean summary, not loop or smear an
// escape onto them.
func pingClean(p []byte, depth int) int {
	if depth <= 0 {
		return 0
	}
	return pongClean(p, depth-1)
}

func pongClean(p []byte, depth int) int {
	if depth == 0 {
		return len(p)
	}
	return pingClean(p, depth-1)
}

func goodRecursive(b taint.Bytes) int {
	return pingClean(b.Data, 4)
}

// selfEscape is the one-node SCC: direct self-recursion ending in a
// sink.
func selfEscape(w io.Writer, p []byte, depth int) {
	if depth == 0 {
		w.Write(p)
		return
	}
	selfEscape(w, p, depth-1)
}

func badSelfRecursive(w io.Writer, b taint.Bytes) {
	selfEscape(w, b.Data, 2) // want "laundered through selfEscape"
}
