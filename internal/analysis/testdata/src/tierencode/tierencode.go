// Package tierencode seeds violations of the tier-lattice soundness
// convention for the distavet tierencode golden test: raw tracked
// bytes reaching a Passthrough-named helper without a cleanliness
// check in the same function could put tainted data on the wire with
// its labels declared away.
package tierencode

import (
	"dista/internal/core/taint"
	"dista/internal/instrument"
)

// sendPassthroughRaw is a local passthrough-shaped helper: the name is
// what makes it a Rule B sink, core package or not.
func sendPassthroughRaw(raw []byte) { _ = raw }

func badUngated(ep *instrument.Endpoint, b taint.Bytes) error {
	return ep.WritePassthrough(b.Data) // want "no cleanliness check"
}

func badLocalHelper(b taint.Bytes) {
	sendPassthroughRaw(b.Data) // want "reaches passthrough helper sendPassthroughRaw"
}

// notTracked has a Clean method, but not on a tracked value: it must
// not discharge the gating obligation.
type notTracked struct{}

func (notTracked) Clean() bool { return true }

func badFakeGate(ep *instrument.Endpoint, nt notTracked, b taint.Bytes) error {
	if !nt.Clean() {
		return nil
	}
	return ep.WritePassthrough(b.Data) // want "no cleanliness check"
}

func goodCleanGated(ep *instrument.Endpoint, b taint.Bytes) error {
	if !b.Clean() {
		return nil
	}
	return ep.WritePassthrough(b.Data)
}

func goodStatsGated(ep *instrument.Endpoint, b taint.Bytes) error {
	if st, exact := b.Stats(8); !exact || st.DirtyBytes > 0 {
		return nil
	}
	return ep.WritePassthrough(b.Data)
}

// goodOwnPassthrough carries the marker itself, so the obligation is
// its callers': a helper may be a thin passthrough shim.
func goodOwnPassthrough(ep *instrument.Endpoint, b taint.Bytes) error {
	return ep.WritePassthrough(b.Data)
}

func goodPlainBytes(ep *instrument.Endpoint, raw []byte) error {
	// Untracked slices carry no labels to shed.
	return ep.WritePassthrough(raw)
}

func suppressed(ep *instrument.Endpoint, b taint.Bytes) error {
	//lint:ignore distavet/tierencode caller zeroed the buffer two lines up; checked by TestXYZ
	return ep.WritePassthrough(b.Data)
}
