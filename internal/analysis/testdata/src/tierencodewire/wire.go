// Package wire seeds Rule A violations for the distavet tierencode
// golden test: the package presents itself as a wire codec (by name),
// so every exported builder that takes a raw payload must carry its
// labels in the signature or be Passthrough-named. This is the
// lookalike proof too — the rule binds any "wire" package, not just
// the real internal/core/wire.
package wire

type Run struct {
	N  int
	ID uint32
}

type DirtyRange struct {
	Off, Len int
	ID       uint32
}

func AppendGroupsFrame(dst, data []byte, runs []Run) []byte { return dst }

func AppendSparseFrame(dst, data []byte, ranges []DirtyRange) []byte { return dst }

func EncodeUniform(data []byte, id uint32) []byte { return data }

func EncodeWithIDs(data []byte, ids []uint32) []byte { return data }

func AppendPassthroughFrame(dst, data []byte) []byte { return append(dst, data...) }

// AppendFrameHeader never sees the payload, only its length: exempt.
func AppendFrameHeader(dst []byte, tag byte, n int) []byte { return dst }

func AppendBareFrame(dst, data []byte) []byte { return dst } // want "no label-carrying parameter"

func EncodeNaked(data []byte) []byte { return data } // want "wire encoder EncodeNaked takes a raw payload"

// unexported helpers are the callees of checked exported builders, not
// the API surface the rule guards.
func appendBody(dst, data []byte) []byte { return append(dst, data...) }
