package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// TierEncode machine-checks the tier-lattice soundness convention of
// the adaptive wire format (DESIGN.md §9): no tier's encoder may be
// able to drop a label. Two rules, both structural so they hold for
// every tier added later:
//
// Rule A — encoder signatures. In a wire codec package (import path
// ending in internal/core/wire, or any package named "wire"), every
// exported Append*/Encode* function that takes a raw payload parameter
// named "data" must either accept a label-carrying parameter — a slice
// of Run or DirtyRange, a []uint32 of Global IDs, or a single uint32
// Global ID — or declare itself label-free by carrying "Passthrough"
// in its name. An encoder that takes bytes but has nowhere to put
// their labels is a label drop waiting for a call site.
//
// Rule B — clean gating. Everywhere (core packages included), handing
// the raw .Data of a tracked value to a passthrough emission is only
// sound if the enclosing function established that the bytes are
// label-free: it must contain a cleanliness classification call
// (Clean / Uniform / Stats / ForEachDirtyRun on a tracked value, or
// wire.RunsAllUntainted), or itself declare the payload clean so the
// obligation moves to its callers. Since PR 9 both sides of the rule
// are summary-driven (DESIGN.md §11), not purely name-driven: a
// callee is a passthrough sink when it is Passthrough-named OR its
// summary says the parameter receiving the bytes DeclaresClean —
// wrappers around WritePassthrough no longer launder the obligation
// away — and the enclosing function is exempt when Passthrough-named
// OR when its own summary declares a payload parameter clean.
// Uniform- and Sparse-named helpers are exempt from Rule B: their
// signatures carry the labels, which is exactly what Rule A verifies.
var TierEncode = &Analyzer{
	Name: "tierencode",
	Doc: "wire-tier encoders must carry labels in their signature or be " +
		"Passthrough-named; raw .Data into a Passthrough helper needs a " +
		"cleanliness check in the same function",
	Run: runTierEncode,
}

func runTierEncode(pass *Pass) {
	if isWireCodec(pass) {
		checkEncoderSignatures(pass)
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkPassthroughGating(pass, fd)
			}
		}
	}
}

// isWireCodec reports whether the package under analysis is a wire
// codec: the real internal/core/wire, or any package presenting itself
// as one by package name.
func isWireCodec(pass *Pass) bool {
	if pathHasSuffix(strings.TrimSuffix(pass.Path, "_test"), "internal/core/wire") {
		return true
	}
	return pass.Pkg != nil && pass.Pkg.Name() == "wire"
}

// checkEncoderSignatures enforces Rule A over the package's exported
// frame/packet builders.
func checkEncoderSignatures(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || !fd.Name.IsExported() {
				continue
			}
			name := fd.Name.Name
			if !strings.HasPrefix(name, "Append") && !strings.HasPrefix(name, "Encode") {
				continue
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			sig := fn.Type().(*types.Signature)
			if !takesRawPayload(sig) {
				continue // length/header helpers never see the bytes
			}
			if strings.Contains(name, "Passthrough") || carriesLabels(sig) {
				continue
			}
			pass.Reportf(fd.Name.Pos(),
				"wire encoder %s takes a raw payload but no label-carrying parameter "+
					"([]Run, []DirtyRange or Global IDs); an encoder that cannot carry "+
					"labels must be Passthrough-named and Clean()-gated at its callers",
				name)
		}
	}
}

// takesRawPayload reports whether the signature has a []byte parameter
// named "data" — the payload convention every wire builder follows
// (the leading "dst" append target does not count).
func takesRawPayload(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if p.Name() != "data" {
			continue
		}
		if s, ok := p.Type().Underlying().(*types.Slice); ok {
			if b, ok := s.Elem().Underlying().(*types.Basic); ok && b.Kind() == types.Byte {
				return true
			}
		}
	}
	return false
}

// cleanlinessOps are the tracked-value methods that classify a
// buffer's labels; any one of them in the enclosing function
// discharges Rule B's gating obligation.
var cleanlinessOps = map[string]bool{
	"Clean":           true,
	"Uniform":         true,
	"Stats":           true,
	"ForEachDirtyRun": true,
}

// checkPassthroughGating enforces Rule B within one function.
func checkPassthroughGating(pass *Pass, fd *ast.FuncDecl) {
	if strings.Contains(fd.Name.Name, "Passthrough") {
		return // the obligation is the callers'
	}
	if self, _ := pass.Info.Defs[fd.Name].(*types.Func); self != nil && pass.Index != nil {
		if s := pass.Index.SummaryOf(self); s != nil && s.AnyDeclaresClean() {
			// The summary form of the same exemption: this function
			// forwards a payload parameter into a passthrough, so the
			// cleanliness obligation sits with its callers.
			return
		}
	}
	type sink struct {
		pos    ast.Expr
		callee string
		owner  string
	}
	var sinks []sink
	gated := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil {
			return true
		}
		name := fn.Name()
		if name == "RunsAllUntainted" || (cleanlinessOps[name] && labelOpReceiver(fn)) {
			gated = true
			return true
		}
		var cs *FuncSummary
		if pass.Index != nil {
			cs = pass.Index.SummaryOf(fn)
		}
		sig, _ := fn.Type().(*types.Signature)
		for argIdx, arg := range call.Args {
			owner, ok := taintedRawData(pass, arg)
			if !ok {
				continue
			}
			passthrough := strings.Contains(name, "Passthrough")
			if !passthrough && cs != nil && sig != nil {
				if j := paramIndexForArg(sig, argIdx); j >= 0 && j < len(cs.DeclaresClean) && cs.DeclaresClean[j] {
					passthrough = true
				}
			}
			if passthrough {
				sinks = append(sinks, sink{pos: arg, callee: name, owner: owner})
			}
		}
		return true
	})
	if gated {
		return
	}
	for _, s := range sinks {
		pass.Reportf(s.pos.Pos(),
			"raw .Data of %s reaches passthrough helper %s with no cleanliness check "+
				"(Clean/Uniform/Stats/ForEachDirtyRun/RunsAllUntainted) in this function; "+
				"a tainted buffer here would shed its labels on the wire",
			s.owner, s.callee)
	}
}
