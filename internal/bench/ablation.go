package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"dista/internal/core/taint"
	"dista/internal/core/tracker"
	"dista/internal/core/wire"
	"dista/internal/instrument"
	"dista/internal/netsim"
	"dista/internal/taintmap"
)

// Ablations quantify the design choices DESIGN.md calls out:
//
//   - A1 caching: the Taint Map client caches (Fig. 9 step ② plus the
//     receiver-side memo) against an uncached baseline;
//   - A2 wire format: the fixed-width Global ID next to each byte
//     against the naive alternative of shipping the serialized taint
//     blob per byte (§III-D-2's motivating bandwidth argument).

// AblationResult captures one cached/uncached timing pair.
type AblationResult struct {
	Cached   time.Duration
	Uncached time.Duration
}

// streamExchange pushes size tainted bytes across one connection using
// the given Taint Map clients, returning the elapsed time.
func streamExchange(size int, mkClient func(*taintmap.Store, *taint.Tree) taintmap.Client) (time.Duration, error) {
	net := netsim.New()
	store := taintmap.NewStore()
	mk := func(name string) *tracker.Agent {
		a := tracker.New(name, tracker.ModeDista)
		return tracker.New(name, tracker.ModeDista,
			tracker.WithTaintMap(mkClient(store, a.Tree())))
	}
	aAgent, bAgent := mk("a"), mk("b")
	ca, cb := net.Pipe()
	sender := instrument.NewEndpoint(aAgent, ca)
	receiver := instrument.NewEndpoint(bAgent, cb)

	// Alternate two taints per byte so the endpoint's adjacent-byte
	// run memo cannot absorb the cost: every byte forces a client call,
	// isolating the cached-vs-uncached difference.
	payload := taint.MakeBytes(size)
	t1 := aAgent.Source("s", "abl1")
	t2 := aAgent.Source("s", "abl2")
	for i := 0; i < payload.Len(); i++ {
		if i%2 == 0 {
			payload.SetLabel(i, t1)
		} else {
			payload.SetLabel(i, t2)
		}
	}

	var (
		wg      sync.WaitGroup
		recvErr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := taint.MakeBytes(4096)
		got := 0
		for got < size {
			n, err := receiver.Read(&buf)
			if err != nil {
				recvErr = err
				return
			}
			got += n
		}
	}()

	start := time.Now()
	err := sender.Write(payload)
	wg.Wait()
	elapsed := time.Since(start)
	if err == nil {
		err = recvErr
	}
	return elapsed, err
}

// MeasureCachingAblation times the tainted stream exchange with the
// production (cached) client and the ablation (uncached) client.
func MeasureCachingAblation(size, iters int) (AblationResult, error) {
	var res AblationResult
	for i := 0; i < iters; i++ {
		d, err := streamExchange(size, func(s *taintmap.Store, tr *taint.Tree) taintmap.Client {
			return taintmap.NewLocalClient(s, tr)
		})
		if err != nil {
			return res, err
		}
		res.Cached += d
		d, err = streamExchange(size, func(s *taintmap.Store, tr *taint.Tree) taintmap.Client {
			return taintmap.NewUncachedClient(s, tr)
		})
		if err != nil {
			return res, err
		}
		res.Uncached += d
	}
	res.Cached /= time.Duration(iters)
	res.Uncached /= time.Duration(iters)
	return res, nil
}

// WireFormatComparison quantifies §III-D-2's bandwidth argument: wire
// bytes for n data bytes under (a) the Global ID design and (b) the
// naive serialize-the-taint-per-byte alternative.
type WireFormatComparison struct {
	DataBytes      int
	GlobalIDWire   int // 5 bytes per data byte
	InlineBlobWire int // 1 + 2 + len(blob) per data byte
	BlobLen        int
}

// CompareWireFormats computes the comparison for n bytes all tainted by
// one realistic taint (descriptor-style tag value).
func CompareWireFormats(n int) (WireFormatComparison, error) {
	tree := taint.NewTree()
	t := tree.NewSource(
		"org.apache.zookeeper.server.quorum.FastLeaderElection$Notification.vote",
		"192.168.10.21:28841",
	)
	blob, err := taint.MarshalTaint(t)
	if err != nil {
		return WireFormatComparison{}, err
	}
	return WireFormatComparison{
		DataBytes:      n,
		GlobalIDWire:   wire.WireLen(n),
		InlineBlobWire: n * (1 + 2 + len(blob)),
		BlobLen:        len(blob),
	}, nil
}

// WriteAblations prints both ablations.
func WriteAblations(w io.Writer, size, iters int) error {
	res, err := MeasureCachingAblation(size, iters)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "ABLATION A1: TAINT MAP CLIENT CACHING (%d tainted bytes)\n", size)
	fmt.Fprintf(w, "  cached client:   %s\n", res.Cached)
	fmt.Fprintf(w, "  uncached client: %s (%.2fx)\n\n", res.Uncached, Overhead(res.Uncached, res.Cached))

	cmp, err := CompareWireFormats(size)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "ABLATION A2: WIRE FORMAT (%d data bytes, %d-byte serialized taint)\n", cmp.DataBytes, cmp.BlobLen)
	fmt.Fprintf(w, "  Global ID design: %10d wire bytes (%.2fx data)\n",
		cmp.GlobalIDWire, float64(cmp.GlobalIDWire)/float64(cmp.DataBytes))
	fmt.Fprintf(w, "  inline taint blob:%10d wire bytes (%.2fx data)\n",
		cmp.InlineBlobWire, float64(cmp.InlineBlobWire)/float64(cmp.DataBytes))
	return nil
}
