package bench

import (
	"bytes"
	"strings"
	"testing"

	"dista/internal/core/wire"
)

func TestCachingAblationShape(t *testing.T) {
	res, err := MeasureCachingAblation(64<<10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached <= 0 || res.Uncached <= 0 {
		t.Fatalf("result = %+v", res)
	}
	// The cached client resolves each taint once; the uncached one
	// marshals and contacts the store per byte — it must be slower.
	if res.Uncached <= res.Cached {
		t.Fatalf("uncached (%v) must be slower than cached (%v)", res.Uncached, res.Cached)
	}
}

func TestWireFormatComparison(t *testing.T) {
	cmp, err := CompareWireFormats(10_000)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.GlobalIDWire != wire.WireLen(10_000) {
		t.Fatalf("global id wire = %d", cmp.GlobalIDWire)
	}
	// §III-D-2: "The serialized bytes array can cause far more than
	// [the taint's length in] bandwidth overhead" — the blob design must
	// be at least an order of magnitude worse than the 5x design.
	if cmp.InlineBlobWire < 10*cmp.GlobalIDWire {
		t.Fatalf("inline blob %d not >> global id %d", cmp.InlineBlobWire, cmp.GlobalIDWire)
	}
	if cmp.BlobLen < 50 {
		t.Fatalf("unrealistically small taint blob: %d", cmp.BlobLen)
	}
}

func TestWriteAblations(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAblations(&buf, 16<<10, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"ABLATION A1", "ABLATION A2", "Global ID design", "inline taint blob"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestMemoryOverheadShape(t *testing.T) {
	res := MeasureMemoryOverhead(16, 64<<10)
	if res.PlainHeap == 0 {
		t.Skip("heap measurement too noisy on this run")
	}
	// Shadow arrays cost real memory: tainted regimes must exceed the
	// plain baseline, and interning must keep the uniform regime from
	// exploding (one shared node, not one per byte).
	if res.UniformHeap <= res.PlainHeap {
		t.Fatalf("uniform taint heap %d not above plain %d", res.UniformHeap, res.PlainHeap)
	}
	if res.PerByteHeap < res.UniformHeap {
		t.Fatalf("per-64B taints (%d) should cost at least the uniform regime (%d)", res.PerByteHeap, res.UniformHeap)
	}
	if res.TreeNodes == 0 {
		t.Fatal("per-byte regime built no tree nodes")
	}
	// The shadow-array overhead factor stays within an order of
	// magnitude of Phosphor's published 1x-8x band (a taint.Taint is one
	// pointer per byte: 8x data on 64-bit, plus slice headers).
	if f := res.factor(res.UniformHeap); f > 20 {
		t.Fatalf("uniform overhead factor %.1fx is implausibly high", f)
	}
}

func TestWriteMemoryOverhead(t *testing.T) {
	var buf bytes.Buffer
	WriteMemoryOverhead(&buf, 4, 16<<10)
	if !strings.Contains(buf.String(), "MEMORY OVERHEAD") {
		t.Fatalf("output:\n%s", buf.String())
	}
}
