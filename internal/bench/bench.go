// Package bench is the measurement harness of the evaluation (DSN'22
// §V-F): it runs every micro-benchmark case and every real-system
// workload under the three execution modes (original, Phosphor-style
// intra-node tracking, full DisTA) and regenerates the paper's Table V
// and Table VI, the SDT-vs-SIM global-taint analysis, and the
// network-overhead measurement.
package bench

import (
	"fmt"
	"time"

	"dista/internal/core/tracker"
)

// Scenario selects the taint-tracking scenario of Table IV.
type Scenario int

// The two scenario kinds of §V-B.
const (
	SDT Scenario = iota + 1 // specific data trace
	SIM                     // system input/output monitor
)

// String returns the paper's abbreviation.
func (s Scenario) String() string {
	switch s {
	case SDT:
		return "SDT"
	case SIM:
		return "SIM"
	default:
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
}

// RunStats captures one measured execution.
type RunStats struct {
	Duration     time.Duration
	GlobalTaints int   // taints registered in the Taint Map
	DataBytes    int64 // payload bytes through the JNI layer
	WireBytes    int64 // bytes actually on the wire
}

// Overhead returns t divided by base as the paper's "X" factor.
func Overhead(t, base time.Duration) float64 {
	if base <= 0 {
		return 0
	}
	return float64(t) / float64(base)
}

// ms renders a duration in milliseconds with two decimals.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000)
}

// modes lists the three execution modes in table order.
var modes = []tracker.Mode{tracker.ModeOff, tracker.ModePhosphor, tracker.ModeDista}
