package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dista/internal/core/tracker"
	"dista/internal/microbench"
)

func TestOverheadMath(t *testing.T) {
	if got := Overhead(200*time.Millisecond, 100*time.Millisecond); got != 2 {
		t.Fatalf("overhead = %v", got)
	}
	if got := Overhead(time.Second, 0); got != 0 {
		t.Fatalf("zero base overhead = %v", got)
	}
}

func TestScenarioString(t *testing.T) {
	if SDT.String() != "SDT" || SIM.String() != "SIM" {
		t.Fatal("scenario spellings")
	}
	if !strings.Contains(Scenario(9).String(), "9") {
		t.Fatal("unknown scenario")
	}
}

func TestMeasureCaseOrdersModes(t *testing.T) {
	c, _ := microbench.CaseByID(1)
	row, err := MeasureCase(c, 16<<10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if row.Original <= 0 || row.Phosphor <= 0 || row.Dista <= 0 {
		t.Fatalf("row = %+v", row)
	}
	if row.DistaOverhead() <= 0 || row.PhosphorOverhead() <= 0 {
		t.Fatal("overheads must be positive")
	}
}

func TestSummarizeTableVShape(t *testing.T) {
	// Synthetic rows: 3 socket cases and 2 other groups.
	mk := func(group string, o, p, d time.Duration) MicroRow {
		return MicroRow{
			Case:     microbench.Case{Group: group, Name: group},
			Original: o, Phosphor: p, Dista: d,
		}
	}
	rows := []MicroRow{
		mk("JRE Socket", 10*time.Millisecond, 20*time.Millisecond, 30*time.Millisecond),
		mk("JRE Socket", 10*time.Millisecond, 25*time.Millisecond, 60*time.Millisecond),
		mk("JRE Socket", 10*time.Millisecond, 22*time.Millisecond, 40*time.Millisecond),
		mk("JRE HTTP", 5*time.Millisecond, 9*time.Millisecond, 12*time.Millisecond),
		mk("Netty Socket", 7*time.Millisecond, 15*time.Millisecond, 21*time.Millisecond),
	}
	sum := SummarizeTableV(rows)
	names := make([]string, len(sum))
	for i, r := range sum {
		names[i] = r.Name
	}
	want := []string{"JRE Socket-Best", "JRE Socket-Worst", "JRE Socket-Avg", "JRE HTTP", "Netty Socket", "Average"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("rows = %v", names)
	}
	if sum[0].Dista != 30*time.Millisecond || sum[1].Dista != 60*time.Millisecond {
		t.Fatal("best/worst selection wrong")
	}
	if sum[2].Dista != (30+60+40)*time.Millisecond/3 {
		t.Fatalf("socket avg = %v", sum[2].Dista)
	}

	var buf bytes.Buffer
	WriteTableV(&buf, sum)
	out := buf.String()
	if !strings.Contains(out, "TABLE V") || !strings.Contains(out, "JRE Socket-Best") {
		t.Fatalf("table output:\n%s", out)
	}
}

func TestWriteTableII(t *testing.T) {
	var buf bytes.Buffer
	WriteTableII(&buf)
	out := buf.String()
	if !strings.Contains(out, "TABLE II") || !strings.Contains(out, "Netty HTTP") {
		t.Fatalf("table II output:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got < 35 {
		t.Fatalf("table II too short: %d lines", got)
	}
}

// TestSystemRunnersAllModes runs every system workload once per
// mode/scenario at a tiny scale to prove the Table VI machinery works
// end to end.
func TestSystemRunnersAllModes(t *testing.T) {
	cfg := SystemConfig{MsgSize: 2 << 10, Messages: 4, PiSamples: 2_000, Jobs: 1}
	for _, sys := range Systems() {
		for _, sc := range []Scenario{SDT, SIM} {
			for _, mode := range modes {
				name := sys.Name + "/" + sc.String() + "/" + mode.String()
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					st, err := sys.Run(mode, sc, cfg, t.TempDir())
					if err != nil {
						t.Fatal(err)
					}
					if st.Duration <= 0 {
						t.Fatal("no duration measured")
					}
					if mode == tracker.ModeDista && st.WireBytes <= st.DataBytes {
						t.Fatalf("dista wire bytes %d must exceed data bytes %d", st.WireBytes, st.DataBytes)
					}
					if mode != tracker.ModeDista && st.GlobalTaints != 0 {
						t.Fatalf("%s registered %d global taints", mode, st.GlobalTaints)
					}
				})
			}
		}
	}
}

// TestGlobalTaintCounts is experiment E6: under DisTA, SIM scenarios
// register many more global taints than SDT scenarios, matching the
// §V-F analysis (paper: SDT 1-6, SIM 54-327).
func TestGlobalTaintCounts(t *testing.T) {
	cfg := SystemConfig{MsgSize: 1 << 10, Messages: 12, PiSamples: 2_000, Jobs: 2}
	for _, sys := range Systems() {
		t.Run(sys.Name, func(t *testing.T) {
			t.Parallel()
			sdt, err := sys.Run(tracker.ModeDista, SDT, cfg, t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			sim, err := sys.Run(tracker.ModeDista, SIM, cfg, t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if sdt.GlobalTaints == 0 {
				t.Fatal("SDT run registered no global taints")
			}
			if sdt.GlobalTaints > 6 {
				t.Fatalf("SDT global taints = %d, paper range is 1-6", sdt.GlobalTaints)
			}
			if sim.GlobalTaints <= sdt.GlobalTaints {
				t.Fatalf("SIM (%d) must register more global taints than SDT (%d)",
					sim.GlobalTaints, sdt.GlobalTaints)
			}
		})
	}
}

func TestMeasureSystemsAndTableVI(t *testing.T) {
	cfg := SystemConfig{MsgSize: 1 << 10, Messages: 3, PiSamples: 1_000, Jobs: 1}
	rows, err := MeasureSystems(cfg, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	var buf bytes.Buffer
	WriteTableVI(&buf, rows)
	out := buf.String()
	for _, want := range []string{"TABLE VI", "ZooKeeper", "HBase+ZooKeeper", "Average"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	buf.Reset()
	WriteTaintCounts(&buf, rows)
	if !strings.Contains(buf.String(), "SDT range") {
		t.Fatalf("taint count output:\n%s", buf.String())
	}
}
