// Package hist provides a lock-free log-scale latency histogram shared
// by the taintmap cluster client's hedge tracker and the load plane's
// tail-latency reporting (DESIGN.md §12). HardTaint's argument — that
// production viability must be measured at the tail, not the mean — is
// why every consumer reports quantiles out of this structure rather
// than averages.
//
// Buckets are log-scale with 4 sub-buckets per octave, so a reported
// quantile is an upper bound at most 25% above the true value. The
// direction of the error is deliberate: a hedge fired slightly late
// costs latency, one fired slightly early costs a token; a p999
// criterion that over-reports errs toward strictness. Observations and
// quantile reads are atomics only — the zero value is ready to use and
// any number of goroutines may Observe concurrently.
package hist

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	subBits = 2 // sub-buckets per octave = 1<<subBits
	// NumBuckets spans sub-microsecond to ~9 hours at 4 buckets per
	// octave — every latency a simulated fabric can produce.
	NumBuckets = 128
)

// Hist is the histogram. The zero value is empty and ready to use; do
// not copy a Hist after first use.
type Hist struct {
	count   atomic.Int64
	buckets [NumBuckets]atomic.Int64
}

// bucket maps a microsecond value onto its histogram bucket.
func bucket(us uint64) int {
	const sub = 1 << subBits
	if us < sub {
		return int(us) // 0..3 exact
	}
	k := bits.Len64(us) - 1 // us in [2^k, 2^k+1)
	i := sub + (k-subBits)*sub + int((us>>(k-subBits))-sub)
	if i >= NumBuckets {
		return NumBuckets - 1
	}
	return i
}

// bucketUpper is the exclusive upper bound of bucket i, in microseconds.
func bucketUpper(i int) uint64 {
	const sub = 1 << subBits
	if i < sub {
		return uint64(i + 1)
	}
	i -= sub
	k := i/sub + subBits
	m := uint64(i%sub) + sub
	return (m + 1) << (k - subBits)
}

// Observe records one latency sample.
func (h *Hist) Observe(d time.Duration) {
	us := uint64(d / time.Microsecond)
	h.buckets[bucket(us)].Add(1)
	h.count.Add(1)
}

// Count returns how many samples have been observed.
func (h *Hist) Count() int64 {
	return h.count.Load()
}

// Quantile returns an upper bound on the q-quantile of the observed
// samples (at most 25% above the true value), or ok=false while the
// histogram is empty. Concurrent Observes may land mid-scan; the result
// is a valid quantile of some interleaving, which is all a live gauge
// needs.
func (h *Hist) Quantile(q float64) (time.Duration, bool) {
	total := h.count.Load()
	if total == 0 {
		return 0, false
	}
	want := int64(math.Ceil(q * float64(total)))
	if want < 1 {
		want = 1
	}
	if want > total {
		want = total
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= want {
			return time.Duration(bucketUpper(i)) * time.Microsecond, true
		}
	}
	return time.Duration(bucketUpper(NumBuckets-1)) * time.Microsecond, true
}
