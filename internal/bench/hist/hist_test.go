package hist

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestBucketRoundTrip(t *testing.T) {
	// Every microsecond value must land in a bucket whose bounds contain
	// it: value < upper(bucket) and (bucket 0 or value >= upper(bucket-1)).
	values := []uint64{0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 100, 1000, 4095, 4096, 1 << 20, 1 << 40}
	for _, us := range values {
		i := bucket(us)
		if i < 0 || i >= NumBuckets {
			t.Fatalf("bucket(%d) = %d out of range", us, i)
		}
		if i < NumBuckets-1 && us >= bucketUpper(i) {
			t.Fatalf("bucket(%d) = %d but upper bound is %d", us, i, bucketUpper(i))
		}
		if i > 0 && us < bucketUpper(i-1) {
			t.Fatalf("bucket(%d) = %d but previous upper bound is %d", us, i, bucketUpper(i-1))
		}
	}
}

func TestBucketMonotone(t *testing.T) {
	prev := -1
	for us := uint64(0); us < 1<<16; us += 7 {
		i := bucket(us)
		if i < prev {
			t.Fatalf("bucket not monotone at %d: %d < %d", us, i, prev)
		}
		prev = i
	}
	for i := 1; i < NumBuckets; i++ {
		if bucketUpper(i) <= bucketUpper(i-1) {
			t.Fatalf("bucketUpper not increasing at %d", i)
		}
	}
}

func TestQuantileEmpty(t *testing.T) {
	var h Hist
	if _, ok := h.Quantile(0.99); ok {
		t.Fatal("quantile reported ready on an empty histogram")
	}
	h.Observe(time.Millisecond)
	if d, ok := h.Quantile(0.99); !ok || d < time.Millisecond {
		t.Fatalf("quantile after one sample = %v, %v", d, ok)
	}
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestQuantileUpperBound(t *testing.T) {
	var h Hist
	// 99 fast observations at 1ms, one slow at 100ms: p50 must report
	// near 1ms, p99.5 near 100ms — each as a bucket upper bound, so at
	// most 25% above the true value.
	for i := 0; i < 99; i++ {
		h.Observe(time.Millisecond)
	}
	h.Observe(100 * time.Millisecond)

	p50, ok := h.Quantile(0.50)
	if !ok {
		t.Fatal("quantile not ready")
	}
	if p50 < time.Millisecond || p50 > time.Millisecond*5/4 {
		t.Fatalf("p50 = %v, want within 25%% above 1ms", p50)
	}
	p995, _ := h.Quantile(0.995)
	if p995 < 100*time.Millisecond || p995 > 100*time.Millisecond*5/4 {
		t.Fatalf("p99.5 = %v, want within 25%% above 100ms", p995)
	}
	if p50 > p995 {
		t.Fatalf("quantiles not monotone: p50 %v > p99.5 %v", p50, p995)
	}
}

// TestQuantileErrorBoundRandom pins the <=25% upper-bound error against
// an exact quantile over a log-uniform random sample — the contract the
// load plane's p999 criteria and the hedge delay both rely on.
func TestQuantileErrorBoundRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h Hist
	samples := make([]time.Duration, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform over ~1µs .. ~1s.
		d := time.Duration(float64(time.Microsecond) * float64(uint64(1)<<uint(rng.Intn(20))) * (1 + rng.Float64()))
		samples = append(samples, d)
		h.Observe(d)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.50, 0.90, 0.99, 0.999} {
		got, ok := h.Quantile(q)
		if !ok {
			t.Fatalf("quantile(%v) not ready", q)
		}
		// Exact q-quantile by the same ceil(q*n) rank convention.
		rank := int(q*float64(len(samples))+0.9999999) - 1
		if rank < 0 {
			rank = 0
		}
		exact := samples[rank]
		if got < exact {
			t.Fatalf("quantile(%v) = %v under-reports exact %v", q, got, exact)
		}
		if float64(got) > float64(exact)*1.25+float64(time.Microsecond) {
			t.Fatalf("quantile(%v) = %v exceeds exact %v by more than 25%%", q, got, exact)
		}
	}
}

func TestObserveConcurrent(t *testing.T) {
	var h Hist
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if h.Count() != 4000 {
		t.Fatalf("count = %d, want 4000", h.Count())
	}
}
