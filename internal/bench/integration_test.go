package bench

import (
	"strings"
	"sync"
	"testing"

	"dista/internal/core/tracker"
)

// TestAllSystemsCoDeployed runs all five system workloads concurrently,
// each on its own network but sharing nothing else, under full DisTA —
// a stress test of the whole stack (tag trees, Taint Map stores,
// instrumented transports, five protocol families) in one process.
func TestAllSystemsCoDeployed(t *testing.T) {
	cfg := SystemConfig{MsgSize: 4 << 10, Messages: 6, PiSamples: 5_000, Jobs: 1}
	var wg sync.WaitGroup
	errs := make(chan error, len(Systems())*2)
	for _, sys := range Systems() {
		for _, sc := range []Scenario{SDT, SIM} {
			wg.Add(1)
			go func(sys System, sc Scenario) {
				defer wg.Done()
				st, err := sys.Run(tracker.ModeDista, sc, cfg, t.TempDir())
				if err != nil {
					errs <- err
					return
				}
				if st.GlobalTaints == 0 {
					errs <- errNoTaints{sys.Name, sc}
				}
			}(sys, sc)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

type errNoTaints struct {
	system string
	sc     Scenario
}

func (e errNoTaints) Error() string {
	return e.system + "/" + e.sc.String() + ": no global taints registered"
}

// TestSystemsTableMetadata sanity-checks the Table III descriptions.
func TestSystemsTableMetadata(t *testing.T) {
	systems := Systems()
	if len(systems) != 5 {
		t.Fatalf("%d systems, Table III has 5", len(systems))
	}
	wantNames := []string{"ZooKeeper", "MapReduce/Yarn", "ActiveMQ", "RocketMQ", "HBase+ZooKeeper"}
	for i, sys := range systems {
		if sys.Name != wantNames[i] {
			t.Fatalf("system %d = %q, want %q", i, sys.Name, wantNames[i])
		}
		if sys.Workload == "" || sys.Run == nil {
			t.Fatalf("system %q incomplete", sys.Name)
		}
	}
	// The workloads match the paper's Column Workload.
	if !strings.Contains(systems[0].Workload, "election") ||
		!strings.Contains(systems[1].Workload, "Pi") ||
		!strings.Contains(systems[4].Workload, "table") {
		t.Fatal("workload descriptions drifted from Table III")
	}
}
