package bench

import (
	"fmt"
	"io"
	"runtime"

	"dista/internal/core/taint"
)

// Memory-overhead experiment (§V-F): the paper does not re-measure
// memory because DisTA reuses Phosphor's taint storage, whose published
// overhead is 1x-8x (2.7x average). This harness measures the analogous
// quantity in our runtime: heap held by tainted buffers versus plain
// buffers, under two labelling patterns.

// MemoryResult reports bytes of live heap per scenario.
type MemoryResult struct {
	BufferBytes int    // payload bytes allocated
	PlainHeap   uint64 // heap holding untainted buffers
	UniformHeap uint64 // heap with every byte sharing one taint
	PerByteHeap uint64 // heap with a distinct taint every 64 bytes
	TreeNodes   int    // tag-tree nodes after the per-byte scenario
}

// measureHeap runs f while keeping its result alive, and returns the
// live-heap delta it caused.
func measureHeap(f func() any) uint64 {
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	keep := f()
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	runtime.KeepAlive(keep)
	if after.HeapAlloc < before.HeapAlloc {
		return 0
	}
	return after.HeapAlloc - before.HeapAlloc
}

// MeasureMemoryOverhead allocates `buffers` buffers of `size` bytes
// under the three labelling regimes.
func MeasureMemoryOverhead(buffers, size int) MemoryResult {
	res := MemoryResult{BufferBytes: buffers * size}

	res.PlainHeap = measureHeap(func() any {
		out := make([]taint.Bytes, buffers)
		for i := range out {
			out[i] = taint.WrapBytes(make([]byte, size))
		}
		return out
	})

	res.UniformHeap = measureHeap(func() any {
		tree := taint.NewTree()
		tag := tree.NewSource("uniform", "bench:1")
		out := make([]taint.Bytes, buffers)
		for i := range out {
			out[i] = taint.WrapBytes(make([]byte, size))
			out[i].TaintAll(tag)
		}
		return out
	})

	var lastTree *taint.Tree
	res.PerByteHeap = measureHeap(func() any {
		tree := taint.NewTree()
		lastTree = tree
		out := make([]taint.Bytes, buffers)
		for i := range out {
			out[i] = taint.MakeBytes(size)
			for j := 0; j < size; j += 64 {
				tag := tree.NewSource(fmt.Sprintf("t%d-%d", i, j), "bench:1")
				end := j + 64
				if end > size {
					end = size
				}
				out[i].SetRange(j, end, tag)
			}
		}
		return out
	})
	if lastTree != nil {
		res.TreeNodes = lastTree.NodeCount()
	}
	return res
}

// factor renders heap as a multiple of the plain baseline.
func (r MemoryResult) factor(heap uint64) float64 {
	if r.PlainHeap == 0 {
		return 0
	}
	return float64(heap) / float64(r.PlainHeap)
}

// WriteMemoryOverhead prints the experiment (compare against Phosphor's
// published 1x-8x, 2.7x average).
func WriteMemoryOverhead(w io.Writer, buffers, size int) {
	res := MeasureMemoryOverhead(buffers, size)
	fmt.Fprintf(w, "MEMORY OVERHEAD (%d buffers x %d bytes; Phosphor's published range: 1x-8x, 2.7x avg)\n",
		buffers, size)
	fmt.Fprintf(w, "  plain buffers:           %10d B (1.00x)\n", res.PlainHeap)
	fmt.Fprintf(w, "  uniformly tainted:       %10d B (%.2fx)\n", res.UniformHeap, res.factor(res.UniformHeap))
	fmt.Fprintf(w, "  distinct taint per 64B:  %10d B (%.2fx, %d tree nodes)\n",
		res.PerByteHeap, res.factor(res.PerByteHeap), res.TreeNodes)
}
