package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"dista/internal/core/tracker"
	"dista/internal/microbench"
)

// MicroRow is one Table V row: a case measured under the three modes.
type MicroRow struct {
	Case     microbench.Case
	Original time.Duration
	Phosphor time.Duration
	Dista    time.Duration
}

// PhosphorOverhead returns the Phosphor column's X factor.
func (r MicroRow) PhosphorOverhead() float64 { return Overhead(r.Phosphor, r.Original) }

// DistaOverhead returns the DisTA column's X factor.
func (r MicroRow) DistaOverhead() float64 { return Overhead(r.Dista, r.Original) }

// MeasureCase runs one case in every mode and returns its row. size is
// the per-side payload in bytes; iters > 1 averages repeated runs.
func MeasureCase(c microbench.Case, size, iters int) (MicroRow, error) {
	row := MicroRow{Case: c}
	for _, mode := range modes {
		total := time.Duration(0)
		for i := 0; i < iters; i++ {
			start := time.Now()
			if _, err := microbench.RunCase(c, mode, size); err != nil {
				return MicroRow{}, err
			}
			total += time.Since(start)
		}
		avg := total / time.Duration(iters)
		switch mode {
		case tracker.ModeOff:
			row.Original = avg
		case tracker.ModePhosphor:
			row.Phosphor = avg
		case tracker.ModeDista:
			row.Dista = avg
		}
	}
	return row, nil
}

// MeasureAllCases measures every Table II case.
func MeasureAllCases(size, iters int) ([]MicroRow, error) {
	cases := microbench.Cases()
	rows := make([]MicroRow, 0, len(cases))
	for _, c := range cases {
		row, err := MeasureCase(c, size, iters)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// TableVRow is one printed row of Table V (a protocol group, or the
// socket best/worst/avg aggregates, or the overall average).
type TableVRow struct {
	Name     string
	Original time.Duration
	Phosphor time.Duration
	Dista    time.Duration
}

// SummarizeTableV folds per-case measurements into the paper's Table V
// layout: JRE Socket Best/Worst/Avg (by DisTA overhead), one row per
// remaining group, and the overall average.
func SummarizeTableV(rows []MicroRow) []TableVRow {
	var socket []MicroRow
	groupOrder := []string{}
	groups := make(map[string][]MicroRow)
	for _, r := range rows {
		if r.Case.Group == "JRE Socket" {
			socket = append(socket, r)
			continue
		}
		if _, ok := groups[r.Case.Group]; !ok {
			groupOrder = append(groupOrder, r.Case.Group)
		}
		groups[r.Case.Group] = append(groups[r.Case.Group], r)
	}

	var out []TableVRow
	if len(socket) > 0 {
		sorted := append([]MicroRow(nil), socket...)
		sort.Slice(sorted, func(i, j int) bool {
			return sorted[i].DistaOverhead() < sorted[j].DistaOverhead()
		})
		best, worst := sorted[0], sorted[len(sorted)-1]
		out = append(out,
			TableVRow{Name: "JRE Socket-Best", Original: best.Original, Phosphor: best.Phosphor, Dista: best.Dista},
			TableVRow{Name: "JRE Socket-Worst", Original: worst.Original, Phosphor: worst.Phosphor, Dista: worst.Dista},
			averageRow("JRE Socket-Avg", socket),
		)
	}
	for _, g := range groupOrder {
		out = append(out, averageRow(g, groups[g]))
	}
	out = append(out, averageRow("Average", rows))
	return out
}

func averageRow(name string, rows []MicroRow) TableVRow {
	var o, p, d time.Duration
	for _, r := range rows {
		o += r.Original
		p += r.Phosphor
		d += r.Dista
	}
	n := time.Duration(len(rows))
	return TableVRow{Name: name, Original: o / n, Phosphor: p / n, Dista: d / n}
}

// WriteTableV prints the summarized table in the paper's column layout.
func WriteTableV(w io.Writer, rows []TableVRow) {
	fmt.Fprintf(w, "TABLE V: RUNTIME OVERHEAD FOR MICRO BENCHMARK\n")
	fmt.Fprintf(w, "%-28s %12s %12s %9s %12s %9s\n",
		"Case", "Original(ms)", "Phosphor(ms)", "Ovhd(X)", "DisTA(ms)", "Ovhd(X)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %12s %12s %9.2f %12s %9.2f\n",
			r.Name, ms(r.Original),
			ms(r.Phosphor), Overhead(r.Phosphor, r.Original),
			ms(r.Dista), Overhead(r.Dista, r.Original))
	}
}

// WriteTableII prints the case inventory (Table II).
func WriteTableII(w io.Writer) {
	fmt.Fprintf(w, "TABLE II: MICRO BENCHMARK CASES\n")
	fmt.Fprintf(w, "%-4s %-24s %s\n", "ID", "Group", "Case")
	for _, c := range microbench.Cases() {
		fmt.Fprintf(w, "%-4d %-24s %s\n", c.ID, c.Group, c.Name)
	}
	fmt.Fprintf(w, "\nGroups:\n")
	for _, g := range microbench.Groups() {
		fmt.Fprintf(w, "  %-24s %d case(s)\n", g.Name, g.Count)
	}
}
