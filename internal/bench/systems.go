package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dista/internal/core/taint"
	"dista/internal/core/tracker"
	"dista/internal/dlog"
	"dista/internal/jre"
	"dista/internal/netsim"
	"dista/internal/systems/activemq"
	"dista/internal/systems/hbase"
	"dista/internal/systems/mapreduce"
	"dista/internal/systems/rocketmq"
	"dista/internal/systems/zk"
	"dista/internal/taintmap"
)

// SourceDataFile is the generic SIM data-file source the workload
// drivers use when a payload is read from disk ("these files can be
// configuration files or data files", §V-B).
const SourceDataFile = "DataFile#read"

// SystemConfig scales the real-system workloads.
type SystemConfig struct {
	MsgSize   int   // payload bytes for messaging workloads
	Messages  int   // messages / rows / repetitions
	PiSamples int64 // Monte-Carlo samples per MapReduce job
	Jobs      int   // MapReduce job count
}

// DefaultSystemConfig matches the integration-test scale; cmd/dista-bench
// scales it up.
func DefaultSystemConfig() SystemConfig {
	return SystemConfig{MsgSize: 32 << 10, Messages: 30, PiSamples: 100_000, Jobs: 3}
}

// SystemRun measures one system workload in one mode and scenario.
type SystemRun func(mode tracker.Mode, sc Scenario, cfg SystemConfig, workDir string) (RunStats, error)

// System pairs a Table III row with its workload driver.
type System struct {
	Name     string
	Workload string // the Table III workload description
	Run      SystemRun
}

// Systems returns the five Table III subjects in order.
func Systems() []System {
	return []System{
		{Name: "ZooKeeper", Workload: "leader election", Run: runZooKeeper},
		{Name: "MapReduce/Yarn", Workload: "job to calculate Pi", Run: runMapReduce},
		{Name: "ActiveMQ", Workload: "long text message distribution", Run: runActiveMQ},
		{Name: "RocketMQ", Workload: "long text message distribution", Run: runRocketMQ},
		{Name: "HBase+ZooKeeper", Workload: "get data from a table", Run: runHBase},
	}
}

// cluster builds the per-run environment set.
type cluster struct {
	net   *netsim.Network
	store *taintmap.Store
	mode  tracker.Mode
	spec  tracker.Spec
}

func newCluster(mode tracker.Mode, sc Scenario, simSources []string) *cluster {
	c := &cluster{net: netsim.New(), store: taintmap.NewStore(), mode: mode}
	if sc == SIM {
		// A SIM run restricts sources to the configured file reads and
		// sinks to LOG.info (§V-B).
		c.spec = tracker.NewSpec(simSources, []string{dlog.SinkDesc})
	}
	return c
}

func (c *cluster) env(name string) *jre.Env {
	a := tracker.New(name, c.mode)
	a = tracker.New(name, c.mode,
		tracker.WithTaintMap(taintmap.NewLocalClient(c.store, a.Tree())),
		tracker.WithSpec(c.spec))
	return jre.NewEnv(c.net, a)
}

// stats assembles RunStats from the run duration and the cluster state.
func (c *cluster) stats(d time.Duration, envs ...*jre.Env) RunStats {
	st := RunStats{Duration: d, GlobalTaints: c.store.Stats().GlobalTaints}
	for _, e := range envs {
		data, wire := e.Agent.Traffic()
		st.DataBytes += data
		st.WireBytes += wire
	}
	return st
}

// writeDataFiles creates n payload files of the given size and returns
// their paths.
func writeDataFiles(dir string, n, size int) ([]string, error) {
	paths := make([]string, n)
	for i := range paths {
		body := strings.Repeat(fmt.Sprintf("data-%03d ", i), size/9+1)[:size]
		paths[i] = filepath.Join(dir, fmt.Sprintf("data-%03d.txt", i))
		if err := os.WriteFile(paths[i], []byte(body), 0o644); err != nil {
			return nil, err
		}
	}
	return paths, nil
}

// runZooKeeper measures the leader-election workload.
func runZooKeeper(mode tracker.Mode, sc Scenario, cfg SystemConfig, workDir string) (RunStats, error) {
	c := newCluster(mode, sc, []string{zk.SourceTxnRead, zk.SourceConfig})
	peers := make([]*zk.Peer, 3)
	for i := range peers {
		env := c.env(fmt.Sprintf("zk%d", i+1))
		dir := ""
		confPath := ""
		if sc == SIM {
			dir = filepath.Join(workDir, fmt.Sprintf("zk%d", i+1))
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return RunStats{}, err
			}
			base := int64(i+1) * 100
			if err := zk.WriteTxnLogs(dir, base+1, base+2, base+3); err != nil {
				return RunStats{}, err
			}
			confPath = filepath.Join(dir, "zoo.cfg")
			if err := os.WriteFile(confPath, []byte(fmt.Sprintf("server.%d=zk%d", i+1, i+1)), 0o644); err != nil {
				return RunStats{}, err
			}
		}
		peers[i] = zk.NewPeer(int64(i+1), env, dir)
		peers[i].ConfigPath = confPath
	}
	start := time.Now()
	// The paper runs several election rounds' worth of traffic; repeat
	// the election to give the measurement substance.
	rounds := cfg.Messages / 10
	if rounds < 1 {
		rounds = 1
	}
	for r := 0; r < rounds; r++ {
		roundPeers := peers
		if r > 0 {
			roundPeers = make([]*zk.Peer, len(peers))
			for i, p := range peers {
				roundPeers[i] = zk.NewPeer(p.ID, p.Env, p.DataDir)
				roundPeers[i].ConfigPath = p.ConfigPath
			}
		}
		if err := zk.RunElection(fmt.Sprintf("bench%d", r), roundPeers); err != nil {
			return RunStats{}, err
		}
	}
	envs := make([]*jre.Env, len(peers))
	for i, p := range peers {
		envs[i] = p.Env
	}
	return c.stats(time.Since(start), envs...), nil
}

// runMapReduce measures the Pi-job workload.
func runMapReduce(mode tracker.Mode, sc Scenario, cfg SystemConfig, workDir string) (RunStats, error) {
	c := newCluster(mode, sc, []string{mapreduce.SourceJobConf})
	rmEnv, nmEnv, ctEnv, clEnv := c.env("rm"), c.env("nm"), c.env("container"), c.env("client")
	mr, err := mapreduce.Start("bench", rmEnv, nmEnv, ctEnv)
	if err != nil {
		return RunStats{}, err
	}
	defer mr.Stop()
	client := mapreduce.NewClient(clEnv, mr.RMAddr())

	confs := make([]string, cfg.Jobs)
	for i := range confs {
		confs[i] = filepath.Join(workDir, fmt.Sprintf("job%d.conf", i))
		if err := os.WriteFile(confs[i], []byte(fmt.Sprintf("queue-%d", i)), 0o644); err != nil {
			return RunStats{}, err
		}
	}

	start := time.Now()
	for i := 0; i < cfg.Jobs; i++ {
		queue := taint.String{Value: "default"}
		if sc == SIM {
			if queue, err = client.LoadJobConf(confs[i]); err != nil {
				return RunStats{}, err
			}
		}
		appID, err := client.SubmitPiJob(queue, cfg.PiSamples)
		if err != nil {
			return RunStats{}, err
		}
		if _, err := client.GetApplicationReport(appID); err != nil {
			return RunStats{}, err
		}
	}
	return c.stats(time.Since(start), rmEnv, nmEnv, ctEnv, clEnv), nil
}

// runActiveMQ measures long-text distribution across the broker chain.
func runActiveMQ(mode tracker.Mode, sc Scenario, cfg SystemConfig, workDir string) (RunStats, error) {
	c := newCluster(mode, sc, []string{activemq.SourceCredentials, SourceDataFile})
	envs := [3]*jre.Env{c.env("broker1"), c.env("broker2"), c.env("broker3")}
	brokers, err := activemq.StartBrokerChain("bench", envs)
	if err != nil {
		return RunStats{}, err
	}
	defer func() {
		for _, b := range brokers {
			b.Close()
		}
	}()
	prodEnv, consEnv := c.env("producer"), c.env("consumer")

	consumer, err := activemq.ConnectConsumer(consEnv, brokers[2].Addr(), "bench")
	if err != nil {
		return RunStats{}, err
	}
	defer consumer.Close()

	user := taint.String{Value: "bench-user"}
	var files []string
	if sc == SIM {
		if user, err = activemq.LoadCredentials(prodEnv, filepath.Join(workDir, "credentials")); err != nil {
			if err := os.WriteFile(filepath.Join(workDir, "credentials"), []byte("bench-user"), 0o644); err != nil {
				return RunStats{}, err
			}
			if user, err = activemq.LoadCredentials(prodEnv, filepath.Join(workDir, "credentials")); err != nil {
				return RunStats{}, err
			}
		}
		if files, err = writeDataFiles(workDir, cfg.Messages, cfg.MsgSize); err != nil {
			return RunStats{}, err
		}
	}
	producer, err := activemq.ConnectProducer(prodEnv, brokers[0].Addr(), user)
	if err != nil {
		return RunStats{}, err
	}
	defer producer.Close()

	consLog := dlog.New(consEnv.Agent)
	body := strings.Repeat("x", cfg.MsgSize)

	start := time.Now()
	for i := 0; i < cfg.Messages; i++ {
		text := body
		if sc == SIM {
			raw, err := jre.ReadFileTainted(prodEnv, files[i], SourceDataFile, "data")
			if err != nil {
				return RunStats{}, err
			}
			// The published text derives from the file content.
			publishSIM(producer, prodEnv, "bench", raw)
			msg, err := consumer.Receive()
			if err != nil {
				return RunStats{}, err
			}
			consLog.Info("received message %d: %s", i, msg.Body)
			continue
		}
		if _, err := producer.PublishText("bench", text); err != nil {
			return RunStats{}, err
		}
		msg, err := consumer.Receive()
		if err != nil {
			return RunStats{}, err
		}
		consLog.Info("received message %d of %d bytes", i, len(msg.Body.Value))
	}
	return c.stats(time.Since(start), envs[0], envs[1], envs[2], prodEnv, consEnv), nil
}

// publishSIM publishes a file-derived tainted body (bypassing the SDT
// source point, which a SIM spec leaves dormant anyway).
func publishSIM(p *activemq.Producer, env *jre.Env, topic string, raw taint.Bytes) {
	_, _ = p.PublishTainted(topic, taint.StringOf(raw))
}

// runRocketMQ measures send/pull through the broker.
func runRocketMQ(mode tracker.Mode, sc Scenario, cfg SystemConfig, workDir string) (RunStats, error) {
	c := newCluster(mode, sc, []string{rocketmq.SourceBrokerConf, SourceDataFile})
	brokerEnv, prodEnv, consEnv := c.env("broker"), c.env("producer"), c.env("consumer")

	confPath := ""
	var files []string
	var err error
	if sc == SIM {
		confPath = filepath.Join(workDir, "broker.conf")
		if err := os.WriteFile(confPath, []byte("bench-broker"), 0o644); err != nil {
			return RunStats{}, err
		}
		if files, err = writeDataFiles(workDir, cfg.Messages, cfg.MsgSize); err != nil {
			return RunStats{}, err
		}
	}
	broker, err := rocketmq.StartBroker(brokerEnv, "rmq-bench:10911", confPath, filepath.Join(workDir, "commitlog"))
	if err != nil {
		return RunStats{}, err
	}
	defer broker.Close()

	producer, err := rocketmq.ConnectProducer(prodEnv, "rmq-bench:10911")
	if err != nil {
		return RunStats{}, err
	}
	defer producer.Close()
	consumer, err := rocketmq.ConnectConsumer(consEnv, "rmq-bench:10911")
	if err != nil {
		return RunStats{}, err
	}
	defer consumer.Close()

	body := strings.Repeat("y", cfg.MsgSize)
	start := time.Now()
	for i := 0; i < cfg.Messages; i++ {
		if sc == SIM {
			raw, err := jre.ReadFileTainted(prodEnv, files[i], SourceDataFile, "data")
			if err != nil {
				return RunStats{}, err
			}
			if _, err := producer.SendTainted("bench", taint.StringOf(raw)); err != nil {
				return RunStats{}, err
			}
		} else if _, err := producer.Send("bench", body); err != nil {
			return RunStats{}, err
		}
		if _, err := consumer.Pull("bench", int64(i), 1); err != nil {
			return RunStats{}, err
		}
	}
	return c.stats(time.Since(start), brokerEnv, prodEnv, consEnv), nil
}

// runHBase measures table reads through the HBase+ZooKeeper pair.
func runHBase(mode tracker.Mode, sc Scenario, cfg SystemConfig, workDir string) (RunStats, error) {
	c := newCluster(mode, sc, []string{hbase.SourceRSConf, SourceDataFile})
	zkEnv, masterEnv := c.env("zknode"), c.env("hmaster")
	rsEnvs := []*jre.Env{c.env("rs1"), c.env("rs2")}
	clientEnv := c.env("client")

	var confs []string
	var files []string
	var err error
	if sc == SIM {
		for i := 1; i <= 2; i++ {
			path := filepath.Join(workDir, fmt.Sprintf("rs%d.conf", i))
			if err := os.WriteFile(path, []byte(fmt.Sprintf("rs-host-%d", i)), 0o644); err != nil {
				return RunStats{}, err
			}
			confs = append(confs, path)
		}
		if files, err = writeDataFiles(workDir, cfg.Messages, 256); err != nil {
			return RunStats{}, err
		}
	}
	hc, err := hbase.StartCluster("bench", zkEnv, masterEnv, rsEnvs, confs, []string{"users", "events"})
	if err != nil {
		return RunStats{}, err
	}
	defer hc.Stop()

	client, err := hbase.NewClient(clientEnv, hc.ZKAddr)
	if err != nil {
		return RunStats{}, err
	}
	defer client.Close()

	start := time.Now()
	for i := 0; i < cfg.Messages; i++ {
		table := client.TableName([]string{"users", "events"}[i%2])
		row := fmt.Sprintf("row%d", i)
		val := strings.Repeat("v", 256)
		if sc == SIM {
			raw, err := jre.ReadFileTainted(clientEnv, files[i], SourceDataFile, "data")
			if err != nil {
				return RunStats{}, err
			}
			if err := client.PutTainted(table, row, "col", taint.StringOf(raw)); err != nil {
				return RunStats{}, err
			}
		} else if err := client.Put(table, row, "col", val); err != nil {
			return RunStats{}, err
		}
		if _, err := client.Get(table, row); err != nil {
			return RunStats{}, err
		}
	}
	allEnvs := append([]*jre.Env{zkEnv, masterEnv, clientEnv}, rsEnvs...)
	return c.stats(time.Since(start), allEnvs...), nil
}

// SystemRow is one measured Table VI row.
type SystemRow struct {
	System      string
	Original    time.Duration
	PhosphorSDT time.Duration
	DistaSDT    time.Duration
	PhosphorSIM time.Duration
	DistaSIM    time.Duration

	GlobalTaintsSDT int
	GlobalTaintsSIM int
}

// MeasureSystems runs every system workload in every mode/scenario
// combination of Table VI.
func MeasureSystems(cfg SystemConfig, workDir string) ([]SystemRow, error) {
	var rows []SystemRow
	for _, sys := range Systems() {
		row := SystemRow{System: sys.Name}
		type cell struct {
			mode tracker.Mode
			sc   Scenario
			dst  *time.Duration
			gt   *int
		}
		cells := []cell{
			{tracker.ModeOff, SDT, &row.Original, nil},
			{tracker.ModePhosphor, SDT, &row.PhosphorSDT, nil},
			{tracker.ModeDista, SDT, &row.DistaSDT, &row.GlobalTaintsSDT},
			{tracker.ModePhosphor, SIM, &row.PhosphorSIM, nil},
			{tracker.ModeDista, SIM, &row.DistaSIM, &row.GlobalTaintsSIM},
		}
		for i, cl := range cells {
			dir := filepath.Join(workDir, fmt.Sprintf("%s-%d", sanitize(sys.Name), i))
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return nil, err
			}
			st, err := sys.Run(cl.mode, cl.sc, cfg, dir)
			if err != nil {
				return nil, fmt.Errorf("%s %s/%s: %w", sys.Name, cl.mode, cl.sc, err)
			}
			*cl.dst = st.Duration
			if cl.gt != nil {
				*cl.gt = st.GlobalTaints
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		if r == '/' || r == '+' || r == ' ' {
			return '-'
		}
		return r
	}, s)
}

// WriteTableVI prints the measured rows in the paper's layout plus an
// average row.
func WriteTableVI(w io.Writer, rows []SystemRow) {
	fmt.Fprintf(w, "TABLE VI: RUNTIME OVERHEAD FOR REAL-WORLD DISTRIBUTED SYSTEMS\n")
	fmt.Fprintf(w, "%-18s %12s | %12s %7s %12s %7s | %12s %7s %12s %7s\n",
		"System", "Original(ms)",
		"Phos-SDT(ms)", "Ovhd", "DisTA-SDT(ms)", "Ovhd",
		"Phos-SIM(ms)", "Ovhd", "DisTA-SIM(ms)", "Ovhd")
	var avg SystemRow
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %12s | %12s %7.2f %12s %7.2f | %12s %7.2f %12s %7.2f\n",
			r.System, ms(r.Original),
			ms(r.PhosphorSDT), Overhead(r.PhosphorSDT, r.Original),
			ms(r.DistaSDT), Overhead(r.DistaSDT, r.Original),
			ms(r.PhosphorSIM), Overhead(r.PhosphorSIM, r.Original),
			ms(r.DistaSIM), Overhead(r.DistaSIM, r.Original))
		avg.Original += r.Original
		avg.PhosphorSDT += r.PhosphorSDT
		avg.DistaSDT += r.DistaSDT
		avg.PhosphorSIM += r.PhosphorSIM
		avg.DistaSIM += r.DistaSIM
	}
	n := time.Duration(len(rows))
	if n > 0 {
		fmt.Fprintf(w, "%-18s %12s | %12s %7.2f %12s %7.2f | %12s %7.2f %12s %7.2f\n",
			"Average", ms(avg.Original/n),
			ms(avg.PhosphorSDT/n), Overhead(avg.PhosphorSDT, avg.Original),
			ms(avg.DistaSDT/n), Overhead(avg.DistaSDT, avg.Original),
			ms(avg.PhosphorSIM/n), Overhead(avg.PhosphorSIM, avg.Original),
			ms(avg.DistaSIM/n), Overhead(avg.DistaSIM, avg.Original))
	}
}

// WriteTaintCounts prints the §V-F SDT-vs-SIM global-taint comparison.
func WriteTaintCounts(w io.Writer, rows []SystemRow) {
	fmt.Fprintf(w, "GLOBAL TAINTS IN TAINT MAP (SDT vs SIM, §V-F)\n")
	fmt.Fprintf(w, "%-18s %8s %8s\n", "System", "SDT", "SIM")
	minSDT, maxSDT := 1<<31, 0
	minSIM, maxSIM := 1<<31, 0
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %8d %8d\n", r.System, r.GlobalTaintsSDT, r.GlobalTaintsSIM)
		minSDT, maxSDT = minMax(minSDT, maxSDT, r.GlobalTaintsSDT)
		minSIM, maxSIM = minMax(minSIM, maxSIM, r.GlobalTaintsSIM)
	}
	fmt.Fprintf(w, "SDT range: %d..%d   SIM range: %d..%d\n", minSDT, maxSDT, minSIM, maxSIM)
}

func minMax(lo, hi, v int) (int, int) {
	if v < lo {
		lo = v
	}
	if v > hi {
		hi = v
	}
	return lo, hi
}
