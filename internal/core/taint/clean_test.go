package taint

import "testing"

// Tests for the clean-path gate: Bytes.Clean, the per-epoch memo on the
// shadow store, and the pooling reset.

func TestCleanBasics(t *testing.T) {
	if !WrapBytes([]byte("abc")).Clean() {
		t.Fatal("a lazy (shadow-free) buffer is clean")
	}
	if !MakeBytes(8).Clean() {
		t.Fatal("a fresh tracked buffer is clean")
	}
	var empty Bytes
	if !empty.Clean() {
		t.Fatal("the zero Bytes is clean")
	}

	tr := NewTree()
	b := MakeBytes(8)
	b.SetLabel(3, tr.NewSource("x", "l"))
	if b.Clean() {
		t.Fatal("a labeled buffer is not clean")
	}
	b.SetLabel(3, Taint{})
	if !b.Clean() {
		t.Fatal("clearing the only label restores cleanliness")
	}
}

func TestCleanMemoTracksMutationEpoch(t *testing.T) {
	tr := NewTree()
	b := MakeBytes(64)

	// First Clean scans and memoizes at the current epoch.
	if !b.Clean() {
		t.Fatal("fresh buffer must be clean")
	}
	memo := b.sh.clean.Load()
	if memo>>1 != b.sh.mut+1 || memo&1 != 0 {
		t.Fatalf("memo = %#x, want clean at epoch %d", memo, b.sh.mut)
	}

	// A label write bumps the epoch, invalidating the memo key.
	b.SetLabel(0, tr.NewSource("x", "l"))
	if stale := b.sh.clean.Load(); stale>>1 == b.sh.mut+1 {
		t.Fatal("mutation did not advance past the memoized epoch")
	}
	if b.Clean() {
		t.Fatal("buffer is tainted")
	}
	memo = b.sh.clean.Load()
	if memo>>1 != b.sh.mut+1 || memo&1 != 1 {
		t.Fatalf("memo = %#x, want dirty at epoch %d", memo, b.sh.mut)
	}

	// Re-clearing bumps the epoch again and Clean recomputes to true.
	b.SetRange(0, 64, Taint{})
	if !b.Clean() {
		t.Fatal("cleared buffer must be clean again")
	}

	// Writing the same (empty) label back is a no-op and must NOT
	// invalidate: the memo stays valid for the unchanged epoch.
	epoch := b.sh.mut
	b.SetRange(0, 64, Taint{})
	if b.sh.mut != epoch {
		t.Fatal("no-op clear bumped the mutation epoch")
	}
}

func TestCleanDenseMode(t *testing.T) {
	tr := NewTree()
	b := MakeBytes(256)
	// Fragment hard enough to trip densification.
	x, y := tr.NewSource("x", "l"), tr.NewSource("y", "l")
	for i := 0; i < 256; i += 2 {
		b.SetLabel(i, x)
		b.SetLabel(i+1, y)
	}
	if b.sh.dense == nil {
		t.Fatal("fragmentation should have densified the store")
	}
	if b.Clean() {
		t.Fatal("densified tainted buffer is not clean")
	}
	b.SetRange(0, 256, Taint{})
	if !b.Clean() {
		t.Fatal("cleared dense store must scan back to clean")
	}
}

func TestCleanViewOfDirtyStore(t *testing.T) {
	tr := NewTree()
	b := MakeBytes(16)
	b.SetRange(10, 12, tr.NewSource("x", "l"))
	if !b.Slice(0, 10).Clean() {
		t.Fatal("untainted view of a dirty store is clean (ranged fallback)")
	}
	if b.Slice(8, 12).Clean() || b.Clean() {
		t.Fatal("views overlapping the labels are not clean")
	}
}

func TestResetLabels(t *testing.T) {
	tr := NewTree()
	b := MakeBytes(32)
	b.TaintAll(tr.NewSource("x", "l"))
	sh := b.sh
	b.ResetLabels()
	if !b.HasShadow() || b.sh != sh {
		t.Fatal("ResetLabels must reuse the shadow store, not drop it")
	}
	if !b.Clean() {
		t.Fatal("reset buffer must be clean")
	}
	if got := b.RunCount(); got != 1 {
		t.Fatalf("reset buffer has %d runs, want 1", got)
	}

	// Resetting a view only clears the view's range.
	c := MakeBytes(16)
	c.TaintAll(tr.NewSource("y", "l"))
	v := c.Slice(4, 8)
	v.ResetLabels()
	if !v.Clean() {
		t.Fatal("view must be clean after its reset")
	}
	if !c.LabelAt(3).Has("y") || !c.LabelAt(8).Has("y") {
		t.Fatal("reset of a view leaked outside its range")
	}

	// Lazy buffers stay lazy.
	w := WrapBytes([]byte("zz"))
	w.ResetLabels()
	if w.HasShadow() {
		t.Fatal("ResetLabels on a lazy buffer must not mint a shadow")
	}
}

func TestCleanAfterAppendAndCopy(t *testing.T) {
	tr := NewTree()
	src := FromString("abc", tr.NewSource("x", "l"))

	dst := MakeBytes(3)
	if !dst.Clean() {
		t.Fatal("precondition: dst clean")
	}
	src.CopyInto(&dst, 0)
	if dst.Clean() {
		t.Fatal("copying tainted bytes in must dirty the destination")
	}

	b := MakeBytes(0).Append(src)
	if b.Clean() {
		t.Fatal("appending tainted bytes must dirty the result")
	}

	// Copying a clean source over a tainted destination re-cleans it.
	clean := MakeBytes(3)
	clean.CopyInto(&dst, 0)
	if !dst.Clean() {
		t.Fatal("overwriting with clean bytes restores cleanliness")
	}
}
