package taint

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Taint serialization: a taint crosses nodes as the ordered list of its
// tag keys. The paper measures a single-tag serialized taint at over 200
// bytes (§III-D-2) — which is exactly why the Taint Map exists: the blob
// travels to/from the Taint Map once, and only the fixed-width GlobalID
// rides with the data bytes.
//
// Wire layout (all integers big-endian):
//
//	uint16 tagCount
//	repeated tagCount times:
//	  uint16 len(Value)   bytes Value
//	  uint16 len(LocalID) bytes LocalID

var (
	// ErrTruncatedTaint is returned when a serialized taint blob ends
	// before the declared number of tags has been decoded.
	ErrTruncatedTaint = errors.New("taint: truncated serialized taint")
)

const maxTagStringLen = 1<<16 - 1

// MarshalTaint serializes the taint's tag set.
func MarshalTaint(t Taint) ([]byte, error) {
	keys := t.Keys()
	if len(keys) > maxTagStringLen {
		return nil, fmt.Errorf("taint: %d tags exceed wire limit", len(keys))
	}
	size := 2
	for _, k := range keys {
		if len(k.Value) > maxTagStringLen || len(k.LocalID) > maxTagStringLen {
			return nil, fmt.Errorf("taint: tag string exceeds %d bytes", maxTagStringLen)
		}
		size += 4 + len(k.Value) + len(k.LocalID)
	}
	out := make([]byte, 0, size)
	out = binary.BigEndian.AppendUint16(out, uint16(len(keys)))
	for _, k := range keys {
		out = binary.BigEndian.AppendUint16(out, uint16(len(k.Value)))
		out = append(out, k.Value...)
		out = binary.BigEndian.AppendUint16(out, uint16(len(k.LocalID)))
		out = append(out, k.LocalID...)
	}
	return out, nil
}

// UnmarshalTaint decodes a taint blob into the receiver tree, interning
// the tag path so repeated arrivals of the same taint share nodes.
func (tr *Tree) UnmarshalTaint(blob []byte) (Taint, error) {
	if len(blob) < 2 {
		return Taint{}, ErrTruncatedTaint
	}
	count := int(binary.BigEndian.Uint16(blob))
	blob = blob[2:]
	keys := make([]TagKey, 0, count)
	for i := 0; i < count; i++ {
		value, rest, err := readString(blob)
		if err != nil {
			return Taint{}, err
		}
		localID, rest2, err := readString(rest)
		if err != nil {
			return Taint{}, err
		}
		blob = rest2
		keys = append(keys, TagKey{Value: value, LocalID: localID})
	}
	if len(blob) != 0 {
		return Taint{}, fmt.Errorf("taint: %d trailing bytes after taint blob", len(blob))
	}
	return tr.FromKeys(keys), nil
}

func readString(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, ErrTruncatedTaint
	}
	n := int(binary.BigEndian.Uint16(b))
	if len(b) < 2+n {
		return "", nil, ErrTruncatedTaint
	}
	return string(b[2 : 2+n]), b[2+n:], nil
}
