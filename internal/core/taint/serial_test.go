package taint

import (
	"testing"
	"testing/quick"
)

func TestMarshalEmptyTaint(t *testing.T) {
	blob, err := MarshalTaint(Taint{})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTree()
	got, err := tr.UnmarshalTaint(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Empty() {
		t.Fatalf("round trip of empty taint = %v", got)
	}
}

func TestMarshalRoundTripAcrossTrees(t *testing.T) {
	sender := NewTree()
	a := sender.NewSource("a_tag", "10.0.0.1:100")
	b := sender.NewSource("b_tag", "10.0.0.1:100")
	ab := Combine(a, b)

	blob, err := MarshalTaint(ab)
	if err != nil {
		t.Fatal(err)
	}
	receiver := NewTree()
	got, err := receiver.UnmarshalTaint(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !SameSet(got, ab) {
		t.Fatalf("decoded %v, want same set as %v", got, ab)
	}
	if got.Tree() != receiver {
		t.Fatal("decoded taint must live in the receiver's tree")
	}
}

func TestUnmarshalInternsRepeatedArrivals(t *testing.T) {
	sender := NewTree()
	blob, err := MarshalTaint(Combine(sender.NewSource("x", "l"), sender.NewSource("y", "l")))
	if err != nil {
		t.Fatal(err)
	}
	receiver := NewTree()
	t1, err := receiver.UnmarshalTaint(blob)
	if err != nil {
		t.Fatal(err)
	}
	before := receiver.NodeCount()
	t2, err := receiver.UnmarshalTaint(blob)
	if err != nil {
		t.Fatal(err)
	}
	if t1.n != t2.n {
		t.Fatal("repeated decode must intern to the same node")
	}
	if receiver.NodeCount() != before {
		t.Fatal("repeated decode must not grow the tree")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	tr := NewTree()
	cases := []struct {
		name string
		blob []byte
	}{
		{name: "empty blob", blob: nil},
		{name: "count with no tags", blob: []byte{0, 1}},
		{name: "truncated value", blob: []byte{0, 1, 0, 5, 'a'}},
		{name: "missing local id", blob: []byte{0, 1, 0, 1, 'a'}},
		{name: "trailing garbage", blob: []byte{0, 0, 0xff}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := tr.UnmarshalTaint(tt.blob); err == nil {
				t.Fatalf("want error for %q", tt.name)
			}
		})
	}
}

func TestSerializedTaintIsLarge(t *testing.T) {
	// Sanity check on the paper's motivation (§III-D-2): a realistic
	// single-tag taint blob with descriptor-style tag values is tens to
	// hundreds of bytes, so shipping it per byte would be ruinous.
	tr := NewTree()
	tag := tr.NewSource(
		"org.apache.zookeeper.server.quorum.FastLeaderElection$Notification.vote",
		"192.168.10.21:28841",
	)
	blob, err := MarshalTaint(tag)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) < 50 {
		t.Fatalf("expected a realistically large blob, got %d bytes", len(blob))
	}
}

func TestQuickMarshalRoundTrip(t *testing.T) {
	f := func(vals []string, locs []string) bool {
		sender := NewTree()
		acc := Taint{}
		for i, v := range vals {
			loc := "l"
			if len(locs) > 0 {
				loc = locs[i%len(locs)]
			}
			if len(v) > 1000 || len(loc) > 1000 {
				continue
			}
			acc = Combine(acc, sender.NewSource(v, loc))
		}
		blob, err := MarshalTaint(acc)
		if err != nil {
			return false
		}
		got, err := NewTree().UnmarshalTaint(blob)
		if err != nil {
			return false
		}
		return SameSet(got, acc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
