package taint

import "sync/atomic"

// Run-based shadow labels.
//
// The dense one-Taint-per-byte shadow array charged every tracked byte a
// pointer of storage and a Combine on every TaintAll/Union — yet real
// messages almost always carry long runs of a single taint (a whole
// message text shares one label). The shadow store therefore keeps
// labels as (endOffset, Taint) intervals, so whole-buffer operations
// cost O(runs) instead of O(bytes).
//
// Homogeneous data is the fast path, but adversarially fragmented
// labels (alternating taints on neighbouring bytes) would turn every
// run operation into an O(runs) splice and every lookup into a binary
// search over thousands of intervals. When fragmentation crosses
// denseCutoff the store falls back to the classic dense array, whose
// per-byte reads and writes are O(1). The two representations are an
// internal detail behind the Bytes API; a store never has both at once.

// labelRun is one maximal interval of bytes sharing a single label.
// The run covers [start, end) where start is the previous run's end
// (0 for the first run). Empty labels are stored normalized as the
// zero Taint so runs can be merged by == comparison.
type labelRun struct {
	end int
	t   Taint
}

// denseCutoff: switch to the dense representation when the run list
// grows beyond max(denseMinRuns, coverage>>denseCutoffShift) — i.e.
// when the average run is shorter than 8 bytes the run bookkeeping
// costs more than it saves.
const (
	denseCutoffShift = 3
	denseMinRuns     = 16
)

// shadow is the per-byte label store shared by every Bytes view sliced
// from the same allocation. Offsets are absolute within the store, so
// overlapping views alias labels exactly as overlapping sub-slices of
// the old dense array did.
type shadow struct {
	runs  []labelRun // run mode: sorted by end, covering [0, cov)
	dense []Taint    // dense mode when non-nil; runs is unused then

	// mut counts label mutations; it keys the cleanliness memo below.
	// Mutators hold exclusive access to the store by the Bytes
	// concurrency contract, so a plain counter suffices.
	mut uint64
	// clean memoizes "every label in the store is empty", packed as
	// (mut+1)<<1 | dirtyBit so the zero value is never a valid entry.
	// It is an atomic because concurrent *readers* are allowed and the
	// memo is (re)written on the read path.
	clean atomic.Uint64
	// stats memoizes the whole-extent RunStats answer (see stats.go),
	// keyed by mut the same way; stale entries are rejected, not erased.
	stats atomic.Pointer[shadowStats]
}

// newShadow returns a run-mode store covering n untainted bytes.
func newShadow(n int) *shadow {
	return &shadow{runs: []labelRun{{end: n}}}
}

// isClean reports whether every label in the store is empty, memoized
// per mutation epoch: after the first scan it is an O(1) load until the
// next label write. This is the whole-store half of the clean-path
// gate; Bytes.Clean adds the ranged fallback for views of dirty stores.
func (s *shadow) isClean() bool {
	m := s.mut
	if c := s.clean.Load(); c>>1 == m+1 {
		return c&1 == 0
	}
	v := true
	if s.dense != nil {
		for _, t := range s.dense {
			if t != (Taint{}) {
				v = false
				break
			}
		}
	} else {
		for _, r := range s.runs {
			if r.t != (Taint{}) {
				v = false
				break
			}
		}
	}
	word := (m + 1) << 1
	if !v {
		word |= 1
	}
	s.clean.Store(word)
	return v
}

// reset clears every label in O(1), reusing the run array, and leaves
// coverage at exactly n. The pooling primitive behind Bytes.ResetLabels.
func (s *shadow) reset(n int) {
	s.dense = nil
	if cap(s.runs) > 0 {
		s.runs = append(s.runs[:0], labelRun{end: n})
	} else {
		s.runs = []labelRun{{end: n}}
	}
	s.mut++
	s.clean.Store((s.mut + 1) << 1) // known clean at the new epoch
}

// norm maps every empty taint to the canonical zero Taint so run labels
// compare with ==.
func norm(t Taint) Taint {
	if t.Empty() {
		return Taint{}
	}
	return t
}

// cov returns the store's covered extent.
func (s *shadow) cov() int {
	if s.dense != nil {
		return len(s.dense)
	}
	if len(s.runs) == 0 {
		return 0
	}
	return s.runs[len(s.runs)-1].end
}

// grow extends coverage to at least n with untainted bytes.
func (s *shadow) grow(n int) {
	if s.dense != nil {
		for len(s.dense) < n {
			s.dense = append(s.dense, Taint{})
		}
		return
	}
	c := s.cov()
	if n <= c {
		return
	}
	if last := len(s.runs) - 1; last >= 0 && s.runs[last].t == (Taint{}) {
		s.runs[last].end = n
		return
	}
	s.runs = append(s.runs, labelRun{end: n})
}

// locate returns the index of the run containing pos: the first run
// with end > pos, or len(runs) when pos is beyond coverage.
func (s *shadow) locate(pos int) int {
	lo, hi := 0, len(s.runs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.runs[mid].end <= pos {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// at returns the label of byte pos (empty beyond coverage).
func (s *shadow) at(pos int) Taint {
	if s.dense != nil {
		if pos < len(s.dense) {
			return s.dense[pos]
		}
		return Taint{}
	}
	if len(s.runs) == 1 { // uniform fast path
		if pos < s.runs[0].end {
			return s.runs[0].t
		}
		return Taint{}
	}
	if i := s.locate(pos); i < len(s.runs) {
		return s.runs[i].t
	}
	return Taint{}
}

// runStart returns the start offset of run i.
func (s *shadow) runStart(i int) int {
	if i == 0 {
		return 0
	}
	return s.runs[i-1].end
}

// splice replaces runs[i:j] with segs, reusing the backing array when it
// has room. segs must keep the end-sorted invariant with its neighbours.
func (s *shadow) splice(i, j int, segs []labelRun) {
	old := s.runs
	n := len(old) - (j - i) + len(segs)
	if n <= cap(old) {
		tail := old[j:]
		s.runs = old[:n]
		copy(s.runs[i+len(segs):], tail)
		copy(s.runs[i:], segs)
		return
	}
	grown := make([]labelRun, n, n+n/2+4)
	copy(grown, old[:i])
	copy(grown[i:], segs)
	copy(grown[i+len(segs):], old[j:])
	s.runs = grown
}

// maybeDensify converts to the dense representation when the run list
// is too fragmented for interval bookkeeping to pay off.
func (s *shadow) maybeDensify() {
	if s.dense != nil || len(s.runs) <= denseMinRuns {
		return
	}
	c := s.cov()
	if len(s.runs) <= c>>denseCutoffShift {
		return
	}
	dense := make([]Taint, c)
	start := 0
	for _, r := range s.runs {
		if r.t != (Taint{}) {
			for i := start; i < r.end; i++ {
				dense[i] = r.t
			}
		}
		start = r.end
	}
	s.dense = dense
	s.runs = nil
}

// setRange overwrites the labels of [from, to) with t, extending
// coverage as needed.
func (s *shadow) setRange(from, to int, t Taint) {
	if from >= to {
		return
	}
	t = norm(t)
	s.grow(to)
	if s.dense != nil {
		s.mut++
		for i := from; i < to; i++ {
			s.dense[i] = t
		}
		return
	}
	i := s.locate(from)
	j := s.locate(to - 1)
	if i == j && s.runs[i].t == t { // already uniform with t
		return
	}
	s.mut++
	var seg [3]labelRun
	k := 0
	if start := s.runStart(i); start < from {
		if s.runs[i].t == t {
			// merge left partial into the new run
		} else {
			seg[k] = labelRun{end: from, t: s.runs[i].t}
			k++
		}
	} else if i > 0 && s.runs[i-1].t == t {
		// absorb the equal left neighbour
		i--
	}
	seg[k] = labelRun{end: to, t: t}
	k++
	if s.runs[j].end > to {
		if s.runs[j].t == t {
			seg[k-1].end = s.runs[j].end
		} else {
			seg[k] = labelRun{end: s.runs[j].end, t: s.runs[j].t}
			k++
		}
	} else if j+1 < len(s.runs) && s.runs[j+1].t == t {
		// absorb the equal right neighbour
		seg[k-1].end = s.runs[j+1].end
		j++
	}
	s.splice(i, j+1, seg[:k])
	s.maybeDensify()
}

// combineRange unions t into the labels of [from, to).
func (s *shadow) combineRange(from, to int, t Taint) {
	if from >= to || t.Empty() {
		return
	}
	s.grow(to)
	if s.dense != nil {
		s.mut++
		for i := from; i < to; i++ {
			s.dense[i] = Combine(s.dense[i], t)
		}
		return
	}
	i := s.locate(from)
	j := s.locate(to - 1)
	if i == j { // single-run fast path: one Combine for the whole range
		if c := norm(Combine(s.runs[i].t, t)); c != s.runs[i].t {
			s.setRange(from, to, c)
		}
		return
	}
	s.mut++
	var stack [8]labelRun
	segs := stack[:0]
	push := func(end int, t Taint) {
		if n := len(segs); n > 0 && segs[n-1].t == t {
			segs[n-1].end = end
			return
		}
		segs = append(segs, labelRun{end: end, t: t})
	}
	if start := s.runStart(i); start < from {
		push(from, s.runs[i].t)
	}
	for k := i; k <= j; k++ {
		end := s.runs[k].end
		if end > to {
			end = to
		}
		push(end, norm(Combine(s.runs[k].t, t)))
	}
	if s.runs[j].end > to {
		push(s.runs[j].end, s.runs[j].t)
	}
	if i > 0 && len(segs) > 0 && s.runs[i-1].t == segs[0].t {
		i--
	}
	if j+1 < len(s.runs) && len(segs) > 0 && s.runs[j+1].t == segs[len(segs)-1].t {
		segs[len(segs)-1].end = s.runs[j+1].end
		j++
	}
	s.splice(i, j+1, segs)
	s.maybeDensify()
}

// forEach yields the maximal label runs covering [from, to) in order,
// including untainted gaps, as window-relative [rfrom, rto) offsets
// shifted by -from.
func (s *shadow) forEach(from, to int, yield func(rfrom, rto int, t Taint)) {
	if from >= to {
		return
	}
	if s.dense != nil {
		c := len(s.dense)
		start := from
		var cur Taint
		if from < c {
			cur = s.dense[from]
		}
		for i := from + 1; i < to; i++ {
			var t Taint
			if i < c {
				t = s.dense[i]
			}
			if t != cur {
				yield(start-from, i-from, cur)
				start, cur = i, t
			}
		}
		yield(start-from, to-from, cur)
		return
	}
	i := s.locate(from)
	pos := from
	for pos < to {
		if i >= len(s.runs) { // beyond coverage: one untainted tail run
			yield(pos-from, to-from, Taint{})
			return
		}
		end := s.runs[i].end
		if end > to {
			end = to
		}
		yield(pos-from, end-from, s.runs[i].t)
		pos = end
		i++
	}
}

// union combines every distinct label in [from, to).
func (s *shadow) union(from, to int) Taint {
	var acc Taint
	if s.dense != nil {
		if to > len(s.dense) {
			to = len(s.dense)
		}
		var last Taint
		for i := from; i < to; i++ {
			if t := s.dense[i]; t != last {
				acc = Combine(acc, t)
				last = t
			}
		}
		return acc
	}
	for i := s.locate(from); i < len(s.runs); i++ {
		if s.runStart(i) >= to {
			break
		}
		acc = Combine(acc, s.runs[i].t)
	}
	return acc
}

// uniform reports whether every byte of [from, to) carries the same
// label, returning it when so.
func (s *shadow) uniform(from, to int) (Taint, bool) {
	if from >= to {
		return Taint{}, true
	}
	if s.dense != nil {
		if from >= len(s.dense) {
			return Taint{}, true
		}
		t := s.dense[from]
		hi := to
		if hi > len(s.dense) {
			if t != (Taint{}) {
				return Taint{}, false
			}
			hi = len(s.dense)
		}
		for i := from + 1; i < hi; i++ {
			if s.dense[i] != t {
				return Taint{}, false
			}
		}
		return t, true
	}
	i := s.locate(from)
	if i >= len(s.runs) {
		return Taint{}, true
	}
	if s.runs[i].end >= to {
		return s.runs[i].t, true
	}
	if s.runs[i].t == (Taint{}) && i == len(s.runs)-1 {
		// covered prefix untainted, rest beyond coverage
		return Taint{}, true
	}
	return Taint{}, false
}

// window returns the runs covering [from, to) as a fresh slice with
// ends rebased to from. Used to snapshot a source window before
// mutating an aliased destination.
func (s *shadow) window(from, to int) []labelRun {
	out := make([]labelRun, 0, 8)
	s.forEach(from, to, func(rfrom, rto int, t Taint) {
		out = append(out, labelRun{end: rto, t: t})
	})
	return out
}

// runCount returns the number of maximal runs covering [from, to).
func (s *shadow) runCount(from, to int) int {
	n := 0
	s.forEach(from, to, func(int, int, Taint) { n++ })
	return n
}
