package taint

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// denseModel is the reference implementation the run-based shadow store
// must agree with: one label per byte, exactly the old representation.
type denseModel []Taint

func (m denseModel) at(i int) Taint {
	if i < len(m) {
		return m[i]
	}
	return Taint{}
}

// checkAgainstModel asserts b's labels equal the model byte-for-byte.
func checkAgainstModel(t *testing.T, b Bytes, m denseModel, ctx string) {
	t.Helper()
	for i := 0; i < b.Len(); i++ {
		if got, want := b.LabelAt(i), norm(m.at(i)); got != want {
			t.Fatalf("%s: byte %d label = %v, want %v", ctx, i, got, want)
		}
	}
}

// TestShadowMatchesDenseModel drives random SetRange/TaintRange/SetLabel
// sequences through both representations and checks every byte, run
// iteration, union and uniformity after each step — including after the
// store densifies under fragmentation.
func TestShadowMatchesDenseModel(t *testing.T) {
	tr := NewTree()
	tags := make([]Taint, 5)
	for i := range tags {
		tags[i] = tr.NewSource(string(rune('a'+i)), "l")
	}
	rng := rand.New(rand.NewSource(42))
	const size = 257
	for iter := 0; iter < 50; iter++ {
		b := MakeBytes(size)
		model := make(denseModel, size)
		for op := 0; op < 200; op++ {
			from := rng.Intn(size)
			to := from + rng.Intn(size-from)
			var tag Taint
			if rng.Intn(4) > 0 {
				tag = tags[rng.Intn(len(tags))]
			}
			switch rng.Intn(3) {
			case 0:
				b.SetRange(from, to, tag)
				for i := from; i < to; i++ {
					model[i] = norm(tag)
				}
			case 1:
				b.TaintRange(from, to, tag)
				for i := from; i < to; i++ {
					model[i] = norm(Combine(model[i], tag))
				}
			case 2:
				if from < size {
					b.SetLabel(from, tag)
					model[from] = norm(tag)
				}
			}
		}
		checkAgainstModel(t, b, model, "random ops")

		// Run iteration must cover [0,size) exactly, in order, with
		// maximal runs matching the model.
		pos := 0
		b.ForEachRun(func(rf, rt int, tag Taint) {
			if rf != pos || rt <= rf {
				t.Fatalf("run [%d,%d) does not continue from %d", rf, rt, pos)
			}
			for i := rf; i < rt; i++ {
				if model.at(i) != tag {
					t.Fatalf("run [%d,%d)=%v disagrees with model at %d", rf, rt, tag, i)
				}
			}
			pos = rt
		})
		if pos != size {
			t.Fatalf("runs cover %d of %d bytes", pos, size)
		}

		var wantUnion Taint
		for _, l := range model {
			wantUnion = Combine(wantUnion, l)
		}
		if got := b.Union(); !SameSet(got, wantUnion) {
			t.Fatalf("union = %v, want %v", got, wantUnion)
		}
		if u, ok := b.Uniform(); ok {
			for i := range model {
				if norm(model.at(i)) != u {
					t.Fatalf("claimed uniform %v but model[%d]=%v", u, i, model[i])
				}
			}
		}
	}
}

// TestSliceAliasingContract pins the slice-semantics contract: label
// writes through an overlapping sub-slice view are visible to the
// parent and to sibling views, exactly like sub-slicing the old dense
// array.
func TestSliceAliasingContract(t *testing.T) {
	tr := NewTree()
	x := tr.NewSource("x", "l")
	y := tr.NewSource("y", "l")

	b := MakeBytes(16)
	mid := b.Slice(4, 12)
	mid.SetRange(0, 4, x) // bytes 4..8 of b
	if !b.LabelAt(4).Has("x") || !b.LabelAt(7).Has("x") || b.LabelAt(8).Has("x") {
		t.Fatal("sub-slice writes must be visible to the parent")
	}
	sib := b.Slice(6, 10)
	if !sib.LabelAt(0).Has("x") {
		t.Fatal("sibling views must see aliased labels")
	}
	sib.SetLabel(0, y) // byte 6 of b
	if !mid.LabelAt(2).Has("y") {
		t.Fatal("parent-path views must see sibling writes")
	}

	// A sub-slice of a shadow-free Bytes gets its own store on first
	// taint; the parent stays untouched (the dense representation
	// behaved the same: no shadow array to alias).
	lazy := WrapBytes(make([]byte, 8))
	sub := lazy.Slice(2, 6)
	sub.SetLabel(0, x)
	if lazy.HasShadow() {
		t.Fatal("tainting a detached sub-slice must not materialize the parent's shadow")
	}
	if !sub.LabelAt(0).Has("x") {
		t.Fatal("detached sub-slice must keep its own labels")
	}
}

// TestAppendAliasing pins Append's storage-reuse rule: when the
// receiver owns its shadow store's whole extent the result extends that
// store in place (so receiver views alias the prefix); otherwise the
// result gets an independent store.
func TestAppendAliasing(t *testing.T) {
	tr := NewTree()
	x := tr.NewSource("x", "l")
	y := tr.NewSource("y", "l")

	// Receiver owns its whole store: the result aliases it.
	a := MakeBytes(4)
	out := a.Append(FromString("zz", y))
	out.SetRange(0, 2, x)
	if !a.LabelAt(0).Has("x") {
		t.Fatal("whole-extent append must reuse the receiver's store")
	}
	if !out.LabelAt(4).Has("y") || out.LabelAt(3).Has("y") {
		t.Fatal("appended labels must land after the receiver's bytes")
	}

	// A sub-slice receiver must NOT leak writes past its window: the
	// result gets an independent store.
	base := MakeBytes(8)
	subApp := base.Slice(2, 5).Append(FromString("q", y))
	subApp.SetRange(0, 3, x)
	if base.LabelAt(2).Has("x") || base.LabelAt(5).Has("y") {
		t.Fatal("sub-slice append must not write through to the base store")
	}

	// Self-append snapshots the source window before extending.
	s := FromString("ab", x)
	dup := s.Append(s)
	for i := 0; i < 4; i++ {
		if !dup.LabelAt(i).Has("x") {
			t.Fatalf("self-append byte %d lost its label", i)
		}
	}
}

// TestCopyIntoOverlappingViews pins CopyInto over two overlapping views
// of one store (the ByteBuffer.Compact pattern): the source window must
// be snapshotted, not read while being overwritten.
func TestCopyIntoOverlappingViews(t *testing.T) {
	tr := NewTree()
	x := tr.NewSource("x", "l")
	y := tr.NewSource("y", "l")

	b := MakeBytes(8)
	copy(b.Data, "01234567")
	b.SetRange(4, 6, x)
	b.SetRange(6, 8, y)
	rest := b.Slice(4, 8)
	if n := rest.CopyInto(&b, 0); n != 4 {
		t.Fatalf("copied %d", n)
	}
	if string(b.Data[:4]) != "4567" {
		t.Fatalf("data = %q", b.Data[:4])
	}
	if !b.LabelAt(0).Has("x") || !b.LabelAt(1).Has("x") || !b.LabelAt(2).Has("y") || !b.LabelAt(3).Has("y") {
		t.Fatal("compacted labels must match the pre-copy source window")
	}
}

// TestQuickSliceCopyIntoMatchesDense quick-checks CopyInto between
// random windows against the dense model.
func TestQuickSliceCopyIntoMatchesDense(t *testing.T) {
	tr := NewTree()
	x := tr.NewSource("x", "l")
	y := tr.NewSource("y", "l")
	f := func(srcTaintEven bool, off uint8) bool {
		size := 32
		offset := int(off) % 16
		src := MakeBytes(8)
		model := make(denseModel, size)
		for i := 0; i < 8; i++ {
			if (i%2 == 0) == srcTaintEven {
				src.SetLabel(i, x)
			}
		}
		dst := MakeBytes(size)
		dst.TaintAll(y)
		for i := range model {
			model[i] = y
		}
		n := src.CopyInto(&dst, offset)
		for i := 0; i < n; i++ {
			model[offset+i] = norm(src.LabelAt(i))
		}
		for i := 0; i < size; i++ {
			if dst.LabelAt(i) != norm(model.at(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestDensifyUnderFragmentation checks the adaptive fallback: per-byte
// alternating labels must flip the store into dense mode and stay
// correct, and a whole-buffer overwrite must still work afterwards.
func TestDensifyUnderFragmentation(t *testing.T) {
	tr := NewTree()
	t1 := tr.NewSource("t1", "l")
	t2 := tr.NewSource("t2", "l")
	const n = 1024
	b := MakeBytes(n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			b.SetLabel(i, t1)
		} else {
			b.SetLabel(i, t2)
		}
	}
	if b.sh.dense == nil {
		t.Fatal("alternating per-byte labels must densify the store")
	}
	for i := 0; i < n; i++ {
		want := t1
		if i%2 == 1 {
			want = t2
		}
		if b.LabelAt(i) != want {
			t.Fatalf("dense byte %d = %v", i, b.LabelAt(i))
		}
	}
	if b.RunCount() != n {
		t.Fatalf("run count = %d, want %d", b.RunCount(), n)
	}
	b.SetRange(0, n, t1)
	if u, ok := b.Uniform(); !ok || u != t1 {
		t.Fatalf("uniform after overwrite = %v/%v", u, ok)
	}
}

// TestUniformFastPaths checks the O(runs) claims observable through the
// API: a uniform buffer is one run regardless of length.
func TestUniformFastPaths(t *testing.T) {
	tr := NewTree()
	u := tr.NewSource("u", "l")
	b := MakeBytes(1 << 16)
	b.TaintAll(u)
	if b.RunCount() != 1 {
		t.Fatalf("uniform 64 KiB buffer has %d runs, want 1", b.RunCount())
	}
	if got, ok := b.Uniform(); !ok || got != u {
		t.Fatalf("Uniform() = %v/%v", got, ok)
	}
	v := tr.NewSource("v", "l")
	b.TaintAll(v)
	if b.RunCount() != 1 {
		t.Fatalf("second TaintAll fragments the store: %d runs", b.RunCount())
	}
	if got := b.Union(); !got.Has("u") || !got.Has("v") {
		t.Fatalf("union = %v", got)
	}
}
