package taint

// Run statistics for the wire tiering engine (DESIGN.md §9).
//
// The adaptive endpoint classifies every outgoing buffer into a wire
// tier (passthrough / uniform / sparse / groups) from three numbers:
// how many bytes are dirty, how many maximal dirty runs they form, and
// whether all of them share one label. Computing those by rescanning
// the run list on every write would charge the hot path O(runs) per
// send even when nothing changed, so whole-extent answers are memoized
// on the shadow store keyed by its mutation epoch — the same trick as
// the Clean() memo — making the steady state (write the same pooled
// buffer over and over) an O(1) pointer load.

// RunStats summarizes the dirty structure of a Bytes window.
type RunStats struct {
	DirtyBytes int   // total tainted bytes
	DirtyRuns  int   // maximal tainted runs
	One        Taint // the single shared dirty label; zero unless every dirty run carries it
}

// Uniform reports whether the window is wholly covered by one non-empty
// label (the 'U' wire-tier precondition) for a window of n bytes.
func (st RunStats) Uniform(n int) bool {
	return n > 0 && st.DirtyBytes == n && st.DirtyRuns == 1 && !st.One.Empty()
}

// shadowStats is one memoized whole-extent Stats answer.
type shadowStats struct {
	epoch uint64 // shadow.mut at computation time
	st    RunStats
	exact bool // scan ran to completion (vs. aborted at limit)
	limit int  // the dirty-run limit the scan was given
}

// Stats aggregates the dirty structure of b, scanning at most limit+1
// dirty runs. The second result is false when the scan aborted early;
// the counts are then lower bounds and One is zero — callers treat an
// inexact answer as "too fragmented, use the dense tier". A clean or
// shadow-free Bytes answers {0,0,zero}, true without scanning.
//
// Whole-extent answers are memoized per mutation epoch, so repeated
// Stats calls on an unmutated buffer are O(1). Like Clean, the memo is
// refreshed with an atomic store and is safe under concurrent readers.
func (b Bytes) Stats(limit int) (RunStats, bool) {
	sh := b.sh
	if sh == nil || len(b.Data) == 0 || sh.isClean() {
		return RunStats{}, true
	}
	whole := b.off == 0 && sh.cov() <= len(b.Data)
	m := sh.mut
	if whole {
		if memo := sh.stats.Load(); memo != nil && memo.epoch == m &&
			(memo.exact || limit <= memo.limit) {
			return memo.st, memo.exact
		}
	}
	st, exact := sh.runStats(b.off, b.off+len(b.Data), limit)
	if whole {
		sh.stats.Store(&shadowStats{epoch: m, st: st, exact: exact, limit: limit})
	}
	return st, exact
}

// ForEachDirtyRun yields only the tainted runs of b in order, skipping
// clean gaps — the range extraction behind the sparse wire tier. A
// clean or shadow-free Bytes yields nothing.
func (b Bytes) ForEachDirtyRun(yield func(from, to int, t Taint)) {
	if b.sh == nil || len(b.Data) == 0 || b.sh.isClean() {
		return
	}
	b.sh.forEach(b.off, b.off+len(b.Data), func(from, to int, t Taint) {
		if t != (Taint{}) {
			yield(from, to, t)
		}
	})
}

// runStats scans [from, to) aggregating dirty bytes, dirty-run count
// and the shared label, aborting once more than limit dirty runs have
// been seen (exact=false; One is zero then).
func (s *shadow) runStats(from, to, limit int) (st RunStats, exact bool) {
	oneOK := true
	if s.dense != nil {
		c := len(s.dense)
		if to < c {
			c = to
		}
		for i := from; i < c; {
			t := s.dense[i]
			j := i + 1
			for j < c && s.dense[j] == t {
				j++
			}
			if t != (Taint{}) {
				if !st.accumulate(j-i, t, &oneOK, limit) {
					return st, false
				}
			}
			i = j
		}
		if !oneOK {
			st.One = Taint{}
		}
		return st, true
	}
	pos := from
	for i := s.locate(from); pos < to && i < len(s.runs); i++ {
		end := s.runs[i].end
		if end > to {
			end = to
		}
		if t := s.runs[i].t; t != (Taint{}) {
			if !st.accumulate(end-pos, t, &oneOK, limit) {
				return st, false
			}
		}
		pos = end
	}
	if !oneOK {
		st.One = Taint{}
	}
	return st, true
}

// accumulate folds one dirty run of n bytes with label t into st,
// reporting false once the dirty-run count exceeds limit.
func (st *RunStats) accumulate(n int, t Taint, oneOK *bool, limit int) bool {
	st.DirtyRuns++
	st.DirtyBytes += n
	if st.DirtyRuns == 1 {
		st.One = t
	} else if st.One != t {
		*oneOK = false
	}
	if st.DirtyRuns > limit {
		st.One = Taint{}
		return false
	}
	return true
}
