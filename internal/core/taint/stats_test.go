package taint

import "testing"

func statTaint(v string) Taint {
	return NewTree().NewSource("stat", v)
}

func TestStatsCleanAndShadowFree(t *testing.T) {
	b := WrapBytes(make([]byte, 64))
	st, exact := b.Stats(8)
	if !exact || st.DirtyBytes != 0 || st.DirtyRuns != 0 || !st.One.Empty() {
		t.Fatalf("shadow-free stats = %+v exact=%v", st, exact)
	}
	m := MakeBytes(64)
	if st, exact = m.Stats(8); !exact || st.DirtyRuns != 0 {
		t.Fatalf("clean shadowed stats = %+v exact=%v", st, exact)
	}
	var empty Bytes
	if st, exact = empty.Stats(8); !exact || st.DirtyRuns != 0 {
		t.Fatalf("empty stats = %+v exact=%v", st, exact)
	}
}

func TestStatsUniform(t *testing.T) {
	lbl := statTaint("u")
	b := MakeBytes(128)
	b.TaintAll(lbl)
	st, exact := b.Stats(8)
	if !exact {
		t.Fatal("uniform scan aborted")
	}
	if st.DirtyBytes != 128 || st.DirtyRuns != 1 || st.One != lbl {
		t.Fatalf("uniform stats = %+v", st)
	}
	if !st.Uniform(128) {
		t.Fatal("Uniform(128) = false")
	}
	if st.Uniform(129) {
		t.Fatal("Uniform(129) = true for a 128-dirty-byte window")
	}
}

func TestStatsSparseIslands(t *testing.T) {
	a, c := statTaint("a"), statTaint("c")
	b := MakeBytes(256)
	b.SetRange(10, 20, a)
	b.SetRange(100, 104, c)
	b.SetRange(200, 201, a)
	st, exact := b.Stats(8)
	if !exact {
		t.Fatal("sparse scan aborted")
	}
	if st.DirtyBytes != 15 || st.DirtyRuns != 3 {
		t.Fatalf("sparse stats = %+v", st)
	}
	if !st.One.Empty() {
		t.Fatalf("mixed labels must zero One, got %v", st.One)
	}
	// Same label everywhere keeps One set across separated islands.
	b2 := MakeBytes(64)
	b2.SetRange(0, 4, a)
	b2.SetRange(30, 34, a)
	if st, _ = b2.Stats(8); st.One != a || st.DirtyRuns != 2 {
		t.Fatalf("same-label islands stats = %+v", st)
	}
}

func TestStatsLimitAbort(t *testing.T) {
	lbl := statTaint("frag")
	b := MakeBytes(512)
	for i := 0; i < 512; i += 2 {
		b.SetLabel(i, lbl)
	}
	st, exact := b.Stats(8)
	if exact {
		t.Fatal("fragmented scan should abort at limit")
	}
	if st.DirtyRuns < 9 {
		t.Fatalf("aborted scan saw %d dirty runs, want > limit", st.DirtyRuns)
	}
	if !st.One.Empty() {
		t.Fatal("inexact stats must zero One")
	}
	// A larger limit on the same epoch must rescan, not reuse the
	// aborted memo.
	if st, exact = b.Stats(1024); !exact || st.DirtyRuns != 256 || st.DirtyBytes != 256 {
		t.Fatalf("full rescan stats = %+v exact=%v", st, exact)
	}
	// And now the exact memo serves smaller limits too.
	if st, exact = b.Stats(8); !exact || st.DirtyRuns != 256 {
		t.Fatalf("memoized exact stats = %+v exact=%v", st, exact)
	}
}

func TestStatsMemoInvalidation(t *testing.T) {
	lbl := statTaint("m")
	b := MakeBytes(64)
	b.SetRange(0, 8, lbl)
	if st, _ := b.Stats(8); st.DirtyBytes != 8 {
		t.Fatalf("pre-mutation stats = %+v", st)
	}
	b.SetRange(32, 40, lbl)
	st, exact := b.Stats(8)
	if !exact || st.DirtyBytes != 16 || st.DirtyRuns != 2 {
		t.Fatalf("post-mutation stats = %+v", st)
	}
	b.ResetLabels()
	if st, _ = b.Stats(8); st.DirtyBytes != 0 || st.DirtyRuns != 0 {
		t.Fatalf("post-reset stats = %+v", st)
	}
}

func TestStatsRangedView(t *testing.T) {
	lbl := statTaint("view")
	b := MakeBytes(128)
	b.SetRange(40, 60, lbl)
	// A view that excludes the dirty range is clean.
	if st, exact := b.Slice(0, 32).Stats(8); !exact || st.DirtyRuns != 0 {
		t.Fatalf("clean view stats = %+v", st)
	}
	// A view that clips it mid-run sees the clipped extent.
	st, exact := b.Slice(50, 128).Stats(8)
	if !exact || st.DirtyBytes != 10 || st.DirtyRuns != 1 || st.One != lbl {
		t.Fatalf("clipped view stats = %+v", st)
	}
}

func TestStatsDenseStore(t *testing.T) {
	lbl := statTaint("dense")
	b := MakeBytes(256)
	// Fragment enough to trip the dense fallback.
	for i := 0; i < 256; i += 2 {
		b.SetLabel(i, lbl)
	}
	if !b.HasShadow() {
		t.Fatal("no shadow")
	}
	st, exact := b.Stats(1024)
	if !exact || st.DirtyRuns != 128 || st.DirtyBytes != 128 || st.One != lbl {
		t.Fatalf("dense stats = %+v exact=%v", st, exact)
	}
	// Adjacent equal labels in dense mode still count as one run.
	b2 := MakeBytes(64)
	for i := 0; i < 64; i++ {
		b2.SetLabel(i, lbl) // densify via per-byte writes on a fragmented store
	}
	if st, _ := b2.Stats(8); st.DirtyRuns != 1 || st.DirtyBytes != 64 {
		t.Fatalf("merged dense stats = %+v", st)
	}
}

func TestForEachDirtyRun(t *testing.T) {
	a, c := statTaint("x"), statTaint("y")
	b := MakeBytes(100)
	b.SetRange(5, 10, a)
	b.SetRange(50, 70, c)
	type run struct {
		from, to int
		t        Taint
	}
	var got []run
	b.ForEachDirtyRun(func(from, to int, t Taint) {
		got = append(got, run{from, to, t})
	})
	want := []run{{5, 10, a}, {50, 70, c}}
	if len(got) != len(want) {
		t.Fatalf("got %d dirty runs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("run %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	clean := MakeBytes(32)
	clean.ForEachDirtyRun(func(int, int, Taint) { t.Fatal("dirty run on clean bytes") })
	WrapBytes(nil).ForEachDirtyRun(func(int, int, Taint) { t.Fatal("dirty run on nil bytes") })
}
