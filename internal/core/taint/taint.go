package taint

import (
	"sort"
	"strings"
)

// Taint is a (possibly empty) set of tags, stored as a reference into a
// Tree. The zero value is the empty taint, which carries no tags and is
// what untainted data has. Taint values are immutable and cheap to copy.
type Taint struct {
	n *node
}

// Empty reports whether the taint carries no tags.
func (t Taint) Empty() bool { return t.n == nil || t.n.parent == nil }

// Tree returns the tree this taint belongs to, or nil for the empty taint.
func (t Taint) Tree() *Tree {
	if t.n == nil {
		return nil
	}
	return t.n.tree
}

// NewSource creates a fresh source taint carrying a single tag. localID
// identifies the generating node ("ip:pid"); value is the user-chosen tag
// value (§II-B: "the value of the tag is set by developers").
func (tr *Tree) NewSource(value, localID string) Taint {
	return Taint{n: tr.root.child(TagKey{Value: value, LocalID: localID})}
}

// FromKeys builds (or finds) the taint with exactly the given tags,
// inserted in the order supplied. Duplicate keys are ignored.
func (tr *Tree) FromKeys(keys []TagKey) Taint {
	cur := tr.root
	for _, k := range keys {
		if cur.parent != nil && cur.contains(k) {
			continue
		}
		cur = cur.child(k)
	}
	if cur == tr.root {
		return Taint{}
	}
	return Taint{n: cur}
}

// Combine returns the union of the two taints (§II-B: "c_t = a_t ∪ b_t").
// Tags of b missing from a's path are appended below a's node, interned
// so repeated combinations reuse nodes. Combining with the empty taint
// returns the other taint unchanged; Combine(t, t) == t.
//
// Results are memoized per (a, b) node pair in a bounded cache on a's
// Tree, so repeated unions of the same operands skip the path walk —
// the common case when shadow runs combine the same labels over and
// over.
func Combine(a, b Taint) Taint {
	switch {
	case a.Empty():
		return b
	case b.Empty():
		return a
	case a.n == b.n:
		return a
	}
	tr := a.n.tree
	sameTree := b.n.tree == tr // ids are only unique within one tree
	if sameTree {
		if r, ok := tr.cachedCombine(a.n.id, b.n.id); ok {
			return r
		}
	}
	cur := a.n
	for _, k := range b.n.path() {
		if !cur.contains(k) {
			cur = cur.child(k)
		}
	}
	r := Taint{n: cur}
	if sameTree {
		tr.storeCombine(a.n.id, b.n.id, r)
	}
	return r
}

// CombineAll folds Combine over all the given taints.
func CombineAll(ts ...Taint) Taint {
	var acc Taint
	for _, t := range ts {
		acc = Combine(acc, t)
	}
	return acc
}

// Keys returns the tag set of the taint in root-first path order. The
// empty taint returns nil.
func (t Taint) Keys() []TagKey {
	if t.Empty() {
		return nil
	}
	return t.n.path()
}

// Values returns the user tag values of the taint, sorted, with
// duplicates (same value from different nodes) preserved as distinct
// entries only when their LocalIDs differ.
func (t Taint) Values() []string {
	keys := t.Keys()
	vals := make([]string, 0, len(keys))
	seen := make(map[TagKey]bool, len(keys))
	for _, k := range keys {
		if seen[k] {
			continue
		}
		seen[k] = true
		vals = append(vals, k.Value)
	}
	sort.Strings(vals)
	return vals
}

// Has reports whether the taint carries a tag with the given user value,
// regardless of which node generated it.
func (t Taint) Has(value string) bool {
	for cur := t.n; cur != nil && cur.parent != nil; cur = cur.parent {
		if cur.key.Value == value {
			return true
		}
	}
	return false
}

// HasKey reports whether the taint carries exactly the given tag key.
func (t Taint) HasKey(k TagKey) bool {
	return t.n != nil && t.n.contains(k)
}

// Len returns the number of tags in the taint's set.
func (t Taint) Len() int {
	if t.Empty() {
		return 0
	}
	// The path may contain no duplicates by construction (contains check
	// on every append), so depth equals the set size.
	return t.n.depth
}

// SameSet reports whether two taints carry the same tag set, even if
// they refer to different tree nodes (e.g. built in different orders).
func SameSet(a, b Taint) bool {
	if a.n == b.n {
		return true
	}
	ak, bk := a.Keys(), b.Keys()
	if len(ak) != len(bk) {
		return false
	}
	set := make(map[TagKey]bool, len(ak))
	for _, k := range ak {
		set[k] = true
	}
	for _, k := range bk {
		if !set[k] {
			return false
		}
	}
	return true
}

// GlobalID returns the Taint Map id assigned to this taint, or 0 if it
// has never been transferred between nodes (§III-D-1).
func (t Taint) GlobalID() uint32 {
	if t.Empty() {
		return 0
	}
	return t.n.globalID.Load()
}

// SetGlobalID records the Taint Map id for this taint. Setting it on the
// empty taint is a no-op; a second call overwrites (the Taint Map is the
// single allocator, so ids are stable in practice).
func (t Taint) SetGlobalID(id uint32) {
	if t.Empty() {
		return
	}
	t.n.globalID.Store(id)
}

// String renders the taint as "{v1@l1, v2@l2}".
func (t Taint) String() string {
	keys := t.Keys()
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
