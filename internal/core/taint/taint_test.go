package taint

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

func TestEmptyTaint(t *testing.T) {
	var empty Taint
	if !empty.Empty() {
		t.Fatal("zero Taint must be empty")
	}
	if got := empty.Keys(); got != nil {
		t.Fatalf("empty taint keys = %v, want nil", got)
	}
	if empty.Len() != 0 {
		t.Fatalf("empty taint len = %d", empty.Len())
	}
	if empty.Has("x") {
		t.Fatal("empty taint must not have any tag")
	}
	if empty.GlobalID() != 0 {
		t.Fatal("empty taint global id must be 0")
	}
	empty.SetGlobalID(7) // must be a no-op, not a panic
	if empty.GlobalID() != 0 {
		t.Fatal("SetGlobalID on empty taint must be ignored")
	}
}

func TestNewSourceAssignsDistinctTags(t *testing.T) {
	tr := NewTree()
	a := tr.NewSource("a_tag", "n1:1")
	b := tr.NewSource("b_tag", "n1:1")
	if a.Empty() || b.Empty() {
		t.Fatal("source taints must be non-empty")
	}
	if SameSet(a, b) {
		t.Fatal("distinct tags must produce distinct taints")
	}
	if !a.Has("a_tag") || a.Has("b_tag") {
		t.Fatalf("a = %v", a)
	}
}

func TestNewSourceInternsSameTag(t *testing.T) {
	tr := NewTree()
	a1 := tr.NewSource("a_tag", "n1:1")
	a2 := tr.NewSource("a_tag", "n1:1")
	if a1.n != a2.n {
		t.Fatal("same tag key must intern to the same tree node")
	}
}

// TestFigure2And3 reproduces the paper's running example: a and b are
// sources, c = a + b combines both tags, and the tree holds the
// <1,a_tag> -> <2,b_tag> chain.
func TestFigure2And3(t *testing.T) {
	tr := NewTree()
	at := tr.NewSource("a_tag", "node1:100")
	bt := tr.NewSource("b_tag", "node1:100")
	ct := Combine(at, bt)
	want := []string{"a_tag", "b_tag"}
	if got := ct.Values(); !reflect.DeepEqual(got, want) {
		t.Fatalf("c_t values = %v, want %v", got, want)
	}
	if ct.Len() != 2 {
		t.Fatalf("c_t len = %d, want 2", ct.Len())
	}
	// The combination node hangs below a_t's node.
	if ct.n.parent != at.n {
		t.Fatal("combined node must be a child of the left operand's node")
	}
}

func TestCombineWithEmpty(t *testing.T) {
	tr := NewTree()
	a := tr.NewSource("a", "l")
	if got := Combine(a, Taint{}); got.n != a.n {
		t.Fatal("Combine(a, empty) must return a")
	}
	if got := Combine(Taint{}, a); got.n != a.n {
		t.Fatal("Combine(empty, a) must return a")
	}
	if got := Combine(Taint{}, Taint{}); !got.Empty() {
		t.Fatal("Combine(empty, empty) must be empty")
	}
}

func TestCombineIdempotent(t *testing.T) {
	tr := NewTree()
	a := tr.NewSource("a", "l")
	b := tr.NewSource("b", "l")
	ab := Combine(a, b)
	if got := Combine(ab, ab); got.n != ab.n {
		t.Fatal("Combine(t, t) must return the same node")
	}
	if got := Combine(ab, a); got.n != ab.n {
		t.Fatal("Combine(ab, a) must not grow the set")
	}
	if got := Combine(ab, b); got.n != ab.n {
		t.Fatal("Combine(ab, b) must not grow the set")
	}
}

func TestCombineInterning(t *testing.T) {
	tr := NewTree()
	a := tr.NewSource("a", "l")
	b := tr.NewSource("b", "l")
	before := tr.NodeCount()
	ab1 := Combine(a, b)
	mid := tr.NodeCount()
	ab2 := Combine(a, b)
	after := tr.NodeCount()
	if ab1.n != ab2.n {
		t.Fatal("repeated combination must intern to one node")
	}
	if mid != before+1 || after != mid {
		t.Fatalf("node counts %d -> %d -> %d; second combine must allocate nothing", before, mid, after)
	}
}

func TestLocalIDDisambiguatesSameTagValue(t *testing.T) {
	tr := NewTree()
	fromN1 := tr.NewSource("a_tag", "10.0.0.1:4")
	fromN2 := tr.NewSource("a_tag", "10.0.0.2:9")
	if SameSet(fromN1, fromN2) {
		t.Fatal("same tag value from different nodes must remain distinct (LocalID)")
	}
	both := Combine(fromN1, fromN2)
	if both.Len() != 2 {
		t.Fatalf("union of conflicting tags must have 2 entries, got %d", both.Len())
	}
}

func TestSameSetOrderIndependent(t *testing.T) {
	tr := NewTree()
	a := tr.NewSource("a", "l")
	b := tr.NewSource("b", "l")
	c := tr.NewSource("c", "l")
	left := Combine(Combine(a, b), c)
	right := Combine(c, Combine(b, a))
	if !SameSet(left, right) {
		t.Fatalf("label sets must be order independent: %v vs %v", left, right)
	}
}

func TestFromKeysDedup(t *testing.T) {
	tr := NewTree()
	k := TagKey{Value: "v", LocalID: "l"}
	got := tr.FromKeys([]TagKey{k, k, k})
	if got.Len() != 1 {
		t.Fatalf("FromKeys with duplicates len = %d, want 1", got.Len())
	}
	if empty := tr.FromKeys(nil); !empty.Empty() {
		t.Fatal("FromKeys(nil) must be empty")
	}
}

func TestGlobalIDRoundTrip(t *testing.T) {
	tr := NewTree()
	a := tr.NewSource("a", "l")
	if a.GlobalID() != 0 {
		t.Fatal("fresh taint must have GlobalID 0 (set at generation, §III-D-1)")
	}
	a.SetGlobalID(42)
	if a.GlobalID() != 42 {
		t.Fatalf("GlobalID = %d, want 42", a.GlobalID())
	}
	// The id lives on the interned node, so another reference sees it.
	a2 := tr.NewSource("a", "l")
	if a2.GlobalID() != 42 {
		t.Fatal("interned taint must share its GlobalID")
	}
}

func TestTaintStringFormat(t *testing.T) {
	tr := NewTree()
	a := tr.NewSource("a", "n:1")
	if got, want := a.String(), "{a@n:1}"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	if got, want := (Taint{}).String(), "{}"; got != want {
		t.Fatalf("empty String() = %q, want %q", got, want)
	}
}

func TestConcurrentCombine(t *testing.T) {
	tr := NewTree()
	tags := make([]Taint, 16)
	for i := range tags {
		tags[i] = tr.NewSource(string(rune('a'+i)), "l")
	}
	var wg sync.WaitGroup
	results := make([]Taint, 64)
	for g := 0; g < 64; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			acc := Taint{}
			for i := 0; i < 100; i++ {
				acc = Combine(acc, tags[rng.Intn(len(tags))])
			}
			results[g] = acc
		}(g)
	}
	wg.Wait()
	for g, r := range results {
		for _, k := range r.Keys() {
			if k.LocalID != "l" {
				t.Fatalf("goroutine %d produced corrupted key %v", g, k)
			}
		}
	}
}

// ---- property-based tests (testing/quick) ----

// genTaint builds a taint from a bounded random tag-index multiset.
func genTaint(tr *Tree, idxs []uint8) Taint {
	acc := Taint{}
	for _, i := range idxs {
		acc = Combine(acc, tr.NewSource(string(rune('a'+int(i%12))), "l"))
	}
	return acc
}

func keySet(t Taint) map[TagKey]bool {
	m := make(map[TagKey]bool)
	for _, k := range t.Keys() {
		m[k] = true
	}
	return m
}

func TestQuickCombineIsSetUnion(t *testing.T) {
	tr := NewTree()
	f := func(ai, bi []uint8) bool {
		a, b := genTaint(tr, ai), genTaint(tr, bi)
		got := keySet(Combine(a, b))
		want := keySet(a)
		for k := range keySet(b) {
			want[k] = true
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCombineCommutativeAsSets(t *testing.T) {
	tr := NewTree()
	f := func(ai, bi []uint8) bool {
		a, b := genTaint(tr, ai), genTaint(tr, bi)
		return SameSet(Combine(a, b), Combine(b, a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCombineAssociativeAsSets(t *testing.T) {
	tr := NewTree()
	f := func(ai, bi, ci []uint8) bool {
		a, b, c := genTaint(tr, ai), genTaint(tr, bi), genTaint(tr, ci)
		return SameSet(Combine(Combine(a, b), c), Combine(a, Combine(b, c)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCombineIdempotent(t *testing.T) {
	tr := NewTree()
	f := func(ai []uint8) bool {
		a := genTaint(tr, ai)
		return Combine(a, a).n == a.n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPathHasNoDuplicates(t *testing.T) {
	tr := NewTree()
	f := func(ai, bi []uint8) bool {
		a := Combine(genTaint(tr, ai), genTaint(tr, bi))
		keys := a.Keys()
		seen := make(map[TagKey]bool, len(keys))
		for _, k := range keys {
			if seen[k] {
				return false
			}
			seen[k] = true
		}
		return a.Len() == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
