// Package taint implements DisTA's taint storage: the Phosphor-style
// singleton tag tree (DSN'22 §II-B) extended with DisTA's quad tags
// <ID, Tag, LocalID, GlobalID> (§III-D-1), taints as references into the
// tree, taint combination, shadow label arrays and tainted value wrappers.
//
// A Taint is a set of tags represented as a node in a per-process Tree;
// the set is the list of tags on the path from the root to that node.
// Combining two taints appends the missing tags of one path under the
// other, interning nodes so that equal extensions share storage — the
// memory-saving property the paper attributes to Phosphor.
package taint

import (
	"fmt"
	"sync"
)

// TagKey identifies a source tag uniquely across the whole cluster: the
// user-chosen tag value plus the LocalID (ip:pid) of the node that
// generated it. Two nodes generating the same tag value produce distinct
// TagKeys, which is exactly the tag-conflict problem LocalID solves
// (§III-D-1).
type TagKey struct {
	Value   string // user-assigned tag value
	LocalID string // "ip:pid" of the generating node
}

// String returns "value@localID".
func (k TagKey) String() string {
	return k.Value + "@" + k.LocalID
}

// node is one entry of the tag tree. The root has an empty TagKey and
// id 0; every other node carries the tag appended at that tree level.
type node struct {
	id       int64  // unique rank of this node within its Tree
	key      TagKey // tag added at this level (zero for root)
	parent   *node
	depth    int // number of tags on the path (root = 0)
	tree     *Tree
	globalID uint32 // Taint Map id for the taint this node represents; 0 = unassigned

	mu       sync.Mutex
	children map[TagKey]*node
}

// Tree is the per-process singleton tag tree. The zero value is not
// usable; construct with NewTree. A Tree is safe for concurrent use.
type Tree struct {
	mu     sync.Mutex
	nextID int64
	root   *node
}

// NewTree returns an empty tag tree.
func NewTree() *Tree {
	t := &Tree{nextID: 1}
	t.root = &node{tree: t}
	return t
}

// child returns n's child carrying key, creating it if needed.
func (n *node) child(key TagKey) *node {
	n.mu.Lock()
	defer n.mu.Unlock()
	if c, ok := n.children[key]; ok {
		return c
	}
	if n.children == nil {
		n.children = make(map[TagKey]*node)
	}
	n.tree.mu.Lock()
	id := n.tree.nextID
	n.tree.nextID++
	n.tree.mu.Unlock()
	c := &node{
		id:     id,
		key:    key,
		parent: n,
		depth:  n.depth + 1,
		tree:   n.tree,
	}
	n.children[key] = c
	return c
}

// path returns the tags from root to n, in insertion (root-first) order.
func (n *node) path() []TagKey {
	keys := make([]TagKey, n.depth)
	for cur := n; cur != nil && cur.parent != nil; cur = cur.parent {
		keys[cur.depth-1] = cur.key
	}
	return keys
}

// contains reports whether key appears on n's path.
func (n *node) contains(key TagKey) bool {
	for cur := n; cur != nil && cur.parent != nil; cur = cur.parent {
		if cur.key == key {
			return true
		}
	}
	return false
}

// NodeCount returns the number of nodes currently interned in the tree,
// excluding the root. Useful for memory-sharing assertions.
func (t *Tree) NodeCount() int {
	t.mu.Lock()
	n := t.nextID - 1
	t.mu.Unlock()
	return int(n)
}

func (t *Tree) String() string {
	return fmt.Sprintf("taint.Tree{nodes: %d}", t.NodeCount())
}
