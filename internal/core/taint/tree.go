// Package taint implements DisTA's taint storage: the Phosphor-style
// singleton tag tree (DSN'22 §II-B) extended with DisTA's quad tags
// <ID, Tag, LocalID, GlobalID> (§III-D-1), taints as references into the
// tree, taint combination, run-based shadow label stores and tainted
// value wrappers.
//
// A Taint is a set of tags represented as a node in a per-process Tree;
// the set is the list of tags on the path from the root to that node.
// Combining two taints appends the missing tags of one path under the
// other, interning nodes so that equal extensions share storage — the
// memory-saving property the paper attributes to Phosphor.
//
// Lock order: at most one node mutex is held at a time (a node's own mu
// while reading or extending its children map). The Tree itself has no
// mutex — node-ID allocation is a lock-free atomic counter, a node's
// globalID is an atomic — and the combine cache uses its own RWMutex,
// taken only while no node mutex is held.
package taint

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// TagKey identifies a source tag uniquely across the whole cluster: the
// user-chosen tag value plus the LocalID (ip:pid) of the node that
// generated it. Two nodes generating the same tag value produce distinct
// TagKeys, which is exactly the tag-conflict problem LocalID solves
// (§III-D-1).
type TagKey struct {
	Value   string // user-assigned tag value
	LocalID string // "ip:pid" of the generating node
}

// String returns "value@localID".
func (k TagKey) String() string {
	return k.Value + "@" + k.LocalID
}

// node is one entry of the tag tree. The root has an empty TagKey and
// id 0; every other node carries the tag appended at that tree level.
type node struct {
	id       int64  // unique rank of this node within its Tree
	key      TagKey // tag added at this level (zero for root)
	parent   *node
	depth    int // number of tags on the path (root = 0)
	tree     *Tree
	globalID atomic.Uint32 // Taint Map id for the taint this node represents; 0 = unassigned

	mu       sync.Mutex
	children map[TagKey]*node
}

// combineKey caches one ordered Combine(a, b) pair by node id. The
// result depends on operand order (b's missing tags are appended under
// a), so the key is ordered too.
type combineKey struct {
	a, b int64
}

// combineCacheMax bounds the combine memo. When the cache fills it is
// flushed wholesale: O(1), no bookkeeping on the hit path, and hot
// pairs repopulate within a handful of unions. 4096 entries cover far
// more distinct taint pairs than any workload in the paper's
// evaluation touches between flushes.
const combineCacheMax = 4096

// Tree is the per-process singleton tag tree. The zero value is not
// usable; construct with NewTree. A Tree is safe for concurrent use.
type Tree struct {
	nextID atomic.Int64
	root   *node

	cmu     sync.RWMutex
	combine map[combineKey]Taint
}

// NewTree returns an empty tag tree.
func NewTree() *Tree {
	t := &Tree{}
	t.nextID.Store(1)
	t.root = &node{tree: t}
	return t
}

// child returns n's child carrying key, creating it if needed.
func (n *node) child(key TagKey) *node {
	n.mu.Lock()
	defer n.mu.Unlock()
	if c, ok := n.children[key]; ok {
		return c
	}
	if n.children == nil {
		n.children = make(map[TagKey]*node)
	}
	c := &node{
		id:     n.tree.nextID.Add(1) - 1,
		key:    key,
		parent: n,
		depth:  n.depth + 1,
		tree:   n.tree,
	}
	n.children[key] = c
	return c
}

// cachedCombine returns the memoized union of the (a, b) node pair.
func (t *Tree) cachedCombine(a, b int64) (Taint, bool) {
	t.cmu.RLock()
	r, ok := t.combine[combineKey{a, b}]
	t.cmu.RUnlock()
	return r, ok
}

// storeCombine memoizes a union result, flushing the cache when full.
func (t *Tree) storeCombine(a, b int64, r Taint) {
	t.cmu.Lock()
	if t.combine == nil || len(t.combine) >= combineCacheMax {
		t.combine = make(map[combineKey]Taint, combineCacheMax/4)
	}
	t.combine[combineKey{a, b}] = r
	t.cmu.Unlock()
}

// path returns the tags from root to n, in insertion (root-first) order.
func (n *node) path() []TagKey {
	keys := make([]TagKey, n.depth)
	for cur := n; cur != nil && cur.parent != nil; cur = cur.parent {
		keys[cur.depth-1] = cur.key
	}
	return keys
}

// contains reports whether key appears on n's path.
func (n *node) contains(key TagKey) bool {
	for cur := n; cur != nil && cur.parent != nil; cur = cur.parent {
		if cur.key == key {
			return true
		}
	}
	return false
}

// NodeCount returns the number of nodes currently interned in the tree,
// excluding the root. Useful for memory-sharing assertions.
func (t *Tree) NodeCount() int {
	return int(t.nextID.Load() - 1)
}

func (t *Tree) String() string {
	return fmt.Sprintf("taint.Tree{nodes: %d}", t.NodeCount())
}
