package taint

import "fmt"

// Bytes is a byte slice with a per-byte shadow label array — the
// byte-level tracking granularity of DisTA (§III-A). Labels[i] is the
// taint of Data[i]; a nil Labels slice means every byte is untainted.
//
// Bytes follows slice semantics: sub-slicing shares the underlying
// arrays; use Clone for a deep copy.
type Bytes struct {
	Data   []byte
	Labels []Taint
}

// MakeBytes allocates an untainted Bytes of length n with shadow storage.
func MakeBytes(n int) Bytes {
	return Bytes{Data: make([]byte, n), Labels: make([]Taint, n)}
}

// WrapBytes wraps a plain byte slice as untainted Bytes. The data is not
// copied; the shadow array is allocated lazily on first taint.
func WrapBytes(b []byte) Bytes {
	return Bytes{Data: b}
}

// FromString wraps the bytes of s, each carrying taint t.
func FromString(s string, t Taint) Bytes {
	b := Bytes{Data: []byte(s)}
	if !t.Empty() {
		b.TaintAll(t)
	}
	return b
}

// Len returns the number of data bytes.
func (b Bytes) Len() int { return len(b.Data) }

// LabelAt returns the taint of byte i (empty if no shadow storage).
func (b Bytes) LabelAt(i int) Taint {
	if b.Labels == nil {
		return Taint{}
	}
	return b.Labels[i]
}

// ensureLabels allocates the shadow array if absent.
func (b *Bytes) ensureLabels() {
	if b.Labels == nil {
		b.Labels = make([]Taint, len(b.Data))
	}
}

// SetLabel assigns taint t to byte i.
func (b *Bytes) SetLabel(i int, t Taint) {
	if t.Empty() && b.Labels == nil {
		return
	}
	b.ensureLabels()
	b.Labels[i] = t
}

// TaintAll combines taint t into every byte's label.
func (b *Bytes) TaintAll(t Taint) {
	if t.Empty() {
		return
	}
	b.ensureLabels()
	for i := range b.Labels {
		b.Labels[i] = Combine(b.Labels[i], t)
	}
}

// Slice returns b[from:to] sharing the underlying storage.
func (b Bytes) Slice(from, to int) Bytes {
	out := Bytes{Data: b.Data[from:to]}
	if b.Labels != nil {
		out.Labels = b.Labels[from:to]
	}
	return out
}

// Clone returns a deep copy of b.
func (b Bytes) Clone() Bytes {
	out := Bytes{Data: make([]byte, len(b.Data))}
	copy(out.Data, b.Data)
	if b.Labels != nil {
		out.Labels = make([]Taint, len(b.Labels))
		copy(out.Labels, b.Labels)
	}
	return out
}

// Append appends other to b, propagating labels, and returns the result
// (like the append builtin, the receiver's storage may be reused).
func (b Bytes) Append(other Bytes) Bytes {
	n := len(b.Data)
	out := Bytes{Data: append(b.Data, other.Data...)}
	if b.Labels == nil && other.Labels == nil {
		return out
	}
	labels := b.Labels
	if labels == nil {
		labels = make([]Taint, n, len(out.Data))
	}
	if other.Labels != nil {
		labels = append(labels, other.Labels...)
	} else {
		labels = append(labels, make([]Taint, len(other.Data))...)
	}
	out.Labels = labels
	return out
}

// CopyInto copies b's data and labels into dst starting at offset off.
// It returns the number of bytes copied.
func (b Bytes) CopyInto(dst *Bytes, off int) int {
	n := copy(dst.Data[off:], b.Data)
	if b.Labels != nil {
		dst.ensureLabels()
		copy(dst.Labels[off:off+n], b.Labels[:n])
	} else if dst.Labels != nil {
		for i := off; i < off+n; i++ {
			dst.Labels[i] = Taint{}
		}
	}
	return n
}

// Union returns the combination of all byte labels — the taint of the
// value as a whole.
func (b Bytes) Union() Taint {
	var acc Taint
	for _, l := range b.Labels {
		acc = Combine(acc, l)
	}
	return acc
}

// String is a tainted string value: the text plus one taint covering it.
// It models a tracked String variable (e.g. the TomcatMessage text of
// the ActiveMQ scenario).
type String struct {
	Value string
	Label Taint
}

// Bytes converts the tainted string to per-byte tainted Bytes.
func (s String) Bytes() Bytes { return FromString(s.Value, s.Label) }

// StringOf reconstructs a tainted String from Bytes, unioning all byte
// labels into one value-level taint.
func StringOf(b Bytes) String {
	return String{Value: string(b.Data), Label: b.Union()}
}

// Int64 is a tainted 64-bit integer (e.g. a transaction id / zxid).
type Int64 struct {
	Value int64
	Label Taint
}

// Int32 is a tainted 32-bit integer.
type Int32 struct {
	Value int32
	Label Taint
}

func (v Int64) String() string { return fmt.Sprintf("%d%s", v.Value, labelSuffix(v.Label)) }
func (v Int32) String() string { return fmt.Sprintf("%d%s", v.Value, labelSuffix(v.Label)) }

func labelSuffix(t Taint) string {
	if t.Empty() {
		return ""
	}
	return t.String()
}
