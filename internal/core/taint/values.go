package taint

import "fmt"

// Bytes is a byte slice with a per-byte shadow label store — the
// byte-level tracking granularity of DisTA (§III-A). Labels are kept
// run-length encoded (see shadow.go): LabelAt(i) is the taint of
// Data[i]; a Bytes with no shadow store reads as fully untainted.
//
// Bytes follows slice semantics: sub-slicing shares the underlying
// data array and the shadow store, so label writes through any
// overlapping view are visible to all views. Use Clone for a deep
// copy. Append returns a value with its own shadow store unless the
// receiver owns its store's whole extent, mirroring the reuse rules of
// the append builtin (pinned down by TestAppendAliasing).
type Bytes struct {
	Data []byte
	sh   *shadow
	off  int // offset of Data[0] in sh's coordinate space
}

// MakeBytes allocates an untainted Bytes of length n with shadow storage.
func MakeBytes(n int) Bytes {
	return Bytes{Data: make([]byte, n), sh: newShadow(n)}
}

// WrapBytes wraps a plain byte slice as untainted Bytes. The data is not
// copied; the shadow store is allocated lazily on first taint.
func WrapBytes(b []byte) Bytes {
	return Bytes{Data: b}
}

// FromString wraps the bytes of s, each carrying taint t.
func FromString(s string, t Taint) Bytes {
	b := Bytes{Data: []byte(s)}
	if !t.Empty() {
		b.TaintAll(t)
	}
	return b
}

// Len returns the number of data bytes.
func (b Bytes) Len() int { return len(b.Data) }

// HasShadow reports whether shadow storage has been allocated. A Bytes
// without shadow storage is untainted everywhere.
func (b Bytes) HasShadow() bool { return b.sh != nil }

// LabelAt returns the taint of byte i (empty if no shadow storage).
// The dense-store branch stays inlinable: per-byte reads over a
// fragmented buffer are exactly the workload the dense fallback exists
// for, so they must cost no more than the old shadow-array load.
func (b Bytes) LabelAt(i int) Taint {
	if sh := b.sh; sh != nil && sh.dense != nil && uint(i) < uint(len(b.Data)) {
		return sh.dense[b.off+i]
	}
	return b.labelAtSlow(i)
}

func (b Bytes) labelAtSlow(i int) Taint {
	if b.sh == nil {
		return Taint{}
	}
	if i < 0 || i >= len(b.Data) {
		panic(fmt.Sprintf("taint: LabelAt(%d) out of [0,%d)", i, len(b.Data)))
	}
	return b.sh.at(b.off + i)
}

// ensureShadow allocates the shadow store if absent.
func (b *Bytes) ensureShadow() {
	if b.sh == nil {
		b.sh = newShadow(len(b.Data))
		b.off = 0
	}
}

// SetLabel assigns taint t to byte i. Like LabelAt, the dense-store
// branch is an inlinable direct store so per-byte writes never pay the
// run-splice machinery once the store has densified.
func (b *Bytes) SetLabel(i int, t Taint) {
	if sh := b.sh; sh != nil && sh.dense != nil && uint(i) < uint(len(b.Data)) {
		sh.dense[b.off+i] = norm(t)
		sh.mut++
		return
	}
	b.SetRange(i, i+1, t)
}

// Clean reports whether every byte of b is untainted — the gate of the
// clean-path bypass. A shadow-free Bytes is clean by construction; a
// shadowed one answers from a whole-store memo keyed on the store's
// mutation epoch (O(1) after the first scan, invalidated by SetLabel/
// SetRange/TaintRange/Append and recomputed lazily from the run list),
// falling back to a ranged uniformity check for views of dirty stores.
//
// Clean may refresh the internal memo, but does so with an atomic
// store: calling it from concurrent readers is safe under the same
// contract that already allows concurrent LabelAt.
func (b Bytes) Clean() bool {
	sh := b.sh
	if sh == nil || len(b.Data) == 0 {
		return true
	}
	if sh.isClean() {
		return true
	}
	t, ok := sh.uniform(b.off, b.off+len(b.Data))
	return ok && t == Taint{}
}

// ResetLabels clears every label, keeping the shadow store (and its run
// array) for reuse — the reset half of buffer pooling. O(1) when b owns
// its store's whole extent; a ranged clear otherwise.
func (b *Bytes) ResetLabels() {
	sh := b.sh
	if sh == nil {
		return
	}
	if b.off == 0 && sh.cov() <= len(b.Data) {
		sh.reset(len(b.Data))
		return
	}
	sh.setRange(b.off, b.off+len(b.Data), Taint{})
}

// SetRange overwrites the labels of bytes [from, to) with t. Setting
// the empty taint on a Bytes without shadow storage stays lazy.
func (b *Bytes) SetRange(from, to int, t Taint) {
	if from < 0 || to < from || to > len(b.Data) {
		panic(fmt.Sprintf("taint: SetRange[%d,%d) out of [0,%d)", from, to, len(b.Data)))
	}
	if t.Empty() && b.sh == nil {
		return
	}
	b.ensureShadow()
	b.sh.setRange(b.off+from, b.off+to, t)
}

// TaintRange combines taint t into the labels of bytes [from, to).
func (b *Bytes) TaintRange(from, to int, t Taint) {
	if from < 0 || to < from || to > len(b.Data) {
		panic(fmt.Sprintf("taint: TaintRange[%d,%d) out of [0,%d)", from, to, len(b.Data)))
	}
	if t.Empty() {
		return
	}
	b.ensureShadow()
	b.sh.combineRange(b.off+from, b.off+to, t)
}

// TaintAll combines taint t into every byte's label — one Combine per
// run, not per byte.
func (b *Bytes) TaintAll(t Taint) {
	b.TaintRange(0, len(b.Data), t)
}

// ForEachRun yields the maximal label runs of b in order, including
// untainted gaps, as [from, to) offsets into b. A Bytes without shadow
// storage yields one untainted run (none when empty).
func (b Bytes) ForEachRun(yield func(from, to int, t Taint)) {
	if len(b.Data) == 0 {
		return
	}
	if b.sh == nil || b.sh.isClean() {
		yield(0, len(b.Data), Taint{})
		return
	}
	b.sh.forEach(b.off, b.off+len(b.Data), yield)
}

// Uniform reports whether every byte carries the same label, returning
// that label when so. An empty or shadow-free Bytes is uniform.
func (b Bytes) Uniform() (Taint, bool) {
	if b.sh == nil || b.sh.isClean() {
		return Taint{}, true
	}
	return b.sh.uniform(b.off, b.off+len(b.Data))
}

// RunCount returns the number of maximal label runs in b (0 for empty,
// 1 for a shadow-free or uniformly labelled Bytes).
func (b Bytes) RunCount() int {
	if len(b.Data) == 0 {
		return 0
	}
	if b.sh == nil || b.sh.isClean() {
		return 1
	}
	return b.sh.runCount(b.off, b.off+len(b.Data))
}

// Slice returns b[from:to] sharing the underlying storage: data bytes
// and shadow labels both alias the receiver's.
func (b Bytes) Slice(from, to int) Bytes {
	out := Bytes{Data: b.Data[from:to]}
	if b.sh != nil {
		out.sh, out.off = b.sh, b.off+from
	}
	return out
}

// Clone returns a deep copy of b.
func (b Bytes) Clone() Bytes {
	out := Bytes{Data: make([]byte, len(b.Data))}
	copy(out.Data, b.Data)
	if b.sh != nil {
		out.sh = &shadow{runs: b.sh.window(b.off, b.off+len(b.Data))}
		out.sh.maybeDensify()
	}
	return out
}

// Append appends other to b, propagating labels, and returns the result
// (like the append builtin, the receiver's data storage may be reused;
// the shadow store is reused only when b owns its whole extent).
func (b Bytes) Append(other Bytes) Bytes {
	n := len(b.Data)
	out := Bytes{Data: append(b.Data, other.Data...)}
	if b.sh == nil && other.sh == nil {
		return out
	}
	var src []labelRun
	if other.sh != nil {
		src = other.sh.window(other.off, other.off+len(other.Data))
	}
	if b.sh != nil && b.off == 0 && b.sh.cov() == n {
		// b owns its store's whole extent: extend it in place, like
		// append reusing spare capacity.
		out.sh = b.sh
	} else {
		out.sh = &shadow{}
		if b.sh != nil {
			out.sh.runs = b.sh.window(b.off, b.off+n)
		}
	}
	out.sh.grow(n)
	pos := n
	for _, r := range src {
		out.sh.setRange(pos, n+r.end, r.t)
		pos = n + r.end
	}
	out.sh.grow(n + len(other.Data))
	out.sh.maybeDensify()
	return out
}

// CopyInto copies b's data and labels into dst starting at offset off.
// It returns the number of bytes copied.
func (b Bytes) CopyInto(dst *Bytes, off int) int {
	n := copy(dst.Data[off:], b.Data)
	b.copyLabels(dst, off, n)
	return n
}

// CopyLabelsInto copies only b's labels into dst starting at offset
// off, overwriting (and clearing) dst's labels for the covered range —
// the label half of CopyInto, for callers that move data separately.
func (b Bytes) CopyLabelsInto(dst *Bytes, off int) int {
	n := len(b.Data)
	if room := len(dst.Data) - off; n > room {
		n = room
	}
	b.copyLabels(dst, off, n)
	return n
}

// copyLabels transfers the labels of b[:n] into dst[off:off+n].
func (b Bytes) copyLabels(dst *Bytes, off, n int) {
	if n <= 0 {
		return
	}
	if b.sh == nil || b.sh.isClean() {
		// Clean source: the whole transfer is one untainted run. A
		// shadow-free destination stays lazy; a shadowed one gets a
		// single ranged clear. (Safe for aliased stores too: the clear
		// equals what copying the snapshot would have written.)
		if dst.sh != nil {
			dst.sh.setRange(dst.off+off, dst.off+off+n, Taint{})
		}
		return
	}
	dst.ensureShadow()
	if b.sh == dst.sh {
		// Overlapping views of one store (e.g. a buffer compaction):
		// snapshot the source window before splicing into it.
		start := 0
		for _, r := range b.sh.window(b.off, b.off+n) {
			dst.sh.setRange(dst.off+off+start, dst.off+off+r.end, r.t)
			start = r.end
		}
		return
	}
	b.sh.forEach(b.off, b.off+n, func(rfrom, rto int, t Taint) {
		dst.sh.setRange(dst.off+off+rfrom, dst.off+off+rto, t)
	})
}

// Union returns the combination of all byte labels — the taint of the
// value as a whole. One Combine per run, not per byte.
func (b Bytes) Union() Taint {
	if b.sh == nil || b.sh.isClean() {
		return Taint{}
	}
	return b.sh.union(b.off, b.off+len(b.Data))
}

// String is a tainted string value: the text plus one taint covering it.
// It models a tracked String variable (e.g. the TomcatMessage text of
// the ActiveMQ scenario).
type String struct {
	Value string
	Label Taint
}

// Bytes converts the tainted string to per-byte tainted Bytes.
func (s String) Bytes() Bytes { return FromString(s.Value, s.Label) }

// StringOf reconstructs a tainted String from Bytes, unioning all byte
// labels into one value-level taint.
func StringOf(b Bytes) String {
	return String{Value: string(b.Data), Label: b.Union()}
}

// Int64 is a tainted 64-bit integer (e.g. a transaction id / zxid).
type Int64 struct {
	Value int64
	Label Taint
}

// Int32 is a tainted 32-bit integer.
type Int32 struct {
	Value int32
	Label Taint
}

func (v Int64) String() string { return fmt.Sprintf("%d%s", v.Value, labelSuffix(v.Label)) }
func (v Int32) String() string { return fmt.Sprintf("%d%s", v.Value, labelSuffix(v.Label)) }

func labelSuffix(t Taint) string {
	if t.Empty() {
		return ""
	}
	return t.String()
}
