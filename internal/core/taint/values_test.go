package taint

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMakeBytes(t *testing.T) {
	b := MakeBytes(4)
	if b.Len() != 4 || !b.HasShadow() {
		t.Fatalf("MakeBytes(4) = len %d shadow %v", b.Len(), b.HasShadow())
	}
	for i := 0; i < 4; i++ {
		if !b.LabelAt(i).Empty() {
			t.Fatalf("byte %d must start untainted", i)
		}
	}
}

func TestWrapBytesLazyShadow(t *testing.T) {
	b := WrapBytes([]byte("hi"))
	if b.HasShadow() {
		t.Fatal("WrapBytes must not allocate shadow storage")
	}
	if !b.LabelAt(1).Empty() {
		t.Fatal("wrapped bytes must read as untainted")
	}
	b.SetLabel(0, Taint{}) // setting the empty taint must stay lazy
	if b.HasShadow() {
		t.Fatal("setting an empty label must not allocate shadow storage")
	}
}

func TestTaintAllAndUnion(t *testing.T) {
	tr := NewTree()
	a := tr.NewSource("a", "l")
	b := FromString("abc", a)
	for i := 0; i < 3; i++ {
		if !b.LabelAt(i).Has("a") {
			t.Fatalf("byte %d missing taint", i)
		}
	}
	if u := b.Union(); !SameSet(u, a) {
		t.Fatalf("union = %v, want %v", u, a)
	}

	c := tr.NewSource("c", "l")
	b.TaintAll(c)
	if got := b.Union().Values(); len(got) != 2 {
		t.Fatalf("after TaintAll union = %v", got)
	}
}

func TestSliceSharesStorage(t *testing.T) {
	tr := NewTree()
	b := MakeBytes(8)
	sub := b.Slice(2, 5)
	sub.SetLabel(0, tr.NewSource("x", "l"))
	if !b.LabelAt(2).Has("x") {
		t.Fatal("slicing must alias the shadow array")
	}
}

func TestCloneIsDeep(t *testing.T) {
	tr := NewTree()
	b := FromString("abc", tr.NewSource("a", "l"))
	c := b.Clone()
	c.Data[0] = 'z'
	c.SetLabel(1, Taint{})
	if b.Data[0] != 'a' {
		t.Fatal("Clone must copy data")
	}
	if !b.LabelAt(1).Has("a") {
		t.Fatal("Clone must copy labels")
	}
}

func TestAppendPropagatesLabels(t *testing.T) {
	tr := NewTree()
	a := FromString("aa", tr.NewSource("a", "l"))
	plain := WrapBytes([]byte("pp"))
	b := FromString("bb", tr.NewSource("b", "l"))

	out := a.Append(plain).Append(b)
	if got := string(out.Data); got != "aappbb" {
		t.Fatalf("data = %q", got)
	}
	wants := []string{"a", "a", "", "", "b", "b"}
	for i, w := range wants {
		l := out.LabelAt(i)
		if w == "" && !l.Empty() {
			t.Fatalf("byte %d should be clean, got %v", i, l)
		}
		if w != "" && !l.Has(w) {
			t.Fatalf("byte %d should have %q, got %v", i, w, l)
		}
	}
}

func TestAppendPlainOntoPlainStaysLazy(t *testing.T) {
	out := WrapBytes([]byte("ab")).Append(WrapBytes([]byte("cd")))
	if out.HasShadow() {
		t.Fatal("appending untainted onto untainted must not allocate shadows")
	}
}

func TestAppendTaintedOntoPlain(t *testing.T) {
	tr := NewTree()
	out := WrapBytes([]byte("ab")).Append(FromString("c", tr.NewSource("t", "l")))
	if !out.LabelAt(0).Empty() || !out.LabelAt(1).Empty() {
		t.Fatal("prefix must stay untainted")
	}
	if !out.LabelAt(2).Has("t") {
		t.Fatal("suffix must carry taint")
	}
}

func TestCopyInto(t *testing.T) {
	tr := NewTree()
	src := FromString("xy", tr.NewSource("s", "l"))
	dst := MakeBytes(5)
	n := src.CopyInto(&dst, 2)
	if n != 2 {
		t.Fatalf("copied %d", n)
	}
	if string(dst.Data) != "\x00\x00xy\x00" {
		t.Fatalf("data = %q", dst.Data)
	}
	if !dst.LabelAt(2).Has("s") || !dst.LabelAt(3).Has("s") {
		t.Fatal("labels not copied")
	}
	if !dst.LabelAt(0).Empty() || !dst.LabelAt(4).Empty() {
		t.Fatal("untouched bytes must stay clean")
	}
}

func TestCopyIntoClearsStaleLabels(t *testing.T) {
	tr := NewTree()
	dst := FromString("abcd", tr.NewSource("old", "l"))
	src := WrapBytes([]byte("xy"))
	src.CopyInto(&dst, 1)
	if dst.LabelAt(1).Has("old") || dst.LabelAt(2).Has("old") {
		t.Fatal("overwritten bytes must lose their old labels")
	}
	if !dst.LabelAt(0).Has("old") || !dst.LabelAt(3).Has("old") {
		t.Fatal("untouched bytes must keep labels")
	}
}

func TestStringOfRoundTrip(t *testing.T) {
	tr := NewTree()
	s := String{Value: "vote", Label: tr.NewSource("v", "l")}
	got := StringOf(s.Bytes())
	if got.Value != "vote" || !SameSet(got.Label, s.Label) {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestTaintedIntStringer(t *testing.T) {
	tr := NewTree()
	v := Int64{Value: 7, Label: tr.NewSource("z", "l")}
	if got := v.String(); got != "7{z@l}" {
		t.Fatalf("String() = %q", got)
	}
	if got := (Int32{Value: 3}).String(); got != "3" {
		t.Fatalf("untainted String() = %q", got)
	}
}

func TestQuickAppendPreservesLengthAlignment(t *testing.T) {
	tr := NewTree()
	tag := tr.NewSource("q", "l")
	f := func(a, b []byte, taintA bool) bool {
		left := WrapBytes(append([]byte(nil), a...))
		if taintA {
			left.TaintAll(tag)
		}
		right := WrapBytes(append([]byte(nil), b...))
		out := left.Append(right)
		if len(out.Data) != len(a)+len(b) {
			return false
		}
		for i := range out.Data {
			want := taintA && i < len(a) && len(a) > 0
			if got := out.LabelAt(i).Has("q"); got != want {
				return false
			}
		}
		return bytes.Equal(out.Data[:len(a)], a) && bytes.Equal(out.Data[len(a):], b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
