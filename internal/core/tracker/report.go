package tracker

import (
	"fmt"
	"io"
	"sort"
)

// Reporting: human-readable summaries of what sinks observed across a
// cluster — the output a user of the tool reads after a tracking run
// (the checking workflow of §V-D).

// WriteReport prints, per agent, each sink with the tag values it
// observed and their origins, sorted for stable output.
func WriteReport(w io.Writer, agents ...*Agent) {
	for _, a := range agents {
		obs := a.Observations()
		fmt.Fprintf(w, "node %s (%s, mode %s): %d tainted sink observation(s)\n",
			a.Node(), a.LocalID(), a.Mode(), len(obs))
		bySink := make(map[string]map[string]bool)
		for _, o := range obs {
			if bySink[o.Sink] == nil {
				bySink[o.Sink] = make(map[string]bool)
			}
			for _, k := range o.Taint.Keys() {
				bySink[o.Sink][k.String()] = true
			}
		}
		sinks := make([]string, 0, len(bySink))
		for s := range bySink {
			sinks = append(sinks, s)
		}
		sort.Strings(sinks)
		for _, s := range sinks {
			tags := make([]string, 0, len(bySink[s]))
			for t := range bySink[s] {
				tags = append(tags, t)
			}
			sort.Strings(tags)
			fmt.Fprintf(w, "  sink %s:\n", s)
			for _, t := range tags {
				fmt.Fprintf(w, "    %s\n", t)
			}
		}
	}
}

// CrossNodeFlows extracts the observations whose taints originated on a
// *different* node — the inter-node flows DisTA exists to find. Each
// entry reads "origin -> node: sink saw tag".
func CrossNodeFlows(agents ...*Agent) []string {
	var flows []string
	for _, a := range agents {
		for _, o := range a.Observations() {
			for _, k := range o.Taint.Keys() {
				if k.LocalID == a.LocalID() {
					continue
				}
				flows = append(flows, fmt.Sprintf("%s -> %s: %s saw %s", k.LocalID, a.LocalID(), o.Sink, k.Value))
			}
		}
	}
	sort.Strings(flows)
	return dedupeStrings(flows)
}

func dedupeStrings(in []string) []string {
	var out []string
	for i, s := range in {
		if i == 0 || s != in[i-1] {
			out = append(out, s)
		}
	}
	return out
}
