package tracker

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"dista/internal/core/taint"
)

func TestWriteReport(t *testing.T) {
	a := New("n2", ModeDista)
	remote := a.Tree().FromKeys([]taint.TagKey{{Value: "vote", LocalID: "n1:1"}})
	local := a.Source("s", "own")
	a.CheckSink("checkLeader", remote)
	a.CheckSink("LOG#info", local)

	var buf bytes.Buffer
	WriteReport(&buf, a)
	out := buf.String()
	for _, want := range []string{"node n2", "sink LOG#info", "sink checkLeader", "vote@n1:1", "own@n2:1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestCrossNodeFlows(t *testing.T) {
	a := New("n2", ModeDista)
	remote := a.Tree().FromKeys([]taint.TagKey{{Value: "vote", LocalID: "n1:1"}})
	local := a.Source("s", "own")
	a.CheckSink("checkLeader", remote)
	a.CheckSink("checkLeader", remote) // duplicate observation dedupes
	a.CheckSink("LOG#info", local)     // local-origin taint is not a cross-node flow

	got := CrossNodeFlows(a)
	want := []string{"n1:1 -> n2:1: checkLeader saw vote"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("flows = %v, want %v", got, want)
	}
}

func TestCrossNodeFlowsEmpty(t *testing.T) {
	a := New("n", ModeDista)
	if got := CrossNodeFlows(a); got != nil {
		t.Fatalf("flows = %v", got)
	}
}
