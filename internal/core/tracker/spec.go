package tracker

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
	"time"
)

// Spec is the user's taint source/sink specification, the content of the
// "source and sink files" of §V-E: method descriptors whose return
// values are tainted (sources) and whose parameters are checked (sinks).
//
// The zero Spec enables everything, which is what the micro benchmark
// and SDT scenarios with hard-coded points use; SIM scenarios load a
// spec file.
type Spec struct {
	sources map[string]bool
	sinks   map[string]bool
}

// NewSpec builds a spec from explicit descriptor lists. Nil slices mean
// "everything enabled" for that kind.
func NewSpec(sources, sinks []string) Spec {
	var s Spec
	if sources != nil {
		s.sources = make(map[string]bool, len(sources))
		for _, d := range sources {
			s.sources[d] = true
		}
	}
	if sinks != nil {
		s.sinks = make(map[string]bool, len(sinks))
		for _, d := range sinks {
			s.sinks[d] = true
		}
	}
	return s
}

// SourceEnabled reports whether the descriptor is a configured source.
func (s Spec) SourceEnabled(desc string) bool {
	return s.sources == nil || s.sources[desc]
}

// SinkEnabled reports whether the descriptor is a configured sink.
func (s Spec) SinkEnabled(desc string) bool {
	return s.sinks == nil || s.sinks[desc]
}

// Sources returns the configured source descriptors (nil = all).
func (s Spec) Sources() []string { return descList(s.sources) }

// Sinks returns the configured sink descriptors (nil = all).
func (s Spec) Sinks() []string { return descList(s.sinks) }

func descList(m map[string]bool) []string {
	if m == nil {
		return nil
	}
	out := make([]string, 0, len(m))
	for d := range m {
		out = append(out, d)
	}
	return out
}

// ParseSpec reads a spec in the file format of §V-E: one entry per line,
//
//	source <method descriptor>
//	sink <method descriptor>
//
// with '#' comments and blank lines ignored. A file that names no
// sources (or sinks) leaves that kind restricted to the named set of the
// other kind only — i.e. parsing always produces explicit (possibly
// empty) sets, unlike the zero Spec.
func ParseSpec(r io.Reader) (Spec, error) {
	s := Spec{
		sources: make(map[string]bool),
		sinks:   make(map[string]bool),
	}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		kind, desc, ok := strings.Cut(text, " ")
		desc = strings.TrimSpace(desc)
		if !ok || desc == "" {
			return Spec{}, fmt.Errorf("tracker: spec line %d: want \"source|sink <descriptor>\", got %q", line, text)
		}
		switch kind {
		case "source":
			s.sources[desc] = true
		case "sink":
			s.sinks[desc] = true
		default:
			return Spec{}, fmt.Errorf("tracker: spec line %d: unknown kind %q", line, kind)
		}
	}
	if err := sc.Err(); err != nil {
		return Spec{}, fmt.Errorf("tracker: read spec: %w", err)
	}
	return s, nil
}

// LoadSpec parses a spec file from disk.
func LoadSpec(path string) (Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return Spec{}, err
	}
	defer f.Close()
	return ParseSpec(f)
}

// AgentArgs is the parsed form of the single launch-script flag a system
// needs to enable DisTA (the paper's -javaagent:DisTA.jar=... line).
type AgentArgs struct {
	Mode     Mode
	TaintMap string // Taint Map endpoints, ';'-separated; empty = none
	SpecPath string // source/sink file; empty = everything enabled

	// Deadline bounds one whole Taint Map lookup operation, replica
	// hedges included — the instrumented system's tolerance for a taint
	// resolution stalling, propagated down the client stack. Zero means
	// no deadline beyond the per-call timeouts.
	Deadline time.Duration
}

// TaintMapAddrs returns the Taint Map endpoint list: the taintmap value
// split on ';' (the list separator — ',' already separates agent args),
// blanks dropped. One address is a standalone server; several name
// members of a partitioned cluster to bootstrap from.
func (a AgentArgs) TaintMapAddrs() []string {
	var addrs []string
	for _, addr := range strings.Split(a.TaintMap, ";") {
		if addr = strings.TrimSpace(addr); addr != "" {
			addrs = append(addrs, addr)
		}
	}
	return addrs
}

// ParseAgentArgs parses "mode=dista,taintmap=host:port,spec=path". A
// clustered Taint Map lists its members ';'-separated in the taintmap
// value ("taintmap=tm1:7431;tm2:7431;tm3:7431"); "deadline=50ms" caps
// one Taint Map lookup operation end to end. Every key is optional;
// mode defaults to dista (attaching the agent means tracking).
func ParseAgentArgs(s string) (AgentArgs, error) {
	args := AgentArgs{Mode: ModeDista}
	if strings.TrimSpace(s) == "" {
		return args, nil
	}
	for _, kv := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return AgentArgs{}, fmt.Errorf("tracker: agent arg %q: want key=value", kv)
		}
		switch key {
		case "mode":
			m, err := ParseMode(val)
			if err != nil {
				return AgentArgs{}, err
			}
			args.Mode = m
		case "taintmap":
			args.TaintMap = val
		case "spec", "sources": // the paper's flag spells it taintSources
			args.SpecPath = val
		case "deadline":
			d, err := time.ParseDuration(val)
			if err != nil {
				return AgentArgs{}, fmt.Errorf("tracker: agent arg deadline: %w", err)
			}
			if d < 0 {
				return AgentArgs{}, fmt.Errorf("tracker: agent arg deadline %q: must not be negative", val)
			}
			args.Deadline = d
		default:
			return AgentArgs{}, fmt.Errorf("tracker: unknown agent arg %q", key)
		}
	}
	return args, nil
}
