// Package tracker implements the per-node DisTA runtime (DSN'22 §III-D
// and §V-E): the agent a node is launched with. It owns the node's tag
// tree, its LocalID, the connection to the Taint Map, the user's source
// and sink point specification, the sink-point observations used to
// answer RQ1, and the traffic counters used by the network-overhead
// experiment.
//
// The agent runs in one of three modes that correspond to the three
// columns of Tables V and VI:
//
//   - ModeOff: the original execution — no shadow operations at all;
//   - ModePhosphor: intra-node tracking only; at the network boundary
//     taints are handled the way Phosphor's JNI wrapper does (Fig. 4),
//     i.e. the received data keeps the stale taint of the caller's
//     buffer and the sender's taint is lost;
//   - ModeDista: full intra- plus inter-node tracking via the Taint Map.
package tracker

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"dista/internal/core/taint"
	"dista/internal/taintmap"
)

// Mode selects how much tracking the agent performs.
type Mode int

// The three execution modes of the evaluation.
const (
	ModeOff Mode = iota + 1
	ModePhosphor
	ModeDista
)

// String returns the mode's launch-config spelling.
func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModePhosphor:
		return "phosphor"
	case ModeDista:
		return "dista"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode converts a launch-config spelling into a Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "off", "original", "none":
		return ModeOff, nil
	case "phosphor", "intra":
		return ModePhosphor, nil
	case "dista", "full":
		return ModeDista, nil
	default:
		return 0, fmt.Errorf("tracker: unknown mode %q", s)
	}
}

// SinkObservation records one taint seen at a sink point.
type SinkObservation struct {
	Sink  string      // sink descriptor, e.g. "FastLeaderElection#checkLeader"
	Node  string      // node on which the sink fired
	Taint taint.Taint // non-empty taint observed
}

// Agent is a node's tracking runtime. Construct with New; safe for
// concurrent use.
type Agent struct {
	node    string
	localID string
	mode    Mode
	tree    *taint.Tree
	tm      taintmap.Client
	spec    Spec

	mu           sync.Mutex
	observations []SinkObservation
	sinkHits     map[string]int // fires per sink, including untainted ones
	tagSeq       map[string]int

	dataBytes atomic.Int64 // application payload bytes crossing the JNI layer
	wireBytes atomic.Int64 // bytes actually put on the wire for those payloads
}

// Option configures an Agent.
type Option interface {
	apply(*Agent)
}

type optionFunc func(*Agent)

func (f optionFunc) apply(a *Agent) { f(a) }

// WithTaintMap connects the agent to a Taint Map client. Required for
// ModeDista; ignored by the other modes.
func WithTaintMap(c taintmap.Client) Option {
	return optionFunc(func(a *Agent) { a.tm = c })
}

// WithLocalID overrides the generated LocalID ("ip:pid").
func WithLocalID(id string) Option {
	return optionFunc(func(a *Agent) { a.localID = id })
}

// WithSpec installs the user's source/sink specification (§V-E).
func WithSpec(s Spec) Option {
	return optionFunc(func(a *Agent) { a.spec = s })
}

// New creates an agent for the named node. By default the LocalID is
// synthesized from the node name (standing in for ip:pid); there is no
// Taint Map and the spec is empty (every source/sink call is honoured).
func New(node string, mode Mode, opts ...Option) *Agent {
	a := &Agent{
		node:     node,
		localID:  node + ":1",
		mode:     mode,
		tree:     taint.NewTree(),
		sinkHits: make(map[string]int),
		tagSeq:   make(map[string]int),
	}
	for _, o := range opts {
		o.apply(a)
	}
	return a
}

// Node returns the node name the agent runs on.
func (a *Agent) Node() string { return a.node }

// LocalID returns the node's LocalID ("ip:pid", §III-D-1).
func (a *Agent) LocalID() string { return a.localID }

// Mode returns the agent's tracking mode.
func (a *Agent) Mode() Mode { return a.mode }

// Tree returns the node's tag tree.
func (a *Agent) Tree() *taint.Tree { return a.tree }

// TaintMap returns the agent's Taint Map client (nil unless configured).
func (a *Agent) TaintMap() taintmap.Client { return a.tm }

// Tracking reports whether any shadow operations run (phosphor or dista).
func (a *Agent) Tracking() bool { return a.mode != ModeOff }

// InterNode reports whether taints cross nodes (dista only).
func (a *Agent) InterNode() bool { return a.mode == ModeDista }

// Source returns a fresh taint for the source point desc with the given
// tag value, or the empty taint when tracking is off or the spec does
// not list desc. This is the runtime action of "when a method is
// specified as a taint source point, its return value is tainted".
func (a *Agent) Source(desc, tagValue string) taint.Taint {
	if a.mode == ModeOff || !a.spec.SourceEnabled(desc) {
		return taint.Taint{}
	}
	return a.tree.NewSource(tagValue, a.localID)
}

// SourceSeq behaves like Source but appends a per-descriptor sequence
// number to the tag value, for sources that fire repeatedly (e.g. the
// three transaction-log reads of Fig. 11 becoming zxid1..zxid3).
func (a *Agent) SourceSeq(desc, tagPrefix string) taint.Taint {
	if a.mode == ModeOff || !a.spec.SourceEnabled(desc) {
		return taint.Taint{}
	}
	a.mu.Lock()
	a.tagSeq[desc]++
	n := a.tagSeq[desc]
	a.mu.Unlock()
	return a.tree.NewSource(fmt.Sprintf("%s%d", tagPrefix, n), a.localID)
}

// CheckSink records the non-empty taints among ts at the sink point
// desc, provided the spec lists it (an empty spec honours every sink).
// It reports whether any taint was observed.
func (a *Agent) CheckSink(desc string, ts ...taint.Taint) bool {
	if a.mode == ModeOff || !a.spec.SinkEnabled(desc) {
		return false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.sinkHits[desc]++
	hit := false
	for _, t := range ts {
		if t.Empty() {
			continue
		}
		hit = true
		a.observations = append(a.observations, SinkObservation{Sink: desc, Node: a.node, Taint: t})
	}
	return hit
}

// CheckSinkBytes checks a sink whose argument is byte data, using the
// union of the per-byte labels.
func (a *Agent) CheckSinkBytes(desc string, b taint.Bytes) bool {
	if a.mode == ModeOff || !a.spec.SinkEnabled(desc) {
		return false
	}
	return a.CheckSink(desc, b.Union())
}

// Observations returns a copy of all sink observations so far.
func (a *Agent) Observations() []SinkObservation {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]SinkObservation, len(a.observations))
	copy(out, a.observations)
	return out
}

// SinkTagValues returns the sorted, deduplicated set of tag values seen
// at the given sink — the quantity RQ1's soundness/precision checks
// compare against expectations.
func (a *Agent) SinkTagValues(desc string) []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	set := make(map[string]bool)
	for _, o := range a.observations {
		if o.Sink != desc {
			continue
		}
		for _, v := range o.Taint.Values() {
			set[v] = true
		}
	}
	vals := make([]string, 0, len(set))
	for v := range set {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	return vals
}

// SinkFireCount returns how many times the sink was checked (tainted or
// not).
func (a *Agent) SinkFireCount(desc string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sinkHits[desc]
}

// AddTraffic accumulates the payload-vs-wire byte counters maintained by
// the instrumentation layer (experiment E7).
func (a *Agent) AddTraffic(dataBytes, wireBytes int) {
	a.dataBytes.Add(int64(dataBytes))
	a.wireBytes.Add(int64(wireBytes))
}

// Traffic returns the cumulative payload and wire byte counts.
func (a *Agent) Traffic() (dataBytes, wireBytes int64) {
	return a.dataBytes.Load(), a.wireBytes.Load()
}
