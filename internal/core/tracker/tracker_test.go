package tracker

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dista/internal/core/taint"
	"dista/internal/taintmap"
)

func TestModeParseRoundTrip(t *testing.T) {
	for _, m := range []Mode{ModeOff, ModePhosphor, ModeDista} {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatal("want error for unknown mode")
	}
	if got := Mode(99).String(); got != "Mode(99)" {
		t.Fatalf("unknown mode String() = %q", got)
	}
}

func TestAgentDefaults(t *testing.T) {
	a := New("node1", ModeDista)
	if a.Node() != "node1" || a.LocalID() != "node1:1" {
		t.Fatalf("node=%q localID=%q", a.Node(), a.LocalID())
	}
	if !a.Tracking() || !a.InterNode() {
		t.Fatal("dista agent must track and be inter-node")
	}
	p := New("n", ModePhosphor)
	if !p.Tracking() || p.InterNode() {
		t.Fatal("phosphor agent tracks intra-node only")
	}
	o := New("n", ModeOff)
	if o.Tracking() {
		t.Fatal("off agent must not track")
	}
}

func TestSourceRespectsMode(t *testing.T) {
	off := New("n", ModeOff)
	if !off.Source("X#y", "tag").Empty() {
		t.Fatal("off mode must not generate taints")
	}
	on := New("n", ModeDista)
	tt := on.Source("X#y", "tag")
	if tt.Empty() || !tt.Has("tag") {
		t.Fatalf("source taint = %v", tt)
	}
	keys := tt.Keys()
	if keys[0].LocalID != "n:1" {
		t.Fatalf("taint LocalID = %q", keys[0].LocalID)
	}
}

func TestSourceRespectsSpec(t *testing.T) {
	spec := NewSpec([]string{"FileTxnLog#read"}, []string{"LOG#info"})
	a := New("n", ModeDista, WithSpec(spec))
	if !a.Source("Other#method", "t").Empty() {
		t.Fatal("unlisted source must not fire")
	}
	if a.Source("FileTxnLog#read", "t").Empty() {
		t.Fatal("listed source must fire")
	}
}

func TestSourceSeq(t *testing.T) {
	a := New("n", ModeDista)
	t1 := a.SourceSeq("F#read", "zxid")
	t2 := a.SourceSeq("F#read", "zxid")
	t3 := a.SourceSeq("F#read", "zxid")
	if !t1.Has("zxid1") || !t2.Has("zxid2") || !t3.Has("zxid3") {
		t.Fatalf("seq tags = %v %v %v", t1, t2, t3)
	}
	if off := New("n", ModeOff); !off.SourceSeq("F#read", "z").Empty() {
		t.Fatal("off mode SourceSeq must be empty")
	}
}

func TestCheckSinkRecordsOnlyTainted(t *testing.T) {
	a := New("n2", ModeDista)
	tt := a.Source("src", "vote")
	if hit := a.CheckSink("checkLeader", taint.Taint{}); hit {
		t.Fatal("untainted check must not hit")
	}
	if hit := a.CheckSink("checkLeader", tt, taint.Taint{}); !hit {
		t.Fatal("tainted check must hit")
	}
	obs := a.Observations()
	if len(obs) != 1 || obs[0].Sink != "checkLeader" || obs[0].Node != "n2" {
		t.Fatalf("observations = %+v", obs)
	}
	if got := a.SinkFireCount("checkLeader"); got != 2 {
		t.Fatalf("fire count = %d", got)
	}
	if got := a.SinkTagValues("checkLeader"); !reflect.DeepEqual(got, []string{"vote"}) {
		t.Fatalf("tag values = %v", got)
	}
}

func TestCheckSinkRespectsSpec(t *testing.T) {
	a := New("n", ModeDista, WithSpec(NewSpec(nil, []string{"LOG#info"})))
	tt := a.Source("s", "x")
	if a.CheckSink("other", tt) {
		t.Fatal("unlisted sink must be ignored")
	}
	if !a.CheckSink("LOG#info", tt) {
		t.Fatal("listed sink must record")
	}
}

func TestCheckSinkBytes(t *testing.T) {
	a := New("n", ModeDista)
	b := taint.FromString("secret", a.Source("s", "leak"))
	if !a.CheckSinkBytes("LOG#info", b) {
		t.Fatal("tainted bytes must hit the sink")
	}
	if a.CheckSinkBytes("LOG#info", taint.WrapBytes([]byte("clean"))) {
		t.Fatal("clean bytes must not hit")
	}
	off := New("n", ModeOff)
	if off.CheckSinkBytes("LOG#info", b) {
		t.Fatal("off mode must not hit")
	}
}

func TestTrafficCounters(t *testing.T) {
	a := New("n", ModeDista)
	a.AddTraffic(100, 500)
	a.AddTraffic(1, 5)
	data, wire := a.Traffic()
	if data != 101 || wire != 505 {
		t.Fatalf("traffic = %d/%d", data, wire)
	}
}

func TestWithTaintMap(t *testing.T) {
	store := taintmap.NewStore()
	a := New("n", ModeDista)
	c := taintmap.NewLocalClient(store, a.Tree())
	a2 := New("n", ModeDista, WithTaintMap(c))
	if a2.TaintMap() == nil {
		t.Fatal("taint map client not installed")
	}
	if a.TaintMap() != nil {
		t.Fatal("default agent must have no taint map")
	}
}

func TestParseSpec(t *testing.T) {
	text := `
# ZooKeeper SIM scenario
source FileTxnLog#read
source Config#load

sink LOG#info
`
	spec, err := ParseSpec(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if !spec.SourceEnabled("FileTxnLog#read") || !spec.SourceEnabled("Config#load") {
		t.Fatal("sources missing")
	}
	if spec.SourceEnabled("Other#x") {
		t.Fatal("unlisted source enabled")
	}
	if !spec.SinkEnabled("LOG#info") || spec.SinkEnabled("Other#x") {
		t.Fatal("sink set wrong")
	}
	if len(spec.Sources()) != 2 || len(spec.Sinks()) != 1 {
		t.Fatalf("lists = %v / %v", spec.Sources(), spec.Sinks())
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{"source", "sink ", "taint X#y", "source\tX"} {
		if _, err := ParseSpec(strings.NewReader(bad)); err == nil {
			t.Fatalf("want error for %q", bad)
		}
	}
}

func TestLoadSpec(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spec.txt")
	if err := os.WriteFile(path, []byte("source A#b\nsink C#d\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if !spec.SourceEnabled("A#b") || !spec.SinkEnabled("C#d") {
		t.Fatal("spec not loaded")
	}
	if _, err := LoadSpec(filepath.Join(dir, "missing.txt")); err == nil {
		t.Fatal("want error for missing file")
	}
}

func TestZeroSpecEnablesEverything(t *testing.T) {
	var s Spec
	if !s.SourceEnabled("anything") || !s.SinkEnabled("anything") {
		t.Fatal("zero spec must enable all points")
	}
	if s.Sources() != nil || s.Sinks() != nil {
		t.Fatal("zero spec lists must be nil")
	}
}

func TestParseAgentArgs(t *testing.T) {
	args, err := ParseAgentArgs("mode=phosphor,taintmap=tm:7,spec=/tmp/s.txt")
	if err != nil {
		t.Fatal(err)
	}
	want := AgentArgs{Mode: ModePhosphor, TaintMap: "tm:7", SpecPath: "/tmp/s.txt"}
	if args != want {
		t.Fatalf("args = %+v", args)
	}
}

func TestParseAgentArgsDefaults(t *testing.T) {
	args, err := ParseAgentArgs("")
	if err != nil || args.Mode != ModeDista {
		t.Fatalf("args = %+v, %v", args, err)
	}
	// The paper's own flag spelling.
	args, err = ParseAgentArgs("sources=3")
	if err != nil || args.SpecPath != "3" {
		t.Fatalf("args = %+v, %v", args, err)
	}
}

func TestTaintMapAddrs(t *testing.T) {
	cases := []struct {
		taintmap string
		want     []string
	}{
		{"", nil},
		{"tm:7431", []string{"tm:7431"}},
		{"tm1:7431;tm2:7431;tm3:7431", []string{"tm1:7431", "tm2:7431", "tm3:7431"}},
		{" tm1:7431 ; ;tm2:7431; ", []string{"tm1:7431", "tm2:7431"}},
	}
	for _, tc := range cases {
		args, err := ParseAgentArgs("mode=dista,taintmap=" + tc.taintmap)
		if err != nil {
			t.Fatalf("ParseAgentArgs(taintmap=%q): %v", tc.taintmap, err)
		}
		got := args.TaintMapAddrs()
		if len(got) != len(tc.want) {
			t.Fatalf("TaintMapAddrs(%q) = %q, want %q", tc.taintmap, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("TaintMapAddrs(%q) = %q, want %q", tc.taintmap, got, tc.want)
			}
		}
	}
}

func TestParseAgentArgsErrors(t *testing.T) {
	for _, bad := range []string{"mode", "mode=warp", "color=blue"} {
		if _, err := ParseAgentArgs(bad); err == nil {
			t.Fatalf("want error for %q", bad)
		}
	}
}
