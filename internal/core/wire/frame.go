package wire

import (
	"encoding/binary"
	"fmt"
)

// Framed stream codec: the clean-path bypass wire format.
//
// A framed stream opens with the 4-byte magic "DTF1" and then carries a
// sequence of frames, each a 5-byte header (tag + big-endian uint32
// body length in wire bytes) followed by the body:
//
//   - 'P' (passthrough): the body is the raw data bytes, untainted by
//     construction. No groups, no Global IDs — 5 bytes of overhead per
//     frame instead of 5x per byte. This is what clean buffers emit.
//   - 'G' (groups): the body is the classic group encoding
//     (EncodeRuns), length a multiple of GroupLen. Tainted buffers keep
//     paying exactly the old cost plus the 5-byte header.
//   - 'U' (uniform) and 'S' (sparse): the adaptive tiers between those
//     extremes — raw data plus out-of-band labels (see tier.go). They
//     ride under the "DTF2" magic; this decoder accepts either magic
//     and all four tags under both.
//
// Byte compatibility: FrameDecoder sniffs the first bytes of a
// connection and falls back to the legacy raw-group stream the moment a
// prefix byte mismatches the magic, so pre-framing peers are decoded
// unchanged. A legacy stream can only be mistaken for a framed one if
// its first group carries data byte 'D' AND a Global ID >= 0x54463100
// ("TF1" + a high byte): ids are allocated sequentially from 1, so that
// needs ~1.4 billion live registrations, and provisional ids (high bit
// set) never match the second magic byte 'T' — in practice the sniff
// cannot misfire.

// streamMagic opens every framed stream.
var streamMagic = [4]byte{'D', 'T', 'F', '1'}

const (
	// StreamMagicLen is the size of the framed-stream magic.
	StreamMagicLen = 4
	// FrameHeaderLen is the size of a frame header: tag + body length.
	FrameHeaderLen = 5
	// FramePassthrough tags a frame whose body is raw untainted bytes.
	FramePassthrough byte = 'P'
	// FrameGroups tags a frame whose body is the group encoding.
	FrameGroups byte = 'G'
	// MaxFrameLen bounds a frame body; longer headers are corruption.
	MaxFrameLen = 1 << 30
)

// PassthroughFrameLen returns the framed size of n clean data bytes.
func PassthroughFrameLen(n int) int { return FrameHeaderLen + n }

// GroupsFrameLen returns the framed size of n tainted data bytes.
func GroupsFrameLen(n int) int { return FrameHeaderLen + WireLen(n) }

// AppendStreamMagic appends the framed-stream magic to dst.
func AppendStreamMagic(dst []byte) []byte {
	return append(dst, streamMagic[:]...)
}

// AppendFrameHeader appends a frame header to dst. Callers that write
// the body out-of-line (the zero-copy passthrough write) pair this with
// the raw payload; otherwise use the Append*Frame helpers.
func AppendFrameHeader(dst []byte, tag byte, bodyLen int) []byte {
	dst = append(dst, tag)
	return binary.BigEndian.AppendUint32(dst, uint32(bodyLen))
}

// AppendPassthroughFrame appends a whole passthrough frame for data.
func AppendPassthroughFrame(dst, data []byte) []byte {
	dst = AppendFrameHeader(dst, FramePassthrough, len(data))
	return append(dst, data...)
}

// AppendGroupsFrame appends a whole groups frame for data with its
// taint runs (nil = all untainted, as in EncodeRuns).
func AppendGroupsFrame(dst, data []byte, runs []Run) []byte {
	dst = AppendFrameHeader(dst, FrameGroups, WireLen(len(data)))
	return EncodeRuns(dst, data, runs)
}

// RunsAllUntainted reports whether every run carries the zero Global ID
// — the receive-side clean gate: such a pop needs no Taint Map lookup
// and no shadow minting.
func RunsAllUntainted(runs []Run) bool {
	for _, r := range runs {
		if r.ID != 0 {
			return false
		}
	}
	return true
}

// frame decoder states.
const (
	frameSniffing = iota // deciding framed vs legacy from the prefix
	frameFramed          // saw the magic: header/body frame loop
	frameLegacy          // pre-framing peer: raw group stream
)

// FrameDecoder reassembles a framed stream (and, transparently, a
// legacy raw-group stream) from arbitrarily fragmented reads. It is a
// StreamDecoder front-end: Feed it raw reads, pop decoded bytes with
// NextRuns/NextRunsInto/Next; passthrough bodies surface as untainted
// runs (Global ID 0) without ever materializing groups.
type FrameDecoder struct {
	sd    StreamDecoder
	state int
	pre   [StreamMagicLen]byte // sniffed prefix, replayed on fallback
	preN  int
	hdr   [FrameHeaderLen]byte
	hdrN  int
	tag   byte
	body  int // body bytes of the current frame still expected
	flen  int // total body length of the current frame
	metaN int // label-metadata bytes (uniform id / sparse table) still expected
	meta  []byte
	srun  []Run // remaining run cover of the current tiered frame's data
	err   error
}

// Feed consumes raw stream bytes. The returned error (bad tag, insane
// length, non-group body size) is sticky: the stream is corrupt and no
// further decoding happens.
func (d *FrameDecoder) Feed(raw []byte) error {
	if d.err != nil {
		return d.err
	}
	for d.state == frameSniffing && len(raw) > 0 {
		b := raw[0]
		if b != streamMagic[d.preN] &&
			!(d.preN == StreamMagicLen-1 && b == adaptiveMagic[StreamMagicLen-1]) {
			// Neither magic: a legacy stream. Replay the sniffed
			// prefix, then fall through to plain group decoding.
			d.state = frameLegacy
			d.sd.Feed(d.pre[:d.preN])
			break
		}
		d.pre[d.preN] = b
		d.preN++
		raw = raw[1:]
		if d.preN == StreamMagicLen {
			d.state = frameFramed
		}
	}
	if d.state == frameLegacy {
		d.sd.Feed(raw)
		return nil
	}
	for len(raw) > 0 {
		if d.body > 0 {
			if d.metaN > 0 {
				// Accumulate the tiered frame's label metadata (the
				// uniform id, the sparse count then table) before any
				// data byte is delivered.
				m := d.metaN
				if m > len(raw) {
					m = len(raw)
				}
				d.meta = append(d.meta, raw[:m]...)
				d.metaN -= m
				d.body -= m
				raw = raw[m:]
				if d.metaN == 0 {
					if err := d.finishMeta(); err != nil {
						d.err = err
						return err
					}
				}
				continue
			}
			m := d.body
			if m > len(raw) {
				m = len(raw)
			}
			// Group bodies are a multiple of GroupLen, so the inner
			// decoder is never mid-group when a raw-data body starts:
			// pushRun's no-partial precondition holds.
			switch d.tag {
			case FramePassthrough:
				d.sd.pushRaw(raw[:m])
			case FrameUniform, FrameSparse:
				d.pushTiered(raw[:m])
			default:
				d.sd.Feed(raw[:m])
			}
			d.body -= m
			raw = raw[m:]
			continue
		}
		n := copy(d.hdr[d.hdrN:], raw)
		d.hdrN += n
		raw = raw[n:]
		if d.hdrN < FrameHeaderLen {
			return nil
		}
		d.hdrN = 0
		d.tag = d.hdr[0]
		ln := int(binary.BigEndian.Uint32(d.hdr[1:]))
		switch {
		case d.tag != FramePassthrough && d.tag != FrameGroups &&
			d.tag != FrameUniform && d.tag != FrameSparse:
			d.err = fmt.Errorf("wire: unknown frame tag 0x%02x", d.tag)
		case ln > MaxFrameLen:
			d.err = fmt.Errorf("wire: frame length %d exceeds limit", ln)
		case d.tag == FrameGroups && ln%GroupLen != 0:
			d.err = fmt.Errorf("wire: groups frame length %d is not a whole number of groups", ln)
		case d.tag == FrameUniform && ln < GlobalIDLen:
			d.err = fmt.Errorf("wire: uniform frame length %d cannot hold a Global ID", ln)
		case d.tag == FrameSparse && ln < SparseCountLen:
			d.err = fmt.Errorf("wire: sparse frame length %d cannot hold a range count", ln)
		}
		if d.err != nil {
			return d.err
		}
		d.body, d.flen = ln, ln
		d.meta = d.meta[:0]
		switch d.tag {
		case FrameUniform:
			d.metaN = GlobalIDLen
		case FrameSparse:
			d.metaN = SparseCountLen
		default:
			d.metaN = 0
		}
	}
	return nil
}

// finishMeta runs when a tiered frame's pending metadata completes: for
// a uniform frame the Global ID, for a sparse frame first the count
// (which re-arms metaN for the table) and then the table itself. It
// leaves srun holding the run cover the data section will be delivered
// under.
func (d *FrameDecoder) finishMeta() error {
	dataLen := d.flen - GlobalIDLen
	if d.tag == FrameUniform {
		d.srun = append(d.srun[:0], Run{N: dataLen, ID: binary.BigEndian.Uint32(d.meta)})
		return nil
	}
	if len(d.meta) == SparseCountLen {
		k := int(binary.BigEndian.Uint32(d.meta))
		if k > MaxSparseRanges {
			return fmt.Errorf("wire: sparse frame declares %d ranges (limit %d)", k, MaxSparseRanges)
		}
		if need := SparseCountLen + k*SparseRangeLen; need > d.flen {
			return fmt.Errorf("wire: sparse frame length %d cannot hold %d ranges", d.flen, k)
		}
		if k > 0 {
			d.metaN = k * SparseRangeLen
			return nil
		}
	}
	dataLen = d.flen - len(d.meta)
	ranges, err := parseRangeTable(d.meta[SparseCountLen:], dataLen)
	if err != nil {
		return err
	}
	d.srun = rangeRunCover(d.srun[:0], ranges, dataLen)
	return nil
}

// pushTiered delivers raw data bytes of a uniform/sparse frame under
// the run cover finishMeta computed, consuming it as fragments arrive.
func (d *FrameDecoder) pushTiered(raw []byte) {
	for len(raw) > 0 {
		r := &d.srun[0]
		m := r.N
		if m > len(raw) {
			m = len(raw)
		}
		d.sd.pushRun(raw[:m], r.ID)
		r.N -= m
		raw = raw[m:]
		if r.N == 0 {
			d.srun = d.srun[1:]
		}
	}
}

// Buffered returns how many decoded data bytes are ready.
func (d *FrameDecoder) Buffered() int { return d.sd.Buffered() }

// PendingPartial reports whether the stream ended mid-unit: inside the
// sniffed prefix, a frame header, a frame body, or a legacy group. At
// EOF it distinguishes a clean close from a truncated transfer.
func (d *FrameDecoder) PendingPartial() bool {
	switch d.state {
	case frameSniffing:
		return d.preN > 0
	case frameFramed:
		return d.hdrN > 0 || d.body > 0 || d.sd.PendingPartial()
	default:
		return d.sd.PendingPartial()
	}
}

// NextRuns pops up to max decoded bytes with their taint runs.
func (d *FrameDecoder) NextRuns(max int) ([]byte, []Run) { return d.sd.NextRuns(max) }

// NextRunsInto pops decoded bytes directly into dst — no allocation for
// the data half.
func (d *FrameDecoder) NextRunsInto(dst []byte) (int, []Run) { return d.sd.NextRunsInto(dst) }

// Next pops up to max decoded bytes with their per-byte ids.
func (d *FrameDecoder) Next(max int) ([]byte, []uint32) { return d.sd.Next(max) }
