package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// feedFragmented feeds raw to d in chunks of at most frag bytes,
// failing the test on a Feed error.
func feedFragmented(t *testing.T, d *FrameDecoder, raw []byte, frag int) {
	t.Helper()
	for off := 0; off < len(raw); {
		n := frag
		if off+n > len(raw) {
			n = len(raw) - off
		}
		if err := d.Feed(raw[off : off+n]); err != nil {
			t.Fatalf("Feed at offset %d: %v", off, err)
		}
		off += n
	}
}

// drainIDs pops everything buffered as per-byte ids.
func drainIDs(d *FrameDecoder) ([]byte, []uint32) {
	var data []byte
	var gotIDs []uint32
	for d.Buffered() > 0 {
		b, is := d.Next(d.Buffered())
		data = append(data, b...)
		gotIDs = append(gotIDs, is...)
	}
	return data, gotIDs
}

// TestFrameLens pins the framed-size helpers against the append forms.
func TestFrameLens(t *testing.T) {
	data := []byte("some clean payload")
	if got := len(AppendPassthroughFrame(nil, data)); got != PassthroughFrameLen(len(data)) {
		t.Fatalf("passthrough frame = %d bytes, PassthroughFrameLen says %d", got, PassthroughFrameLen(len(data)))
	}
	if got := len(AppendGroupsFrame(nil, data, nil)); got != GroupsFrameLen(len(data)) {
		t.Fatalf("groups frame = %d bytes, GroupsFrameLen says %d", got, GroupsFrameLen(len(data)))
	}
}

// TestFrameMixedRoundTrip interleaves passthrough and groups frames on
// one stream at every fragmentation size and checks the decoded bytes
// and ids, with passthrough bodies surfacing as id-0 runs.
func TestFrameMixedRoundTrip(t *testing.T) {
	var raw []byte
	raw = AppendStreamMagic(raw)
	raw = AppendPassthroughFrame(raw, []byte("clean-one"))
	raw = AppendGroupsFrame(raw, []byte("taint"), []Run{{N: 5, ID: 7}})
	raw = AppendPassthroughFrame(raw, nil) // empty frame is legal
	raw = AppendPassthroughFrame(raw, []byte("clean-two"))
	raw = AppendGroupsFrame(raw, []byte("mix"), []Run{{N: 1, ID: 0}, {N: 2, ID: 9}})

	wantData := []byte("clean-one" + "taint" + "clean-two" + "mix")
	wantIDs := append(append(append(
		make([]uint32, 9), // clean-one
		7, 7, 7, 7, 7),    // taint
		make([]uint32, 9)...), // clean-two
		0, 9, 9) // mix

	for frag := 1; frag <= len(raw); frag++ {
		var d FrameDecoder
		feedFragmented(t, &d, raw, frag)
		if d.PendingPartial() {
			t.Fatalf("frag %d: whole stream left a partial", frag)
		}
		data, gotIDs := drainIDs(&d)
		if !bytes.Equal(data, wantData) {
			t.Fatalf("frag %d: data = %q, want %q", frag, data, wantData)
		}
		if len(gotIDs) != len(wantIDs) {
			t.Fatalf("frag %d: %d ids, want %d", frag, len(gotIDs), len(wantIDs))
		}
		for i := range wantIDs {
			if gotIDs[i] != wantIDs[i] {
				t.Fatalf("frag %d: id %d = %d, want %d", frag, i, gotIDs[i], wantIDs[i])
			}
		}
	}
}

// TestFrameNextRunsInto checks the allocation-free pop path, and that a
// passthrough body pops as a single untainted run.
func TestFrameNextRunsInto(t *testing.T) {
	var raw []byte
	raw = AppendStreamMagic(raw)
	raw = AppendPassthroughFrame(raw, []byte("hello"))
	var d FrameDecoder
	if err := d.Feed(raw); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 16)
	n, runs := d.NextRunsInto(dst)
	if n != 5 || string(dst[:5]) != "hello" {
		t.Fatalf("popped %d %q", n, dst[:n])
	}
	if len(runs) != 1 || runs[0].ID != 0 || runs[0].N != 5 {
		t.Fatalf("runs = %+v, want one untainted run of 5", runs)
	}
	if !RunsAllUntainted(runs) {
		t.Fatal("passthrough pop must be RunsAllUntainted")
	}
}

// TestFrameLegacyFallback feeds pre-framing raw group streams,
// including ones sharing a prefix with the magic, and checks the
// sniffed prefix is replayed losslessly.
func TestFrameLegacyFallback(t *testing.T) {
	cases := [][]byte{
		[]byte("plain old data"),
		[]byte("DX-shares-one-magic-byte"),
		[]byte("DTF-shares-three-magic-bytes"),
		[]byte("D"), // stays ambiguous until more bytes arrive
	}
	for _, payload := range cases {
		ids := make([]uint32, len(payload))
		for i := range ids {
			ids[i] = uint32(i % 3)
		}
		raw := EncodeGroups(nil, payload, ids)
		for frag := 1; frag <= len(raw); frag++ {
			var d FrameDecoder
			feedFragmented(t, &d, raw, frag)
			data, gotIDs := drainIDs(&d)
			if !bytes.Equal(data, payload) {
				t.Fatalf("payload %q frag %d: data = %q", payload, frag, data)
			}
			for i := range ids {
				if gotIDs[i] != ids[i] {
					t.Fatalf("payload %q frag %d: id %d = %d, want %d", payload, frag, i, gotIDs[i], ids[i])
				}
			}
			if d.PendingPartial() {
				t.Fatalf("payload %q frag %d: whole-group legacy input left a partial", payload, frag)
			}
		}
	}
}

// TestFrameStickyErrors checks the three corruption classes are
// rejected and that the error sticks across further Feeds.
func TestFrameStickyErrors(t *testing.T) {
	cases := []struct {
		name string
		raw  []byte
		want string
	}{
		{"unknown tag", AppendFrameHeader(AppendStreamMagic(nil), 'Z', 10), "unknown frame tag"},
		{"oversized length", AppendFrameHeader(AppendStreamMagic(nil), FramePassthrough, MaxFrameLen+1), "exceeds limit"},
		{"ragged groups length", AppendFrameHeader(AppendStreamMagic(nil), FrameGroups, GroupLen+1), "whole number of groups"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var d FrameDecoder
			err := d.Feed(tc.raw)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Feed = %v, want %q", err, tc.want)
			}
			if again := d.Feed([]byte("more")); !errors.Is(again, err) {
				t.Fatalf("error not sticky: %v then %v", err, again)
			}
		})
	}
}

// TestFramePendingPartial walks every truncation point of a two-frame
// stream: any cut that is not a frame boundary must report a partial.
func TestFramePendingPartial(t *testing.T) {
	var raw []byte
	raw = AppendStreamMagic(raw)
	raw = AppendPassthroughFrame(raw, []byte("abc"))
	raw = AppendGroupsFrame(raw, []byte("xy"), []Run{{N: 2, ID: 4}})

	boundaries := map[int]bool{
		0:                                       true, // nothing arrived: a clean (empty) close
		StreamMagicLen:                          true, // magic only, zero frames: clean close
		len(raw):                                true, // complete stream
		StreamMagicLen + PassthroughFrameLen(3): true, // between frames
		StreamMagicLen + PassthroughFrameLen(3) + GroupsFrameLen(2): true,
	}
	for cut := 0; cut <= len(raw); cut++ {
		var d FrameDecoder
		if err := d.Feed(raw[:cut]); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if got, want := d.PendingPartial(), !boundaries[cut]; got != want {
			t.Fatalf("cut %d: PendingPartial = %v, want %v", cut, got, want)
		}
	}
}

// TestPacketPassthroughRoundTrip checks the clean datagram flavour
// decodes identically through all four packet decoders.
func TestPacketPassthroughRoundTrip(t *testing.T) {
	payload := []byte("clean datagram")
	raw := EncodePacketPassthrough(payload)
	if len(raw) != PacketOverhead+len(payload) {
		t.Fatalf("passthrough packet = %d bytes, want header + payload = %d",
			len(raw), PacketOverhead+len(payload))
	}

	data, ids, err := DecodePacket(raw)
	if err != nil || !bytes.Equal(data, payload) {
		t.Fatalf("DecodePacket = %q, %v", data, err)
	}
	for i, id := range ids {
		if id != 0 {
			t.Fatalf("id %d = %d, want untainted", i, id)
		}
	}
	data2, runs, err := DecodePacketRuns(raw)
	if err != nil || !bytes.Equal(data2, payload) {
		t.Fatalf("DecodePacketRuns = %q, %v", data2, err)
	}
	if !RunsAllUntainted(runs) || RunsLen(runs) != len(payload) {
		t.Fatalf("runs = %+v", runs)
	}

	// Truncation: every received byte of a passthrough body is usable.
	for cut := 0; cut <= len(raw); cut++ {
		p, pruns, perr := DecodePacketPrefixRuns(raw[:cut])
		if cut < PacketOverhead {
			if perr == nil {
				t.Fatalf("cut %d: want short-packet error", cut)
			}
			continue
		}
		if perr != nil {
			t.Fatalf("cut %d: %v", cut, perr)
		}
		if want := payload[:cut-PacketOverhead]; !bytes.Equal(p, want) {
			t.Fatalf("cut %d: prefix = %q, want %q", cut, p, want)
		}
		if !RunsAllUntainted(pruns) || RunsLen(pruns) != len(p) {
			t.Fatalf("cut %d: runs = %+v", cut, pruns)
		}
	}
}

// TestRunsAllUntainted pins the clean gate.
func TestRunsAllUntainted(t *testing.T) {
	if !RunsAllUntainted(nil) || !RunsAllUntainted([]Run{{N: 3, ID: 0}}) {
		t.Fatal("untainted runs misclassified")
	}
	if RunsAllUntainted([]Run{{N: 3, ID: 0}, {N: 1, ID: 2}}) {
		t.Fatal("tainted run slipped the gate")
	}
}

// TestFrameDecoderAgainstStream cross-checks: a stream of only groups
// frames must decode exactly as the legacy decoder does on the bare
// group bytes.
func TestFrameDecoderAgainstStream(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	payload := make([]byte, 301)
	ids := make([]uint32, len(payload))
	for i := range payload {
		payload[i] = byte(rng.Intn(256))
		ids[i] = uint32(rng.Intn(4))
	}
	groups := EncodeGroups(nil, payload, ids)

	framed := AppendStreamMagic(nil)
	framed = AppendFrameHeader(framed, FrameGroups, len(groups))
	framed = append(framed, groups...)

	var fd FrameDecoder
	if err := fd.Feed(framed); err != nil {
		t.Fatal(err)
	}
	var sd StreamDecoder
	sd.Feed(groups)
	for fd.Buffered() > 0 {
		n := rng.Intn(37) + 1
		fb, fids := fd.Next(n)
		sb, sids := sd.Next(n)
		if !bytes.Equal(fb, sb) {
			t.Fatalf("data diverged: %x vs %x", fb, sb)
		}
		for i := range fids {
			if fids[i] != sids[i] {
				t.Fatalf("ids diverged at %d: %d vs %d", i, fids[i], sids[i])
			}
		}
	}
	if sd.Buffered() != 0 {
		t.Fatal("legacy decoder has leftovers")
	}
}
