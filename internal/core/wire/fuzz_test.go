package wire

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzStreamRoundTrip round-trips EncodeGroups → StreamDecoder.Feed
// under fragmentation derived from the fuzz input, asserting the
// decoded data and ids match the originals byte for byte. The seeded
// corpus (f.Add) runs under plain `go test`; `go test -fuzz
// FuzzStreamRoundTrip` explores further.
//
// The fuzz input doubles as the payload and the control stream: seed
// selects an id pattern, frag drives the read fragmentation, and pops
// drives how many bytes each Next call requests.
func FuzzStreamRoundTrip(f *testing.F) {
	f.Add([]byte("hello distributed taints"), int64(1), uint8(3), uint8(7))
	f.Add([]byte{}, int64(2), uint8(0), uint8(0))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}, int64(3), uint8(1), uint8(255))
	f.Add(bytes.Repeat([]byte{0xAB}, 257), int64(4), uint8(4), uint8(9))
	f.Add([]byte("DT\x00\x00\x00\x05abcde"), int64(5), uint8(128), uint8(64))
	f.Fuzz(func(t *testing.T, data []byte, seed int64, frag, pops uint8) {
		rng := rand.New(rand.NewSource(seed))

		// Build an id pattern with both long constant stretches and
		// per-byte churn, depending on the seed.
		ids := make([]uint32, len(data))
		var cur uint32
		for i := range ids {
			if rng.Intn(int(frag)+2) == 0 {
				cur = uint32(rng.Intn(5)) // small id space → runs merge
			}
			ids[i] = cur
		}

		raw := EncodeGroups(nil, data, ids)
		if len(raw) != WireLen(len(data)) {
			t.Fatalf("encoded %d bytes, want %d", len(raw), WireLen(len(data)))
		}

		// Feed in random fragments, including empty and sub-group ones.
		var dec StreamDecoder
		for off := 0; off < len(raw); {
			n := rng.Intn(int(frag) + 2) // 0..frag+1 byte chunks
			if off+n > len(raw) {
				n = len(raw) - off
			}
			dec.Feed(raw[off : off+n])
			off += n
		}
		if dec.PendingPartial() {
			t.Fatal("whole-group input left a partial buffered")
		}
		if dec.Buffered() != len(data) {
			t.Fatalf("decoder buffered %d of %d bytes", dec.Buffered(), len(data))
		}

		// Drain with randomly sized pops, alternating Next and NextRuns.
		var gotData []byte
		var gotIDs []uint32
		for dec.Buffered() > 0 {
			max := rng.Intn(int(pops)+2) + 1
			if rng.Intn(2) == 0 {
				d, is := dec.Next(max)
				gotData = append(gotData, d...)
				gotIDs = append(gotIDs, is...)
			} else {
				d, rs := dec.NextRuns(max)
				if RunsLen(rs) != len(d) {
					t.Fatalf("NextRuns: runs cover %d of %d bytes", RunsLen(rs), len(d))
				}
				for i := 1; i < len(rs); i++ {
					if rs[i].ID == rs[i-1].ID {
						t.Fatalf("NextRuns returned adjacent runs with equal id %d", rs[i].ID)
					}
				}
				gotData = append(gotData, d...)
				gotIDs = append(gotIDs, ExpandRuns(rs)...)
			}
		}
		if !bytes.Equal(gotData, data) {
			t.Fatalf("data mismatch:\n got %x\nwant %x", gotData, data)
		}
		for i := range ids {
			if gotIDs[i] != ids[i] {
				t.Fatalf("id %d = %d, want %d", i, gotIDs[i], ids[i])
			}
		}
	})
}

// FuzzPacketRoundTrip round-trips the packet codec (per-byte and run
// forms) and checks the truncation path never panics and agrees between
// forms.
func FuzzPacketRoundTrip(f *testing.F) {
	f.Add([]byte("payload"), uint32(9), uint16(0))
	f.Add([]byte{}, uint32(0), uint16(3))
	f.Add(bytes.Repeat([]byte{1, 2}, 100), uint32(1<<31), uint16(50))
	f.Fuzz(func(t *testing.T, data []byte, id uint32, cut uint16) {
		pkt := EncodePacketRuns(data, []Run{{N: len(data), ID: id}})
		if want := EncodePacket(data, uniformIDs(len(data), id)); !bytes.Equal(pkt, want) {
			t.Fatal("EncodePacketRuns and EncodePacket disagree on the wire")
		}

		d1, ids1, err1 := DecodePacket(pkt)
		d2, runs2, err2 := DecodePacketRuns(pkt)
		if err1 != nil || err2 != nil {
			t.Fatalf("decode errors: %v / %v", err1, err2)
		}
		if !bytes.Equal(d1, data) || !bytes.Equal(d2, data) {
			t.Fatal("payload mismatch")
		}
		for i, got := range ids1 {
			if got != id {
				t.Fatalf("id %d = %d, want %d", i, got, id)
			}
		}
		if got := ExpandRuns(runs2); len(got) != len(data) {
			t.Fatalf("runs cover %d of %d", len(got), len(data))
		}

		// The tiered packet flavours must round-trip the same payload
		// and survive truncation anywhere without panicking.
		upkt := EncodePacketUniform(data, id)
		ud, uruns, uerr := DecodePacketRuns(upkt)
		if uerr != nil || !bytes.Equal(ud, data) {
			t.Fatalf("uniform packet decode = %q, %v", ud, uerr)
		}
		if len(data) > 0 && (len(uruns) != 1 || uruns[0].ID != id) {
			t.Fatalf("uniform packet runs = %+v", uruns)
		}
		var ranges []DirtyRange
		if id != 0 && len(data) > 2 {
			ranges = []DirtyRange{{Off: 1, Len: len(data) - 2, ID: id}}
		}
		spkt := EncodePacketSparse(data, ranges)
		sd, sruns, serr := DecodePacketRuns(spkt)
		if serr != nil || !bytes.Equal(sd, data) {
			t.Fatalf("sparse packet decode = %q, %v", sd, serr)
		}
		if got := AppendDirtyRanges(nil, sruns); len(got) != len(ranges) {
			t.Fatalf("sparse packet ranges = %+v, want %+v", got, ranges)
		}
		ucut := int(cut) % (len(upkt) + 1)
		if _, _, err := DecodePacketPrefixRuns(upkt[:ucut]); err == nil && ucut < PacketOverhead+GlobalIDLen && len(data) > 0 {
			t.Fatalf("uniform prefix cut %d inside metadata decoded", ucut)
		}
		if _, _, err := DecodePacketPrefixRuns(spkt[:int(cut)%(len(spkt)+1)]); err != nil && int(cut)%(len(spkt)+1) == len(spkt) {
			t.Fatalf("whole sparse packet rejected: %v", err)
		}

		// Truncate anywhere: both prefix decoders must agree and not
		// panic; whole groups before the cut must survive.
		n := int(cut) % (len(pkt) + 1)
		p1, i1, e1 := DecodePacketPrefix(pkt[:n])
		p2, r2, e2 := DecodePacketPrefixRuns(pkt[:n])
		if (e1 == nil) != (e2 == nil) {
			t.Fatalf("prefix decoders disagree on error: %v / %v", e1, e2)
		}
		if e1 == nil {
			if !bytes.Equal(p1, p2) {
				t.Fatal("prefix decoders disagree on payload")
			}
			expanded := ExpandRuns(r2)
			if len(expanded) != len(i1) {
				t.Fatalf("prefix id lengths disagree: %d / %d", len(i1), len(expanded))
			}
			for i := range i1 {
				if i1[i] != expanded[i] {
					t.Fatalf("prefix id %d disagrees: %d / %d", i, i1[i], expanded[i])
				}
			}
		}
	})
}

func uniformIDs(n int, id uint32) []uint32 {
	ids := make([]uint32, n)
	for i := range ids {
		ids[i] = id
	}
	return ids
}

// FuzzFrameRoundTrip drives the framed codec: the input is split across
// frames of all four tiers (passthrough, uniform, sparse, groups), fed
// under fuzz-chosen fragmentation, and the decoded bytes/ids must
// match. Seeds cover every frame tag under both magics, the empty
// frame, and the legacy-fallback prefix collisions.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add([]byte("clean then tainted"), int64(1), uint8(3), uint8(2))
	f.Add([]byte{}, int64(2), uint8(0), uint8(1))
	f.Add([]byte("DTF1PPPP"), int64(3), uint8(1), uint8(4)) // payload mimicking the magic+tag
	f.Add(bytes.Repeat([]byte{'G'}, 64), int64(4), uint8(7), uint8(3))
	f.Add([]byte{'P', 0, 0, 0, 0}, int64(5), uint8(2), uint8(2)) // bare passthrough header bytes as payload
	f.Add([]byte("DTF2U\x00\x00\x00\x07abc"), int64(6), uint8(3), uint8(3))
	f.Add([]byte("uniform bulk transfer payload"), int64(7), uint8(9), uint8(1))
	f.Add(bytes.Repeat([]byte{'S', 0}, 40), int64(8), uint8(5), uint8(5)) // sparse-heavy split
	f.Fuzz(func(t *testing.T, data []byte, seed int64, frag, nframes uint8) {
		rng := rand.New(rand.NewSource(seed))

		// Split data into 1..nframes+1 frames across all four tiers by
		// the rng; record the expected per-byte ids.
		var raw []byte
		if rng.Intn(2) == 0 {
			raw = AppendAdaptiveStreamMagic(raw)
		} else {
			raw = AppendStreamMagic(raw) // tier tags decode under either magic
		}
		wantIDs := make([]uint32, 0, len(data))
		rest := data
		for i := 0; i < int(nframes)+1; i++ {
			n := 0
			if len(rest) > 0 {
				n = rng.Intn(len(rest) + 1)
			}
			if i == int(nframes) {
				n = len(rest) // last frame takes the remainder
			}
			chunk := rest[:n]
			rest = rest[n:]
			switch rng.Intn(4) {
			case 0:
				raw = AppendPassthroughFrame(raw, chunk)
				for range chunk {
					wantIDs = append(wantIDs, 0)
				}
			case 1:
				id := uint32(rng.Intn(3))
				raw = AppendUniformFrame(raw, chunk, id)
				for range chunk {
					wantIDs = append(wantIDs, id)
				}
			case 2:
				// Random tainted islands over a mostly-clean chunk.
				var ranges []DirtyRange
				ids := make([]uint32, len(chunk))
				for pos := 0; pos < len(chunk) && len(ranges) < MaxSparseRanges; {
					pos += rng.Intn(5)
					if pos >= len(chunk) {
						break
					}
					ln := rng.Intn(len(chunk)-pos) + 1
					id := uint32(rng.Intn(3) + 1) // sparse ranges must be non-zero-id
					ranges = append(ranges, DirtyRange{Off: pos, Len: ln, ID: id})
					for k := pos; k < pos+ln; k++ {
						ids[k] = id
					}
					pos += ln
				}
				raw = AppendSparseFrame(raw, chunk, ranges)
				wantIDs = append(wantIDs, ids...)
			default:
				id := uint32(rng.Intn(3))
				raw = AppendGroupsFrame(raw, chunk, []Run{{N: len(chunk), ID: id}})
				for range chunk {
					wantIDs = append(wantIDs, id)
				}
			}
		}

		var dec FrameDecoder
		for off := 0; off < len(raw); {
			n := rng.Intn(int(frag)+2) + 1
			if off+n > len(raw) {
				n = len(raw) - off
			}
			if err := dec.Feed(raw[off : off+n]); err != nil {
				t.Fatalf("Feed: %v", err)
			}
			off += n
		}
		if dec.PendingPartial() {
			t.Fatal("complete frames left a partial")
		}
		if dec.Buffered() != len(data) {
			t.Fatalf("buffered %d of %d", dec.Buffered(), len(data))
		}
		var gotData []byte
		var gotIDs []uint32
		for dec.Buffered() > 0 {
			d, is := dec.Next(rng.Intn(64) + 1)
			gotData = append(gotData, d...)
			gotIDs = append(gotIDs, is...)
		}
		if !bytes.Equal(gotData, data) {
			t.Fatalf("data mismatch:\n got %x\nwant %x", gotData, data)
		}
		for i := range wantIDs {
			if gotIDs[i] != wantIDs[i] {
				t.Fatalf("id %d = %d, want %d", i, gotIDs[i], wantIDs[i])
			}
		}
	})
}

// FuzzFrameDecoderRobust feeds arbitrary bytes to the frame decoder
// under arbitrary fragmentation: it must never panic, and once Feed
// errors the error must stick.
func FuzzFrameDecoderRobust(f *testing.F) {
	f.Add([]byte("DTF1P\x00\x00\x00\x03abc"), uint8(1))
	f.Add([]byte("DTF1G\x00\x00\x00\x05hello"), uint8(3))
	f.Add([]byte("DTF1Z\x00\x00\x00\x01x"), uint8(2)) // bad tag
	f.Add([]byte("DTF1P\xff\xff\xff\xff"), uint8(4))  // oversize length
	f.Add([]byte("not framed at all"), uint8(5))
	f.Add([]byte("DTF2U\x00\x00\x00\x06\x00\x00\x00\x09ab"), uint8(2))                                                 // uniform frame
	f.Add([]byte("DTF2U\x00\x00\x00\x02id"), uint8(1))                                                                 // uniform too short for an id
	f.Add([]byte("DTF2S\x00\x00\x00\x04\x00\x00\x00\x00"), uint8(3))                                                   // empty sparse table
	f.Add([]byte("DTF2S\x00\x00\x00\x08\xff\xff\xff\xff\x00\x00\x00\x01"), uint8(2))                                   // insane range count
	f.Add([]byte("DTF2S\x00\x00\x00\x12\x00\x00\x00\x01\x00\x00\x00\x04\x00\x00\x00\x09\x00\x00\x00\x07xx"), uint8(4)) // range past data
	f.Fuzz(func(t *testing.T, raw []byte, frag uint8) {
		var dec FrameDecoder
		var ferr error
		for off := 0; off < len(raw); {
			n := int(frag)%7 + 1
			if off+n > len(raw) {
				n = len(raw) - off
			}
			err := dec.Feed(raw[off : off+n])
			if ferr != nil && err == nil {
				t.Fatal("Feed error did not stick")
			}
			if err != nil {
				ferr = err
			}
			off += n
		}
		for dec.Buffered() > 0 {
			d, ids := dec.Next(13)
			if len(d) != len(ids) {
				t.Fatalf("pop returned %d bytes but %d ids", len(d), len(ids))
			}
		}
	})
}
