package wire

import (
	"math/bits"
	"sync"
)

// Size-classed byte-buffer pool: the scratch arena behind the
// zero-allocation encode paths. Buffers are pooled by power-of-two
// capacity between 1<<minPoolShift and 1<<maxPoolShift; requests
// outside that range fall back to plain allocation and are dropped on
// Put. Pointers-to-slices keep Get/Put themselves allocation-free.

const (
	minPoolShift = 6  // 64 B
	maxPoolShift = 20 // 1 MiB
)

var bufPools [maxPoolShift - minPoolShift + 1]sync.Pool

// GetBuf returns a zero-length buffer with capacity >= n, pooled when n
// fits a size class. Return it with PutBuf when done; the caller owns
// it exclusively until then.
func GetBuf(n int) *[]byte {
	if n > 1<<maxPoolShift {
		b := make([]byte, 0, n)
		return &b
	}
	shift := minPoolShift
	if n > 1<<minPoolShift {
		shift = bits.Len(uint(n - 1))
	}
	if p, _ := bufPools[shift-minPoolShift].Get().(*[]byte); p != nil {
		return p
	}
	b := make([]byte, 0, 1<<shift)
	return &b
}

// PutBuf returns a buffer to its size class. Buffers whose capacity is
// not an exact class size (grown by an append, or oversize) are dropped
// so classes stay homogeneous.
func PutBuf(b *[]byte) {
	c := cap(*b)
	if c < 1<<minPoolShift || c > 1<<maxPoolShift || c&(c-1) != 0 {
		return
	}
	*b = (*b)[:0]
	bufPools[bits.TrailingZeros(uint(c))-minPoolShift].Put(b)
}
