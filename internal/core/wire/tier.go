package wire

import (
	"encoding/binary"
	"fmt"
)

// Adaptive wire tiers (DESIGN.md §9).
//
// The group codec charges 5x for every byte of a tainted buffer even
// when the taint structure is trivial: a uniformly-labelled bulk
// transfer repeats the same Global ID per byte, and a mostly-clean
// buffer with one tainted island group-encodes the clean majority too.
// Two frame tiers between 'P' and 'G' carry those shapes at
// near-passthrough cost:
//
//   - 'U' (uniform): body = one big-endian Global ID + the raw data
//     bytes; every byte carries that id. GlobalIDLen bytes of overhead
//     per frame instead of per byte.
//   - 'S' (sparse): body = big-endian range count + count 12-byte
//     (offset, length, Global ID) entries + the raw data bytes; bytes
//     outside the listed ranges are untainted. Ranges must be in
//     ascending offset order, non-overlapping, non-empty, non-zero-id
//     and inside the data extent — anything else is stream corruption.
//
// Version negotiation: a stream that may carry 'U'/'S' frames opens
// with the magic "DTF2" instead of "DTF1". The PR 5 decoder treats an
// unknown fourth magic byte as a legacy raw-group stream, so an
// adaptive sender must never be pointed at a pre-tier peer — the
// adaptive endpoint is opt-in at construction exactly so the tags only
// flow where both ends negotiated them. This decoder accepts both
// magics (and all four tags under either), keeping every older sender
// byte-compatible.

// adaptiveMagic opens a framed stream whose sender may emit the
// uniform/sparse tiers.
var adaptiveMagic = [4]byte{'D', 'T', 'F', '2'}

const (
	// FrameUniform tags a frame whose body is a Global ID plus raw data
	// bytes all carrying that taint.
	FrameUniform byte = 'U'
	// FrameSparse tags a frame whose body is a dirty-range table plus
	// raw data bytes, tainted only inside the listed ranges.
	FrameSparse byte = 'S'
	// SparseRangeLen is the wire width of one dirty-range table entry:
	// uint32 offset + uint32 length + Global ID.
	SparseRangeLen = 12
	// SparseCountLen is the wire width of the sparse range count.
	SparseCountLen = 4
	// MaxSparseRanges bounds the table a decoder accepts; a sender with
	// more dirty runs uses the groups tier instead.
	MaxSparseRanges = 1024
)

// DirtyRange is one tainted island of a mostly-clean payload: Len bytes
// at Off all carrying the taint with the given Global ID.
type DirtyRange struct {
	Off, Len int
	ID       uint32
}

// UniformFrameLen returns the framed size of n uniformly-tainted bytes.
func UniformFrameLen(n int) int { return FrameHeaderLen + GlobalIDLen + n }

// SparseFrameLen returns the framed size of n data bytes with k dirty
// ranges.
func SparseFrameLen(n, k int) int {
	return FrameHeaderLen + SparseCountLen + k*SparseRangeLen + n
}

// AppendAdaptiveStreamMagic appends the tier-capable stream magic.
func AppendAdaptiveStreamMagic(dst []byte) []byte {
	return append(dst, adaptiveMagic[:]...)
}

// AppendUniformHeader appends a uniform frame's header and Global ID —
// everything but the raw data, for senders that write the payload
// out-of-line (the zero-copy uniform send).
func AppendUniformHeader(dst []byte, n int, id uint32) []byte {
	dst = AppendFrameHeader(dst, FrameUniform, GlobalIDLen+n)
	return binary.BigEndian.AppendUint32(dst, id)
}

// AppendUniformFrame appends a whole uniform frame: every byte of data
// carries the taint with the given Global ID.
func AppendUniformFrame(dst, data []byte, id uint32) []byte {
	dst = AppendUniformHeader(dst, len(data), id)
	return append(dst, data...)
}

// AppendSparseHeader appends a sparse frame's header, range count and
// range table — everything but the raw data. ranges must satisfy the
// table invariants for n data bytes (ValidateDirtyRanges).
func AppendSparseHeader(dst []byte, n int, ranges []DirtyRange) []byte {
	dst = AppendFrameHeader(dst, FrameSparse,
		SparseCountLen+len(ranges)*SparseRangeLen+n)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(ranges)))
	for _, r := range ranges {
		dst = binary.BigEndian.AppendUint32(dst, uint32(r.Off))
		dst = binary.BigEndian.AppendUint32(dst, uint32(r.Len))
		dst = binary.BigEndian.AppendUint32(dst, r.ID)
	}
	return dst
}

// AppendSparseFrame appends a whole sparse frame for data with its
// dirty ranges.
func AppendSparseFrame(dst, data []byte, ranges []DirtyRange) []byte {
	dst = AppendSparseHeader(dst, len(data), ranges)
	return append(dst, data...)
}

// AppendDirtyRanges converts a full run cover into its dirty ranges
// (skipping untainted runs), appending to dst. The inverse of the
// sparse table's implicit-clean-gap encoding.
func AppendDirtyRanges(dst []DirtyRange, runs []Run) []DirtyRange {
	off := 0
	for _, r := range runs {
		if r.ID != 0 && r.N > 0 {
			dst = append(dst, DirtyRange{Off: off, Len: r.N, ID: r.ID})
		}
		off += r.N
	}
	return dst
}

// ValidateDirtyRanges checks the sparse-table invariants for n data
// bytes: ascending non-overlapping offsets, positive lengths, non-zero
// ids, every range inside [0, n).
func ValidateDirtyRanges(ranges []DirtyRange, n int) error {
	pos := 0
	for _, r := range ranges {
		switch {
		case r.Len <= 0:
			return fmt.Errorf("wire: sparse range at %d has length %d", r.Off, r.Len)
		case r.ID == 0:
			return fmt.Errorf("wire: sparse range at %d carries the untainted id", r.Off)
		case r.Off < pos:
			return fmt.Errorf("wire: sparse range at %d overlaps or reorders (previous end %d)", r.Off, pos)
		case r.Off+r.Len > n:
			return fmt.Errorf("wire: sparse range [%d,%d) exceeds %d data bytes", r.Off, r.Off+r.Len, n)
		}
		pos = r.Off + r.Len
	}
	return nil
}

// rangeRunCover expands a validated dirty-range table into the full run
// cover of n data bytes, clean gaps included, appending to dst.
func rangeRunCover(dst []Run, ranges []DirtyRange, n int) []Run {
	pos := 0
	for _, r := range ranges {
		if r.Off > pos {
			dst = append(dst, Run{N: r.Off - pos})
		}
		dst = append(dst, Run{N: r.Len, ID: r.ID})
		pos = r.Off + r.Len
	}
	if pos < n {
		dst = append(dst, Run{N: n - pos})
	}
	return dst
}

// parseRangeTable decodes and validates a wire range table covering n
// data bytes, returning the dirty ranges. len(table) must be a multiple
// of SparseRangeLen.
func parseRangeTable(table []byte, n int) ([]DirtyRange, error) {
	ranges := make([]DirtyRange, 0, len(table)/SparseRangeLen)
	for i := 0; i+SparseRangeLen <= len(table); i += SparseRangeLen {
		ranges = append(ranges, DirtyRange{
			Off: int(binary.BigEndian.Uint32(table[i:])),
			Len: int(binary.BigEndian.Uint32(table[i+4:])),
			ID:  binary.BigEndian.Uint32(table[i+8:]),
		})
	}
	if err := ValidateDirtyRanges(ranges, n); err != nil {
		return nil, err
	}
	return ranges, nil
}

// Packet codec tiers: a datagram whose payload is uniformly tainted
// travels under the magic "DU" (header + Global ID + raw bytes); a
// mostly-clean one under "DS" (header + range count + table + raw
// bytes). Receivers accept all four magics; the tiered senders are
// opt-in like the stream tiers.

var (
	uniformPacketMagic = [2]byte{'D', 'U'}
	sparsePacketMagic  = [2]byte{'D', 'S'}
)

// EncodePacketUniform wraps one datagram payload every byte of which
// carries the taint with the given Global ID.
func EncodePacketUniform(data []byte, id uint32) []byte {
	out := make([]byte, 0, PacketOverhead+GlobalIDLen+len(data))
	out = append(out, uniformPacketMagic[0], uniformPacketMagic[1])
	out = binary.BigEndian.AppendUint32(out, uint32(len(data)))
	out = binary.BigEndian.AppendUint32(out, id)
	return append(out, data...)
}

// EncodePacketSparse wraps one datagram payload tainted only inside the
// given dirty ranges. The ranges must satisfy ValidateDirtyRanges.
func EncodePacketSparse(data []byte, ranges []DirtyRange) []byte {
	out := make([]byte, 0,
		PacketOverhead+SparseCountLen+len(ranges)*SparseRangeLen+len(data))
	out = append(out, sparsePacketMagic[0], sparsePacketMagic[1])
	out = binary.BigEndian.AppendUint32(out, uint32(len(data)))
	out = binary.BigEndian.AppendUint32(out, uint32(len(ranges)))
	for _, r := range ranges {
		out = binary.BigEndian.AppendUint32(out, uint32(r.Off))
		out = binary.BigEndian.AppendUint32(out, uint32(r.Len))
		out = binary.BigEndian.AppendUint32(out, r.ID)
	}
	return append(out, data...)
}
