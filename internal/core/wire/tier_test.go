package wire

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// TestTierFrameLens pins the tiered framed-size helpers against the
// append forms.
func TestTierFrameLens(t *testing.T) {
	data := []byte("uniformly tainted payload")
	if got := len(AppendUniformFrame(nil, data, 7)); got != UniformFrameLen(len(data)) {
		t.Fatalf("uniform frame = %d bytes, UniformFrameLen says %d", got, UniformFrameLen(len(data)))
	}
	ranges := []DirtyRange{{Off: 2, Len: 3, ID: 9}, {Off: 10, Len: 1, ID: 4}}
	if got := len(AppendSparseFrame(nil, data, ranges)); got != SparseFrameLen(len(data), len(ranges)) {
		t.Fatalf("sparse frame = %d bytes, SparseFrameLen says %d", got, SparseFrameLen(len(data), len(ranges)))
	}
	// The header halves must be the frame minus the raw payload, so the
	// zero-copy two-write send emits identical bytes.
	whole := AppendUniformFrame(nil, data, 7)
	split := append(AppendUniformHeader(nil, len(data), 7), data...)
	if !bytes.Equal(whole, split) {
		t.Fatal("AppendUniformHeader + payload differs from AppendUniformFrame")
	}
	whole = AppendSparseFrame(nil, data, ranges)
	split = append(AppendSparseHeader(nil, len(data), ranges), data...)
	if !bytes.Equal(whole, split) {
		t.Fatal("AppendSparseHeader + payload differs from AppendSparseFrame")
	}
}

// TestTierMixedRoundTrip interleaves all four frame tiers on one
// adaptive stream at every fragmentation size.
func TestTierMixedRoundTrip(t *testing.T) {
	var raw []byte
	raw = AppendAdaptiveStreamMagic(raw)
	raw = AppendPassthroughFrame(raw, []byte("clean"))
	raw = AppendUniformFrame(raw, []byte("uniform"), 3)
	raw = AppendSparseFrame(raw, []byte("sparse-islands"),
		[]DirtyRange{{Off: 0, Len: 2, ID: 5}, {Off: 7, Len: 3, ID: 8}})
	raw = AppendGroupsFrame(raw, []byte("dense"), []Run{{N: 2, ID: 1}, {N: 3, ID: 2}})
	raw = AppendUniformFrame(raw, nil, 6) // empty uniform frame is legal
	raw = AppendUniformFrame(raw, []byte("more"), 3)

	wantData := []byte("clean" + "uniform" + "sparse-islands" + "dense" + "more")
	var wantIDs []uint32
	wantIDs = append(wantIDs, 0, 0, 0, 0, 0)       // clean
	wantIDs = append(wantIDs, 3, 3, 3, 3, 3, 3, 3) // uniform
	wantIDs = append(wantIDs, 5, 5, 0, 0, 0, 0, 0) // sparse: [0,2)=5
	wantIDs = append(wantIDs, 8, 8, 8, 0, 0, 0, 0) // sparse: [7,10)=8, tail clean
	wantIDs = append(wantIDs, 1, 1, 2, 2, 2)       // dense
	wantIDs = append(wantIDs, 3, 3, 3, 3)          // more

	for frag := 1; frag <= len(raw); frag++ {
		var d FrameDecoder
		feedFragmented(t, &d, raw, frag)
		if d.PendingPartial() {
			t.Fatalf("frag %d: whole stream left a partial", frag)
		}
		data, gotIDs := drainIDs(&d)
		if !bytes.Equal(data, wantData) {
			t.Fatalf("frag %d: data = %q, want %q", frag, data, wantData)
		}
		if len(gotIDs) != len(wantIDs) {
			t.Fatalf("frag %d: %d ids, want %d", frag, len(gotIDs), len(wantIDs))
		}
		for i := range wantIDs {
			if gotIDs[i] != wantIDs[i] {
				t.Fatalf("frag %d: id %d = %d, want %d", frag, i, gotIDs[i], wantIDs[i])
			}
		}
	}
}

// TestTierTagsUnderLegacyMagic checks decode liberality: the new tags
// are accepted under the PR 5 "DTF1" magic too, so a peer that
// negotiated tiers but kept the old magic still decodes.
func TestTierTagsUnderLegacyMagic(t *testing.T) {
	var raw []byte
	raw = AppendStreamMagic(raw)
	raw = AppendUniformFrame(raw, []byte("abc"), 2)
	var d FrameDecoder
	if err := d.Feed(raw); err != nil {
		t.Fatal(err)
	}
	data, ids := drainIDs(&d)
	if string(data) != "abc" || ids[0] != 2 || ids[2] != 2 {
		t.Fatalf("decoded %q %v", data, ids)
	}
}

// TestAdaptiveMagicCompat checks the cross-version sniffing matrix:
// PR 5 frames under the adaptive magic decode, and a legacy raw-group
// stream sharing three magic bytes still falls back losslessly.
func TestAdaptiveMagicCompat(t *testing.T) {
	var raw []byte
	raw = AppendAdaptiveStreamMagic(raw)
	raw = AppendPassthroughFrame(raw, []byte("old-style"))
	raw = AppendGroupsFrame(raw, []byte("gg"), []Run{{N: 2, ID: 11}})
	for frag := 1; frag <= len(raw); frag++ {
		var d FrameDecoder
		feedFragmented(t, &d, raw, frag)
		data, ids := drainIDs(&d)
		if string(data) != "old-stylegg" {
			t.Fatalf("frag %d: data = %q", frag, data)
		}
		if ids[9] != 11 || ids[10] != 11 || ids[0] != 0 {
			t.Fatalf("frag %d: ids = %v", frag, ids)
		}
	}

	// "DTF" then a byte that is neither '1' nor '2' is a legacy stream.
	payload := []byte("DTFX legacy payload")
	ids := make([]uint32, len(payload))
	legacy := EncodeGroups(nil, payload, ids)
	for frag := 1; frag <= len(legacy); frag++ {
		var d FrameDecoder
		feedFragmented(t, &d, legacy, frag)
		data, _ := drainIDs(&d)
		if !bytes.Equal(data, payload) {
			t.Fatalf("frag %d: legacy fallback decoded %q", frag, data)
		}
	}
}

// TestTierStickyErrors checks the tiered corruption classes are
// rejected with sticky errors.
func TestTierStickyErrors(t *testing.T) {
	overlap := AppendSparseFrame(AppendAdaptiveStreamMagic(nil), make([]byte, 10),
		[]DirtyRange{{Off: 0, Len: 4, ID: 1}, {Off: 2, Len: 4, ID: 2}})
	outside := AppendSparseFrame(AppendAdaptiveStreamMagic(nil), make([]byte, 4),
		[]DirtyRange{{Off: 2, Len: 8, ID: 1}})
	zeroID := AppendSparseFrame(AppendAdaptiveStreamMagic(nil), make([]byte, 8),
		[]DirtyRange{{Off: 1, Len: 2, ID: 0}})
	zeroLen := AppendSparseFrame(AppendAdaptiveStreamMagic(nil), make([]byte, 8),
		[]DirtyRange{{Off: 1, Len: 0, ID: 3}})
	cases := []struct {
		name string
		raw  []byte
		want string
	}{
		{"short uniform", AppendFrameHeader(AppendAdaptiveStreamMagic(nil), FrameUniform, GlobalIDLen-1), "cannot hold a Global ID"},
		{"short sparse", AppendFrameHeader(AppendAdaptiveStreamMagic(nil), FrameSparse, SparseCountLen-1), "cannot hold a range count"},
		{"table overflow", AppendSparseHeader(AppendAdaptiveStreamMagic(nil), 0, make([]DirtyRange, MaxSparseRanges+1)), "limit"},
		{"table past body", append(AppendFrameHeader(AppendAdaptiveStreamMagic(nil), FrameSparse, SparseCountLen+2), 0, 0, 0, 9, 'x', 'x'), "cannot hold"},
		{"overlapping ranges", overlap, "overlaps or reorders"},
		{"range outside data", outside, "exceeds"},
		{"zero-id range", zeroID, "untainted id"},
		{"zero-length range", zeroLen, "length 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var d FrameDecoder
			var err error
			for off := 0; off < len(tc.raw) && err == nil; off++ {
				err = d.Feed(tc.raw[off : off+1])
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Feed = %v, want %q", err, tc.want)
			}
			if again := d.Feed([]byte("more")); !errors.Is(again, err) {
				t.Fatalf("error not sticky: %v then %v", err, again)
			}
		})
	}
}

// TestTierPendingPartial walks every truncation point of a
// uniform+sparse stream: any cut that is not a frame boundary must
// report a partial.
func TestTierPendingPartial(t *testing.T) {
	var raw []byte
	raw = AppendAdaptiveStreamMagic(raw)
	raw = AppendUniformFrame(raw, []byte("abc"), 2)
	raw = AppendSparseFrame(raw, []byte("defgh"), []DirtyRange{{Off: 1, Len: 2, ID: 4}})

	boundaries := map[int]bool{
		0:                                   true,
		StreamMagicLen:                      true,
		StreamMagicLen + UniformFrameLen(3): true,
		len(raw):                            true,
	}
	for cut := 0; cut <= len(raw); cut++ {
		var d FrameDecoder
		if err := d.Feed(raw[:cut]); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if got, want := d.PendingPartial(), !boundaries[cut]; got != want {
			t.Fatalf("cut %d: PendingPartial = %v, want %v", cut, got, want)
		}
	}
}

// TestDirtyRangeHelpers pins the run<->range conversions.
func TestDirtyRangeHelpers(t *testing.T) {
	runs := []Run{{N: 3, ID: 0}, {N: 2, ID: 7}, {N: 4, ID: 0}, {N: 1, ID: 7}, {N: 2, ID: 9}}
	ranges := AppendDirtyRanges(nil, runs)
	want := []DirtyRange{{Off: 3, Len: 2, ID: 7}, {Off: 9, Len: 1, ID: 7}, {Off: 10, Len: 2, ID: 9}}
	if len(ranges) != len(want) {
		t.Fatalf("ranges = %+v, want %+v", ranges, want)
	}
	for i := range want {
		if ranges[i] != want[i] {
			t.Fatalf("range %d = %+v, want %+v", i, ranges[i], want[i])
		}
	}
	if err := ValidateDirtyRanges(ranges, 12); err != nil {
		t.Fatalf("valid ranges rejected: %v", err)
	}
	cover := rangeRunCover(nil, ranges, 12)
	if RunsLen(cover) != 12 {
		t.Fatalf("cover = %+v does not span 12 bytes", cover)
	}
	back := AppendDirtyRanges(nil, cover)
	for i := range want {
		if back[i] != want[i] {
			t.Fatalf("round-tripped range %d = %+v, want %+v", i, back[i], want[i])
		}
	}
}

// TestPacketUniformRoundTrip checks the uniform datagram flavour and
// its truncation salvage.
func TestPacketUniformRoundTrip(t *testing.T) {
	payload := []byte("uniform datagram")
	raw := EncodePacketUniform(payload, 42)
	if len(raw) != PacketOverhead+GlobalIDLen+len(payload) {
		t.Fatalf("uniform packet = %d bytes", len(raw))
	}
	data, runs, err := DecodePacketRuns(raw)
	if err != nil || !bytes.Equal(data, payload) {
		t.Fatalf("DecodePacketRuns = %q, %v", data, err)
	}
	if len(runs) != 1 || runs[0] != (Run{N: len(payload), ID: 42}) {
		t.Fatalf("runs = %+v", runs)
	}
	data2, ids, err := DecodePacket(raw)
	if err != nil || !bytes.Equal(data2, payload) || ids[0] != 42 || ids[len(ids)-1] != 42 {
		t.Fatalf("DecodePacket = %q %v %v", data2, ids, err)
	}

	// Truncation: data bytes past the intact id salvage; cuts inside
	// the header or id do not.
	for cut := 0; cut <= len(raw); cut++ {
		p, pruns, perr := DecodePacketPrefixRuns(raw[:cut])
		if cut < PacketOverhead+GlobalIDLen {
			if perr == nil {
				t.Fatalf("cut %d: want truncation error", cut)
			}
			continue
		}
		if perr != nil {
			t.Fatalf("cut %d: %v", cut, perr)
		}
		want := payload[:cut-PacketOverhead-GlobalIDLen]
		if !bytes.Equal(p, want) {
			t.Fatalf("cut %d: prefix = %q, want %q", cut, p, want)
		}
		if RunsLen(pruns) != len(p) || (len(p) > 0 && pruns[0].ID != 42) {
			t.Fatalf("cut %d: runs = %+v", cut, pruns)
		}
	}
}

// TestPacketSparseRoundTrip checks the sparse datagram flavour and that
// truncation drops or clips ranges past the cut.
func TestPacketSparseRoundTrip(t *testing.T) {
	payload := []byte("sparse island datagram body")
	ranges := []DirtyRange{{Off: 2, Len: 3, ID: 6}, {Off: 20, Len: 5, ID: 13}}
	raw := EncodePacketSparse(payload, ranges)
	data, runs, err := DecodePacketRuns(raw)
	if err != nil || !bytes.Equal(data, payload) {
		t.Fatalf("DecodePacketRuns = %q, %v", data, err)
	}
	got := AppendDirtyRanges(nil, runs)
	if len(got) != 2 || got[0] != ranges[0] || got[1] != ranges[1] {
		t.Fatalf("ranges = %+v", got)
	}

	meta := PacketOverhead + SparseCountLen + len(ranges)*SparseRangeLen
	for cut := 0; cut <= len(raw); cut++ {
		p, pruns, perr := DecodePacketPrefixRuns(raw[:cut])
		if cut < meta {
			if perr == nil {
				t.Fatalf("cut %d: want truncation error before the table is whole", cut)
			}
			continue
		}
		if perr != nil {
			t.Fatalf("cut %d: %v", cut, perr)
		}
		n := cut - meta
		if !bytes.Equal(p, payload[:n]) {
			t.Fatalf("cut %d: prefix = %q", cut, p)
		}
		if RunsLen(pruns) != n {
			t.Fatalf("cut %d: runs %+v cover %d of %d", cut, pruns, RunsLen(pruns), n)
		}
		// Labels of the surviving prefix must match the full decode.
		for i, r := range AppendDirtyRanges(nil, pruns) {
			w := ranges[i]
			if end := w.Off + w.Len; end > n {
				w.Len = n - w.Off
			}
			if r != w {
				t.Fatalf("cut %d: salvaged range %d = %+v, want %+v", cut, i, r, w)
			}
		}
	}
	// The salvage path must not mutate the caller's datagram.
	full := EncodePacketSparse(payload, ranges)
	if _, _, err := DecodePacketPrefixRuns(full[:meta+3]); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(full, raw) {
		t.Fatal("DecodePacketPrefixRuns mutated its input")
	}
}
