// Package wire implements DisTA's inter-node taint encoding (DSN'22
// §III-D): every data byte travels as a fixed-length group of the byte
// followed by the 4-byte big-endian Global ID of its taint (0 =
// untainted). The fixed group length is what lets a receiver enlarge its
// buffer by a known factor and never receive a partial taint — the
// "mismatched serialized taint length" problem the Taint Map solves.
//
// Three codecs cover the paper's three instrumentation types:
//
//   - stream codec (Type 1): a continuous group stream with a stateful
//     decoder that tolerates arbitrary read fragmentation;
//   - packet codec (Type 2): a whole datagram wrapped with a small
//     header carrying the original length;
//   - buffer codec (Type 3) reuses the stream encoding over the contents
//     of a direct buffer (the dispatcher writes whole buffers).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

const (
	// GlobalIDLen is the wire width of a Global ID.
	GlobalIDLen = 4
	// GroupLen is the wire width of one data byte with its taint id —
	// the source of the paper's "about 5X network overhead" estimate.
	GroupLen = 1 + GlobalIDLen
)

// ErrTruncatedPacket reports a packet shorter than its header claims.
var ErrTruncatedPacket = errors.New("wire: truncated taint packet")

// WireLen returns the encoded size of n data bytes in the stream codec.
func WireLen(n int) int { return n * GroupLen }

// DataLen returns how many whole data bytes fit in w wire bytes.
func DataLen(w int) int { return w / GroupLen }

// EncodeGroups appends the group encoding of data (with per-byte ids) to
// dst and returns the extended slice. ids may be nil (all untainted) or
// must have len(data) entries.
func EncodeGroups(dst, data []byte, ids []uint32) []byte {
	if ids != nil && len(ids) != len(data) {
		panic(fmt.Sprintf("wire: %d ids for %d bytes", len(ids), len(data)))
	}
	need := len(dst) + WireLen(len(data))
	if cap(dst) < need {
		grown := make([]byte, len(dst), need)
		copy(grown, dst)
		dst = grown
	}
	for i, b := range data {
		var id uint32
		if ids != nil {
			id = ids[i]
		}
		dst = append(dst, b,
			byte(id>>24), byte(id>>16), byte(id>>8), byte(id))
	}
	return dst
}

// DecodeGroups splits a whole-group wire buffer into data bytes and ids.
// len(raw) must be a multiple of GroupLen.
func DecodeGroups(raw []byte) (data []byte, ids []uint32, err error) {
	if len(raw)%GroupLen != 0 {
		return nil, nil, fmt.Errorf("wire: %d bytes is not a whole number of groups", len(raw))
	}
	n := len(raw) / GroupLen
	data = make([]byte, n)
	ids = make([]uint32, n)
	for i := 0; i < n; i++ {
		g := raw[i*GroupLen:]
		data[i] = g[0]
		ids[i] = binary.BigEndian.Uint32(g[1:GroupLen])
	}
	return data, ids, nil
}

// StreamDecoder reassembles groups from an arbitrarily fragmented byte
// stream. Feed it raw reads; Next pops decoded bytes. A partial group
// stays buffered until its remaining bytes arrive.
type StreamDecoder struct {
	partial [GroupLen]byte
	nburied int // valid bytes in partial

	data []byte
	ids  []uint32
}

// Feed consumes raw wire bytes, decoding every completed group.
func (d *StreamDecoder) Feed(raw []byte) {
	for len(raw) > 0 {
		if d.nburied > 0 || len(raw) < GroupLen {
			n := copy(d.partial[d.nburied:], raw)
			d.nburied += n
			raw = raw[n:]
			if d.nburied == GroupLen {
				d.data = append(d.data, d.partial[0])
				d.ids = append(d.ids, binary.BigEndian.Uint32(d.partial[1:]))
				d.nburied = 0
			}
			continue
		}
		whole := len(raw) / GroupLen * GroupLen
		for i := 0; i < whole; i += GroupLen {
			d.data = append(d.data, raw[i])
			d.ids = append(d.ids, binary.BigEndian.Uint32(raw[i+1:i+GroupLen]))
		}
		raw = raw[whole:]
	}
}

// Buffered returns how many decoded data bytes are ready.
func (d *StreamDecoder) Buffered() int { return len(d.data) }

// PendingPartial reports whether a fraction of a group is buffered.
func (d *StreamDecoder) PendingPartial() bool { return d.nburied > 0 }

// Next pops up to max decoded bytes with their ids.
func (d *StreamDecoder) Next(max int) (data []byte, ids []uint32) {
	n := len(d.data)
	if n > max {
		n = max
	}
	data = make([]byte, n)
	ids = make([]uint32, n)
	copy(data, d.data[:n])
	copy(ids, d.ids[:n])
	d.data = d.data[n:]
	d.ids = d.ids[n:]
	if len(d.data) == 0 {
		d.data, d.ids = nil, nil
	}
	return data, ids
}

// Packet codec (Type 2): header = magic "DT" + uint32 data length,
// followed by the group encoding. The header lets the receiver verify
// integrity; the sender builds a *new* packet rather than mutating the
// caller's, preserving the original's semantics (§III-C Type 2).

var packetMagic = [2]byte{'D', 'T'}

// PacketOverhead is the extra size of an encoded packet beyond
// WireLen(n).
const PacketOverhead = 6

// EncodePacket wraps one datagram payload with its per-byte ids.
func EncodePacket(data []byte, ids []uint32) []byte {
	out := make([]byte, 0, PacketOverhead+WireLen(len(data)))
	out = append(out, packetMagic[0], packetMagic[1])
	out = binary.BigEndian.AppendUint32(out, uint32(len(data)))
	return EncodeGroups(out, data, ids)
}

// DecodePacketPrefix decodes as much of a possibly truncated encoded
// datagram as arrived whole — the analogue of UDP's silent truncation
// when the receiver's (enlarged) buffer is still smaller than the
// packet. Only the header must be intact.
func DecodePacketPrefix(raw []byte) (data []byte, ids []uint32, err error) {
	data, ids, err = DecodePacket(raw)
	if err == nil || !errors.Is(err, ErrTruncatedPacket) || len(raw) < PacketOverhead {
		return data, ids, err
	}
	body := raw[PacketOverhead:]
	whole := len(body) / GroupLen * GroupLen
	return DecodeGroups(body[:whole])
}

// DecodePacket splits an encoded datagram into payload and ids.
func DecodePacket(raw []byte) (data []byte, ids []uint32, err error) {
	if len(raw) < PacketOverhead {
		return nil, nil, ErrTruncatedPacket
	}
	if raw[0] != packetMagic[0] || raw[1] != packetMagic[1] {
		return nil, nil, errors.New("wire: bad taint packet magic")
	}
	n := int(binary.BigEndian.Uint32(raw[2:6]))
	body := raw[PacketOverhead:]
	if len(body) < WireLen(n) {
		return nil, nil, fmt.Errorf("%w: %d groups declared, %d wire bytes", ErrTruncatedPacket, n, len(body))
	}
	return DecodeGroups(body[:WireLen(n)])
}
