// Package wire implements DisTA's inter-node taint encoding (DSN'22
// §III-D): every data byte travels as a fixed-length group of the byte
// followed by the 4-byte big-endian Global ID of its taint (0 =
// untainted). The fixed group length is what lets a receiver enlarge its
// buffer by a known factor and never receive a partial taint — the
// "mismatched serialized taint length" problem the Taint Map solves.
//
// Three codecs cover the paper's three instrumentation types:
//
//   - stream codec (Type 1): a continuous group stream with a stateful
//     decoder that tolerates arbitrary read fragmentation;
//   - packet codec (Type 2): a whole datagram wrapped with a small
//     header carrying the original length;
//   - buffer codec (Type 3) reuses the stream encoding over the contents
//     of a direct buffer (the dispatcher writes whole buffers).
//
// Every codec has a run form (EncodeRuns, DecodeGroupsRuns, NextRuns,
// EncodePacketRuns, ...) that describes taint as []Run — stretches of
// consecutive bytes sharing one Global ID — instead of a per-byte
// []uint32. The wire format is identical; only the in-memory shape
// changes. Real payloads are dominated by long single-taint stretches,
// so the run forms do the id bookkeeping once per run instead of once
// per byte and avoid materializing 4 bytes of id per data byte.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

const (
	// GlobalIDLen is the wire width of a Global ID.
	GlobalIDLen = 4
	// GroupLen is the wire width of one data byte with its taint id —
	// the source of the paper's "about 5X network overhead" estimate.
	GroupLen = 1 + GlobalIDLen
)

// ErrTruncatedPacket reports a packet shorter than its header claims.
var ErrTruncatedPacket = errors.New("wire: truncated taint packet")

// WireLen returns the encoded size of n data bytes in the stream codec.
func WireLen(n int) int { return n * GroupLen }

// DataLen returns how many whole data bytes fit in w wire bytes.
func DataLen(w int) int { return w / GroupLen }

// Run describes N consecutive data bytes that all carry the taint with
// the given Global ID (0 = untainted). A []Run covering a payload is
// the run-length form of a per-byte []uint32.
type Run struct {
	N  int
	ID uint32
}

// RunsLen returns the number of data bytes covered by runs.
func RunsLen(runs []Run) int {
	n := 0
	for _, r := range runs {
		n += r.N
	}
	return n
}

// ExpandRuns materializes the per-byte id slice described by runs.
func ExpandRuns(runs []Run) []uint32 {
	ids := make([]uint32, RunsLen(runs))
	pos := 0
	for _, r := range runs {
		for i := 0; i < r.N; i++ {
			ids[pos] = r.ID
			pos++
		}
	}
	return ids
}

// growBytes extends dst by n writable bytes, reallocating if needed.
func growBytes(dst []byte, n int) []byte {
	need := len(dst) + n
	if cap(dst) < need {
		grown := make([]byte, len(dst), need)
		copy(grown, dst)
		dst = grown
	}
	return dst[:need]
}

// encodeSlack is spare capacity reserved past the encoded end so the
// EncodeRuns inner loop can emit each 5-byte group as a single
// overlapping 8-byte store (the last group's store spills 3 scratch
// bytes that stay beyond the returned length).
const encodeSlack = 8 - GroupLen

// EncodeSlack is the extra capacity a caller-provided destination must
// reserve beyond the encoded length for EncodeRuns/EncodeGroups to
// append without reallocating (see encodeSlack). Callers sizing pooled
// buffers add this once.
const EncodeSlack = encodeSlack

// A block is eight consecutive groups sharing one Global ID — 40 wire
// bytes, or exactly five 64-bit words. Long runs encode and decode one
// block per iteration: the id bytes of all eight groups are folded into
// five precomputed lane words, so the per-byte loop collapses to one
// 8-byte data load plus five word stores (encode) or five word loads,
// five masked compares and one 8-byte data store (decode).
const (
	blockGroups = 8
	blockBytes  = blockGroups * GroupLen
)

// laneM* mask the data-byte lanes of each word of a block: group g's
// data byte sits at block offset 5g, i.e. word g*5/8, bit 8*(5g%8).
const (
	laneM0 uint64 = 0xff | 0xff<<40     // groups 0, 1
	laneM1 uint64 = 0xff<<16 | 0xff<<56 // groups 2, 3
	laneM2 uint64 = 0xff << 32          // group 4
	laneM3 uint64 = 0xff<<8 | 0xff<<48  // groups 5, 6
	laneM4 uint64 = 0xff << 24          // group 7
)

// blockLanes returns the five little-endian words of a block whose
// eight groups all carry id, with the data-byte lanes left zero.
func blockLanes(id uint32) (c0, c1, c2, c3, c4 uint64) {
	var tmpl [blockBytes]byte
	i3, i2, i1, i0 := byte(id>>24), byte(id>>16), byte(id>>8), byte(id)
	for g := 0; g < blockGroups; g++ {
		o := g * GroupLen
		tmpl[o+1], tmpl[o+2], tmpl[o+3], tmpl[o+4] = i3, i2, i1, i0
	}
	return binary.LittleEndian.Uint64(tmpl[0:]),
		binary.LittleEndian.Uint64(tmpl[8:]),
		binary.LittleEndian.Uint64(tmpl[16:]),
		binary.LittleEndian.Uint64(tmpl[24:]),
		binary.LittleEndian.Uint64(tmpl[32:])
}

// EncodeRuns appends the group encoding of data to dst, taking taint as
// runs instead of per-byte ids, and returns the extended slice. runs
// may be nil (all untainted) or must cover exactly len(data) bytes.
// The id half of each group is precomputed once per run as a shifted
// word, so each group costs one 8-byte store instead of five byte
// stores.
func EncodeRuns(dst, data []byte, runs []Run) []byte {
	var whole [1]Run
	if runs == nil {
		whole[0] = Run{N: len(data)}
		runs = whole[:]
	}
	if got := RunsLen(runs); got != len(data) {
		panic(fmt.Sprintf("wire: runs cover %d of %d bytes", got, len(data)))
	}
	w := len(dst)
	need := w + WireLen(len(data))
	if cap(dst) < need+encodeSlack {
		grown := make([]byte, len(dst), need+encodeSlack)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:need]
	scratch := dst[:need+encodeSlack]
	pos := 0
	for _, r := range runs {
		src := data[pos : pos+r.N]
		pos += r.N
		if len(src) >= 2*blockGroups {
			c0, c1, c2, c3, c4 := blockLanes(r.ID)
			for len(src) >= blockGroups {
				d8 := binary.LittleEndian.Uint64(src)
				blk := scratch[w : w+blockBytes]
				binary.LittleEndian.PutUint64(blk[0:], c0|d8&0xff|(d8>>8&0xff)<<40)
				binary.LittleEndian.PutUint64(blk[8:], c1|(d8>>16&0xff)<<16|(d8>>24&0xff)<<56)
				binary.LittleEndian.PutUint64(blk[16:], c2|(d8>>32&0xff)<<32)
				binary.LittleEndian.PutUint64(blk[24:], c3|(d8>>40&0xff)<<8|(d8>>48&0xff)<<48)
				binary.LittleEndian.PutUint64(blk[32:], c4|(d8>>56&0xff)<<24)
				w += blockBytes
				src = src[blockGroups:]
			}
		}
		// Little-endian word with the 4 big-endian id bytes in byte
		// lanes 1..4; lane 0 carries the data byte.
		idw := uint64(bits.ReverseBytes32(r.ID)) << 8
		for _, b := range src {
			binary.LittleEndian.PutUint64(scratch[w:], idw|uint64(b))
			w += GroupLen
		}
	}
	return dst
}

// EncodeGroups appends the group encoding of data (with per-byte ids) to
// dst and returns the extended slice. ids may be nil (all untainted) or
// must have len(data) entries. Each group is emitted as one overlapping
// 8-byte store, like EncodeRuns.
func EncodeGroups(dst, data []byte, ids []uint32) []byte {
	if ids == nil {
		return EncodeRuns(dst, data, nil)
	}
	if len(ids) != len(data) {
		panic(fmt.Sprintf("wire: %d ids for %d bytes", len(ids), len(data)))
	}
	w := len(dst)
	need := w + WireLen(len(data))
	if cap(dst) < need+encodeSlack {
		grown := make([]byte, len(dst), need+encodeSlack)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:need]
	scratch := dst[:need+encodeSlack]
	for i, b := range data {
		binary.LittleEndian.PutUint64(scratch[w:],
			uint64(bits.ReverseBytes32(ids[i]))<<8|uint64(b))
		w += GroupLen
	}
	return dst
}

// DecodeGroupsRuns splits a whole-group wire buffer into data bytes and
// taint runs, without materializing a per-byte id slice. len(raw) must
// be a multiple of GroupLen.
func DecodeGroupsRuns(raw []byte) (data []byte, runs []Run, err error) {
	if len(raw)%GroupLen != 0 {
		return nil, nil, fmt.Errorf("wire: %d bytes is not a whole number of groups", len(raw))
	}
	data = make([]byte, len(raw)/GroupLen)
	for i, k := 0, 0; i < len(raw); {
		id := binary.BigEndian.Uint32(raw[i+1 : i+GroupLen])
		j := i
		for {
			data[k] = raw[j]
			k++
			j += GroupLen
			if j >= len(raw) || binary.BigEndian.Uint32(raw[j+1:j+GroupLen]) != id {
				break
			}
		}
		runs = append(runs, Run{N: (j - i) / GroupLen, ID: id})
		i = j
	}
	return data, runs, nil
}

// DecodeGroups splits a whole-group wire buffer into data bytes and
// per-byte ids. len(raw) must be a multiple of GroupLen.
func DecodeGroups(raw []byte) (data []byte, ids []uint32, err error) {
	if len(raw)%GroupLen != 0 {
		return nil, nil, fmt.Errorf("wire: %d bytes is not a whole number of groups", len(raw))
	}
	n := len(raw) / GroupLen
	data = make([]byte, n)
	ids = make([]uint32, n)
	for i := 0; i < n; i++ {
		g := raw[i*GroupLen:]
		data[i] = g[0]
		ids[i] = binary.BigEndian.Uint32(g[1:GroupLen])
	}
	return data, ids, nil
}

// StreamDecoder reassembles groups from an arbitrarily fragmented byte
// stream. Feed it raw reads; Next (or NextRuns) pops decoded bytes. A
// partial group stays buffered until its remaining bytes arrive.
// Internally taint is held as runs, so a long single-taint stream costs
// one Run however many reads delivered it.
type StreamDecoder struct {
	partial [GroupLen]byte
	nburied int // valid bytes in partial

	data []byte
	off  int   // consumed prefix of data; unread bytes are data[off:]
	runs []Run // taint of data[off:], covering it exactly
}

// Feed consumes raw wire bytes, decoding every completed group.
func (d *StreamDecoder) Feed(raw []byte) {
	for len(raw) > 0 {
		if d.nburied > 0 || len(raw) < GroupLen {
			n := copy(d.partial[d.nburied:], raw)
			d.nburied += n
			raw = raw[n:]
			if d.nburied == GroupLen {
				d.push(d.partial[0], binary.BigEndian.Uint32(d.partial[1:]))
				d.nburied = 0
			}
			continue
		}
		whole := len(raw) / GroupLen * GroupLen
		d.feedWhole(raw[:whole])
		raw = raw[whole:]
	}
}

// pushRaw appends already-decoded untainted bytes (Global ID 0) without
// consuming wire groups — the passthrough-frame delivery path. Must not
// be called while a partial group is buffered: the framing layer
// guarantees group bodies end on group boundaries.
func (d *StreamDecoder) pushRaw(b []byte) { d.pushRun(b, 0) }

// pushRun appends already-decoded bytes that all carry one Global ID —
// the delivery path of the passthrough, uniform and sparse frame tiers,
// which ship raw data plus out-of-band labels instead of groups. Same
// no-partial precondition as pushRaw.
func (d *StreamDecoder) pushRun(b []byte, id uint32) {
	if len(b) == 0 {
		return
	}
	d.data = append(d.data, b...)
	if n := len(d.runs); n > 0 && d.runs[n-1].ID == id {
		d.runs[n-1].N += len(b)
	} else {
		d.runs = append(d.runs, Run{N: len(b), ID: id})
	}
}

// push appends one decoded byte, extending the trailing run if it
// carries the same id.
func (d *StreamDecoder) push(b byte, id uint32) {
	d.data = append(d.data, b)
	if n := len(d.runs); n > 0 && d.runs[n-1].ID == id {
		d.runs[n-1].N++
	} else {
		d.runs = append(d.runs, Run{N: 1, ID: id})
	}
}

// feedWhole decodes a whole number of groups, detecting constant-id
// stretches with one 4-byte load per group and no per-byte id storage.
// The current run is accumulated in locals and flushed only on an id
// change, so a uniform stream costs one append however long it is and
// a fully fragmented one costs one append per group, not two loads.
func (d *StreamDecoder) feedWhole(raw []byte) {
	base := len(d.data)
	n := len(raw) / GroupLen
	if cap(d.data)-base < n {
		grown := make([]byte, base, base*2+n)
		copy(grown, d.data)
		d.data = grown
	}
	d.data = d.data[:base+n]
	var curID uint32
	curN := 0
	if m := len(d.runs); m > 0 {
		curID, curN = d.runs[m-1].ID, d.runs[m-1].N
		d.runs = d.runs[:m-1]
	} else if n > 0 {
		curID = binary.BigEndian.Uint32(raw[1:GroupLen])
	}
	k := base
	var c0, c1, c2, c3, c4 uint64
	lanesID, lanesOK := uint32(0), false
	i := 0
	for i < len(raw) {
		// Block fast path: once eight consecutive groups carried curID
		// the stream is in a run, so decode whole blocks until the
		// masked id-lane compare sees a different id.
		if curN >= blockGroups && i+blockBytes <= len(raw) {
			if !lanesOK || lanesID != curID {
				c0, c1, c2, c3, c4 = blockLanes(curID)
				lanesID, lanesOK = curID, true
			}
			for i+blockBytes <= len(raw) {
				blk := raw[i : i+blockBytes]
				w0 := binary.LittleEndian.Uint64(blk[0:])
				w1 := binary.LittleEndian.Uint64(blk[8:])
				w2 := binary.LittleEndian.Uint64(blk[16:])
				w3 := binary.LittleEndian.Uint64(blk[24:])
				w4 := binary.LittleEndian.Uint64(blk[32:])
				if w0&^laneM0 != c0 || w1&^laneM1 != c1 || w2&^laneM2 != c2 ||
					w3&^laneM3 != c3 || w4&^laneM4 != c4 {
					break
				}
				d8 := w0&0xff | (w0>>40&0xff)<<8 | (w1>>16&0xff)<<16 | (w1>>56&0xff)<<24 |
					(w2>>32&0xff)<<32 | (w3>>8&0xff)<<40 | (w3>>48&0xff)<<48 | (w4>>24&0xff)<<56
				binary.LittleEndian.PutUint64(d.data[k:], d8)
				k += blockGroups
				curN += blockGroups
				i += blockBytes
			}
			if i >= len(raw) {
				break
			}
		}
		d.data[k] = raw[i]
		k++
		id := binary.BigEndian.Uint32(raw[i+1 : i+GroupLen])
		i += GroupLen
		if id == curID {
			curN++
			continue
		}
		d.runs = append(d.runs, Run{N: curN, ID: curID})
		curID, curN = id, 1
	}
	if curN > 0 {
		d.runs = append(d.runs, Run{N: curN, ID: curID})
	}
}

// Buffered returns how many decoded data bytes are ready.
func (d *StreamDecoder) Buffered() int { return len(d.data) - d.off }

// PendingPartial reports whether a fraction of a group is buffered.
func (d *StreamDecoder) PendingPartial() bool { return d.nburied > 0 }

// NextRuns pops up to max decoded bytes with their taint runs. When the
// pop lands exactly on a run boundary the returned runs alias the
// decoder's internal slice (capped, and never mutated again by the
// decoder), so draining a fully buffered stream allocates nothing for
// the taint side however fragmented it is.
func (d *StreamDecoder) NextRuns(max int) (data []byte, runs []Run) {
	n := d.Buffered()
	if n > max {
		n = max
	}
	data = make([]byte, n)
	copy(data, d.data[d.off:d.off+n])
	return data, d.popRuns(n)
}

// NextRunsInto pops up to len(dst) decoded bytes directly into dst,
// returning the count and the taint runs — NextRuns without the data
// allocation, for callers that already own the destination buffer.
func (d *StreamDecoder) NextRunsInto(dst []byte) (int, []Run) {
	n := d.Buffered()
	if n > len(dst) {
		n = len(dst)
	}
	copy(dst, d.data[d.off:d.off+n])
	return n, d.popRuns(n)
}

// popRuns consumes n buffered bytes and returns their taint runs, with
// the same aliasing contract as NextRuns.
func (d *StreamDecoder) popRuns(n int) []Run {
	d.off += n
	k, rem := 0, n
	for rem > 0 && d.runs[k].N <= rem {
		rem -= d.runs[k].N
		k++
	}
	var runs []Run
	if rem == 0 {
		runs = d.runs[:k:k]
		d.runs = d.runs[k:]
	} else {
		runs = make([]Run, k+1)
		copy(runs, d.runs[:k])
		runs[k] = Run{N: rem, ID: d.runs[k].ID}
		d.runs = d.runs[k:]
		d.runs[0].N -= rem
	}
	if d.off == len(d.data) {
		// Fully drained: keep the data array for the next burst (a
		// long-lived endpoint decoder would otherwise re-grow it on
		// every exchange), but drop the run slice — popped prefixes
		// alias it and must never be rewritten.
		d.data, d.off, d.runs = d.data[:0], 0, nil
	}
	return runs
}

// Next pops up to max decoded bytes with their per-byte ids.
func (d *StreamDecoder) Next(max int) (data []byte, ids []uint32) {
	data, runs := d.NextRuns(max)
	ids = make([]uint32, len(data))
	pos := 0
	for _, r := range runs {
		for i := 0; i < r.N; i++ {
			ids[pos] = r.ID
			pos++
		}
	}
	return data, ids
}

// Packet codec (Type 2): header = magic "DT" + uint32 data length,
// followed by the group encoding. The header lets the receiver verify
// integrity; the sender builds a *new* packet rather than mutating the
// caller's, preserving the original's semantics (§III-C Type 2).
//
// Clean-path variant: a packet whose payload is untainted travels under
// the magic "DP" with the raw bytes as the body — PacketOverhead bytes
// of cost instead of 5x. Receivers accept both magics.

var (
	packetMagic            = [2]byte{'D', 'T'}
	passthroughPacketMagic = [2]byte{'D', 'P'}
)

// PacketOverhead is the extra size of an encoded packet beyond
// WireLen(n).
const PacketOverhead = 6

// EncodePacket wraps one datagram payload with its per-byte ids.
func EncodePacket(data []byte, ids []uint32) []byte {
	return EncodeGroups(packetHeader(len(data)), data, ids)
}

// EncodePacketRuns wraps one datagram payload with its taint runs.
func EncodePacketRuns(data []byte, runs []Run) []byte {
	return EncodeRuns(packetHeader(len(data)), data, runs)
}

// EncodePacketPassthrough wraps one untainted datagram payload: the
// passthrough header plus the raw bytes, no group encoding.
func EncodePacketPassthrough(data []byte) []byte {
	out := make([]byte, 0, PacketOverhead+len(data))
	out = append(out, passthroughPacketMagic[0], passthroughPacketMagic[1])
	out = binary.BigEndian.AppendUint32(out, uint32(len(data)))
	return append(out, data...)
}

func packetHeader(n int) []byte {
	out := make([]byte, 0, PacketOverhead+WireLen(n))
	out = append(out, packetMagic[0], packetMagic[1])
	return binary.BigEndian.AppendUint32(out, uint32(n))
}

// packet kinds, one per header magic.
const (
	packetGroups = iota
	packetPassthrough
	packetUniform
	packetSparse
)

// packetParts validates any packet header and returns the body, its
// kind and the declared payload length. On ErrTruncatedPacket with an
// intact header the untrimmed body is returned so prefix decoding can
// salvage it.
func packetParts(raw []byte) (body []byte, kind, n int, err error) {
	if len(raw) < PacketOverhead {
		return nil, 0, 0, ErrTruncatedPacket
	}
	switch {
	case raw[0] == packetMagic[0] && raw[1] == packetMagic[1]:
		kind = packetGroups
	case raw[0] == passthroughPacketMagic[0] && raw[1] == passthroughPacketMagic[1]:
		kind = packetPassthrough
	case raw[0] == uniformPacketMagic[0] && raw[1] == uniformPacketMagic[1]:
		kind = packetUniform
	case raw[0] == sparsePacketMagic[0] && raw[1] == sparsePacketMagic[1]:
		kind = packetSparse
	default:
		return nil, 0, 0, errors.New("wire: bad taint packet magic")
	}
	n = int(binary.BigEndian.Uint32(raw[2:6]))
	body = raw[PacketOverhead:]
	want := n
	switch kind {
	case packetGroups:
		want = WireLen(n)
	case packetUniform:
		want = GlobalIDLen + n
	case packetSparse:
		want = SparseCountLen + n
		if len(body) >= SparseCountLen {
			k := int(binary.BigEndian.Uint32(body))
			if k > MaxSparseRanges {
				return nil, 0, 0, fmt.Errorf("wire: sparse packet declares %d ranges (limit %d)", k, MaxSparseRanges)
			}
			want += k * SparseRangeLen
		}
	}
	if len(body) < want {
		return body, kind, n, fmt.Errorf("%w: %d payload bytes declared, %d body bytes", ErrTruncatedPacket, n, len(body))
	}
	return body[:want], kind, n, nil
}

// tieredPacketRuns splits a validated uniform/sparse packet body into
// payload bytes and their run cover.
func tieredPacketRuns(body []byte, kind, n int) (data []byte, runs []Run, err error) {
	if kind == packetUniform {
		data = append([]byte(nil), body[GlobalIDLen:]...)
		if n > 0 {
			runs = []Run{{N: n, ID: binary.BigEndian.Uint32(body)}}
		}
		return data, runs, nil
	}
	k := int(binary.BigEndian.Uint32(body))
	table := body[SparseCountLen : SparseCountLen+k*SparseRangeLen]
	ranges, err := parseRangeTable(table, n)
	if err != nil {
		return nil, nil, err
	}
	data = append([]byte(nil), body[SparseCountLen+k*SparseRangeLen:]...)
	return data, rangeRunCover(nil, ranges, n), nil
}

// passthroughData copies a passthrough body out as payload bytes with
// one untainted run (nil for an empty body).
func passthroughData(body []byte) (data []byte, runs []Run) {
	data = append([]byte(nil), body...)
	if len(body) > 0 {
		runs = []Run{{N: len(body), ID: 0}}
	}
	return data, runs
}

// DecodePacketPrefix decodes as much of a possibly truncated encoded
// datagram as arrived whole — the analogue of UDP's silent truncation
// when the receiver's (enlarged) buffer is still smaller than the
// packet. Only the header (and, for the tiered flavours, the label
// metadata) must be intact.
func DecodePacketPrefix(raw []byte) (data []byte, ids []uint32, err error) {
	data, runs, err := DecodePacketPrefixRuns(raw)
	if err != nil {
		return nil, nil, err
	}
	return data, ExpandRuns(runs), nil
}

// DecodePacketPrefixRuns is DecodePacketPrefix in run form.
func DecodePacketPrefixRuns(raw []byte) (data []byte, runs []Run, err error) {
	body, kind, n, err := truncatedBody(raw)
	if err != nil {
		return nil, nil, err
	}
	switch kind {
	case packetPassthrough:
		data, runs = passthroughData(body)
		return data, runs, nil
	case packetUniform, packetSparse:
		return tieredPacketRuns(body, kind, n)
	}
	return DecodeGroupsRuns(body)
}

// truncatedBody returns the usable body of a possibly truncated packet:
// whole groups for the group flavour, every received byte for the
// passthrough flavour, every data byte past the (required intact) label
// metadata for the tiered flavours — with the declared length clipped
// to what actually arrived.
func truncatedBody(raw []byte) (body []byte, kind, n int, err error) {
	body, kind, n, err = packetParts(raw)
	if err == nil || !errors.Is(err, ErrTruncatedPacket) || len(raw) < PacketOverhead {
		return body, kind, n, err
	}
	switch kind {
	case packetPassthrough:
		return body, kind, len(body), nil
	case packetUniform:
		if len(body) < GlobalIDLen {
			return nil, 0, 0, err
		}
		return body, kind, len(body) - GlobalIDLen, nil
	case packetSparse:
		// The whole table must have arrived; the data tail may be cut,
		// so rebuild a clipped body with the surviving ranges.
		if len(body) < SparseCountLen {
			return nil, 0, 0, err
		}
		k := int(binary.BigEndian.Uint32(body))
		meta := SparseCountLen + k*SparseRangeLen
		if len(body) < meta {
			return nil, 0, 0, err
		}
		got := len(body) - meta
		if got < n {
			n = got
			body = salvageSparseBody(body, k, n)
		}
		return body, kind, n, nil
	}
	return body[:len(body)/GroupLen*GroupLen], kind, n, nil
}

// salvageSparseBody rebuilds a sparse packet body for the n data bytes
// that actually arrived: ranges past the cut are dropped, the one
// straddling it is clipped, and the count is rewritten. The input body
// is not mutated.
func salvageSparseBody(body []byte, k, n int) []byte {
	table := body[SparseCountLen : SparseCountLen+k*SparseRangeLen]
	out := make([]byte, SparseCountLen, len(body))
	kept := 0
	for i := 0; i+SparseRangeLen <= len(table); i += SparseRangeLen {
		off := int(binary.BigEndian.Uint32(table[i:]))
		ln := int(binary.BigEndian.Uint32(table[i+4:]))
		if off >= n {
			break
		}
		if off+ln > n {
			ln = n - off
		}
		out = binary.BigEndian.AppendUint32(out, uint32(off))
		out = binary.BigEndian.AppendUint32(out, uint32(ln))
		out = append(out, table[i+8:i+SparseRangeLen]...)
		kept++
	}
	binary.BigEndian.PutUint32(out, uint32(kept))
	return append(out, body[SparseCountLen+k*SparseRangeLen:][:n]...)
}

// DecodePacket splits an encoded datagram into payload and per-byte ids.
func DecodePacket(raw []byte) (data []byte, ids []uint32, err error) {
	data, runs, err := DecodePacketRuns(raw)
	if err != nil {
		return nil, nil, err
	}
	return data, ExpandRuns(runs), nil
}

// DecodePacketRuns splits an encoded datagram into payload and taint
// runs.
func DecodePacketRuns(raw []byte) (data []byte, runs []Run, err error) {
	body, kind, n, err := packetParts(raw)
	if err != nil {
		return nil, nil, err
	}
	switch kind {
	case packetPassthrough:
		data, runs = passthroughData(body)
		return data, runs, nil
	case packetUniform, packetSparse:
		return tieredPacketRuns(body, kind, n)
	}
	return DecodeGroupsRuns(body)
}
