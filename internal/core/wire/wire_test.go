package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func ids(vals ...uint32) []uint32 { return vals }

func TestWireLenFactor(t *testing.T) {
	// The 5x network-overhead prediction of §V-F.
	if WireLen(100) != 500 {
		t.Fatalf("WireLen(100) = %d", WireLen(100))
	}
	if DataLen(500) != 100 || DataLen(503) != 100 {
		t.Fatalf("DataLen = %d / %d", DataLen(500), DataLen(503))
	}
}

func TestEncodeDecodeGroups(t *testing.T) {
	raw := EncodeGroups(nil, []byte{0xAA, 0xBB}, ids(0, 0x01020304))
	want := []byte{0xAA, 0, 0, 0, 0, 0xBB, 1, 2, 3, 4}
	if !bytes.Equal(raw, want) {
		t.Fatalf("encoded = %x, want %x", raw, want)
	}
	data, gids, err := DecodeGroups(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, []byte{0xAA, 0xBB}) || !reflect.DeepEqual(gids, ids(0, 0x01020304)) {
		t.Fatalf("decoded %x %v", data, gids)
	}
}

func TestEncodeGroupsNilIDs(t *testing.T) {
	raw := EncodeGroups(nil, []byte{1, 2, 3}, nil)
	data, gids, err := DecodeGroups(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, []byte{1, 2, 3}) {
		t.Fatalf("data = %v", data)
	}
	for _, id := range gids {
		if id != 0 {
			t.Fatalf("untainted ids = %v", gids)
		}
	}
}

func TestEncodeGroupsAppendsToDst(t *testing.T) {
	dst := []byte("header")
	out := EncodeGroups(dst, []byte{9}, ids(7))
	if string(out[:6]) != "header" || len(out) != 6+GroupLen {
		t.Fatalf("out = %x", out)
	}
}

func TestEncodeGroupsMismatchedIDsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for mismatched ids")
		}
	}()
	EncodeGroups(nil, []byte{1, 2}, ids(1))
}

func TestDecodeGroupsRejectsPartial(t *testing.T) {
	if _, _, err := DecodeGroups(make([]byte, 7)); err == nil {
		t.Fatal("want error for non-multiple length")
	}
}

func TestStreamDecoderFragmentation(t *testing.T) {
	payload := []byte("hello, taints!")
	gids := make([]uint32, len(payload))
	for i := range gids {
		gids[i] = uint32(i * 3)
	}
	raw := EncodeGroups(nil, payload, gids)

	// Feed in pathological fragments: 1 byte at a time.
	var d StreamDecoder
	for _, b := range raw {
		d.Feed([]byte{b})
	}
	if d.PendingPartial() {
		t.Fatal("no partial group should remain")
	}
	data, got := d.Next(1 << 20)
	if !bytes.Equal(data, payload) || !reflect.DeepEqual(got, gids) {
		t.Fatalf("decoded %q %v", data, got)
	}
}

func TestStreamDecoderPartialThenRest(t *testing.T) {
	raw := EncodeGroups(nil, []byte{0x42}, ids(0x11223344))
	var d StreamDecoder
	d.Feed(raw[:3])
	if d.Buffered() != 0 || !d.PendingPartial() {
		t.Fatalf("buffered=%d partial=%v", d.Buffered(), d.PendingPartial())
	}
	d.Feed(raw[3:])
	data, gids := d.Next(10)
	if len(data) != 1 || data[0] != 0x42 || gids[0] != 0x11223344 {
		t.Fatalf("decoded %x %v", data, gids)
	}
}

func TestStreamDecoderNextRespectsMax(t *testing.T) {
	raw := EncodeGroups(nil, []byte("abcdef"), nil)
	var d StreamDecoder
	d.Feed(raw)
	first, _ := d.Next(2)
	second, _ := d.Next(100)
	if string(first) != "ab" || string(second) != "cdef" {
		t.Fatalf("chunks %q %q", first, second)
	}
	if d.Buffered() != 0 {
		t.Fatalf("leftover %d", d.Buffered())
	}
}

func TestPacketRoundTrip(t *testing.T) {
	data := []byte("datagram payload")
	gids := make([]uint32, len(data))
	gids[0], gids[5] = 9, 77
	pkt := EncodePacket(data, gids)
	if len(pkt) != PacketOverhead+WireLen(len(data)) {
		t.Fatalf("packet len = %d", len(pkt))
	}
	gotData, gotIDs, err := DecodePacket(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotData, data) || !reflect.DeepEqual(gotIDs, gids) {
		t.Fatalf("decoded %q %v", gotData, gotIDs)
	}
}

func TestPacketEmptyPayload(t *testing.T) {
	pkt := EncodePacket(nil, nil)
	data, gids, err := DecodePacket(pkt)
	if err != nil || len(data) != 0 || len(gids) != 0 {
		t.Fatalf("empty packet: %v %v %v", data, gids, err)
	}
}

func TestPacketErrors(t *testing.T) {
	cases := []struct {
		name string
		raw  []byte
	}{
		{name: "too short", raw: []byte{1, 2, 3}},
		{name: "bad magic", raw: []byte{'X', 'Y', 0, 0, 0, 0}},
		{name: "truncated body", raw: append([]byte{'D', 'T', 0, 0, 0, 2}, 1, 0, 0, 0, 0)},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, _, err := DecodePacket(tt.raw); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestPacketTrailingSlackIgnored(t *testing.T) {
	// Receivers allocate enlarged buffers; decoding must ignore bytes
	// past the declared payload (mirrors DatagramPacket enlargement).
	pkt := EncodePacket([]byte("ab"), nil)
	padded := append(pkt, make([]byte, 11)...)
	data, _, err := DecodePacket(padded)
	if err != nil || string(data) != "ab" {
		t.Fatalf("padded decode = %q %v", data, err)
	}
}

func TestQuickStreamRoundTripUnderRandomFragmentation(t *testing.T) {
	f := func(data []byte, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gids := make([]uint32, len(data))
		for i := range gids {
			gids[i] = rng.Uint32()
		}
		raw := EncodeGroups(nil, data, gids)
		var d StreamDecoder
		for len(raw) > 0 {
			n := 1 + rng.Intn(len(raw))
			d.Feed(raw[:n])
			raw = raw[n:]
		}
		gotData, gotIDs := d.Next(len(data) + 1)
		return bytes.Equal(gotData, data) && reflect.DeepEqual(gotIDs, gids) && !d.PendingPartial()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPacketRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		gids := make([]uint32, len(data))
		for i := range gids {
			gids[i] = uint32(i)
		}
		got, gotIDs, err := DecodePacket(EncodePacket(data, gids))
		if err != nil {
			return false
		}
		if len(data) == 0 {
			return len(got) == 0 && len(gotIDs) == 0
		}
		return bytes.Equal(got, data) && reflect.DeepEqual(gotIDs, gids)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
