// Package dlog is the node logger of the SIM scenarios (DSN'22 §V-B):
// "we set LOG.info method as sink points for all systems, and check if
// any log statement prints a tainted variable". Logger.Info formats a
// message and runs the agent's sink check over every tainted argument.
package dlog

import (
	"fmt"
	"sync"

	"dista/internal/core/taint"
	"dista/internal/core/tracker"
)

// SinkDesc is the descriptor SIM spec files use for the log sink point.
const SinkDesc = "LOG#info"

// Entry is one recorded log line.
type Entry struct {
	Node    string
	Message string
	Tainted bool // whether any argument carried a taint
}

// Logger is a per-node logger wired to the node's agent.
type Logger struct {
	agent *tracker.Agent

	mu      sync.Mutex
	entries []Entry
}

// New returns a logger for the agent's node.
func New(agent *tracker.Agent) *Logger {
	return &Logger{agent: agent}
}

// Info logs a formatted message. Arguments of the tainted value types
// (taint.Bytes, taint.String, taint.Int32, taint.Int64, taint.Taint)
// are checked against the LOG#info sink before formatting; their plain
// values are what the format sees.
func (l *Logger) Info(format string, args ...any) {
	tainted := false
	plain := make([]any, len(args))
	for i, arg := range args {
		var t taint.Taint
		switch v := arg.(type) {
		case taint.Bytes:
			t = v.Union()
			plain[i] = string(v.Data)
		case taint.String:
			t = v.Label
			plain[i] = v.Value
		case taint.Int32:
			t = v.Label
			plain[i] = v.Value
		case taint.Int64:
			t = v.Label
			plain[i] = v.Value
		case taint.Taint:
			t = v
			plain[i] = v.String()
		default:
			plain[i] = arg
		}
		if l.agent.CheckSink(SinkDesc, t) {
			tainted = true
		}
	}
	l.mu.Lock()
	l.entries = append(l.entries, Entry{
		Node:    l.agent.Node(),
		Message: fmt.Sprintf(format, plain...),
		Tainted: tainted,
	})
	l.mu.Unlock()
}

// Entries returns a copy of all recorded log lines.
func (l *Logger) Entries() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Entry, len(l.entries))
	copy(out, l.entries)
	return out
}

// TaintedCount returns how many log lines printed tainted data.
func (l *Logger) TaintedCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, e := range l.entries {
		if e.Tainted {
			n++
		}
	}
	return n
}
