package dlog

import (
	"testing"

	"dista/internal/core/taint"
	"dista/internal/core/tracker"
)

func TestInfoRecordsTaintedArgs(t *testing.T) {
	a := tracker.New("n1", tracker.ModeDista)
	l := New(a)
	secret := taint.String{Value: "zxid=7", Label: a.Source("FileTxnLog#read", "zxid2")}
	l.Info("current epoch from %s", secret)
	l.Info("plain message %d", 42)

	entries := l.Entries()
	if len(entries) != 2 {
		t.Fatalf("entries = %d", len(entries))
	}
	if !entries[0].Tainted || entries[0].Message != "current epoch from zxid=7" {
		t.Fatalf("entry 0 = %+v", entries[0])
	}
	if entries[1].Tainted {
		t.Fatal("plain log must not be tainted")
	}
	if l.TaintedCount() != 1 {
		t.Fatalf("tainted count = %d", l.TaintedCount())
	}
	if got := a.SinkTagValues(SinkDesc); len(got) != 1 || got[0] != "zxid2" {
		t.Fatalf("sink tags = %v", got)
	}
}

func TestInfoAllValueKinds(t *testing.T) {
	a := tracker.New("n", tracker.ModeDista)
	l := New(a)
	tt := a.Source("s", "k")
	l.Info("%s %s %d %d %s",
		taint.FromString("b", tt),
		taint.String{Value: "s", Label: tt},
		taint.Int32{Value: 1, Label: tt},
		taint.Int64{Value: 2, Label: tt},
		tt,
	)
	if l.TaintedCount() != 1 {
		t.Fatal("all tainted kinds must register")
	}
	if got := l.Entries()[0].Message; got != "b s 1 2 {k@n:1}" {
		t.Fatalf("message = %q", got)
	}
}

func TestOffModeLogsCleanly(t *testing.T) {
	a := tracker.New("n", tracker.ModeOff)
	l := New(a)
	l.Info("msg %s", taint.FromString("x", taint.Taint{}))
	if l.TaintedCount() != 0 || len(a.Observations()) != 0 {
		t.Fatal("off mode must not observe sinks")
	}
}

func TestSpecRestrictedSink(t *testing.T) {
	spec := tracker.NewSpec(nil, []string{"other#sink"})
	a := tracker.New("n", tracker.ModeDista, tracker.WithSpec(spec))
	l := New(a)
	l.Info("%s", taint.FromString("x", a.Tree().NewSource("t", "n:1")))
	if l.TaintedCount() != 0 {
		t.Fatal("LOG#info not in spec must not record")
	}
}
