// Package httpmini is a minimal HTTP/1.0-style client and server over
// the instrumented jre socket stack: the transport behind the JRE HTTP
// micro-benchmark case and the HTTP-flavoured protocols of the
// message-middleware systems. Bodies are tainted byte payloads; taints
// ride through the instrumented socket natives like any other traffic.
//
// The byte-level request/response codecs are exported so the minette
// framework can reuse them in its HTTP pipeline handlers.
package httpmini

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"dista/internal/core/taint"
	"dista/internal/jre"
)

// Request is an HTTP request with a tainted body.
type Request struct {
	Method  string
	Path    string
	Headers map[string]string
	Body    taint.Bytes
}

// Response is an HTTP response with a tainted body.
type Response struct {
	Status  int
	Headers map[string]string
	Body    taint.Bytes
}

// Handler computes the response for one request.
type Handler func(*Request) *Response

// ErrIncomplete reports that a byte-level parse needs more input.
var ErrIncomplete = errors.New("httpmini: incomplete message")

// statusText maps the handful of codes the simulation uses.
func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 404:
		return "Not Found"
	case 500:
		return "Internal Server Error"
	default:
		return "Status"
	}
}

// EncodeRequest renders a request; header bytes are untainted metadata,
// body bytes keep their labels.
func EncodeRequest(r *Request) taint.Bytes {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s %s HTTP/1.0\r\n", r.Method, r.Path)
	writeHeaders(&sb, r.Headers, r.Body.Len())
	return taint.WrapBytes([]byte(sb.String())).Append(r.Body)
}

// EncodeResponse renders a response.
func EncodeResponse(r *Response) taint.Bytes {
	var sb strings.Builder
	fmt.Fprintf(&sb, "HTTP/1.0 %d %s\r\n", r.Status, statusText(r.Status))
	writeHeaders(&sb, r.Headers, r.Body.Len())
	return taint.WrapBytes([]byte(sb.String())).Append(r.Body)
}

func writeHeaders(sb *strings.Builder, headers map[string]string, bodyLen int) {
	keys := make([]string, 0, len(headers))
	for k := range headers {
		if strings.EqualFold(k, "Content-Length") {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(sb, "%s: %s\r\n", k, headers[k])
	}
	fmt.Fprintf(sb, "Content-Length: %d\r\n\r\n", bodyLen)
}

// splitHead finds the header/body boundary, returning the head text and
// the body offset, or ErrIncomplete.
func splitHead(raw []byte) (string, int, error) {
	idx := strings.Index(string(raw), "\r\n\r\n")
	if idx < 0 {
		return "", 0, ErrIncomplete
	}
	return string(raw[:idx]), idx + 4, nil
}

// parseHeaders parses "K: V" lines.
func parseHeaders(lines []string) (map[string]string, error) {
	h := make(map[string]string, len(lines))
	for _, line := range lines {
		k, v, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("httpmini: bad header line %q", line)
		}
		h[strings.TrimSpace(k)] = strings.TrimSpace(v)
	}
	return h, nil
}

func contentLength(h map[string]string) (int, error) {
	v, ok := h["Content-Length"]
	if !ok {
		return 0, nil
	}
	return strconv.Atoi(v)
}

// ParseRequestBytes parses one request from raw, returning it and the
// number of bytes consumed, or ErrIncomplete when more input is needed.
// Body labels are preserved by slicing raw.
func ParseRequestBytes(raw taint.Bytes) (*Request, int, error) {
	head, bodyOff, err := splitHead(raw.Data)
	if err != nil {
		return nil, 0, err
	}
	lines := strings.Split(head, "\r\n")
	parts := strings.Split(lines[0], " ")
	if len(parts) != 3 {
		return nil, 0, fmt.Errorf("httpmini: bad request line %q", lines[0])
	}
	headers, err := parseHeaders(lines[1:])
	if err != nil {
		return nil, 0, err
	}
	n, err := contentLength(headers)
	if err != nil {
		return nil, 0, err
	}
	if raw.Len() < bodyOff+n {
		return nil, 0, ErrIncomplete
	}
	return &Request{
		Method:  parts[0],
		Path:    parts[1],
		Headers: headers,
		Body:    raw.Slice(bodyOff, bodyOff+n).Clone(),
	}, bodyOff + n, nil
}

// ParseResponseBytes parses one response from raw, returning it and the
// bytes consumed, or ErrIncomplete.
func ParseResponseBytes(raw taint.Bytes) (*Response, int, error) {
	head, bodyOff, err := splitHead(raw.Data)
	if err != nil {
		return nil, 0, err
	}
	lines := strings.Split(head, "\r\n")
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/") {
		return nil, 0, fmt.Errorf("httpmini: bad status line %q", lines[0])
	}
	status, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, 0, fmt.Errorf("httpmini: bad status %q", parts[1])
	}
	headers, err := parseHeaders(lines[1:])
	if err != nil {
		return nil, 0, err
	}
	n, err := contentLength(headers)
	if err != nil {
		return nil, 0, err
	}
	if raw.Len() < bodyOff+n {
		return nil, 0, ErrIncomplete
	}
	return &Response{
		Status:  status,
		Headers: headers,
		Body:    raw.Slice(bodyOff, bodyOff+n).Clone(),
	}, bodyOff + n, nil
}

// readMessage accumulates stream reads until parse succeeds.
func readMessage[T any](in jre.InputStream, parse func(taint.Bytes) (T, int, error)) (T, error) {
	var acc taint.Bytes
	var zero T
	chunk := taint.MakeBytes(4096)
	for {
		if acc.Len() > 0 {
			msg, _, err := parse(acc)
			if err == nil {
				return msg, nil
			}
			if !errors.Is(err, ErrIncomplete) {
				return zero, err
			}
		}
		n, err := in.Read(&chunk)
		if n > 0 {
			acc = acc.Append(chunk.Slice(0, n).Clone())
			continue
		}
		if err != nil {
			return zero, err
		}
	}
}

// Server is a minimal HTTP server over jre sockets.
type Server struct {
	ss      *jre.ServerSocket
	handler Handler
	done    chan struct{}
}

// Serve starts a server at addr; each connection handles one request
// (HTTP/1.0 style) and closes.
func Serve(env *jre.Env, addr string, handler Handler) (*Server, error) {
	ss, err := jre.ListenSocket(env, addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ss: ss, handler: handler, done: make(chan struct{})}
	go s.acceptLoop()
	return s, nil
}

func (s *Server) acceptLoop() {
	defer close(s.done)
	for {
		sock, err := s.ss.Accept()
		if err != nil {
			return
		}
		go s.handleConn(sock)
	}
}

func (s *Server) handleConn(sock *jre.Socket) {
	defer sock.Close()
	req, err := readMessage(sock.InputStream(), ParseRequestBytes)
	if err != nil {
		return
	}
	resp := s.handler(req)
	if resp == nil {
		resp = &Response{Status: 500}
	}
	_ = sock.OutputStream().Write(EncodeResponse(resp))
}

// Close stops the server and waits for the accept loop to exit.
func (s *Server) Close() error {
	err := s.ss.Close()
	<-s.done
	return err
}

// Do sends a request to addr and waits for the response.
func Do(env *jre.Env, addr string, req *Request) (*Response, error) {
	sock, err := jre.DialSocket(env, addr)
	if err != nil {
		return nil, err
	}
	defer sock.Close()
	if err := sock.OutputStream().Write(EncodeRequest(req)); err != nil {
		return nil, err
	}
	return readMessage(sock.InputStream(), ParseResponseBytes)
}

// Get fetches a path.
func Get(env *jre.Env, addr, path string) (*Response, error) {
	return Do(env, addr, &Request{Method: "GET", Path: path})
}

// Post sends a tainted body to a path.
func Post(env *jre.Env, addr, path string, body taint.Bytes) (*Response, error) {
	return Do(env, addr, &Request{Method: "POST", Path: path, Body: body})
}
