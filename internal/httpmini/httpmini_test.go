package httpmini

import (
	"errors"
	"strings"
	"testing"

	"dista/internal/core/taint"
	"dista/internal/core/tracker"
	"dista/internal/jre"
	"dista/internal/netsim"
	"dista/internal/taintmap"
)

func envs(t *testing.T, mode tracker.Mode, n int) []*jre.Env {
	t.Helper()
	net := netsim.New()
	store := taintmap.NewStore()
	out := make([]*jre.Env, n)
	for i := range out {
		name := "node" + string(rune('1'+i))
		a := tracker.New(name, mode)
		a = tracker.New(name, mode, tracker.WithTaintMap(taintmap.NewLocalClient(store, a.Tree())))
		out[i] = jre.NewEnv(net, a)
	}
	return out
}

func TestRequestCodecRoundTrip(t *testing.T) {
	tr := taint.NewTree()
	body := taint.FromString("payload", tr.NewSource("b", "l"))
	req := &Request{Method: "POST", Path: "/msg", Headers: map[string]string{"X-K": "v"}, Body: body}
	raw := EncodeRequest(req)
	got, consumed, err := ParseRequestBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if consumed != raw.Len() {
		t.Fatalf("consumed %d of %d", consumed, raw.Len())
	}
	if got.Method != "POST" || got.Path != "/msg" || got.Headers["X-K"] != "v" {
		t.Fatalf("request = %+v", got)
	}
	if string(got.Body.Data) != "payload" || !got.Body.Union().Has("b") {
		t.Fatal("body or taint lost in codec")
	}
}

func TestResponseCodecRoundTrip(t *testing.T) {
	resp := &Response{Status: 404, Body: taint.WrapBytes([]byte("nope"))}
	raw := EncodeResponse(resp)
	got, _, err := ParseResponseBytes(raw)
	if err != nil || got.Status != 404 || string(got.Body.Data) != "nope" {
		t.Fatalf("response = %+v, %v", got, err)
	}
}

func TestParseIncomplete(t *testing.T) {
	req := &Request{Method: "GET", Path: "/", Body: taint.WrapBytes([]byte("12345"))}
	raw := EncodeRequest(req)
	for _, cut := range []int{3, raw.Len() - 8, raw.Len() - 1} {
		if _, _, err := ParseRequestBytes(raw.Slice(0, cut)); !errors.Is(err, ErrIncomplete) {
			t.Fatalf("cut %d: err = %v, want ErrIncomplete", cut, err)
		}
	}
}

func TestParseMalformed(t *testing.T) {
	cases := []string{
		"BROKEN\r\n\r\n",
		"GET / HTTP/1.0\r\nNoColonHeader\r\n\r\n",
		"GET / HTTP/1.0\r\nContent-Length: x\r\n\r\n",
	}
	for _, c := range cases {
		if _, _, err := ParseRequestBytes(taint.WrapBytes([]byte(c))); err == nil || errors.Is(err, ErrIncomplete) {
			t.Fatalf("case %q: err = %v", c, err)
		}
	}
	if _, _, err := ParseResponseBytes(taint.WrapBytes([]byte("HTTP/1.0 xx\r\n\r\n"))); err == nil {
		t.Fatal("bad status must error")
	}
}

func TestServerTaintedEcho(t *testing.T) {
	e := envs(t, tracker.ModeDista, 2)
	srv, err := Serve(e[1], "web:80", func(r *Request) *Response {
		// Echo the body back with a marker header.
		return &Response{Status: 200, Headers: map[string]string{"X-Echo": "1"}, Body: r.Body}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	secret := taint.FromString(strings.Repeat("html ", 100), e[0].Agent.Source("s", "page"))
	resp, err := Post(e[0], "web:80", "/echo", secret)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || resp.Headers["X-Echo"] != "1" {
		t.Fatalf("resp = %+v", resp)
	}
	if string(resp.Body.Data) != string(secret.Data) {
		t.Fatal("body corrupted")
	}
	// The taint crossed client -> server -> client.
	if !resp.Body.Union().Has("page") {
		t.Fatal("taint lost across the HTTP round trip")
	}
}

func TestServerGet(t *testing.T) {
	e := envs(t, tracker.ModeOff, 2)
	srv, err := Serve(e[1], "web:80", func(r *Request) *Response {
		if r.Path != "/index.html" {
			return &Response{Status: 404}
		}
		return &Response{Status: 200, Body: taint.WrapBytes([]byte("<html>hi</html>"))}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := Get(e[0], "web:80", "/index.html")
	if err != nil || resp.Status != 200 || string(resp.Body.Data) != "<html>hi</html>" {
		t.Fatalf("resp = %+v, %v", resp, err)
	}
	resp, err = Get(e[0], "web:80", "/missing")
	if err != nil || resp.Status != 404 {
		t.Fatalf("missing = %+v, %v", resp, err)
	}
}

func TestPhosphorModeDropsBodyTaint(t *testing.T) {
	e := envs(t, tracker.ModePhosphor, 2)
	srv, err := Serve(e[1], "web:80", func(r *Request) *Response {
		return &Response{Status: 200, Body: r.Body}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	secret := taint.FromString("x", e[0].Agent.Source("s", "gone"))
	resp, err := Post(e[0], "web:80", "/", secret)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Body.Union().Has("gone") {
		t.Fatal("phosphor mode must not carry taints across HTTP")
	}
}
