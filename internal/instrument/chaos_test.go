package instrument

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"dista/internal/core/taint"
	"dista/internal/core/tracker"
	"dista/internal/netsim"
	"dista/internal/taintmap"
)

// Chaos regression for the clean-path bypass and the adaptive tiering
// layer (run by `make chaos`): kill and restart the Taint Map under a
// stream mixing clean, uniform, sparse and dense messages over an
// adaptive endpoint pair, and assert neither the bypass nor a tier
// switch ever becomes an unsoundness hole. The invariant: a tainted
// buffer is either transferred with its labels intact or refused
// loudly — reconnect/degraded mode must never downgrade it onto the
// passthrough or a wrong-label uniform frame, and clean traffic must
// keep flowing right through the outage.

// chaosAcceptor adapts a netsim.Listener to the taintmap.Acceptor
// interface (the package-internal adapter is not exported).
type chaosAcceptor struct{ l *netsim.Listener }

func (a chaosAcceptor) Accept() (io.ReadWriteCloser, error) { return a.l.Accept() }
func (a chaosAcceptor) Close() error                        { return a.l.Close() }

func TestChaosPassthroughNoCleanDowngrade(t *testing.T) {
	net := netsim.New()
	store := taintmap.NewStore() // survives server restarts

	startServer := func() *taintmap.Server {
		l, err := net.Listen("tm:chaos")
		if err != nil {
			t.Fatalf("chaos listen: %v", err)
		}
		srv := taintmap.NewServer(store, chaosAcceptor{l: l}, nil,
			taintmap.WithReadTimeout(200*time.Millisecond))
		srv.Start()
		return srv
	}
	srv := startServer()

	// Sender rides the outage on the resilience layer; the receiver
	// resolves against the shared store directly, so any Global ID that
	// made it onto the wire is resolvable.
	senderAgent := tracker.New("n1", tracker.ModeDista)
	client := taintmap.NewResilientClient(
		func() (io.ReadWriteCloser, error) { return net.DialFrom("n1", "tm:chaos") },
		senderAgent.Tree(),
		taintmap.ResilientOptions{
			CallTimeout:      200 * time.Millisecond,
			BackoffBase:      time.Millisecond,
			BackoffMax:       10 * time.Millisecond,
			BreakerThreshold: 2,
		})
	defer client.Close()
	senderAgent = tracker.New("n1", tracker.ModeDista,
		tracker.WithTaintMap(client), tracker.WithLocalID(senderAgent.LocalID()))

	recvAgent := tracker.New("n2", tracker.ModeDista)
	recvAgent = tracker.New("n2", tracker.ModeDista,
		tracker.WithTaintMap(taintmap.NewLocalClient(store, recvAgent.Tree())),
		tracker.WithLocalID(recvAgent.LocalID()))

	ca, cb := net.Pipe()
	sender, receiver := NewAdaptiveEndpoint(senderAgent, ca), NewAdaptiveEndpoint(recvAgent, cb)

	// Fixed-size app messages: first byte says what the receiver must
	// find — 'C' clean, 'U' uniformly tainted, 'S' two tainted islands
	// (bytes 8..16 and 24..32), 'D' densely tainted on even bytes. The
	// mix forces the sender's density tracker through every tier while
	// the Taint Map dies and recovers underneath it.
	const msgLen = 32
	const rounds = 200
	type sent struct {
		kind byte
		tag  string
	}
	var mu sync.Mutex
	var delivered []sent

	recvErr := make(chan error, 1)
	go func() {
		recvErr <- func() error {
			buf := taint.MakeBytes(msgLen)
			for i := 0; ; i++ {
				for got := 0; got < msgLen; {
					sub := buf.Slice(got, msgLen)
					n, err := receiver.Read(&sub)
					if err == io.EOF && got == 0 && n == 0 {
						return nil
					}
					if err != nil {
						return fmt.Errorf("read: %w", err)
					}
					got += n
				}
				mu.Lock()
				if i >= len(delivered) {
					mu.Unlock()
					return fmt.Errorf("message %d arrived but only %d were sent", i, len(delivered))
				}
				want := delivered[i]
				mu.Unlock()
				if buf.Data[0] != want.kind {
					return fmt.Errorf("message %d is %q, want %q", i, buf.Data[0], want.kind)
				}
				for k := 0; k < msgLen; k++ {
					lbl := buf.LabelAt(k)
					if !chaosByteTainted(want.kind, k) {
						// Clean bytes — whole clean messages and the gaps of
						// sparse/dense ones — must never grow a label: a tier
						// switch that smeared a neighbor's uniform id over
						// them would show up here.
						if !lbl.Empty() {
							return fmt.Errorf("message %d (%q) byte %d grew taint %v",
								i, want.kind, k, lbl.Values())
						}
						continue
					}
					// THE invariant: a tainted message that made it across
					// must still carry its label on every tainted byte.
					// Losing it would mean an outage or a tier transition
					// downgraded tainted data onto the passthrough (or a
					// wrong-label uniform) frame.
					if !lbl.Has(want.tag) {
						return fmt.Errorf("message %d (%q) byte %d lost label %q (labels %v)",
							i, want.kind, k, want.tag, lbl.Values())
					}
				}
			}
		}()
	}()

	var refused, cleanSent int
	taintedSent := map[byte]int{}
	kinds := []byte{'C', 'U', 'S', 'D'}
	for i := 0; i < rounds; i++ {
		switch i {
		case rounds / 4:
			srv.Close() // outage: degraded local mode
		case rounds / 2:
			srv = startServer() // reconnect + journal drain
			// Wait out the backoff so the back half of the run exercises
			// the recovered path, not just the outage.
			deadline := time.Now().Add(10 * time.Second)
			for !client.Health().Connected && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if !client.Health().Connected {
				t.Fatal("client never reconnected after server restart")
			}
		}

		kind := kinds[i%len(kinds)]
		if kind == 'C' {
			// Record before writing: the receiver may see the bytes the
			// instant Write hands them to the pipe.
			mu.Lock()
			delivered = append(delivered, sent{kind: 'C'})
			mu.Unlock()
			msg := taint.WrapBytes(fill('C', msgLen))
			if err := sender.Write(msg); err != nil {
				t.Fatalf("round %d: clean write must survive the outage: %v", i, err)
			}
			cleanSent++
			continue
		}

		// Fresh source value every round forces a fresh registration, so
		// outages are actually exercised instead of served by the
		// GlobalID cache.
		tag := fmt.Sprintf("chaos%d", i)
		src := senderAgent.Source("v"+tag, tag)
		msg := taint.WrapBytes(fill(kind, msgLen))
		switch kind {
		case 'U':
			msg.SetRange(0, msgLen, src)
		case 'S':
			msg.SetRange(8, 16, src)
			msg.SetRange(24, 32, src)
		case 'D':
			for k := 0; k < msgLen; k += 2 {
				msg.SetLabel(k, src)
			}
		}
		mu.Lock()
		delivered = append(delivered, sent{kind: kind, tag: tag})
		mu.Unlock()
		err := sender.Write(msg)
		if err != nil {
			// Refused loudly: nothing hit the wire, un-record it. No
			// later message exists yet (single sender), so the receiver
			// cannot have indexed this entry.
			mu.Lock()
			delivered = delivered[:len(delivered)-1]
			mu.Unlock()
			if !errors.Is(err, taintmap.ErrDegraded) && !errors.Is(err, taintmap.ErrGlobalIDPending) {
				t.Fatalf("round %d: tainted write failed untyped: %v", i, err)
			}
			refused++
			continue
		}
		taintedSent[kind]++
	}
	ca.Close()

	if err := <-recvErr; err != nil {
		t.Fatal(err)
	}
	srv.Close()

	if refused == 0 {
		t.Fatal("no tainted write was refused; the outage never bit and the test is vacuous")
	}
	for _, kind := range kinds[1:] {
		if taintedSent[kind] == 0 {
			t.Fatalf("no %q write succeeded; cannot check label delivery for that tier", kind)
		}
	}
	t.Logf("delivered %d uniform + %d sparse + %d dense + %d clean messages, %d refused during outage",
		taintedSent['U'], taintedSent['S'], taintedSent['D'], cleanSent, refused)
}

// chaosByteTainted says whether byte k of a kind-shaped chaos message
// was sent with a label.
func chaosByteTainted(kind byte, k int) bool {
	switch kind {
	case 'U':
		return true
	case 'S':
		return (k >= 8 && k < 16) || (k >= 24 && k < 32)
	case 'D':
		return k%2 == 0
	default:
		return false
	}
}

// fill returns an n-byte message starting with kind.
func fill(kind byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = kind
	}
	return b
}
