package instrument

import (
	"io"

	"dista/internal/core/taint"
	"dista/internal/core/tracker"
	"dista/internal/taintmap"
)

// DialTaintMap turns the agent-args Taint Map spec into a connected
// client for tracker.WithTaintMap — the launch-script path from a
// `taintmap=...` value to the handle the endpoints register through.
// One address dials the standalone resilient client; a ';'-separated
// list names members of a partitioned cluster, and the client
// bootstraps its ring from the first member that answers (the list only
// has to reach the cluster, not describe its partition layout). dial
// opens one connection to an address and is retained for reconnects.
func DialTaintMap(args tracker.AgentArgs, tree *taint.Tree, dial func(addr string) (io.ReadWriteCloser, error), opt taintmap.ClusterOptions) (taintmap.Client, error) {
	addrs := args.TaintMapAddrs()
	if len(addrs) == 0 {
		return nil, ErrNoTaintMap
	}
	if opt.OpTimeout == 0 && args.Deadline > 0 {
		// The agent-args deadline rides down into the cluster client as
		// the whole-operation bound on lookups; an explicit option wins.
		opt.OpTimeout = args.Deadline
	}
	return taintmap.DialClusterAddrs(addrs, dial, tree, opt)
}
