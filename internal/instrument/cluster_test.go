package instrument

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"

	"dista/internal/core/taint"
	"dista/internal/core/tracker"
	"dista/internal/netsim"
	"dista/internal/taintmap"
)

// TestDialTaintMapSingle wires the one-address agent-args form: the
// degenerate deployment must get the plain resilient single-server
// client, not a routing layer over a ring of one.
func TestDialTaintMapSingle(t *testing.T) {
	network := netsim.New()
	srv, err := taintmap.StartSimServer(network, "tm:1")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	args, err := tracker.ParseAgentArgs("mode=dista,taintmap=tm:1")
	if err != nil {
		t.Fatal(err)
	}
	tree := taint.NewTree()
	client, err := DialTaintMap(args, tree, func(addr string) (io.ReadWriteCloser, error) {
		return network.DialFrom("agent:1", addr)
	}, taintmap.ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, ok := client.(*taintmap.ResilientClient); !ok {
		t.Fatalf("single-address client is %T, want *taintmap.ResilientClient", client)
	}

	src := tree.NewSource("single", "agent:1")
	id, err := client.Register(src)
	if err != nil || id == 0 {
		t.Fatalf("Register = %d, %v", id, err)
	}
	got, err := client.Lookup(id)
	if err != nil || !sameTaint(got, src) {
		t.Fatalf("Lookup(%d) = %v, %v; want the registered taint", id, got, err)
	}
}

// sameTaint reports whether two taints have byte-identical content — the
// canonical wire blob is the Taint Map's identity, so it is ours too.
func sameTaint(a, b taint.Taint) bool {
	ab, aerr := taint.MarshalTaint(a)
	bb, berr := taint.MarshalTaint(b)
	return aerr == nil && berr == nil && bytes.Equal(ab, bb)
}

// TestDialTaintMapCluster wires the multi-address form against a live
// 3-member cluster: the ring must be bootstrapped from the listed
// members and registrations must spread across partitions — the agent
// never names a partition, only addresses.
func TestDialTaintMapCluster(t *testing.T) {
	network := netsim.New()
	servers, ring, err := taintmap.StartSimCluster(network, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	args, err := tracker.ParseAgentArgs("mode=dista,taintmap=tm0:1;tm1:1;tm2:1")
	if err != nil {
		t.Fatal(err)
	}
	if got := args.TaintMapAddrs(); len(got) != 3 {
		t.Fatalf("TaintMapAddrs = %q, want 3 addresses", got)
	}
	tree := taint.NewTree()
	client, err := DialTaintMap(args, tree, func(addr string) (io.ReadWriteCloser, error) {
		return network.DialFrom("agent:1", addr)
	}, taintmap.ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	cc, ok := client.(*taintmap.ClusterClient)
	if !ok {
		t.Fatalf("multi-address client is %T, want *taintmap.ClusterClient", client)
	}
	if got := cc.Ring(); got.Epoch != ring.Epoch || len(got.Members()) != 3 {
		t.Fatalf("bootstrapped ring epoch %d with %d members, want epoch %d with 3",
			got.Epoch, len(got.Members()), ring.Epoch)
	}

	parts := make(map[uint32]bool)
	ids := make([]uint32, 0, 64)
	srcs := make([]taint.Taint, 0, 64)
	for i := 0; i < 64; i++ {
		src := tree.NewSource(fmt.Sprintf("clustered-%d", i), "agent:1")
		id, err := client.Register(src)
		if err != nil {
			t.Fatalf("Register %d: %v", i, err)
		}
		parts[taintmap.PartitionOf(id)] = true
		ids = append(ids, id)
		srcs = append(srcs, src)
	}
	if len(parts) < 2 {
		t.Fatalf("64 registrations landed on partitions %v; want spread over several", parts)
	}
	for i, id := range ids {
		got, err := client.Lookup(id)
		if err != nil || !sameTaint(got, srcs[i]) {
			t.Fatalf("Lookup(%d) = %v, %v; want taint %d back", id, got, err, i)
		}
	}
}

// TestDialTaintMapBootstrapSkipsDeadSeed cuts the first listed member
// off the network: bootstrap must fall through to a live member instead
// of failing on the dead seed.
func TestDialTaintMapBootstrapSkipsDeadSeed(t *testing.T) {
	network := netsim.New()
	servers, _, err := taintmap.StartSimCluster(network, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	network.Partition("tm0", "*")

	args, err := tracker.ParseAgentArgs("taintmap=tm0:1;tm1:1;tm2:1")
	if err != nil {
		t.Fatal(err)
	}
	tree := taint.NewTree()
	client, err := DialTaintMap(args, tree, func(addr string) (io.ReadWriteCloser, error) {
		return network.DialFrom("agent:1", addr)
	}, taintmap.ClusterOptions{})
	if err != nil {
		t.Fatalf("bootstrap with a dead seed: %v", err)
	}
	client.Close()
}

// TestDialTaintMapNoAddresses pins the error contract: an empty
// taintmap value is ErrNoTaintMap, same as a dista-mode agent with no
// client at all.
func TestDialTaintMapNoAddresses(t *testing.T) {
	args, err := tracker.ParseAgentArgs("mode=dista")
	if err != nil {
		t.Fatal(err)
	}
	_, err = DialTaintMap(args, taint.NewTree(), func(string) (io.ReadWriteCloser, error) {
		t.Fatal("dial must not be called with no addresses")
		return nil, nil
	}, taintmap.ClusterOptions{})
	if !errors.Is(err, ErrNoTaintMap) {
		t.Fatalf("DialTaintMap with no addresses = %v, want ErrNoTaintMap", err)
	}
}
