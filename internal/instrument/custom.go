package instrument

import (
	"io"
	"sync"

	"dista/internal/core/taint"
	"dista/internal/core/tracker"
	"dista/internal/core/wire"
)

// Support for system-specific native communication methods (§VI
// "Support for specific JNI methods"): developers with their own native
// transport wrap it in a RawTransport and register it, and DisTA's
// Type 1 wrapper semantics apply unchanged.

// RawTransport is the minimal surface of a custom native send/receive
// pair: the analogue of a user's own JNI methods.
type RawTransport interface {
	// SendRaw transmits the whole buffer.
	SendRaw(b []byte) error
	// RecvRaw performs one read, returning the byte count; io.EOF at
	// end of stream.
	RecvRaw(b []byte) (int, error)
}

// CustomEndpoint applies the stream-oriented (Type 1) wrapper to a
// custom transport, exactly as Endpoint does for the standard socket
// natives.
type CustomEndpoint struct {
	agent *tracker.Agent
	rt    RawTransport

	wmu sync.Mutex

	rmu     sync.Mutex
	dec     wire.StreamDecoder
	readErr error
}

// WrapCustom instruments a custom transport for the given agent. The
// method pair should also be announced with RegisterCustomMethods so
// audits of the instrumentation surface (Table I listings) include it.
func WrapCustom(agent *tracker.Agent, rt RawTransport) *CustomEndpoint {
	return &CustomEndpoint{agent: agent, rt: rt}
}

// Write sends b with its taints through the custom native.
func (e *CustomEndpoint) Write(b taint.Bytes) error {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	if e.agent.Mode() != tracker.ModeDista {
		e.agent.AddTraffic(len(b.Data), len(b.Data))
		return e.rt.SendRaw(b.Data)
	}
	runs, err := registerRuns(e.agent, b)
	if err != nil {
		return err
	}
	raw := wire.EncodeRuns(nil, b.Data, runs)
	e.agent.AddTraffic(len(b.Data), len(raw))
	return e.rt.SendRaw(raw)
}

// Read fills buf with data and taints from the custom native.
func (e *CustomEndpoint) Read(buf *taint.Bytes) (int, error) {
	if len(buf.Data) == 0 {
		return 0, nil
	}
	if e.agent.Mode() != tracker.ModeDista {
		return e.rt.RecvRaw(buf.Data)
	}
	e.rmu.Lock()
	defer e.rmu.Unlock()
	if err := e.fill(len(buf.Data)); err != nil {
		return 0, err
	}
	data, runs := e.dec.NextRuns(len(buf.Data))
	labels, err := resolveRuns(e.agent, runs)
	if err != nil {
		return 0, err
	}
	copy(buf.Data, data)
	adoptRuns(buf, runs, labels)
	return len(data), nil
}

func (e *CustomEndpoint) fill(want int) error {
	if e.dec.Buffered() > 0 {
		return nil
	}
	if e.readErr != nil {
		return e.readErr
	}
	raw := make([]byte, wire.WireLen(want))
	for e.dec.Buffered() == 0 {
		n, err := e.rt.RecvRaw(raw)
		if n > 0 {
			e.dec.Feed(raw[:n])
		}
		if err != nil {
			if err == io.EOF && e.dec.PendingPartial() {
				err = io.ErrUnexpectedEOF
			}
			e.readErr = err
			if e.dec.Buffered() > 0 {
				return nil
			}
			return err
		}
	}
	return nil
}

// customRegistry holds user-registered method rows.
var customRegistry struct {
	mu      sync.Mutex
	methods []Method
}

// RegisterCustomMethods announces user-instrumented native methods so
// they appear alongside the built-in Table I registry.
func RegisterCustomMethods(methods ...Method) {
	customRegistry.mu.Lock()
	defer customRegistry.mu.Unlock()
	customRegistry.methods = append(customRegistry.methods, methods...)
}

// ExtendedRegistry returns the built-in registry plus all registered
// custom methods.
func ExtendedRegistry() []Method {
	customRegistry.mu.Lock()
	defer customRegistry.mu.Unlock()
	out := make([]Method, 0, len(Registry)+len(customRegistry.methods))
	out = append(out, Registry...)
	out = append(out, customRegistry.methods...)
	return out
}
