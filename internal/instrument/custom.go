package instrument

import (
	"io"
	"sync"

	"dista/internal/core/taint"
	"dista/internal/core/tracker"
	"dista/internal/core/wire"
)

// Support for system-specific native communication methods (§VI
// "Support for specific JNI methods"): developers with their own native
// transport wrap it in a RawTransport and register it, and DisTA's
// Type 1 wrapper semantics apply unchanged.

// RawTransport is the minimal surface of a custom native send/receive
// pair: the analogue of a user's own JNI methods.
type RawTransport interface {
	// SendRaw transmits the whole buffer.
	SendRaw(b []byte) error
	// RecvRaw performs one read, returning the byte count; io.EOF at
	// end of stream.
	RecvRaw(b []byte) (int, error)
}

// CustomEndpoint applies the stream-oriented (Type 1) wrapper to a
// custom transport, exactly as Endpoint does for the standard socket
// natives.
type CustomEndpoint struct {
	agent *tracker.Agent
	rt    RawTransport

	wmu        sync.Mutex
	wroteMagic bool

	rmu     sync.Mutex
	dec     wire.FrameDecoder
	rbuf    []byte
	readErr error
}

// WrapCustom instruments a custom transport for the given agent. The
// method pair should also be announced with RegisterCustomMethods so
// audits of the instrumentation surface (Table I listings) include it.
func WrapCustom(agent *tracker.Agent, rt RawTransport) *CustomEndpoint {
	return &CustomEndpoint{agent: agent, rt: rt}
}

// Write sends b with its taints through the custom native. Like the
// socket endpoint, a clean buffer travels as a passthrough frame; a
// custom transport may be message-oriented, so the frame is assembled
// contiguously (in a pooled buffer) rather than as two sends.
func (e *CustomEndpoint) Write(b taint.Bytes) error {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	if e.agent.Mode() != tracker.ModeDista {
		e.agent.AddTraffic(len(b.Data), len(b.Data))
		return e.rt.SendRaw(b.Data)
	}
	if len(b.Data) == 0 {
		return e.rt.SendRaw(nil)
	}
	pre := 0
	if !e.wroteMagic {
		pre = wire.StreamMagicLen
	}
	var out []byte
	var buf *[]byte
	if b.Clean() {
		buf = wire.GetBuf(pre + wire.PassthroughFrameLen(len(b.Data)))
		out = *buf
		if pre > 0 {
			out = wire.AppendStreamMagic(out)
		}
		out = wire.AppendPassthroughFrame(out, b.Data)
	} else {
		runs, err := registerRuns(e.agent, b, nil)
		if err != nil {
			return err
		}
		buf = wire.GetBuf(pre + wire.GroupsFrameLen(len(b.Data)) + wire.EncodeSlack)
		out = *buf
		if pre > 0 {
			out = wire.AppendStreamMagic(out)
		}
		out = wire.AppendGroupsFrame(out, b.Data, runs)
	}
	e.agent.AddTraffic(len(b.Data), len(out))
	err := e.rt.SendRaw(out)
	*buf = out
	wire.PutBuf(buf)
	if err == nil {
		e.wroteMagic = true
	}
	return err
}

// Read fills buf with data and taints from the custom native.
func (e *CustomEndpoint) Read(buf *taint.Bytes) (int, error) {
	if len(buf.Data) == 0 {
		return 0, nil
	}
	if e.agent.Mode() != tracker.ModeDista {
		return e.rt.RecvRaw(buf.Data)
	}
	e.rmu.Lock()
	defer e.rmu.Unlock()
	if err := e.fill(len(buf.Data)); err != nil {
		return 0, err
	}
	n, runs := e.dec.NextRunsInto(buf.Data)
	if wire.RunsAllUntainted(runs) {
		if buf.HasShadow() {
			buf.SetRange(0, n, taint.Taint{})
		}
		return n, nil
	}
	labels, err := resolveRuns(e.agent, runs)
	if err != nil {
		return 0, err
	}
	adoptRuns(buf, runs, labels)
	return n, nil
}

func (e *CustomEndpoint) fill(want int) error {
	if e.dec.Buffered() > 0 {
		return nil
	}
	if e.readErr != nil {
		return e.readErr
	}
	if need := wire.WireLen(want) + wire.StreamMagicLen + wire.FrameHeaderLen; cap(e.rbuf) < need {
		e.rbuf = make([]byte, need)
	}
	raw := e.rbuf[:cap(e.rbuf)]
	for e.dec.Buffered() == 0 {
		n, err := e.rt.RecvRaw(raw)
		if n > 0 {
			if ferr := e.dec.Feed(raw[:n]); ferr != nil {
				e.readErr = ferr
				return ferr
			}
		}
		if err != nil {
			if err == io.EOF && e.dec.PendingPartial() {
				err = io.ErrUnexpectedEOF
			}
			e.readErr = err
			if e.dec.Buffered() > 0 {
				return nil
			}
			return err
		}
	}
	return nil
}

// customRegistry holds user-registered method rows.
var customRegistry struct {
	mu      sync.Mutex
	methods []Method
}

// RegisterCustomMethods announces user-instrumented native methods so
// they appear alongside the built-in Table I registry.
func RegisterCustomMethods(methods ...Method) {
	customRegistry.mu.Lock()
	defer customRegistry.mu.Unlock()
	customRegistry.methods = append(customRegistry.methods, methods...)
}

// ExtendedRegistry returns the built-in registry plus all registered
// custom methods.
func ExtendedRegistry() []Method {
	customRegistry.mu.Lock()
	defer customRegistry.mu.Unlock()
	out := make([]Method, 0, len(Registry)+len(customRegistry.methods))
	out = append(out, Registry...)
	out = append(out, customRegistry.methods...)
	return out
}
