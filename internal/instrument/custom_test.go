package instrument

import (
	"io"
	"sync"
	"testing"

	"dista/internal/core/taint"
	"dista/internal/core/tracker"
)

// chanTransport is a toy custom "native" library: an in-process byte
// stream over a Go channel, standing in for a user's own JNI methods.
type chanTransport struct {
	out chan<- []byte
	in  <-chan []byte

	mu     sync.Mutex
	buf    []byte
	closed bool
}

func newChanPair() (*chanTransport, *chanTransport) {
	ab := make(chan []byte, 16)
	ba := make(chan []byte, 16)
	return &chanTransport{out: ab, in: ba}, &chanTransport{out: ba, in: ab}
}

func (c *chanTransport) SendRaw(b []byte) error {
	cp := make([]byte, len(b))
	copy(cp, b)
	c.out <- cp
	return nil
}

func (c *chanTransport) RecvRaw(b []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.buf) == 0 {
		chunk, ok := <-c.in
		if !ok {
			return 0, io.EOF
		}
		c.buf = chunk
	}
	n := copy(b, c.buf)
	c.buf = c.buf[n:]
	return n, nil
}

func (c *chanTransport) close() { close(c.out) }

func TestCustomTransportTaintRoundTrip(t *testing.T) {
	r := newRig(t, tracker.ModeDista)
	ta, tb := newChanPair()
	sender := WrapCustom(r.a, ta)
	receiver := WrapCustom(r.b, tb)

	secret := taint.FromString("native-lib-payload", r.a.Source("Custom#send", "custom"))
	if err := sender.Write(secret); err != nil {
		t.Fatal(err)
	}
	buf := taint.MakeBytes(secret.Len())
	got := 0
	for got < buf.Len() {
		n, err := receiver.Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		got += n
	}
	if string(buf.Data) != "native-lib-payload" {
		t.Fatalf("data = %q", buf.Data)
	}
	for i := range buf.Data {
		if !buf.LabelAt(i).Has("custom") {
			t.Fatalf("byte %d lost taint through the custom transport", i)
		}
	}
}

func TestCustomTransportOffMode(t *testing.T) {
	r := newRig(t, tracker.ModeOff)
	ta, tb := newChanPair()
	sender := WrapCustom(r.a, ta)
	receiver := WrapCustom(r.b, tb)
	if err := sender.Write(taint.WrapBytes([]byte("plain"))); err != nil {
		t.Fatal(err)
	}
	buf := taint.WrapBytes(make([]byte, 5))
	if _, err := receiver.Read(&buf); err != nil {
		t.Fatal(err)
	}
	if string(buf.Data) != "plain" || buf.HasShadow() {
		t.Fatalf("off mode read %q shadow %v", buf.Data, buf.HasShadow())
	}
}

func TestCustomTransportEOF(t *testing.T) {
	r := newRig(t, tracker.ModeDista)
	ta, tb := newChanPair()
	receiver := WrapCustom(r.b, tb)
	ta.close()
	buf := taint.MakeBytes(1)
	if _, err := receiver.Read(&buf); err != io.EOF {
		t.Fatalf("err = %v", err)
	}
}

func TestRegisterCustomMethods(t *testing.T) {
	before := len(ExtendedRegistry())
	RegisterCustomMethods(Method{
		Class: "MyNativeLib", Name: "nativeSend", Type: TypeStream, Direction: "send",
	})
	after := ExtendedRegistry()
	if len(after) != before+1 {
		t.Fatalf("registry %d -> %d", before, len(after))
	}
	found := false
	for _, m := range after {
		if m.Class == "MyNativeLib" && m.Name == "nativeSend" {
			found = true
		}
	}
	if !found {
		t.Fatal("custom method not listed")
	}
	// The built-in registry stays untouched.
	if len(Registry) != 23 {
		t.Fatalf("built-in registry mutated: %d", len(Registry))
	}
}
