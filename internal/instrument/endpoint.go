package instrument

import (
	"errors"
	"io"
	"sync"

	"dista/internal/core/taint"
	"dista/internal/core/tracker"
	"dista/internal/core/wire"
	"dista/internal/jni"
	"dista/internal/netsim"
)

// ErrNoTaintMap is returned when a dista-mode agent has no Taint Map
// client configured: inter-node tracking cannot proceed without one.
var ErrNoTaintMap = errors.New("instrument: dista mode requires a Taint Map client")

// Endpoint is the taint-aware wrapper around one stream connection. It
// is the runtime object behind the Type 1 wrappers (socketWrite0 /
// socketRead0, Fig. 6) and is reused by the Type 3 dispatcher wrappers,
// since NIO socket channels carry the same continuous group stream.
//
// Exactly one Endpoint must wrap each connection end: it owns the
// stream decoder state that reassembles 5-byte groups across
// arbitrarily fragmented reads.
type Endpoint struct {
	agent *tracker.Agent
	conn  *netsim.Conn

	wmu sync.Mutex // serializes writes so groups never interleave

	rmu     sync.Mutex // protects dec and readErr
	dec     wire.StreamDecoder
	readErr error
}

// NewEndpoint wraps conn for the given agent.
func NewEndpoint(agent *tracker.Agent, conn *netsim.Conn) *Endpoint {
	return &Endpoint{agent: agent, conn: conn}
}

// Conn exposes the wrapped connection (for close/addr operations).
func (e *Endpoint) Conn() *netsim.Conn { return e.conn }

// Agent returns the endpoint's agent.
func (e *Endpoint) Agent() *tracker.Agent { return e.agent }

// registerLabels maps a label slice to Global IDs via the Taint Map
// (Fig. 9 steps ①②). Untainted bytes map to 0 without any lookup.
func registerLabels(agent *tracker.Agent, labels []taint.Taint, n int) ([]uint32, error) {
	if labels == nil {
		return nil, nil
	}
	tm := agent.TaintMap()
	if tm == nil {
		return nil, ErrNoTaintMap
	}
	ids := make([]uint32, n)
	// Adjacent bytes overwhelmingly share one taint (a tainted buffer is
	// labelled uniformly), so memoize the last label's id across the run.
	var (
		lastLabel taint.Taint
		lastID    uint32
		havePrev  bool
	)
	for i := 0; i < n; i++ {
		if labels[i].Empty() {
			continue
		}
		if havePrev && labels[i] == lastLabel {
			ids[i] = lastID
			continue
		}
		id, err := tm.Register(labels[i])
		if err != nil {
			return nil, err
		}
		ids[i] = id
		lastLabel, lastID, havePrev = labels[i], id, true
	}
	return ids, nil
}

// resolveIDs maps Global IDs back to taints in the agent's tree (Fig. 9
// steps ④⑤).
func resolveIDs(agent *tracker.Agent, ids []uint32) ([]taint.Taint, error) {
	tm := agent.TaintMap()
	if tm == nil {
		return nil, ErrNoTaintMap
	}
	labels := make([]taint.Taint, len(ids))
	var (
		lastID    uint32
		lastTaint taint.Taint
	)
	for i, id := range ids {
		if id == 0 {
			continue
		}
		if id == lastID {
			labels[i] = lastTaint
			continue
		}
		t, err := tm.Lookup(id)
		if err != nil {
			return nil, err
		}
		labels[i] = t
		lastID, lastTaint = id, t
	}
	return labels, nil
}

// Write sends b through the instrumented socketWrite0 wrapper.
//
//   - off:      the original native — raw data only;
//   - phosphor: the original native — the labels are *dropped* at the
//     JNI boundary, exactly the limitation of §II-C;
//   - dista:    each byte is serialized with the Global ID of its taint
//     (Fig. 6 sender side).
func (e *Endpoint) Write(b taint.Bytes) error {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	if e.agent.Mode() != tracker.ModeDista {
		e.agent.AddTraffic(len(b.Data), len(b.Data))
		return jni.SocketWrite0(e.conn, b.Data)
	}
	ids, err := registerLabels(e.agent, b.Labels, len(b.Data))
	if err != nil {
		return err
	}
	raw := wire.EncodeGroups(nil, b.Data, ids)
	e.agent.AddTraffic(len(b.Data), len(raw))
	return jni.SocketWrite0(e.conn, raw)
}

// Read fills buf through the instrumented socketRead0 wrapper and
// returns the number of data bytes read.
//
//   - off:      the original native;
//   - phosphor: the original native; received bytes keep whatever taint
//     the caller's buffer already had — the wrong "taint of the
//     parameter" flow of Fig. 4;
//   - dista:    reads the enlarged wire stream, splits data from Global
//     IDs, resolves them through the Taint Map, and labels buf.
func (e *Endpoint) Read(buf *taint.Bytes) (int, error) {
	if len(buf.Data) == 0 {
		return 0, nil
	}
	if e.agent.Mode() != tracker.ModeDista {
		return jni.SocketRead0(e.conn, buf.Data)
	}

	e.rmu.Lock()
	defer e.rmu.Unlock()
	if err := e.fillDecoder(len(buf.Data)); err != nil {
		return 0, err
	}
	data, ids := e.dec.Next(len(buf.Data))
	labels, err := resolveIDs(e.agent, ids)
	if err != nil {
		return 0, err
	}
	copy(buf.Data, data)
	if buf.Labels == nil && anyNonZero(ids) {
		buf.Labels = make([]taint.Taint, len(buf.Data))
	}
	if buf.Labels != nil {
		copy(buf.Labels[:len(data)], labels)
	}
	return len(data), nil
}

// fillDecoder reads raw wire bytes until at least one whole group is
// buffered (or an error occurs). The receive buffer is enlarged by the
// group factor, mirroring the paper's receiver-side buffer enlargement.
func (e *Endpoint) fillDecoder(want int) error {
	if e.dec.Buffered() > 0 {
		return nil
	}
	if e.readErr != nil {
		return e.readErr
	}
	raw := make([]byte, wire.WireLen(want))
	for e.dec.Buffered() == 0 {
		n, err := jni.SocketRead0(e.conn, raw)
		if n > 0 {
			e.dec.Feed(raw[:n])
		}
		if err != nil {
			if err == io.EOF && e.dec.PendingPartial() {
				err = io.ErrUnexpectedEOF
			}
			e.readErr = err
			if e.dec.Buffered() > 0 {
				return nil
			}
			return err
		}
	}
	return nil
}

func anyNonZero(ids []uint32) bool {
	for _, id := range ids {
		if id != 0 {
			return true
		}
	}
	return false
}

// WriteBuffer sends the [from,to) range of a direct buffer — the Type 3
// send path (IOUtil.writeFromNativeBuffer -> dispatcher write0, Fig. 8).
// It returns the number of data bytes consumed.
func (e *Endpoint) WriteBuffer(src *jni.DirectBuffer, from, to int) (int, error) {
	src.CheckRange(from, to)
	e.wmu.Lock()
	defer e.wmu.Unlock()
	n := to - from
	if e.agent.Mode() != tracker.ModeDista {
		e.agent.AddTraffic(n, n)
		written, err := jni.DispatcherWrite0(e.conn, src.Data[from:to])
		return written, err
	}
	ids, err := registerLabels(e.agent, src.Shadow[from:to], n)
	if err != nil {
		return 0, err
	}
	raw := wire.EncodeGroups(nil, src.Data[from:to], ids)
	e.agent.AddTraffic(n, len(raw))
	if _, err := jni.DispatcherWrite0(e.conn, raw); err != nil {
		return 0, err
	}
	return n, nil
}

// ReadBuffer fills the [from,to) range of a direct buffer — the Type 3
// receive path (dispatcher read0 -> IOUtil.readIntoNativeBuffer). It
// returns the number of data bytes read, or io.EOF.
func (e *Endpoint) ReadBuffer(dst *jni.DirectBuffer, from, to int) (int, error) {
	dst.CheckRange(from, to)
	if to == from {
		return 0, nil
	}
	if e.agent.Mode() != tracker.ModeDista {
		// Phosphor's dispatcher wrapper behaves like Fig. 4 too: the
		// buffer's stale shadow is left in place.
		return jni.DispatcherRead0(e.conn, dst.Data[from:to])
	}
	e.rmu.Lock()
	defer e.rmu.Unlock()
	if err := e.fillDecoder(to - from); err != nil {
		return 0, err
	}
	data, ids := e.dec.Next(to - from)
	labels, err := resolveIDs(e.agent, ids)
	if err != nil {
		return 0, err
	}
	copy(dst.Data[from:], data)
	copy(dst.Shadow[from:from+len(data)], labels)
	return len(data), nil
}
