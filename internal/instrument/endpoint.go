package instrument

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"dista/internal/core/taint"
	"dista/internal/core/tracker"
	"dista/internal/core/wire"
	"dista/internal/jni"
	"dista/internal/netsim"
	"dista/internal/taintmap"
)

// ErrNoTaintMap is returned when a dista-mode agent has no Taint Map
// client configured: inter-node tracking cannot proceed without one.
var ErrNoTaintMap = errors.New("instrument: dista mode requires a Taint Map client")

// Endpoint is the taint-aware wrapper around one stream connection. It
// is the runtime object behind the Type 1 wrappers (socketWrite0 /
// socketRead0, Fig. 6) and is reused by the Type 3 dispatcher wrappers,
// since NIO socket channels carry the same continuous group stream.
//
// Exactly one Endpoint must wrap each connection end: it owns the
// stream decoder state that reassembles 5-byte groups across
// arbitrarily fragmented reads.
type Endpoint struct {
	agent *tracker.Agent
	conn  *netsim.Conn

	wmu sync.Mutex // serializes writes so groups never interleave

	rmu     sync.Mutex // protects dec and readErr
	dec     wire.StreamDecoder
	readErr error
}

// NewEndpoint wraps conn for the given agent.
func NewEndpoint(agent *tracker.Agent, conn *netsim.Conn) *Endpoint {
	return &Endpoint{agent: agent, conn: conn}
}

// Conn exposes the wrapped connection (for close/addr operations).
func (e *Endpoint) Conn() *netsim.Conn { return e.conn }

// Agent returns the endpoint's agent.
func (e *Endpoint) Agent() *tracker.Agent { return e.agent }

// registerRuns maps b's label runs to wire runs via the Taint Map
// (Fig. 9 steps ①②): one batch registration covering every distinct
// taint, one Run per label run — never per-byte work. A shadow-free b
// returns nil (all untainted).
func registerRuns(agent *tracker.Agent, b taint.Bytes) ([]wire.Run, error) {
	if !b.HasShadow() {
		return nil, nil
	}
	tm := agent.TaintMap()
	if tm == nil {
		return nil, ErrNoTaintMap
	}
	var runs []wire.Run
	var pending []taint.Taint
	var pendingAt []int
	b.ForEachRun(func(from, to int, t taint.Taint) {
		r := wire.Run{N: to - from}
		if !t.Empty() {
			// Fast path: a taint this node has already transferred
			// carries its Global ID on the tree node (Fig. 9 step ②),
			// so the steady state never builds a taint slice at all.
			if id := t.GlobalID(); id != 0 {
				r.ID = id
			} else {
				pending = append(pending, t)
				pendingAt = append(pendingAt, len(runs))
			}
		}
		runs = append(runs, r)
	})
	if len(pending) > 0 {
		ids, err := tm.RegisterBatch(pending)
		if err != nil {
			return nil, err
		}
		for i, at := range pendingAt {
			// A provisional id is only valid inside this node: a degraded
			// Taint Map client minted it locally, and the receiving node
			// could never resolve it. Refuse the transfer loudly — the
			// taint itself stays tracked and will get its real Global ID
			// when the client's journal drains.
			if taintmap.IsProvisional(ids[i]) {
				return nil, fmt.Errorf("instrument: cannot transfer taint: %w",
					taintmap.ErrGlobalIDPending)
			}
			runs[at].ID = ids[i]
		}
	}
	return runs, nil
}

// resolveRuns maps decoded wire runs back to taints in the agent's tree
// (Fig. 9 steps ④⑤) with one batch lookup; labels[i] belongs to
// runs[i].
func resolveRuns(agent *tracker.Agent, runs []wire.Run) ([]taint.Taint, error) {
	tm := agent.TaintMap()
	if tm == nil {
		return nil, ErrNoTaintMap
	}
	ids := make([]uint32, len(runs))
	for i, r := range runs {
		ids[i] = r.ID
	}
	return tm.LookupBatch(ids)
}

// adoptRuns writes the resolved run labels over buf's prefix. Lazy
// shadow allocation is preserved: an entirely untainted delivery into a
// shadow-free buf allocates nothing, while a buf that already has
// labels gets its stale ones overwritten.
func adoptRuns(buf *taint.Bytes, runs []wire.Run, labels []taint.Taint) {
	pos := 0
	for i, r := range runs {
		buf.SetRange(pos, pos+r.N, labels[i])
		pos += r.N
	}
}

// trimRuns clips runs to cover at most n bytes.
func trimRuns(runs []wire.Run, n int) []wire.Run {
	for i := range runs {
		if n <= 0 {
			return runs[:i]
		}
		if runs[i].N > n {
			runs[i].N = n
		}
		n -= runs[i].N
	}
	return runs
}

// Write sends b through the instrumented socketWrite0 wrapper.
//
//   - off:      the original native — raw data only;
//   - phosphor: the original native — the labels are *dropped* at the
//     JNI boundary, exactly the limitation of §II-C;
//   - dista:    each byte is serialized with the Global ID of its taint
//     (Fig. 6 sender side).
func (e *Endpoint) Write(b taint.Bytes) error {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	if e.agent.Mode() != tracker.ModeDista {
		e.agent.AddTraffic(len(b.Data), len(b.Data))
		return jni.SocketWrite0(e.conn, b.Data)
	}
	runs, err := registerRuns(e.agent, b)
	if err != nil {
		return err
	}
	raw := wire.EncodeRuns(nil, b.Data, runs)
	e.agent.AddTraffic(len(b.Data), len(raw))
	return jni.SocketWrite0(e.conn, raw)
}

// Read fills buf through the instrumented socketRead0 wrapper and
// returns the number of data bytes read.
//
//   - off:      the original native;
//   - phosphor: the original native; received bytes keep whatever taint
//     the caller's buffer already had — the wrong "taint of the
//     parameter" flow of Fig. 4;
//   - dista:    reads the enlarged wire stream, splits data from Global
//     IDs, resolves them through the Taint Map, and labels buf.
func (e *Endpoint) Read(buf *taint.Bytes) (int, error) {
	if len(buf.Data) == 0 {
		return 0, nil
	}
	if e.agent.Mode() != tracker.ModeDista {
		return jni.SocketRead0(e.conn, buf.Data)
	}

	e.rmu.Lock()
	defer e.rmu.Unlock()
	if err := e.fillDecoder(len(buf.Data)); err != nil {
		return 0, err
	}
	data, runs := e.dec.NextRuns(len(buf.Data))
	labels, err := resolveRuns(e.agent, runs)
	if err != nil {
		return 0, err
	}
	copy(buf.Data, data)
	adoptRuns(buf, runs, labels)
	return len(data), nil
}

// fillDecoder reads raw wire bytes until at least one whole group is
// buffered (or an error occurs). The receive buffer is enlarged by the
// group factor, mirroring the paper's receiver-side buffer enlargement.
func (e *Endpoint) fillDecoder(want int) error {
	if e.dec.Buffered() > 0 {
		return nil
	}
	if e.readErr != nil {
		return e.readErr
	}
	raw := make([]byte, wire.WireLen(want))
	for e.dec.Buffered() == 0 {
		n, err := jni.SocketRead0(e.conn, raw)
		if n > 0 {
			e.dec.Feed(raw[:n])
		}
		if err != nil {
			if err == io.EOF && e.dec.PendingPartial() {
				err = io.ErrUnexpectedEOF
			}
			e.readErr = err
			if e.dec.Buffered() > 0 {
				return nil
			}
			return err
		}
	}
	return nil
}

// WriteBuffer sends the [from,to) range of a direct buffer — the Type 3
// send path (IOUtil.writeFromNativeBuffer -> dispatcher write0, Fig. 8).
// It returns the number of data bytes consumed.
func (e *Endpoint) WriteBuffer(src *jni.DirectBuffer, from, to int) (int, error) {
	src.CheckRange(from, to)
	e.wmu.Lock()
	defer e.wmu.Unlock()
	n := to - from
	if e.agent.Mode() != tracker.ModeDista {
		e.agent.AddTraffic(n, n)
		written, err := jni.DispatcherWrite0(e.conn, src.Data[from:to])
		return written, err
	}
	runs, err := registerRuns(e.agent, src.View(from, to))
	if err != nil {
		return 0, err
	}
	raw := wire.EncodeRuns(nil, src.Data[from:to], runs)
	e.agent.AddTraffic(n, len(raw))
	if _, err := jni.DispatcherWrite0(e.conn, raw); err != nil {
		return 0, err
	}
	return n, nil
}

// ReadBuffer fills the [from,to) range of a direct buffer — the Type 3
// receive path (dispatcher read0 -> IOUtil.readIntoNativeBuffer). It
// returns the number of data bytes read, or io.EOF.
func (e *Endpoint) ReadBuffer(dst *jni.DirectBuffer, from, to int) (int, error) {
	dst.CheckRange(from, to)
	if to == from {
		return 0, nil
	}
	if e.agent.Mode() != tracker.ModeDista {
		// Phosphor's dispatcher wrapper behaves like Fig. 4 too: the
		// buffer's stale shadow is left in place.
		return jni.DispatcherRead0(e.conn, dst.Data[from:to])
	}
	e.rmu.Lock()
	defer e.rmu.Unlock()
	if err := e.fillDecoder(to - from); err != nil {
		return 0, err
	}
	data, runs := e.dec.NextRuns(to - from)
	labels, err := resolveRuns(e.agent, runs)
	if err != nil {
		return 0, err
	}
	copy(dst.Data[from:], data)
	sub := dst.View(from, from+len(data))
	adoptRuns(&sub, runs, labels)
	return len(data), nil
}
