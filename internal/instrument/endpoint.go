package instrument

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"dista/internal/core/taint"
	"dista/internal/core/tracker"
	"dista/internal/core/wire"
	"dista/internal/jni"
	"dista/internal/netsim"
	"dista/internal/taintmap"
)

// ErrNoTaintMap is returned when a dista-mode agent has no Taint Map
// client configured: inter-node tracking cannot proceed without one.
var ErrNoTaintMap = errors.New("instrument: dista mode requires a Taint Map client")

// Endpoint is the taint-aware wrapper around one stream connection. It
// is the runtime object behind the Type 1 wrappers (socketWrite0 /
// socketRead0, Fig. 6) and is reused by the Type 3 dispatcher wrappers,
// since NIO socket channels carry the same continuous group stream.
//
// Exactly one Endpoint must wrap each connection end: it owns the
// stream decoder state that reassembles 5-byte groups across
// arbitrarily fragmented reads.
type Endpoint struct {
	agent    *tracker.Agent
	conn     *netsim.Conn
	legacy   bool // write the pre-framing raw group stream
	adaptive bool // negotiate the DTF2 tiered format (uniform/sparse frames)

	wmu        sync.Mutex        // serializes writes so frames never interleave
	wroteMagic bool              // stream magic already emitted on this conn
	wscratch   []byte            // persistent frame-header/magic assembly scratch
	tier       densityTracker    // per-connection tier selector (under wmu)
	dranges    []wire.DirtyRange // persistent sparse range-table scratch
	wruns      []wire.Run        // persistent run-registration scratch (under wmu)

	rmu     sync.Mutex // protects dec, rbuf and readErr
	dec     wire.FrameDecoder
	rbuf    []byte // persistent raw-read scratch
	readErr error
}

// NewEndpoint wraps conn for the given agent.
func NewEndpoint(agent *tracker.Agent, conn *netsim.Conn) *Endpoint {
	return &Endpoint{agent: agent, conn: conn}
}

// NewLegacyEndpoint wraps conn like NewEndpoint but writes the
// pre-framing raw group stream for peers that predate the framed codec.
// Reads auto-detect either format, so a legacy endpoint can receive
// from a framed peer. The clean-path bypass is off: every write pays
// the full group encoding (benchmarks use this as the always-encode
// baseline).
func NewLegacyEndpoint(agent *tracker.Agent, conn *netsim.Conn) *Endpoint {
	return &Endpoint{agent: agent, conn: conn, legacy: true}
}

// NewAdaptiveEndpoint wraps conn like NewEndpoint but negotiates the
// DTF2 tiered stream format: writes are classified by the taint-density
// tracker and travel as passthrough, uniform, sparse, or groups frames
// (DESIGN.md §9). Both ends must be adaptive — the DTF2 magic is what
// tells the peer the new tags may appear, so a plain NewEndpoint never
// emits them and old decoders never see them. Reads auto-detect every
// format, so an adaptive endpoint can receive from framed and legacy
// peers alike.
func NewAdaptiveEndpoint(agent *tracker.Agent, conn *netsim.Conn) *Endpoint {
	return &Endpoint{agent: agent, conn: conn, adaptive: true}
}

// Conn exposes the wrapped connection (for close/addr operations).
func (e *Endpoint) Conn() *netsim.Conn { return e.conn }

// Agent returns the endpoint's agent.
func (e *Endpoint) Agent() *tracker.Agent { return e.agent }

// registerRuns maps b's label runs to wire runs via the Taint Map
// (Fig. 9 steps ①②): one batch registration covering every distinct
// taint, one Run per label run — never per-byte work. A shadow-free b
// returns nil (all untainted). The runs are appended to dst (pass a
// scratch slice to keep a fragmented steady state allocation-free, or
// nil when no scratch outlives the call).
func registerRuns(agent *tracker.Agent, b taint.Bytes, dst []wire.Run) ([]wire.Run, error) {
	if !b.HasShadow() || b.Clean() {
		// The epoch-memoized clean check keeps shadowed-but-untainted
		// buffers off the Taint Map entirely: nil runs mean "all
		// untainted" to every encoder.
		return nil, nil
	}
	tm := agent.TaintMap()
	if tm == nil {
		return nil, ErrNoTaintMap
	}
	runs := dst[:0]
	var pending []taint.Taint
	var pendingAt []int
	b.ForEachRun(func(from, to int, t taint.Taint) {
		r := wire.Run{N: to - from}
		if !t.Empty() {
			// Fast path: a taint this node has already transferred
			// carries its Global ID on the tree node (Fig. 9 step ②),
			// so the steady state never builds a taint slice at all.
			if id := t.GlobalID(); id != 0 {
				r.ID = id
			} else {
				pending = append(pending, t)
				pendingAt = append(pendingAt, len(runs))
			}
		}
		runs = append(runs, r)
	})
	if len(pending) > 0 {
		ids, err := tm.RegisterBatch(pending)
		if err != nil {
			return nil, err
		}
		for i, at := range pendingAt {
			// A provisional id is only valid inside this node: a degraded
			// Taint Map client minted it locally, and the receiving node
			// could never resolve it. Refuse the transfer loudly — the
			// taint itself stays tracked and will get its real Global ID
			// when the client's journal drains.
			if taintmap.IsProvisional(ids[i]) {
				return nil, fmt.Errorf("instrument: cannot transfer taint: %w",
					taintmap.ErrGlobalIDPending)
			}
			runs[at].ID = ids[i]
		}
	}
	return runs, nil
}

// registerOne maps one taint to its Global ID via the Taint Map — the
// uniform-tier flavour of registerRuns: a single label for the whole
// buffer, so the steady state is one pointer load off the tree node.
func registerOne(agent *tracker.Agent, t taint.Taint) (uint32, error) {
	tm := agent.TaintMap()
	if tm == nil {
		return 0, ErrNoTaintMap
	}
	if id := t.GlobalID(); id != 0 {
		return id, nil
	}
	ids, err := tm.RegisterBatch([]taint.Taint{t})
	if err != nil {
		return 0, err
	}
	if taintmap.IsProvisional(ids[0]) {
		// Same contract as registerRuns: a locally minted id must not
		// cross the wire.
		return 0, fmt.Errorf("instrument: cannot transfer taint: %w",
			taintmap.ErrGlobalIDPending)
	}
	return ids[0], nil
}

// registerDirty maps b's tainted runs to wire dirty ranges via the Taint
// Map — the sparse-tier flavour of registerRuns: clean gaps produce no
// entries, so the table length is the dirty-run count, not the run
// count. Ranges are appended to dst (reused across calls).
func registerDirty(agent *tracker.Agent, b taint.Bytes, dst []wire.DirtyRange) ([]wire.DirtyRange, error) {
	tm := agent.TaintMap()
	if tm == nil {
		return nil, ErrNoTaintMap
	}
	var pending []taint.Taint
	var pendingAt []int
	b.ForEachDirtyRun(func(from, to int, t taint.Taint) {
		r := wire.DirtyRange{Off: from, Len: to - from}
		if id := t.GlobalID(); id != 0 {
			r.ID = id
		} else {
			pending = append(pending, t)
			pendingAt = append(pendingAt, len(dst))
		}
		dst = append(dst, r)
	})
	if len(pending) > 0 {
		ids, err := tm.RegisterBatch(pending)
		if err != nil {
			return nil, err
		}
		for i, at := range pendingAt {
			if taintmap.IsProvisional(ids[i]) {
				return nil, fmt.Errorf("instrument: cannot transfer taint: %w",
					taintmap.ErrGlobalIDPending)
			}
			dst[at].ID = ids[i]
		}
	}
	return dst, nil
}

// resolveRuns maps decoded wire runs back to taints in the agent's tree
// (Fig. 9 steps ④⑤) with one batch lookup; labels[i] belongs to
// runs[i].
func resolveRuns(agent *tracker.Agent, runs []wire.Run) ([]taint.Taint, error) {
	tm := agent.TaintMap()
	if tm == nil {
		return nil, ErrNoTaintMap
	}
	ids := make([]uint32, len(runs))
	for i, r := range runs {
		ids[i] = r.ID
	}
	return tm.LookupBatch(ids)
}

// adoptRuns writes the resolved run labels over buf's prefix. Lazy
// shadow allocation is preserved: an entirely untainted delivery into a
// shadow-free buf allocates nothing, while a buf that already has
// labels gets its stale ones overwritten.
func adoptRuns(buf *taint.Bytes, runs []wire.Run, labels []taint.Taint) {
	pos := 0
	for i, r := range runs {
		buf.SetRange(pos, pos+r.N, labels[i])
		pos += r.N
	}
}

// trimRuns clips runs to cover at most n bytes.
func trimRuns(runs []wire.Run, n int) []wire.Run {
	for i := range runs {
		if n <= 0 {
			return runs[:i]
		}
		if runs[i].N > n {
			runs[i].N = n
		}
		n -= runs[i].N
	}
	return runs
}

// Write sends b through the instrumented socketWrite0 wrapper.
//
//   - off:      the original native — raw data only;
//   - phosphor: the original native — the labels are *dropped* at the
//     JNI boundary, exactly the limitation of §II-C;
//   - dista:    each byte is serialized with the Global ID of its taint
//     (Fig. 6 sender side).
func (e *Endpoint) Write(b taint.Bytes) error {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	if e.agent.Mode() != tracker.ModeDista {
		e.agent.AddTraffic(len(b.Data), len(b.Data))
		return jni.SocketWrite0(e.conn, b.Data)
	}
	if e.legacy {
		runs, err := e.registerRunsScratch(b)
		if err != nil {
			return err
		}
		raw := wire.EncodeRuns(nil, b.Data, runs)
		e.agent.AddTraffic(len(b.Data), len(raw))
		return jni.SocketWrite0(e.conn, raw)
	}
	if len(b.Data) == 0 {
		// Nothing to frame; still touch the native so conn-level
		// semantics (faults, delays) match the uninstrumented call.
		return jni.SocketWrite0(e.conn, nil)
	}
	if b.Clean() {
		if e.adaptive {
			e.tier.observeClean(len(b.Data))
		}
		return e.writePassthroughLocked(b.Data)
	}
	if e.adaptive {
		return e.writeAdaptiveLocked(b, jni.SocketWrite0)
	}
	runs, err := e.registerRunsScratch(b)
	if err != nil {
		return err
	}
	return e.writeGroupsLocked(b.Data, runs, jni.SocketWrite0)
}

// registerRunsScratch is registerRuns into the endpoint's persistent
// run scratch: the caller must hold wmu and consume the runs before the
// next write. A fragmented steady state re-registers into the same
// array instead of growing a fresh one on every write.
func (e *Endpoint) registerRunsScratch(b taint.Bytes) ([]wire.Run, error) {
	runs, err := registerRuns(e.agent, b, e.wruns)
	if runs != nil {
		e.wruns = runs[:0]
	}
	return runs, err
}

// writeAdaptiveLocked emits one frame for a tainted buffer on whichever
// tier the density tracker picks: uniform and sparse frames keep the
// passthrough shape (metadata in the persistent scratch, payload
// written zero-copy), groups fall back to the full encode. Caller holds
// wmu and has ruled out the clean case.
func (e *Endpoint) writeAdaptiveLocked(b taint.Bytes, write func(*netsim.Conn, []byte) error) error {
	st, exact := b.Stats(tierScanLimit)
	e.tier.observe(st, len(b.Data), exact)
	switch e.tier.frameTier(st, len(b.Data), exact) {
	case tierUniform:
		id, err := registerOne(e.agent, st.One)
		if err != nil {
			return err
		}
		return e.writeUniformLocked(b.Data, id, write)
	case tierSparse:
		ranges, err := registerDirty(e.agent, b, e.dranges[:0])
		if err != nil {
			return err
		}
		e.dranges = ranges[:0]
		return e.writeSparseLocked(b.Data, ranges, write)
	default:
		runs, err := e.registerRunsScratch(b)
		if err != nil {
			return err
		}
		return e.writeGroupsLocked(b.Data, runs, write)
	}
}

// writePassthroughLocked emits one passthrough frame for data — the
// clean-path send: no label encoding, no copy of the payload, zero
// allocations once the header scratch has warmed up. Caller holds wmu
// and has verified the bytes are untainted.
func (e *Endpoint) writePassthroughLocked(data []byte) error {
	hdr := e.frameHeaderLocked(wire.FramePassthrough, len(data))
	e.agent.AddTraffic(len(data), len(hdr)+len(data))
	if err := jni.SocketWrite0(e.conn, hdr); err != nil {
		return err
	}
	return jni.SocketWrite0(e.conn, data)
}

// writeGroupsLocked emits one groups frame for data with its wire runs,
// assembling it in a pooled buffer. write is the underlying native
// (SocketWrite0 for Type 1, the dispatcher adapter for Type 3).
func (e *Endpoint) writeGroupsLocked(data []byte, runs []wire.Run, write func(*netsim.Conn, []byte) error) error {
	pre := 0
	if !e.wroteMagic {
		pre = wire.StreamMagicLen
	}
	buf := wire.GetBuf(pre + wire.GroupsFrameLen(len(data)) + wire.EncodeSlack)
	out := *buf
	if !e.wroteMagic {
		out = e.appendMagic(out)
	}
	out = wire.AppendGroupsFrame(out, data, runs)
	e.agent.AddTraffic(len(data), len(out))
	err := write(e.conn, out)
	*buf = out
	wire.PutBuf(buf)
	if err != nil {
		return err
	}
	e.wroteMagic = true
	return nil
}

// frameHeaderLocked assembles the stream magic (first framed write on
// this conn only) plus one frame header in the endpoint's persistent
// write scratch, marking the magic as sent.
func (e *Endpoint) frameHeaderLocked(tag byte, n int) []byte {
	hdr := e.wscratch[:0]
	if !e.wroteMagic {
		hdr = e.appendMagic(hdr)
		e.wroteMagic = true
	}
	hdr = wire.AppendFrameHeader(hdr, tag, n)
	e.wscratch = hdr[:0]
	return hdr
}

// appendMagic appends the stream magic matching the endpoint's
// negotiated format: DTF2 for adaptive endpoints, DTF1 otherwise. The
// caller manages wroteMagic.
func (e *Endpoint) appendMagic(dst []byte) []byte {
	if e.adaptive {
		return wire.AppendAdaptiveStreamMagic(dst)
	}
	return wire.AppendStreamMagic(dst)
}

// writeUniformLocked emits one uniform frame: header plus Global ID in
// the persistent scratch, payload written zero-copy — the passthrough
// cost shape plus four metadata bytes. Caller holds wmu.
func (e *Endpoint) writeUniformLocked(data []byte, id uint32, write func(*netsim.Conn, []byte) error) error {
	hdr := e.wscratch[:0]
	if !e.wroteMagic {
		hdr = e.appendMagic(hdr)
		e.wroteMagic = true
	}
	hdr = wire.AppendUniformHeader(hdr, len(data), id)
	e.wscratch = hdr[:0]
	e.agent.AddTraffic(len(data), len(hdr)+len(data))
	if err := write(e.conn, hdr); err != nil {
		return err
	}
	return write(e.conn, data)
}

// writeSparseLocked emits one sparse frame: header plus range table in
// the persistent scratch, payload written zero-copy. Caller holds wmu
// and guarantees the ranges are sorted, non-overlapping and in-bounds
// (they come from ForEachDirtyRun, which yields them that way).
func (e *Endpoint) writeSparseLocked(data []byte, ranges []wire.DirtyRange, write func(*netsim.Conn, []byte) error) error {
	hdr := e.wscratch[:0]
	if !e.wroteMagic {
		hdr = e.appendMagic(hdr)
		e.wroteMagic = true
	}
	hdr = wire.AppendSparseHeader(hdr, len(data), ranges)
	e.wscratch = hdr[:0]
	e.agent.AddTraffic(len(data), len(hdr)+len(data))
	if err := write(e.conn, hdr); err != nil {
		return err
	}
	return write(e.conn, data)
}

// WritePassthrough sends bytes that are untainted by construction —
// protocol framing, handshakes, padding a wrapper itself built. In
// dista mode it emits a passthrough frame (a legacy endpoint encodes
// untainted groups instead); other modes write the bytes unchanged.
// This is the sanctioned way to put a raw []byte on a tracked
// connection: the shadowdrop analyzer allowlists passthrough helpers
// by name because the bytes never had labels to drop.
func (e *Endpoint) WritePassthrough(data []byte) error {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	if e.agent.Mode() != tracker.ModeDista {
		e.agent.AddTraffic(len(data), len(data))
		return jni.SocketWrite0(e.conn, data)
	}
	if e.legacy {
		raw := wire.EncodeRuns(nil, data, nil)
		e.agent.AddTraffic(len(data), len(raw))
		return jni.SocketWrite0(e.conn, raw)
	}
	if len(data) == 0 {
		return jni.SocketWrite0(e.conn, nil)
	}
	if e.adaptive {
		e.tier.observeClean(len(data))
	}
	return e.writePassthroughLocked(data)
}

// WriteUniform sends bytes that all carry the same single taint — a
// wrapper forwarding one labelled record it assembled itself. This is
// the sanctioned way to put a raw []byte with a label on a tracked
// connection (the fast-path analyzer allowlists uniform helpers by name
// because the label rides alongside): an adaptive endpoint emits one
// uniform frame with zero payload copies, a framed endpoint a groups
// frame, a legacy endpoint the raw group stream. An empty t degrades to
// WritePassthrough. Modes other than dista write the bytes unchanged.
func (e *Endpoint) WriteUniform(data []byte, t taint.Taint) error {
	if t.Empty() {
		return e.WritePassthrough(data)
	}
	e.wmu.Lock()
	defer e.wmu.Unlock()
	if e.agent.Mode() != tracker.ModeDista {
		e.agent.AddTraffic(len(data), len(data))
		return jni.SocketWrite0(e.conn, data)
	}
	if len(data) == 0 {
		return jni.SocketWrite0(e.conn, nil)
	}
	id, err := registerOne(e.agent, t)
	if err != nil {
		return err
	}
	run := []wire.Run{{N: len(data), ID: id}}
	if e.legacy {
		raw := wire.EncodeRuns(nil, data, run)
		e.agent.AddTraffic(len(data), len(raw))
		return jni.SocketWrite0(e.conn, raw)
	}
	if !e.adaptive {
		return e.writeGroupsLocked(data, run, jni.SocketWrite0)
	}
	st := taint.RunStats{DirtyBytes: len(data), DirtyRuns: 1, One: t}
	e.tier.observe(st, len(data), true)
	if e.tier.frameTier(st, len(data), true) > tierUniform {
		return e.writeGroupsLocked(data, run, jni.SocketWrite0)
	}
	return e.writeUniformLocked(data, id, jni.SocketWrite0)
}

// Read fills buf through the instrumented socketRead0 wrapper and
// returns the number of data bytes read.
//
//   - off:      the original native;
//   - phosphor: the original native; received bytes keep whatever taint
//     the caller's buffer already had — the wrong "taint of the
//     parameter" flow of Fig. 4;
//   - dista:    reads the enlarged wire stream, splits data from Global
//     IDs, resolves them through the Taint Map, and labels buf.
func (e *Endpoint) Read(buf *taint.Bytes) (int, error) {
	if len(buf.Data) == 0 {
		return 0, nil
	}
	if e.agent.Mode() != tracker.ModeDista {
		return jni.SocketRead0(e.conn, buf.Data)
	}

	e.rmu.Lock()
	defer e.rmu.Unlock()
	if err := e.fillDecoder(len(buf.Data)); err != nil {
		return 0, err
	}
	n, runs := e.dec.NextRunsInto(buf.Data)
	if wire.RunsAllUntainted(runs) {
		// Clean delivery (passthrough frame or untainted groups): no
		// Taint Map round-trip, and a shadow-free buf stays lazy —
		// only stale labels need clearing.
		if buf.HasShadow() {
			buf.SetRange(0, n, taint.Taint{})
		}
		return n, nil
	}
	labels, err := resolveRuns(e.agent, runs)
	if err != nil {
		return 0, err
	}
	adoptRuns(buf, runs, labels)
	return n, nil
}

// fillDecoder reads raw wire bytes until at least one decoded byte is
// buffered (or an error occurs). The receive buffer is enlarged by the
// group factor plus framing overhead, mirroring the paper's
// receiver-side buffer enlargement, and persists across calls so the
// steady-state read path does not allocate it anew.
func (e *Endpoint) fillDecoder(want int) error {
	if e.dec.Buffered() > 0 {
		return nil
	}
	if e.readErr != nil {
		return e.readErr
	}
	if need := wire.WireLen(want) + wire.StreamMagicLen + wire.FrameHeaderLen; cap(e.rbuf) < need {
		e.rbuf = make([]byte, need)
	}
	raw := e.rbuf[:cap(e.rbuf)]
	for e.dec.Buffered() == 0 {
		n, err := jni.SocketRead0(e.conn, raw)
		if n > 0 {
			if ferr := e.dec.Feed(raw[:n]); ferr != nil {
				e.readErr = ferr
				return ferr
			}
		}
		if err != nil {
			if err == io.EOF && e.dec.PendingPartial() {
				err = io.ErrUnexpectedEOF
			}
			e.readErr = err
			if e.dec.Buffered() > 0 {
				return nil
			}
			return err
		}
	}
	return nil
}

// WriteBuffer sends the [from,to) range of a direct buffer — the Type 3
// send path (IOUtil.writeFromNativeBuffer -> dispatcher write0, Fig. 8).
// It returns the number of data bytes consumed.
func (e *Endpoint) WriteBuffer(src *jni.DirectBuffer, from, to int) (int, error) {
	if err := src.CheckRange(from, to); err != nil {
		return 0, err
	}
	e.wmu.Lock()
	defer e.wmu.Unlock()
	n := to - from
	if e.agent.Mode() != tracker.ModeDista {
		e.agent.AddTraffic(n, n)
		written, err := jni.DispatcherWrite0(e.conn, src.Data[from:to])
		return written, err
	}
	if e.legacy {
		runs, err := e.registerRunsScratch(src.View(from, to))
		if err != nil {
			return 0, err
		}
		raw := wire.EncodeRuns(nil, src.Data[from:to], runs)
		e.agent.AddTraffic(n, len(raw))
		if _, err := jni.DispatcherWrite0(e.conn, raw); err != nil {
			return 0, err
		}
		return n, nil
	}
	if n == 0 {
		_, err := jni.DispatcherWrite0(e.conn, nil)
		return 0, err
	}
	if src.Clean(from, to) {
		if e.adaptive {
			e.tier.observeClean(n)
		}
		if err := e.writeBufferPassthroughLocked(src, from, to); err != nil {
			return 0, err
		}
		return n, nil
	}
	if e.adaptive {
		if err := e.writeAdaptiveLocked(src.View(from, to), dispatcherWriteAll); err != nil {
			return 0, err
		}
		return n, nil
	}
	runs, err := e.registerRunsScratch(src.View(from, to))
	if err != nil {
		return 0, err
	}
	if err := e.writeGroupsLocked(src.Data[from:to], runs, dispatcherWriteAll); err != nil {
		return 0, err
	}
	return n, nil
}

// writeBufferPassthroughLocked is writePassthroughLocked over the
// dispatcher native — the Type 3 clean-path send.
func (e *Endpoint) writeBufferPassthroughLocked(src *jni.DirectBuffer, from, to int) error {
	hdr := e.frameHeaderLocked(wire.FramePassthrough, to-from)
	e.agent.AddTraffic(to-from, len(hdr)+to-from)
	if err := dispatcherWriteAll(e.conn, hdr); err != nil {
		return err
	}
	return dispatcherWriteAll(e.conn, src.Data[from:to])
}

// dispatcherWriteAll adapts DispatcherWrite0 to the all-or-error shape
// writeGroupsLocked expects.
func dispatcherWriteAll(c *netsim.Conn, b []byte) error {
	_, err := jni.DispatcherWrite0(c, b)
	return err
}

// ReadBuffer fills the [from,to) range of a direct buffer — the Type 3
// receive path (dispatcher read0 -> IOUtil.readIntoNativeBuffer). It
// returns the number of data bytes read, or io.EOF.
func (e *Endpoint) ReadBuffer(dst *jni.DirectBuffer, from, to int) (int, error) {
	if err := dst.CheckRange(from, to); err != nil {
		return 0, err
	}
	if to == from {
		return 0, nil
	}
	if e.agent.Mode() != tracker.ModeDista {
		// Phosphor's dispatcher wrapper behaves like Fig. 4 too: the
		// buffer's stale shadow is left in place.
		return jni.DispatcherRead0(e.conn, dst.Data[from:to])
	}
	e.rmu.Lock()
	defer e.rmu.Unlock()
	if err := e.fillDecoder(to - from); err != nil {
		return 0, err
	}
	n, runs := e.dec.NextRunsInto(dst.Data[from:to])
	if wire.RunsAllUntainted(runs) {
		// Clean delivery: clear any stale labels, skip the Taint Map.
		dst.B.SetRange(from, from+n, taint.Taint{})
		return n, nil
	}
	labels, err := resolveRuns(e.agent, runs)
	if err != nil {
		return 0, err
	}
	sub := dst.View(from, from+n)
	adoptRuns(&sub, runs, labels)
	return n, nil
}
