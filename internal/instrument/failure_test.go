package instrument

import (
	"errors"
	"io"
	"testing"
	"time"

	"dista/internal/core/taint"
	"dista/internal/core/tracker"
	"dista/internal/taintmap"
)

// Failure-injection tests: taint tracking must stay consistent (or
// fail loudly) when the substrate misbehaves.

// TestPacketLossKeepsDeliveredTaintsConsistent injects 50% datagram
// loss: delivered packets must arrive with data and taints aligned —
// loss must never scramble the (byte, GlobalID) pairing.
func TestPacketLossKeepsDeliveredTaintsConsistent(t *testing.T) {
	r := newRig(t, tracker.ModeDista)
	r.net.SetDatagramLoss(0.5)
	sa, err := r.net.ListenPacket("a:1")
	if err != nil {
		t.Fatal(err)
	}
	sb, err := r.net.ListenPacket("b:1")
	if err != nil {
		t.Fatal(err)
	}

	const total = 40
	// Sender: one packet per tag, payload text encodes the tag index.
	go func() {
		for i := 0; i < total; i++ {
			tag := r.a.Tree().NewSource(string(rune('A'+i%26)), r.a.LocalID())
			payload := taint.FromString(string(rune('A'+i%26)), tag)
			if err := PacketSend(r.a, sa, payload, "b:1"); err != nil {
				t.Error(err)
				return
			}
		}
		// Terminator packets (untainted) so the receiver can stop.
		for i := 0; i < 4; i++ {
			PacketSend(r.a, sa, taint.WrapBytes([]byte{0}), "b:1")
		}
	}()

	received := 0
	for {
		buf := taint.MakeBytes(4)
		n, _, err := PacketReceive(r.b, sb, &buf)
		if err != nil {
			t.Fatal(err)
		}
		if n == 1 && buf.Data[0] == 0 {
			break
		}
		received++
		// Consistency: the payload letter and the taint's tag value must
		// match exactly.
		want := string(buf.Data[:n])
		got := buf.LabelAt(0)
		if got.Empty() || !got.Has(want) {
			t.Fatalf("packet %q carries taint %v; loss scrambled the pairing", want, got)
		}
	}
	stats := r.net.Stats()
	if stats.DatagramsLost == 0 {
		t.Fatal("loss injection did not drop anything; test is vacuous")
	}
	if received == 0 {
		t.Fatal("every packet lost; cannot check consistency")
	}
	t.Logf("received %d/%d packets with consistent taints (%d lost)", received, total, stats.DatagramsLost)
}

// TestTaintMapOutageFailsLoudly kills the Taint Map server mid-run: the
// next tainted send must return an error, never silently drop taints.
func TestTaintMapOutageFailsLoudly(t *testing.T) {
	r := newRig(t, tracker.ModeDista)
	srv, err := taintmap.StartSimServer(r.net, "tm:7")
	if err != nil {
		t.Fatal(err)
	}
	mkAgent := func(name string) *tracker.Agent {
		a := tracker.New(name, tracker.ModeDista)
		client, err := taintmap.DialSim(r.net, "tm:7", a.Tree())
		if err != nil {
			t.Fatal(err)
		}
		return tracker.New(name, tracker.ModeDista, tracker.WithTaintMap(client))
	}
	agent := mkAgent("n1")
	ca, cb := r.net.Pipe()
	defer cb.Close()
	sender := NewEndpoint(agent, ca)

	// Healthy send first.
	if err := sender.Write(taint.FromString("x", agent.Tree().NewSource("t1", "n1:1"))); err != nil {
		t.Fatalf("healthy send failed: %v", err)
	}
	// Kill the Taint Map; a send with a *new* taint needs a fresh
	// registration and must fail.
	srv.Close()
	err = sender.Write(taint.FromString("y", agent.Tree().NewSource("t2", "n1:1")))
	if err == nil {
		t.Fatal("send after Taint Map outage must fail loudly")
	}
	// A send reusing the already-registered taint still works: its
	// Global ID is cached on the node (Fig. 9 step ②).
	if err := sender.Write(taint.FromString("z", agent.Tree().NewSource("t1", "n1:1"))); err != nil {
		t.Fatalf("cached-taint send should survive the outage: %v", err)
	}
}

// TestDegradedTaintMapRefusesTransferKeepsTracking: with the Taint Map
// unreachable and the resilient client degraded, a cross-node send of a
// freshly tainted payload must fail with the typed ErrGlobalIDPending —
// the taint exists, its Global ID is provisional — while intra-node
// tracking of that same taint keeps working.
func TestDegradedTaintMapRefusesTransferKeepsTracking(t *testing.T) {
	r := newRig(t, tracker.ModeDista)
	a := tracker.New("n1", tracker.ModeDista)
	client := taintmap.NewResilientClient(
		func() (io.ReadWriteCloser, error) { return nil, errors.New("no route to taint map") },
		a.Tree(),
		taintmap.ResilientOptions{
			BackoffBase:      time.Millisecond,
			BackoffMax:       5 * time.Millisecond,
			BreakerThreshold: 1,
		})
	defer client.Close()
	agent := tracker.New("n1", tracker.ModeDista, tracker.WithTaintMap(client))

	ca, cb := r.net.Pipe()
	defer cb.Close()
	sender := NewEndpoint(agent, ca)

	tag := agent.Tree().NewSource("secret", "n1:1")
	err := sender.Write(taint.FromString("x", tag))
	if !errors.Is(err, taintmap.ErrGlobalIDPending) {
		t.Fatalf("degraded-mode send = %v, want ErrGlobalIDPending", err)
	}
	// The taint is still live on this node: its provisional id resolves
	// locally, so sink checks keep seeing it.
	id, err := client.Register(agent.Tree().NewSource("secret", "n1:1"))
	if err != nil || !taintmap.IsProvisional(id) {
		t.Fatalf("degraded register = %d, %v, want provisional id", id, err)
	}
	got, err := client.Lookup(id)
	if err != nil || got.Empty() || !got.Has("secret") {
		t.Fatalf("local lookup of provisional id = %v, %v", got, err)
	}
	// Untainted traffic is unaffected.
	if err := sender.Write(taint.WrapBytes([]byte("plain"))); err != nil {
		t.Fatalf("untainted send while degraded: %v", err)
	}
}

// TestSpecRestrictedSourcesStayDormant: with a spec that lists no
// matching source, the same workload produces zero taints end to end —
// the spec mechanism gates the whole pipeline.
func TestSpecRestrictedSourcesStayDormant(t *testing.T) {
	store := taintmap.NewStore()
	spec := tracker.NewSpec([]string{"OnlyThis#source"}, nil)
	mk := func(name string) *tracker.Agent {
		a := tracker.New(name, tracker.ModeDista)
		return tracker.New(name, tracker.ModeDista,
			tracker.WithTaintMap(taintmap.NewLocalClient(store, a.Tree())),
			tracker.WithSpec(spec))
	}
	a, b := mk("n1"), mk("n2")
	net := newRig(t, tracker.ModeDista).net
	ca, cb := net.Pipe()
	sender, receiver := NewEndpoint(a, ca), NewEndpoint(b, cb)

	payload := taint.FromString("data", a.Source("Unlisted#source", "tag"))
	if err := sender.Write(payload); err != nil {
		t.Fatal(err)
	}
	buf := taint.MakeBytes(4)
	if _, err := receiver.Read(&buf); err != nil {
		t.Fatal(err)
	}
	if !buf.Union().Empty() {
		t.Fatalf("dormant source produced taint %v", buf.Union())
	}
	if store.Stats().GlobalTaints != 0 {
		t.Fatal("no global taints should have been registered")
	}
}
