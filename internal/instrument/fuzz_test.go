package instrument

import (
	"fmt"
	"io"
	"testing"

	"dista/internal/core/taint"
	"dista/internal/core/tracker"
)

// FuzzTierTransition drives an adaptive endpoint pair through a
// fuzzer-chosen density schedule and checks the one property the tier
// machine must never lose: every byte arrives with exactly the labels
// it was sent with, no matter how the stream flaps between the
// passthrough, uniform, sparse and groups encodings. Each pair of
// input bytes is one message — the first picks the kind (clean,
// uniform, sparse island, dense alternation) and the label source, the
// second the length — so the fuzzer explores tier transitions the
// phased unit tests never schedule.
func FuzzTierTransition(f *testing.F) {
	// One phase per tier, long enough to converge.
	steady := func(kind byte) []byte {
		var s []byte
		for i := 0; i < 12; i++ {
			s = append(s, kind, 63)
		}
		return s
	}
	f.Add(steady(1))                                             // uniform
	f.Add(steady(2))                                             // sparse
	f.Add(steady(3))                                             // dense
	f.Add([]byte{1, 255, 2, 31, 0, 15, 3, 63})                   // one message per tier
	f.Add([]byte{1, 7, 0, 7, 1, 7, 0, 7, 1, 7})                  // clean/uniform interleave
	f.Add([]byte{3, 0, 1, 0, 3, 0, 1, 0, 2, 0})                  // tiny flapping messages
	f.Add(append(steady(1), append(steady(3), steady(1)...)...)) // U->G->U

	f.Fuzz(func(t *testing.T, sched []byte) {
		if len(sched) < 2 {
			return
		}
		if len(sched) > 128 {
			sched = sched[:128] // at most 64 messages per exec
		}

		r := newRig(t, tracker.ModeDista)
		srcs := []taint.Taint{
			r.a.Source("fz0", "fz0"),
			r.a.Source("fz1", "fz1"),
			r.a.Source("fz2", "fz2"),
		}
		tagOf := []string{"fz0", "fz1", "fz2"}

		// Decode the schedule into messages first so the reader knows the
		// exact stream length; wantTag[i] is the label byte i of the
		// concatenated stream must carry ("" = must stay clean).
		var msgs []taint.Bytes
		var wantTag []string
		for i := 0; i+1 < len(sched); i += 2 {
			kind, n := sched[i]%4, 1+int(sched[i+1])
			li := int(sched[i]>>2) % len(srcs)
			b := taint.MakeBytes(n)
			for j := range b.Data {
				b.Data[j] = '0' + kind
			}
			switch kind {
			case 0: // clean
				for j := 0; j < n; j++ {
					wantTag = append(wantTag, "")
				}
			case 1: // uniform
				b.SetRange(0, n, srcs[li])
				for j := 0; j < n; j++ {
					wantTag = append(wantTag, tagOf[li])
				}
			case 2: // sparse: one dirty island placed by the fuzzer
				off := int(sched[i]>>2) % n
				end := off + 1 + int(sched[i+1]>>5)
				if end > n {
					end = n
				}
				b.SetRange(off, end, srcs[li])
				for j := 0; j < n; j++ {
					if j >= off && j < end {
						wantTag = append(wantTag, tagOf[li])
					} else {
						wantTag = append(wantTag, "")
					}
				}
			case 3: // dense: alternate two sources byte by byte
				for j := 0; j < n; j++ {
					if j%2 == 0 {
						b.SetLabel(j, srcs[li])
						wantTag = append(wantTag, tagOf[li])
					} else {
						b.SetLabel(j, srcs[(li+1)%len(srcs)])
						wantTag = append(wantTag, tagOf[(li+1)%len(srcs)])
					}
				}
			}
			msgs = append(msgs, b)
		}
		total := len(wantTag)

		ca, cb := r.net.Pipe()
		sender, receiver := NewAdaptiveEndpoint(r.a, ca), NewAdaptiveEndpoint(r.b, cb)

		got := taint.MakeBytes(total)
		recvErr := make(chan error, 1)
		go func() {
			recvErr <- func() error {
				for pos := 0; pos < total; {
					sub := got.Slice(pos, total)
					n, err := receiver.Read(&sub)
					if err != nil {
						return fmt.Errorf("read at %d/%d: %w", pos, total, err)
					}
					pos += n
				}
				// The stream must end exactly where the schedule says.
				tail := taint.MakeBytes(1)
				if n, err := receiver.Read(&tail); err != io.EOF || n != 0 {
					return fmt.Errorf("trailing read = %d, %v; want 0, EOF", n, err)
				}
				return nil
			}()
		}()

		for mi, msg := range msgs {
			if err := sender.Write(msg); err != nil {
				t.Fatalf("write %d (kind %q, len %d): %v", mi, msg.Data[0], msg.Len(), err)
			}
		}
		ca.Close()
		if err := <-recvErr; err != nil {
			t.Fatal(err)
		}

		for i, want := range wantTag {
			lbl := got.LabelAt(i)
			if want == "" {
				if !lbl.Empty() {
					t.Fatalf("stream byte %d (kind %q) grew taint %v", i, got.Data[i], lbl.Values())
				}
				continue
			}
			if !lbl.Has(want) {
				t.Fatalf("stream byte %d (kind %q) lost label %q (has %v)", i, got.Data[i], want, lbl.Values())
			}
		}
	})
}
