package instrument

import (
	"errors"
	"io"
	"testing"

	"dista/internal/core/taint"
	"dista/internal/core/tracker"
	"dista/internal/core/wire"
	"dista/internal/jni"
	"dista/internal/netsim"
	"dista/internal/taintmap"
)

// rig is a two-node test rig sharing one simulated network and one
// Taint Map store.
type rig struct {
	net   *netsim.Network
	store *taintmap.Store
	a, b  *tracker.Agent
}

func newRig(t *testing.T, mode tracker.Mode) *rig {
	t.Helper()
	r := &rig{net: netsim.New(), store: taintmap.NewStore()}
	r.a = agentFor("node1", mode, r.store)
	r.b = agentFor("node2", mode, r.store)
	return r
}

func agentFor(name string, mode tracker.Mode, store *taintmap.Store) *tracker.Agent {
	a := tracker.New(name, mode)
	// Wire the client after the agent so it resolves into the agent tree.
	c := taintmap.NewLocalClient(store, a.Tree())
	return tracker.New(name, mode, tracker.WithTaintMap(c), tracker.WithLocalID(a.LocalID()))
}

func (r *rig) endpoints(t *testing.T) (*Endpoint, *Endpoint) {
	t.Helper()
	ca, cb := r.net.Pipe()
	return NewEndpoint(r.a, ca), NewEndpoint(r.b, cb)
}

func TestRegistryMatchesPaperTableI(t *testing.T) {
	if got := len(Registry); got != 23 {
		t.Fatalf("registry has %d methods, paper instruments 23", got)
	}
	if got := len(JNIMethods()); got != 13 {
		t.Fatalf("registry has %d JNI natives, paper finds 13", got)
	}
	if got := len(JNIClasses()); got != 5 {
		t.Fatalf("JNI natives span %d classes, paper finds 5", got)
	}
	// Every row of the paper's (partial) Table I must be present with
	// the right type.
	wantRows := []struct {
		class, name string
		typ         MethodType
	}{
		{"SocketInputStream", "socketRead0", TypeStream},
		{"SocketOutputStream", "socketWrite0", TypeStream},
		{"LinuxVirtualMachine", "read", TypeStream},
		{"LinuxVirtualMachine", "write", TypeStream},
		{"PlainDatagramSocketImpl", "send", TypePacket},
		{"PlainDatagramSocketImpl", "receive0", TypePacket},
		{"DirectByteBuffer", "get", TypeDirectBuffer},
		{"DirectByteBuffer", "put", TypeDirectBuffer},
		{"IOUtil", "writeFromNativeBuffer", TypeDirectBuffer},
		{"IOUtil", "readIntoNativeBuffer", TypeDirectBuffer},
		{"WindowsAsynchronousSocketChannelImpl", "implRead", TypeDirectBuffer},
		{"WindowsAsynchronousSocketChannelImpl", "implWrite", TypeDirectBuffer},
	}
	for _, w := range wantRows {
		found := false
		for _, m := range Registry {
			if m.Class == w.class && m.Name == w.name {
				found = true
				if m.Type != w.typ {
					t.Errorf("%s.%s has type %s, want %s", m.Class, m.Name, m.Type, w.typ)
				}
			}
		}
		if !found {
			t.Errorf("registry missing Table I row %s.%s", w.class, w.name)
		}
	}
	for _, m := range Registry {
		if m.Direction != "send" && m.Direction != "receive" && m.Direction != "both" {
			t.Errorf("%s.%s has bad direction %q", m.Class, m.Name, m.Direction)
		}
	}
}

func TestMethodTypeString(t *testing.T) {
	if TypeStream.String() != "1" || TypePacket.String() != "2" || TypeDirectBuffer.String() != "3" {
		t.Fatal("type numerals must match Table I")
	}
	if MethodType(9).String() != "?" {
		t.Fatal("unknown type")
	}
}

func TestStreamDistaPropagatesTaint(t *testing.T) {
	r := newRig(t, tracker.ModeDista)
	sender, receiver := r.endpoints(t)

	secret := taint.FromString("vote:1", r.a.Source("src", "vote"))
	if err := sender.Write(secret); err != nil {
		t.Fatal(err)
	}

	buf := taint.MakeBytes(len(secret.Data))
	n, err := receiver.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != secret.Len() || string(buf.Data[:n]) != "vote:1" {
		t.Fatalf("read %q (%d)", buf.Data[:n], n)
	}
	for i := 0; i < n; i++ {
		if !buf.LabelAt(i).Has("vote") {
			t.Fatalf("byte %d lost its taint", i)
		}
	}
	// The receiver's taint must carry the sender's LocalID.
	keys := buf.LabelAt(0).Keys()
	if keys[0].LocalID != r.a.LocalID() {
		t.Fatalf("taint origin = %q, want %q", keys[0].LocalID, r.a.LocalID())
	}
}

func TestStreamDistaByteLevelPrecision(t *testing.T) {
	r := newRig(t, tracker.ModeDista)
	sender, receiver := r.endpoints(t)

	// Mixed payload: only bytes 2..3 are tainted.
	payload := taint.MakeBytes(5)
	copy(payload.Data, "abcde")
	tt := r.a.Source("src", "mid")
	payload.SetLabel(2, tt)
	payload.SetLabel(3, tt)
	if err := sender.Write(payload); err != nil {
		t.Fatal(err)
	}

	buf := taint.MakeBytes(5)
	if _, err := io.ReadFull(readFullAdapter{receiver, &buf}, make([]byte, 5)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		tainted := buf.LabelAt(i).Has("mid")
		want := i == 2 || i == 3
		if tainted != want {
			t.Fatalf("byte %d tainted=%v want %v (over/under-tainting)", i, tainted, want)
		}
	}
}

// readFullAdapter drives Endpoint.Read through io.ReadFull while
// keeping the labels in buf.
type readFullAdapter struct {
	e   *Endpoint
	buf *taint.Bytes
}

func (r readFullAdapter) Read(p []byte) (int, error) {
	sub := r.buf.Slice(len(r.buf.Data)-len(p), len(r.buf.Data))
	n, err := r.e.Read(&sub)
	return n, err
}

func TestStreamOffModeNoTaintNoOverhead(t *testing.T) {
	r := newRig(t, tracker.ModeOff)
	sender, receiver := r.endpoints(t)
	if err := sender.Write(taint.WrapBytes([]byte("plain"))); err != nil {
		t.Fatal(err)
	}
	buf := taint.WrapBytes(make([]byte, 5))
	n, err := receiver.Read(&buf)
	if err != nil || n != 5 || string(buf.Data) != "plain" {
		t.Fatalf("read %q (%d) %v", buf.Data, n, err)
	}
	if buf.HasShadow() {
		t.Fatal("off mode must not allocate shadows")
	}
	data, wireBytes := r.a.Traffic()
	if data != 5 || wireBytes != 5 {
		t.Fatalf("traffic = %d/%d, want 5/5", data, wireBytes)
	}
}

// TestPhosphorModeLosesInterNodeTaint reproduces the Fig. 4 limitation
// (experiment E11): under intra-node-only tracking the sender's taint
// vanishes and the receiver instead keeps the stale taint of its own
// buffer.
func TestPhosphorModeLosesInterNodeTaint(t *testing.T) {
	r := newRig(t, tracker.ModePhosphor)
	sender, receiver := r.endpoints(t)

	secret := taint.FromString("x", r.a.Source("src", "real-taint"))
	if err := sender.Write(secret); err != nil {
		t.Fatal(err)
	}

	buf := taint.MakeBytes(1)
	stale := r.b.Source("src", "stale-buffer-taint")
	buf.SetLabel(0, stale)
	if _, err := receiver.Read(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.LabelAt(0).Has("real-taint") {
		t.Fatal("phosphor mode must NOT propagate inter-node taint (unsound by design)")
	}
	if !buf.LabelAt(0).Has("stale-buffer-taint") {
		t.Fatal("phosphor mode must keep the parameter's stale taint (Fig. 4)")
	}
}

// TestFigure9Protocol walks the five steps of Figure 9 (experiment E8):
// two tainted bytes sent, one received; the shared taint is registered
// once; the receiver resolves it through the Taint Map.
func TestFigure9Protocol(t *testing.T) {
	r := newRig(t, tracker.ModeDista)
	sender, receiver := r.endpoints(t)

	t1 := r.a.Source("src", "t1")
	payload := taint.MakeBytes(2) // b1, b2 both tainted by t1
	payload.Data[0], payload.Data[1] = 'A', 'B'
	payload.SetLabel(0, t1)
	payload.SetLabel(1, t1)

	// Steps ①②③: register + send. b2's taint is already registered when
	// b1's was, so exactly one registration reaches the store.
	if err := sender.Write(payload); err != nil {
		t.Fatal(err)
	}
	st := r.store.Stats()
	if st.GlobalTaints != 1 || st.Registrations != 1 {
		t.Fatalf("after send: %+v, want exactly one registration of t1", st)
	}
	if t1.GlobalID() == 0 {
		t.Fatal("sender must cache the Global ID on the taint (step ②)")
	}

	// Steps ④⑤: Node2 receives only b1 and resolves its taint.
	buf := taint.MakeBytes(1)
	n, err := receiver.Read(&buf)
	if err != nil || n != 1 || buf.Data[0] != 'A' {
		t.Fatalf("read %q (%d) %v", buf.Data[:n], n, err)
	}
	got := buf.LabelAt(0)
	if !got.Has("t1") {
		t.Fatalf("receiver taint = %v", got)
	}
	if got.GlobalID() != t1.GlobalID() {
		t.Fatal("receiver must record the same Global ID")
	}
	if st := r.store.Stats(); st.Lookups != 1 {
		t.Fatalf("lookups = %d, want 1", st.Lookups)
	}

	// Receiving b2 later reuses the receiver-side cache: no new lookup.
	if _, err := receiver.Read(&buf); err != nil {
		t.Fatal(err)
	}
	if st := r.store.Stats(); st.Lookups != 1 {
		t.Fatalf("second byte triggered lookup; cache broken (%d lookups)", st.Lookups)
	}
}

func TestStreamWireOverheadFactor(t *testing.T) {
	r := newRig(t, tracker.ModeDista)
	sender, receiver := r.endpoints(t)
	go func() {
		buf := taint.MakeBytes(1000)
		for {
			if _, err := receiver.Read(&buf); err != nil {
				return
			}
		}
	}()
	payload := taint.FromString(string(make([]byte, 1000)), r.a.Source("s", "t"))
	if err := sender.Write(payload); err != nil {
		t.Fatal(err)
	}
	data, wireBytes := r.a.Traffic()
	// A tainted payload still pays the full 5x group factor of §V-F;
	// the framed codec adds only the one-time stream magic and a
	// constant header per write.
	want := int64(wire.StreamMagicLen + wire.GroupsFrameLen(1000))
	if data != 1000 || wireBytes != want {
		t.Fatalf("traffic = %d/%d, want %d wire bytes (5x groups + framing)", data, wireBytes, want)
	}
	sender.Conn().Close()
}

func TestStreamFragmentedDelivery(t *testing.T) {
	// A dista read asking for more bytes than are in flight must return
	// the short count like the real native, and a second write must be
	// picked up by subsequent reads.
	r := newRig(t, tracker.ModeDista)
	sender, receiver := r.endpoints(t)
	if err := sender.Write(taint.FromString("ab", r.a.Source("s", "g1"))); err != nil {
		t.Fatal(err)
	}
	buf := taint.MakeBytes(10)
	n, err := receiver.Read(&buf)
	if err != nil || n != 2 {
		t.Fatalf("first read = %d, %v", n, err)
	}
	if err := sender.Write(taint.FromString("cd", r.a.Source("s", "g2"))); err != nil {
		t.Fatal(err)
	}
	n, err = receiver.Read(&buf)
	if err != nil || n != 2 || string(buf.Data[:2]) != "cd" {
		t.Fatalf("second read = %q (%d), %v", buf.Data[:n], n, err)
	}
	if !buf.LabelAt(0).Has("g2") {
		t.Fatal("second group lost taint")
	}
}

func TestStreamEOF(t *testing.T) {
	for _, mode := range []tracker.Mode{tracker.ModeOff, tracker.ModeDista} {
		t.Run(mode.String(), func(t *testing.T) {
			r := newRig(t, mode)
			sender, receiver := r.endpoints(t)
			sender.Conn().Close()
			buf := taint.MakeBytes(4)
			if _, err := receiver.Read(&buf); err != io.EOF {
				t.Fatalf("err = %v, want io.EOF", err)
			}
			// EOF must be sticky.
			if _, err := receiver.Read(&buf); err != io.EOF {
				t.Fatalf("second err = %v, want io.EOF", err)
			}
		})
	}
}

func TestStreamTruncatedGroupIsError(t *testing.T) {
	r := newRig(t, tracker.ModeDista)
	ca, cb := r.net.Pipe()
	receiver := NewEndpoint(r.b, cb)
	// Write 3 raw bytes (a fraction of one group) and close.
	if err := jni.SocketWrite0(ca, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	ca.Close()
	buf := taint.MakeBytes(4)
	if _, err := receiver.Read(&buf); err != io.ErrUnexpectedEOF {
		t.Fatalf("err = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestDistaWithoutTaintMapErrors(t *testing.T) {
	net := netsim.New()
	a := tracker.New("n", tracker.ModeDista) // no taint map client
	ca, cb := net.Pipe()
	sender := NewEndpoint(a, ca)
	err := sender.Write(taint.FromString("x", a.Source("s", "t")))
	if !errors.Is(err, ErrNoTaintMap) {
		t.Fatalf("err = %v, want ErrNoTaintMap", err)
	}
	// Reads fail the same way once groups arrive.
	go jni.SocketWrite0(cb, wire.EncodeGroups(nil, []byte{1}, []uint32{1}))
	buf := taint.MakeBytes(1)
	receiver := NewEndpoint(a, ca)
	if _, err := receiver.Read(&buf); !errors.Is(err, ErrNoTaintMap) {
		t.Fatalf("read err = %v, want ErrNoTaintMap", err)
	}
}

func TestPacketDistaRoundTrip(t *testing.T) {
	r := newRig(t, tracker.ModeDista)
	sa, err := r.net.ListenPacket("a:1")
	if err != nil {
		t.Fatal(err)
	}
	sb, err := r.net.ListenPacket("b:1")
	if err != nil {
		t.Fatal(err)
	}

	payload := taint.FromString("udp-secret", r.a.Source("s", "udp"))
	if err := PacketSend(r.a, sa, payload, "b:1"); err != nil {
		t.Fatal(err)
	}
	buf := taint.MakeBytes(32)
	n, from, err := PacketReceive(r.b, sb, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf.Data[:n]) != "udp-secret" || from != "a:1" {
		t.Fatalf("got %q from %q", buf.Data[:n], from)
	}
	for i := 0; i < n; i++ {
		if !buf.LabelAt(i).Has("udp") {
			t.Fatalf("byte %d lost taint", i)
		}
	}
}

func TestPacketDistaTruncation(t *testing.T) {
	r := newRig(t, tracker.ModeDista)
	sa, _ := r.net.ListenPacket("a:1")
	sb, _ := r.net.ListenPacket("b:1")
	payload := taint.FromString("0123456789", r.a.Source("s", "u"))
	if err := PacketSend(r.a, sa, payload, "b:1"); err != nil {
		t.Fatal(err)
	}
	buf := taint.MakeBytes(4) // receiver asks for fewer bytes than sent
	n, _, err := PacketReceive(r.b, sb, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 || string(buf.Data[:n]) != "0123" {
		t.Fatalf("truncated read = %q (%d)", buf.Data[:n], n)
	}
	if !buf.LabelAt(3).Has("u") {
		t.Fatal("truncated bytes must keep their taints")
	}
}

func TestPacketOffMode(t *testing.T) {
	r := newRig(t, tracker.ModeOff)
	sa, _ := r.net.ListenPacket("a:1")
	sb, _ := r.net.ListenPacket("b:1")
	if err := PacketSend(r.a, sa, taint.WrapBytes([]byte("plain")), "b:1"); err != nil {
		t.Fatal(err)
	}
	buf := taint.WrapBytes(make([]byte, 8))
	n, _, err := PacketReceive(r.b, sb, &buf)
	if err != nil || string(buf.Data[:n]) != "plain" {
		t.Fatalf("read %q %v", buf.Data[:n], err)
	}
	if buf.HasShadow() {
		t.Fatal("off mode must stay shadow-free")
	}
}

func TestPacketPhosphorStaleLabels(t *testing.T) {
	r := newRig(t, tracker.ModePhosphor)
	sa, _ := r.net.ListenPacket("a:1")
	sb, _ := r.net.ListenPacket("b:1")
	if err := PacketSend(r.a, sa, taint.FromString("x", r.a.Source("s", "real")), "b:1"); err != nil {
		t.Fatal(err)
	}
	buf := taint.MakeBytes(1)
	buf.SetLabel(0, r.b.Source("s", "stale"))
	if _, _, err := PacketReceive(r.b, sb, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.LabelAt(0).Has("real") || !buf.LabelAt(0).Has("stale") {
		t.Fatalf("phosphor packet labels = %v", buf.LabelAt(0))
	}
}

func TestBufferWriteReadRoundTrip(t *testing.T) {
	r := newRig(t, tracker.ModeDista)
	sender, receiver := r.endpoints(t)

	src := jni.NewDirectBuffer(8)
	copy(src.Data, "nio-data")
	tt := r.a.Source("s", "nio")
	for i := 4; i < 8; i++ {
		src.SetLabel(i, tt)
	}
	n, err := sender.WriteBuffer(src, 0, 8)
	if err != nil || n != 8 {
		t.Fatalf("WriteBuffer = %d, %v", n, err)
	}

	dst := jni.NewDirectBuffer(8)
	total := 0
	for total < 8 {
		n, err := receiver.ReadBuffer(dst, total, 8)
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if string(dst.Data) != "nio-data" {
		t.Fatalf("data = %q", dst.Data)
	}
	for i := 0; i < 8; i++ {
		want := i >= 4
		if got := dst.Label(i).Has("nio"); got != want {
			t.Fatalf("shadow[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestBufferRangeChecks(t *testing.T) {
	r := newRig(t, tracker.ModeOff)
	sender, _ := r.endpoints(t)
	src := jni.NewDirectBuffer(4)
	if _, err := sender.WriteBuffer(src, 2, 9); !errors.Is(err, jni.ErrRange) {
		t.Fatalf("out-of-range buffer write: err = %v, want jni.ErrRange", err)
	}
	if _, err := sender.ReadBuffer(src, -1, 2); !errors.Is(err, jni.ErrRange) {
		t.Fatalf("out-of-range buffer read: err = %v, want jni.ErrRange", err)
	}
}

func TestMixedTaintedAndCleanTrafficSharesConnection(t *testing.T) {
	r := newRig(t, tracker.ModeDista)
	sender, receiver := r.endpoints(t)
	// Alternate tainted and clean writes; all must decode correctly.
	for i := 0; i < 10; i++ {
		var b taint.Bytes
		if i%2 == 0 {
			b = taint.FromString("T", r.a.Source("s", "alt"))
		} else {
			b = taint.WrapBytes([]byte("c"))
		}
		if err := sender.Write(b); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		buf := taint.MakeBytes(1)
		if _, err := receiver.Read(&buf); err != nil {
			t.Fatal(err)
		}
		wantTaint := i%2 == 0
		if got := buf.LabelAt(0).Has("alt"); got != wantTaint {
			t.Fatalf("msg %d taint=%v want %v", i, got, wantTaint)
		}
	}
}
