package instrument

import (
	"dista/internal/core/taint"
	"dista/internal/core/tracker"
	"dista/internal/core/wire"
	"dista/internal/jni"
	"dista/internal/netsim"
)

// Type 2 wrappers (Fig. 7): packet-oriented natives. The sender fetches
// the data and its taints out of the packet, serializes them into a new
// payload, and sends that via the original native — deliberately *not*
// mutating the caller's packet, whose fields may be reused by following
// code (§III-C). The receiver allocates an enlarged buffer, receives the
// full encoded packet, and splits it back into data and taints.

// PacketSend transmits one datagram payload with its labels.
func PacketSend(agent *tracker.Agent, sock *netsim.UDPSocket, data taint.Bytes, dst string) error {
	if agent.Mode() != tracker.ModeDista {
		agent.AddTraffic(len(data.Data), len(data.Data))
		return jni.DatagramSend(sock, data.Data, dst)
	}
	if data.Clean() {
		// Clean-path datagram: the passthrough flavour costs the
		// packet header instead of 5x the payload.
		raw := wire.EncodePacketPassthrough(data.Data)
		agent.AddTraffic(len(data.Data), len(raw))
		return jni.DatagramSend(sock, raw, dst)
	}
	runs, err := registerRuns(agent, data, nil)
	if err != nil {
		return err
	}
	raw := wire.EncodePacketRuns(data.Data, runs)
	agent.AddTraffic(len(data.Data), len(raw))
	return jni.DatagramSend(sock, raw, dst)
}

// PacketSendAdaptive transmits one datagram payload with its labels,
// opting into the tiered per-datagram encodings. Datagrams carry no
// stream state, so there is no density tracker to consult: each packet
// independently takes the cheapest sound form — passthrough when clean,
// uniform when wholly single-labelled, sparse when the dirty runs fit a
// range table, full groups otherwise. The receiver decodes every form
// unconditionally (packet magics are self-describing), so the only
// compatibility requirement is that the peer runs a decoder that knows
// the uniform/sparse magics; pre-tiering peers must be sent PacketSend
// traffic instead.
func PacketSendAdaptive(agent *tracker.Agent, sock *netsim.UDPSocket, data taint.Bytes, dst string) error {
	if agent.Mode() != tracker.ModeDista {
		agent.AddTraffic(len(data.Data), len(data.Data))
		return jni.DatagramSend(sock, data.Data, dst)
	}
	if data.Clean() {
		raw := wire.EncodePacketPassthrough(data.Data)
		agent.AddTraffic(len(data.Data), len(raw))
		return jni.DatagramSend(sock, raw, dst)
	}
	st, exact := data.Stats(tierScanLimit)
	if exact && st.Uniform(len(data.Data)) {
		id, err := registerOne(agent, st.One)
		if err != nil {
			return err
		}
		raw := wire.EncodePacketUniform(data.Data, id)
		agent.AddTraffic(len(data.Data), len(raw))
		return jni.DatagramSend(sock, raw, dst)
	}
	if exact && st.DirtyRuns <= sparseMaxRanges {
		ranges, err := registerDirty(agent, data, nil)
		if err != nil {
			return err
		}
		raw := wire.EncodePacketSparse(data.Data, ranges)
		agent.AddTraffic(len(data.Data), len(raw))
		return jni.DatagramSend(sock, raw, dst)
	}
	runs, err := registerRuns(agent, data, nil)
	if err != nil {
		return err
	}
	raw := wire.EncodePacketRuns(data.Data, runs)
	agent.AddTraffic(len(data.Data), len(raw))
	return jni.DatagramSend(sock, raw, dst)
}

// PacketPeek inspects the next datagram without consuming it — the
// Type 2 wrapper over the peekData native. Decoding is identical to
// PacketReceive.
func PacketPeek(agent *tracker.Agent, sock *netsim.UDPSocket, buf *taint.Bytes) (int, string, error) {
	if agent.Mode() != tracker.ModeDista {
		return jni.DatagramPeekData(sock, buf.Data)
	}
	enlarged := make([]byte, wire.PacketOverhead+wire.WireLen(len(buf.Data)))
	n, from, err := jni.DatagramPeekData(sock, enlarged)
	if err != nil {
		return 0, "", err
	}
	return decodeInto(agent, enlarged[:n], buf, from)
}

// PacketReceive blocks for one datagram and fills buf with up to
// len(buf.Data) payload bytes and their labels, returning the payload
// length actually stored and the sender address.
func PacketReceive(agent *tracker.Agent, sock *netsim.UDPSocket, buf *taint.Bytes) (int, string, error) {
	if agent.Mode() != tracker.ModeDista {
		// Original native; in phosphor mode the buffer's stale labels
		// survive (Fig. 4 behaviour).
		return jni.DatagramReceive0(sock, buf.Data)
	}

	// Enlarged receive buffer: header + one group per expected byte.
	enlarged := make([]byte, wire.PacketOverhead+wire.WireLen(len(buf.Data)))
	n, from, err := jni.DatagramReceive0(sock, enlarged)
	if err != nil {
		return 0, "", err
	}
	return decodeInto(agent, enlarged[:n], buf, from)
}

// decodeInto splits an encoded datagram into buf's data and labels.
func decodeInto(agent *tracker.Agent, raw []byte, buf *taint.Bytes, from string) (int, string, error) {
	data, runs, err := wire.DecodePacketPrefixRuns(raw)
	if err != nil {
		return 0, "", err
	}
	stored := copy(buf.Data, data)
	runs = trimRuns(runs, stored)
	if wire.RunsAllUntainted(runs) {
		// Clean delivery: clear stale labels without a Taint Map
		// round-trip; a shadow-free buf stays lazy.
		if buf.HasShadow() {
			buf.SetRange(0, stored, taint.Taint{})
		}
		return stored, from, nil
	}
	labels, err := resolveRuns(agent, runs)
	if err != nil {
		return 0, "", err
	}
	adoptRuns(buf, runs, labels)
	return stored, from, nil
}
