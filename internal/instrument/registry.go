// Package instrument implements DisTA's instrumentation layer (DSN'22
// §III): taint-aware wrappers around the JNI primitives of
// internal/jni, in the paper's three styles —
//
//	Type 1: stream oriented  (TCP natives; Fig. 6)
//	Type 2: packet oriented  (UDP natives; Fig. 7)
//	Type 3: direct-buffer oriented (NIO/AIO natives; Fig. 8)
//
// plus the registry of all 23 instrumented methods that regenerates the
// paper's Table I.
package instrument

// MethodType classifies an instrumented method by its wrapper style.
type MethodType int

// The three instrumentation types of §III-C.
const (
	TypeStream MethodType = iota + 1
	TypePacket
	TypeDirectBuffer
)

// String returns the numeral the paper's Table I uses.
func (t MethodType) String() string {
	switch t {
	case TypeStream:
		return "1"
	case TypePacket:
		return "2"
	case TypeDirectBuffer:
		return "3"
	default:
		return "?"
	}
}

// Method is one row of the instrumented-method registry.
type Method struct {
	Class     string     // owning JRE class
	Name      string     // method name
	Type      MethodType // wrapper style
	JNI       bool       // one of the 13 bottom-level JNI natives of §III-B
	Direction string     // "send", "receive", or "both"
}

// Registry lists every method DisTA instruments — 23 in total (§IV),
// of which 13 (in 5 classes) are the bottom-level network JNI natives
// identified in §III-B.
var Registry = []Method{
	// TCP stream natives (Type 1).
	{Class: "SocketInputStream", Name: "socketRead0", Type: TypeStream, JNI: true, Direction: "receive"},
	{Class: "SocketOutputStream", Name: "socketWrite0", Type: TypeStream, JNI: true, Direction: "send"},
	{Class: "LinuxVirtualMachine", Name: "read", Type: TypeStream, Direction: "receive"},
	{Class: "LinuxVirtualMachine", Name: "write", Type: TypeStream, Direction: "send"},

	// UDP packet natives (Type 2).
	{Class: "PlainDatagramSocketImpl", Name: "send", Type: TypePacket, JNI: true, Direction: "send"},
	{Class: "PlainDatagramSocketImpl", Name: "peekData", Type: TypePacket, JNI: true, Direction: "receive"},
	{Class: "PlainDatagramSocketImpl", Name: "receive0", Type: TypePacket, JNI: true, Direction: "receive"},

	// NIO/AIO dispatcher natives (Type 3). FileDispatcherImpl is
	// extended by SocketDispatcherImpl for Linux socket channels.
	{Class: "FileDispatcherImpl", Name: "read0", Type: TypeDirectBuffer, JNI: true, Direction: "receive"},
	{Class: "FileDispatcherImpl", Name: "readv0", Type: TypeDirectBuffer, JNI: true, Direction: "receive"},
	{Class: "FileDispatcherImpl", Name: "write0", Type: TypeDirectBuffer, JNI: true, Direction: "send"},
	{Class: "FileDispatcherImpl", Name: "writev0", Type: TypeDirectBuffer, JNI: true, Direction: "send"},
	{Class: "DatagramDispatcherImpl", Name: "read0", Type: TypeDirectBuffer, JNI: true, Direction: "receive"},
	{Class: "DatagramDispatcherImpl", Name: "readv0", Type: TypeDirectBuffer, JNI: true, Direction: "receive"},
	{Class: "DatagramDispatcherImpl", Name: "write0", Type: TypeDirectBuffer, JNI: true, Direction: "send"},
	{Class: "DatagramDispatcherImpl", Name: "writev0", Type: TypeDirectBuffer, JNI: true, Direction: "send"},

	// Direct-buffer accessors and helpers (Type 3, above JNI level).
	{Class: "DirectByteBuffer", Name: "get", Type: TypeDirectBuffer, Direction: "receive"},
	{Class: "DirectByteBuffer", Name: "put", Type: TypeDirectBuffer, Direction: "send"},
	{Class: "IOUtil", Name: "writeFromNativeBuffer", Type: TypeDirectBuffer, Direction: "send"},
	{Class: "IOUtil", Name: "readIntoNativeBuffer", Type: TypeDirectBuffer, Direction: "receive"},

	// Asynchronous channels (Type 3).
	{Class: "WindowsAsynchronousSocketChannelImpl", Name: "implRead", Type: TypeDirectBuffer, Direction: "receive"},
	{Class: "WindowsAsynchronousSocketChannelImpl", Name: "implWrite", Type: TypeDirectBuffer, Direction: "send"},
	{Class: "UnixAsynchronousSocketChannelImpl", Name: "implRead", Type: TypeDirectBuffer, Direction: "receive"},
	{Class: "UnixAsynchronousSocketChannelImpl", Name: "implWrite", Type: TypeDirectBuffer, Direction: "send"},
}

// JNIMethods returns the subset of Registry that are bottom-level JNI
// natives (the 13 methods of §III-B).
func JNIMethods() []Method {
	var out []Method
	for _, m := range Registry {
		if m.JNI {
			out = append(out, m)
		}
	}
	return out
}

// JNIClasses returns the distinct classes owning JNI natives (5).
func JNIClasses() []string {
	seen := make(map[string]bool)
	var out []string
	for _, m := range JNIMethods() {
		if !seen[m.Class] {
			seen[m.Class] = true
			out = append(out, m.Class)
		}
	}
	return out
}
