package instrument

import "dista/internal/core/taint"

// Taint-density tiering (DESIGN.md §9): an adaptive endpoint classifies
// each outgoing buffer into the cheapest wire tier that can carry its
// labels soundly, steered by a per-connection density tracker so the
// stream settles on the tier matching the taint pattern the flow
// actually exhibits instead of paying the 5x group codec for its whole
// lifetime after one tainted byte.
//
// The tier lattice, cheapest to most general:
//
//	P (passthrough) < U (uniform) < S (sparse) < G (groups)
//
// Every tier above a buffer's sound minimum can carry it: a uniform
// buffer fits a sparse frame (one range) and a groups frame; only a
// clean buffer fits passthrough. A frame's tier is the maximum of the
// stream's tracked tier and the buffer's sound minimum — the tracker
// only ever makes a frame *denser* than strictly necessary, never
// cheaper, so no tier choice can drop a label. Clean buffers always go
// passthrough regardless of the tracked tier, preserving the PR 5
// clean-path contract.

// Wire tiers in lattice order.
const (
	tierPassthrough = iota
	tierUniform
	tierSparse
	tierGroups
)

const (
	// tierScanLimit bounds the Stats dirty-run scan per write; a buffer
	// that exceeds it is too fragmented for any tier but groups, so the
	// exact counts don't matter.
	tierScanLimit = 32
	// sparseMaxRanges is the densest taint a sparse frame will carry;
	// beyond it the table overhead approaches the group encoding and
	// the dense tier wins. Must not exceed wire.MaxSparseRanges.
	sparseMaxRanges = 16
	// tierMinDwell is how many consecutive writes the tracker must
	// spend in a tier before moving to a *cheaper* one. Transitions
	// toward denser tiers are immediate (they are always sound);
	// transitions toward cheaper ones wait, so an adversarial workload
	// alternating densities cannot thrash the tier per write.
	tierMinDwell = 8
)

// EWMA fixed point: 16.16, alpha = 1/4.
const (
	fpShift   = 16
	fpOne     = 1 << fpShift
	ewmaAlpha = 2 // EWMA step: x += (sample - x) >> ewmaAlpha
)

// Hysteresis bands, in fixed point. Each cheap tier has an enter
// threshold and a wider leave threshold, so a stream sitting near a
// boundary does not oscillate: it must drift well past the band it
// entered through before it is reclassified.
const (
	fracEnterP = fpOne / 100      // enter P: <=1% dirty bytes
	fracLeaveP = fpOne / 20       // leave P: >5% dirty bytes
	fracEnterU = fpOne * 95 / 100 // enter U: >=95% dirty bytes...
	runsEnterU = fpOne * 3 / 2    // ...forming <=1.5 runs
	fracLeaveU = fpOne * 75 / 100 // leave U: <75% dirty bytes...
	runsLeaveU = fpOne * 5 / 2    // ...or >2.5 runs
	runsEnterS = fpOne * 4        // enter S: <=4 runs...
	fracEnterS = fpOne / 4        // ...covering <=25% of the bytes
	runsLeaveS = fpOne * 8        // leave S: >8 runs...
	fracLeaveS = fpOne * 2 / 5    // ...or >40% dirty bytes
)

// densityTracker is the per-connection tier selector: two fixed-point
// EWMAs (dirty-byte fraction, dirty-run count) updated in O(1) per
// write on top of the epoch-memoized Stats, classified against the
// hysteresis bands above with a minimum dwell before downgrades.
type densityTracker struct {
	tier  int
	dwell int   // writes spent since the last tier change
	frac  int64 // EWMA of the dirty-byte fraction, 16.16
	runs  int64 // EWMA of the dirty-run count, 16.16
}

// observe folds one write's stats into the EWMAs and reclassifies. n
// is the buffer length; exact=false (aborted Stats scan) counts as
// maximal fragmentation.
func (d *densityTracker) observe(st taint.RunStats, n int, exact bool) {
	var sampleFrac, sampleRuns int64
	if n > 0 {
		sampleFrac = int64(st.DirtyBytes) * fpOne / int64(n)
	}
	sampleRuns = int64(st.DirtyRuns) * fpOne
	if !exact {
		sampleRuns = int64(tierScanLimit) * fpOne
	}
	d.frac += (sampleFrac - d.frac) >> ewmaAlpha
	d.runs += (sampleRuns - d.runs) >> ewmaAlpha
	d.dwell++

	target := d.classify()
	switch {
	case target > d.tier:
		// Densifying is always sound and always allowed: one burst of
		// fragmented taint must not be carried on a cheap tier's
		// history.
		d.tier, d.dwell = target, 0
	case target < d.tier && d.dwell >= tierMinDwell:
		d.tier, d.dwell = target, 0
	}
}

// observeClean ages the tracker for an all-clean write. Clean traffic
// is routed by the Clean() gate before tiering is consulted and says
// nothing about how fragmented the *tainted* traffic is, so it must
// not dilute the EWMAs: interleaving clean headers with uniform
// records — the common protocol shape — would otherwise read as
// "intermediate density" and drive the stream to the groups tier. It
// still advances the dwell, so a pending downgrade can mature during a
// clean phase.
func (d *densityTracker) observeClean(n int) {
	d.dwell++
	if target := d.classify(); target < d.tier && d.dwell >= tierMinDwell {
		d.tier, d.dwell = target, 0
	}
}

// classify maps the current EWMAs to a tier: the current tier holds
// until its leave band is crossed (hysteresis), then the enter bands
// are tried cheapest-first.
func (d *densityTracker) classify() int {
	f, r := d.frac, d.runs
	switch d.tier {
	case tierPassthrough:
		if f <= fracLeaveP {
			return tierPassthrough
		}
	case tierUniform:
		if f >= fracLeaveU && r <= runsLeaveU {
			return tierUniform
		}
	case tierSparse:
		if r <= runsLeaveS && f <= fracLeaveS {
			return tierSparse
		}
	}
	switch {
	case f <= fracEnterP:
		return tierPassthrough
	case f >= fracEnterU && r <= runsEnterU:
		return tierUniform
	case r <= runsEnterS && f <= fracEnterS:
		return tierSparse
	}
	return tierGroups
}

// frameTier picks the tier for one buffer: the maximum of the tracked
// stream tier and the buffer's sound minimum. The sound minimum is the
// cheapest tier that carries every label — uniform only for a wholly
// single-labelled buffer, sparse only when the exact dirty-run count
// fits a range table, groups otherwise. A clean buffer is the caller's
// responsibility (it goes passthrough before tiering is consulted).
func (d *densityTracker) frameTier(st taint.RunStats, n int, exact bool) int {
	min := tierGroups
	if exact {
		if st.Uniform(n) {
			min = tierUniform
		} else if st.DirtyRuns <= sparseMaxRanges {
			min = tierSparse
		}
	}
	if d.tier > min {
		return d.tier
	}
	return min
}
