package instrument

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"testing"

	"dista/internal/core/taint"
	"dista/internal/core/tracker"
	"dista/internal/core/wire"
	"dista/internal/jni"
	"dista/internal/netsim"
)

// uniformStats builds the RunStats of an n-byte wholly t-labelled buffer.
func uniformStats(t taint.Taint, n int) taint.RunStats {
	return taint.RunStats{DirtyBytes: n, DirtyRuns: 1, One: t}
}

func TestDensityTrackerConvergesUniform(t *testing.T) {
	tt := taint.NewTree().NewSource("s", "u")
	var d densityTracker
	if d.tier != tierPassthrough {
		t.Fatalf("fresh tracker tier = %d, want passthrough", d.tier)
	}
	converged := -1
	for i := 0; i < 64; i++ {
		d.observe(uniformStats(tt, 1024), 1024, true)
		if d.tier == tierUniform {
			converged = i
			break
		}
	}
	if converged < 0 {
		t.Fatalf("64 uniform writes never reached the uniform tier (tier %d)", d.tier)
	}
	// Once there, uniform buffers ride the uniform tier.
	if got := d.frameTier(uniformStats(tt, 1024), 1024, true); got != tierUniform {
		t.Fatalf("frameTier = %d, want uniform", got)
	}
	t.Logf("uniform tier reached after %d writes", converged+1)
}

func TestDensityTrackerConvergesSparseAndClean(t *testing.T) {
	tt := taint.NewTree().NewSource("s", "sp")
	var d densityTracker
	// Two islands totalling 1/8 of 64 KiB: inside the sparse bands.
	st := taint.RunStats{DirtyBytes: 8 << 10, DirtyRuns: 2, One: taint.Taint{}}
	for i := 0; i < 16; i++ {
		d.observe(st, 64<<10, true)
	}
	if d.tier != tierSparse {
		t.Fatalf("sparse workload settled on tier %d, want sparse", d.tier)
	}
	if got := d.frameTier(st, 64<<10, true); got != tierSparse {
		t.Fatalf("frameTier = %d, want sparse", got)
	}
	// A fragmented burst densifies immediately...
	d.observe(taint.RunStats{DirtyBytes: 32 << 10, DirtyRuns: 33, One: tt}, 64<<10, false)
	if d.tier != tierGroups {
		t.Fatalf("fragmented burst left tier %d, want immediate groups", d.tier)
	}
	// ...and the way back down must wait out the dwell even once the
	// EWMAs have recovered.
	drop := -1
	for i := 0; i < 64; i++ {
		d.observe(st, 64<<10, true)
		if d.tier == tierSparse {
			drop = i
			break
		}
	}
	if drop < 0 {
		t.Fatalf("64 sparse writes never returned to the sparse tier (tier %d)", d.tier)
	}
	if drop+1 < tierMinDwell {
		t.Fatalf("tier dropped after %d writes, inside the %d-write dwell", drop+1, tierMinDwell)
	}
	// Clean writes never disturb the tainted-traffic classification.
	for i := 0; i < 64; i++ {
		d.observeClean(64 << 10)
	}
	if d.tier != tierSparse {
		t.Fatalf("clean phase moved the tier to %d", d.tier)
	}
}

func TestDensityTrackerFlappingHoldsGroups(t *testing.T) {
	tt := taint.NewTree().NewSource("s", "flap")
	var d densityTracker
	uni := uniformStats(tt, 4096)
	dense := taint.RunStats{DirtyBytes: 4096, DirtyRuns: 32, One: taint.Taint{}}
	for i := 0; i < 16; i++ { // warm up the adversary
		if i%2 == 0 {
			d.observe(uni, 4096, true)
		} else {
			d.observe(dense, 4096, true)
		}
	}
	for i := 0; i < 64; i++ {
		if i%2 == 0 {
			d.observe(uni, 4096, true)
		} else {
			d.observe(dense, 4096, true)
		}
		if d.tier != tierGroups {
			t.Fatalf("alternating workload flapped to tier %d at write %d", d.tier, i)
		}
		// Even the uniform halves must ride the groups floor: per-frame
		// downgrades are exactly what the tracker exists to prevent.
		if got := d.frameTier(uni, 4096, true); got != tierGroups {
			t.Fatalf("uniform write under groups floor got tier %d", got)
		}
	}
}

// rawFrame is one parsed frame of a sniffed wire capture.
type rawFrame struct {
	tag byte
	n   int // body length as declared by the header
}

// readAllRaw drains the raw wire bytes from c until EOF.
func readAllRaw(t *testing.T, c *netsim.Conn) []byte {
	t.Helper()
	var all []byte
	buf := make([]byte, 4096)
	for {
		n, err := jni.SocketRead0(c, buf)
		all = append(all, buf[:n]...)
		if err == io.EOF {
			return all
		}
		if err != nil {
			t.Fatalf("raw read: %v", err)
		}
	}
}

// parseFrames splits a framed capture into frames, checking the magic.
func parseFrames(t *testing.T, raw, magic []byte) []rawFrame {
	t.Helper()
	if len(raw) < len(magic) || !bytes.Equal(raw[:len(magic)], magic) {
		t.Fatalf("stream opens %q, want magic %q", raw[:min(len(raw), len(magic))], magic)
	}
	raw = raw[len(magic):]
	var frames []rawFrame
	for len(raw) > 0 {
		if len(raw) < wire.FrameHeaderLen {
			t.Fatalf("truncated frame header (%d bytes left)", len(raw))
		}
		f := rawFrame{tag: raw[0], n: int(binary.BigEndian.Uint32(raw[1:wire.FrameHeaderLen]))}
		if len(raw) < wire.FrameHeaderLen+f.n {
			t.Fatalf("frame %q declares %d body bytes, capture has %d", f.tag, f.n, len(raw)-wire.FrameHeaderLen)
		}
		frames = append(frames, f)
		raw = raw[wire.FrameHeaderLen+f.n:]
	}
	return frames
}

// TestAdaptiveWireTags sniffs the raw stream of an adaptive sender and
// checks the negotiated magic and the tier each phase settles on.
func TestAdaptiveWireTags(t *testing.T) {
	r := newRig(t, tracker.ModeDista)
	ca, cb := r.net.Pipe()
	sender := NewAdaptiveEndpoint(r.a, ca)

	const n = 256
	tu := r.a.Source("s", "uni")
	uniform := taint.MakeBytes(n)
	uniform.SetRange(0, n, tu)

	sparse := taint.MakeBytes(n)
	sparse.SetRange(8, 16, tu)
	sparse.SetRange(64, 72, tu)

	dense := taint.MakeBytes(n)
	for i := 0; i < n; i += 2 {
		dense.SetLabel(i, tu)
	}

	var idx []int // frame index where each phase starts
	done := make(chan []byte, 1)
	go func() { done <- readAllRaw(t, cb) }()

	writeN := func(b taint.Bytes, k int) {
		for i := 0; i < k; i++ {
			if err := sender.Write(b); err != nil {
				t.Errorf("write: %v", err)
			}
		}
	}
	writeN(uniform, 24)
	idx = append(idx, 24)
	writeN(sparse, 24)
	idx = append(idx, 48)
	writeN(dense, 8)
	idx = append(idx, 56)
	// Clean after a dense history must still be passthrough.
	writeN(taint.MakeBytes(n), 4)
	ca.Close()

	frames := parseFrames(t, <-done, wire.AppendAdaptiveStreamMagic(nil))
	if len(frames) != 60 {
		t.Fatalf("got %d frames, want 60", len(frames))
	}
	// Each phase must converge: its last frame carries the phase's tier.
	if got := frames[idx[0]-1].tag; got != wire.FrameUniform {
		t.Fatalf("uniform phase ended on tag %q, want %q", got, wire.FrameUniform)
	}
	if got := frames[idx[1]-1].tag; got != wire.FrameSparse {
		t.Fatalf("sparse phase ended on tag %q, want %q", got, wire.FrameSparse)
	}
	if got := frames[idx[2]-1].tag; got != wire.FrameGroups {
		t.Fatalf("dense phase ended on tag %q, want %q", got, wire.FrameGroups)
	}
	for i := idx[2]; i < len(frames); i++ {
		if frames[i].tag != wire.FramePassthrough {
			t.Fatalf("clean write %d carried tag %q, want passthrough", i, frames[i].tag)
		}
	}
	// Sanity on declared lengths: a uniform body is id+data, sparse
	// carries its table, passthrough is bare.
	if frames[idx[0]-1].n != wire.GlobalIDLen+n {
		t.Fatalf("uniform body = %d, want %d", frames[idx[0]-1].n, wire.GlobalIDLen+n)
	}
	if frames[idx[1]-1].n != wire.SparseCountLen+2*wire.SparseRangeLen+n {
		t.Fatalf("sparse body = %d, want %d", frames[idx[1]-1].n, wire.SparseCountLen+2*wire.SparseRangeLen+n)
	}
	if frames[len(frames)-1].n != n {
		t.Fatalf("passthrough body = %d, want %d", frames[len(frames)-1].n, n)
	}
}

// TestNonAdaptiveNeverEmitsTieredTags proves the compatibility gate: a
// plain framed endpoint keeps the DTF1 magic and the PR 5 tag set even
// for buffers the tiers were built for, so an old decoder on the other
// end never meets a tag it does not know.
func TestNonAdaptiveNeverEmitsTieredTags(t *testing.T) {
	r := newRig(t, tracker.ModeDista)
	ca, cb := r.net.Pipe()
	sender := NewEndpoint(r.a, ca)

	const n = 128
	tu := r.a.Source("s", "compat")
	uniform := taint.MakeBytes(n)
	uniform.SetRange(0, n, tu)

	done := make(chan []byte, 1)
	go func() { done <- readAllRaw(t, cb) }()
	for i := 0; i < 16; i++ {
		if err := sender.Write(uniform); err != nil {
			t.Fatalf("write: %v", err)
		}
		if err := sender.Write(taint.MakeBytes(n)); err != nil {
			t.Fatalf("clean write: %v", err)
		}
	}
	if err := sender.WriteUniform([]byte("framed-record"), tu); err != nil {
		t.Fatalf("WriteUniform: %v", err)
	}
	ca.Close()

	for i, f := range parseFrames(t, <-done, wire.AppendStreamMagic(nil)) {
		if f.tag != wire.FramePassthrough && f.tag != wire.FrameGroups {
			t.Fatalf("frame %d: non-negotiated sender emitted tag %q", i, f.tag)
		}
	}
}

// TestAdaptiveEndToEndMixed drives one adaptive connection through
// clean, uniform, sparse and dense phases and verifies every delivered
// byte carries exactly the label it was sent with.
func TestAdaptiveEndToEndMixed(t *testing.T) {
	r := newRig(t, tracker.ModeDista)
	ca, cb := r.net.Pipe()
	sender, receiver := NewAdaptiveEndpoint(r.a, ca), NewAdaptiveEndpoint(r.b, cb)

	const msgLen = 64
	const rounds = 48
	tags := map[byte]string{'U': "uni", 'S': "spr", 'D': "dns"}
	srcs := map[byte]taint.Taint{}
	for k, tag := range tags {
		srcs[k] = r.a.Source("s"+tag, tag)
	}

	// wantTag[i] is the label tag byte i of the whole stream must carry
	// ("" = must be clean).
	var wantTag []string
	mkMsg := func(kind byte) taint.Bytes {
		b := taint.MakeBytes(msgLen)
		for i := range b.Data {
			b.Data[i] = kind
		}
		switch kind {
		case 'C':
			for i := 0; i < msgLen; i++ {
				wantTag = append(wantTag, "")
			}
		case 'U':
			b.SetRange(0, msgLen, srcs[kind])
			for i := 0; i < msgLen; i++ {
				wantTag = append(wantTag, tags[kind])
			}
		case 'S':
			b.SetRange(4, 12, srcs[kind])
			b.SetRange(40, 44, srcs[kind])
			for i := 0; i < msgLen; i++ {
				if (i >= 4 && i < 12) || (i >= 40 && i < 44) {
					wantTag = append(wantTag, tags[kind])
				} else {
					wantTag = append(wantTag, "")
				}
			}
		case 'D':
			for i := 0; i < msgLen; i += 2 {
				b.SetLabel(i, srcs[kind])
			}
			for i := 0; i < msgLen; i++ {
				if i%2 == 0 {
					wantTag = append(wantTag, tags[kind])
				} else {
					wantTag = append(wantTag, "")
				}
			}
		}
		return b
	}

	recvErr := make(chan error, 1)
	got := taint.MakeBytes(rounds * msgLen)
	go func() {
		recvErr <- func() error {
			for pos := 0; pos < rounds*msgLen; {
				sub := got.Slice(pos, rounds*msgLen)
				n, err := receiver.Read(&sub)
				if err != nil {
					return fmt.Errorf("read at %d: %w", pos, err)
				}
				pos += n
			}
			return nil
		}()
	}()

	// Phased schedule so every tier gets a steady state, with kind
	// changes inside each phase to cross tier boundaries mid-stream.
	kinds := []byte{}
	for _, phase := range []byte{'U', 'S', 'C', 'D'} {
		for i := 0; i < rounds/4; i++ {
			kinds = append(kinds, phase)
		}
	}
	for _, kind := range kinds {
		if err := sender.Write(mkMsg(kind)); err != nil {
			t.Fatalf("write %q: %v", kind, err)
		}
	}
	if err := <-recvErr; err != nil {
		t.Fatal(err)
	}

	for i, want := range wantTag {
		lbl := got.LabelAt(i)
		if want == "" {
			if !lbl.Empty() {
				t.Fatalf("byte %d (%q) grew taint %v", i, got.Data[i], lbl.Values())
			}
			continue
		}
		if !lbl.Has(want) {
			t.Fatalf("byte %d (%q) lost label %q (has %v)", i, got.Data[i], want, lbl.Values())
		}
	}
}

// TestAdaptiveReceivesFromOlderPeers: an adaptive endpoint must decode
// the PR 5 framed format and the legacy raw group stream unchanged.
func TestAdaptiveReceivesFromOlderPeers(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(*tracker.Agent, *netsim.Conn) *Endpoint
	}{
		{"framed", NewEndpoint},
		{"legacy", NewLegacyEndpoint},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := newRig(t, tracker.ModeDista)
			ca, cb := r.net.Pipe()
			sender, receiver := tc.mk(r.a, ca), NewAdaptiveEndpoint(r.b, cb)
			msg := taint.FromString("cross-version", r.a.Source("s", "old"))
			if err := sender.Write(msg); err != nil {
				t.Fatal(err)
			}
			buf := taint.MakeBytes(msg.Len())
			for pos := 0; pos < msg.Len(); {
				sub := buf.Slice(pos, msg.Len())
				n, err := receiver.Read(&sub)
				if err != nil {
					t.Fatal(err)
				}
				pos += n
			}
			if string(buf.Data) != "cross-version" {
				t.Fatalf("got %q", buf.Data)
			}
			for i := range buf.Data {
				if !buf.LabelAt(i).Has("old") {
					t.Fatalf("byte %d lost taint across versions", i)
				}
			}
		})
	}
}

// TestWriteUniformDelivers checks the WriteUniform fast-path API across
// endpoint flavours: the label rides whatever encoding the connection
// negotiated, and an empty taint degrades to the passthrough path.
func TestWriteUniformDelivers(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(*tracker.Agent, *netsim.Conn) *Endpoint
	}{
		{"adaptive", NewAdaptiveEndpoint},
		{"framed", NewEndpoint},
		{"legacy", NewLegacyEndpoint},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := newRig(t, tracker.ModeDista)
			ca, cb := r.net.Pipe()
			sender, receiver := tc.mk(r.a, ca), NewAdaptiveEndpoint(r.b, cb)
			tt := r.a.Source("s", "rec")
			const rounds = 12 // enough for an adaptive sender to settle on 'U'
			payload := []byte("record-payload")
			for i := 0; i < rounds; i++ {
				if err := sender.WriteUniform(payload, tt); err != nil {
					t.Fatal(err)
				}
			}
			if err := sender.WriteUniform([]byte("trailer"), taint.Taint{}); err != nil {
				t.Fatal(err)
			}
			total := rounds*len(payload) + len("trailer")
			got := taint.MakeBytes(total)
			for pos := 0; pos < total; {
				sub := got.Slice(pos, total)
				n, err := receiver.Read(&sub)
				if err != nil {
					t.Fatal(err)
				}
				pos += n
			}
			for i := 0; i < rounds*len(payload); i++ {
				if !got.LabelAt(i).Has("rec") {
					t.Fatalf("%s: byte %d lost the record label", tc.name, i)
				}
			}
			for i := rounds * len(payload); i < total; i++ {
				if !got.LabelAt(i).Empty() {
					t.Fatalf("%s: trailer byte %d grew taint", tc.name, i)
				}
			}
		})
	}
}

// TestWritevAdaptiveUniformCoalescing sniffs a gathering write on a
// warmed-up adaptive connection: adjacent same-label sources must share
// one uniform frame, split by the clean stretch between them.
func TestWritevAdaptiveUniformCoalescing(t *testing.T) {
	r := newRig(t, tracker.ModeDista)
	ca, cb := r.net.Pipe()
	sender := NewAdaptiveEndpoint(r.a, ca)

	done := make(chan []byte, 1)
	go func() { done <- readAllRaw(t, cb) }()

	tt := r.a.Source("s", "vec")
	warm := taint.MakeBytes(256)
	warm.SetRange(0, 256, tt)
	const warmups = 24
	for i := 0; i < warmups; i++ {
		if err := sender.Write(warm); err != nil {
			t.Fatal(err)
		}
	}

	mk := func(n int, lbl taint.Taint) *jni.DirectBuffer {
		b := jni.NewDirectBuffer(n)
		if !lbl.Empty() {
			b.B.SetRange(0, n, lbl)
		}
		return b
	}
	srcs := []*jni.DirectBuffer{mk(10, tt), mk(20, tt), mk(30, taint.Taint{}), mk(40, tt)}
	lens := []int{10, 20, 30, 40}
	n, err := sender.WritevBuffers(srcs, lens)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("writev consumed %d, want 100", n)
	}
	ca.Close()

	frames := parseFrames(t, <-done, wire.AppendAdaptiveStreamMagic(nil))
	tail := frames[len(frames)-3:]
	want := []rawFrame{
		{wire.FrameUniform, wire.GlobalIDLen + 30}, // sources 0+1 coalesced
		{wire.FramePassthrough, 30},
		{wire.FrameUniform, wire.GlobalIDLen + 40},
	}
	for i, w := range want {
		if tail[i] != w {
			t.Fatalf("writev frame %d = {%q %d}, want {%q %d}", i, tail[i].tag, tail[i].n, w.tag, w.n)
		}
	}
	for i, f := range frames[:len(frames)-3] {
		if i >= warmups/2 && f.tag != wire.FrameUniform {
			t.Fatalf("warmup frame %d still %q", i, f.tag)
		}
	}
}

// TestWritevAdaptiveLabelsDeliver verifies the coalesced vectored write
// end to end: every byte lands with its source's label.
func TestWritevAdaptiveLabelsDeliver(t *testing.T) {
	r := newRig(t, tracker.ModeDista)
	ca, cb := r.net.Pipe()
	sender, receiver := NewAdaptiveEndpoint(r.a, ca), NewAdaptiveEndpoint(r.b, cb)

	tt := r.a.Source("s", "gather")
	mk := func(fillByte byte, n int, lbl taint.Taint) *jni.DirectBuffer {
		b := jni.NewDirectBuffer(n)
		for i := range b.Data {
			b.Data[i] = fillByte
		}
		if !lbl.Empty() {
			b.B.SetRange(0, n, lbl)
		}
		return b
	}
	srcs := []*jni.DirectBuffer{
		mk('a', 8, tt), mk('b', 8, tt), mk('c', 8, taint.Taint{}), mk('d', 8, tt),
	}
	lens := []int{8, 8, 8, 8}
	if _, err := sender.WritevBuffers(srcs, lens); err != nil {
		t.Fatal(err)
	}
	got := taint.MakeBytes(32)
	for pos := 0; pos < 32; {
		sub := got.Slice(pos, 32)
		n, err := receiver.Read(&sub)
		if err != nil {
			t.Fatal(err)
		}
		pos += n
	}
	for i := 0; i < 32; i++ {
		wantClean := i >= 16 && i < 24
		if wantClean != got.LabelAt(i).Empty() || (!wantClean && !got.LabelAt(i).Has("gather")) {
			t.Fatalf("byte %d (%q): labels %v", i, got.Data[i], got.LabelAt(i).Values())
		}
	}
}

// TestPacketSendAdaptiveForms drives every per-datagram tier through
// the UDP wrappers and checks the received labels and wire sizes.
func TestPacketSendAdaptiveForms(t *testing.T) {
	r := newRig(t, tracker.ModeDista)
	sa, _ := r.net.ListenPacket("a:1")
	sb, _ := r.net.ListenPacket("b:1")
	tt := r.a.Source("s", "pkt")
	const n = 64

	check := func(name string, payload taint.Bytes, wantDirty func(int) bool, maxWire int) {
		t.Helper()
		if err := PacketSendAdaptive(r.a, sa, payload, "b:1"); err != nil {
			t.Fatalf("%s: send: %v", name, err)
		}
		raw := make([]byte, wire.PacketOverhead+wire.WireLen(n))
		rn, _, err := jni.DatagramPeekData(sb, raw)
		if err != nil {
			t.Fatalf("%s: peek raw: %v", name, err)
		}
		if rn > maxWire {
			t.Fatalf("%s: datagram is %d wire bytes, budget %d", name, rn, maxWire)
		}
		buf := taint.MakeBytes(n)
		got, _, err := PacketReceive(r.b, sb, &buf)
		if err != nil || got != n {
			t.Fatalf("%s: receive = %d, %v", name, got, err)
		}
		for i := 0; i < n; i++ {
			if wantDirty(i) != buf.LabelAt(i).Has("pkt") {
				t.Fatalf("%s: byte %d dirty=%v, want %v", name, i, buf.LabelAt(i).Has("pkt"), wantDirty(i))
			}
		}
	}

	uniform := taint.MakeBytes(n)
	uniform.SetRange(0, n, tt)
	check("uniform", uniform, func(int) bool { return true },
		wire.PacketOverhead+wire.GlobalIDLen+n)

	sparse := taint.MakeBytes(n)
	sparse.SetRange(8, 16, tt)
	sparse.SetRange(32, 36, tt)
	check("sparse", sparse, func(i int) bool { return (i >= 8 && i < 16) || (i >= 32 && i < 36) },
		wire.PacketOverhead+wire.SparseCountLen+2*wire.SparseRangeLen+n)

	dense := taint.MakeBytes(n)
	for i := 0; i < n; i += 2 {
		dense.SetLabel(i, tt)
	}
	check("dense", dense, func(i int) bool { return i%2 == 0 },
		wire.PacketOverhead+wire.WireLen(n))

	check("clean", taint.MakeBytes(n), func(int) bool { return false },
		wire.PacketOverhead+n)
}
