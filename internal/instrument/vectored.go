package instrument

import (
	"dista/internal/core/tracker"
	"dista/internal/core/wire"
	"dista/internal/jni"
)

// Vectored Type 3 wrappers: the writev0/readv0 dispatcher natives used
// by NIO gathering writes and scattering reads. The dista wrapper
// encodes each source buffer into its own group run and hands the runs
// to the vectored native, preserving the original call shape.

// WritevBuffers performs a gathering write of the [0,lens[i]) prefix of
// each direct buffer, returning the total data bytes consumed.
//
// On the framed path adjacent clean sources coalesce into a single
// passthrough frame whose payload entries are the raw buffer slices —
// one 5-byte header for the whole stretch and zero copies — while
// tainted sources each travel as their own groups frame. An adaptive
// endpoint additionally coalesces adjacent sources that carry the same
// single label into one uniform frame (one header plus one Global ID
// for the stretch, payloads still uncopied); tainted sources too
// fragmented for the uniform tier fall back to groups frames — the
// vectored path never emits sparse frames, since per-source tables
// would cost more than the per-source groups frame they replace.
func (e *Endpoint) WritevBuffers(srcs []*jni.DirectBuffer, lens []int) (int64, error) {
	if len(srcs) != len(lens) {
		panic("instrument: srcs/lens length mismatch")
	}
	e.wmu.Lock()
	defer e.wmu.Unlock()

	if e.agent.Mode() != tracker.ModeDista {
		raw := make([][]byte, len(srcs))
		total := 0
		for i, src := range srcs {
			if err := src.CheckRange(0, lens[i]); err != nil {
				return 0, err
			}
			raw[i] = src.Data[:lens[i]]
			total += lens[i]
		}
		e.agent.AddTraffic(total, total)
		return jni.DispatcherWritev0(e.conn, raw)
	}

	if e.legacy {
		encoded := make([][]byte, len(srcs))
		total := 0
		for i, src := range srcs {
			if err := src.CheckRange(0, lens[i]); err != nil {
				return 0, err
			}
			runs, err := e.registerRunsScratch(src.View(0, lens[i]))
			if err != nil {
				return 0, err
			}
			encoded[i] = wire.EncodeRuns(nil, src.Data[:lens[i]], runs)
			total += lens[i]
			e.agent.AddTraffic(lens[i], len(encoded[i]))
		}
		if _, err := jni.DispatcherWritev0(e.conn, encoded); err != nil {
			return 0, err
		}
		return int64(total), nil
	}

	// Pass 1: classify sources, register tainted runs, and size the
	// shared scratch exactly so pass 2 can alias into it without any
	// append ever reallocating (which would invalidate earlier vector
	// entries).
	clean := make([]bool, len(srcs))
	runsOf := make([][]wire.Run, len(srcs))
	var uids []uint32 // adaptive: uniform-frame Global ID per source (0 = not uniform)
	if e.adaptive {
		uids = make([]uint32, len(srcs))
	}
	scratchLen := 0
	if !e.wroteMagic {
		scratchLen += wire.StreamMagicLen
	}
	total, wireBytes := 0, 0
	for i, src := range srcs {
		if err := src.CheckRange(0, lens[i]); err != nil {
			return 0, err
		}
		total += lens[i]
		if src.Clean(0, lens[i]) {
			clean[i] = true
			if e.adaptive {
				e.tier.observeClean(lens[i])
			}
			if i == 0 || !clean[i-1] {
				scratchLen += wire.FrameHeaderLen
			}
			continue
		}
		if e.adaptive {
			st, exact := src.View(0, lens[i]).Stats(tierScanLimit)
			e.tier.observe(st, lens[i], exact)
			if e.tier.frameTier(st, lens[i], exact) == tierUniform {
				id, err := registerOne(e.agent, st.One)
				if err != nil {
					return 0, err
				}
				uids[i] = id
				if i == 0 || uids[i-1] != id {
					scratchLen += wire.FrameHeaderLen + wire.GlobalIDLen
				}
				continue
			}
		}
		// No scratch here: every source's runs stay live until pass 2.
		runs, err := registerRuns(e.agent, src.View(0, lens[i]), nil)
		if err != nil {
			return 0, err
		}
		runsOf[i] = runs
		scratchLen += wire.GroupsFrameLen(lens[i])
	}

	// Pass 2: assemble headers and group bodies in the pooled scratch;
	// clean payloads enter the vector as raw slices, uncopied.
	buf := wire.GetBuf(scratchLen + wire.EncodeSlack)
	out := *buf
	vec := make([][]byte, 0, 2*len(srcs))
	for i := 0; i < len(srcs); {
		mark := len(out)
		if !e.wroteMagic && mark == 0 {
			// The magic rides in the first frame's header slice.
			out = e.appendMagic(out)
		}
		if clean[i] {
			j, n := i, 0
			for j < len(srcs) && clean[j] {
				n += lens[j]
				j++
			}
			out = wire.AppendFrameHeader(out, wire.FramePassthrough, n)
			vec = append(vec, out[mark:len(out):len(out)])
			for k := i; k < j; k++ {
				vec = append(vec, srcs[k].Data[:lens[k]])
			}
			wireBytes += len(out) - mark + n
			i = j
			continue
		}
		if uids != nil && uids[i] != 0 {
			j, n := i, 0
			for j < len(srcs) && uids[j] == uids[i] {
				n += lens[j]
				j++
			}
			out = wire.AppendUniformHeader(out, n, uids[i])
			vec = append(vec, out[mark:len(out):len(out)])
			for k := i; k < j; k++ {
				vec = append(vec, srcs[k].Data[:lens[k]])
			}
			wireBytes += len(out) - mark + n
			i = j
			continue
		}
		out = wire.AppendGroupsFrame(out, srcs[i].Data[:lens[i]], runsOf[i])
		vec = append(vec, out[mark:len(out):len(out)])
		wireBytes += len(out) - mark
		i++
	}
	e.agent.AddTraffic(total, wireBytes)
	_, err := jni.DispatcherWritev0(e.conn, vec)
	*buf = out
	wire.PutBuf(buf)
	if err != nil {
		return 0, err
	}
	if len(vec) > 0 {
		e.wroteMagic = true
	}
	return int64(total), nil
}

// ReadvBuffers performs a scattering read into the [0,lens[i]) prefixes
// of the direct buffers, returning the total data bytes stored.
func (e *Endpoint) ReadvBuffers(dsts []*jni.DirectBuffer, lens []int) (int64, error) {
	if len(dsts) != len(lens) {
		panic("instrument: dsts/lens length mismatch")
	}
	if e.agent.Mode() != tracker.ModeDista {
		raw := make([][]byte, len(dsts))
		for i, dst := range dsts {
			if err := dst.CheckRange(0, lens[i]); err != nil {
				return 0, err
			}
			raw[i] = dst.Data[:lens[i]]
		}
		return jni.DispatcherReadv0(e.conn, raw)
	}

	// One read's worth of frames, scattered across the buffers in order.
	var total int64
	for i, dst := range dsts {
		if err := dst.CheckRange(0, lens[i]); err != nil {
			return 0, err
		}
		n, err := e.ReadBuffer(dst, 0, lens[i])
		if err != nil {
			if total > 0 {
				return total, nil
			}
			return 0, err
		}
		total += int64(n)
		if n < lens[i] {
			break
		}
		// Single-read semantics: continue into the next buffer only with
		// data already decoded; never block for a second wire read.
		if i+1 < len(dsts) && e.bufferedData() == 0 {
			break
		}
	}
	return total, nil
}

// bufferedData reports how many decoded bytes are ready without
// blocking.
func (e *Endpoint) bufferedData() int {
	e.rmu.Lock()
	defer e.rmu.Unlock()
	return e.dec.Buffered()
}
