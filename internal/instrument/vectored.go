package instrument

import (
	"dista/internal/core/tracker"
	"dista/internal/core/wire"
	"dista/internal/jni"
)

// Vectored Type 3 wrappers: the writev0/readv0 dispatcher natives used
// by NIO gathering writes and scattering reads. The dista wrapper
// encodes each source buffer into its own group run and hands the runs
// to the vectored native, preserving the original call shape.

// WritevBuffers performs a gathering write of the [0,lens[i]) prefix of
// each direct buffer, returning the total data bytes consumed.
func (e *Endpoint) WritevBuffers(srcs []*jni.DirectBuffer, lens []int) (int64, error) {
	if len(srcs) != len(lens) {
		panic("instrument: srcs/lens length mismatch")
	}
	e.wmu.Lock()
	defer e.wmu.Unlock()

	if e.agent.Mode() != tracker.ModeDista {
		raw := make([][]byte, len(srcs))
		total := 0
		for i, src := range srcs {
			src.CheckRange(0, lens[i])
			raw[i] = src.Data[:lens[i]]
			total += lens[i]
		}
		e.agent.AddTraffic(total, total)
		return jni.DispatcherWritev0(e.conn, raw)
	}

	encoded := make([][]byte, len(srcs))
	total := 0
	for i, src := range srcs {
		src.CheckRange(0, lens[i])
		runs, err := registerRuns(e.agent, src.View(0, lens[i]))
		if err != nil {
			return 0, err
		}
		encoded[i] = wire.EncodeRuns(nil, src.Data[:lens[i]], runs)
		total += lens[i]
		e.agent.AddTraffic(lens[i], len(encoded[i]))
	}
	if _, err := jni.DispatcherWritev0(e.conn, encoded); err != nil {
		return 0, err
	}
	return int64(total), nil
}

// ReadvBuffers performs a scattering read into the [0,lens[i]) prefixes
// of the direct buffers, returning the total data bytes stored.
func (e *Endpoint) ReadvBuffers(dsts []*jni.DirectBuffer, lens []int) (int64, error) {
	if len(dsts) != len(lens) {
		panic("instrument: dsts/lens length mismatch")
	}
	if e.agent.Mode() != tracker.ModeDista {
		raw := make([][]byte, len(dsts))
		for i, dst := range dsts {
			dst.CheckRange(0, lens[i])
			raw[i] = dst.Data[:lens[i]]
		}
		return jni.DispatcherReadv0(e.conn, raw)
	}

	// One read's worth of groups, scattered across the buffers in order.
	var total int64
	for i, dst := range dsts {
		dst.CheckRange(0, lens[i])
		n, err := e.ReadBuffer(dst, 0, lens[i])
		if err != nil {
			if total > 0 {
				return total, nil
			}
			return 0, err
		}
		total += int64(n)
		if n < lens[i] {
			break
		}
		// Single-read semantics: continue into the next buffer only with
		// data already decoded; never block for a second wire read.
		if i+1 < len(dsts) && e.bufferedData() == 0 {
			break
		}
	}
	return total, nil
}

// bufferedData reports how many decoded bytes are ready without
// blocking.
func (e *Endpoint) bufferedData() int {
	e.rmu.Lock()
	defer e.rmu.Unlock()
	return e.dec.Buffered()
}
