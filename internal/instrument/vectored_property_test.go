package instrument

import (
	"fmt"
	"math/rand"
	"testing"

	"dista/internal/core/tracker"
	"dista/internal/jni"
)

// TestVectoredMixedCleanTaintedProperty is the clean-path property
// test: a gathering write over a randomized mix of clean and tainted
// iovecs, scattered back through randomized destination splits, must
// preserve every byte's label exactly — nothing dropped across a
// passthrough coalesce boundary, nothing smeared from a tainted
// neighbour into a clean stretch.
func TestVectoredMixedCleanTaintedProperty(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial)))
			r := newRig(t, tracker.ModeDista)
			sender, receiver := r.endpoints(t)

			// Build 1..8 source buffers; each independently clean or
			// tainted with its own tag, some possibly empty, so every
			// adjacency pattern (clean|clean, clean|tainted, …) and the
			// empty-iovec edge get exercised across trials.
			nsrc := rng.Intn(8) + 1
			srcs := make([]*jni.DirectBuffer, nsrc)
			lens := make([]int, nsrc)
			var wantData []byte
			var wantTag []string // "" = must be untainted
			for i := range srcs {
				lens[i] = rng.Intn(40)
				srcs[i] = jni.NewDirectBuffer(lens[i] + rng.Intn(8))
				tag := ""
				if rng.Intn(2) == 0 && lens[i] > 0 {
					tag = fmt.Sprintf("tag%d_%d", trial, i)
					v := srcs[i].View(0, lens[i])
					v.TaintAll(r.a.Source("v", tag))
				}
				for k := 0; k < lens[i]; k++ {
					srcs[i].Data[k] = byte(rng.Intn(256))
					wantData = append(wantData, srcs[i].Data[k])
					wantTag = append(wantTag, tag)
				}
			}

			total := len(wantData)
			n, err := sender.WritevBuffers(srcs, lens)
			if err != nil {
				t.Fatal(err)
			}
			if n != int64(total) {
				t.Fatalf("writev consumed %d of %d bytes", n, total)
			}

			// Scatter back through randomized split points until the
			// whole payload is in; splits land inside and across the
			// original iovec boundaries.
			var gotData []byte
			var gotTag []string
			for len(gotData) < total {
				ndst := rng.Intn(3) + 1
				dsts := make([]*jni.DirectBuffer, ndst)
				dlens := make([]int, ndst)
				for i := range dsts {
					dlens[i] = rng.Intn(24) + 1
					dsts[i] = jni.NewDirectBuffer(dlens[i])
					// Pre-dirty some destinations: stale labels must be
					// cleared by a clean delivery, not survive it.
					if rng.Intn(2) == 0 {
						v := dsts[i].View(0, dlens[i])
						v.TaintAll(r.b.Source("stale", "stale"))
					}
				}
				rn, err := receiver.ReadvBuffers(dsts, dlens)
				if err != nil {
					t.Fatal(err)
				}
				if rn == 0 {
					t.Fatalf("readv stalled at %d of %d bytes", len(gotData), total)
				}
				left := int(rn)
				for i := 0; i < ndst && left > 0; i++ {
					take := dlens[i]
					if take > left {
						take = left
					}
					for k := 0; k < take; k++ {
						gotData = append(gotData, dsts[i].Data[k])
						lbl := dsts[i].Label(k)
						switch {
						case lbl.Empty():
							gotTag = append(gotTag, "")
						case lbl.Has("stale"):
							t.Fatalf("stale destination label survived delivery at byte %d", len(gotData)-1)
						default:
							idx := len(gotData) - 1
							want := wantTag[idx]
							if want == "" || !lbl.Has(want) {
								t.Fatalf("byte %d carries %v, want tag %q", idx, lbl.Values(), want)
							}
							gotTag = append(gotTag, want)
						}
					}
					left -= take
				}
			}

			if string(gotData) != string(wantData) {
				t.Fatalf("payload mismatch:\n got %x\nwant %x", gotData, wantData)
			}
			for i := range wantTag {
				if gotTag[i] != wantTag[i] {
					t.Fatalf("byte %d label = %q, want %q", i, gotTag[i], wantTag[i])
				}
			}
		})
	}
}
