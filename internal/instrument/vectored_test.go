package instrument

import (
	"testing"

	"dista/internal/core/taint"
	"dista/internal/core/tracker"
	"dista/internal/jni"
)

func TestWritevReadvDistaTaint(t *testing.T) {
	r := newRig(t, tracker.ModeDista)
	sender, receiver := r.endpoints(t)

	t1 := r.a.Source("s", "vec1")
	t2 := r.a.Source("s", "vec2")
	src1, src2 := jni.NewDirectBuffer(4), jni.NewDirectBuffer(4)
	copy(src1.Data, "AAAA")
	copy(src2.Data, "BBBB")
	for i := 0; i < 4; i++ {
		src1.SetLabel(i, t1)
		src2.SetLabel(i, t2)
	}
	n, err := sender.WritevBuffers([]*jni.DirectBuffer{src1, src2}, []int{4, 4})
	if err != nil || n != 8 {
		t.Fatalf("writev = %d, %v", n, err)
	}

	dst1, dst2 := jni.NewDirectBuffer(4), jni.NewDirectBuffer(4)
	total := int64(0)
	for total < 8 {
		var bufs []*jni.DirectBuffer
		var lens []int
		if total < 4 {
			bufs, lens = []*jni.DirectBuffer{dst1, dst2}, []int{4, 4}
		} else {
			bufs, lens = []*jni.DirectBuffer{dst2}, []int{4}
		}
		got, err := receiver.ReadvBuffers(bufs, lens)
		if err != nil {
			t.Fatal(err)
		}
		total += got
		if total == 4 && got == 4 {
			// First readv may stop at the buffer boundary; loop refills.
			continue
		}
	}
	if string(dst1.Data) != "AAAA" || string(dst2.Data) != "BBBB" {
		t.Fatalf("scattered %q %q", dst1.Data, dst2.Data)
	}
	for i := 0; i < 4; i++ {
		if !dst1.Label(i).Has("vec1") || !dst2.Label(i).Has("vec2") {
			t.Fatalf("shadow %d lost: %v %v", i, dst1.Label(i), dst2.Label(i))
		}
	}
}

func TestWritevReadvOffMode(t *testing.T) {
	r := newRig(t, tracker.ModeOff)
	sender, receiver := r.endpoints(t)
	src := jni.NewDirectBuffer(6)
	copy(src.Data, "abcdef")
	if _, err := sender.WritevBuffers([]*jni.DirectBuffer{src}, []int{6}); err != nil {
		t.Fatal(err)
	}
	d1, d2 := jni.NewDirectBuffer(3), jni.NewDirectBuffer(3)
	n, err := receiver.ReadvBuffers([]*jni.DirectBuffer{d1, d2}, []int{3, 3})
	if err != nil || n != 6 {
		t.Fatalf("readv = %d, %v", n, err)
	}
	if string(d1.Data)+string(d2.Data) != "abcdef" {
		t.Fatalf("got %q%q", d1.Data, d2.Data)
	}
}

func TestWritevLengthMismatchPanics(t *testing.T) {
	r := newRig(t, tracker.ModeOff)
	sender, _ := r.endpoints(t)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	sender.WritevBuffers([]*jni.DirectBuffer{jni.NewDirectBuffer(1)}, []int{1, 2})
}

func TestReadvDoesNotBlockAcrossBuffers(t *testing.T) {
	// Only 2 bytes in flight; a scatter into two 2-byte buffers must
	// return 2 and not block waiting to fill the second buffer.
	r := newRig(t, tracker.ModeDista)
	sender, receiver := r.endpoints(t)
	if err := sender.Write(taint.FromString("xy", r.a.Source("s", "nb"))); err != nil {
		t.Fatal(err)
	}
	d1, d2 := jni.NewDirectBuffer(2), jni.NewDirectBuffer(2)
	n, err := receiver.ReadvBuffers([]*jni.DirectBuffer{d1, d2}, []int{2, 2})
	if err != nil || n != 2 {
		t.Fatalf("readv = %d, %v", n, err)
	}
	if string(d1.Data) != "xy" || !d1.Label(0).Has("nb") {
		t.Fatalf("d1 = %q %v", d1.Data, d1.Label(0))
	}
}
