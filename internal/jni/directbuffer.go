package jni

import (
	"fmt"

	"dista/internal/core/taint"
)

// DirectBuffer models the off-heap memory block a DirectByteBuffer
// manages (§III-C Type 3): NIO natives read and write it directly.
// Because real native memory is invisible to a JVM tracker, DisTA
// instruments the get/put accessors instead; our simulation keeps a
// run-based shadow label store alongside so those accessors have
// somewhere to move labels to and from.
type DirectBuffer struct {
	Data []byte
	// B is the tainted view of the buffer: B.Data aliases Data, and
	// the labels live in B's shadow store. Accessors that move labels
	// in bulk should go through B (or View) to stay O(runs).
	B taint.Bytes
}

// NewDirectBuffer allocates an off-heap buffer of n bytes with shadow
// storage.
func NewDirectBuffer(n int) *DirectBuffer {
	b := taint.MakeBytes(n)
	return &DirectBuffer{Data: b.Data, B: b}
}

// Len returns the buffer's capacity.
func (b *DirectBuffer) Len() int { return len(b.Data) }

// Label returns the taint of byte i.
func (b *DirectBuffer) Label(i int) taint.Taint { return b.B.LabelAt(i) }

// SetLabel assigns taint t to byte i.
func (b *DirectBuffer) SetLabel(i int, t taint.Taint) { b.B.SetLabel(i, t) }

// View returns the tainted view of bytes [from,to), aliasing the
// buffer's data and labels.
func (b *DirectBuffer) View(from, to int) taint.Bytes {
	b.CheckRange(from, to)
	return b.B.Slice(from, to)
}

// CheckRange panics if [from,to) is not a valid range of the buffer —
// matching the runtime bounds check of the real accessors.
func (b *DirectBuffer) CheckRange(from, to int) {
	if from < 0 || to < from || to > len(b.Data) {
		panic(fmt.Sprintf("jni: direct buffer range [%d,%d) out of [0,%d)", from, to, len(b.Data)))
	}
}
