package jni

import (
	"fmt"

	"dista/internal/core/taint"
)

// DirectBuffer models the off-heap memory block a DirectByteBuffer
// manages (§III-C Type 3): NIO natives read and write it directly.
// Because real native memory is invisible to a JVM tracker, DisTA
// instruments the get/put accessors instead; our simulation keeps a
// shadow label array alongside so those accessors have somewhere to
// move labels to and from.
type DirectBuffer struct {
	Data   []byte
	Shadow []taint.Taint
}

// NewDirectBuffer allocates an off-heap buffer of n bytes with shadow
// storage.
func NewDirectBuffer(n int) *DirectBuffer {
	return &DirectBuffer{Data: make([]byte, n), Shadow: make([]taint.Taint, n)}
}

// Len returns the buffer's capacity.
func (b *DirectBuffer) Len() int { return len(b.Data) }

// CheckRange panics if [from,to) is not a valid range of the buffer —
// matching the runtime bounds check of the real accessors.
func (b *DirectBuffer) CheckRange(from, to int) {
	if from < 0 || to < from || to > len(b.Data) {
		panic(fmt.Sprintf("jni: direct buffer range [%d,%d) out of [0,%d)", from, to, len(b.Data)))
	}
}
