package jni

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"

	"dista/internal/core/taint"
)

// ErrRange is the sentinel wrapped by every direct-buffer bounds
// failure; test with errors.Is. CheckRange returns it, View panics
// with it (see the View contract below).
var ErrRange = errors.New("jni: direct buffer range out of bounds")

// DirectBuffer models the off-heap memory block a DirectByteBuffer
// manages (§III-C Type 3): NIO natives read and write it directly.
// Because real native memory is invisible to a JVM tracker, DisTA
// instruments the get/put accessors instead; our simulation keeps a
// run-based shadow label store alongside so those accessors have
// somewhere to move labels to and from.
type DirectBuffer struct {
	Data []byte
	// B is the tainted view of the buffer: B.Data aliases Data, and
	// the labels live in B's shadow store. Accessors that move labels
	// in bulk should go through B (or View) to stay O(runs).
	B taint.Bytes
}

// NewDirectBuffer allocates an off-heap buffer of n bytes with shadow
// storage.
func NewDirectBuffer(n int) *DirectBuffer {
	b := taint.MakeBytes(n)
	return &DirectBuffer{Data: b.Data, B: b}
}

// Len returns the buffer's capacity.
func (b *DirectBuffer) Len() int { return len(b.Data) }

// Label returns the taint of byte i.
func (b *DirectBuffer) Label(i int) taint.Taint { return b.B.LabelAt(i) }

// SetLabel assigns taint t to byte i.
func (b *DirectBuffer) SetLabel(i int, t taint.Taint) { b.B.SetLabel(i, t) }

// Clean reports whether every byte of [from,to) is untainted — the
// O(1)-amortized gate that routes whole-buffer writes onto the
// passthrough path (see taint.Bytes.Clean for the memo semantics).
// The range must be valid; like View, an invalid one panics.
func (b *DirectBuffer) Clean(from, to int) bool {
	if err := b.CheckRange(from, to); err != nil {
		panic(err)
	}
	return b.B.Slice(from, to).Clean()
}

// ResetLabels clears every label, keeping the shadow store for reuse.
func (b *DirectBuffer) ResetLabels() { b.B.ResetLabels() }

// Stats aggregates the dirty structure of [from,to) for the wire
// tiering engine, scanning at most limit+1 dirty runs — see
// taint.Bytes.Stats for the memo and inexact-answer semantics. No
// allocation: the answer is computed (or recalled) on the shadow store
// in place. Like View, an invalid range panics.
func (b *DirectBuffer) Stats(from, to, limit int) (taint.RunStats, bool) {
	if err := b.CheckRange(from, to); err != nil {
		panic(err)
	}
	return b.B.Slice(from, to).Stats(limit)
}

// Uniform reports whether every byte of [from,to) carries the same
// label, returning it when so. Like View, an invalid range panics.
func (b *DirectBuffer) Uniform(from, to int) (taint.Taint, bool) {
	if err := b.CheckRange(from, to); err != nil {
		panic(err)
	}
	return b.B.Slice(from, to).Uniform()
}

// ForEachDirtyRun yields the tainted runs of [from,to) in order as
// range-relative offsets, skipping clean gaps — the allocation-free
// dirty-range extraction behind the sparse wire tier. Like View, an
// invalid range panics.
func (b *DirectBuffer) ForEachDirtyRun(from, to int, yield func(rfrom, rto int, t taint.Taint)) {
	if err := b.CheckRange(from, to); err != nil {
		panic(err)
	}
	b.B.Slice(from, to).ForEachDirtyRun(yield)
}

// View returns the tainted view of bytes [from,to), aliasing the
// buffer's data and labels.
//
// Contract: an invalid range panics with an error wrapping ErrRange —
// matching the unchecked runtime bounds failure of the real accessors,
// but typed so a recover can classify it. Callers that want an error
// instead call CheckRange first.
func (b *DirectBuffer) View(from, to int) taint.Bytes {
	if err := b.CheckRange(from, to); err != nil {
		panic(err)
	}
	return b.B.Slice(from, to)
}

// CheckRange reports whether [from,to) is a valid range of the buffer,
// returning an error wrapping ErrRange when not.
func (b *DirectBuffer) CheckRange(from, to int) error {
	if from < 0 || to < from || to > len(b.Data) {
		return fmt.Errorf("%w: [%d,%d) out of [0,%d)", ErrRange, from, to, len(b.Data))
	}
	return nil
}

// Size-classed pool of DirectBuffers: channels and wrappers acquire
// scratch buffers here instead of allocating a fresh data array and
// shadow store per instance. A pooled buffer's capacity is the class
// size, so AcquireDirectBuffer returns Len() >= n; callers address the
// [0,n) prefix they asked for.

const (
	minDirectShift = 9  // 512 B
	maxDirectShift = 20 // 1 MiB
)

var directPools [maxDirectShift - minDirectShift + 1]sync.Pool

// AcquireDirectBuffer returns a pooled buffer with Len() >= n, fully
// untainted. Release it with ReleaseDirectBuffer when no views of it
// can escape; n beyond the largest class falls back to allocation.
func AcquireDirectBuffer(n int) *DirectBuffer {
	if n > 1<<maxDirectShift {
		return NewDirectBuffer(n)
	}
	shift := minDirectShift
	if n > 1<<minDirectShift {
		shift = bits.Len(uint(n - 1))
	}
	if b, _ := directPools[shift-minDirectShift].Get().(*DirectBuffer); b != nil {
		return b
	}
	return NewDirectBuffer(1 << shift)
}

// ReleaseDirectBuffer resets the buffer's labels in O(1) and returns it
// to its size class. Off-class sizes are dropped. The caller must not
// retain the buffer or any View of it afterwards.
func ReleaseDirectBuffer(b *DirectBuffer) {
	c := len(b.Data)
	if c < 1<<minDirectShift || c > 1<<maxDirectShift || c&(c-1) != 0 {
		return
	}
	b.ResetLabels()
	directPools[bits.TrailingZeros(uint(c))-minDirectShift].Put(b)
}
