// Package jni models the bottom layer of the paper's Figure 1: the
// native methods that JRE networking classes call to hand bytes to the
// operating system (socketWrite0 -> NET_SEND, socketRead0 -> NET_READ,
// the datagram natives, and the dispatcher natives used by NIO/AIO).
// Here the "operating system" is the netsim fabric.
//
// These are the 13 primitives DisTA identifies in §III-B as the
// sufficient instrumentation surface: every JRE I/O class funnels
// through them. The instrumentation wrappers live in
// internal/instrument; this package is the *un*instrumented bottom.
package jni

import (
	"io"

	"dista/internal/netsim"
)

// SocketWrite0 writes the whole buffer to a stream connection — the
// native behind SocketOutputStream.write (Fig. 1 line 13-15).
func SocketWrite0(c *netsim.Conn, b []byte) error {
	_, err := c.Write(b)
	return err
}

// SocketRead0 performs one read into b, returning the byte count — the
// native behind SocketInputStream.read (Fig. 1 line 28-30). Returns
// io.EOF at end of stream.
func SocketRead0(c *netsim.Conn, b []byte) (int, error) {
	return c.Read(b)
}

// DatagramSend transmits one datagram — PlainDatagramSocketImpl.send.
func DatagramSend(s *netsim.UDPSocket, payload []byte, dst string) error {
	return s.SendTo(payload, dst)
}

// DatagramReceive0 blocks for one datagram — PlainDatagramSocketImpl
// .receive0. Short buffers truncate, as the real native does.
func DatagramReceive0(s *netsim.UDPSocket, buf []byte) (n int, from string, err error) {
	return s.ReceiveFrom(buf)
}

// DatagramPeekData inspects the next datagram without consuming it —
// PlainDatagramSocketImpl.peekData.
func DatagramPeekData(s *netsim.UDPSocket, buf []byte) (n int, from string, err error) {
	return s.PeekFrom(buf)
}

// DispatcherWrite0 is the FileDispatcherImpl.write0 native used by NIO
// socket channels on Linux (§III-B notes SocketDispatcherImpl extends
// FileDispatcherImpl). It may write fewer bytes than supplied.
func DispatcherWrite0(c *netsim.Conn, b []byte) (int, error) {
	return c.Write(b)
}

// DispatcherRead0 is the FileDispatcherImpl.read0 native.
func DispatcherRead0(c *netsim.Conn, b []byte) (int, error) {
	return c.Read(b)
}

// DispatcherWritev0 is the vectored write native (writev0).
func DispatcherWritev0(c *netsim.Conn, bufs [][]byte) (int64, error) {
	var total int64
	for _, b := range bufs {
		n, err := c.Write(b)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// DispatcherReadv0 is the vectored read native (readv0). It fills the
// buffers in order from a single read's worth of data.
func DispatcherReadv0(c *netsim.Conn, bufs [][]byte) (int64, error) {
	var total int64
	for i, b := range bufs {
		n, err := c.Read(b)
		total += int64(n)
		if err != nil {
			if err == io.EOF && total > 0 {
				return total, nil
			}
			return total, err
		}
		if n < len(b) || i == len(bufs)-1 {
			break
		}
	}
	return total, nil
}
