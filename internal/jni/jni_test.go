package jni

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"dista/internal/core/taint"
	"dista/internal/netsim"
)

func pipe(t *testing.T) (*netsim.Conn, *netsim.Conn) {
	t.Helper()
	n := netsim.New()
	a, b := n.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestSocketWriteReadRoundTrip(t *testing.T) {
	a, b := pipe(t)
	if err := SocketWrite0(a, []byte("native")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := SocketRead0(b, buf)
	if err != nil || string(buf[:n]) != "native" {
		t.Fatalf("read %q, %v", buf[:n], err)
	}
}

func TestSocketReadEOF(t *testing.T) {
	a, b := pipe(t)
	a.Close()
	if _, err := SocketRead0(b, make([]byte, 1)); err != io.EOF {
		t.Fatalf("err = %v", err)
	}
}

func TestDatagramNatives(t *testing.T) {
	n := netsim.New()
	sa, err := n.ListenPacket("a:1")
	if err != nil {
		t.Fatal(err)
	}
	sb, err := n.ListenPacket("b:1")
	if err != nil {
		t.Fatal(err)
	}
	if err := DatagramSend(sa, []byte("pkt"), "b:1"); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	nr, from, err := DatagramReceive0(sb, buf)
	if err != nil || string(buf[:nr]) != "pkt" || from != "a:1" {
		t.Fatalf("recv %q from %q, %v", buf[:nr], from, err)
	}
}

func TestDispatcherWritevGathersInOrder(t *testing.T) {
	a, b := pipe(t)
	bufs := [][]byte{[]byte("aa"), []byte("bb"), []byte("cc")}
	written, err := DispatcherWritev0(a, bufs)
	if err != nil || written != 6 {
		t.Fatalf("writev = %d, %v", written, err)
	}
	got := make([]byte, 6)
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "aabbcc" {
		t.Fatalf("got %q", got)
	}
}

func TestDispatcherReadvScattersInOrder(t *testing.T) {
	a, b := pipe(t)
	if err := SocketWrite0(a, []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	b1, b2, b3 := make([]byte, 3), make([]byte, 3), make([]byte, 10)
	n, err := DispatcherReadv0(b, [][]byte{b1, b2, b3})
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 || string(b1) != "012" || string(b2) != "345" || string(b3[:4]) != "6789" {
		t.Fatalf("readv n=%d %q %q %q", n, b1, b2, b3[:4])
	}
}

func TestDispatcherReadvShortData(t *testing.T) {
	a, b := pipe(t)
	if err := SocketWrite0(a, []byte("xy")); err != nil {
		t.Fatal(err)
	}
	b1, b2 := make([]byte, 4), make([]byte, 4)
	n, err := DispatcherReadv0(b, [][]byte{b1, b2})
	if err != nil || n != 2 {
		t.Fatalf("short readv = %d, %v", n, err)
	}
}

func TestDispatcherReadvEOFAfterData(t *testing.T) {
	a, b := pipe(t)
	if err := SocketWrite0(a, []byte("abcd")); err != nil {
		t.Fatal(err)
	}
	a.Close()
	b1, b2 := make([]byte, 4), make([]byte, 4)
	// First buffer fills completely; the second read hits EOF: the
	// vectored native must report the partial count, not the error.
	n, err := DispatcherReadv0(b, [][]byte{b1, b2})
	if err != nil || n != 4 {
		t.Fatalf("readv at EOF = %d, %v", n, err)
	}
	if _, err := DispatcherReadv0(b, [][]byte{b1}); err != io.EOF {
		t.Fatalf("drained readv err = %v", err)
	}
}

func TestDirectBufferRangeCheck(t *testing.T) {
	db := NewDirectBuffer(4)
	if db.Len() != 4 || !db.B.HasShadow() || db.B.Len() != 4 {
		t.Fatalf("buffer %d, shadow %v/%d", db.Len(), db.B.HasShadow(), db.B.Len())
	}
	if err := db.CheckRange(0, 4); err != nil {
		t.Fatal(err)
	}
	if err := db.CheckRange(2, 2); err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]int{{-1, 2}, {3, 2}, {0, 5}} {
		if err := db.CheckRange(r[0], r[1]); !errors.Is(err, ErrRange) {
			t.Errorf("CheckRange%v = %v, want ErrRange", r, err)
		}
		// View keeps the unchecked-accessor panic contract, but the
		// panic value must be the same typed error.
		func() {
			defer func() {
				err, _ := recover().(error)
				if !errors.Is(err, ErrRange) {
					t.Errorf("View%v panicked with %v, want ErrRange", r, err)
				}
			}()
			db.View(r[0], r[1])
		}()
	}
}

func TestDirectBufferPoolResetsLabels(t *testing.T) {
	db := AcquireDirectBuffer(600)
	if db.Len() < 600 {
		t.Fatalf("acquired %d bytes, want >= 600", db.Len())
	}
	db.SetLabel(3, taint.NewTree().NewSource("pooled", "t1"))
	if db.Clean(0, db.Len()) {
		t.Fatal("buffer with a label reads clean")
	}
	ReleaseDirectBuffer(db)
	// The pool must never hand back stale labels, whichever buffer
	// comes out next.
	again := AcquireDirectBuffer(600)
	if !again.Clean(0, again.Len()) {
		t.Fatal("pooled buffer came back with stale labels")
	}
	ReleaseDirectBuffer(again)
}

func TestSocketWriteLargePayload(t *testing.T) {
	a, b := pipe(t)
	payload := bytes.Repeat([]byte{0xAB}, 1<<20)
	done := make(chan error, 1)
	go func() {
		done <- SocketWrite0(a, payload)
	}()
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("large payload corrupted")
	}
}

func TestDirectBufferTierAccessors(t *testing.T) {
	tr := taint.NewTree()
	a, b := tr.NewSource("buf", "a"), tr.NewSource("buf", "b")
	db := NewDirectBuffer(128)
	db.B.SetRange(10, 20, a)
	db.B.SetRange(40, 44, b)

	st, exact := db.Stats(0, 128, 8)
	if !exact || st.DirtyBytes != 14 || st.DirtyRuns != 2 || !st.One.Empty() {
		t.Fatalf("Stats = %+v exact=%v", st, exact)
	}
	// A sub-range covering only one island sees it alone, rebased.
	st, _ = db.Stats(8, 24, 8)
	if st.DirtyBytes != 10 || st.DirtyRuns != 1 || st.One != a {
		t.Fatalf("ranged Stats = %+v", st)
	}
	if lbl, ok := db.Uniform(10, 20); !ok || lbl != a {
		t.Fatalf("Uniform = %v %v", lbl, ok)
	}
	if _, ok := db.Uniform(0, 128); ok {
		t.Fatal("mixed buffer reported uniform")
	}
	var got [][3]int
	db.ForEachDirtyRun(8, 128, func(rfrom, rto int, lbl taint.Taint) {
		id := 1
		if lbl == b {
			id = 2
		}
		got = append(got, [3]int{rfrom, rto, id})
	})
	want := [][3]int{{2, 12, 1}, {32, 36, 2}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("ForEachDirtyRun = %v, want %v", got, want)
	}

	defer func() {
		if r := recover(); r == nil {
			t.Fatal("bad range did not panic")
		} else if err, ok := r.(error); !ok || !errors.Is(err, ErrRange) {
			t.Fatalf("panic = %v, want ErrRange", r)
		}
	}()
	db.Stats(-1, 5, 8)
}
