package jre

import (
	"dista/internal/netsim"
)

// Future is the result handle AIO operations return
// (java.util.concurrent.Future). Get blocks until completion.
type Future struct {
	done chan struct{}
	n    int
	err  error
}

func newFuture() *Future { return &Future{done: make(chan struct{})} }

func (f *Future) complete(n int, err error) {
	f.n = n
	f.err = err
	close(f.done)
}

// Get waits for the operation and returns its byte count and error.
func (f *Future) Get() (int, error) {
	<-f.done
	return f.n, f.err
}

// AsyncSocketChannel is the AIO stream channel (java.nio.channels
// .AsynchronousSocketChannel): the same Type 3 data path as
// SocketChannel, with completion delivered through Futures — the
// implRead/implWrite instrumented methods.
type AsyncSocketChannel struct {
	ch *SocketChannel
}

// OpenAsyncSocketChannel connects to addr.
func OpenAsyncSocketChannel(env *Env, addr string) (*AsyncSocketChannel, error) {
	ch, err := OpenSocketChannel(env, addr)
	if err != nil {
		return nil, err
	}
	return &AsyncSocketChannel{ch: ch}, nil
}

// Write starts an asynchronous write of src's remaining bytes
// (implWrite).
func (a *AsyncSocketChannel) Write(src *ByteBuffer) *Future {
	f := newFuture()
	go func() {
		f.complete(a.ch.Write(src))
	}()
	return f
}

// Read starts an asynchronous read into dst (implRead).
func (a *AsyncSocketChannel) Read(dst *ByteBuffer) *Future {
	f := newFuture()
	go func() {
		f.complete(a.ch.Read(dst))
	}()
	return f
}

// Close shuts the channel down. Outstanding operations fail.
func (a *AsyncSocketChannel) Close() error { return a.ch.Close() }

// AsyncServerSocketChannel accepts AIO channels.
type AsyncServerSocketChannel struct {
	env *Env
	l   *netsim.Listener
}

// OpenAsyncServerSocketChannel binds a listening AIO channel.
func OpenAsyncServerSocketChannel(env *Env, addr string) (*AsyncServerSocketChannel, error) {
	l, err := env.Net.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &AsyncServerSocketChannel{env: env, l: l}, nil
}

// Accept blocks for the next connection. (The real API returns a
// Future; the synchronous form keeps server loops simple and loses no
// generality for the workloads.)
func (s *AsyncServerSocketChannel) Accept() (*AsyncSocketChannel, error) {
	conn, err := s.l.Accept()
	if err != nil {
		return nil, err
	}
	return &AsyncSocketChannel{ch: newSocketChannel(s.env, conn)}, nil
}

// Close stops accepting.
func (s *AsyncServerSocketChannel) Close() error { return s.l.Close() }

// CompletionHandler is the callback form of AIO results
// (java.nio.channels.CompletionHandler): exactly one of Completed or
// Failed runs when the operation finishes.
type CompletionHandler interface {
	Completed(n int)
	Failed(err error)
}

// CompletionFunc adapts two funcs to CompletionHandler.
type CompletionFunc struct {
	OnCompleted func(n int)
	OnFailed    func(err error)
}

var _ CompletionHandler = CompletionFunc{}

// Completed implements CompletionHandler.
func (c CompletionFunc) Completed(n int) {
	if c.OnCompleted != nil {
		c.OnCompleted(n)
	}
}

// Failed implements CompletionHandler.
func (c CompletionFunc) Failed(err error) {
	if c.OnFailed != nil {
		c.OnFailed(err)
	}
}

// dispatch invokes the handler when the future resolves.
func dispatch(f *Future, h CompletionHandler) {
	go func() {
		n, err := f.Get()
		if err != nil {
			h.Failed(err)
			return
		}
		h.Completed(n)
	}()
}

// WriteWithHandler starts an asynchronous write and delivers the result
// through the completion handler.
func (a *AsyncSocketChannel) WriteWithHandler(src *ByteBuffer, h CompletionHandler) {
	dispatch(a.Write(src), h)
}

// ReadWithHandler starts an asynchronous read and delivers the result
// through the completion handler.
func (a *AsyncSocketChannel) ReadWithHandler(dst *ByteBuffer, h CompletionHandler) {
	dispatch(a.Read(dst), h)
}
