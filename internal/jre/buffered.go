package jre

import (
	"dista/internal/core/taint"
)

// defaultBufferSize matches the JRE's 8 KiB buffered-stream default.
const defaultBufferSize = 8192

// BufferedOutputStream batches small writes into larger ones
// (java.io.BufferedOutputStream).
type BufferedOutputStream struct {
	out OutputStream
	buf taint.Bytes
	n   int
}

var _ OutputStream = (*BufferedOutputStream)(nil)

// NewBufferedOutputStream wraps out with the default buffer size.
func NewBufferedOutputStream(out OutputStream) *BufferedOutputStream {
	return NewBufferedOutputStreamSize(out, defaultBufferSize)
}

// NewBufferedOutputStreamSize wraps out with an explicit buffer size.
func NewBufferedOutputStreamSize(out OutputStream, size int) *BufferedOutputStream {
	return &BufferedOutputStream{out: out, buf: taint.MakeBytes(size)}
}

// Write buffers b, flushing as the buffer fills.
func (w *BufferedOutputStream) Write(b taint.Bytes) error {
	for b.Len() > 0 {
		if w.n == len(w.buf.Data) {
			if err := w.Flush(); err != nil {
				return err
			}
		}
		chunk := b
		if space := len(w.buf.Data) - w.n; chunk.Len() > space {
			chunk = b.Slice(0, space)
		}
		chunk.CopyInto(&w.buf, w.n)
		w.n += chunk.Len()
		b = b.Slice(chunk.Len(), b.Len())
	}
	return nil
}

// WriteTaintedByte buffers one byte with its taint.
func (w *BufferedOutputStream) WriteTaintedByte(b byte, t taint.Taint) error {
	one := taint.WrapBytes([]byte{b})
	one.SetLabel(0, t)
	return w.Write(one)
}

// Flush pushes buffered bytes to the underlying stream.
func (w *BufferedOutputStream) Flush() error {
	if w.n == 0 {
		return w.out.Flush()
	}
	chunk := w.buf.Slice(0, w.n)
	w.n = 0
	if err := w.out.Write(chunk); err != nil {
		return err
	}
	return w.out.Flush()
}

// BufferedInputStream batches reads from the underlying stream
// (java.io.BufferedInputStream).
type BufferedInputStream struct {
	in       InputStream
	buf      taint.Bytes
	from, to int
	err      error
}

var _ InputStream = (*BufferedInputStream)(nil)

// NewBufferedInputStream wraps in with the default buffer size.
func NewBufferedInputStream(in InputStream) *BufferedInputStream {
	return NewBufferedInputStreamSize(in, defaultBufferSize)
}

// NewBufferedInputStreamSize wraps in with an explicit buffer size.
func NewBufferedInputStreamSize(in InputStream, size int) *BufferedInputStream {
	return &BufferedInputStream{in: in, buf: taint.MakeBytes(size)}
}

// Read returns buffered bytes, refilling from the underlying stream when
// empty.
func (r *BufferedInputStream) Read(buf *taint.Bytes) (int, error) {
	if r.from == r.to {
		if r.err != nil {
			return 0, r.err
		}
		whole := r.buf.Slice(0, r.buf.Len())
		n, err := r.in.Read(&whole)
		r.from, r.to, r.err = 0, n, err
		if n == 0 {
			return 0, err
		}
	}
	chunk := r.buf.Slice(r.from, r.to)
	if chunk.Len() > buf.Len() {
		chunk = chunk.Slice(0, buf.Len())
	}
	n := chunk.CopyInto(buf, 0)
	r.from += n
	return n, nil
}
