package jre

import (
	"io"

	"dista/internal/core/taint"
)

// ByteArrayOutputStream collects writes into memory
// (java.io.ByteArrayOutputStream), keeping labels.
type ByteArrayOutputStream struct {
	buf taint.Bytes
}

var _ OutputStream = (*ByteArrayOutputStream)(nil)

// NewByteArrayOutputStream returns an empty in-memory stream.
func NewByteArrayOutputStream() *ByteArrayOutputStream {
	return &ByteArrayOutputStream{}
}

// Write appends b.
func (s *ByteArrayOutputStream) Write(b taint.Bytes) error {
	s.buf = s.buf.Append(b.Clone())
	return nil
}

// Flush is a no-op.
func (s *ByteArrayOutputStream) Flush() error { return nil }

// Bytes returns the accumulated content (shared storage).
func (s *ByteArrayOutputStream) Bytes() taint.Bytes { return s.buf }

// Len returns the accumulated length.
func (s *ByteArrayOutputStream) Len() int { return s.buf.Len() }

// ByteArrayInputStream reads from an in-memory tainted buffer
// (java.io.ByteArrayInputStream).
type ByteArrayInputStream struct {
	buf taint.Bytes
	off int
}

var _ InputStream = (*ByteArrayInputStream)(nil)

// NewByteArrayInputStream wraps b for reading.
func NewByteArrayInputStream(b taint.Bytes) *ByteArrayInputStream {
	return &ByteArrayInputStream{buf: b}
}

// Read copies the next bytes of the buffer, or io.EOF when drained.
func (s *ByteArrayInputStream) Read(buf *taint.Bytes) (int, error) {
	if s.off >= s.buf.Len() {
		return 0, io.EOF
	}
	chunk := s.buf.Slice(s.off, s.buf.Len())
	if chunk.Len() > buf.Len() {
		chunk = chunk.Slice(0, buf.Len())
	}
	n := chunk.CopyInto(buf, 0)
	s.off += n
	return n, nil
}

// MarshalObject serializes obj into tainted bytes via the object stream.
func MarshalObject(obj Serializable) (taint.Bytes, error) {
	out := NewByteArrayOutputStream()
	if err := NewObjectOutputStream(out).WriteObject(obj); err != nil {
		return taint.Bytes{}, err
	}
	return out.Bytes(), nil
}

// UnmarshalObject deserializes obj from tainted bytes.
func UnmarshalObject(b taint.Bytes, obj Serializable) error {
	return NewObjectInputStream(NewByteArrayInputStream(b)).ReadObject(obj)
}
