package jre

import (
	"fmt"

	"dista/internal/core/taint"
	"dista/internal/jni"
)

// ByteBuffer is the heap NIO buffer (java.nio.ByteBuffer) with position
// and limit cursors. Labels travel with the bytes through every
// operation when shadow storage exists.
type ByteBuffer struct {
	buf taint.Bytes
	pos int
	lim int
}

// AllocateBuffer returns a heap buffer of the given capacity, cleared
// (position 0, limit = capacity).
func AllocateBuffer(capacity int) *ByteBuffer {
	return &ByteBuffer{buf: taint.MakeBytes(capacity), lim: capacity}
}

// WrapBuffer wraps existing bytes as a buffer ready for reading
// (position 0, limit = length).
func WrapBuffer(b taint.Bytes) *ByteBuffer {
	return &ByteBuffer{buf: b, lim: b.Len()}
}

// Capacity returns the buffer's total size.
func (b *ByteBuffer) Capacity() int { return b.buf.Len() }

// Position returns the cursor.
func (b *ByteBuffer) Position() int { return b.pos }

// Limit returns the limit.
func (b *ByteBuffer) Limit() int { return b.lim }

// Remaining returns limit - position.
func (b *ByteBuffer) Remaining() int { return b.lim - b.pos }

// HasRemaining reports whether any bytes remain.
func (b *ByteBuffer) HasRemaining() bool { return b.Remaining() > 0 }

// Flip switches from filling to draining: limit = position, position = 0.
func (b *ByteBuffer) Flip() *ByteBuffer {
	b.lim = b.pos
	b.pos = 0
	return b
}

// Clear resets for filling: position 0, limit = capacity.
func (b *ByteBuffer) Clear() *ByteBuffer {
	b.pos = 0
	b.lim = b.buf.Len()
	return b
}

// Rewind resets the position, keeping the limit.
func (b *ByteBuffer) Rewind() *ByteBuffer {
	b.pos = 0
	return b
}

// Compact moves unread bytes to the front and prepares for filling.
func (b *ByteBuffer) Compact() *ByteBuffer {
	rest := b.buf.Slice(b.pos, b.lim)
	n := rest.CopyInto(&b.buf, 0)
	b.pos = n
	b.lim = b.buf.Len()
	return b
}

// Put copies src into the buffer at the position, advancing it.
func (b *ByteBuffer) Put(src taint.Bytes) error {
	if src.Len() > b.Remaining() {
		return fmt.Errorf("jre: buffer overflow: put %d into %d remaining", src.Len(), b.Remaining())
	}
	src.CopyInto(&b.buf, b.pos)
	b.pos += src.Len()
	return nil
}

// Get copies up to n bytes out of the buffer, advancing the position.
func (b *ByteBuffer) Get(n int) taint.Bytes {
	if n > b.Remaining() {
		n = b.Remaining()
	}
	out := b.buf.Slice(b.pos, b.pos+n).Clone()
	b.pos += n
	return out
}

// window exposes the active region [pos, lim) for channel I/O.
func (b *ByteBuffer) window() taint.Bytes { return b.buf.Slice(b.pos, b.lim) }

// advance moves the position after channel I/O consumed/produced n.
func (b *ByteBuffer) advance(n int) { b.pos += n }

// DirectByteBuffer is the off-heap NIO buffer whose get/put accessors
// are instrumented (Table I rows DirectByteBuffer.get/put): they move
// labels between heap shadow arrays and the native block's shadow, so
// taints survive the trip through native memory.
type DirectByteBuffer struct {
	env *Env
	nat *jni.DirectBuffer
	pos int
	lim int
}

// AllocateDirectBuffer allocates an off-heap buffer
// (ByteBuffer.allocateDirect).
func AllocateDirectBuffer(env *Env, capacity int) *DirectByteBuffer {
	return &DirectByteBuffer{env: env, nat: jni.NewDirectBuffer(capacity), lim: capacity}
}

// acquireDirect returns a staging buffer backed by the jni direct-buffer
// pool, with Capacity() >= n (the pool rounds up to its size class).
// Pair with releaseDirect once no view of the native block can escape.
func acquireDirect(env *Env, n int) *DirectByteBuffer {
	nat := jni.AcquireDirectBuffer(n)
	return &DirectByteBuffer{env: env, nat: nat, lim: nat.Len()}
}

// releaseDirect returns the staging buffer's native block (and its
// shadow store) to the pool.
func releaseDirect(b *DirectByteBuffer) {
	jni.ReleaseDirectBuffer(b.nat)
	b.nat = nil
}

// Capacity returns the buffer's total size.
func (b *DirectByteBuffer) Capacity() int { return b.nat.Len() }

// Position returns the cursor.
func (b *DirectByteBuffer) Position() int { return b.pos }

// Remaining returns limit - position.
func (b *DirectByteBuffer) Remaining() int { return b.lim - b.pos }

// Flip switches from filling to draining.
func (b *DirectByteBuffer) Flip() *DirectByteBuffer {
	b.lim = b.pos
	b.pos = 0
	return b
}

// Clear resets for filling.
func (b *DirectByteBuffer) Clear() *DirectByteBuffer {
	b.pos = 0
	b.lim = b.nat.Len()
	return b
}

// Put is the instrumented put accessor: data bytes always move; labels
// move into the native shadow only when the agent tracks.
func (b *DirectByteBuffer) Put(src taint.Bytes) error {
	if src.Len() > b.Remaining() {
		return fmt.Errorf("jre: direct buffer overflow: put %d into %d remaining", src.Len(), b.Remaining())
	}
	copy(b.nat.Data[b.pos:], src.Data)
	if b.env.Tracking() {
		src.CopyLabelsInto(&b.nat.B, b.pos)
	}
	b.pos += src.Len()
	return nil
}

// Get is the instrumented get accessor, copying data and (when
// tracking) labels out of native memory.
func (b *DirectByteBuffer) Get(n int) taint.Bytes {
	if n > b.Remaining() {
		n = b.Remaining()
	}
	var out taint.Bytes
	if b.env.Tracking() {
		out = b.nat.View(b.pos, b.pos+n).Clone()
	} else {
		out = taint.WrapBytes(append([]byte(nil), b.nat.Data[b.pos:b.pos+n]...))
	}
	b.pos += n
	return out
}

// native exposes the underlying block for dispatcher I/O.
func (b *DirectByteBuffer) native() *jni.DirectBuffer { return b.nat }
