package jre

import (
	"bytes"
	"testing"
	"testing/quick"

	"dista/internal/core/taint"
	"dista/internal/core/tracker"
	"dista/internal/netsim"
	"dista/internal/taintmap"
)

// Property tests on the NIO buffer cursor algebra.

func TestQuickByteBufferPutGetRoundTrip(t *testing.T) {
	f := func(chunks [][]byte) bool {
		total := 0
		for _, c := range chunks {
			total += len(c)
		}
		if total > 1<<16 {
			return true
		}
		buf := AllocateBuffer(total)
		var want []byte
		for _, c := range chunks {
			if err := buf.Put(taint.WrapBytes(c)); err != nil {
				return false
			}
			want = append(want, c...)
		}
		buf.Flip()
		got := buf.Get(total)
		return bytes.Equal(got.Data, want) && buf.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickByteBufferCompactPreservesUnread(t *testing.T) {
	f := func(data []byte, readN uint8) bool {
		if len(data) == 0 || len(data) > 4096 {
			return true
		}
		buf := AllocateBuffer(len(data) + 16)
		if err := buf.Put(taint.WrapBytes(data)); err != nil {
			return false
		}
		buf.Flip()
		n := int(readN) % (len(data) + 1)
		buf.Get(n)
		buf.Compact()
		// After compact, position == unread count and the unread bytes
		// are at the front.
		if buf.Position() != len(data)-n {
			return false
		}
		buf.Flip()
		rest := buf.Get(len(data) - n)
		return bytes.Equal(rest.Data, data[n:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDirectBufferPreservesLabelsWhenTracking(t *testing.T) {
	net := netsim.New()
	store := taintmap.NewStore()
	a := tracker.New("q", tracker.ModeDista)
	a = tracker.New("q", tracker.ModeDista, tracker.WithTaintMap(taintmap.NewLocalClient(store, a.Tree())))
	env := NewEnv(net, a)
	tag := a.Tree().NewSource("q", "q:1")

	f := func(data []byte, taintEvery uint8) bool {
		if len(data) == 0 || len(data) > 4096 {
			return true
		}
		step := int(taintEvery)%7 + 1
		src := taint.WrapBytes(append([]byte(nil), data...))
		for i := 0; i < len(data); i += step {
			src.SetLabel(i, tag)
		}
		db := AllocateDirectBuffer(env, len(data))
		if err := db.Put(src); err != nil {
			return false
		}
		db.Flip()
		got := db.Get(len(data))
		if !bytes.Equal(got.Data, data) {
			return false
		}
		for i := range data {
			want := i%step == 0
			if got.LabelAt(i).Has("q") != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
