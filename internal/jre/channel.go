package jre

import (
	"dista/internal/instrument"
	"dista/internal/netsim"
)

// SocketChannel is the NIO stream channel (java.nio.channels
// .SocketChannel). Its read/write path reproduces the real stack: heap
// ByteBuffer contents move through a direct buffer (IOUtil
// .writeFromNativeBuffer / readIntoNativeBuffer) and then through the
// dispatcher natives — all Type 3 instrumented methods.
type SocketChannel struct {
	env *Env
	ep  *instrument.Endpoint
	// Separate native staging buffers for each direction: a channel
	// supports one concurrent reader and one concurrent writer, so the
	// two paths must not share scratch memory.
	wscratch *DirectByteBuffer
	rscratch *DirectByteBuffer
}

func newSocketChannel(env *Env, conn *netsim.Conn) *SocketChannel {
	return &SocketChannel{
		env:      env,
		ep:       instrument.NewEndpoint(env.Agent, conn),
		wscratch: acquireDirect(env, defaultBufferSize),
		rscratch: acquireDirect(env, defaultBufferSize),
	}
}

// OpenSocketChannel connects to addr (SocketChannel.open + connect).
func OpenSocketChannel(env *Env, addr string) (*SocketChannel, error) {
	conn, err := env.Net.Dial(addr)
	if err != nil {
		return nil, err
	}
	return newSocketChannel(env, conn), nil
}

// ensureScratch grows a staging buffer to hold n bytes, recycling the
// outgrown one through the direct-buffer pool.
func (c *SocketChannel) ensureScratch(buf **DirectByteBuffer, n int) {
	if (*buf).Capacity() < n {
		releaseDirect(*buf)
		*buf = acquireDirect(c.env, n)
	}
}

// Write drains src's remaining bytes into the channel, returning the
// count (SocketChannel.write).
func (c *SocketChannel) Write(src *ByteBuffer) (int, error) {
	n := src.Remaining()
	if n == 0 {
		return 0, nil
	}
	c.ensureScratch(&c.wscratch, n)
	c.wscratch.Clear()
	// IOUtil.writeFromNativeBuffer: heap -> native (instrumented put),
	// then dispatcher write0 over the native block.
	if err := c.wscratch.Put(src.window()); err != nil {
		return 0, err
	}
	written, err := c.ep.WriteBuffer(c.wscratch.native(), 0, n)
	if err != nil {
		return 0, err
	}
	src.advance(written)
	return written, nil
}

// Read fills dst with one read's worth of bytes, returning the count or
// io.EOF (SocketChannel.read).
func (c *SocketChannel) Read(dst *ByteBuffer) (int, error) {
	want := dst.Remaining()
	if want == 0 {
		return 0, nil
	}
	c.ensureScratch(&c.rscratch, want)
	// Dispatcher read0 into native memory, then
	// IOUtil.readIntoNativeBuffer's heap copy via the instrumented get.
	n, err := c.ep.ReadBuffer(c.rscratch.native(), 0, want)
	if err != nil {
		return 0, err
	}
	c.rscratch.Clear()
	got := c.rscratch.Get(n)
	if err := dst.Put(got); err != nil {
		return 0, err
	}
	return n, nil
}

// Close shuts the channel down.
func (c *SocketChannel) Close() error { return c.ep.Conn().Close() }

// RemoteAddr returns the peer address.
func (c *SocketChannel) RemoteAddr() string { return c.ep.Conn().RemoteAddr() }

// ServerSocketChannel accepts NIO stream channels.
type ServerSocketChannel struct {
	env *Env
	l   *netsim.Listener
}

// OpenServerSocketChannel binds a listening channel.
func OpenServerSocketChannel(env *Env, addr string) (*ServerSocketChannel, error) {
	l, err := env.Net.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &ServerSocketChannel{env: env, l: l}, nil
}

// Accept blocks for the next connection.
func (s *ServerSocketChannel) Accept() (*SocketChannel, error) {
	conn, err := s.l.Accept()
	if err != nil {
		return nil, err
	}
	return newSocketChannel(s.env, conn), nil
}

// Addr returns the bound address.
func (s *ServerSocketChannel) Addr() string { return s.l.Addr() }

// Close stops accepting.
func (s *ServerSocketChannel) Close() error { return s.l.Close() }

// DatagramChannel is the NIO datagram channel
// (java.nio.channels.DatagramChannel): ByteBuffer API over the packet
// wrappers.
type DatagramChannel struct {
	env  *Env
	sock *netsim.UDPSocket
}

// OpenDatagramChannel binds a datagram channel.
func OpenDatagramChannel(env *Env, addr string) (*DatagramChannel, error) {
	sock, err := env.Net.ListenPacket(addr)
	if err != nil {
		return nil, err
	}
	return &DatagramChannel{env: env, sock: sock}, nil
}

// Send transmits src's remaining bytes as one datagram
// (DatagramChannel.send).
func (c *DatagramChannel) Send(src *ByteBuffer, dst string) (int, error) {
	payload := src.window()
	if err := instrument.PacketSend(c.env.Agent, c.sock, payload, dst); err != nil {
		return 0, err
	}
	n := payload.Len()
	src.advance(n)
	return n, nil
}

// Receive blocks for a datagram into dst, returning the source address
// (DatagramChannel.receive).
func (c *DatagramChannel) Receive(dst *ByteBuffer) (string, error) {
	win := dst.window()
	n, from, err := instrument.PacketReceive(c.env.Agent, c.sock, &win)
	if err != nil {
		return "", err
	}
	// PacketReceive may materialize labels on the window; re-put so the
	// parent buffer adopts them.
	filled := win.Slice(0, n)
	if err := dst.Put(filled); err != nil {
		return "", err
	}
	return from, nil
}

// Addr returns the bound address.
func (c *DatagramChannel) Addr() string { return c.sock.Addr() }

// Close releases the channel.
func (c *DatagramChannel) Close() error { return c.sock.Close() }
