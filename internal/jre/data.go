package jre

import (
	"encoding/binary"
	"fmt"
	"math"

	"dista/internal/core/taint"
)

// DataOutputStream writes typed primitives whose encoded bytes all carry
// the value's taint (java.io.DataOutputStream, byte-level granularity).
type DataOutputStream struct {
	out OutputStream
}

var _ OutputStream = (*DataOutputStream)(nil)

// NewDataOutputStream wraps out.
func NewDataOutputStream(out OutputStream) *DataOutputStream {
	return &DataOutputStream{out: out}
}

// Write passes raw bytes through.
func (w *DataOutputStream) Write(b taint.Bytes) error { return w.out.Write(b) }

// Flush flushes the underlying stream.
func (w *DataOutputStream) Flush() error { return w.out.Flush() }

// writeTainted sends raw with every byte labelled t.
func (w *DataOutputStream) writeTainted(raw []byte, t taint.Taint) error {
	b := taint.WrapBytes(raw)
	b.TaintAll(t) // no-op (and no allocation) for the empty taint
	return w.out.Write(b)
}

// WriteByteValue writes one byte carrying taint t.
func (w *DataOutputStream) WriteByteValue(v byte, t taint.Taint) error {
	return w.writeTainted([]byte{v}, t)
}

// WriteBool writes a boolean as one byte.
func (w *DataOutputStream) WriteBool(v bool, t taint.Taint) error {
	b := byte(0)
	if v {
		b = 1
	}
	return w.writeTainted([]byte{b}, t)
}

// WriteInt16 writes a big-endian 16-bit integer.
func (w *DataOutputStream) WriteInt16(v int16, t taint.Taint) error {
	return w.writeTainted(binary.BigEndian.AppendUint16(nil, uint16(v)), t)
}

// WriteInt32 writes a big-endian tainted 32-bit integer.
func (w *DataOutputStream) WriteInt32(v taint.Int32) error {
	return w.writeTainted(binary.BigEndian.AppendUint32(nil, uint32(v.Value)), v.Label)
}

// WriteInt64 writes a big-endian tainted 64-bit integer.
func (w *DataOutputStream) WriteInt64(v taint.Int64) error {
	return w.writeTainted(binary.BigEndian.AppendUint64(nil, uint64(v.Value)), v.Label)
}

// WriteFloat64 writes an IEEE-754 double.
func (w *DataOutputStream) WriteFloat64(v float64, t taint.Taint) error {
	bits := binary.BigEndian.AppendUint64(nil, floatBits(v))
	return w.writeTainted(bits, t)
}

// WriteUTF writes a length-prefixed tainted string (DataOutput.writeUTF:
// uint16 length, then the bytes). The length prefix is metadata and
// stays untainted; the text bytes carry the string's taint.
func (w *DataOutputStream) WriteUTF(s taint.String) error {
	if len(s.Value) > 0xFFFF {
		return fmt.Errorf("jre: writeUTF string of %d bytes exceeds 65535", len(s.Value))
	}
	if err := w.writeTainted(binary.BigEndian.AppendUint16(nil, uint16(len(s.Value))), taint.Taint{}); err != nil {
		return err
	}
	return w.out.Write(s.Bytes())
}

// WriteString32 writes a string with a 32-bit length prefix, for large
// texts (the long-text workloads of Table III).
func (w *DataOutputStream) WriteString32(s taint.String) error {
	if err := w.writeTainted(binary.BigEndian.AppendUint32(nil, uint32(len(s.Value))), taint.Taint{}); err != nil {
		return err
	}
	return w.out.Write(s.Bytes())
}

// WriteBytes32 writes length-prefixed raw tainted bytes.
func (w *DataOutputStream) WriteBytes32(b taint.Bytes) error {
	if err := w.writeTainted(binary.BigEndian.AppendUint32(nil, uint32(b.Len())), taint.Taint{}); err != nil {
		return err
	}
	return w.out.Write(b)
}

// WriteInt32Array writes a length-prefixed array of 32-bit integers, all
// elements carrying taint t (the "large int array" micro workload).
func (w *DataOutputStream) WriteInt32Array(vals []int32, t taint.Taint) error {
	if err := w.writeTainted(binary.BigEndian.AppendUint32(nil, uint32(len(vals))), taint.Taint{}); err != nil {
		return err
	}
	raw := make([]byte, 0, 4*len(vals))
	for _, v := range vals {
		raw = binary.BigEndian.AppendUint32(raw, uint32(v))
	}
	return w.writeTainted(raw, t)
}

// DataInputStream reads typed primitives with their taints
// (java.io.DataInputStream).
type DataInputStream struct {
	in InputStream
}

var _ InputStream = (*DataInputStream)(nil)

// NewDataInputStream wraps in.
func NewDataInputStream(in InputStream) *DataInputStream {
	return &DataInputStream{in: in}
}

// Read passes raw reads through.
func (r *DataInputStream) Read(buf *taint.Bytes) (int, error) { return r.in.Read(buf) }

// readN reads exactly n bytes with labels.
func (r *DataInputStream) readN(n int) (taint.Bytes, error) {
	buf := taint.MakeBytes(n)
	if err := ReadFull(r.in, &buf); err != nil {
		return taint.Bytes{}, err
	}
	return buf, nil
}

// ReadByteValue reads one byte with its taint.
func (r *DataInputStream) ReadByteValue() (byte, taint.Taint, error) {
	b, err := r.readN(1)
	if err != nil {
		return 0, taint.Taint{}, err
	}
	return b.Data[0], b.LabelAt(0), nil
}

// ReadBool reads a boolean with its taint.
func (r *DataInputStream) ReadBool() (bool, taint.Taint, error) {
	v, t, err := r.ReadByteValue()
	return v != 0, t, err
}

// ReadInt16 reads a big-endian 16-bit integer.
func (r *DataInputStream) ReadInt16() (int16, taint.Taint, error) {
	b, err := r.readN(2)
	if err != nil {
		return 0, taint.Taint{}, err
	}
	return int16(binary.BigEndian.Uint16(b.Data)), b.Union(), nil
}

// ReadInt32 reads a tainted 32-bit integer; the value's taint is the
// union of its byte labels.
func (r *DataInputStream) ReadInt32() (taint.Int32, error) {
	b, err := r.readN(4)
	if err != nil {
		return taint.Int32{}, err
	}
	return taint.Int32{Value: int32(binary.BigEndian.Uint32(b.Data)), Label: b.Union()}, nil
}

// ReadInt64 reads a tainted 64-bit integer.
func (r *DataInputStream) ReadInt64() (taint.Int64, error) {
	b, err := r.readN(8)
	if err != nil {
		return taint.Int64{}, err
	}
	return taint.Int64{Value: int64(binary.BigEndian.Uint64(b.Data)), Label: b.Union()}, nil
}

// ReadFloat64 reads an IEEE-754 double with its taint.
func (r *DataInputStream) ReadFloat64() (float64, taint.Taint, error) {
	b, err := r.readN(8)
	if err != nil {
		return 0, taint.Taint{}, err
	}
	return floatFromBits(binary.BigEndian.Uint64(b.Data)), b.Union(), nil
}

// ReadUTF reads a writeUTF-encoded tainted string.
func (r *DataInputStream) ReadUTF() (taint.String, error) {
	hdr, err := r.readN(2)
	if err != nil {
		return taint.String{}, err
	}
	body, err := r.readN(int(binary.BigEndian.Uint16(hdr.Data)))
	if err != nil {
		return taint.String{}, err
	}
	return taint.StringOf(body), nil
}

// ReadString32 reads a WriteString32-encoded tainted string.
func (r *DataInputStream) ReadString32() (taint.String, error) {
	hdr, err := r.readN(4)
	if err != nil {
		return taint.String{}, err
	}
	body, err := r.readN(int(binary.BigEndian.Uint32(hdr.Data)))
	if err != nil {
		return taint.String{}, err
	}
	return taint.StringOf(body), nil
}

// ReadBytes32 reads WriteBytes32-encoded tainted bytes.
func (r *DataInputStream) ReadBytes32() (taint.Bytes, error) {
	hdr, err := r.readN(4)
	if err != nil {
		return taint.Bytes{}, err
	}
	return r.readN(int(binary.BigEndian.Uint32(hdr.Data)))
}

// ReadInt32Array reads a WriteInt32Array-encoded array; the returned
// taint is the union over all element bytes.
func (r *DataInputStream) ReadInt32Array() ([]int32, taint.Taint, error) {
	hdr, err := r.readN(4)
	if err != nil {
		return nil, taint.Taint{}, err
	}
	n := int(binary.BigEndian.Uint32(hdr.Data))
	body, err := r.readN(4 * n)
	if err != nil {
		return nil, taint.Taint{}, err
	}
	vals := make([]int32, n)
	for i := range vals {
		vals[i] = int32(binary.BigEndian.Uint32(body.Data[4*i:]))
	}
	return vals, body.Union(), nil
}

func floatBits(v float64) uint64 { return math.Float64bits(v) }

func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
