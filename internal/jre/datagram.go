package jre

import (
	"dista/internal/core/taint"
	"dista/internal/instrument"
	"dista/internal/netsim"
)

// DatagramPacket mirrors java.net.DatagramPacket as instrumented in the
// paper's Figure 7: the data byte array plus the added per-byte taints
// field (here both inside taint.Bytes), the payload length, and the
// peer address.
type DatagramPacket struct {
	Buf  taint.Bytes // data + taints fields of Fig. 7
	N    int         // valid payload length within Buf
	Addr string      // destination (send) or source (receive)
}

// NewDatagramPacket builds an outgoing packet carrying data.
func NewDatagramPacket(data taint.Bytes, addr string) *DatagramPacket {
	return &DatagramPacket{Buf: data, N: data.Len(), Addr: addr}
}

// NewReceivePacket builds an empty packet able to hold n payload bytes.
func NewReceivePacket(n int) *DatagramPacket {
	return &DatagramPacket{Buf: taint.MakeBytes(n)}
}

// Payload returns the valid portion of the packet's data.
func (p *DatagramPacket) Payload() taint.Bytes { return p.Buf.Slice(0, p.N) }

// DatagramSocket is the UDP socket class (java.net.DatagramSocket),
// whose send/receive0 natives are the Type 2 instrumented methods.
type DatagramSocket struct {
	env  *Env
	sock *netsim.UDPSocket
}

// OpenDatagramSocket binds a datagram socket.
func OpenDatagramSocket(env *Env, addr string) (*DatagramSocket, error) {
	sock, err := env.Net.ListenPacket(addr)
	if err != nil {
		return nil, err
	}
	return &DatagramSocket{env: env, sock: sock}, nil
}

// Send transmits the packet through the instrumented send wrapper. The
// caller's packet is never mutated (§III-C Type 2).
func (s *DatagramSocket) Send(p *DatagramPacket) error {
	return instrument.PacketSend(s.env.Agent, s.sock, p.Payload(), p.Addr)
}

// Receive blocks for a datagram, filling p's buffer, length and source
// address through the instrumented receive0 wrapper.
func (s *DatagramSocket) Receive(p *DatagramPacket) error {
	n, from, err := instrument.PacketReceive(s.env.Agent, s.sock, &p.Buf)
	if err != nil {
		return err
	}
	p.N = n
	p.Addr = from
	return nil
}

// Peek fills p from the next datagram without consuming it
// (the peekData path of Table I).
func (s *DatagramSocket) Peek(p *DatagramPacket) error {
	n, from, err := instrument.PacketPeek(s.env.Agent, s.sock, &p.Buf)
	if err != nil {
		return err
	}
	p.N = n
	p.Addr = from
	return nil
}

// Addr returns the bound address.
func (s *DatagramSocket) Addr() string { return s.sock.Addr() }

// Close releases the socket.
func (s *DatagramSocket) Close() error { return s.sock.Close() }
