// Package jre is the simulated Java-runtime networking surface the five
// mini distributed systems and the 30-case micro benchmark are written
// against (DESIGN.md §1). It mirrors the class structure the paper's
// Figure 1 walks through: Socket/ServerSocket with stream classes on
// top (plain, buffered, data, object), DatagramSocket/DatagramPacket,
// and the NIO/AIO channel and buffer classes — all of which bottom out
// in the instrumented JNI wrappers of internal/instrument.
package jre

import (
	"dista/internal/core/tracker"
	"dista/internal/netsim"
)

// Env is one simulated JVM process: the node's network attachment plus
// its DisTA agent (the runtime the -javaagent flag would install).
// Every jre object is created within an Env.
type Env struct {
	Net   *netsim.Network
	Agent *tracker.Agent
}

// NewEnv bundles a network and an agent into a process environment.
func NewEnv(net *netsim.Network, agent *tracker.Agent) *Env {
	return &Env{Net: net, Agent: agent}
}

// Tracking reports whether this process performs shadow operations.
func (e *Env) Tracking() bool { return e.Agent.Tracking() }
