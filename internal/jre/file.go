package jre

import (
	"os"

	"dista/internal/core/taint"
)

// ReadFileTainted reads a whole file and taints its bytes through the
// agent's source point desc (SIM scenarios: "we uniformly set file
// reading methods as source points", §V-B). Each invocation generates a
// fresh sequence tag (tagPrefix1, tagPrefix2, …), matching the three
// distinct taints of the Fig. 11 transaction-log example.
func ReadFileTainted(env *Env, path, desc, tagPrefix string) (taint.Bytes, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return taint.Bytes{}, err
	}
	b := taint.WrapBytes(raw)
	if t := env.Agent.SourceSeq(desc, tagPrefix); !t.Empty() {
		b.TaintAll(t)
	}
	return b, nil
}
