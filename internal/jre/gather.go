package jre

import (
	"dista/internal/jni"
)

// Gathering/scattering channel I/O (SocketChannel.write(ByteBuffer[])
// and read(ByteBuffer[])): the callers of the writev0/readv0 dispatcher
// natives of Table I.

// GatheringWrite drains the remaining bytes of every source buffer in
// order through one vectored native call, returning the total count.
func (c *SocketChannel) GatheringWrite(srcs []*ByteBuffer) (int64, error) {
	natives := make([]*jni.DirectBuffer, 0, len(srcs))
	lens := make([]int, 0, len(srcs))
	stagings := make([]*DirectByteBuffer, 0, len(srcs))
	// The vectored native copies synchronously, so the pooled staging
	// blocks can go back the moment the call returns.
	defer func() {
		for _, s := range stagings {
			releaseDirect(s)
		}
	}()
	for _, src := range srcs {
		n := src.Remaining()
		if n == 0 {
			continue
		}
		staging := acquireDirect(c.env, n)
		stagings = append(stagings, staging)
		if err := staging.Put(src.window()); err != nil {
			return 0, err
		}
		natives = append(natives, staging.native())
		lens = append(lens, n)
	}
	if len(natives) == 0 {
		return 0, nil
	}
	written, err := c.ep.WritevBuffers(natives, lens)
	if err != nil {
		return 0, err
	}
	// All-or-nothing consumption per buffer: advance in order.
	left := written
	for _, src := range srcs {
		n := int64(src.Remaining())
		if n > left {
			n = left
		}
		src.advance(int(n))
		left -= n
	}
	return written, nil
}

// ScatteringRead fills the destination buffers in order from one
// vectored read, returning the total byte count.
func (c *SocketChannel) ScatteringRead(dsts []*ByteBuffer) (int64, error) {
	natives := make([]*jni.DirectBuffer, 0, len(dsts))
	lens := make([]int, 0, len(dsts))
	targets := make([]*ByteBuffer, 0, len(dsts))
	stagings := make([]*DirectByteBuffer, 0, len(dsts))
	defer func() {
		for _, s := range stagings {
			releaseDirect(s)
		}
	}()
	for _, dst := range dsts {
		n := dst.Remaining()
		if n == 0 {
			continue
		}
		staging := acquireDirect(c.env, n)
		stagings = append(stagings, staging)
		natives = append(natives, staging.native())
		lens = append(lens, n)
		targets = append(targets, dst)
	}
	if len(natives) == 0 {
		return 0, nil
	}
	total, err := c.ep.ReadvBuffers(natives, lens)
	if err != nil {
		return 0, err
	}
	left := int(total)
	for i, dst := range targets {
		n := lens[i]
		if n > left {
			n = left
		}
		if n == 0 {
			break
		}
		staging := &DirectByteBuffer{env: c.env, nat: natives[i], lim: n}
		if err := dst.Put(staging.Get(n)); err != nil {
			return 0, err
		}
		left -= n
	}
	return total, nil
}
