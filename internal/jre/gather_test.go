package jre

import (
	"testing"

	"dista/internal/core/taint"
	"dista/internal/core/tracker"
)

func TestGatheringWriteScatteringRead(t *testing.T) {
	client, server, envs := channelPair(t, tracker.ModeDista)
	t1 := envs[0].Agent.Source("s", "g1")
	t2 := envs[0].Agent.Source("s", "g2")

	srcs := []*ByteBuffer{
		WrapBuffer(taint.FromString("head", t1)),
		WrapBuffer(taint.FromString("tail!", t2)),
	}
	n, err := client.GatheringWrite(srcs)
	if err != nil || n != 9 {
		t.Fatalf("gathering write = %d, %v", n, err)
	}
	if srcs[0].HasRemaining() || srcs[1].HasRemaining() {
		t.Fatal("source buffers must be fully consumed")
	}

	d1, d2 := AllocateBuffer(4), AllocateBuffer(5)
	total := int64(0)
	for total < 9 {
		got, err := server.ScatteringRead([]*ByteBuffer{d1, d2})
		if err != nil {
			t.Fatal(err)
		}
		total += got
	}
	d1.Flip()
	d2.Flip()
	head, tail := d1.Get(4), d2.Get(5)
	if string(head.Data) != "head" || string(tail.Data) != "tail!" {
		t.Fatalf("scattered %q %q", head.Data, tail.Data)
	}
	if !head.LabelAt(0).Has("g1") || !tail.LabelAt(4).Has("g2") {
		t.Fatal("labels lost through vectored channel I/O")
	}
}

func TestGatheringWriteEmptyBuffers(t *testing.T) {
	client, _, _ := channelPair(t, tracker.ModeOff)
	n, err := client.GatheringWrite([]*ByteBuffer{AllocateBuffer(4).Flip()})
	if err != nil || n != 0 {
		t.Fatalf("empty gathering write = %d, %v", n, err)
	}
}

func TestScatteringReadOffMode(t *testing.T) {
	client, server, _ := channelPair(t, tracker.ModeOff)
	if _, err := client.Write(WrapBuffer(taint.WrapBytes([]byte("123456")))); err != nil {
		t.Fatal(err)
	}
	d1, d2 := AllocateBuffer(3), AllocateBuffer(3)
	total := int64(0)
	for total < 6 {
		n, err := server.ScatteringRead([]*ByteBuffer{d1, d2})
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	d1.Flip()
	d2.Flip()
	if string(d1.Get(3).Data)+string(d2.Get(3).Data) != "123456" {
		t.Fatal("scatter order broken")
	}
}
