package jre

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"dista/internal/core/taint"
	"dista/internal/core/tracker"
	"dista/internal/netsim"
	"dista/internal/taintmap"
)

// cluster builds n Envs on one network sharing a Taint Map store.
func cluster(t *testing.T, mode tracker.Mode, n int) []*Env {
	t.Helper()
	net := netsim.New()
	store := taintmap.NewStore()
	envs := make([]*Env, n)
	for i := range envs {
		name := []string{"node1", "node2", "node3", "node4", "node5"}[i]
		agent := tracker.New(name, mode)
		agent = tracker.New(name, mode,
			tracker.WithTaintMap(taintmap.NewLocalClient(store, agent.Tree())))
		envs[i] = NewEnv(net, agent)
	}
	return envs
}

// pair returns two connected Envs and a server socket helper.
func socketPair(t *testing.T, mode tracker.Mode) (client, server *Socket, envs []*Env) {
	t.Helper()
	envs = cluster(t, mode, 2)
	ss, err := ListenSocket(envs[1], "srv:1")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ss.Close() })
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s, err := ss.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		server = s
	}()
	client, err = DialSocket(envs[0], "srv:1")
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server, envs
}

func TestSocketStreamTaintRoundTrip(t *testing.T) {
	client, server, envs := socketPair(t, tracker.ModeDista)
	secret := taint.FromString("hello", envs[0].Agent.Source("src", "s1"))
	if err := client.OutputStream().Write(secret); err != nil {
		t.Fatal(err)
	}
	buf := taint.MakeBytes(5)
	if err := ReadFull(server.InputStream(), &buf); err != nil {
		t.Fatal(err)
	}
	if string(buf.Data) != "hello" || !buf.LabelAt(4).Has("s1") {
		t.Fatalf("got %q label %v", buf.Data, buf.LabelAt(4))
	}
}

func TestSocketSingleByteIO(t *testing.T) {
	client, server, envs := socketPair(t, tracker.ModeDista)
	tt := envs[0].Agent.Source("src", "b")
	if err := client.OutputStream().WriteTaintedByte('Z', tt); err != nil {
		t.Fatal(err)
	}
	b, lbl, err := server.InputStream().ReadTaintedByte()
	if err != nil || b != 'Z' || !lbl.Has("b") {
		t.Fatalf("ReadByte = %c %v %v", b, lbl, err)
	}
}

func TestReadFullAdoptsLabels(t *testing.T) {
	client, server, envs := socketPair(t, tracker.ModeDista)
	if err := client.OutputStream().Write(taint.FromString("abcd", envs[0].Agent.Source("s", "x"))); err != nil {
		t.Fatal(err)
	}
	buf := taint.WrapBytes(make([]byte, 4)) // no shadow pre-allocated
	if err := ReadFull(server.InputStream(), &buf); err != nil {
		t.Fatal(err)
	}
	if !buf.LabelAt(0).Has("x") {
		t.Fatal("ReadFull must adopt labels materialized by the read")
	}
}

func TestBufferedStreams(t *testing.T) {
	client, server, envs := socketPair(t, tracker.ModeDista)
	out := NewBufferedOutputStreamSize(client.OutputStream(), 16)
	tt := envs[0].Agent.Source("src", "buffered")
	// Write 100 tainted single bytes through a 16-byte buffer.
	for i := 0; i < 100; i++ {
		if err := out.WriteTaintedByte(byte('a'+i%26), tt); err != nil {
			t.Fatal(err)
		}
	}
	if err := out.Flush(); err != nil {
		t.Fatal(err)
	}
	in := NewBufferedInputStreamSize(server.InputStream(), 16)
	buf := taint.MakeBytes(100)
	if err := ReadFull(in, &buf); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if buf.Data[i] != byte('a'+i%26) {
			t.Fatalf("byte %d = %c", i, buf.Data[i])
		}
		if !buf.LabelAt(i).Has("buffered") {
			t.Fatalf("byte %d lost taint through buffering", i)
		}
	}
}

func TestBufferedOutputLargerThanBuffer(t *testing.T) {
	client, server, envs := socketPair(t, tracker.ModeDista)
	out := NewBufferedOutputStreamSize(client.OutputStream(), 8)
	payload := taint.FromString("0123456789abcdef0123", envs[0].Agent.Source("s", "big"))
	if err := out.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := out.Flush(); err != nil {
		t.Fatal(err)
	}
	buf := taint.MakeBytes(20)
	if err := ReadFull(server.InputStream(), &buf); err != nil {
		t.Fatal(err)
	}
	if string(buf.Data) != "0123456789abcdef0123" || !buf.LabelAt(19).Has("big") {
		t.Fatalf("got %q", buf.Data)
	}
}

func TestDataStreamPrimitives(t *testing.T) {
	client, server, envs := socketPair(t, tracker.ModeDista)
	a := envs[0].Agent
	w := NewDataOutputStream(client.OutputStream())
	r := NewDataInputStream(server.InputStream())

	tInt := a.Source("s", "int")
	tStr := a.Source("s", "str")

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := w.WriteInt32(taint.Int32{Value: -7, Label: tInt}); err != nil {
			t.Error(err)
		}
		if err := w.WriteInt64(taint.Int64{Value: 1 << 40}); err != nil {
			t.Error(err)
		}
		if err := w.WriteUTF(taint.String{Value: "vote", Label: tStr}); err != nil {
			t.Error(err)
		}
		if err := w.WriteBool(true, tInt); err != nil {
			t.Error(err)
		}
		if err := w.WriteFloat64(3.5, taint.Taint{}); err != nil {
			t.Error(err)
		}
		if err := w.WriteInt16(-2, taint.Taint{}); err != nil {
			t.Error(err)
		}
	}()

	i32, err := r.ReadInt32()
	if err != nil || i32.Value != -7 || !i32.Label.Has("int") {
		t.Fatalf("ReadInt32 = %v %v", i32, err)
	}
	i64, err := r.ReadInt64()
	if err != nil || i64.Value != 1<<40 || !i64.Label.Empty() {
		t.Fatalf("ReadInt64 = %v %v", i64, err)
	}
	s, err := r.ReadUTF()
	if err != nil || s.Value != "vote" || !s.Label.Has("str") {
		t.Fatalf("ReadUTF = %v %v", s, err)
	}
	b, lbl, err := r.ReadBool()
	if err != nil || !b || !lbl.Has("int") {
		t.Fatalf("ReadBool = %v %v %v", b, lbl, err)
	}
	f, _, err := r.ReadFloat64()
	if err != nil || f != 3.5 {
		t.Fatalf("ReadFloat64 = %v %v", f, err)
	}
	i16, _, err := r.ReadInt16()
	if err != nil || i16 != -2 {
		t.Fatalf("ReadInt16 = %v %v", i16, err)
	}
	wg.Wait()
}

func TestDataStreamIntArray(t *testing.T) {
	client, server, envs := socketPair(t, tracker.ModeDista)
	w := NewDataOutputStream(client.OutputStream())
	r := NewDataInputStream(server.InputStream())
	tt := envs[0].Agent.Source("s", "arr")
	vals := []int32{1, -2, 3, -4}
	go func() {
		if err := w.WriteInt32Array(vals, tt); err != nil {
			t.Error(err)
		}
	}()
	got, lbl, err := r.ReadInt32Array()
	if err != nil || !reflect.DeepEqual(got, vals) || !lbl.Has("arr") {
		t.Fatalf("ReadInt32Array = %v %v %v", got, lbl, err)
	}
}

func TestDataStreamString32AndBytes32(t *testing.T) {
	client, server, envs := socketPair(t, tracker.ModeDista)
	w := NewDataOutputStream(client.OutputStream())
	r := NewDataInputStream(server.InputStream())
	tt := envs[0].Agent.Source("s", "big")
	go func() {
		if err := w.WriteString32(taint.String{Value: "long text", Label: tt}); err != nil {
			t.Error(err)
		}
		if err := w.WriteBytes32(taint.FromString("blob", tt)); err != nil {
			t.Error(err)
		}
	}()
	s, err := r.ReadString32()
	if err != nil || s.Value != "long text" || !s.Label.Has("big") {
		t.Fatalf("ReadString32 = %v %v", s, err)
	}
	b, err := r.ReadBytes32()
	if err != nil || string(b.Data) != "blob" || !b.Union().Has("big") {
		t.Fatalf("ReadBytes32 = %q %v", b.Data, err)
	}
}

func TestWriteUTFTooLong(t *testing.T) {
	client, _, _ := socketPair(t, tracker.ModeOff)
	w := NewDataOutputStream(client.OutputStream())
	if err := w.WriteUTF(taint.String{Value: string(make([]byte, 70000))}); err == nil {
		t.Fatal("want error for oversized writeUTF")
	}
}

// testObject is a Serializable with a tainted string field and an
// untainted int, like the micro benchmark's "object with a long text
// String field".
type testObject struct {
	ID   taint.Int64
	Text taint.String
}

func (o *testObject) WriteTo(w *DataOutputStream) error {
	if err := w.WriteInt64(o.ID); err != nil {
		return err
	}
	return w.WriteString32(o.Text)
}

func (o *testObject) ReadFrom(r *DataInputStream) error {
	id, err := r.ReadInt64()
	if err != nil {
		return err
	}
	o.ID = id
	o.Text, err = r.ReadString32()
	return err
}

func TestObjectStreamRoundTrip(t *testing.T) {
	client, server, envs := socketPair(t, tracker.ModeDista)
	oout := NewObjectOutputStream(client.OutputStream())
	oin := NewObjectInputStream(server.InputStream())
	tt := envs[0].Agent.Source("s", "obj")
	src := &testObject{
		ID:   taint.Int64{Value: 42},
		Text: taint.String{Value: "tainted field", Label: tt},
	}
	go func() {
		if err := oout.WriteObject(src); err != nil {
			t.Error(err)
		}
	}()
	var dst testObject
	if err := oin.ReadObject(&dst); err != nil {
		t.Fatal(err)
	}
	if dst.ID.Value != 42 || dst.Text.Value != "tainted field" {
		t.Fatalf("object = %+v", dst)
	}
	if !dst.Text.Label.Has("obj") {
		t.Fatal("object field lost its taint")
	}
	if !dst.ID.Label.Empty() {
		t.Fatal("untainted field gained a taint (over-tainting)")
	}
}

func TestObjectStreamBadMagic(t *testing.T) {
	client, server, _ := socketPair(t, tracker.ModeOff)
	go client.OutputStream().Write(taint.WrapBytes([]byte{0x00, 1, 2, 3}))
	var dst testObject
	if err := NewObjectInputStream(server.InputStream()).ReadObject(&dst); !errors.Is(err, ErrBadObjectStream) {
		t.Fatalf("err = %v", err)
	}
}

func TestDatagramSocketTaint(t *testing.T) {
	envs := cluster(t, tracker.ModeDista, 2)
	sa, err := OpenDatagramSocket(envs[0], "a:1")
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Close()
	sb, err := OpenDatagramSocket(envs[1], "b:1")
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()

	payload := taint.FromString("dgram", envs[0].Agent.Source("s", "udp"))
	pkt := NewDatagramPacket(payload, "b:1")
	if err := sa.Send(pkt); err != nil {
		t.Fatal(err)
	}
	// The caller's packet must be untouched (§III-C Type 2).
	if string(pkt.Buf.Data) != "dgram" || pkt.N != 5 {
		t.Fatal("send mutated the caller's packet")
	}

	rcv := NewReceivePacket(16)
	if err := sb.Receive(rcv); err != nil {
		t.Fatal(err)
	}
	got := rcv.Payload()
	if string(got.Data) != "dgram" || rcv.Addr != "a:1" {
		t.Fatalf("payload %q from %q", got.Data, rcv.Addr)
	}
	if !got.LabelAt(0).Has("udp") {
		t.Fatal("datagram lost taint")
	}
}

func TestByteBufferCursorOps(t *testing.T) {
	b := AllocateBuffer(8)
	if b.Capacity() != 8 || b.Remaining() != 8 || b.Position() != 0 {
		t.Fatalf("fresh buffer %d/%d/%d", b.Capacity(), b.Remaining(), b.Position())
	}
	if err := b.Put(taint.WrapBytes([]byte("abc"))); err != nil {
		t.Fatal(err)
	}
	b.Flip()
	if b.Limit() != 3 || b.Remaining() != 3 {
		t.Fatalf("after flip %d/%d", b.Limit(), b.Remaining())
	}
	got := b.Get(2)
	if string(got.Data) != "ab" || b.Remaining() != 1 {
		t.Fatalf("get = %q remaining %d", got.Data, b.Remaining())
	}
	b.Compact()
	if b.Position() != 1 || b.Limit() != 8 {
		t.Fatalf("after compact %d/%d", b.Position(), b.Limit())
	}
	b.Clear()
	if b.Position() != 0 || b.Remaining() != 8 {
		t.Fatal("clear broken")
	}
	if !b.HasRemaining() {
		t.Fatal("HasRemaining")
	}
	b.Put(taint.WrapBytes([]byte("zz")))
	b.Rewind()
	if b.Position() != 0 {
		t.Fatal("rewind broken")
	}
}

func TestByteBufferOverflow(t *testing.T) {
	b := AllocateBuffer(2)
	if err := b.Put(taint.WrapBytes([]byte("abc"))); err == nil {
		t.Fatal("want overflow error")
	}
}

func TestByteBufferLabelsThroughPutGet(t *testing.T) {
	envs := cluster(t, tracker.ModeDista, 1)
	tt := envs[0].Agent.Source("s", "nio")
	b := AllocateBuffer(8)
	if err := b.Put(taint.FromString("xy", tt)); err != nil {
		t.Fatal(err)
	}
	b.Flip()
	got := b.Get(2)
	if !got.LabelAt(0).Has("nio") || !got.LabelAt(1).Has("nio") {
		t.Fatal("labels lost through Put/Get")
	}
}

func TestDirectByteBufferTracksOnlyWhenTracking(t *testing.T) {
	onEnvs := cluster(t, tracker.ModeDista, 1)
	tt := onEnvs[0].Agent.Source("s", "direct")
	db := AllocateDirectBuffer(onEnvs[0], 4)
	if err := db.Put(taint.FromString("ab", tt)); err != nil {
		t.Fatal(err)
	}
	db.Flip()
	if got := db.Get(2); !got.LabelAt(0).Has("direct") {
		t.Fatal("direct buffer must move labels when tracking")
	}

	offEnvs := cluster(t, tracker.ModeOff, 1)
	db2 := AllocateDirectBuffer(offEnvs[0], 4)
	payload := taint.MakeBytes(2)
	copy(payload.Data, "ab")
	if err := db2.Put(payload); err != nil {
		t.Fatal(err)
	}
	db2.Flip()
	if got := db2.Get(2); got.HasShadow() {
		t.Fatal("off mode direct buffer must skip shadow work")
	}
}

func channelPair(t *testing.T, mode tracker.Mode) (*SocketChannel, *SocketChannel, []*Env) {
	t.Helper()
	envs := cluster(t, mode, 2)
	srv, err := OpenServerSocketChannel(envs[1], "srv:1")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	var server *SocketChannel
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := srv.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		server = c
	}()
	client, err := OpenSocketChannel(envs[0], "srv:1")
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server, envs
}

func TestSocketChannelTaintRoundTrip(t *testing.T) {
	client, server, envs := channelPair(t, tracker.ModeDista)
	tt := envs[0].Agent.Source("s", "chan")
	src := WrapBuffer(taint.FromString("channel-data", tt))
	if n, err := client.Write(src); err != nil || n != 12 {
		t.Fatalf("Write = %d, %v", n, err)
	}
	dst := AllocateBuffer(12)
	total := 0
	for total < 12 {
		n, err := server.Read(dst)
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	dst.Flip()
	got := dst.Get(12)
	if string(got.Data) != "channel-data" {
		t.Fatalf("data = %q", got.Data)
	}
	for i := range got.Data {
		if !got.LabelAt(i).Has("chan") {
			t.Fatalf("byte %d lost taint through the Type 3 path", i)
		}
	}
}

func TestSocketChannelPhosphorDropsTaint(t *testing.T) {
	client, server, envs := channelPair(t, tracker.ModePhosphor)
	tt := envs[0].Agent.Source("s", "lost")
	src := WrapBuffer(taint.FromString("x", tt))
	if _, err := client.Write(src); err != nil {
		t.Fatal(err)
	}
	dst := AllocateBuffer(1)
	if _, err := server.Read(dst); err != nil {
		t.Fatal(err)
	}
	dst.Flip()
	if got := dst.Get(1); got.Union().Has("lost") {
		t.Fatal("phosphor mode must drop inter-node taints on channels too")
	}
}

func TestDatagramChannelTaint(t *testing.T) {
	envs := cluster(t, tracker.ModeDista, 2)
	ca, err := OpenDatagramChannel(envs[0], "a:1")
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	cb, err := OpenDatagramChannel(envs[1], "b:1")
	if err != nil {
		t.Fatal(err)
	}
	defer cb.Close()

	tt := envs[0].Agent.Source("s", "dchan")
	src := WrapBuffer(taint.FromString("packet", tt))
	if _, err := ca.Send(src, "b:1"); err != nil {
		t.Fatal(err)
	}
	dst := AllocateBuffer(16)
	from, err := cb.Receive(dst)
	if err != nil || from != "a:1" {
		t.Fatalf("Receive from %q, %v", from, err)
	}
	dst.Flip()
	got := dst.Get(6)
	if string(got.Data) != "packet" || !got.LabelAt(0).Has("dchan") {
		t.Fatalf("got %q label %v", got.Data, got.LabelAt(0))
	}
}

func TestAsyncSocketChannel(t *testing.T) {
	envs := cluster(t, tracker.ModeDista, 2)
	srv, err := OpenAsyncServerSocketChannel(envs[1], "srv:1")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	acceptDone := make(chan *AsyncSocketChannel, 1)
	go func() {
		c, err := srv.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		acceptDone <- c
	}()
	client, err := OpenAsyncSocketChannel(envs[0], "srv:1")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server := <-acceptDone
	defer server.Close()

	tt := envs[0].Agent.Source("s", "aio")
	wf := client.Write(WrapBuffer(taint.FromString("async", tt)))
	if n, err := wf.Get(); err != nil || n != 5 {
		t.Fatalf("write future = %d, %v", n, err)
	}
	dst := AllocateBuffer(5)
	rf := server.Read(dst)
	if n, err := rf.Get(); err != nil || n != 5 {
		t.Fatalf("read future = %d, %v", n, err)
	}
	dst.Flip()
	got := dst.Get(5)
	if string(got.Data) != "async" || !got.LabelAt(2).Has("aio") {
		t.Fatalf("got %q", got.Data)
	}
}

func TestReadFileTainted(t *testing.T) {
	envs := cluster(t, tracker.ModeDista, 1)
	dir := t.TempDir()
	path := filepath.Join(dir, "log.txt")
	if err := os.WriteFile(path, []byte("zxid=7"), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := ReadFileTainted(envs[0], path, "FileTxnLog#read", "zxid")
	if err != nil {
		t.Fatal(err)
	}
	if string(b.Data) != "zxid=7" || !b.Union().Has("zxid1") {
		t.Fatalf("got %q label %v", b.Data, b.Union())
	}
	// Second read gets a distinct sequence tag.
	b2, err := ReadFileTainted(envs[0], path, "FileTxnLog#read", "zxid")
	if err != nil {
		t.Fatal(err)
	}
	if !b2.Union().Has("zxid2") {
		t.Fatalf("second read label = %v", b2.Union())
	}
	// Off mode reads stay clean.
	off := cluster(t, tracker.ModeOff, 1)
	b3, err := ReadFileTainted(off[0], path, "FileTxnLog#read", "zxid")
	if err != nil || b3.HasShadow() {
		t.Fatalf("off mode read tainted: %v %v", b3.HasShadow(), err)
	}
	if _, err := ReadFileTainted(envs[0], filepath.Join(dir, "gone"), "d", "p"); err == nil {
		t.Fatal("want error for missing file")
	}
}

func TestDatagramPeekDoesNotConsume(t *testing.T) {
	envs := cluster(t, tracker.ModeDista, 2)
	sa, err := OpenDatagramSocket(envs[0], "pa:1")
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Close()
	sb, err := OpenDatagramSocket(envs[1], "pb:1")
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()

	payload := taint.FromString("peeked", envs[0].Agent.Source("s", "peek"))
	if err := sa.Send(NewDatagramPacket(payload, "pb:1")); err != nil {
		t.Fatal(err)
	}

	// Peek sees the datagram with its taints.
	pk := NewReceivePacket(16)
	if err := sb.Peek(pk); err != nil {
		t.Fatal(err)
	}
	if string(pk.Payload().Data) != "peeked" || !pk.Payload().LabelAt(0).Has("peek") {
		t.Fatalf("peek = %q label %v", pk.Payload().Data, pk.Payload().LabelAt(0))
	}
	// The datagram is still there for a real receive.
	rcv := NewReceivePacket(16)
	if err := sb.Receive(rcv); err != nil {
		t.Fatal(err)
	}
	if string(rcv.Payload().Data) != "peeked" || !rcv.Payload().LabelAt(5).Has("peek") {
		t.Fatal("receive after peek lost the datagram or its taint")
	}
}

func TestAsyncCompletionHandler(t *testing.T) {
	envs := cluster(t, tracker.ModeDista, 2)
	srv, err := OpenAsyncServerSocketChannel(envs[1], "aio-h:1")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	acceptDone := make(chan *AsyncSocketChannel, 1)
	go func() {
		c, err := srv.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		acceptDone <- c
	}()
	client, err := OpenAsyncSocketChannel(envs[0], "aio-h:1")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server := <-acceptDone
	defer server.Close()

	tt := envs[0].Agent.Source("s", "handler")
	wrote := make(chan int, 1)
	client.WriteWithHandler(WrapBuffer(taint.FromString("cb", tt)), CompletionFunc{
		OnCompleted: func(n int) { wrote <- n },
		OnFailed:    func(err error) { t.Error(err); wrote <- 0 },
	})
	if n := <-wrote; n != 2 {
		t.Fatalf("wrote %d", n)
	}

	dst := AllocateBuffer(2)
	read := make(chan int, 1)
	server.ReadWithHandler(dst, CompletionFunc{
		OnCompleted: func(n int) { read <- n },
		OnFailed:    func(err error) { t.Error(err); read <- 0 },
	})
	if n := <-read; n != 2 {
		t.Fatalf("read %d", n)
	}
	dst.Flip()
	got := dst.Get(2)
	if string(got.Data) != "cb" || !got.LabelAt(0).Has("handler") {
		t.Fatalf("got %q %v", got.Data, got.LabelAt(0))
	}
}

func TestAsyncCompletionHandlerFailure(t *testing.T) {
	envs := cluster(t, tracker.ModeOff, 2)
	srv, err := OpenAsyncServerSocketChannel(envs[1], "aio-f:1")
	if err != nil {
		t.Fatal(err)
	}
	acceptDone := make(chan *AsyncSocketChannel, 1)
	go func() {
		c, _ := srv.Accept()
		acceptDone <- c
	}()
	client, err := OpenAsyncSocketChannel(envs[0], "aio-f:1")
	if err != nil {
		t.Fatal(err)
	}
	server := <-acceptDone
	server.Close()
	client.Close()
	srv.Close()

	failed := make(chan error, 1)
	client.ReadWithHandler(AllocateBuffer(4), CompletionFunc{
		OnCompleted: func(int) { failed <- nil },
		OnFailed:    func(err error) { failed <- err },
	})
	if err := <-failed; err == nil {
		t.Fatal("read on closed channel must fail through the handler")
	}
}

func TestDataStreamTruncatedValue(t *testing.T) {
	client, server, _ := socketPair(t, tracker.ModeOff)
	// Send 2 bytes then close: a ReadInt32 on the other side must fail
	// with an unexpected-EOF style error, not hang or succeed.
	go func() {
		client.OutputStream().Write(taint.WrapBytes([]byte{1, 2}))
		client.Close()
	}()
	r := NewDataInputStream(server.InputStream())
	if _, err := r.ReadInt32(); err == nil {
		t.Fatal("truncated int32 must error")
	}
}

func TestReadFullUnexpectedEOF(t *testing.T) {
	client, server, _ := socketPair(t, tracker.ModeOff)
	go func() {
		client.OutputStream().Write(taint.WrapBytes([]byte("ab")))
		client.Close()
	}()
	buf := taint.MakeBytes(5)
	if err := ReadFull(server.InputStream(), &buf); err == nil {
		t.Fatal("short stream must fail ReadFull")
	}
}

func TestByteArrayStreamsRoundTrip(t *testing.T) {
	tr := taint.NewTree()
	out := NewByteArrayOutputStream()
	w := NewDataOutputStream(out)
	tt := tr.NewSource("mem", "l")
	if err := w.WriteString32(taint.String{Value: "in-memory", Label: tt}); err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("nothing buffered")
	}
	r := NewDataInputStream(NewByteArrayInputStream(out.Bytes()))
	s, err := r.ReadString32()
	if err != nil || s.Value != "in-memory" || !s.Label.Has("mem") {
		t.Fatalf("round trip = %+v, %v", s, err)
	}
	// Drained stream returns EOF.
	one := taint.MakeBytes(1)
	if _, err := NewByteArrayInputStream(taint.Bytes{}).Read(&one); err == nil {
		t.Fatal("empty byte-array stream must EOF")
	}
}
