package jre

import (
	"errors"
	"fmt"

	"dista/internal/core/taint"
)

// Object serialization (java.io.ObjectOutputStream/ObjectInputStream).
// Objects describe their own wire form through the Serializable
// interface; the typed primitives of DataOutputStream keep byte-level
// taints attached through serialization, which is how an object field's
// taint survives the trip (the ObjectStream micro cases and the Vote /
// Message objects of the real-system workloads).

// Serializable is implemented by any object that can cross the wire.
type Serializable interface {
	// WriteTo serializes the object's fields.
	WriteTo(w *DataOutputStream) error
	// ReadFrom deserializes into the receiver.
	ReadFrom(r *DataInputStream) error
}

// objectStreamMagic guards against misaligned streams, like the real
// ObjectStream header.
const objectStreamMagic = 0xED

// ErrBadObjectStream reports a corrupt or misaligned object stream.
var ErrBadObjectStream = errors.New("jre: bad object stream header")

// ObjectOutputStream writes Serializable objects.
type ObjectOutputStream struct {
	w *DataOutputStream
}

// NewObjectOutputStream wraps an output stream.
func NewObjectOutputStream(out OutputStream) *ObjectOutputStream {
	return &ObjectOutputStream{w: NewDataOutputStream(out)}
}

// WriteObject serializes one object (ObjectOutputStream.writeObject).
func (o *ObjectOutputStream) WriteObject(obj Serializable) error {
	if err := o.w.WriteByteValue(objectStreamMagic, taint.Taint{}); err != nil {
		return err
	}
	if err := obj.WriteTo(o.w); err != nil {
		return fmt.Errorf("jre: write object: %w", err)
	}
	return o.w.Flush()
}

// ObjectInputStream reads Serializable objects.
type ObjectInputStream struct {
	r *DataInputStream
}

// NewObjectInputStream wraps an input stream.
func NewObjectInputStream(in InputStream) *ObjectInputStream {
	return &ObjectInputStream{r: NewDataInputStream(in)}
}

// ReadObject deserializes the next object into obj
// (ObjectInputStream.readObject).
func (o *ObjectInputStream) ReadObject(obj Serializable) error {
	magic, _, err := o.r.ReadByteValue()
	if err != nil {
		return err
	}
	if magic != objectStreamMagic {
		return ErrBadObjectStream
	}
	if err := obj.ReadFrom(o.r); err != nil {
		return fmt.Errorf("jre: read object: %w", err)
	}
	return nil
}
