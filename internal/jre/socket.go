package jre

import (
	"io"

	"dista/internal/core/taint"
	"dista/internal/instrument"
	"dista/internal/netsim"
)

// InputStream is the read side of any stream class. Read performs one
// read into buf (data and labels), returning the byte count; io.EOF at
// end of stream.
type InputStream interface {
	Read(buf *taint.Bytes) (int, error)
}

// OutputStream is the write side of any stream class. Write sends all
// of b; Flush pushes buffered data down the stack.
type OutputStream interface {
	Write(b taint.Bytes) error
	Flush() error
}

// ReadFull reads exactly len(buf.Data) bytes from in, like
// io.ReadFull.
func ReadFull(in InputStream, buf *taint.Bytes) error {
	got := 0
	for got < len(buf.Data) {
		sub := buf.Slice(got, len(buf.Data))
		n, err := in.Read(&sub)
		// A dista read may materialize a shadow store on the sub-slice
		// view; if the parent had none to alias, adopt the labels run
		// by run so they persist.
		if sub.HasShadow() && !buf.HasShadow() {
			sub.ForEachRun(func(f, t int, tn taint.Taint) {
				if !tn.Empty() {
					buf.SetRange(got+f, got+t, tn)
				}
			})
		}
		got += n
		if err != nil {
			if err == io.EOF && got < len(buf.Data) {
				return io.ErrUnexpectedEOF
			}
			if got == len(buf.Data) {
				return nil
			}
			return err
		}
	}
	return nil
}

// Socket is a connected TCP-like socket (java.net.Socket).
type Socket struct {
	env *Env
	ep  *instrument.Endpoint
	in  *SocketInputStream
	out *SocketOutputStream
}

// newSocket wraps an established connection.
func newSocket(env *Env, conn *netsim.Conn) *Socket {
	s := &Socket{env: env, ep: instrument.NewEndpoint(env.Agent, conn)}
	s.in = &SocketInputStream{ep: s.ep}
	s.out = &SocketOutputStream{ep: s.ep}
	return s
}

// DialSocket connects to a listening address (new Socket(host, port)).
func DialSocket(env *Env, addr string) (*Socket, error) {
	conn, err := env.Net.Dial(addr)
	if err != nil {
		return nil, err
	}
	return newSocket(env, conn), nil
}

// InputStream returns the socket's input stream (Socket.getInputStream).
func (s *Socket) InputStream() *SocketInputStream { return s.in }

// OutputStream returns the socket's output stream (Socket.getOutputStream).
func (s *Socket) OutputStream() *SocketOutputStream { return s.out }

// Close shuts the socket down.
func (s *Socket) Close() error { return s.ep.Conn().Close() }

// RemoteAddr returns the peer address.
func (s *Socket) RemoteAddr() string { return s.ep.Conn().RemoteAddr() }

// ServerSocket accepts TCP-like connections (java.net.ServerSocket).
type ServerSocket struct {
	env *Env
	l   *netsim.Listener
}

// ListenSocket binds a server socket.
func ListenSocket(env *Env, addr string) (*ServerSocket, error) {
	l, err := env.Net.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &ServerSocket{env: env, l: l}, nil
}

// Accept blocks for the next connection.
func (s *ServerSocket) Accept() (*Socket, error) {
	conn, err := s.l.Accept()
	if err != nil {
		return nil, err
	}
	return newSocket(s.env, conn), nil
}

// Addr returns the bound address.
func (s *ServerSocket) Addr() string { return s.l.Addr() }

// Close stops accepting.
func (s *ServerSocket) Close() error { return s.l.Close() }

// SocketInputStream is the JRE class of Fig. 1 whose read bottoms out in
// the socketRead0 native — here, the instrumented endpoint.
type SocketInputStream struct {
	ep *instrument.Endpoint
}

var _ InputStream = (*SocketInputStream)(nil)

// Read performs one instrumented read.
func (s *SocketInputStream) Read(buf *taint.Bytes) (int, error) {
	return s.ep.Read(buf)
}

// ReadTaintedByte reads a single byte with its taint.
func (s *SocketInputStream) ReadTaintedByte() (byte, taint.Taint, error) {
	buf := taint.MakeBytes(1)
	if err := ReadFull(s, &buf); err != nil {
		return 0, taint.Taint{}, err
	}
	return buf.Data[0], buf.LabelAt(0), nil
}

// SocketOutputStream is the JRE class of Fig. 1 whose write bottoms out
// in the socketWrite0 native.
type SocketOutputStream struct {
	ep *instrument.Endpoint
}

var _ OutputStream = (*SocketOutputStream)(nil)

// Write sends all of b through the instrumented native.
func (s *SocketOutputStream) Write(b taint.Bytes) error {
	return s.ep.Write(b)
}

// WriteTaintedByte sends a single byte with its taint.
func (s *SocketOutputStream) WriteTaintedByte(b byte, t taint.Taint) error {
	one := taint.WrapBytes([]byte{b})
	one.SetLabel(0, t)
	return s.Write(one)
}

// Flush is a no-op; socket streams are unbuffered.
func (s *SocketOutputStream) Flush() error { return nil }
