// Package load is the closed-loop load plane behind cmd/dista-load and
// the BENCH_10 soaks (DESIGN.md §12): it drives tens of thousands of
// concurrent instrumented connections over the netsim scheduler fabric
// and reports tail latency out of the shared log-scale histogram.
//
// The generator is closed-loop — every connection has exactly one
// operation outstanding: write a payload through its instrumented
// endpoint, wait for the sink's echo to decode back, record the
// round-trip, issue the next op. Closed loops measure the latency the
// system actually delivers under a fixed concurrency rather than the
// latency of an overload queue, which is the shape the paper's testbed
// workloads (and The Taint Rabbit's mixed-payload argument) call for.
//
// Sessions are multiplexed, not goroutine-per-connection: a handful of
// worker goroutines drive all sessions off a netsim.Poller run queue,
// and the echo sink drains its side the same way. That is what lets a
// race-enabled soak hold 50k concurrent connections — the race
// runtime's ~8k goroutine ceiling would kill a thread-per-conn design
// long before the fabric itself became the limit.
package load

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dista/internal/bench/hist"
	"dista/internal/core/taint"
	"dista/internal/core/tracker"
	"dista/internal/instrument"
	"dista/internal/jni"
	"dista/internal/netsim"
	"dista/internal/taintmap"
)

// Path selects the transport a session drives.
type Path int

const (
	PathStream   Path = iota // instrument.Endpoint over a stream conn
	PathDatagram             // PacketSend/PacketReceive over UDP
	PathVectored             // WritevBuffers (scatter/gather) over a stream conn
)

// Kind selects the taint shape of a session's payload — the four
// density classes the adaptive tiering engine prices differently.
type Kind int

const (
	KindClean   Kind = iota // untainted: passthrough tier
	KindUniform             // one label over the whole payload
	KindSparse              // a few dirty islands
	KindDense               // alternating labels, maximal fragmentation
)

// Mix is a percentage split. Fields must sum to 100.
type Mix struct {
	Clean, Uniform, Sparse, Dense int
}

// PathMix is a percentage split across transports. Sums to 100.
type PathMix struct {
	Stream, Datagram, Vectored int
}

// Config parameterizes one load run.
type Config struct {
	Conns   int // concurrent sessions (= connections), required
	Ops     int // operations per session (default 8)
	Payload int // payload bytes per op (default 1024)

	Workers     int // driver goroutines multiplexing the sessions (default 4)
	SinkWorkers int // echo-sink goroutines in polled mode (default 4)

	Mix   Mix     // taint-shape split (default 70/10/10/10)
	Paths PathMix // transport split (default 60/20/20)

	// Adaptive selects the density-tiering endpoints instead of the
	// static framed codec.
	Adaptive bool

	// ClusterMembers > 0 stands up a live simulated taintmap cluster of
	// that many members (replication factor 2 when possible) and routes
	// every agent's registrations and lookups through it. Zero shares
	// one in-process store — the fabric is the system under test.
	ClusterMembers int

	// SinkGoroutinePerConn switches the echo sink to the pre-fabric
	// shape — one parked reader goroutine per accepted connection —
	// for the goroutine-headroom comparison. The default sink is
	// poller-based.
	SinkGoroutinePerConn bool

	// Agents bounds the tracker.Agent pool sessions share (default 16).
	Agents int

	// Hist, when non-nil, receives every per-op latency sample in
	// addition to the run's own report quantiles.
	Hist *hist.Hist
}

// Report is the outcome of one run.
type Report struct {
	Conns          int
	Ops            int64         // operations completed
	Bytes          int64         // payload bytes echoed back and decoded
	TaintBytes     int64         // tainted payload bytes carried
	Elapsed        time.Duration // wall time for the whole run
	P50, P99, P999 time.Duration // per-op round-trip quantiles
	SinkGoroutines int           // goroutines the echo sink used
	PeakGoroutines int           // max runtime.NumGoroutine() observed
}

// OpsPerSec is the closed-loop throughput.
func (r Report) OpsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// BytesPerSec is the decoded payload throughput.
func (r Report) BytesPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / r.Elapsed.Seconds()
}

// TaintsPerSec is the tainted-byte throughput — how much labelled data
// the tracker moved per second.
func (r Report) TaintsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.TaintBytes) / r.Elapsed.Seconds()
}

func (r Report) String() string {
	return fmt.Sprintf(
		"conns=%d ops=%d bytes=%d elapsed=%v\n"+
			"latency p50=%v p99=%v p999=%v\n"+
			"throughput %.0f ops/sec, %.0f bytes/sec, %.0f taints/sec\n"+
			"goroutines sink=%d peak=%d",
		r.Conns, r.Ops, r.Bytes, r.Elapsed.Round(time.Millisecond),
		r.P50, r.P99, r.P999,
		r.OpsPerSec(), r.BytesPerSec(), r.TaintsPerSec(),
		r.SinkGoroutines, r.PeakGoroutines)
}

// udpSinkShard bounds how many datagram sessions share one sink socket:
// closed-loop, each session has one datagram outstanding, so the shard
// size keeps the sink queue safely under netsim's per-socket cap.
const udpSinkShard = 512

// session is one closed-loop connection's state machine. A session is
// owned by exactly one driver goroutine at a time: the poller's oneshot
// delivery hands it over, and it is not rearmed until the owner is done
// with it.
type session struct {
	id   int
	path Path
	kind Kind

	// stream/vectored
	ep   *instrument.Endpoint
	conn *netsim.Conn
	vsrc []*jni.DirectBuffer // vectored write halves
	vlen []int

	// datagram
	agent *tracker.Agent
	sock  *netsim.UDPSocket
	dst   string

	payload taint.Bytes
	rbuf    taint.Bytes
	h       *netsim.PollHandle

	started time.Time
	got     int
	opsLeft int
}

// engine is the shared run state.
type engine struct {
	cfg   Config
	net   *netsim.Network
	h     *hist.Hist
	extra *hist.Hist // cfg.Hist, may be nil

	poller *netsim.Poller

	ops        atomic.Int64
	bytes      atomic.Int64
	taintBytes atomic.Int64
	remaining  atomic.Int64
	peakGoro   atomic.Int64

	errOnce sync.Once
	err     error
	done    chan struct{} // closed when remaining hits zero or on error
}

func (e *engine) fail(err error) {
	e.errOnce.Do(func() {
		e.err = err
		close(e.done)
		e.poller.Close()
	})
}

func (e *engine) finishSession() {
	if e.remaining.Add(-1) == 0 {
		e.errOnce.Do(func() {
			close(e.done)
			e.poller.Close()
		})
	}
}

// withDefaults fills the zero values in.
func (c Config) withDefaults() (Config, error) {
	if c.Conns <= 0 {
		return c, fmt.Errorf("load: Conns must be positive, got %d", c.Conns)
	}
	if c.Ops == 0 {
		c.Ops = 8
	}
	if c.Payload == 0 {
		c.Payload = 1024
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.SinkWorkers == 0 {
		c.SinkWorkers = 4
	}
	if c.Mix == (Mix{}) {
		c.Mix = Mix{Clean: 70, Uniform: 10, Sparse: 10, Dense: 10}
	}
	if c.Paths == (PathMix{}) {
		c.Paths = PathMix{Stream: 60, Datagram: 20, Vectored: 20}
	}
	if s := c.Mix.Clean + c.Mix.Uniform + c.Mix.Sparse + c.Mix.Dense; s != 100 {
		return c, fmt.Errorf("load: taint mix sums to %d, want 100", s)
	}
	if s := c.Paths.Stream + c.Paths.Datagram + c.Paths.Vectored; s != 100 {
		return c, fmt.Errorf("load: path mix sums to %d, want 100", s)
	}
	if c.Agents == 0 {
		c.Agents = 16
	}
	if c.Agents > c.Conns {
		c.Agents = c.Conns
	}
	return c, nil
}

// pathOf deterministically assigns session i a transport so the split
// holds within every window of 100 sessions.
func pathOf(i int, m PathMix) Path {
	r := i % 100
	switch {
	case r < m.Stream:
		return PathStream
	case r < m.Stream+m.Datagram:
		return PathDatagram
	default:
		return PathVectored
	}
}

// kindOf spreads the taint shapes on a stride coprime with pathOf's so
// every (path, kind) pair occurs.
func kindOf(i int, m Mix) Kind {
	r := (i * 37) % 100
	switch {
	case r < m.Clean:
		return KindClean
	case r < m.Clean+m.Uniform:
		return KindUniform
	case r < m.Clean+m.Uniform+m.Sparse:
		return KindSparse
	default:
		return KindDense
	}
}

// buildPayload constructs one payload of the given shape, tagging its
// labels from the agent, and reports how many bytes carry taint.
func buildPayload(a *tracker.Agent, kind Kind, size int) (taint.Bytes, int64) {
	p := taint.MakeBytes(size)
	for i := range p.Data {
		p.Data[i] = byte(i)
	}
	switch kind {
	case KindClean:
		return p, 0
	case KindUniform:
		p.SetRange(0, size, a.Source("load.uniform", "u"))
		return p, int64(size)
	case KindSparse:
		// Four dirty islands of size/64 bytes each (1 KiB of a 64 KiB
		// payload, scaled down with the payload).
		isle := size / 64
		if isle == 0 {
			isle = 1
		}
		src := a.Source("load.sparse", "s")
		var tainted int64
		for off := 0; off+isle <= size && tainted < int64(4*isle); off += size / 4 {
			p.SetRange(off, off+isle, src)
			tainted += int64(isle)
		}
		return p, tainted
	default: // KindDense
		s1, s2 := a.Source("load.dense", "d1"), a.Source("load.dense", "d2")
		for i := 0; i+1 < size; i += 2 {
			p.SetLabel(i, s1)
			p.SetLabel(i+1, s2)
		}
		return p, int64(size)
	}
}

// Run executes one load run and blocks until every session has
// completed its ops (or the first error).
func Run(cfg Config) (Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Report{}, err
	}
	net := netsim.New()
	e := &engine{
		cfg:    cfg,
		net:    net,
		h:      &hist.Hist{},
		extra:  cfg.Hist,
		poller: netsim.NewPoller(),
		done:   make(chan struct{}),
	}
	e.remaining.Store(int64(cfg.Conns))

	// --- taint map: shared local store or a live simulated cluster ---
	var newAgent func(name string) *tracker.Agent
	if cfg.ClusterMembers > 0 {
		rf := 2
		if cfg.ClusterMembers < 2 {
			rf = 1
		}
		servers, ring, err := taintmap.StartSimCluster(net, cfg.ClusterMembers, rf)
		if err != nil {
			return Report{}, fmt.Errorf("load: cluster: %w", err)
		}
		defer func() {
			for _, s := range servers {
				s.Close()
			}
		}()
		newAgent = func(name string) *tracker.Agent {
			a := tracker.New(name, tracker.ModeDista)
			cc, err := taintmap.DialSimCluster(net, name, ring, a.Tree(), taintmap.ClusterOptions{})
			if err != nil {
				panic(fmt.Sprintf("load: dial cluster: %v", err))
			}
			return tracker.New(name, tracker.ModeDista, tracker.WithTaintMap(cc))
		}
	} else {
		store := taintmap.NewStore()
		newAgent = func(name string) *tracker.Agent {
			a := tracker.New(name, tracker.ModeDista)
			return tracker.New(name, tracker.ModeDista,
				tracker.WithTaintMap(taintmap.NewLocalClient(store, a.Tree())))
		}
	}

	// --- agent pool and shared per-(agent, kind) payloads ---
	agents := make([]*tracker.Agent, cfg.Agents)
	payloads := make([][4]taint.Bytes, cfg.Agents)
	for i := range agents {
		agents[i] = newAgent(fmt.Sprintf("lg%d", i))
		for k := 0; k < 4; k++ {
			payloads[i][k], _ = buildPayload(agents[i], Kind(k), cfg.Payload)
		}
	}

	// --- echo sinks ---
	sinkGoroutines, stopSinks, err := e.startSinks()
	if err != nil {
		return Report{}, err
	}
	defer stopSinks()

	// --- goroutine watermark sampler ---
	stopSampler := make(chan struct{})
	defer close(stopSampler)
	go func() {
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopSampler:
				return
			case <-tick.C:
				if g := int64(runtime.NumGoroutine()); g > e.peakGoro.Load() {
					e.peakGoro.Store(g)
				}
			}
		}
	}()

	// --- sessions ---
	sessions := make([]*session, cfg.Conns)
	dgIdx := 0 // datagram-session ordinal, maps sessions onto sink shards
	for i := 0; i < cfg.Conns; i++ {
		s := &session{
			id:      i,
			path:    pathOf(i, cfg.Paths),
			kind:    kindOf(i, cfg.Mix),
			agent:   agents[i%cfg.Agents],
			payload: payloads[i%cfg.Agents][kindOf(i, cfg.Mix)],
			rbuf:    taint.MakeBytes(cfg.Payload),
			opsLeft: cfg.Ops,
		}
		switch s.path {
		case PathDatagram:
			sock, err := net.ListenPacket(fmt.Sprintf("lc%d:1", i))
			if err != nil {
				return Report{}, fmt.Errorf("load: session %d: %w", i, err)
			}
			s.sock = sock
			s.dst = fmt.Sprintf("usink%d:1", dgIdx/udpSinkShard)
			dgIdx++
		default:
			conn, err := net.DialFrom(fmt.Sprintf("lg%d:c%d", i%cfg.Agents, i), "sink:1")
			if err != nil {
				return Report{}, fmt.Errorf("load: session %d: %w", i, err)
			}
			s.conn = conn
			if cfg.Adaptive {
				s.ep = instrument.NewAdaptiveEndpoint(s.agent, conn)
			} else {
				s.ep = instrument.NewEndpoint(s.agent, conn)
			}
			if s.path == PathVectored {
				s.initVectored()
			}
		}
		sessions[i] = s
	}

	// --- drive ---
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.worker()
		}()
	}
	// Fire op #1 and only then register each session with the poller:
	// registration arms the handle, and from that instant the session
	// belongs to whichever worker the echo's readiness wakes — the
	// setup loop must not touch it again.
	for _, s := range sessions {
		if err := e.writeOp(s); err != nil {
			e.fail(fmt.Errorf("load: session %d first op: %w", s.id, err))
			break
		}
		// Register disarmed, publish the handle, then arm: with auto-arm
		// the echo could be delivered — and the worker chase s.h — before
		// the assignment below lands.
		switch s.path {
		case PathDatagram:
			s.h = e.poller.RegisterUDP(s.sock, s)
		default:
			s.h = e.poller.RegisterConn(s.conn, s)
		}
		s.h.Rearm()
	}

	if g := int64(runtime.NumGoroutine()); g > e.peakGoro.Load() {
		e.peakGoro.Store(g)
	}
	<-e.done
	elapsed := time.Since(start)
	wg.Wait()
	for _, s := range sessions {
		s.close()
	}
	if e.err != nil {
		return Report{}, e.err
	}

	r := Report{
		Conns:          cfg.Conns,
		Ops:            e.ops.Load(),
		Bytes:          e.bytes.Load(),
		TaintBytes:     e.taintBytes.Load(),
		Elapsed:        elapsed,
		SinkGoroutines: sinkGoroutines,
		PeakGoroutines: int(e.peakGoro.Load()),
	}
	if q, ok := e.h.Quantile(0.50); ok {
		r.P50 = q
	}
	if q, ok := e.h.Quantile(0.99); ok {
		r.P99 = q
	}
	if q, ok := e.h.Quantile(0.999); ok {
		r.P999 = q
	}
	return r, nil
}

// countPath returns how many of the configured sessions use path p.
func (e *engine) countPath(p Path) int {
	n := 0
	for i := 0; i < e.cfg.Conns; i++ {
		if pathOf(i, e.cfg.Paths) == p {
			n++
		}
	}
	return n
}

// initVectored splits the session payload into two DirectBuffer halves
// for scatter/gather writes.
func (s *session) initVectored() {
	size := len(s.payload.Data)
	half := size / 2
	mk := func(from, to int) *jni.DirectBuffer {
		db := jni.NewDirectBuffer(to - from)
		copy(db.Data, s.payload.Data[from:to])
		src := s.payload.Slice(from, to)
		src.ForEachDirtyRun(func(rfrom, rto int, t taint.Taint) {
			db.B.SetRange(rfrom, rto, t)
		})
		return db
	}
	s.vsrc = []*jni.DirectBuffer{mk(0, half), mk(half, size)}
	s.vlen = []int{half, size - half}
}

// writeOp starts one op on s: stamp the clock and write the payload.
// The caller re-arms (or first registers) the poller handle afterwards.
func (e *engine) writeOp(s *session) error {
	s.started = time.Now()
	s.got = 0
	switch s.path {
	case PathDatagram:
		if e.cfg.Adaptive {
			if err := instrument.PacketSendAdaptive(s.agent, s.sock, s.payload, s.dst); err != nil {
				return err
			}
		} else {
			if err := instrument.PacketSend(s.agent, s.sock, s.payload, s.dst); err != nil {
				return err
			}
		}
	case PathVectored:
		if _, err := s.ep.WritevBuffers(s.vsrc, s.vlen); err != nil {
			return err
		}
	default:
		if err := s.ep.Write(s.payload); err != nil {
			return err
		}
	}
	return nil
}

// issue is writeOp plus re-arming the echo wakeup — the steady-state
// worker path.
func (e *engine) issue(s *session) error {
	if err := e.writeOp(s); err != nil {
		return err
	}
	s.h.Rearm()
	return nil
}

// complete consumes one op's echo. For streams it reads until the whole
// payload has decoded back — any blocking is bounded, because the
// remainder is already in flight in the closed loop. For datagrams one
// receive is one op.
func (e *engine) complete(s *session) error {
	want := len(s.payload.Data)
	switch s.path {
	case PathDatagram:
		n, _, err := instrument.PacketReceive(s.agent, s.sock, &s.rbuf)
		if err != nil {
			return err
		}
		s.got = n
	default:
		for s.got < want {
			n, err := s.ep.Read(&s.rbuf)
			if err != nil {
				return err
			}
			s.got += n
		}
	}
	if s.got != want {
		return fmt.Errorf("load: session %d echoed %d bytes, want %d", s.id, s.got, want)
	}
	lat := time.Since(s.started)
	e.h.Observe(lat)
	if e.extra != nil {
		e.extra.Observe(lat)
	}
	e.ops.Add(1)
	e.bytes.Add(int64(want))
	e.taintBytes.Add(taintSizeOf(s))
	return nil
}

// taintSizeOf is the tainted byte count one of s's ops carries.
func taintSizeOf(s *session) int64 {
	size := len(s.payload.Data)
	switch s.kind {
	case KindClean:
		return 0
	case KindSparse:
		isle := size / 64
		if isle == 0 {
			isle = 1
		}
		n := int64(0)
		for off := 0; off+isle <= size && n < int64(4*isle); off += size / 4 {
			n += int64(isle)
		}
		return n
	default:
		return int64(size)
	}
}

// worker drives sessions off the poller run queue until the run ends.
func (e *engine) worker() {
	for {
		h, ok := e.poller.Wait()
		if !ok {
			return
		}
		s := h.Tag.(*session)
		if err := e.complete(s); err != nil {
			e.fail(fmt.Errorf("load: session %d: %w", s.id, err))
			return
		}
		s.opsLeft--
		if s.opsLeft <= 0 {
			s.close()
			e.finishSession()
			continue
		}
		if err := e.issue(s); err != nil {
			e.fail(fmt.Errorf("load: session %d: %w", s.id, err))
			return
		}
	}
}

func (s *session) close() {
	if s.h != nil {
		s.h.Close()
		s.h = nil
	}
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
	if s.sock != nil {
		s.sock.Close()
		s.sock = nil
	}
}

// startSinks brings up the echo plane: a stream listener at sink:1
// drained either by a poller worker pool or (for the headroom
// comparison) a goroutine per connection, plus one UDP echo socket per
// shard of datagram sessions. It returns the sink's goroutine count and
// a stop function.
func (e *engine) startSinks() (goroutines int, stop func(), err error) {
	var closers []func()
	stop = func() {
		for _, c := range closers {
			c()
		}
	}

	streamConns := e.countPath(PathStream) + e.countPath(PathVectored)
	if streamConns > 0 {
		l, lerr := e.net.Listen("sink:1")
		if lerr != nil {
			return 0, stop, lerr
		}
		closers = append(closers, func() { l.Close() })
		if e.cfg.SinkGoroutinePerConn {
			goroutines += streamConns + 1
			go func() {
				for {
					c, err := l.Accept()
					if err != nil {
						return
					}
					go echoConn(c)
				}
			}()
		} else {
			sp := netsim.NewPoller()
			closers = append(closers, sp.Close)
			goroutines += e.cfg.SinkWorkers + 1
			go func() {
				for {
					c, err := l.Accept()
					if err != nil {
						return
					}
					sp.AddConn(c, c)
				}
			}()
			for w := 0; w < e.cfg.SinkWorkers; w++ {
				go func() {
					buf := make([]byte, 64<<10)
					for {
						h, ok := sp.Wait()
						if !ok {
							return
						}
						c := h.Tag.(*netsim.Conn)
						n, err := c.Read(buf)
						if err != nil {
							h.Close()
							c.Close()
							continue
						}
						if _, err := c.Write(buf[:n]); err != nil {
							h.Close()
							c.Close()
							continue
						}
						h.Rearm()
					}
				}()
			}
		}
	}

	dgramConns := e.countPath(PathDatagram)
	if dgramConns > 0 {
		shards := (dgramConns + udpSinkShard - 1) / udpSinkShard
		for j := 0; j < shards; j++ {
			sock, serr := e.net.ListenPacket(fmt.Sprintf("usink%d:1", j))
			if serr != nil {
				return goroutines, stop, serr
			}
			closers = append(closers, func() { sock.Close() })
			goroutines++
			go func(sock *netsim.UDPSocket) {
				buf := make([]byte, 128<<10)
				for {
					n, from, err := sock.ReceiveFrom(buf)
					if err != nil {
						return
					}
					if err := sock.SendTo(buf[:n], from); err != nil {
						return
					}
				}
			}(sock)
		}
	}
	return goroutines, stop, nil
}

// echoConn is the goroutine-per-connection sink body: park on read,
// echo, repeat — the pre-fabric shape whose goroutine bill the poller
// sink is measured against.
func echoConn(c *netsim.Conn) {
	buf := make([]byte, 64<<10)
	for {
		n, err := c.Read(buf)
		if err != nil {
			c.Close()
			return
		}
		if _, err := c.Write(buf[:n]); err != nil {
			c.Close()
			return
		}
	}
}
