package load

import (
	"testing"

	"dista/internal/bench/hist"
)

// TestRunSmall exercises every (path, kind) combination end to end:
// payloads must echo back byte- and label-intact through all three
// transports against the shared local store.
func TestRunSmall(t *testing.T) {
	var h hist.Hist
	r, err := Run(Config{Conns: 200, Ops: 4, Payload: 2048, Hist: &h})
	if err != nil {
		t.Fatal(err)
	}
	if r.Ops != 200*4 {
		t.Fatalf("ops = %d, want %d", r.Ops, 200*4)
	}
	if r.Bytes != 200*4*2048 {
		t.Fatalf("bytes = %d, want %d", r.Bytes, 200*4*2048)
	}
	if r.TaintBytes == 0 {
		t.Fatal("no tainted bytes carried — the mix should include tainted kinds")
	}
	if r.P50 <= 0 || r.P999 < r.P50 {
		t.Fatalf("quantiles implausible: p50=%v p999=%v", r.P50, r.P999)
	}
	if h.Count() != r.Ops {
		t.Fatalf("external hist got %d samples, want %d", h.Count(), r.Ops)
	}
}

// TestRunAdaptive runs the same shape over the tiering endpoints.
func TestRunAdaptive(t *testing.T) {
	r, err := Run(Config{Conns: 100, Ops: 3, Payload: 1024, Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Ops != 100*3 {
		t.Fatalf("ops = %d, want %d", r.Ops, 100*3)
	}
}

// TestRunCluster routes registrations and lookups through a live
// 3-member simulated taintmap cluster.
func TestRunCluster(t *testing.T) {
	r, err := Run(Config{Conns: 60, Ops: 2, Payload: 512, ClusterMembers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.Ops != 60*2 {
		t.Fatalf("ops = %d, want %d", r.Ops, 60*2)
	}
}

// TestRunGoroutinePerConnSink pins the comparison sink shape: its
// goroutine bill must scale with connections, the polled default's must
// not.
func TestRunGoroutinePerConnSink(t *testing.T) {
	polled, err := Run(Config{Conns: 300, Ops: 2, Payload: 512,
		Paths: PathMix{Stream: 100}})
	if err != nil {
		t.Fatal(err)
	}
	perConn, err := Run(Config{Conns: 300, Ops: 2, Payload: 512,
		Paths: PathMix{Stream: 100}, SinkGoroutinePerConn: true})
	if err != nil {
		t.Fatal(err)
	}
	if perConn.SinkGoroutines <= 300 {
		t.Fatalf("per-conn sink goroutines = %d, want > conns", perConn.SinkGoroutines)
	}
	if polled.SinkGoroutines >= perConn.SinkGoroutines/5 {
		t.Fatalf("polled sink goroutines = %d, want >=5x headroom vs %d",
			polled.SinkGoroutines, perConn.SinkGoroutines)
	}
}

// TestSoak50k is the PR 10 acceptance soak: 50,000 concurrent
// instrumented connections through the scheduler fabric, every payload
// echoed and decoded label-intact. Run under -race by `make soak-load`;
// the whole run multiplexes over a few dozen goroutines, which is the
// point — the race runtime's goroutine ceiling would kill a
// goroutine-per-connection design at a fraction of this fan-in.
func TestSoak50k(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping 50k-connection soak")
	}
	r, err := Run(Config{Conns: 50000, Ops: 2, Payload: 512})
	if err != nil {
		t.Fatal(err)
	}
	if r.Ops != 50000*2 {
		t.Fatalf("ops = %d, want %d", r.Ops, 50000*2)
	}
	if r.PeakGoroutines > 1000 {
		t.Fatalf("peak goroutines = %d — the fabric is supposed to multiplex, not spawn", r.PeakGoroutines)
	}
	t.Logf("%v", r)
}

// TestConfigValidation rejects malformed mixes.
func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("zero Conns accepted")
	}
	if _, err := Run(Config{Conns: 1, Mix: Mix{Clean: 50}}); err == nil {
		t.Fatal("mix not summing to 100 accepted")
	}
	if _, err := Run(Config{Conns: 1, Paths: PathMix{Stream: 150}}); err == nil {
		t.Fatal("path mix not summing to 100 accepted")
	}
}
