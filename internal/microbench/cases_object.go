package microbench

import (
	"dista/internal/core/taint"
	"dista/internal/jre"
)

// The 6 ObjectStream cases (Table II ids 17-22): objects with different
// field shapes crossing the wire through writeObject/readObject.

// textMessage is "an object with a long text String field" (§V-A).
type textMessage struct {
	ID   taint.Int64
	Text taint.String
}

func (m *textMessage) WriteTo(w *jre.DataOutputStream) error {
	if err := w.WriteInt64(m.ID); err != nil {
		return err
	}
	return w.WriteString32(m.Text)
}

func (m *textMessage) ReadFrom(r *jre.DataInputStream) error {
	id, err := r.ReadInt64()
	if err != nil {
		return err
	}
	m.ID = id
	m.Text, err = r.ReadString32()
	return err
}

// arrayMessage carries a large int array.
type arrayMessage struct {
	Vals  []int32
	Label taint.Taint
}

func (m *arrayMessage) WriteTo(w *jre.DataOutputStream) error {
	return w.WriteInt32Array(m.Vals, m.Label)
}

func (m *arrayMessage) ReadFrom(r *jre.DataInputStream) error {
	vals, lbl, err := r.ReadInt32Array()
	if err != nil {
		return err
	}
	m.Vals, m.Label = vals, lbl
	return nil
}

// nestedMessage nests a textMessage inside an envelope.
type nestedMessage struct {
	Seq   taint.Int32
	Inner textMessage
}

func (m *nestedMessage) WriteTo(w *jre.DataOutputStream) error {
	if err := w.WriteInt32(m.Seq); err != nil {
		return err
	}
	return m.Inner.WriteTo(w)
}

func (m *nestedMessage) ReadFrom(r *jre.DataInputStream) error {
	seq, err := r.ReadInt32()
	if err != nil {
		return err
	}
	m.Seq = seq
	return m.Inner.ReadFrom(r)
}

// bytesMessage carries a raw tainted blob.
type bytesMessage struct {
	Blob taint.Bytes
}

func (m *bytesMessage) WriteTo(w *jre.DataOutputStream) error {
	return w.WriteBytes32(m.Blob)
}

func (m *bytesMessage) ReadFrom(r *jre.DataInputStream) error {
	blob, err := r.ReadBytes32()
	if err != nil {
		return err
	}
	m.Blob = blob
	return nil
}

// mixedMessage has tainted and untainted fields of several types.
type mixedMessage struct {
	Name  taint.String
	Count taint.Int32
	Bulk  taint.Bytes
	Flag  bool
}

func (m *mixedMessage) WriteTo(w *jre.DataOutputStream) error {
	if err := w.WriteUTF(m.Name); err != nil {
		return err
	}
	if err := w.WriteInt32(m.Count); err != nil {
		return err
	}
	if err := w.WriteBytes32(m.Bulk); err != nil {
		return err
	}
	return w.WriteBool(m.Flag, taint.Taint{})
}

func (m *mixedMessage) ReadFrom(r *jre.DataInputStream) error {
	name, err := r.ReadUTF()
	if err != nil {
		return err
	}
	m.Name = name
	if m.Count, err = r.ReadInt32(); err != nil {
		return err
	}
	if m.Bulk, err = r.ReadBytes32(); err != nil {
		return err
	}
	m.Flag, _, err = r.ReadBool()
	return err
}

// objectStreams builds the object stream pair over buffered sockets.
func objectStreams(sock *jre.Socket) (*jre.ObjectOutputStream, *jre.ObjectInputStream, *jre.BufferedOutputStream) {
	bout := jre.NewBufferedOutputStream(sock.OutputStream())
	return jre.NewObjectOutputStream(bout),
		jre.NewObjectInputStream(jre.NewBufferedInputStream(sock.InputStream())),
		bout
}

// objectCase builds a case exchanging objects built from a payload.
// make constructs Node-side objects from the tainted payload; taintOf
// extracts the union taint of a received object for checking.
func objectCase(id int, name string, sizeDiv int,
	make func(data taint.Bytes) jre.Serializable,
	fresh func() jre.Serializable,
	taintOf func(obj jre.Serializable) taint.Taint,
) Case {
	return Case{
		ID:      id,
		Group:   "JRE Socket",
		Name:    name,
		SizeDiv: sizeDiv,
		Run: func(h *Harness) error {
			size := h.Size
			return h.tcpExchange(
				func(sock *jre.Socket) error { // Node2
					oout, oin, bout := objectStreams(sock)
					got := fresh()
					if err := oin.ReadObject(got); err != nil {
						return err
					}
					// Combine: payload taint of the received object plus
					// a fresh Data2 payload.
					combined := labelOnly(size, taintOf(got)).Append(h.Data2(size))
					if err := oout.WriteObject(make(combined)); err != nil {
						return err
					}
					return bout.Flush()
				},
				func(sock *jre.Socket) error { // Node1
					oout, oin, bout := objectStreams(sock)
					if err := oout.WriteObject(make(h.Data1(size))); err != nil {
						return err
					}
					if err := bout.Flush(); err != nil {
						return err
					}
					got := fresh()
					if err := oin.ReadObject(got); err != nil {
						return err
					}
					h.CheckTaints(taintOf(got))
					return nil
				},
			)
		},
	}
}

// objectCases returns the ObjectStream cases (ids 17-22).
func objectCases() []Case {
	return []Case{
		objectCase(17, "ObjectStream object with long text String field", 1,
			func(data taint.Bytes) jre.Serializable {
				return &textMessage{ID: taint.Int64{Value: 1}, Text: taint.StringOf(data)}
			},
			func() jre.Serializable { return &textMessage{} },
			func(obj jre.Serializable) taint.Taint { return obj.(*textMessage).Text.Label },
		),
		objectCase(18, "ObjectStream object with large int array field", 1,
			func(data taint.Bytes) jre.Serializable {
				return &arrayMessage{Vals: make([]int32, data.Len()/4+1), Label: data.Union()}
			},
			func() jre.Serializable { return &arrayMessage{} },
			func(obj jre.Serializable) taint.Taint { return obj.(*arrayMessage).Label },
		),
		objectCase(19, "ObjectStream nested object graph", 1,
			func(data taint.Bytes) jre.Serializable {
				return &nestedMessage{
					Seq:   taint.Int32{Value: 7},
					Inner: textMessage{Text: taint.StringOf(data)},
				}
			},
			func() jre.Serializable { return &nestedMessage{} },
			func(obj jre.Serializable) taint.Taint { return obj.(*nestedMessage).Inner.Text.Label },
		),
		objectCase(21, "ObjectStream mixed tainted/untainted fields", 1,
			func(data taint.Bytes) jre.Serializable {
				return &mixedMessage{
					Name:  taint.String{Value: "payload"},
					Count: taint.Int32{Value: int32(data.Len())},
					Bulk:  data,
					Flag:  true,
				}
			},
			func() jre.Serializable { return &mixedMessage{} },
			func(obj jre.Serializable) taint.Taint { return obj.(*mixedMessage).Bulk.Union() },
		),
		objectCase(22, "ObjectStream raw byte-blob field", 1,
			func(data taint.Bytes) jre.Serializable { return &bytesMessage{Blob: data} },
			func() jre.Serializable { return &bytesMessage{} },
			func(obj jre.Serializable) taint.Taint { return obj.(*bytesMessage).Blob.Union() },
		),
		manySmallObjectsCase(),
	}
}

// manySmallObjectsCase (id 20) streams a sequence of small objects.
func manySmallObjectsCase() Case {
	const piece = 1024
	return Case{
		ID:      20,
		Group:   "JRE Socket",
		Name:    "ObjectStream sequence of small objects",
		SizeDiv: 4,
		Run: func(h *Harness) error {
			size := h.Size
			sendAll := func(oout *jre.ObjectOutputStream, bout *jre.BufferedOutputStream, data taint.Bytes, w *jre.DataOutputStream) error {
				n := (data.Len() + piece - 1) / piece
				if err := w.WriteInt32(taint.Int32{Value: int32(n)}); err != nil {
					return err
				}
				for off := 0; off < data.Len(); off += piece {
					end := off + piece
					if end > data.Len() {
						end = data.Len()
					}
					if err := oout.WriteObject(&bytesMessage{Blob: data.Slice(off, end)}); err != nil {
						return err
					}
				}
				return bout.Flush()
			}
			recvAll := func(oin *jre.ObjectInputStream, r *jre.DataInputStream) (taint.Taint, error) {
				n, err := r.ReadInt32()
				if err != nil {
					return taint.Taint{}, err
				}
				var lbl taint.Taint
				for i := int32(0); i < n.Value; i++ {
					var m bytesMessage
					if err := oin.ReadObject(&m); err != nil {
						return taint.Taint{}, err
					}
					lbl = taint.Combine(lbl, m.Blob.Union())
				}
				return lbl, nil
			}
			return h.tcpExchange(
				func(sock *jre.Socket) error { // Node2
					bout := jre.NewBufferedOutputStream(sock.OutputStream())
					oout := jre.NewObjectOutputStream(bout)
					w := jre.NewDataOutputStream(bout)
					bin := jre.NewBufferedInputStream(sock.InputStream())
					oin := jre.NewObjectInputStream(bin)
					r := jre.NewDataInputStream(bin)
					lbl, err := recvAll(oin, r)
					if err != nil {
						return err
					}
					combined := labelOnly(size, lbl).Append(h.Data2(size))
					return sendAll(oout, bout, combined, w)
				},
				func(sock *jre.Socket) error { // Node1
					bout := jre.NewBufferedOutputStream(sock.OutputStream())
					oout := jre.NewObjectOutputStream(bout)
					w := jre.NewDataOutputStream(bout)
					bin := jre.NewBufferedInputStream(sock.InputStream())
					oin := jre.NewObjectInputStream(bin)
					r := jre.NewDataInputStream(bin)
					if err := sendAll(oout, bout, h.Data1(size), w); err != nil {
						return err
					}
					lbl, err := recvAll(oin, r)
					if err != nil {
						return err
					}
					h.CheckTaints(lbl)
					return nil
				},
			)
		},
	}
}
