package microbench

import (
	"encoding/binary"
	"fmt"
	"time"

	"dista/internal/core/taint"
	"dista/internal/httpmini"
	"dista/internal/jre"
	"dista/internal/minette"
)

// Cases 23-30: the non-Socket protocol groups of Table II.

// datagramChunk is the payload size per datagram in the UDP cases.
const datagramChunk = 32 << 10

// exchangeTimeout bounds the message-driven cases.
const exchangeTimeout = 30 * time.Second

// datagramCase (id 23) runs the Fig. 10 workload over DatagramSocket:
// a count-prefixed burst of datagrams each way.
func datagramCase() Case {
	return Case{
		ID:    23,
		Group: "JRE Datagram",
		Name:  "DatagramSocket send/receive byte array",
		Run: func(h *Harness) error {
			size := h.Size
			s1, err := jre.OpenDatagramSocket(h.Node1, "udp-node1:1")
			if err != nil {
				return err
			}
			defer s1.Close()
			s2, err := jre.OpenDatagramSocket(h.Node2, "udp-node2:1")
			if err != nil {
				return err
			}
			defer s2.Close()

			sendBurst := func(sock *jre.DatagramSocket, data taint.Bytes, dst string) error {
				count := (data.Len() + datagramChunk - 1) / datagramChunk
				hdr := taint.WrapBytes(binary.BigEndian.AppendUint32(nil, uint32(count)))
				if err := sock.Send(jre.NewDatagramPacket(hdr, dst)); err != nil {
					return err
				}
				for off := 0; off < data.Len(); off += datagramChunk {
					end := off + datagramChunk
					if end > data.Len() {
						end = data.Len()
					}
					if err := sock.Send(jre.NewDatagramPacket(data.Slice(off, end), dst)); err != nil {
						return err
					}
				}
				return nil
			}
			recvBurst := func(sock *jre.DatagramSocket) (taint.Bytes, error) {
				hdr := jre.NewReceivePacket(4)
				if err := sock.Receive(hdr); err != nil {
					return taint.Bytes{}, err
				}
				count := int(binary.BigEndian.Uint32(hdr.Buf.Data))
				var acc taint.Bytes
				for i := 0; i < count; i++ {
					pkt := jre.NewReceivePacket(datagramChunk)
					if err := sock.Receive(pkt); err != nil {
						return taint.Bytes{}, err
					}
					acc = acc.Append(pkt.Payload().Clone())
				}
				return acc, nil
			}

			errc := make(chan error, 1)
			go func() { // Node2
				got, err := recvBurst(s2)
				if err != nil {
					errc <- err
					return
				}
				errc <- sendBurst(s2, got.Append(h.Data2(size)), "udp-node1:1")
			}()

			if err := sendBurst(s1, h.Data1(size), "udp-node2:1"); err != nil {
				return err
			}
			combined, err := recvBurst(s1)
			if err != nil {
				return err
			}
			if err := <-errc; err != nil {
				return err
			}
			h.Check(combined)
			return nil
		},
	}
}

// channelWriteAll drains a buffer through a SocketChannel.
func channelWriteAll(ch *jre.SocketChannel, data taint.Bytes) error {
	buf := jre.WrapBuffer(data)
	for buf.HasRemaining() {
		if _, err := ch.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// channelReadAll reads exactly n bytes from a SocketChannel.
func channelReadAll(ch *jre.SocketChannel, n int) (taint.Bytes, error) {
	dst := jre.AllocateBuffer(n)
	for dst.Position() < n {
		if _, err := ch.Read(dst); err != nil {
			return taint.Bytes{}, err
		}
	}
	dst.Flip()
	return dst.Get(n), nil
}

// socketChannelCase (id 24) is the NIO TCP case.
func socketChannelCase() Case {
	return Case{
		ID:    24,
		Group: "JRE SocketChannel",
		Name:  "SocketChannel read/write ByteBuffer",
		Run: func(h *Harness) error {
			size := h.Size
			srv, err := jre.OpenServerSocketChannel(h.Node2, "nio-node2:1")
			if err != nil {
				return err
			}
			defer srv.Close()

			errc := make(chan error, 1)
			go func() { // Node2
				ch, err := srv.Accept()
				if err != nil {
					errc <- err
					return
				}
				defer ch.Close()
				got, err := channelReadAll(ch, size)
				if err != nil {
					errc <- err
					return
				}
				errc <- channelWriteAll(ch, got.Append(h.Data2(size)))
			}()

			ch, err := jre.OpenSocketChannel(h.Node1, "nio-node2:1")
			if err != nil {
				return err
			}
			defer ch.Close()
			if err := channelWriteAll(ch, h.Data1(size)); err != nil {
				return err
			}
			combined, err := channelReadAll(ch, 2*size)
			if err != nil {
				return err
			}
			if err := <-errc; err != nil {
				return err
			}
			h.Check(combined)
			return nil
		},
	}
}

// datagramChannelCase (id 25) is the NIO UDP case.
func datagramChannelCase() Case {
	return Case{
		ID:    25,
		Group: "JRE DatagramChannel",
		Name:  "DatagramChannel send/receive ByteBuffer",
		Run: func(h *Harness) error {
			size := h.Size
			c1, err := jre.OpenDatagramChannel(h.Node1, "dchan-node1:1")
			if err != nil {
				return err
			}
			defer c1.Close()
			c2, err := jre.OpenDatagramChannel(h.Node2, "dchan-node2:1")
			if err != nil {
				return err
			}
			defer c2.Close()

			sendBurst := func(c *jre.DatagramChannel, data taint.Bytes, dst string) error {
				count := (data.Len() + datagramChunk - 1) / datagramChunk
				hdr := jre.WrapBuffer(taint.WrapBytes(binary.BigEndian.AppendUint32(nil, uint32(count))))
				if _, err := c.Send(hdr, dst); err != nil {
					return err
				}
				for off := 0; off < data.Len(); off += datagramChunk {
					end := off + datagramChunk
					if end > data.Len() {
						end = data.Len()
					}
					if _, err := c.Send(jre.WrapBuffer(data.Slice(off, end)), dst); err != nil {
						return err
					}
				}
				return nil
			}
			recvBurst := func(c *jre.DatagramChannel) (taint.Bytes, error) {
				hdr := jre.AllocateBuffer(4)
				if _, err := c.Receive(hdr); err != nil {
					return taint.Bytes{}, err
				}
				hdr.Flip()
				count := int(binary.BigEndian.Uint32(hdr.Get(4).Data))
				var acc taint.Bytes
				for i := 0; i < count; i++ {
					buf := jre.AllocateBuffer(datagramChunk)
					if _, err := c.Receive(buf); err != nil {
						return taint.Bytes{}, err
					}
					buf.Flip()
					acc = acc.Append(buf.Get(buf.Remaining()))
				}
				return acc, nil
			}

			errc := make(chan error, 1)
			go func() { // Node2
				got, err := recvBurst(c2)
				if err != nil {
					errc <- err
					return
				}
				errc <- sendBurst(c2, got.Append(h.Data2(size)), "dchan-node1:1")
			}()
			if err := sendBurst(c1, h.Data1(size), "dchan-node2:1"); err != nil {
				return err
			}
			combined, err := recvBurst(c1)
			if err != nil {
				return err
			}
			if err := <-errc; err != nil {
				return err
			}
			h.Check(combined)
			return nil
		},
	}
}

// asyncChannelCase (id 26) is the AIO case.
func asyncChannelCase() Case {
	return Case{
		ID:    26,
		Group: "JRE AsyncSocketChannel",
		Name:  "AsynchronousSocketChannel read/write futures",
		Run: func(h *Harness) error {
			size := h.Size
			srv, err := jre.OpenAsyncServerSocketChannel(h.Node2, "aio-node2:1")
			if err != nil {
				return err
			}
			defer srv.Close()

			asyncReadAll := func(ch *jre.AsyncSocketChannel, n int) (taint.Bytes, error) {
				dst := jre.AllocateBuffer(n)
				for dst.Position() < n {
					if _, err := ch.Read(dst).Get(); err != nil {
						return taint.Bytes{}, err
					}
				}
				dst.Flip()
				return dst.Get(n), nil
			}
			asyncWriteAll := func(ch *jre.AsyncSocketChannel, data taint.Bytes) error {
				buf := jre.WrapBuffer(data)
				for buf.HasRemaining() {
					if _, err := ch.Write(buf).Get(); err != nil {
						return err
					}
				}
				return nil
			}

			errc := make(chan error, 1)
			go func() { // Node2
				ch, err := srv.Accept()
				if err != nil {
					errc <- err
					return
				}
				defer ch.Close()
				got, err := asyncReadAll(ch, size)
				if err != nil {
					errc <- err
					return
				}
				errc <- asyncWriteAll(ch, got.Append(h.Data2(size)))
			}()

			ch, err := jre.OpenAsyncSocketChannel(h.Node1, "aio-node2:1")
			if err != nil {
				return err
			}
			defer ch.Close()
			if err := asyncWriteAll(ch, h.Data1(size)); err != nil {
				return err
			}
			combined, err := asyncReadAll(ch, 2*size)
			if err != nil {
				return err
			}
			if err := <-errc; err != nil {
				return err
			}
			h.Check(combined)
			return nil
		},
	}
}

// httpCase (id 27) posts an HTML page body and checks the combined
// response.
func httpCase() Case {
	return Case{
		ID:    27,
		Group: "JRE HTTP",
		Name:  "HTTP POST HTML page, combined response",
		Run: func(h *Harness) error {
			size := h.Size
			srv, err := httpmini.Serve(h.Node2, "web-node2:80", func(r *httpmini.Request) *httpmini.Response {
				return &httpmini.Response{Status: 200, Body: r.Body.Append(h.Data2(size))}
			})
			if err != nil {
				return err
			}
			defer srv.Close()

			resp, err := httpmini.Post(h.Node1, "web-node2:80", "/page.html", h.Data1(size))
			if err != nil {
				return err
			}
			if resp.Status != 200 || resp.Body.Len() != 2*size {
				return fmt.Errorf("http response status %d body %d", resp.Status, resp.Body.Len())
			}
			h.Check(resp.Body)
			return nil
		},
	}
}

// minetteSocketCase (id 28) is the Netty Socket case: framed bytes
// through minette pipelines.
func minetteSocketCase() Case {
	return Case{
		ID:    28,
		Group: "Netty Socket",
		Name:  "minette framed byte channel (3rd-party TCP)",
		Run: func(h *Harness) error {
			size := h.Size
			server := minette.NewServerBootstrap(h.Node2, func() []minette.Handler {
				return []minette.Handler{&minette.LengthFieldCodec{}, combineHandler{h: h, size: size}}
			}, nil)
			if err := server.Bind("minette-node2:1"); err != nil {
				return err
			}
			defer server.Close()

			got := make(chan taint.Bytes, 1)
			client := minette.NewBootstrap(h.Node1, func() []minette.Handler {
				return []minette.Handler{&minette.LengthFieldCodec{}}
			}, func(_ *minette.Channel, msg any) {
				if b, ok := msg.(taint.Bytes); ok {
					got <- b
				}
			})
			ch, err := client.Connect("minette-node2:1")
			if err != nil {
				return err
			}
			defer ch.Close()
			if err := ch.Write(h.Data1(size)); err != nil {
				return err
			}
			select {
			case combined := <-got:
				h.Check(combined)
				return nil
			case <-time.After(exchangeTimeout):
				return fmt.Errorf("minette socket case timed out")
			}
		},
	}
}

// combineHandler appends Data2 to every inbound frame and echoes it.
type combineHandler struct {
	h    *Harness
	size int
}

func (c combineHandler) OnRead(ctx *minette.Context, msg any) error {
	frame, ok := msg.(taint.Bytes)
	if !ok {
		return fmt.Errorf("combine handler got %T", msg)
	}
	return ctx.Channel().Write(frame.Append(c.h.Data2(c.size)))
}

// minetteDatagramCase (id 29) is the Netty DatagramSocket case.
func minetteDatagramCase() Case {
	return Case{
		ID:    29,
		Group: "Netty DatagramSocket",
		Name:  "minette datagram endpoint (3rd-party UDP)",
		Run: func(h *Harness) error {
			size := h.Size
			if size > datagramChunk {
				size = datagramChunk // single-datagram exchange
			}
			var node2 *minette.DatagramEndpoint
			node2, err := minette.BindDatagram(h.Node2, "mdg-node2:1", func(from string, p taint.Bytes) {
				_ = node2.Send(p.Append(h.Data2(size)), from)
			})
			if err != nil {
				return err
			}
			defer node2.Close()

			got := make(chan taint.Bytes, 1)
			node1, err := minette.BindDatagram(h.Node1, "mdg-node1:1", func(_ string, p taint.Bytes) {
				got <- p
			})
			if err != nil {
				return err
			}
			defer node1.Close()

			if err := node1.Send(h.Data1(size), "mdg-node2:1"); err != nil {
				return err
			}
			select {
			case combined := <-got:
				h.Check(combined)
				return nil
			case <-time.After(exchangeTimeout):
				return fmt.Errorf("minette datagram case timed out")
			}
		},
	}
}

// minetteHTTPCase (id 30) is the Netty HTTP case.
func minetteHTTPCase() Case {
	return Case{
		ID:    30,
		Group: "Netty HTTP",
		Name:  "minette HTTP codec pipeline (3rd-party HTTP)",
		Run: func(h *Harness) error {
			size := h.Size
			server := minette.NewServerBootstrap(h.Node2, func() []minette.Handler {
				return []minette.Handler{&minette.HTTPServerCodec{}, httpCombine{h: h, size: size}}
			}, nil)
			if err := server.Bind("mweb-node2:80"); err != nil {
				return err
			}
			defer server.Close()

			got := make(chan *httpmini.Response, 1)
			client := minette.NewBootstrap(h.Node1, func() []minette.Handler {
				return []minette.Handler{&minette.HTTPClientCodec{}}
			}, func(_ *minette.Channel, msg any) {
				if r, ok := msg.(*httpmini.Response); ok {
					got <- r
				}
			})
			ch, err := client.Connect("mweb-node2:80")
			if err != nil {
				return err
			}
			defer ch.Close()
			req := &httpmini.Request{Method: "POST", Path: "/page.html", Body: h.Data1(size)}
			if err := ch.Write(req); err != nil {
				return err
			}
			select {
			case resp := <-got:
				if resp.Status != 200 {
					return fmt.Errorf("minette http status %d", resp.Status)
				}
				h.Check(resp.Body)
				return nil
			case <-time.After(exchangeTimeout):
				return fmt.Errorf("minette http case timed out")
			}
		},
	}
}

// httpCombine answers requests with body+Data2.
type httpCombine struct {
	h    *Harness
	size int
}

func (c httpCombine) OnRead(ctx *minette.Context, msg any) error {
	req, ok := msg.(*httpmini.Request)
	if !ok {
		return fmt.Errorf("http combine got %T", msg)
	}
	return ctx.Channel().Write(&httpmini.Response{
		Status: 200,
		Body:   req.Body.Append(c.h.Data2(c.size)),
	})
}
