package microbench

import (
	"fmt"

	"dista/internal/core/taint"
	"dista/internal/jre"
)

// The 22 "JRE Socket" cases of Table II: the same TCP socket exercised
// through the different stream classes (plain, buffered, data, object)
// and their different read/write methods.

// chunkSize is the write granularity of the chunked writer strategies.
const chunkSize = 4096

// writeWhole writes the payload in one call.
func writeWhole(out jre.OutputStream, data taint.Bytes) error {
	if err := out.Write(data); err != nil {
		return err
	}
	return out.Flush()
}

// writeChunks writes the payload in chunkSize pieces.
func writeChunks(out jre.OutputStream, data taint.Bytes) error {
	for off := 0; off < data.Len(); off += chunkSize {
		end := off + chunkSize
		if end > data.Len() {
			end = data.Len()
		}
		if err := out.Write(data.Slice(off, end)); err != nil {
			return err
		}
	}
	return out.Flush()
}

// singleByteWriter abstracts the two per-byte write APIs.
type singleByteWriter interface {
	jre.OutputStream
	WriteTaintedByte(b byte, t taint.Taint) error
}

// writeSingleBytes writes the payload one byte at a time (the
// OutputStream.write(int) path).
func writeSingleBytes(out singleByteWriter, data taint.Bytes) error {
	for i := 0; i < data.Len(); i++ {
		if err := out.WriteTaintedByte(data.Data[i], data.LabelAt(i)); err != nil {
			return err
		}
	}
	return out.Flush()
}

// byteStreamCase builds a case whose exchange is raw bytes through a
// wrapped stream pair: the server reads size bytes, appends Data2, and
// sends 2*size back.
func byteStreamCase(id int, name string, sizeDiv int,
	wrapOut func(*jre.Socket) jre.OutputStream,
	wrapIn func(*jre.Socket) jre.InputStream,
	write func(out jre.OutputStream, data taint.Bytes) error,
) Case {
	return Case{
		ID:      id,
		Group:   "JRE Socket",
		Name:    name,
		SizeDiv: sizeDiv,
		Run: func(h *Harness) error {
			size := h.Size
			return h.tcpExchange(
				func(sock *jre.Socket) error { // Node2
					in := wrapIn(sock)
					buf := taint.MakeBytes(size)
					if err := jre.ReadFull(in, &buf); err != nil {
						return err
					}
					combined := buf.Append(h.Data2(size))
					return write(wrapOut(sock), combined)
				},
				func(sock *jre.Socket) error { // Node1
					if err := write(wrapOut(sock), h.Data1(size)); err != nil {
						return err
					}
					buf := taint.MakeBytes(2 * size)
					if err := jre.ReadFull(wrapIn(sock), &buf); err != nil {
						return err
					}
					h.Check(buf)
					return nil
				},
			)
		},
	}
}

func plainOut(s *jre.Socket) jre.OutputStream { return s.OutputStream() }
func plainIn(s *jre.Socket) jre.InputStream   { return s.InputStream() }

func bufferedOut(s *jre.Socket) jre.OutputStream {
	return jre.NewBufferedOutputStream(s.OutputStream())
}

func bufferedIn(s *jre.Socket) jre.InputStream {
	return jre.NewBufferedInputStream(s.InputStream())
}

func smallBufferedOut(s *jre.Socket) jre.OutputStream {
	return jre.NewBufferedOutputStreamSize(s.OutputStream(), 512)
}

func smallBufferedIn(s *jre.Socket) jre.InputStream {
	return jre.NewBufferedInputStreamSize(s.InputStream(), 512)
}

// dataStreamCase builds a case whose exchange is typed values through
// DataOutputStream/DataInputStream. send transmits the payload; recv
// reads it back as bytes-equivalent for checking.
func dataStreamCase(id int, name string, sizeDiv int,
	send func(w *jre.DataOutputStream, data taint.Bytes) error,
	recv func(r *jre.DataInputStream, size int) (taint.Bytes, error),
) Case {
	return Case{
		ID:      id,
		Group:   "JRE Socket",
		Name:    name,
		SizeDiv: sizeDiv,
		Run: func(h *Harness) error {
			size := h.Size
			return h.tcpExchange(
				func(sock *jre.Socket) error { // Node2
					r := jre.NewDataInputStream(jre.NewBufferedInputStream(sock.InputStream()))
					w := jre.NewDataOutputStream(jre.NewBufferedOutputStream(sock.OutputStream()))
					got, err := recv(r, size)
					if err != nil {
						return err
					}
					return send(w, got.Append(h.Data2(size)))
				},
				func(sock *jre.Socket) error { // Node1
					w := jre.NewDataOutputStream(jre.NewBufferedOutputStream(sock.OutputStream()))
					r := jre.NewDataInputStream(jre.NewBufferedInputStream(sock.InputStream()))
					if err := send(w, h.Data1(size)); err != nil {
						return err
					}
					got, err := recv(r, 2*size)
					if err != nil {
						return err
					}
					h.Check(got)
					return nil
				},
			)
		},
	}
}

// socketCases returns the 22 JRE Socket cases.
func socketCases() []Case {
	cases := []Case{
		// Plain stream I/O.
		byteStreamCase(1, "OutputStream.write(byte[]) whole array", 1, plainOut, plainIn, writeWhole),
		byteStreamCase(2, "OutputStream.write(byte[]) 4KiB chunks", 1, plainOut, plainIn, writeChunks),
		byteStreamCase(3, "OutputStream.write(int) single bytes", 64, plainOut, plainIn,
			func(out jre.OutputStream, data taint.Bytes) error {
				return writeSingleBytes(out.(*jre.SocketOutputStream), data)
			}),

		// Buffered stream I/O.
		byteStreamCase(4, "BufferedOutputStream.write(byte[]) whole array", 1, bufferedOut, bufferedIn, writeWhole),
		byteStreamCase(5, "BufferedOutputStream.write(byte[]) 4KiB chunks", 1, bufferedOut, bufferedIn, writeChunks),
		byteStreamCase(6, "BufferedOutputStream.write(int) single bytes", 16, bufferedOut, bufferedIn,
			func(out jre.OutputStream, data taint.Bytes) error {
				return writeSingleBytes(out.(*jre.BufferedOutputStream), data)
			}),
		byteStreamCase(7, "BufferedOutputStream with 512B buffer", 1, smallBufferedOut, smallBufferedIn, writeChunks),

		// Data stream I/O.
		dataStreamCase(8, "DataOutputStream.writeInt int array", 1,
			func(w *jre.DataOutputStream, data taint.Bytes) error {
				vals := make([]int32, data.Len()/4+1)
				return errJoin(w.WriteInt32Array(vals, data.Union()), w.Flush())
			},
			func(r *jre.DataInputStream, size int) (taint.Bytes, error) {
				_, lbl, err := r.ReadInt32Array()
				if err != nil {
					return taint.Bytes{}, err
				}
				return labelOnly(size, lbl), nil
			}),
		dataStreamCase(9, "DataOutputStream.writeLong sequence", 2,
			func(w *jre.DataOutputStream, data taint.Bytes) error {
				lbl := data.Union()
				n := data.Len() / 8
				if err := w.WriteInt32(taint.Int32{Value: int32(n)}); err != nil {
					return err
				}
				for i := 0; i < n; i++ {
					if err := w.WriteInt64(taint.Int64{Value: int64(i), Label: lbl}); err != nil {
						return err
					}
				}
				return w.Flush()
			},
			func(r *jre.DataInputStream, size int) (taint.Bytes, error) {
				n, err := r.ReadInt32()
				if err != nil {
					return taint.Bytes{}, err
				}
				var lbl taint.Taint
				for i := int32(0); i < n.Value; i++ {
					v, err := r.ReadInt64()
					if err != nil {
						return taint.Bytes{}, err
					}
					lbl = taint.Combine(lbl, v.Label)
				}
				return labelOnly(size, lbl), nil
			}),
		dataStreamCase(10, "DataOutputStream.writeUTF 32KiB strings", 1,
			func(w *jre.DataOutputStream, data taint.Bytes) error {
				const piece = 32 << 10
				if err := w.WriteInt32(taint.Int32{Value: int32((data.Len() + piece - 1) / piece)}); err != nil {
					return err
				}
				for off := 0; off < data.Len(); off += piece {
					end := off + piece
					if end > data.Len() {
						end = data.Len()
					}
					if err := w.WriteUTF(taint.StringOf(data.Slice(off, end))); err != nil {
						return err
					}
				}
				return w.Flush()
			},
			func(r *jre.DataInputStream, size int) (taint.Bytes, error) {
				n, err := r.ReadInt32()
				if err != nil {
					return taint.Bytes{}, err
				}
				var acc taint.Bytes
				for i := int32(0); i < n.Value; i++ {
					s, err := r.ReadUTF()
					if err != nil {
						return taint.Bytes{}, err
					}
					acc = acc.Append(s.Bytes())
				}
				return acc, nil
			}),
		dataStreamCase(11, "DataOutputStream writeString32 long text", 1,
			func(w *jre.DataOutputStream, data taint.Bytes) error {
				return errJoin(w.WriteString32(taint.StringOf(data)), w.Flush())
			},
			func(r *jre.DataInputStream, _ int) (taint.Bytes, error) {
				s, err := r.ReadString32()
				if err != nil {
					return taint.Bytes{}, err
				}
				return s.Bytes(), nil
			}),
		dataStreamCase(12, "DataOutputStream writeBytes32 blob", 1,
			func(w *jre.DataOutputStream, data taint.Bytes) error {
				return errJoin(w.WriteBytes32(data), w.Flush())
			},
			func(r *jre.DataInputStream, _ int) (taint.Bytes, error) {
				return r.ReadBytes32()
			}),
		dataStreamCase(13, "DataOutputStream.writeDouble sequence", 2,
			func(w *jre.DataOutputStream, data taint.Bytes) error {
				lbl := data.Union()
				n := data.Len() / 8
				if err := w.WriteInt32(taint.Int32{Value: int32(n)}); err != nil {
					return err
				}
				for i := 0; i < n; i++ {
					if err := w.WriteFloat64(float64(i)/3, lbl); err != nil {
						return err
					}
				}
				return w.Flush()
			},
			func(r *jre.DataInputStream, size int) (taint.Bytes, error) {
				n, err := r.ReadInt32()
				if err != nil {
					return taint.Bytes{}, err
				}
				var lbl taint.Taint
				for i := int32(0); i < n.Value; i++ {
					_, t, err := r.ReadFloat64()
					if err != nil {
						return taint.Bytes{}, err
					}
					lbl = taint.Combine(lbl, t)
				}
				return labelOnly(size, lbl), nil
			}),
		dataStreamCase(14, "DataOutputStream mixed primitive record", 4,
			func(w *jre.DataOutputStream, data taint.Bytes) error {
				lbl := data.Union()
				n := data.Len() / 16
				if err := w.WriteInt32(taint.Int32{Value: int32(n)}); err != nil {
					return err
				}
				for i := 0; i < n; i++ {
					if err := errJoin(
						w.WriteInt32(taint.Int32{Value: int32(i), Label: lbl}),
						w.WriteInt64(taint.Int64{Value: int64(i)}),
						w.WriteBool(i%2 == 0, lbl),
					); err != nil {
						return err
					}
				}
				return w.Flush()
			},
			func(r *jre.DataInputStream, size int) (taint.Bytes, error) {
				n, err := r.ReadInt32()
				if err != nil {
					return taint.Bytes{}, err
				}
				var lbl taint.Taint
				for i := int32(0); i < n.Value; i++ {
					v, err := r.ReadInt32()
					if err != nil {
						return taint.Bytes{}, err
					}
					if _, err := r.ReadInt64(); err != nil {
						return taint.Bytes{}, err
					}
					_, bt, err := r.ReadBool()
					if err != nil {
						return taint.Bytes{}, err
					}
					lbl = taint.CombineAll(lbl, v.Label, bt)
				}
				return labelOnly(size, lbl), nil
			}),
		dataStreamCase(15, "DataOutputStream.writeShort sequence", 4,
			func(w *jre.DataOutputStream, data taint.Bytes) error {
				lbl := data.Union()
				n := data.Len() / 2
				if err := w.WriteInt32(taint.Int32{Value: int32(n)}); err != nil {
					return err
				}
				for i := 0; i < n; i++ {
					if err := w.WriteInt16(int16(i), lbl); err != nil {
						return err
					}
				}
				return w.Flush()
			},
			func(r *jre.DataInputStream, size int) (taint.Bytes, error) {
				n, err := r.ReadInt32()
				if err != nil {
					return taint.Bytes{}, err
				}
				var lbl taint.Taint
				for i := int32(0); i < n.Value; i++ {
					_, t, err := r.ReadInt16()
					if err != nil {
						return taint.Bytes{}, err
					}
					lbl = taint.Combine(lbl, t)
				}
				return labelOnly(size, lbl), nil
			}),
		dataStreamCase(16, "DataOutputStream.writeBoolean sequence", 8,
			func(w *jre.DataOutputStream, data taint.Bytes) error {
				lbl := data.Union()
				n := data.Len()
				if err := w.WriteInt32(taint.Int32{Value: int32(n)}); err != nil {
					return err
				}
				for i := 0; i < n; i++ {
					if err := w.WriteBool(i%3 == 0, lbl); err != nil {
						return err
					}
				}
				return w.Flush()
			},
			func(r *jre.DataInputStream, size int) (taint.Bytes, error) {
				n, err := r.ReadInt32()
				if err != nil {
					return taint.Bytes{}, err
				}
				var lbl taint.Taint
				for i := int32(0); i < n.Value; i++ {
					_, t, err := r.ReadBool()
					if err != nil {
						return taint.Bytes{}, err
					}
					lbl = taint.Combine(lbl, t)
				}
				return labelOnly(size, lbl), nil
			}),
	}
	cases = append(cases, objectCases()...)
	return cases
}

// labelOnly reconstructs a checkable byte payload carrying lbl; used by
// value-typed cases where the data content is regenerated.
func labelOnly(size int, lbl taint.Taint) taint.Bytes {
	b := taint.WrapBytes(make([]byte, size))
	if !lbl.Empty() {
		b.TaintAll(lbl)
	}
	return b
}

// errJoin returns the first non-nil error.
func errJoin(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ensure fmt stays referenced when cases produce no dynamic errors.
var _ = fmt.Sprintf
