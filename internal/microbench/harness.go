// Package microbench implements the paper's micro benchmark (DSN'22
// §V-A, Table II): 30 test cases covering the commonly used Java
// network-communication APIs and protocols, all running the Figure 10
// workload — Node1 sends Data1 to Node2; Node2 combines it with Data2
// and sends the result back; Node1 checks the received data at the
// check() sink point. With DisTA enabled, check() must observe exactly
// the two taints of Data1 and Data2.
package microbench

import (
	"fmt"
	"sync"

	"dista/internal/core/taint"
	"dista/internal/core/tracker"
	"dista/internal/jre"
	"dista/internal/netsim"
	"dista/internal/taintmap"
)

// Source and sink descriptors of the micro workload.
const (
	SourceData1 = "micro#data1"
	SourceData2 = "micro#data2"
	SinkCheck   = "micro#check"
)

// Case is one Table II row: a protocol/API combination with its
// workload implementation.
type Case struct {
	ID      int    // 1-based Table II position
	Group   string // protocol group, e.g. "JRE Socket"
	Name    string // specific API exercised
	SizeDiv int    // divide the harness payload size (byte-at-a-time cases)
	Run     func(h *Harness) error
}

// Harness is the two-node rig a case runs on.
type Harness struct {
	Net   *netsim.Network
	Store *taintmap.Store
	Node1 *jre.Env
	Node2 *jre.Env
	Size  int // payload bytes for Data1 (Data2 matches)

	addrSeq int
}

// NewHarness builds a fresh two-node rig in the given mode with the
// given payload size.
func NewHarness(mode tracker.Mode, size int) *Harness {
	net := netsim.New()
	store := taintmap.NewStore()
	mk := func(name string) *jre.Env {
		a := tracker.New(name, mode)
		a = tracker.New(name, mode, tracker.WithTaintMap(taintmap.NewLocalClient(store, a.Tree())))
		return jre.NewEnv(net, a)
	}
	return &Harness{
		Net:   net,
		Store: store,
		Node1: mk("node1"),
		Node2: mk("node2"),
		Size:  size,
	}
}

// Mode returns the rig's tracking mode.
func (h *Harness) Mode() tracker.Mode { return h.Node1.Agent.Mode() }

// addr returns a unique address for this run.
func (h *Harness) addr() string {
	h.addrSeq++
	return fmt.Sprintf("node2:%d", h.addrSeq)
}

// Data1 builds Node1's payload: size bytes tainted as Data1.
func (h *Harness) Data1(size int) taint.Bytes {
	return h.payload(h.Node1, SourceData1, "Data1", size, 'x')
}

// Data2 builds Node2's payload: size bytes tainted as Data2.
func (h *Harness) Data2(size int) taint.Bytes {
	return h.payload(h.Node2, SourceData2, "Data2", size, 'y')
}

func (h *Harness) payload(env *jre.Env, desc, tag string, size int, fill byte) taint.Bytes {
	raw := make([]byte, size)
	for i := range raw {
		raw[i] = fill
	}
	b := taint.WrapBytes(raw)
	if t := env.Agent.Source(desc, tag); !t.Empty() {
		b.TaintAll(t)
	}
	return b
}

// Data1Taint returns just the Data1 source taint for value-typed cases.
func (h *Harness) Data1Taint() taint.Taint { return h.Node1.Agent.Source(SourceData1, "Data1") }

// Data2Taint returns just the Data2 source taint.
func (h *Harness) Data2Taint() taint.Taint { return h.Node2.Agent.Source(SourceData2, "Data2") }

// Check runs Node1's check() sink over the final combined bytes.
func (h *Harness) Check(b taint.Bytes) {
	h.Node1.Agent.CheckSinkBytes(SinkCheck, b)
}

// CheckTaints runs the sink over explicit value taints.
func (h *Harness) CheckTaints(ts ...taint.Taint) {
	h.Node1.Agent.CheckSink(SinkCheck, ts...)
}

// SinkTags returns the sorted tag values check() observed — the RQ1
// comparison quantity (expected: ["Data1","Data2"] under dista).
func (h *Harness) SinkTags() []string {
	return h.Node1.Agent.SinkTagValues(SinkCheck)
}

// tcpExchange wires the standard two-node exchange: server runs Node2's
// side on the accepted socket; client runs Node1's side on the dialed
// socket. Both errors are surfaced.
func (h *Harness) tcpExchange(server func(*jre.Socket) error, client func(*jre.Socket) error) error {
	addr := h.addr()
	ss, err := jre.ListenSocket(h.Node2, addr)
	if err != nil {
		return err
	}
	defer ss.Close()

	var (
		wg        sync.WaitGroup
		serverErr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		sock, err := ss.Accept()
		if err != nil {
			serverErr = err
			return
		}
		defer sock.Close()
		serverErr = server(sock)
	}()

	sock, err := jre.DialSocket(h.Node1, addr)
	if err != nil {
		return err
	}
	clientErr := client(sock)
	sock.Close()
	wg.Wait()
	if serverErr != nil {
		return fmt.Errorf("microbench server: %w", serverErr)
	}
	if clientErr != nil {
		return fmt.Errorf("microbench client: %w", clientErr)
	}
	return nil
}

// RunCase executes one case on a fresh harness and returns it for
// inspection.
func RunCase(c Case, mode tracker.Mode, size int) (*Harness, error) {
	if c.SizeDiv > 1 {
		size /= c.SizeDiv
		if size == 0 {
			size = 1
		}
	}
	h := NewHarness(mode, size)
	if err := c.Run(h); err != nil {
		return nil, fmt.Errorf("case %d (%s / %s): %w", c.ID, c.Group, c.Name, err)
	}
	return h, nil
}
