package microbench

import (
	"reflect"
	"testing"

	"dista/internal/core/tracker"
)

// testSize keeps the integration runs fast; the bench harness scales up.
const testSize = 32 << 10

// TestMicroCaseInventory checks the Table II shape (experiment E2): 30
// cases, 22 of them JRE Socket, one group per row of the table.
func TestMicroCaseInventory(t *testing.T) {
	cases := Cases()
	if len(cases) != 30 {
		t.Fatalf("got %d cases, Table II has 30", len(cases))
	}
	seen := make(map[int]bool)
	for i, c := range cases {
		if c.ID != i+1 {
			t.Fatalf("case %d has id %d; ids must be 1..30 in order", i, c.ID)
		}
		if seen[c.ID] {
			t.Fatalf("duplicate id %d", c.ID)
		}
		seen[c.ID] = true
		if c.Name == "" || c.Group == "" || c.Run == nil {
			t.Fatalf("case %d is incomplete: %+v", c.ID, c)
		}
	}
	want := []GroupInfo{
		{Name: "JRE Socket", Count: 22},
		{Name: "JRE Datagram", Count: 1},
		{Name: "JRE SocketChannel", Count: 1},
		{Name: "JRE DatagramChannel", Count: 1},
		{Name: "JRE AsyncSocketChannel", Count: 1},
		{Name: "JRE HTTP", Count: 1},
		{Name: "Netty Socket", Count: 1},
		{Name: "Netty DatagramSocket", Count: 1},
		{Name: "Netty HTTP", Count: 1},
	}
	if got := Groups(); !reflect.DeepEqual(got, want) {
		t.Fatalf("groups = %v, want %v", got, want)
	}
}

func TestCaseByID(t *testing.T) {
	c, ok := CaseByID(27)
	if !ok || c.Group != "JRE HTTP" {
		t.Fatalf("CaseByID(27) = %+v, %v", c, ok)
	}
	if _, ok := CaseByID(99); ok {
		t.Fatal("unknown id must return false")
	}
}

// TestAllCasesDistaSoundAndPrecise is the RQ1 check (experiment E3)
// over the whole micro benchmark: under DisTA, check() observes exactly
// {Data1, Data2} — nothing dropped (soundness), nothing extra
// (precision).
func TestAllCasesDistaSoundAndPrecise(t *testing.T) {
	for _, c := range Cases() {
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			h, err := RunCase(c, tracker.ModeDista, testSize)
			if err != nil {
				t.Fatal(err)
			}
			want := []string{"Data1", "Data2"}
			if got := h.SinkTags(); !reflect.DeepEqual(got, want) {
				t.Fatalf("sink tags = %v, want %v", got, want)
			}
		})
	}
}

// TestAllCasesPhosphorLosesTaints confirms the baseline's limitation on
// every case: intra-node-only tracking never reproduces the correct
// {Data1, Data2} answer at check(). Most cases observe nothing (the
// sender's taint is dropped at the JNI boundary); the NIO-based minette
// cases observe a *wrong* stale taint instead, because the reused
// direct buffer keeps the labels of the previous write — exactly the
// "taint of the parameter" flow of Fig. 4.
func TestAllCasesPhosphorLosesTaints(t *testing.T) {
	want := []string{"Data1", "Data2"}
	for _, c := range Cases() {
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			h, err := RunCase(c, tracker.ModePhosphor, testSize)
			if err != nil {
				t.Fatal(err)
			}
			if got := h.SinkTags(); reflect.DeepEqual(got, want) {
				t.Fatalf("phosphor produced the correct taints %v; the baseline must be unsound here", got)
			}
			// Data2 is generated on Node2 and can only reach Node1's sink
			// over the network; pure intra-node tracking can never carry it.
			for _, tag := range h.SinkTags() {
				if tag == "Data2" {
					t.Fatal("phosphor mode transported Node2's taint across the wire")
				}
			}
		})
	}
}

// TestAllCasesOffMode confirms every case runs cleanly untracked.
func TestAllCasesOffMode(t *testing.T) {
	for _, c := range Cases() {
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			h, err := RunCase(c, tracker.ModeOff, testSize)
			if err != nil {
				t.Fatal(err)
			}
			if got := h.SinkTags(); len(got) != 0 {
				t.Fatalf("off-mode sink tags = %v", got)
			}
		})
	}
}

// TestWireOverheadFactor is experiment E7 on a stream case: the dista
// wire volume is 5x the payload volume.
func TestWireOverheadFactor(t *testing.T) {
	c, _ := CaseByID(1)
	h, err := RunCase(c, tracker.ModeDista, testSize)
	if err != nil {
		t.Fatal(err)
	}
	data1, wire1 := h.Node1.Agent.Traffic()
	data2, wire2 := h.Node2.Agent.Traffic()
	data, wireBytes := data1+data2, wire1+wire2
	if data == 0 {
		t.Fatal("no traffic recorded")
	}
	// Tainted traffic pays exactly the 5x group factor of §V-F; the
	// framed codec adds only the stream magic per connection and one
	// 5-byte header per write, so the measured factor sits just above 5.
	if factor := float64(wireBytes) / float64(data); factor < 5.0 || factor > 5.01 {
		t.Fatalf("wire factor = %.4f, want 5.0 plus constant framing (§V-F)", factor)
	}

	// The off run keeps the factor at 1.
	hOff, err := RunCase(c, tracker.ModeOff, testSize)
	if err != nil {
		t.Fatal(err)
	}
	dOff, wOff := hOff.Node1.Agent.Traffic()
	if dOff != wOff {
		t.Fatalf("off-mode traffic %d/%d, want equal", dOff, wOff)
	}
}

// TestGlobalTaintCountSmallForSDT mirrors the §V-F observation that the
// micro/SDT style workloads register very few global taints (1-6).
func TestGlobalTaintCountSmallForSDT(t *testing.T) {
	c, _ := CaseByID(1)
	h, err := RunCase(c, tracker.ModeDista, testSize)
	if err != nil {
		t.Fatal(err)
	}
	n := h.Store.Stats().GlobalTaints
	if n < 1 || n > 6 {
		t.Fatalf("global taints = %d, want 1..6 like the paper's SDT scenarios", n)
	}
}

// TestSizeDivApplies checks the byte-at-a-time cases shrink their
// payload rather than run size writes.
func TestSizeDivApplies(t *testing.T) {
	c, _ := CaseByID(3)
	if c.SizeDiv <= 1 {
		t.Fatal("single-byte case must declare a size divisor")
	}
	h, err := RunCase(c, tracker.ModeDista, 64*64)
	if err != nil {
		t.Fatal(err)
	}
	if h.Size != 64 {
		t.Fatalf("harness size = %d, want 64", h.Size)
	}
}

func TestHarnessPayloads(t *testing.T) {
	h := NewHarness(tracker.ModeDista, 8)
	d1 := h.Data1(8)
	d2 := h.Data2(8)
	if d1.Len() != 8 || d2.Len() != 8 {
		t.Fatalf("sizes %d/%d", d1.Len(), d2.Len())
	}
	if !d1.Union().Has("Data1") || !d2.Union().Has("Data2") {
		t.Fatal("payloads must carry their source tags")
	}
	if d1.Data[0] == d2.Data[0] {
		t.Fatal("payload fill patterns must differ")
	}
	// Off-mode payloads stay clean.
	off := NewHarness(tracker.ModeOff, 8)
	if off.Data1(8).HasShadow() {
		t.Fatal("off-mode payload must be shadow-free")
	}
}

func TestHarnessCheckTaints(t *testing.T) {
	h := NewHarness(tracker.ModeDista, 4)
	h.CheckTaints(h.Data1Taint(), h.Data2Taint())
	want := []string{"Data1", "Data2"}
	if got := h.SinkTags(); !reflect.DeepEqual(got, want) {
		t.Fatalf("tags = %v", got)
	}
}
