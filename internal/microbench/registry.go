package microbench

import "sort"

// Cases returns all 30 micro-benchmark cases in Table II order.
func Cases() []Case {
	cases := socketCases()
	cases = append(cases,
		datagramCase(),
		socketChannelCase(),
		datagramChannelCase(),
		asyncChannelCase(),
		httpCase(),
		minetteSocketCase(),
		minetteDatagramCase(),
		minetteHTTPCase(),
	)
	sort.Slice(cases, func(i, j int) bool { return cases[i].ID < cases[j].ID })
	return cases
}

// GroupInfo is one protocol group of Table II with its case count.
type GroupInfo struct {
	Name  string
	Count int
}

// Groups returns the protocol groups in Table II order with their case
// counts.
func Groups() []GroupInfo {
	var order []string
	counts := make(map[string]int)
	for _, c := range Cases() {
		if counts[c.Group] == 0 {
			order = append(order, c.Group)
		}
		counts[c.Group]++
	}
	out := make([]GroupInfo, len(order))
	for i, g := range order {
		out[i] = GroupInfo{Name: g, Count: counts[g]}
	}
	return out
}

// CaseByID returns the case with the given Table II id, or false.
func CaseByID(id int) (Case, bool) {
	for _, c := range Cases() {
		if c.ID == id {
			return c, true
		}
	}
	return Case{}, false
}
