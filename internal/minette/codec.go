package minette

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dista/internal/core/taint"
	"dista/internal/httpmini"
)

// LengthFieldCodec frames messages with a 4-byte big-endian length
// prefix (Netty's LengthFieldBasedFrameDecoder + LengthFieldPrepender).
// Inbound it reassembles frames from arbitrary chunks and fires one
// taint.Bytes per frame; outbound it prepends the length.
type LengthFieldCodec struct {
	acc taint.Bytes
}

var (
	_ InboundHandler  = (*LengthFieldCodec)(nil)
	_ OutboundHandler = (*LengthFieldCodec)(nil)
)

// maxFrameLen guards against corrupt length prefixes.
const maxFrameLen = 64 << 20

// OnRead implements InboundHandler.
func (c *LengthFieldCodec) OnRead(ctx *Context, msg any) error {
	chunk, ok := msg.(taint.Bytes)
	if !ok {
		return fmt.Errorf("minette: length codec got %T", msg)
	}
	c.acc = c.acc.Append(chunk)
	for c.acc.Len() >= 4 {
		n := int(binary.BigEndian.Uint32(c.acc.Data))
		if n < 0 || n > maxFrameLen {
			return errors.New("minette: corrupt frame length")
		}
		if c.acc.Len() < 4+n {
			break
		}
		frame := c.acc.Slice(4, 4+n).Clone()
		c.acc = c.acc.Slice(4+n, c.acc.Len())
		if err := ctx.FireRead(frame); err != nil {
			return err
		}
	}
	return nil
}

// OnWrite implements OutboundHandler.
func (c *LengthFieldCodec) OnWrite(ctx *Context, msg any) error {
	b, ok := msg.(taint.Bytes)
	if !ok {
		return fmt.Errorf("minette: length codec cannot encode %T", msg)
	}
	hdr := taint.WrapBytes(binary.BigEndian.AppendUint32(nil, uint32(b.Len())))
	return ctx.Send(hdr.Append(b))
}

// StringCodec converts between taint.String messages and framed bytes;
// stack it above a LengthFieldCodec.
type StringCodec struct{}

var (
	_ InboundHandler  = StringCodec{}
	_ OutboundHandler = StringCodec{}
)

// OnRead implements InboundHandler.
func (StringCodec) OnRead(ctx *Context, msg any) error {
	b, ok := msg.(taint.Bytes)
	if !ok {
		return fmt.Errorf("minette: string codec got %T", msg)
	}
	return ctx.FireRead(taint.StringOf(b))
}

// OnWrite implements OutboundHandler.
func (StringCodec) OnWrite(ctx *Context, msg any) error {
	s, ok := msg.(taint.String)
	if !ok {
		return fmt.Errorf("minette: string codec cannot encode %T", msg)
	}
	return ctx.Send(s.Bytes())
}

// HTTPServerCodec decodes inbound bytes into *httpmini.Request and
// encodes outbound *httpmini.Response (Netty's HttpServerCodec).
type HTTPServerCodec struct {
	acc taint.Bytes
}

var (
	_ InboundHandler  = (*HTTPServerCodec)(nil)
	_ OutboundHandler = (*HTTPServerCodec)(nil)
)

// OnRead implements InboundHandler.
func (c *HTTPServerCodec) OnRead(ctx *Context, msg any) error {
	chunk, ok := msg.(taint.Bytes)
	if !ok {
		return fmt.Errorf("minette: http codec got %T", msg)
	}
	c.acc = c.acc.Append(chunk)
	for {
		req, consumed, err := httpmini.ParseRequestBytes(c.acc)
		if errors.Is(err, httpmini.ErrIncomplete) {
			return nil
		}
		if err != nil {
			return err
		}
		c.acc = c.acc.Slice(consumed, c.acc.Len())
		if err := ctx.FireRead(req); err != nil {
			return err
		}
	}
}

// OnWrite implements OutboundHandler.
func (c *HTTPServerCodec) OnWrite(ctx *Context, msg any) error {
	resp, ok := msg.(*httpmini.Response)
	if !ok {
		return fmt.Errorf("minette: http server codec cannot encode %T", msg)
	}
	return ctx.Send(httpmini.EncodeResponse(resp))
}

// HTTPClientCodec is the client-side mirror: encodes *httpmini.Request,
// decodes *httpmini.Response.
type HTTPClientCodec struct {
	acc taint.Bytes
}

var (
	_ InboundHandler  = (*HTTPClientCodec)(nil)
	_ OutboundHandler = (*HTTPClientCodec)(nil)
)

// OnRead implements InboundHandler.
func (c *HTTPClientCodec) OnRead(ctx *Context, msg any) error {
	chunk, ok := msg.(taint.Bytes)
	if !ok {
		return fmt.Errorf("minette: http codec got %T", msg)
	}
	c.acc = c.acc.Append(chunk)
	for {
		resp, consumed, err := httpmini.ParseResponseBytes(c.acc)
		if errors.Is(err, httpmini.ErrIncomplete) {
			return nil
		}
		if err != nil {
			return err
		}
		c.acc = c.acc.Slice(consumed, c.acc.Len())
		if err := ctx.FireRead(resp); err != nil {
			return err
		}
	}
}

// OnWrite implements OutboundHandler.
func (c *HTTPClientCodec) OnWrite(ctx *Context, msg any) error {
	req, ok := msg.(*httpmini.Request)
	if !ok {
		return fmt.Errorf("minette: http client codec cannot encode %T", msg)
	}
	return ctx.Send(httpmini.EncodeRequest(req))
}
