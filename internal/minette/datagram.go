package minette

import (
	"dista/internal/core/taint"
	"dista/internal/jre"
)

// DatagramEndpoint is minette's connectionless transport (Netty's
// Bootstrap with a NioDatagramChannel): a bound datagram channel with a
// receive loop delivering packets to a sink callback.
type DatagramEndpoint struct {
	env  *Env
	dc   *jre.DatagramChannel
	done chan struct{}
}

// BindDatagram opens a datagram endpoint at addr; sink receives each
// packet with its source address.
func BindDatagram(env *Env, addr string, sink func(from string, payload taint.Bytes)) (*DatagramEndpoint, error) {
	dc, err := jre.OpenDatagramChannel(env, addr)
	if err != nil {
		return nil, err
	}
	d := &DatagramEndpoint{env: env, dc: dc, done: make(chan struct{})}
	go d.receiveLoop(sink)
	return d, nil
}

func (d *DatagramEndpoint) receiveLoop(sink func(string, taint.Bytes)) {
	defer close(d.done)
	for {
		buf := jre.AllocateBuffer(64 << 10)
		from, err := d.dc.Receive(buf)
		if err != nil {
			return
		}
		buf.Flip()
		payload := buf.Get(buf.Remaining())
		if sink != nil {
			sink(from, payload)
		}
	}
}

// Send transmits one datagram.
func (d *DatagramEndpoint) Send(payload taint.Bytes, dst string) error {
	_, err := d.dc.Send(jre.WrapBuffer(payload), dst)
	return err
}

// Addr returns the bound address.
func (d *DatagramEndpoint) Addr() string { return d.dc.Addr() }

// Close stops the endpoint and waits for the receive loop.
func (d *DatagramEndpoint) Close() error {
	err := d.dc.Close()
	<-d.done
	return err
}
