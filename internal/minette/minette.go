// Package minette is the third-party network-application framework of
// the micro benchmark (the paper evaluates three Netty-based cases:
// Netty Socket, Netty DatagramSocket, Netty HTTP). Like Netty it offers
// an event-loop channel with a handler pipeline and pluggable codecs —
// and, crucially for the paper's argument, it sits *on top of* the same
// JRE channel classes, so DisTA's JNI-level instrumentation covers it
// without framework-specific work.
package minette

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"dista/internal/core/taint"
	"dista/internal/jre"
)

// ErrChannelClosed reports a write on a closed channel.
var ErrChannelClosed = errors.New("minette: channel closed")

// InboundHandler processes messages flowing from the wire toward the
// application. Implementations call ctx.FireRead to pass (possibly
// transformed, possibly several) messages to the next handler.
type InboundHandler interface {
	OnRead(ctx *Context, msg any) error
}

// OutboundHandler processes messages flowing from the application
// toward the wire. Implementations call ctx.Send to pass the
// transformed message onward; the message reaching the wire must be a
// taint.Bytes.
type OutboundHandler interface {
	OnWrite(ctx *Context, msg any) error
}

// Handler is any pipeline element: it may implement InboundHandler,
// OutboundHandler, or both.
type Handler any

// Context locates a handler within a channel's pipeline and moves
// messages to its neighbours, like Netty's ChannelHandlerContext.
type Context struct {
	ch  *Channel
	idx int // position in the pipeline of the handler this ctx belongs to
}

// Channel returns the owning channel.
func (c *Context) Channel() *Channel { return c.ch }

// FireRead passes msg to the next inbound handler toward the
// application. A message that falls off the end of the pipeline is
// delivered to the channel's terminal sink, if any.
func (c *Context) FireRead(msg any) error {
	for i := c.idx + 1; i < len(c.ch.pipeline); i++ {
		if h, ok := c.ch.pipeline[i].(InboundHandler); ok {
			return h.OnRead(&Context{ch: c.ch, idx: i}, msg)
		}
	}
	if c.ch.sink != nil {
		c.ch.sink(c.ch, msg)
	}
	return nil
}

// Send passes msg to the next outbound handler toward the wire. When no
// outbound handler remains, msg must be taint.Bytes and is written to
// the transport.
func (c *Context) Send(msg any) error {
	for i := c.idx - 1; i >= 0; i-- {
		if h, ok := c.ch.pipeline[i].(OutboundHandler); ok {
			return h.OnWrite(&Context{ch: c.ch, idx: i}, msg)
		}
	}
	b, ok := msg.(taint.Bytes)
	if !ok {
		return fmt.Errorf("minette: message reaching the wire is %T, want taint.Bytes", msg)
	}
	return c.ch.writeWire(b)
}

// Channel is one connection with its pipeline and read event loop.
type Channel struct {
	env      *Env
	sc       *jre.SocketChannel
	pipeline []Handler
	sink     func(*Channel, any)

	wmu    sync.Mutex
	closed bool
	done   chan struct{}
}

// Env aliases the jre process environment for readability at minette
// call sites.
type Env = jre.Env

// newChannel builds a channel and starts its event loop.
func newChannel(env *Env, sc *jre.SocketChannel, pipeline []Handler, sink func(*Channel, any)) *Channel {
	ch := &Channel{env: env, sc: sc, pipeline: pipeline, sink: sink, done: make(chan struct{})}
	go ch.readLoop()
	return ch
}

// Write sends msg down the pipeline (Netty's channel.writeAndFlush).
func (ch *Channel) Write(msg any) error {
	ch.wmu.Lock()
	if ch.closed {
		ch.wmu.Unlock()
		return ErrChannelClosed
	}
	ch.wmu.Unlock()
	return (&Context{ch: ch, idx: len(ch.pipeline)}).Send(msg)
}

// writeWire is the terminal write onto the jre channel.
func (ch *Channel) writeWire(b taint.Bytes) error {
	ch.wmu.Lock()
	defer ch.wmu.Unlock()
	if ch.closed {
		return ErrChannelClosed
	}
	buf := jre.WrapBuffer(b)
	for buf.HasRemaining() {
		if _, err := ch.sc.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// readLoop pumps wire bytes into the pipeline as taint.Bytes events.
func (ch *Channel) readLoop() {
	defer close(ch.done)
	for {
		buf := jre.AllocateBuffer(4096)
		n, err := ch.sc.Read(buf)
		if n > 0 {
			buf.Flip()
			chunk := buf.Get(n)
			if ferr := (&Context{ch: ch, idx: -1}).FireRead(chunk); ferr != nil {
				return
			}
		}
		if err != nil {
			if err != io.EOF {
				// Connection torn down; nothing to report to.
				_ = err
			}
			return
		}
	}
}

// Close tears the channel down and waits for the event loop to exit.
func (ch *Channel) Close() error {
	ch.wmu.Lock()
	if ch.closed {
		ch.wmu.Unlock()
		<-ch.done
		return nil
	}
	ch.closed = true
	ch.wmu.Unlock()
	err := ch.sc.Close()
	<-ch.done
	return err
}

// Env returns the channel's process environment.
func (ch *Channel) Env() *Env { return ch.env }

// Bootstrap connects client channels (Netty's Bootstrap).
type Bootstrap struct {
	env      *Env
	pipeline func() []Handler
	sink     func(*Channel, any)
}

// NewBootstrap builds a client bootstrap; pipeline constructs a fresh
// handler chain per connection, sink (optional) receives messages that
// traverse the whole inbound pipeline.
func NewBootstrap(env *Env, pipeline func() []Handler, sink func(*Channel, any)) *Bootstrap {
	return &Bootstrap{env: env, pipeline: pipeline, sink: sink}
}

// Connect opens a channel to addr.
func (b *Bootstrap) Connect(addr string) (*Channel, error) {
	sc, err := jre.OpenSocketChannel(b.env, addr)
	if err != nil {
		return nil, err
	}
	return newChannel(b.env, sc, b.pipeline(), b.sink), nil
}

// ServerBootstrap accepts server channels (Netty's ServerBootstrap).
type ServerBootstrap struct {
	env      *Env
	pipeline func() []Handler
	sink     func(*Channel, any)

	ssc  *jre.ServerSocketChannel
	mu   sync.Mutex
	kids []*Channel
	done chan struct{}
}

// NewServerBootstrap builds a server bootstrap.
func NewServerBootstrap(env *Env, pipeline func() []Handler, sink func(*Channel, any)) *ServerBootstrap {
	return &ServerBootstrap{env: env, pipeline: pipeline, sink: sink, done: make(chan struct{})}
}

// Bind starts accepting at addr.
func (s *ServerBootstrap) Bind(addr string) error {
	ssc, err := jre.OpenServerSocketChannel(s.env, addr)
	if err != nil {
		return err
	}
	s.ssc = ssc
	go s.acceptLoop()
	return nil
}

func (s *ServerBootstrap) acceptLoop() {
	defer close(s.done)
	for {
		sc, err := s.ssc.Accept()
		if err != nil {
			return
		}
		ch := newChannel(s.env, sc, s.pipeline(), s.sink)
		s.mu.Lock()
		s.kids = append(s.kids, ch)
		s.mu.Unlock()
	}
}

// Close stops accepting and closes all child channels.
func (s *ServerBootstrap) Close() error {
	if s.ssc == nil {
		return nil
	}
	err := s.ssc.Close()
	<-s.done
	s.mu.Lock()
	kids := s.kids
	s.kids = nil
	s.mu.Unlock()
	for _, ch := range kids {
		ch.Close()
	}
	return err
}
