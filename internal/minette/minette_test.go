package minette

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"dista/internal/core/taint"
	"dista/internal/core/tracker"
	"dista/internal/httpmini"
	"dista/internal/jre"
	"dista/internal/netsim"
	"dista/internal/taintmap"
)

func envs(t *testing.T, mode tracker.Mode, n int) []*jre.Env {
	t.Helper()
	net := netsim.New()
	store := taintmap.NewStore()
	out := make([]*jre.Env, n)
	for i := range out {
		name := "node" + string(rune('1'+i))
		a := tracker.New(name, mode)
		a = tracker.New(name, mode, tracker.WithTaintMap(taintmap.NewLocalClient(store, a.Tree())))
		out[i] = jre.NewEnv(net, a)
	}
	return out
}

// collector gathers sink messages.
type collector struct {
	mu   sync.Mutex
	msgs []any
	ch   chan any
}

func newCollector() *collector { return &collector{ch: make(chan any, 64)} }

func (c *collector) sink(_ *Channel, msg any) {
	c.mu.Lock()
	c.msgs = append(c.msgs, msg)
	c.mu.Unlock()
	c.ch <- msg
}

func (c *collector) wait(t *testing.T) any {
	t.Helper()
	select {
	case m := <-c.ch:
		return m
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for message")
		return nil
	}
}

// echoHandler echoes every frame back through the channel.
type echoHandler struct{}

func (echoHandler) OnRead(ctx *Context, msg any) error {
	return ctx.Channel().Write(msg)
}

func TestFramedEchoWithTaint(t *testing.T) {
	e := envs(t, tracker.ModeDista, 2)

	server := NewServerBootstrap(e[1], func() []Handler {
		return []Handler{&LengthFieldCodec{}, echoHandler{}}
	}, nil)
	if err := server.Bind("srv:1"); err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	got := newCollector()
	client := NewBootstrap(e[0], func() []Handler {
		return []Handler{&LengthFieldCodec{}}
	}, got.sink)
	ch, err := client.Connect("srv:1")
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()

	payload := taint.FromString(strings.Repeat("netty!", 1000), e[0].Agent.Source("s", "frame"))
	if err := ch.Write(payload); err != nil {
		t.Fatal(err)
	}
	msg := got.wait(t)
	b, ok := msg.(taint.Bytes)
	if !ok {
		t.Fatalf("sink got %T", msg)
	}
	if string(b.Data) != string(payload.Data) {
		t.Fatal("frame corrupted")
	}
	if !b.Union().Has("frame") {
		t.Fatal("taint lost through minette round trip")
	}
}

func TestMultipleFramesOneWrite(t *testing.T) {
	e := envs(t, tracker.ModeOff, 2)
	got := newCollector()
	server := NewServerBootstrap(e[1], func() []Handler {
		return []Handler{&LengthFieldCodec{}}
	}, got.sink)
	if err := server.Bind("srv:1"); err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	client := NewBootstrap(e[0], func() []Handler {
		return []Handler{&LengthFieldCodec{}}
	}, nil)
	ch, err := client.Connect("srv:1")
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()

	for i := 0; i < 5; i++ {
		if err := ch.Write(taint.WrapBytes([]byte{byte('a' + i)})); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		b := got.wait(t).(taint.Bytes)
		if string(b.Data) != string(rune('a'+i)) {
			t.Fatalf("frame %d = %q", i, b.Data)
		}
	}
}

func TestStringCodecStack(t *testing.T) {
	e := envs(t, tracker.ModeDista, 2)
	got := newCollector()
	server := NewServerBootstrap(e[1], func() []Handler {
		return []Handler{&LengthFieldCodec{}, StringCodec{}}
	}, got.sink)
	if err := server.Bind("srv:1"); err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	client := NewBootstrap(e[0], func() []Handler {
		return []Handler{&LengthFieldCodec{}, StringCodec{}}
	}, nil)
	ch, err := client.Connect("srv:1")
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()

	msg := taint.String{Value: "tainted text", Label: e[0].Agent.Source("s", "str")}
	if err := ch.Write(msg); err != nil {
		t.Fatal(err)
	}
	s, ok := got.wait(t).(taint.String)
	if !ok || s.Value != "tainted text" || !s.Label.Has("str") {
		t.Fatalf("got %#v", s)
	}
}

func TestHTTPCodecs(t *testing.T) {
	e := envs(t, tracker.ModeDista, 2)
	server := NewServerBootstrap(e[1], func() []Handler {
		return []Handler{&HTTPServerCodec{}, httpEcho{}}
	}, nil)
	if err := server.Bind("web:1"); err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	got := newCollector()
	client := NewBootstrap(e[0], func() []Handler {
		return []Handler{&HTTPClientCodec{}}
	}, got.sink)
	ch, err := client.Connect("web:1")
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()

	body := taint.FromString("<html>page</html>", e[0].Agent.Source("s", "http"))
	req := &httpmini.Request{Method: "POST", Path: "/page", Body: body}
	if err := ch.Write(req); err != nil {
		t.Fatal(err)
	}
	resp, ok := got.wait(t).(*httpmini.Response)
	if !ok || resp.Status != 200 {
		t.Fatalf("got %#v", resp)
	}
	if string(resp.Body.Data) != "<html>page</html>" || !resp.Body.Union().Has("http") {
		t.Fatal("http body or taint lost")
	}
}

// httpEcho answers every request with its own body.
type httpEcho struct{}

func (httpEcho) OnRead(ctx *Context, msg any) error {
	req := msg.(*httpmini.Request)
	return ctx.Channel().Write(&httpmini.Response{Status: 200, Body: req.Body})
}

func TestDatagramEndpointTaint(t *testing.T) {
	e := envs(t, tracker.ModeDista, 2)
	got := make(chan taint.Bytes, 1)
	recv, err := BindDatagram(e[1], "b:1", func(from string, p taint.Bytes) {
		got <- p
	})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	send, err := BindDatagram(e[0], "a:1", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()

	payload := taint.FromString("dgram", e[0].Agent.Source("s", "nd"))
	if err := send.Send(payload, "b:1"); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-got:
		if string(p.Data) != "dgram" || !p.Union().Has("nd") {
			t.Fatalf("payload %q label %v", p.Data, p.Union())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("datagram never arrived")
	}
}

func TestWriteAfterClose(t *testing.T) {
	e := envs(t, tracker.ModeOff, 2)
	server := NewServerBootstrap(e[1], func() []Handler { return []Handler{&LengthFieldCodec{}} }, nil)
	if err := server.Bind("srv:1"); err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client := NewBootstrap(e[0], func() []Handler { return []Handler{&LengthFieldCodec{}} }, nil)
	ch, err := client.Connect("srv:1")
	if err != nil {
		t.Fatal(err)
	}
	ch.Close()
	if err := ch.Write(taint.WrapBytes([]byte("x"))); !errors.Is(err, ErrChannelClosed) {
		t.Fatalf("err = %v, want ErrChannelClosed", err)
	}
}
