package netsim

import (
	"container/heap"
	"sync"
	"time"
)

// Clock is the fabric's notion of time. The default is the wall clock;
// tests (and any harness that wants deterministic schedules) install a
// VirtualClock, under which every time-dependent behaviour of the
// fabric — latency delivery, read deadlines — becomes an event on the
// clock's heap and fires only when the test advances it. The fabric
// never calls time.Sleep: a delay is always a scheduled event, so under
// a virtual clock nothing ever blocks on wall time.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// AfterFunc schedules f to run once d has elapsed on this clock.
	// f runs without any fabric lock held. The returned timer's Stop
	// cancels a not-yet-fired f.
	AfterFunc(d time.Duration, f func()) Timer
}

// Timer is a cancellable pending Clock callback.
type Timer interface {
	// Stop cancels the callback, reporting whether it was still pending.
	Stop() bool
}

// ---- real clock ----

// realClock is the wall-clock Clock every Network starts with.
type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{time.AfterFunc(d, f)}
}

type realTimer struct{ t *time.Timer }

func (r realTimer) Stop() bool { return r.t.Stop() }

// ---- virtual clock ----

// VirtualClock is a manually advanced event clock: Now stands still
// until Advance (or AdvanceToNext) moves it, and scheduled callbacks
// fire synchronously, in timestamp order, on the advancing goroutine.
// That makes every latency/deadline schedule deterministic — a test
// writes, observes that nothing was delivered, advances the clock, and
// observes the delivery, with no wall-clock sleeps anywhere.
//
// Safe for concurrent use; callbacks run without the clock lock held,
// so they may schedule further events or touch the fabric freely.
type VirtualClock struct {
	mu   sync.Mutex
	now  time.Time
	seq  uint64
	heap vtimerHeap
}

// NewVirtualClock returns a virtual clock starting at an arbitrary
// fixed epoch (the absolute value is meaningless; only differences
// matter to the fabric).
func NewVirtualClock() *VirtualClock {
	return &VirtualClock{now: time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)}
}

// Now returns the clock's current (frozen) time.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// AfterFunc schedules f at now+d. A non-positive d fires on the next
// Advance of any amount (not inline: the caller may hold fabric locks).
func (c *VirtualClock) AfterFunc(d time.Duration, f func()) Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d < 0 {
		d = 0
	}
	t := &vtimer{clock: c, when: c.now.Add(d), seq: c.seq, fn: f}
	c.seq++
	heap.Push(&c.heap, t)
	return t
}

// Advance moves the clock forward by d, firing every callback scheduled
// within the window in (time, insertion) order. Callbacks run with the
// clock already set to their own timestamp, so a callback that re-arms
// (the latency release chain does) schedules relative to its fire time.
func (c *VirtualClock) Advance(d time.Duration) {
	c.mu.Lock()
	target := c.now.Add(d)
	c.advanceToLocked(target)
	c.now = target
	c.mu.Unlock()
}

// AdvanceToNext jumps the clock straight to the earliest pending
// callback and fires it (plus anything scheduled for the same instant),
// reporting whether there was one. This is the "virtual time when no
// real waiter needs wall time" step: a test drains a whole latency
// schedule with a loop over AdvanceToNext.
func (c *VirtualClock) AdvanceToNext() bool {
	c.mu.Lock()
	if len(c.heap) == 0 {
		c.mu.Unlock()
		return false
	}
	target := c.heap[0].when
	c.advanceToLocked(target)
	if c.now.Before(target) {
		c.now = target
	}
	c.mu.Unlock()
	return true
}

// PendingTimers reports how many callbacks are scheduled.
func (c *VirtualClock) PendingTimers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.heap)
}

// advanceToLocked fires, in order, every timer due at or before target.
// Called with c.mu held; releases and reacquires it around callbacks.
func (c *VirtualClock) advanceToLocked(target time.Time) {
	for len(c.heap) > 0 && !c.heap[0].when.After(target) {
		t := heap.Pop(&c.heap).(*vtimer)
		if t.stopped {
			continue
		}
		t.fired = true
		if t.when.After(c.now) {
			c.now = t.when
		}
		c.mu.Unlock()
		t.fn()
		c.mu.Lock()
	}
}

type vtimer struct {
	clock   *VirtualClock
	when    time.Time
	seq     uint64
	fn      func()
	index   int // heap position, -1 once popped
	stopped bool
	fired   bool
}

// Stop cancels the timer if it has not fired.
func (t *vtimer) Stop() bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	if t.fired || t.stopped {
		return false
	}
	t.stopped = true
	if t.index >= 0 {
		heap.Remove(&t.clock.heap, t.index)
	}
	return true
}

// vtimerHeap orders timers by (when, seq) so same-instant callbacks
// fire in scheduling order — the property the determinism tests pin.
type vtimerHeap []*vtimer

func (h vtimerHeap) Len() int { return len(h) }
func (h vtimerHeap) Less(i, j int) bool {
	if !h[i].when.Equal(h[j].when) {
		return h[i].when.Before(h[j].when)
	}
	return h[i].seq < h[j].seq
}
func (h vtimerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *vtimerHeap) Push(x any) {
	t := x.(*vtimer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *vtimerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}
