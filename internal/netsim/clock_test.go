package netsim

import (
	"errors"
	"testing"
	"time"
)

// TestVirtualClockOrdering: callbacks fire in (time, insertion) order,
// each seeing the clock at its own timestamp.
func TestVirtualClockOrdering(t *testing.T) {
	vc := NewVirtualClock()
	var fired []int
	var stamps []time.Time
	note := func(id int) func() {
		return func() {
			fired = append(fired, id)
			stamps = append(stamps, vc.Now())
		}
	}
	vc.AfterFunc(30*time.Millisecond, note(3))
	vc.AfterFunc(10*time.Millisecond, note(1))
	vc.AfterFunc(10*time.Millisecond, note(2)) // same instant: insertion order
	vc.AfterFunc(50*time.Millisecond, note(4))

	vc.Advance(40 * time.Millisecond)
	if len(fired) != 3 || fired[0] != 1 || fired[1] != 2 || fired[2] != 3 {
		t.Fatalf("fire order = %v, want [1 2 3]", fired)
	}
	if !stamps[0].Equal(stamps[1]) {
		t.Fatalf("same-instant callbacks saw different clocks: %v", stamps)
	}
	if d := stamps[2].Sub(stamps[0]); d != 20*time.Millisecond {
		t.Fatalf("stamp gap = %v, want 20ms", d)
	}
	if vc.PendingTimers() != 1 {
		t.Fatalf("pending = %d, want 1", vc.PendingTimers())
	}
	if !vc.AdvanceToNext() {
		t.Fatal("AdvanceToNext found nothing")
	}
	if len(fired) != 4 || fired[3] != 4 {
		t.Fatalf("fire order after AdvanceToNext = %v", fired)
	}
	if vc.AdvanceToNext() {
		t.Fatal("AdvanceToNext fired on an empty heap")
	}
}

// TestVirtualClockStop: a stopped timer never fires and reports whether
// it was still pending.
func TestVirtualClockStop(t *testing.T) {
	vc := NewVirtualClock()
	ran := false
	tm := vc.AfterFunc(time.Millisecond, func() { ran = true })
	if !tm.Stop() {
		t.Fatal("Stop on a pending timer reported false")
	}
	if tm.Stop() {
		t.Fatal("second Stop reported true")
	}
	vc.Advance(time.Second)
	if ran {
		t.Fatal("stopped timer fired")
	}

	fired := 0
	tm2 := vc.AfterFunc(time.Millisecond, func() { fired++ })
	vc.Advance(2 * time.Millisecond)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if tm2.Stop() {
		t.Fatal("Stop after firing reported true")
	}
}

// TestVirtualClockReentrantArm: a callback may schedule further events
// (the latency release chain does); events landing inside the current
// Advance window fire within the same Advance.
func TestVirtualClockReentrantArm(t *testing.T) {
	vc := NewVirtualClock()
	var seq []string
	vc.AfterFunc(10*time.Millisecond, func() {
		seq = append(seq, "first")
		vc.AfterFunc(5*time.Millisecond, func() { seq = append(seq, "chained") })
	})
	vc.Advance(20 * time.Millisecond)
	if len(seq) != 2 || seq[0] != "first" || seq[1] != "chained" {
		t.Fatalf("seq = %v, want [first chained]", seq)
	}
}

// TestVirtualClockDeadline: a read deadline on a virtual clock fires
// exactly when advanced past, with no wall-clock wait.
func TestVirtualClockDeadline(t *testing.T) {
	n := New()
	vc := n.UseVirtualClock()
	a, _ := n.Pipe()

	a.SetReadDeadline(vc.Now().Add(10 * time.Millisecond))
	readErr := make(chan error, 1)
	go func() {
		_, err := a.Read(make([]byte, 1))
		readErr <- err
	}()
	select {
	case err := <-readErr:
		t.Fatalf("read returned before the deadline: %v", err)
	case <-time.After(10 * time.Millisecond): // wall time; clock is frozen
	}
	vc.Advance(10 * time.Millisecond)
	select {
	case err := <-readErr:
		if !errors.Is(err, ErrDeadline) {
			t.Fatalf("read error = %v, want ErrDeadline", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("deadline did not wake the reader")
	}
}
