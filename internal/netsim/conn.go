package netsim

import (
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// connBufferCap bounds each direction's in-flight buffer, providing the
// backpressure a real TCP window would. Writers block when the peer is
// not reading.
const connBufferCap = 1 << 18 // 256 KiB

// halfPipe is one direction of a stream connection.
type halfPipe struct {
	mu   sync.Mutex
	cond *sync.Cond
	// buf holds the unread bytes as a window into arr; arr is the
	// backing array, kept across drains so a steady-state exchange
	// settles into zero allocations (content is bounded by
	// connBufferCap, so retaining it is cheap).
	buf         []byte
	arr         []byte // len 0; full capacity backing store for buf
	writeClosed bool   // no more data will arrive
	readClosed  bool   // reader is gone; writes fail
	failErr     error  // connection reset/failed: both sides see this

	deadline time.Time   // read deadline; zero = none
	dlTimer  *time.Timer // wakes waiters when the deadline passes
}

func newHalfPipe() *halfPipe {
	h := &halfPipe{}
	h.cond = sync.NewCond(&h.mu)
	return h
}

func (h *halfPipe) write(b []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	total := 0
	for len(b) > 0 {
		for len(h.buf) >= connBufferCap && !h.readClosed && !h.writeClosed && h.failErr == nil {
			h.cond.Wait()
		}
		if h.failErr != nil {
			return total, h.failErr
		}
		if h.readClosed || h.writeClosed {
			return total, ErrClosed
		}
		space := connBufferCap - len(h.buf)
		if space > len(b) {
			space = len(b)
		}
		h.ensureRoomLocked(space)
		h.buf = append(h.buf, b[:space]...)
		b = b[space:]
		total += space
		h.cond.Broadcast()
	}
	return total, nil
}

// ensureRoomLocked makes the backing array able to take n more bytes
// without append reallocating: compact the unread window back to the
// front of arr when the spare tail is short, and grow arr (doubling,
// capped at connBufferCap) only when the content genuinely does not
// fit. This is what keeps the write path allocation-free once a
// connection has warmed up.
func (h *halfPipe) ensureRoomLocked(n int) {
	if cap(h.buf)-len(h.buf) >= n {
		return
	}
	need := len(h.buf) + n
	if cap(h.arr) < need {
		newCap := cap(h.arr) * 2
		if newCap < 1024 {
			newCap = 1024
		}
		for newCap < need {
			newCap *= 2
		}
		if newCap > connBufferCap && need <= connBufferCap {
			newCap = connBufferCap
		}
		h.arr = make([]byte, 0, newCap)
	}
	// Compact: slide the unread bytes to the front of arr. copy is a
	// memmove, so the overlapping same-array case is fine.
	nbuf := h.arr[:len(h.buf)]
	copy(nbuf, h.buf)
	h.buf = nbuf
}

// deadlineExpiredLocked reports whether a set read deadline has passed.
func (h *halfPipe) deadlineExpiredLocked() bool {
	return !h.deadline.IsZero() && !time.Now().Before(h.deadline)
}

func (h *halfPipe) read(b []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for len(h.buf) == 0 && !h.writeClosed && !h.readClosed &&
		h.failErr == nil && !h.deadlineExpiredLocked() {
		h.cond.Wait()
	}
	if h.failErr != nil {
		return 0, h.failErr
	}
	if h.readClosed {
		return 0, ErrClosed
	}
	if len(h.buf) == 0 {
		if h.writeClosed { // drained
			return 0, io.EOF
		}
		return 0, ErrDeadline
	}
	n := copy(b, h.buf)
	h.buf = h.buf[n:]
	if len(h.buf) == 0 {
		// Fully drained: rewind the window to the front of the backing
		// array instead of dropping it, so the next write reuses it.
		h.buf = h.arr
	}
	h.cond.Broadcast()
	return n, nil
}

// setReadDeadline installs (or clears, with the zero time) the read
// deadline and arms a timer to wake blocked readers when it passes.
func (h *halfPipe) setReadDeadline(t time.Time) {
	h.mu.Lock()
	h.deadline = t
	if h.dlTimer != nil {
		h.dlTimer.Stop()
		h.dlTimer = nil
	}
	if !t.IsZero() {
		if d := time.Until(t); d <= 0 {
			h.cond.Broadcast()
		} else {
			h.dlTimer = time.AfterFunc(d, func() {
				h.mu.Lock()
				h.cond.Broadcast()
				h.mu.Unlock()
			})
		}
	}
	h.mu.Unlock()
}

// fail poisons the pipe: readers and writers on both ends observe err
// from now on (a connection reset).
func (h *halfPipe) fail(err error) {
	h.mu.Lock()
	if h.failErr == nil {
		h.failErr = err
	}
	h.cond.Broadcast()
	h.mu.Unlock()
}

func (h *halfPipe) closeWrite() {
	h.mu.Lock()
	h.writeClosed = true
	h.cond.Broadcast()
	h.mu.Unlock()
}

func (h *halfPipe) closeRead() {
	h.mu.Lock()
	h.readClosed = true
	h.cond.Broadcast()
	h.mu.Unlock()
}

// Conn is a reliable, ordered duplex byte stream between two hosts —
// the TCP analogue. It is safe for one concurrent reader and one
// concurrent writer per direction.
type Conn struct {
	net        *Network
	localAddr  string
	remoteAddr string
	in         *halfPipe // peer -> us
	out        *halfPipe // us -> peer
	closeOnce  sync.Once

	dead    atomic.Bool                  // closed or reset; stall waits check it
	corrupt atomic.Pointer[func([]byte)] // write-side corruption hook
}

// newConnPair builds both ends of a connection.
func newConnPair(n *Network, addrA, addrB string) (*Conn, *Conn) {
	ab := newHalfPipe()
	ba := newHalfPipe()
	a := &Conn{net: n, localAddr: addrA, remoteAddr: addrB, in: ba, out: ab}
	b := &Conn{net: n, localAddr: addrB, remoteAddr: addrA, in: ab, out: ba}
	return a, b
}

// Read reads available bytes into b, blocking until data arrives, the
// peer half-closes (io.EOF once drained), the read deadline passes
// (ErrDeadline), or the Conn closes.
func (c *Conn) Read(b []byte) (int, error) {
	if len(b) == 0 {
		return 0, nil
	}
	return c.in.read(b)
}

// Write writes all of b, blocking on backpressure. Partial writes only
// happen on error. Configured faults apply here: a stalled network
// freezes the write, a partition fails it with ErrPartitioned, and the
// reset coin may kill the connection (ErrReset).
func (c *Conn) Write(b []byte) (int, error) {
	if c.net.faulty.Load() {
		if err := c.net.writeFaults(c); err != nil {
			return 0, err
		}
	}
	if fp := c.corrupt.Load(); fp != nil {
		// Corrupt a private copy: the caller's buffer is not ours to
		// scribble on.
		dup := make([]byte, len(b))
		copy(dup, b)
		(*fp)(dup)
		b = dup
	}
	c.net.delay()
	n, err := c.out.write(b)
	c.net.streamBytes.Add(int64(n))
	return n, err
}

// Close shuts down both directions. The peer sees io.EOF after draining
// buffered data; its writes fail.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		c.dead.Store(true)
		c.out.closeWrite()
		c.in.closeRead()
		c.net.wakeStalled()
	})
	return nil
}

// Reset hard-kills the connection the way a TCP RST does: both ends
// observe ErrReset on every subsequent read and write, with no EOF
// grace for buffered data.
func (c *Conn) Reset() {
	c.dead.Store(true)
	c.in.fail(ErrReset)
	c.out.fail(ErrReset)
	c.net.wakeStalled()
}

// SetReadDeadline makes reads fail with ErrDeadline once t passes; the
// zero time clears it. It mirrors net.Conn's method so deadline-aware
// servers run unchanged over the simulated network.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.in.setReadDeadline(t)
	return nil
}

// SetCorruptor installs fn as this connection's write-side corruption
// hook: every written payload is copied and fn may mutate the copy
// before it enters the stream. nil removes the hook. Corruption models
// a faulty link or peer, for testing protocol robustness.
func (c *Conn) SetCorruptor(fn func(p []byte)) {
	if fn == nil {
		c.corrupt.Store(nil)
		return
	}
	c.corrupt.Store(&fn)
}

// CloseWrite half-closes the outgoing direction only (like shutdown(SHUT_WR)).
func (c *Conn) CloseWrite() {
	c.out.closeWrite()
}

// LocalAddr returns the connection's local address string.
func (c *Conn) LocalAddr() string { return c.localAddr }

// RemoteAddr returns the peer's address string.
func (c *Conn) RemoteAddr() string { return c.remoteAddr }

var (
	_ io.ReadWriteCloser = (*Conn)(nil)
)
