package netsim

import (
	"io"
	"sync"
)

// connBufferCap bounds each direction's in-flight buffer, providing the
// backpressure a real TCP window would. Writers block when the peer is
// not reading.
const connBufferCap = 1 << 18 // 256 KiB

// halfPipe is one direction of a stream connection.
type halfPipe struct {
	mu          sync.Mutex
	cond        *sync.Cond
	buf         []byte
	writeClosed bool // no more data will arrive
	readClosed  bool // reader is gone; writes fail
}

func newHalfPipe() *halfPipe {
	h := &halfPipe{}
	h.cond = sync.NewCond(&h.mu)
	return h
}

func (h *halfPipe) write(b []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	total := 0
	for len(b) > 0 {
		for len(h.buf) >= connBufferCap && !h.readClosed && !h.writeClosed {
			h.cond.Wait()
		}
		if h.readClosed || h.writeClosed {
			return total, ErrClosed
		}
		space := connBufferCap - len(h.buf)
		if space > len(b) {
			space = len(b)
		}
		h.buf = append(h.buf, b[:space]...)
		b = b[space:]
		total += space
		h.cond.Broadcast()
	}
	return total, nil
}

func (h *halfPipe) read(b []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for len(h.buf) == 0 && !h.writeClosed && !h.readClosed {
		h.cond.Wait()
	}
	if h.readClosed {
		return 0, ErrClosed
	}
	if len(h.buf) == 0 { // writeClosed and drained
		return 0, io.EOF
	}
	n := copy(b, h.buf)
	h.buf = h.buf[n:]
	if len(h.buf) == 0 {
		h.buf = nil
	}
	h.cond.Broadcast()
	return n, nil
}

func (h *halfPipe) closeWrite() {
	h.mu.Lock()
	h.writeClosed = true
	h.cond.Broadcast()
	h.mu.Unlock()
}

func (h *halfPipe) closeRead() {
	h.mu.Lock()
	h.readClosed = true
	h.cond.Broadcast()
	h.mu.Unlock()
}

// Conn is a reliable, ordered duplex byte stream between two hosts —
// the TCP analogue. It is safe for one concurrent reader and one
// concurrent writer per direction.
type Conn struct {
	net        *Network
	localAddr  string
	remoteAddr string
	in         *halfPipe // peer -> us
	out        *halfPipe // us -> peer
	closeOnce  sync.Once
}

// newConnPair builds both ends of a connection.
func newConnPair(n *Network, addrA, addrB string) (*Conn, *Conn) {
	ab := newHalfPipe()
	ba := newHalfPipe()
	a := &Conn{net: n, localAddr: addrA, remoteAddr: addrB, in: ba, out: ab}
	b := &Conn{net: n, localAddr: addrB, remoteAddr: addrA, in: ab, out: ba}
	return a, b
}

// Read reads available bytes into b, blocking until data arrives, the
// peer half-closes (io.EOF once drained), or the Conn closes.
func (c *Conn) Read(b []byte) (int, error) {
	if len(b) == 0 {
		return 0, nil
	}
	return c.in.read(b)
}

// Write writes all of b, blocking on backpressure. Partial writes only
// happen on error.
func (c *Conn) Write(b []byte) (int, error) {
	c.net.delay()
	n, err := c.out.write(b)
	c.net.streamBytes.Add(int64(n))
	return n, err
}

// Close shuts down both directions. The peer sees io.EOF after draining
// buffered data; its writes fail.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		c.out.closeWrite()
		c.in.closeRead()
	})
	return nil
}

// CloseWrite half-closes the outgoing direction only (like shutdown(SHUT_WR)).
func (c *Conn) CloseWrite() {
	c.out.closeWrite()
}

// LocalAddr returns the connection's local address string.
func (c *Conn) LocalAddr() string { return c.localAddr }

// RemoteAddr returns the peer's address string.
func (c *Conn) RemoteAddr() string { return c.remoteAddr }

var (
	_ io.ReadWriteCloser = (*Conn)(nil)
)
