package netsim

import (
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// connBufferCap bounds each direction's in-flight buffer, providing the
// backpressure a real TCP window would. Writers block when the peer is
// not reading: the free space is the writer's credit count, and a
// writer parks only when its credit reaches zero.
const connBufferCap = 1 << 18 // 256 KiB

// pendingChunk is a span of buffered bytes that latency injection is
// holding back from the reader until `at` passes on the fabric clock.
type pendingChunk struct {
	n  int
	at time.Time
}

// halfPipe is one direction of a stream connection. Delivery is
// event-driven: bytes enter buf immediately (occupying writer credit,
// so the bandwidth-delay product is modelled), but the reader may only
// consume the `ready` prefix. With zero latency ready tracks len(buf)
// and no clock events exist at all; with latency configured, spans
// queue on `pend` and a single armed clock callback per pipe releases
// them in order — never a sleeping goroutine, never a timer per write.
type halfPipe struct {
	net *Network

	mu    sync.Mutex
	rcond *sync.Cond // readers park here
	wcond *sync.Cond // writers park here (credit exhausted)
	// buf holds the unread bytes as a window into arr; arr is the
	// backing array, kept across drains so a steady-state exchange
	// settles into zero allocations (content is bounded by
	// connBufferCap, so retaining it is cheap).
	buf      []byte
	arr      []byte // len 0; full capacity backing store for buf
	ready    int    // prefix of buf the reader may consume now
	pend     []pendingChunk
	pendHead int
	relArmed bool // a release callback is scheduled for pend's head

	writeClosed bool  // no more data will arrive
	readClosed  bool  // reader is gone; writes fail
	failErr     error // connection reset/failed: both sides see this

	deadline time.Time // read deadline; zero = none
	dlTimer  Timer     // wakes waiters when the deadline passes

	onReadable func() // poller hook, invoked on not-readable -> readable edges
}

func newHalfPipe(n *Network) *halfPipe {
	h := &halfPipe{net: n}
	h.rcond = sync.NewCond(&h.mu)
	h.wcond = sync.NewCond(&h.mu)
	return h
}

// readableLocked reports whether a read would return without blocking.
func (h *halfPipe) readableLocked() bool {
	return h.ready > 0 || h.failErr != nil || h.readClosed ||
		(h.writeClosed && len(h.buf) == 0 && h.pendLenLocked() == 0)
}

func (h *halfPipe) pendLenLocked() int { return len(h.pend) - h.pendHead }

// write appends all of b, blocking on backpressure. delay > 0 holds the
// bytes back from the reader until it elapses on the fabric clock.
func (h *halfPipe) write(b []byte, delay time.Duration) (int, error) {
	h.mu.Lock()
	total := 0
	for len(b) > 0 {
		for len(h.buf) >= connBufferCap && !h.readClosed && !h.writeClosed && h.failErr == nil {
			h.wcond.Wait()
		}
		if h.failErr != nil {
			err := h.failErr
			h.mu.Unlock()
			return total, err
		}
		if h.readClosed || h.writeClosed {
			h.mu.Unlock()
			return total, ErrClosed
		}
		space := connBufferCap - len(h.buf)
		if space > len(b) {
			space = len(b)
		}
		h.ensureRoomLocked(space)
		wasReadable := h.readableLocked()
		h.buf = append(h.buf, b[:space]...)
		if delay > 0 || h.pendLenLocked() > 0 {
			// Order is preserved even when the delay just dropped to
			// zero: a span may never overtake one still pending.
			h.pend = append(h.pend, pendingChunk{n: space, at: h.net.clock.Now().Add(delay)})
			h.armReleaseLocked()
		} else {
			h.ready += space
		}
		b = b[space:]
		total += space
		if h.ready > 0 {
			h.rcond.Signal()
		}
		if notify := h.edgeLocked(wasReadable); notify != nil {
			h.mu.Unlock()
			notify()
			h.mu.Lock()
		}
	}
	h.mu.Unlock()
	return total, nil
}

// edgeLocked returns the poller hook when this mutation flipped the
// pipe from not-readable to readable, nil otherwise. The caller invokes
// it with h.mu released (the hook takes the poller's lock).
func (h *halfPipe) edgeLocked(wasReadable bool) func() {
	if h.onReadable != nil && !wasReadable && h.readableLocked() {
		return h.onReadable
	}
	return nil
}

// armReleaseLocked schedules the release callback for the head pending
// span, if one is not already armed. One callback per pipe, re-armed as
// the queue drains — a thousand delayed writes cost one live timer.
func (h *halfPipe) armReleaseLocked() {
	if h.relArmed || h.pendLenLocked() == 0 {
		return
	}
	h.relArmed = true
	d := h.pend[h.pendHead].at.Sub(h.net.clock.Now())
	h.net.clock.AfterFunc(d, h.release)
}

// release is the clock callback delivering due pending spans to the
// reader and re-arming for the next one.
func (h *halfPipe) release() {
	h.mu.Lock()
	h.relArmed = false
	now := h.net.clock.Now()
	wasReadable := h.readableLocked()
	for h.pendLenLocked() > 0 && !h.pend[h.pendHead].at.After(now) {
		h.ready += h.pend[h.pendHead].n
		h.pend[h.pendHead] = pendingChunk{}
		h.pendHead++
	}
	if h.pendHead == len(h.pend) {
		h.pend = h.pend[:0]
		h.pendHead = 0
	}
	h.armReleaseLocked()
	if h.ready > 0 {
		h.rcond.Signal()
	}
	notify := h.edgeLocked(wasReadable)
	h.mu.Unlock()
	if notify != nil {
		notify()
	}
}

// ensureRoomLocked makes the backing array able to take n more bytes
// without append reallocating: compact the unread window back to the
// front of arr when the spare tail is short, and grow arr (doubling,
// capped at connBufferCap) only when the content genuinely does not
// fit. This is what keeps the write path allocation-free once a
// connection has warmed up.
func (h *halfPipe) ensureRoomLocked(n int) {
	if cap(h.buf)-len(h.buf) >= n {
		return
	}
	need := len(h.buf) + n
	if cap(h.arr) < need {
		newCap := cap(h.arr) * 2
		if newCap < 1024 {
			newCap = 1024
		}
		for newCap < need {
			newCap *= 2
		}
		if newCap > connBufferCap && need <= connBufferCap {
			newCap = connBufferCap
		}
		h.arr = make([]byte, 0, newCap)
	}
	// Compact: slide the unread bytes to the front of arr. copy is a
	// memmove, so the overlapping same-array case is fine.
	nbuf := h.arr[:len(h.buf)]
	copy(nbuf, h.buf)
	h.buf = nbuf
}

// deadlineExpiredLocked reports whether a set read deadline has passed.
func (h *halfPipe) deadlineExpiredLocked() bool {
	return !h.deadline.IsZero() && !h.net.clock.Now().Before(h.deadline)
}

func (h *halfPipe) read(b []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for h.ready == 0 && !h.readClosed && h.failErr == nil &&
		!(h.writeClosed && len(h.buf) == 0 && h.pendLenLocked() == 0) &&
		!h.deadlineExpiredLocked() {
		h.rcond.Wait()
	}
	if h.failErr != nil {
		return 0, h.failErr
	}
	if h.readClosed {
		return 0, ErrClosed
	}
	if h.ready == 0 {
		if h.writeClosed && len(h.buf) == 0 && h.pendLenLocked() == 0 { // drained
			return 0, io.EOF
		}
		return 0, ErrDeadline
	}
	limit := h.ready
	if limit > len(b) {
		limit = len(b)
	}
	n := copy(b, h.buf[:limit])
	h.buf = h.buf[n:]
	h.ready -= n
	if len(h.buf) == 0 {
		// Fully drained: rewind the window to the front of the backing
		// array instead of dropping it, so the next write reuses it.
		h.buf = h.arr
	}
	h.wcond.Signal()
	return n, nil
}

// buffered reports how many bytes a read could return right now.
func (h *halfPipe) buffered() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ready
}

// setReadDeadline installs (or clears, with the zero time) the read
// deadline and arms a clock callback to wake blocked readers when it
// passes.
func (h *halfPipe) setReadDeadline(t time.Time) {
	h.mu.Lock()
	h.deadline = t
	if h.dlTimer != nil {
		h.dlTimer.Stop()
		h.dlTimer = nil
	}
	if !t.IsZero() {
		if d := t.Sub(h.net.clock.Now()); d <= 0 {
			h.rcond.Broadcast()
		} else {
			h.dlTimer = h.net.clock.AfterFunc(d, func() {
				h.mu.Lock()
				h.rcond.Broadcast()
				h.mu.Unlock()
			})
		}
	}
	h.mu.Unlock()
}

// setOnReadable installs the poller's readiness hook (nil removes it).
func (h *halfPipe) setOnReadable(fn func()) {
	h.mu.Lock()
	h.onReadable = fn
	h.mu.Unlock()
}

// fail poisons the pipe: readers and writers on both ends observe err
// from now on (a connection reset).
func (h *halfPipe) fail(err error) {
	h.mu.Lock()
	wasReadable := h.readableLocked()
	if h.failErr == nil {
		h.failErr = err
	}
	h.rcond.Broadcast()
	h.wcond.Broadcast()
	notify := h.edgeLocked(wasReadable)
	h.mu.Unlock()
	if notify != nil {
		notify()
	}
}

func (h *halfPipe) closeWrite() {
	h.mu.Lock()
	wasReadable := h.readableLocked()
	h.writeClosed = true
	h.rcond.Broadcast()
	h.wcond.Broadcast()
	notify := h.edgeLocked(wasReadable)
	h.mu.Unlock()
	if notify != nil {
		notify()
	}
}

func (h *halfPipe) closeRead() {
	h.mu.Lock()
	wasReadable := h.readableLocked()
	h.readClosed = true
	h.rcond.Broadcast()
	h.wcond.Broadcast()
	notify := h.edgeLocked(wasReadable)
	h.mu.Unlock()
	if notify != nil {
		notify()
	}
}

// Conn is a reliable, ordered duplex byte stream between two hosts —
// the TCP analogue. It is safe for one concurrent reader and one
// concurrent writer per direction.
type Conn struct {
	net        *Network
	localAddr  string
	remoteAddr string
	in         *halfPipe // peer -> us
	out        *halfPipe // us -> peer
	closeOnce  sync.Once

	dead     atomic.Bool                  // closed or reset; stall waits check it
	deadOnce sync.Once                    // closes deadCh exactly once
	deadCh   chan struct{}                // closed on Close/Reset; stalled writers select on it
	corrupt  atomic.Pointer[func([]byte)] // write-side corruption hook
}

// newConnPair builds both ends of a connection.
func newConnPair(n *Network, addrA, addrB string) (*Conn, *Conn) {
	ab := newHalfPipe(n)
	ba := newHalfPipe(n)
	a := &Conn{net: n, localAddr: addrA, remoteAddr: addrB, in: ba, out: ab, deadCh: make(chan struct{})}
	b := &Conn{net: n, localAddr: addrB, remoteAddr: addrA, in: ab, out: ba, deadCh: make(chan struct{})}
	return a, b
}

// Read reads available bytes into b, blocking until data arrives, the
// peer half-closes (io.EOF once drained), the read deadline passes
// (ErrDeadline), or the Conn closes.
func (c *Conn) Read(b []byte) (int, error) {
	if len(b) == 0 {
		return 0, nil
	}
	return c.in.read(b)
}

// Buffered reports how many bytes are deliverable to Read right now —
// bytes still held back by latency injection do not count. Poller-based
// consumers and deterministic tests use it as a non-blocking probe.
func (c *Conn) Buffered() int { return c.in.buffered() }

// Write writes all of b, blocking on backpressure. Partial writes only
// happen on error. Configured faults apply here: a stalled network
// freezes the write, a partition fails it with ErrPartitioned, and the
// reset coin may kill the connection (ErrReset). Injected latency
// (SetLatency, SetHostLatency) no longer blocks the writer: the bytes
// are queued immediately and become readable at the peer once the delay
// elapses on the fabric clock.
func (c *Conn) Write(b []byte) (int, error) {
	var delay time.Duration
	if c.net.faulty.Load() {
		var err error
		delay, err = c.net.writeFaults(c)
		if err != nil {
			return 0, err
		}
	}
	if fp := c.corrupt.Load(); fp != nil {
		// Corrupt a private copy: the caller's buffer is not ours to
		// scribble on.
		dup := make([]byte, len(b))
		copy(dup, b)
		(*fp)(dup)
		b = dup
	}
	delay += c.net.latencyNow()
	n, err := c.out.write(b, delay)
	c.net.streamBytes.Add(int64(n))
	return n, err
}

// Close shuts down both directions. The peer sees io.EOF after draining
// buffered data; its writes fail.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		c.dead.Store(true)
		c.deadOnce.Do(func() { close(c.deadCh) })
		c.out.closeWrite()
		c.in.closeRead()
	})
	return nil
}

// Reset hard-kills the connection the way a TCP RST does: both ends
// observe ErrReset on every subsequent read and write, with no EOF
// grace for buffered data.
func (c *Conn) Reset() {
	c.dead.Store(true)
	c.deadOnce.Do(func() { close(c.deadCh) })
	c.in.fail(ErrReset)
	c.out.fail(ErrReset)
}

// SetReadDeadline makes reads fail with ErrDeadline once t passes; the
// zero time clears it. It mirrors net.Conn's method so deadline-aware
// servers run unchanged over the simulated network. The deadline is
// interpreted on the network's clock (wall time unless a VirtualClock
// is installed).
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.in.setReadDeadline(t)
	return nil
}

// SetCorruptor installs fn as this connection's write-side corruption
// hook: every written payload is copied and fn may mutate the copy
// before it enters the stream. nil removes the hook. Corruption models
// a faulty link or peer, for testing protocol robustness.
func (c *Conn) SetCorruptor(fn func(p []byte)) {
	if fn == nil {
		c.corrupt.Store(nil)
		return
	}
	c.corrupt.Store(&fn)
}

// CloseWrite half-closes the outgoing direction only (like shutdown(SHUT_WR)).
func (c *Conn) CloseWrite() {
	c.out.closeWrite()
}

// LocalAddr returns the connection's local address string.
func (c *Conn) LocalAddr() string { return c.localAddr }

// RemoteAddr returns the peer's address string.
func (c *Conn) RemoteAddr() string { return c.remoteAddr }

var (
	_ io.ReadWriteCloser = (*Conn)(nil)
)
