package netsim

import (
	"errors"
	"math/rand"
	"strings"
	"time"
)

// Fault-injection plane. The simulated network can misbehave on demand
// so robustness tests exercise the failure paths the paper's Linux
// testbed would only hit by accident: partitions between hosts, stream
// connections reset mid-flight, frozen (stalled) writes, and corrupted
// bytes. All injection is driven by the Network's own seeded generator
// (see Reseed) so a failing schedule replays exactly.
//
// Hosts are the address prefix before the first ':' (the whole address
// when there is none): "tm:7" is host "tm", a dial-side synthesized
// "client-3" is host "client-3". The wildcard "*" matches any host.

// Fault errors, matched by callers with errors.Is.
var (
	ErrPartitioned = errors.New("netsim: network partitioned")
	ErrReset       = errors.New("netsim: connection reset by peer")
	ErrDeadline    = errors.New("netsim: i/o deadline exceeded")
)

// host extracts the host part of an address: everything before the
// first ':', or the whole string when there is no colon.
func host(addr string) string {
	if i := strings.IndexByte(addr, ':'); i >= 0 {
		return addr[:i]
	}
	return addr
}

// hostPair is one partitioned host pair, stored in normalized (sorted)
// order so Partition(a,b) and Partition(b,a) are the same cut.
type hostPair struct{ a, b string }

func normPair(a, b string) hostPair {
	if a > b {
		a, b = b, a
	}
	return hostPair{a, b}
}

// Reseed replaces the network's random generator with one seeded as
// given, so a fault-injection schedule (datagram loss, stream resets)
// is reproducible run to run. New starts every network at seed 1.
func (n *Network) Reseed(seed int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.rng = rand.New(rand.NewSource(seed))
}

// SetStreamResetRate configures the probability in [0,1] that any
// single stream Write resets the whole connection: both ends observe
// ErrReset on every subsequent read and write, as a TCP RST would
// cause. Zero (the default) disables injection.
func (n *Network) SetStreamResetRate(rate float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.resetRate = rate
	n.refreshFaultyLocked()
}

// SetStall freezes (true) or thaws (false) every stream write on the
// network: a frozen write blocks — it does not error — until the stall
// is lifted or its connection dies. This models a peer that is alive
// but not draining its socket, the failure mode read deadlines exist
// for.
func (n *Network) SetStall(stalled bool) {
	n.mu.Lock()
	n.stalled = stalled
	n.refreshFaultyLocked()
	n.stallCond.Broadcast()
	n.mu.Unlock()
}

// SetHostStall freezes (true) or thaws (false) every stream write
// *issued by* h's connections, while writes toward h keep flowing: the
// gray-failure shape where a member accepts requests and then never
// answers. Dials to h still succeed and its reads still drain, so the
// only external signal is silence — exactly what deadline, hedging and
// breaker logic must detect. Frozen writes block (they do not error)
// until the stall is lifted or their connection dies.
func (n *Network) SetHostStall(h string, stalled bool) {
	n.mu.Lock()
	if stalled {
		if n.stalledHosts == nil {
			n.stalledHosts = make(map[string]struct{})
		}
		n.stalledHosts[h] = struct{}{}
	} else {
		delete(n.stalledHosts, h)
	}
	n.refreshFaultyLocked()
	n.stallCond.Broadcast()
	n.mu.Unlock()
}

// SetHostLatency delays every stream write issued by host h's
// connections by d — a limping member rather than a frozen one. Zero
// clears the injection. Unlike SetLatency this is one-sided: traffic
// toward h is unaffected.
func (n *Network) SetHostLatency(h string, d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if d <= 0 {
		delete(n.hostLatency, h)
	} else {
		if n.hostLatency == nil {
			n.hostLatency = make(map[string]time.Duration)
		}
		n.hostLatency[h] = d
	}
	n.refreshFaultyLocked()
}

// Partition cuts all traffic between hosts a and b (either may be the
// "*" wildcard): stream writes across the cut fail with ErrPartitioned,
// dials across it are refused, and datagrams are silently dropped
// (counted as lost). Existing connections are not torn down — traffic
// resumes on them after Heal, like a routing failure rather than a
// crash.
func (n *Network) Partition(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.partitions == nil {
		n.partitions = make(map[hostPair]struct{})
	}
	n.partitions[normPair(a, b)] = struct{}{}
	n.refreshFaultyLocked()
}

// Heal removes the Partition cut between a and b.
func (n *Network) Heal(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.partitions, normPair(a, b))
	n.refreshFaultyLocked()
}

// HealAll removes every partition cut.
func (n *Network) HealAll() {
	n.mu.Lock()
	defer n.mu.Unlock()
	clear(n.partitions)
	n.refreshFaultyLocked()
}

// refreshFaultyLocked recomputes the fast-path flag that lets fault-free
// writes skip the injection checks entirely. Caller holds n.mu.
func (n *Network) refreshFaultyLocked() {
	n.faulty.Store(n.stalled || n.resetRate > 0 || len(n.partitions) > 0 ||
		len(n.stalledHosts) > 0 || len(n.hostLatency) > 0)
}

// hostStalledLocked reports whether writes from host h are frozen.
// Caller holds n.mu.
func (n *Network) hostStalledLocked(h string) bool {
	if n.stalled {
		return true
	}
	_, ok := n.stalledHosts[h]
	return ok
}

// partitionedLocked reports whether hosts ha and hb are across any
// configured cut. Caller holds n.mu.
func (n *Network) partitionedLocked(ha, hb string) bool {
	if len(n.partitions) == 0 {
		return false
	}
	match := func(pat, h string) bool { return pat == "*" || pat == h }
	for p := range n.partitions {
		if (match(p.a, ha) && match(p.b, hb)) || (match(p.a, hb) && match(p.b, ha)) {
			return true
		}
	}
	return false
}

// writeFaults applies the configured stream faults to one Write on c:
// it blocks while the network is stalled, fails the write across a
// partition cut, and flips the reset coin. A nil return means the write
// may proceed.
func (n *Network) writeFaults(c *Conn) error {
	local := host(c.localAddr)
	n.mu.Lock()
	for n.hostStalledLocked(local) && !c.dead.Load() {
		n.stallCond.Wait()
	}
	if c.dead.Load() {
		// The connection died while frozen; let the pipe report the
		// precise error (reset vs closed).
		n.mu.Unlock()
		return nil
	}
	if n.partitionedLocked(local, host(c.remoteAddr)) {
		n.mu.Unlock()
		return ErrPartitioned
	}
	lag := n.hostLatency[local]
	reset := n.resetRate > 0 && n.rng.Float64() < n.resetRate
	n.mu.Unlock()
	if reset {
		c.Reset()
		return ErrReset
	}
	if lag > 0 {
		time.Sleep(lag)
	}
	return nil
}

// wakeStalled unblocks writers frozen by SetStall so they can observe
// their connection dying.
func (n *Network) wakeStalled() {
	n.mu.Lock()
	n.stallCond.Broadcast()
	n.mu.Unlock()
}
