package netsim

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"time"
)

// Fault-injection plane. The simulated network can misbehave on demand
// so robustness tests exercise the failure paths the paper's Linux
// testbed would only hit by accident: partitions between hosts, stream
// connections reset mid-flight, frozen (stalled) writes, and corrupted
// bytes. All injection is driven by the Network's own seeded generator
// (see Reseed) so a failing schedule replays exactly.
//
// The plane is built for the million-connection load path: every
// configured fault lives in an atomically published snapshot, so the
// write hot path reads one pointer instead of taking the Network mutex,
// and a stalled writer parks on a per-host gate channel — un-stalling
// one host wakes only that host's writers, never the whole fabric.
//
// Hosts are the address prefix before the first ':' (the whole address
// when there is none): "tm:7" is host "tm", a dial-side synthesized
// "client-3" is host "client-3". The wildcard "*" matches any host.

// Fault errors, matched by callers with errors.Is.
var (
	ErrPartitioned = errors.New("netsim: network partitioned")
	ErrReset       = errors.New("netsim: connection reset by peer")
	ErrDeadline    = errors.New("netsim: i/o deadline exceeded")
)

// host extracts the host part of an address: everything before the
// first ':', or the whole string when there is no colon.
func host(addr string) string {
	if i := strings.IndexByte(addr, ':'); i >= 0 {
		return addr[:i]
	}
	return addr
}

// hostPair is one partitioned host pair, stored in normalized (sorted)
// order so Partition(a,b) and Partition(b,a) are the same cut.
type hostPair struct{ a, b string }

func normPair(a, b string) hostPair {
	if a > b {
		a, b = b, a
	}
	return hostPair{a, b}
}

// faultSnap is the immutable fault-plane snapshot the write path reads
// with one atomic load. Mutators build a fresh snapshot under n.mu and
// publish it; in-flight writers keep the one they loaded — exactly the
// read-copy-update shape.
type faultSnap struct {
	partitions  map[hostPair]struct{}
	stallAll    chan struct{}            // non-nil while SetStall(true); closed on thaw
	stallHosts  map[string]chan struct{} // per-host gates; closed on per-host thaw
	hostLatency map[string]time.Duration
	resetRate   float64
}

// emptySnap avoids a nil check on the hot path.
var emptySnap = &faultSnap{}

// snap returns the current fault snapshot (never nil).
func (n *Network) snap() *faultSnap {
	if s := n.faults.Load(); s != nil {
		return s
	}
	return emptySnap
}

// mutateFaults builds and publishes a new snapshot under n.mu. fn edits
// a shallow copy; maps it wants to change must be re-made (copy-on-
// write), because readers may still hold the old snapshot.
func (n *Network) mutateFaults(fn func(s *faultSnap)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	old := n.snap()
	next := *old
	fn(&next)
	n.faults.Store(&next)
	n.faulty.Store(next.stallAll != nil || next.resetRate > 0 ||
		len(next.partitions) > 0 || len(next.stallHosts) > 0 ||
		len(next.hostLatency) > 0)
}

// Reseed replaces the network's random generator with one seeded as
// given, so a fault-injection schedule (datagram loss, stream resets)
// is reproducible run to run. New starts every network at seed 1.
func (n *Network) Reseed(seed int64) {
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	n.rng = rand.New(rand.NewSource(seed))
}

// coin flips the seeded generator against rate, under the small rng
// mutex (only fault-configured paths reach it).
func (n *Network) coin(rate float64) bool {
	n.rngMu.Lock()
	hit := n.rng.Float64() < rate
	n.rngMu.Unlock()
	return hit
}

// SetStreamResetRate configures the probability in [0,1] that any
// single stream Write resets the whole connection: both ends observe
// ErrReset on every subsequent read and write, as a TCP RST would
// cause. Zero (the default) disables injection.
func (n *Network) SetStreamResetRate(rate float64) {
	n.mutateFaults(func(s *faultSnap) { s.resetRate = rate })
}

// SetStall freezes (true) or thaws (false) every stream write on the
// network: a frozen write blocks — it does not error — until the stall
// is lifted or its connection dies. This models a peer that is alive
// but not draining its socket, the failure mode read deadlines exist
// for.
func (n *Network) SetStall(stalled bool) {
	n.mutateFaults(func(s *faultSnap) {
		switch {
		case stalled && s.stallAll == nil:
			s.stallAll = make(chan struct{})
		case !stalled && s.stallAll != nil:
			close(s.stallAll)
			s.stallAll = nil
		}
	})
}

// SetHostStall freezes (true) or thaws (false) every stream write
// *issued by* h's connections, while writes toward h keep flowing: the
// gray-failure shape where a member accepts requests and then never
// answers. Dials to h still succeed and its reads still drain, so the
// only external signal is silence — exactly what deadline, hedging and
// breaker logic must detect. Frozen writes block (they do not error)
// until the stall is lifted or their connection dies.
func (n *Network) SetHostStall(h string, stalled bool) {
	n.mutateFaults(func(s *faultSnap) {
		if stalled {
			if _, ok := s.stallHosts[h]; ok {
				return
			}
			next := make(map[string]chan struct{}, len(s.stallHosts)+1)
			for k, v := range s.stallHosts {
				next[k] = v
			}
			next[h] = make(chan struct{})
			s.stallHosts = next
			return
		}
		gate, ok := s.stallHosts[h]
		if !ok {
			return
		}
		close(gate)
		next := make(map[string]chan struct{}, len(s.stallHosts)-1)
		for k, v := range s.stallHosts {
			if k != h {
				next[k] = v
			}
		}
		s.stallHosts = next
	})
}

// SetHostLatency delays every stream write issued by host h's
// connections by d — a limping member rather than a frozen one. Zero
// clears the injection. Unlike SetLatency this is one-sided: traffic
// toward h is unaffected. The writer is not blocked; delivery to the
// peer is deferred by d on the fabric clock.
func (n *Network) SetHostLatency(h string, d time.Duration) {
	n.mutateFaults(func(s *faultSnap) {
		next := make(map[string]time.Duration, len(s.hostLatency)+1)
		for k, v := range s.hostLatency {
			next[k] = v
		}
		if d <= 0 {
			delete(next, h)
		} else {
			next[h] = d
		}
		s.hostLatency = next
	})
}

// Partition cuts all traffic between hosts a and b (either may be the
// "*" wildcard): stream writes across the cut fail with ErrPartitioned,
// dials across it are refused, and datagrams are silently dropped
// (counted as lost). Existing connections are not torn down — traffic
// resumes on them after Heal, like a routing failure rather than a
// crash.
func (n *Network) Partition(a, b string) {
	n.mutateFaults(func(s *faultSnap) {
		next := make(map[hostPair]struct{}, len(s.partitions)+1)
		for k := range s.partitions {
			next[k] = struct{}{}
		}
		next[normPair(a, b)] = struct{}{}
		s.partitions = next
	})
}

// Heal removes the Partition cut between a and b.
func (n *Network) Heal(a, b string) {
	n.mutateFaults(func(s *faultSnap) {
		next := make(map[hostPair]struct{}, len(s.partitions))
		for k := range s.partitions {
			if k != normPair(a, b) {
				next[k] = struct{}{}
			}
		}
		s.partitions = next
	})
}

// HealAll removes every partition cut.
func (n *Network) HealAll() {
	n.mutateFaults(func(s *faultSnap) { s.partitions = nil })
}

// StalledWriters reports how many stream writers are currently parked
// on a stall gate. Deterministic tests use it as the condition wait
// that replaces "sleep and hope the goroutine got there" timing.
func (n *Network) StalledWriters() int {
	return int(n.stalledWriters.Load())
}

// partitioned reports whether hosts ha and hb are across any configured
// cut in snapshot s.
func (s *faultSnap) partitioned(ha, hb string) bool {
	if len(s.partitions) == 0 {
		return false
	}
	match := func(pat, h string) bool { return pat == "*" || pat == h }
	for p := range s.partitions {
		if (match(p.a, ha) && match(p.b, hb)) || (match(p.a, hb) && match(p.b, ha)) {
			return true
		}
	}
	return false
}

// stallGates returns the gates a write from host h must wait on: the
// network-wide gate and h's own (either may be nil).
func (s *faultSnap) stallGates(h string) (all, host chan struct{}) {
	return s.stallAll, s.stallHosts[h]
}

// writeFaults applies the configured stream faults to one Write on c:
// it parks while the writing host is stalled, fails the write across a
// partition cut, and flips the reset coin. It returns the extra
// one-sided latency the write's delivery must carry. A nil error means
// the write may proceed.
func (n *Network) writeFaults(c *Conn) (time.Duration, error) {
	local := host(c.localAddr)
	for {
		s := n.snap()
		all, gate := s.stallGates(local)
		if all == nil && gate == nil {
			// Not (or no longer) stalled; fall through to the other
			// faults using this same snapshot.
			if c.dead.Load() {
				// The connection died while frozen; let the pipe report
				// the precise error (reset vs closed).
				return 0, nil
			}
			if s.partitioned(local, host(c.remoteAddr)) {
				return 0, ErrPartitioned
			}
			if s.resetRate > 0 && n.coin(s.resetRate) {
				c.Reset()
				return 0, ErrReset
			}
			return s.hostLatency[local], nil
		}
		// Park on whichever gate closes first — or the connection
		// dying. A nil gate blocks forever in the select, which is
		// exactly right: only the armed gates can release the writer.
		n.stalledWriters.Add(1)
		select {
		case <-all:
		case <-gate:
		case <-c.deadCh:
		}
		n.stalledWriters.Add(-1)
		if c.dead.Load() {
			return 0, nil
		}
		// Loop: the other gate may still be armed, or the stall was
		// re-imposed; the next snapshot decides.
	}
}

// ---- atomically published scalar knobs ----

// latencyNow returns the network-wide one-way delay currently
// configured (an atomic read; the write path calls this on every op).
func (n *Network) latencyNow() time.Duration {
	return time.Duration(n.latencyNs.Load())
}

// lossRateNow returns the datagram loss probability.
func (n *Network) lossRateNow() float64 {
	return math.Float64frombits(n.lossBits.Load())
}
