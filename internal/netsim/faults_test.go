package netsim

import (
	"errors"
	"fmt"
	"io"
	"testing"
	"time"
)

// TestPartitionAndHeal cuts the client<->server link: established
// connections fail writes with ErrPartitioned, dials are refused, and
// after Heal the same connection carries traffic again.
func TestPartitionAndHeal(t *testing.T) {
	n := New()
	l, err := n.Listen("srv:1")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	conn, err := n.Dial("srv:1")
	if err != nil {
		t.Fatal(err)
	}
	peer, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := conn.Write([]byte("ok")); err != nil {
		t.Fatalf("pre-partition write: %v", err)
	}

	n.Partition("srv", "*")
	if _, err := conn.Write([]byte("cut")); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("write across cut = %v, want ErrPartitioned", err)
	}
	if _, err := peer.Write([]byte("cut")); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("server-side write across cut = %v, want ErrPartitioned", err)
	}
	if _, err := n.Dial("srv:1"); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("dial across cut = %v, want ErrPartitioned", err)
	}
	if _, err := n.DialFrom("other:9", "srv:1"); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("named dial across cut = %v, want ErrPartitioned", err)
	}

	n.Heal("srv", "*")
	if _, err := conn.Write([]byte("back")); err != nil {
		t.Fatalf("post-heal write: %v", err)
	}
	buf := make([]byte, 16)
	if m, err := peer.Read(buf); err != nil || string(buf[:m]) != "okback" {
		t.Fatalf("post-heal read = %q, %v", buf[:m], err)
	}
}

// TestPartitionNamedPair cuts only a<->b: a third host keeps talking to
// both sides.
func TestPartitionNamedPair(t *testing.T) {
	n := New()
	l, err := n.Listen("b:1")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	n.Partition("a", "b")
	if _, err := n.DialFrom("a:5", "b:1"); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("a->b dial = %v, want ErrPartitioned", err)
	}
	cc, err := n.DialFrom("c:5", "b:1")
	if err != nil {
		t.Fatalf("c->b dial across unrelated cut: %v", err)
	}
	if _, err := cc.Write([]byte("x")); err != nil {
		t.Fatalf("c->b write: %v", err)
	}
	n.HealAll()
	if _, err := n.DialFrom("a:5", "b:1"); err != nil {
		t.Fatalf("a->b dial after HealAll: %v", err)
	}
}

// TestPartitionDropsDatagrams: datagrams across a cut vanish silently
// and are counted as lost.
func TestPartitionDropsDatagrams(t *testing.T) {
	n := New()
	sa, err := n.ListenPacket("a:1")
	if err != nil {
		t.Fatal(err)
	}
	sb, err := n.ListenPacket("b:1")
	if err != nil {
		t.Fatal(err)
	}
	n.Partition("a", "b")
	if err := sa.SendTo([]byte("gone"), "b:1"); err != nil {
		t.Fatalf("send across cut should drop silently, got %v", err)
	}
	if lost := n.Stats().DatagramsLost; lost != 1 {
		t.Fatalf("DatagramsLost = %d, want 1", lost)
	}
	n.Heal("a", "b")
	if err := sa.SendTo([]byte("here"), "b:1"); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	m, from, err := sb.ReceiveFrom(buf)
	if err != nil || string(buf[:m]) != "here" || from != "a:1" {
		t.Fatalf("post-heal receive = %q from %s, %v", buf[:m], from, err)
	}
}

// TestStreamReset: with rate 1 the first write resets the connection
// and both ends observe ErrReset on reads and writes.
func TestStreamReset(t *testing.T) {
	n := New()
	a, b := n.Pipe()
	n.SetStreamResetRate(1)
	if _, err := a.Write([]byte("boom")); !errors.Is(err, ErrReset) {
		t.Fatalf("write = %v, want ErrReset", err)
	}
	if _, err := a.Write([]byte("again")); !errors.Is(err, ErrReset) {
		t.Fatalf("second write = %v, want ErrReset", err)
	}
	buf := make([]byte, 4)
	if _, err := b.Read(buf); !errors.Is(err, ErrReset) {
		t.Fatalf("peer read = %v, want ErrReset", err)
	}
	n.SetStreamResetRate(0)
	// A fresh connection is unaffected.
	c, d := n.Pipe()
	if _, err := c.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if m, err := d.Read(buf); err != nil || string(buf[:m]) != "ok" {
		t.Fatalf("fresh conn read = %q, %v", buf[:m], err)
	}
}

// waitStalledWriters blocks until at least want writers are parked on a
// stall gate — the deterministic condition wait that replaces "sleep
// and hope the goroutine got there" timing.
func waitStalledWriters(t *testing.T, n *Network, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for n.StalledWriters() < want {
		if time.Now().After(deadline) {
			t.Fatalf("stalled writers = %d, want >= %d", n.StalledWriters(), want)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestStallFreezesWrites: a stalled network blocks writes without
// erroring; lifting the stall releases them; closing a conn releases
// its frozen writer too.
func TestStallFreezesWrites(t *testing.T) {
	n := New()
	a, b := n.Pipe()
	n.SetStall(true)

	wrote := make(chan error, 1)
	go func() {
		_, err := a.Write([]byte("frozen"))
		wrote <- err
	}()
	select {
	case err := <-wrote:
		t.Fatalf("write completed during stall: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	n.SetStall(false)
	select {
	case err := <-wrote:
		if err != nil {
			t.Fatalf("thawed write: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("write still frozen after SetStall(false)")
	}
	buf := make([]byte, 16)
	if m, err := b.Read(buf); err != nil || string(buf[:m]) != "frozen" {
		t.Fatalf("read = %q, %v", buf[:m], err)
	}

	// A conn closed while frozen must release its writer.
	c, _ := n.Pipe()
	n.SetStall(true)
	wrote2 := make(chan error, 1)
	go func() {
		_, err := c.Write([]byte("doomed"))
		wrote2 <- err
	}()
	waitStalledWriters(t, n, 1)
	c.Close()
	select {
	case err := <-wrote2:
		if err == nil {
			t.Fatal("write on closed conn succeeded")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("frozen writer not released by Close")
	}
	n.SetStall(false)
}

// TestCorruptorMutatesStream: a write-side corruption hook changes the
// bytes the peer receives, without touching the caller's buffer.
func TestCorruptorMutatesStream(t *testing.T) {
	n := New()
	a, b := n.Pipe()
	a.SetCorruptor(func(p []byte) {
		for i := range p {
			p[i] ^= 0xFF
		}
	})
	orig := []byte("data")
	if _, err := a.Write(orig); err != nil {
		t.Fatal(err)
	}
	if string(orig) != "data" {
		t.Fatalf("corruptor scribbled on the caller's buffer: %q", orig)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		if buf[i] != orig[i]^0xFF {
			t.Fatalf("byte %d = %x, want %x", i, buf[i], orig[i]^0xFF)
		}
	}
	a.SetCorruptor(nil)
	if _, err := a.Write([]byte("pure")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(b, buf); err != nil || string(buf) != "pure" {
		t.Fatalf("post-removal read = %q, %v", buf, err)
	}
}

// TestReadDeadline: a blocked read fails with ErrDeadline once the
// deadline passes; clearing the deadline restores blocking reads.
func TestReadDeadline(t *testing.T) {
	n := New()
	a, b := n.Pipe()
	a.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	buf := make([]byte, 4)
	start := time.Now()
	if _, err := a.Read(buf); !errors.Is(err, ErrDeadline) {
		t.Fatalf("read = %v, want ErrDeadline", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("deadline read blocked far past the deadline")
	}
	// Data present: read succeeds even with an expired deadline armed.
	if _, err := b.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if m, err := a.Read(buf); err != nil || m != 1 {
		t.Fatalf("read with buffered data = %d, %v", m, err)
	}
	// Clearing the deadline restores blocking semantics.
	a.SetReadDeadline(time.Time{})
	got := make(chan error, 1)
	go func() {
		_, err := a.Read(buf)
		got <- err
	}()
	select {
	case err := <-got:
		t.Fatalf("cleared-deadline read returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	b.Write([]byte("y"))
	if err := <-got; err != nil {
		t.Fatal(err)
	}
}

// TestReseedReproducesLossSchedule: two networks with the same seed and
// loss rate drop exactly the same datagrams — fault schedules replay.
func TestReseedReproducesLossSchedule(t *testing.T) {
	deliveredSet := func(seed int64) map[int]bool {
		n := New()
		n.Reseed(seed)
		n.SetDatagramLoss(0.5)
		src, err := n.ListenPacket("src:1")
		if err != nil {
			t.Fatal(err)
		}
		dst, err := n.ListenPacket("dst:1")
		if err != nil {
			t.Fatal(err)
		}
		const total = 64
		for i := 0; i < total; i++ {
			if err := src.SendTo([]byte(fmt.Sprintf("%02d", i)), "dst:1"); err != nil {
				t.Fatal(err)
			}
		}
		got := make(map[int]bool)
		buf := make([]byte, 4)
		delivered := int(n.Stats().Datagrams - n.Stats().DatagramsLost)
		for i := 0; i < delivered; i++ {
			m, _, err := dst.ReceiveFrom(buf)
			if err != nil {
				t.Fatal(err)
			}
			var idx int
			fmt.Sscanf(string(buf[:m]), "%d", &idx)
			got[idx] = true
		}
		if len(got) == 0 || len(got) == total {
			t.Fatalf("loss schedule degenerate: %d of %d delivered", len(got), total)
		}
		return got
	}
	a := deliveredSet(42)
	b := deliveredSet(42)
	c := deliveredSet(43)
	if len(a) != len(b) {
		t.Fatalf("same seed delivered %d vs %d datagrams", len(a), len(b))
	}
	for k := range a {
		if !b[k] {
			t.Fatalf("same seed diverged at datagram %d", k)
		}
	}
	same := len(a) == len(c)
	if same {
		for k := range a {
			if !c[k] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced the identical schedule; Reseed is a no-op")
	}
}
