package netsim

import (
	"testing"
	"time"
)

// TestHostStallOneSided: stalling a host freezes only the writes that
// host issues — the gray-failure shape where a sick server still
// accepts connections and absorbs requests but never answers. Traffic
// *to* the stalled host keeps flowing, as do unrelated hosts.
func TestHostStallOneSided(t *testing.T) {
	n := New()
	l, err := n.Listen("srv:1")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	conn, err := n.DialFrom("cli:5", "srv:1")
	if err != nil {
		t.Fatal(err)
	}
	peer, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}

	n.SetHostStall("srv", true)

	// Client -> server still works: the stall is one-sided.
	if _, err := conn.Write([]byte("req")); err != nil {
		t.Fatalf("write toward stalled host: %v", err)
	}
	buf := make([]byte, 16)
	if m, err := peer.Read(buf); err != nil || string(buf[:m]) != "req" {
		t.Fatalf("stalled host read = %q, %v", buf[:m], err)
	}
	// New connections are still accepted — the host looks alive.
	if _, err := n.DialFrom("cli:6", "srv:1"); err != nil {
		t.Fatalf("dial to stalled host: %v", err)
	}

	// Server -> client freezes.
	wrote := make(chan error, 1)
	go func() {
		_, err := peer.Write([]byte("reply"))
		wrote <- err
	}()
	select {
	case err := <-wrote:
		t.Fatalf("stalled host's write completed: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	n.SetHostStall("srv", false)
	select {
	case err := <-wrote:
		if err != nil {
			t.Fatalf("thawed write: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("write still frozen after un-stall")
	}
	if m, err := conn.Read(buf); err != nil || string(buf[:m]) != "reply" {
		t.Fatalf("post-thaw read = %q, %v", buf[:m], err)
	}
}

// TestHostStallClosedConnReleases: closing a connection whose writer is
// frozen by a host stall releases the writer.
func TestHostStallClosedConnReleases(t *testing.T) {
	n := New()
	l, err := n.Listen("srv:1")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := n.DialFrom("cli:5", "srv:1"); err != nil {
		t.Fatal(err)
	}
	peer, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	n.SetHostStall("srv", true)
	defer n.SetHostStall("srv", false)
	wrote := make(chan error, 1)
	go func() {
		_, err := peer.Write([]byte("doomed"))
		wrote <- err
	}()
	time.Sleep(20 * time.Millisecond)
	peer.Close()
	select {
	case err := <-wrote:
		if err == nil {
			t.Fatal("write on closed conn succeeded")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("frozen writer not released by Close")
	}
}

// TestHostLatency: per-host latency delays that host's writes without
// blocking them, and clearing it restores full speed.
func TestHostLatency(t *testing.T) {
	n := New()
	l, err := n.Listen("srv:1")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	conn, err := n.DialFrom("cli:5", "srv:1")
	if err != nil {
		t.Fatal(err)
	}
	peer, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	n.SetHostLatency("srv", 30*time.Millisecond)

	start := time.Now()
	if _, err := peer.Write([]byte("slow")); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took < 25*time.Millisecond {
		t.Fatalf("lagged write took %v, want >= ~30ms", took)
	}
	// The other direction pays nothing.
	start = time.Now()
	if _, err := conn.Write([]byte("fast")); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took > 20*time.Millisecond {
		t.Fatalf("un-lagged write took %v", took)
	}

	n.SetHostLatency("srv", 0)
	start = time.Now()
	if _, err := peer.Write([]byte("quick")); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took > 20*time.Millisecond {
		t.Fatalf("write after clearing latency took %v", took)
	}
}
