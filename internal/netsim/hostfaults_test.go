package netsim

import (
	"testing"
	"time"
)

// TestHostStallOneSided: stalling a host freezes only the writes that
// host issues — the gray-failure shape where a sick server still
// accepts connections and absorbs requests but never answers. Traffic
// *to* the stalled host keeps flowing, as do unrelated hosts.
func TestHostStallOneSided(t *testing.T) {
	n := New()
	l, err := n.Listen("srv:1")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	conn, err := n.DialFrom("cli:5", "srv:1")
	if err != nil {
		t.Fatal(err)
	}
	peer, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}

	n.SetHostStall("srv", true)

	// Client -> server still works: the stall is one-sided.
	if _, err := conn.Write([]byte("req")); err != nil {
		t.Fatalf("write toward stalled host: %v", err)
	}
	buf := make([]byte, 16)
	if m, err := peer.Read(buf); err != nil || string(buf[:m]) != "req" {
		t.Fatalf("stalled host read = %q, %v", buf[:m], err)
	}
	// New connections are still accepted — the host looks alive.
	if _, err := n.DialFrom("cli:6", "srv:1"); err != nil {
		t.Fatalf("dial to stalled host: %v", err)
	}

	// Server -> client freezes.
	wrote := make(chan error, 1)
	go func() {
		_, err := peer.Write([]byte("reply"))
		wrote <- err
	}()
	select {
	case err := <-wrote:
		t.Fatalf("stalled host's write completed: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	n.SetHostStall("srv", false)
	select {
	case err := <-wrote:
		if err != nil {
			t.Fatalf("thawed write: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("write still frozen after un-stall")
	}
	if m, err := conn.Read(buf); err != nil || string(buf[:m]) != "reply" {
		t.Fatalf("post-thaw read = %q, %v", buf[:m], err)
	}
}

// TestHostStallClosedConnReleases: closing a connection whose writer is
// frozen by a host stall releases the writer.
func TestHostStallClosedConnReleases(t *testing.T) {
	n := New()
	l, err := n.Listen("srv:1")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := n.DialFrom("cli:5", "srv:1"); err != nil {
		t.Fatal(err)
	}
	peer, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	n.SetHostStall("srv", true)
	defer n.SetHostStall("srv", false)
	wrote := make(chan error, 1)
	go func() {
		_, err := peer.Write([]byte("doomed"))
		wrote <- err
	}()
	waitStalledWriters(t, n, 1)
	peer.Close()
	select {
	case err := <-wrote:
		if err == nil {
			t.Fatal("write on closed conn succeeded")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("frozen writer not released by Close")
	}
}

// TestHostLatency: per-host latency defers delivery of that host's
// writes on the fabric clock — one-sided, non-blocking, and gone the
// moment it is cleared. Runs entirely on a virtual clock.
func TestHostLatency(t *testing.T) {
	n := New()
	vc := n.UseVirtualClock()
	l, err := n.Listen("srv:1")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	conn, err := n.DialFrom("cli:5", "srv:1")
	if err != nil {
		t.Fatal(err)
	}
	peer, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	n.SetHostLatency("srv", 30*time.Millisecond)

	// The lagged host's write returns immediately but delivers late.
	if _, err := peer.Write([]byte("slow")); err != nil {
		t.Fatal(err)
	}
	if got := conn.Buffered(); got != 0 {
		t.Fatalf("lagged write deliverable before 30ms elapsed: %d bytes", got)
	}
	// The other direction pays nothing: deliverable with no advance.
	if _, err := conn.Write([]byte("fast")); err != nil {
		t.Fatal(err)
	}
	if got := peer.Buffered(); got != 4 {
		t.Fatalf("un-lagged direction deliverable = %d bytes, want 4", got)
	}
	vc.Advance(30 * time.Millisecond)
	buf := make([]byte, 16)
	if m, err := conn.Read(buf); err != nil || string(buf[:m]) != "slow" {
		t.Fatalf("lagged read = %q, %v", buf[:m], err)
	}

	n.SetHostLatency("srv", 0)
	if _, err := peer.Write([]byte("quick")); err != nil {
		t.Fatal(err)
	}
	if got := conn.Buffered(); got != 5 {
		t.Fatalf("write after clearing latency deliverable = %d, want 5", got)
	}
}
