// Package netsim provides the simulated operating-system network that
// replaces the paper's Linux testbed (DESIGN.md §1). It offers TCP-like
// reliable byte streams and UDP-like datagrams between virtual hosts
// addressed by strings, plus byte counters used by the network-overhead
// experiment (E7) and optional fault injection for robustness tests.
//
// The fabric is a shared-scheduler design sized for ~100k concurrent
// connections (DESIGN.md §12): time-dependent behaviour (latency,
// deadlines) is an event on the Network's Clock rather than a sleeping
// goroutine, readiness is delivered through per-pipe edge hooks a
// Poller multiplexes, and the fault plane publishes atomic snapshots so
// the per-write hot path never takes the Network mutex.
//
// The JNI primitive layer (internal/jni) is the only intended consumer;
// it plays the role of the NET_SEND / NET_READ system calls of the
// paper's Figure 1.
package netsim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Common error values, matched by callers with errors.Is.
var (
	ErrClosed      = errors.New("netsim: endpoint closed")
	ErrAddrInUse   = errors.New("netsim: address already in use")
	ErrConnRefused = errors.New("netsim: connection refused")
	ErrNetDown     = errors.New("netsim: network shut down")
)

// Stats holds cumulative traffic counters for a Network. All fields are
// read atomically via Network.Stats.
type Stats struct {
	StreamBytes   int64 // bytes written into stream connections
	DatagramBytes int64 // payload bytes of datagrams sent
	Datagrams     int64 // datagrams sent (before loss)
	DatagramsLost int64 // datagrams dropped by loss injection
	Conns         int64 // stream connections established
}

// Network is an in-memory fabric connecting virtual hosts. The zero
// value is not usable; construct with New. Safe for concurrent use.
type Network struct {
	mu        sync.Mutex
	listeners map[string]*Listener
	udp       map[string]*UDPSocket
	down      bool

	// clock drives every time-dependent behaviour: latency delivery and
	// read deadlines. Immutable after UseVirtualClock/SetClock, which
	// must run before traffic starts.
	clock Clock

	rngMu sync.Mutex
	rng   *rand.Rand

	// Atomically published knobs, read on every send without locking.
	latencyNs atomic.Int64  // network-wide one-way delay, nanoseconds
	lossBits  atomic.Uint64 // datagram loss rate as float64 bits

	// Fault-injection snapshot (see faults.go). faulty caches whether
	// any stream fault is configured so fault-free writes skip even the
	// snapshot load.
	faults         atomic.Pointer[faultSnap]
	faulty         atomic.Bool
	stalledWriters atomic.Int64

	streamBytes   atomic.Int64
	datagramBytes atomic.Int64
	datagrams     atomic.Int64
	datagramsLost atomic.Int64
	conns         atomic.Int64
}

// New returns an empty network on the wall clock.
func New() *Network {
	return &Network{
		listeners: make(map[string]*Listener),
		udp:       make(map[string]*UDPSocket),
		clock:     realClock{},
		rng:       rand.New(rand.NewSource(1)),
	}
}

// SetClock installs clk as the fabric's time source. Call it before any
// traffic flows (it is not synchronized against in-flight operations);
// the intended use is a test installing a VirtualClock right after New.
func (n *Network) SetClock(clk Clock) {
	n.clock = clk
}

// UseVirtualClock installs and returns a fresh VirtualClock, the
// one-line setup for deterministic latency/deadline tests.
func (n *Network) UseVirtualClock() *VirtualClock {
	vc := NewVirtualClock()
	n.clock = vc
	return vc
}

// Clock returns the fabric's time source.
func (n *Network) Clock() Clock { return n.clock }

// SetDatagramLoss configures the probability in [0,1] that a datagram is
// silently dropped, using a deterministic generator. Streams are never
// lossy (they model TCP).
func (n *Network) SetDatagramLoss(rate float64) {
	n.lossBits.Store(math.Float64bits(rate))
}

// SetLatency injects a one-way delay per send operation (stream write
// or datagram send), turning the instantaneous in-memory fabric into a
// WAN-ish one. The sender is never blocked: delivery to the peer is
// deferred by d on the fabric clock, like a link with propagation delay
// rather than a throttled NIC. Zero (the default) disables the delay.
func (n *Network) SetLatency(d time.Duration) {
	n.latencyNs.Store(int64(d))
}

// Stats returns a snapshot of the traffic counters.
func (n *Network) Stats() Stats {
	return Stats{
		StreamBytes:   n.streamBytes.Load(),
		DatagramBytes: n.datagramBytes.Load(),
		Datagrams:     n.datagrams.Load(),
		DatagramsLost: n.datagramsLost.Load(),
		Conns:         n.conns.Load(),
	}
}

// ResetStats zeroes the traffic counters.
func (n *Network) ResetStats() {
	n.streamBytes.Store(0)
	n.datagramBytes.Store(0)
	n.datagrams.Store(0)
	n.datagramsLost.Store(0)
	n.conns.Store(0)
}

// Shutdown tears the whole network down: listeners stop accepting,
// existing connections error, UDP sockets close.
func (n *Network) Shutdown() {
	n.mu.Lock()
	n.down = true
	listeners := make([]*Listener, 0, len(n.listeners))
	for _, l := range n.listeners {
		listeners = append(listeners, l)
	}
	socks := make([]*UDPSocket, 0, len(n.udp))
	for _, s := range n.udp {
		socks = append(socks, s)
	}
	n.mu.Unlock()
	for _, l := range listeners {
		l.Close()
	}
	for _, s := range socks {
		s.Close()
	}
}

// ---- stream (TCP-like) ----

// Listener accepts stream connections on one address. The backlog is a
// head-indexed ring: Accept pops in O(1) and released slots are nil'd
// so accepted connections don't linger in backing memory.
type Listener struct {
	net    *Network
	addr   string
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*Conn
	head   int
	closed bool
}

// Listen binds a stream listener to addr.
func (n *Network) Listen(addr string) (*Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return nil, ErrNetDown
	}
	if _, ok := n.listeners[addr]; ok {
		return nil, fmt.Errorf("%w: %s", ErrAddrInUse, addr)
	}
	l := &Listener{net: n, addr: addr}
	l.cond = sync.NewCond(&l.mu)
	n.listeners[addr] = l
	return l, nil
}

// Addr returns the listener's bound address.
func (l *Listener) Addr() string { return l.addr }

// backlogLenLocked is the number of queued, not-yet-accepted conns.
func (l *Listener) backlogLenLocked() int { return len(l.queue) - l.head }

// Accept blocks until a connection arrives or the listener closes.
func (l *Listener) Accept() (*Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.backlogLenLocked() == 0 && !l.closed {
		l.cond.Wait()
	}
	if l.closed {
		return nil, ErrClosed
	}
	c := l.queue[l.head]
	l.queue[l.head] = nil
	l.head++
	if l.head == len(l.queue) {
		// Drained: rewind so the slice is reused instead of growing
		// without bound across the listener's lifetime.
		l.queue = l.queue[:0]
		l.head = 0
	}
	return c, nil
}

// Close unbinds the listener, wakes pending Accepts, and resets
// connections still waiting in the backlog.
func (l *Listener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	pending := l.queue[l.head:]
	l.queue = nil
	l.head = 0
	l.cond.Broadcast()
	l.mu.Unlock()

	for _, c := range pending {
		c.Close()
	}

	l.net.mu.Lock()
	if l.net.listeners[l.addr] == l {
		delete(l.net.listeners, l.addr)
	}
	l.net.mu.Unlock()
	return nil
}

// Dial opens a stream connection to a listening address. The returned
// Conn's local address is synthesized from the dial count.
func (n *Network) Dial(addr string) (*Conn, error) {
	return n.DialFrom("", addr)
}

// DialFrom is Dial with an explicit local address, which gives the
// dialing side a stable host identity that Partition can target. An
// empty local address synthesizes one from the dial count.
func (n *Network) DialFrom(local, addr string) (*Conn, error) {
	// A synthesized local name only ever matches a "*" cut, so any
	// placeholder host gives the same partition answer.
	dialHost := "client"
	if local != "" {
		dialHost = host(local)
	}
	for {
		n.mu.Lock()
		if n.down {
			n.mu.Unlock()
			return nil, ErrNetDown
		}
		l, ok := n.listeners[addr]
		n.mu.Unlock()
		if n.snap().partitioned(dialHost, host(addr)) {
			return nil, fmt.Errorf("%w: dial %s", ErrPartitioned, addr)
		}
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrConnRefused, addr)
		}

		id := n.conns.Add(1)
		lc := local
		if lc == "" {
			lc = fmt.Sprintf("client-%d", id)
		}
		client, server := newConnPair(n, lc, addr)

		l.mu.Lock()
		if l.closed {
			// The listener closed between our lookup and here. It may
			// merely be gone — but the address may also have been
			// re-bound by a fresh listener (a server restart), in which
			// case refusing the dial would be a race the real stack
			// doesn't have. Retry the lookup; a genuinely unbound addr
			// returns ErrConnRefused on the next pass.
			l.mu.Unlock()
			client.Close()
			server.Close()
			n.conns.Add(-1)
			continue
		}
		l.queue = append(l.queue, server)
		l.cond.Signal()
		l.mu.Unlock()
		return client, nil
	}
}

// Pipe returns a connected pair of Conns without any listener, useful
// for tests and for wiring loopback transports.
func (n *Network) Pipe() (*Conn, *Conn) {
	id := n.conns.Add(1)
	a, b := newConnPair(n, fmt.Sprintf("pipe-%da", id), fmt.Sprintf("pipe-%db", id))
	return a, b
}
