// Package netsim provides the simulated operating-system network that
// replaces the paper's Linux testbed (DESIGN.md §1). It offers TCP-like
// reliable byte streams and UDP-like datagrams between virtual hosts
// addressed by strings, plus byte counters used by the network-overhead
// experiment (E7) and optional fault injection for robustness tests.
//
// The JNI primitive layer (internal/jni) is the only intended consumer;
// it plays the role of the NET_SEND / NET_READ system calls of the
// paper's Figure 1.
package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Common error values, matched by callers with errors.Is.
var (
	ErrClosed      = errors.New("netsim: endpoint closed")
	ErrAddrInUse   = errors.New("netsim: address already in use")
	ErrConnRefused = errors.New("netsim: connection refused")
	ErrNetDown     = errors.New("netsim: network shut down")
)

// Stats holds cumulative traffic counters for a Network. All fields are
// read atomically via Network.Stats.
type Stats struct {
	StreamBytes   int64 // bytes written into stream connections
	DatagramBytes int64 // payload bytes of datagrams sent
	Datagrams     int64 // datagrams sent (before loss)
	DatagramsLost int64 // datagrams dropped by loss injection
	Conns         int64 // stream connections established
}

// Network is an in-memory fabric connecting virtual hosts. The zero
// value is not usable; construct with New. Safe for concurrent use.
type Network struct {
	mu        sync.Mutex
	listeners map[string]*Listener
	udp       map[string]*UDPSocket
	down      bool
	lossRate  float64
	latency   time.Duration // one-way delay injected per send operation
	rng       *rand.Rand

	// Fault-injection state (see faults.go). faulty caches whether any
	// stream fault is configured so fault-free writes skip the checks.
	partitions   map[hostPair]struct{}
	resetRate    float64
	stalled      bool
	stalledHosts map[string]struct{}
	hostLatency  map[string]time.Duration
	stallCond    *sync.Cond
	faulty       atomic.Bool

	streamBytes   atomic.Int64
	datagramBytes atomic.Int64
	datagrams     atomic.Int64
	datagramsLost atomic.Int64
	conns         atomic.Int64
}

// New returns an empty network.
func New() *Network {
	n := &Network{
		listeners: make(map[string]*Listener),
		udp:       make(map[string]*UDPSocket),
		rng:       rand.New(rand.NewSource(1)),
	}
	n.stallCond = sync.NewCond(&n.mu)
	return n
}

// SetDatagramLoss configures the probability in [0,1] that a datagram is
// silently dropped, using a deterministic generator. Streams are never
// lossy (they model TCP).
func (n *Network) SetDatagramLoss(rate float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.lossRate = rate
}

// SetLatency injects a one-way delay per send operation (stream write
// or datagram send), turning the instantaneous in-memory fabric into a
// WAN-ish one. Zero (the default) disables the delay.
func (n *Network) SetLatency(d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.latency = d
}

// delay sleeps for the configured link latency, if any.
func (n *Network) delay() {
	n.mu.Lock()
	d := n.latency
	n.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
}

// Stats returns a snapshot of the traffic counters.
func (n *Network) Stats() Stats {
	return Stats{
		StreamBytes:   n.streamBytes.Load(),
		DatagramBytes: n.datagramBytes.Load(),
		Datagrams:     n.datagrams.Load(),
		DatagramsLost: n.datagramsLost.Load(),
		Conns:         n.conns.Load(),
	}
}

// ResetStats zeroes the traffic counters.
func (n *Network) ResetStats() {
	n.streamBytes.Store(0)
	n.datagramBytes.Store(0)
	n.datagrams.Store(0)
	n.datagramsLost.Store(0)
	n.conns.Store(0)
}

// Shutdown tears the whole network down: listeners stop accepting,
// existing connections error, UDP sockets close.
func (n *Network) Shutdown() {
	n.mu.Lock()
	n.down = true
	listeners := make([]*Listener, 0, len(n.listeners))
	for _, l := range n.listeners {
		listeners = append(listeners, l)
	}
	socks := make([]*UDPSocket, 0, len(n.udp))
	for _, s := range n.udp {
		socks = append(socks, s)
	}
	n.mu.Unlock()
	for _, l := range listeners {
		l.Close()
	}
	for _, s := range socks {
		s.Close()
	}
}

// ---- stream (TCP-like) ----

// Listener accepts stream connections on one address.
type Listener struct {
	net    *Network
	addr   string
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*Conn
	closed bool
}

// Listen binds a stream listener to addr.
func (n *Network) Listen(addr string) (*Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return nil, ErrNetDown
	}
	if _, ok := n.listeners[addr]; ok {
		return nil, fmt.Errorf("%w: %s", ErrAddrInUse, addr)
	}
	l := &Listener{net: n, addr: addr}
	l.cond = sync.NewCond(&l.mu)
	n.listeners[addr] = l
	return l, nil
}

// Addr returns the listener's bound address.
func (l *Listener) Addr() string { return l.addr }

// Accept blocks until a connection arrives or the listener closes.
func (l *Listener) Accept() (*Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.queue) == 0 && !l.closed {
		l.cond.Wait()
	}
	if l.closed {
		return nil, ErrClosed
	}
	c := l.queue[0]
	l.queue = l.queue[1:]
	return c, nil
}

// Close unbinds the listener, wakes pending Accepts, and resets
// connections still waiting in the backlog.
func (l *Listener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	pending := l.queue
	l.queue = nil
	l.cond.Broadcast()
	l.mu.Unlock()

	for _, c := range pending {
		c.Close()
	}

	l.net.mu.Lock()
	if l.net.listeners[l.addr] == l {
		delete(l.net.listeners, l.addr)
	}
	l.net.mu.Unlock()
	return nil
}

// Dial opens a stream connection to a listening address. The returned
// Conn's local address is synthesized from the dial count.
func (n *Network) Dial(addr string) (*Conn, error) {
	return n.DialFrom("", addr)
}

// DialFrom is Dial with an explicit local address, which gives the
// dialing side a stable host identity that Partition can target. An
// empty local address synthesizes one from the dial count.
func (n *Network) DialFrom(local, addr string) (*Conn, error) {
	n.mu.Lock()
	if n.down {
		n.mu.Unlock()
		return nil, ErrNetDown
	}
	l, ok := n.listeners[addr]
	// A synthesized local name only ever matches a "*" cut, so any
	// placeholder host gives the same partition answer.
	dialHost := "client"
	if local != "" {
		dialHost = host(local)
	}
	if n.partitionedLocked(dialHost, host(addr)) {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: dial %s", ErrPartitioned, addr)
	}
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrConnRefused, addr)
	}

	id := n.conns.Add(1)
	if local == "" {
		local = fmt.Sprintf("client-%d", id)
	}
	client, server := newConnPair(n, local, addr)

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		client.Close()
		server.Close()
		return nil, fmt.Errorf("%w: %s", ErrConnRefused, addr)
	}
	l.queue = append(l.queue, server)
	l.cond.Signal()
	l.mu.Unlock()
	return client, nil
}

// Pipe returns a connected pair of Conns without any listener, useful
// for tests and for wiring loopback transports.
func (n *Network) Pipe() (*Conn, *Conn) {
	id := n.conns.Add(1)
	a, b := newConnPair(n, fmt.Sprintf("pipe-%da", id), fmt.Sprintf("pipe-%db", id))
	return a, b
}
