package netsim

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestDialListenRoundTrip(t *testing.T) {
	n := New()
	l, err := n.Listen("server:1")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := l.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 5)
		if _, err := io.ReadFull(c, buf); err != nil {
			t.Error(err)
			return
		}
		if _, err := c.Write(bytes.ToUpper(buf)); err != nil {
			t.Error(err)
		}
		c.Close()
	}()

	c, err := n.Dial("server:1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "HELLO" {
		t.Fatalf("got %q", buf)
	}
	<-done
}

func TestDialUnknownAddr(t *testing.T) {
	n := New()
	if _, err := n.Dial("nowhere:1"); !errors.Is(err, ErrConnRefused) {
		t.Fatalf("err = %v, want ErrConnRefused", err)
	}
}

func TestListenAddrInUse(t *testing.T) {
	n := New()
	if _, err := n.Listen("a:1"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("a:1"); !errors.Is(err, ErrAddrInUse) {
		t.Fatalf("err = %v, want ErrAddrInUse", err)
	}
}

func TestListenerCloseReleasesAddr(t *testing.T) {
	n := New()
	l, err := n.Listen("a:1")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("a:1"); err != nil {
		t.Fatalf("address not released: %v", err)
	}
}

func TestCloseWakesAccept(t *testing.T) {
	n := New()
	l, _ := n.Listen("a:1")
	errc := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		errc <- err
	}()
	l.Close()
	if err := <-errc; !errors.Is(err, ErrClosed) {
		t.Fatalf("Accept err = %v", err)
	}
}

func TestEOFAfterPeerClose(t *testing.T) {
	n := New()
	a, b := n.Pipe()
	if _, err := a.Write([]byte("xy")); err != nil {
		t.Fatal(err)
	}
	a.Close()
	buf := make([]byte, 4)
	nr, err := b.Read(buf)
	if err != nil || nr != 2 {
		t.Fatalf("read = %d, %v", nr, err)
	}
	if _, err := b.Read(buf); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
	if _, err := b.Write([]byte("z")); !errors.Is(err, ErrClosed) {
		t.Fatalf("write to closed peer = %v", err)
	}
}

func TestHalfClose(t *testing.T) {
	n := New()
	a, b := n.Pipe()
	a.CloseWrite()
	if _, err := b.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("want EOF after half close, got %v", err)
	}
	// The other direction still works.
	go func() { b.Write([]byte("ok")) }()
	buf := make([]byte, 2)
	if _, err := io.ReadFull(a, buf); err != nil || string(buf) != "ok" {
		t.Fatalf("reverse direction broken: %q %v", buf, err)
	}
}

func TestBackpressure(t *testing.T) {
	n := New()
	a, b := n.Pipe()
	payload := make([]byte, 3*connBufferCap)
	for i := range payload {
		payload[i] = byte(i)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := a.Write(payload); err != nil {
			t.Error(err)
		}
	}()
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if !bytes.Equal(got, payload) {
		t.Fatal("stream corrupted under backpressure")
	}
}

func TestStreamByteCounter(t *testing.T) {
	n := New()
	a, b := n.Pipe()
	go io.Copy(io.Discard, b)
	if _, err := a.Write(make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	if got := n.Stats().StreamBytes; got != 1000 {
		t.Fatalf("StreamBytes = %d", got)
	}
	n.ResetStats()
	if got := n.Stats().StreamBytes; got != 0 {
		t.Fatalf("after reset StreamBytes = %d", got)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	n := New()
	a, err := n.ListenPacket("a:1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.ListenPacket("b:1")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SendTo([]byte("ping"), "b:1"); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	nr, from, err := b.ReceiveFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:nr]) != "ping" || from != "a:1" {
		t.Fatalf("got %q from %q", buf[:nr], from)
	}
}

func TestUDPBoundariesAndTruncation(t *testing.T) {
	n := New()
	a, _ := n.ListenPacket("a:1")
	b, _ := n.ListenPacket("b:1")
	a.SendTo([]byte("0123456789"), "b:1")
	a.SendTo([]byte("xy"), "b:1")
	small := make([]byte, 4)
	nr, _, err := b.ReceiveFrom(small)
	if err != nil || nr != 4 || string(small) != "0123" {
		t.Fatalf("truncated read = %q (%d) %v", small[:nr], nr, err)
	}
	nr, _, err = b.ReceiveFrom(small)
	if err != nil || string(small[:nr]) != "xy" {
		t.Fatalf("second datagram = %q %v", small[:nr], err)
	}
}

func TestUDPUnknownDestinationDropsSilently(t *testing.T) {
	n := New()
	a, _ := n.ListenPacket("a:1")
	if err := a.SendTo([]byte("gone"), "nobody:9"); err != nil {
		t.Fatalf("UDP to unknown host must not error: %v", err)
	}
	if got := n.Stats().DatagramsLost; got != 1 {
		t.Fatalf("DatagramsLost = %d", got)
	}
}

func TestUDPLossInjection(t *testing.T) {
	n := New()
	n.SetDatagramLoss(1.0)
	a, _ := n.ListenPacket("a:1")
	if _, err := n.ListenPacket("b:1"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		a.SendTo([]byte("x"), "b:1")
	}
	s := n.Stats()
	if s.DatagramsLost != 10 || s.Datagrams != 10 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestUDPCloseWakesReceive(t *testing.T) {
	n := New()
	s, _ := n.ListenPacket("a:1")
	errc := make(chan error, 1)
	go func() {
		_, _, err := s.ReceiveFrom(make([]byte, 1))
		errc <- err
	}()
	s.Close()
	if err := <-errc; !errors.Is(err, ErrClosed) {
		t.Fatalf("ReceiveFrom err = %v", err)
	}
}

func TestShutdown(t *testing.T) {
	n := New()
	l, _ := n.Listen("a:1")
	u, _ := n.ListenPacket("u:1")
	n.Shutdown()
	if _, err := n.Dial("a:1"); err == nil {
		t.Fatal("dial after shutdown must fail")
	}
	if _, err := n.Listen("b:1"); !errors.Is(err, ErrNetDown) {
		t.Fatalf("listen after shutdown = %v", err)
	}
	if _, err := l.Accept(); !errors.Is(err, ErrClosed) {
		t.Fatal("accept after shutdown must fail")
	}
	if err := u.SendTo([]byte("x"), "u:1"); !errors.Is(err, ErrClosed) {
		t.Fatalf("udp send after shutdown = %v", err)
	}
}

func TestQuickStreamPreservesBytes(t *testing.T) {
	n := New()
	f := func(chunks [][]byte) bool {
		a, b := n.Pipe()
		var want []byte
		go func() {
			for _, c := range chunks {
				a.Write(c)
			}
			a.Close()
		}()
		for _, c := range chunks {
			want = append(want, c...)
		}
		got, err := io.ReadAll(readerOf(b))
		return err == nil && bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// readerOf adapts a Conn to io.Reader translating ErrClosed to EOF for
// ReadAll convenience in the property test.
func readerOf(c *Conn) io.Reader { return c }

func TestUDPPeekLeavesQueueIntact(t *testing.T) {
	n := New()
	a, _ := n.ListenPacket("a:1")
	b, _ := n.ListenPacket("b:1")
	a.SendTo([]byte("first"), "b:1")
	a.SendTo([]byte("second"), "b:1")
	buf := make([]byte, 8)
	nr, from, err := b.PeekFrom(buf)
	if err != nil || string(buf[:nr]) != "first" || from != "a:1" {
		t.Fatalf("peek = %q %q %v", buf[:nr], from, err)
	}
	// Peeking twice sees the same datagram.
	nr, _, err = b.PeekFrom(buf)
	if err != nil || string(buf[:nr]) != "first" {
		t.Fatalf("second peek = %q %v", buf[:nr], err)
	}
	nr, _, _ = b.ReceiveFrom(buf)
	if string(buf[:nr]) != "first" {
		t.Fatal("receive after peek must consume the peeked datagram")
	}
	nr, _, _ = b.ReceiveFrom(buf)
	if string(buf[:nr]) != "second" {
		t.Fatal("queue order broken by peek")
	}
}

// TestLatencyInjection: injected latency defers delivery on the fabric
// clock without blocking the writer. Under a virtual clock the schedule
// is fully deterministic: nothing is deliverable before the delay
// elapses, everything is after.
func TestLatencyInjection(t *testing.T) {
	n := New()
	vc := n.UseVirtualClock()
	a, b := n.Pipe()

	n.SetLatency(2 * time.Millisecond)
	for i := 0; i < 20; i++ {
		if _, err := a.Write([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.Buffered(); got != 0 {
		t.Fatalf("bytes deliverable before the delay elapsed: %d", got)
	}
	// 1ms in: still in flight.
	vc.Advance(time.Millisecond)
	if got := b.Buffered(); got != 0 {
		t.Fatalf("bytes deliverable at t=1ms of a 2ms delay: %d", got)
	}
	// The writes were issued at the same instant, so one more 1ms step
	// releases all 20 spans at once.
	vc.Advance(time.Millisecond)
	if got := b.Buffered(); got != 20 {
		t.Fatalf("deliverable after delay = %d, want 20", got)
	}
	buf := make([]byte, 32)
	m, err := b.Read(buf)
	if err != nil || m != 20 {
		t.Fatalf("read = %d, %v", m, err)
	}

	// Clearing the latency makes delivery immediate again — but a span
	// written while earlier spans are still pending must not overtake
	// them (FIFO is preserved across the transition).
	n.SetLatency(5 * time.Millisecond)
	a.Write([]byte("late"))
	n.SetLatency(0)
	a.Write([]byte("rush"))
	if got := b.Buffered(); got != 0 {
		t.Fatalf("zero-delay span overtook a pending one: %d deliverable", got)
	}
	vc.Advance(5 * time.Millisecond)
	m, err = b.Read(buf)
	if err != nil || string(buf[:m]) != "laterush" {
		t.Fatalf("post-advance read = %q, %v", buf[:m], err)
	}
	if vc.PendingTimers() != 0 {
		t.Fatalf("release chain left %d timers armed", vc.PendingTimers())
	}
}
