package netsim

import "sync"

// Poller multiplexes read-readiness across many endpoints — the epoll
// analogue that makes a 50k-connection sink cost a handful of
// goroutines instead of one parked reader per connection. Registered
// endpoints are one-shot (like EPOLLONESHOT): a handle is delivered by
// Wait at most once per arming, and the consumer re-arms it after
// draining, so a chatty connection can never flood the run queue with
// duplicate entries.
//
// Readiness means "a read would not block": buffered deliverable bytes
// or datagrams, EOF, a reset, or a closed endpoint. Bytes still held
// back by latency injection do not count until their release fires.
type Poller struct {
	mu     sync.Mutex
	cond   *sync.Cond
	ready  []*PollHandle // run queue: head-indexed ring, O(1) pop
	head   int
	closed bool
}

// NewPoller returns an empty poller.
func NewPoller() *Poller {
	p := &Poller{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// PollHandle is one registered endpoint. Tag carries the consumer's
// per-connection state back out of Wait.
type PollHandle struct {
	poller *Poller
	Tag    any

	probe  func() bool // readiness probe, called without poller.mu
	detach func()      // uninstalls the endpoint's edge hook

	armed  bool // next readable edge should enqueue
	queued bool // sitting on the run queue now
}

// AddConn registers c's read side and arms it. If c is already readable
// the handle is queued immediately.
func (p *Poller) AddConn(c *Conn, tag any) *PollHandle {
	h := p.RegisterConn(c, tag)
	h.Rearm()
	return h
}

// AddUDP registers s's receive queue and arms it.
func (p *Poller) AddUDP(s *UDPSocket, tag any) *PollHandle {
	h := p.RegisterUDP(s, tag)
	h.Rearm()
	return h
}

// RegisterConn installs the readiness hook without arming: no delivery
// can happen until the caller's first Rearm. Use it when the handle
// must be published (stored where the consumer will find it) before
// the first delivery can race in.
func (p *Poller) RegisterConn(c *Conn, tag any) *PollHandle {
	return p.register(c.readReady, c.in.setOnReadable, tag)
}

// RegisterUDP is RegisterConn for a datagram socket.
func (p *Poller) RegisterUDP(s *UDPSocket, tag any) *PollHandle {
	return p.register(s.readReady, s.setOnReadable, tag)
}

func (p *Poller) register(probe func() bool, install func(func()), tag any) *PollHandle {
	h := &PollHandle{poller: p, Tag: tag, probe: probe}
	h.detach = func() { install(nil) }
	install(h.edge)
	return h
}

// edge is the endpoint's not-readable -> readable hook. It runs with
// the endpoint's lock released, so taking poller.mu here cannot form a
// lock cycle with the pipe.
func (h *PollHandle) edge() {
	p := h.poller
	p.mu.Lock()
	if h.armed && !h.queued && !p.closed {
		h.armed = false
		h.queued = true
		p.ready = append(p.ready, h)
		p.cond.Signal()
	}
	p.mu.Unlock()
}

// Rearm re-enables delivery after the consumer has drained the
// endpoint. The arm flag is raised before the readiness probe runs, so
// an edge firing between the two cannot be lost — at worst both paths
// race to enqueue and the queued flag deduplicates them.
func (h *PollHandle) Rearm() {
	p := h.poller
	p.mu.Lock()
	if p.closed || h.queued {
		p.mu.Unlock()
		return
	}
	h.armed = true
	p.mu.Unlock()
	if h.probe() {
		h.edge()
	}
}

// Close unregisters the handle from its endpoint. It does not pull an
// already-queued delivery back out of the run queue.
func (h *PollHandle) Close() {
	p := h.poller
	p.mu.Lock()
	h.armed = false
	p.mu.Unlock()
	h.detach()
}

// Wait blocks until an armed endpoint becomes readable and returns its
// handle, or returns ok=false once the poller is closed. The handle is
// disarmed on delivery; the consumer drains and calls Rearm.
func (p *Poller) Wait() (h *PollHandle, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.ready)-p.head == 0 && !p.closed {
		p.cond.Wait()
	}
	if p.closed {
		return nil, false
	}
	h = p.ready[p.head]
	p.ready[p.head] = nil
	p.head++
	if p.head == len(p.ready) {
		p.ready = p.ready[:0]
		p.head = 0
	}
	h.queued = false
	return h, true
}

// Close wakes every Wait with ok=false and stops all future deliveries.
func (p *Poller) Close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// readReady is the poller's readiness probe for a Conn.
func (c *Conn) readReady() bool {
	c.in.mu.Lock()
	r := c.in.readableLocked()
	c.in.mu.Unlock()
	return r
}

// readReady is the poller's readiness probe for a UDPSocket.
func (s *UDPSocket) readReady() bool {
	s.mu.Lock()
	r := s.readableLocked()
	s.mu.Unlock()
	return r
}
