package netsim

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"
)

// TestPollerStreamReadiness: a handle is delivered once per arming, on
// data arrival, and again after Rearm when more data lands.
func TestPollerStreamReadiness(t *testing.T) {
	n := New()
	a, b := n.Pipe()
	p := NewPoller()
	defer p.Close()

	h := p.AddConn(b, "b")
	done := make(chan *PollHandle, 1)
	go func() {
		got, ok := p.Wait()
		if !ok {
			t.Error("poller closed early")
		}
		done <- got
	}()
	select {
	case <-done:
		t.Fatal("handle delivered with nothing to read")
	case <-time.After(10 * time.Millisecond):
	}

	a.Write([]byte("ping"))
	select {
	case got := <-done:
		if got != h || got.Tag != "b" {
			t.Fatalf("wrong handle delivered: %+v", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("readable conn not delivered")
	}

	// Drain, re-arm, second round.
	buf := make([]byte, 16)
	if m, _ := b.Read(buf); string(buf[:m]) != "ping" {
		t.Fatalf("read = %q", buf[:m])
	}
	h.Rearm()
	a.Write([]byte("pong"))
	got, ok := p.Wait()
	if !ok || got != h {
		t.Fatalf("second delivery = %v, %v", got, ok)
	}
}

// TestPollerOneshotNoDuplicates: many writes before the consumer drains
// produce exactly one delivery.
func TestPollerOneshotNoDuplicates(t *testing.T) {
	n := New()
	a, b := n.Pipe()
	p := NewPoller()
	defer p.Close()
	p.AddConn(b, nil)

	for i := 0; i < 50; i++ {
		a.Write([]byte("x"))
	}
	if _, ok := p.Wait(); !ok {
		t.Fatal("no delivery")
	}
	// Nothing else may be queued: a second Wait must block.
	second := make(chan struct{})
	go func() {
		p.Wait()
		close(second)
	}()
	select {
	case <-second:
		t.Fatal("oneshot handle delivered twice")
	case <-time.After(20 * time.Millisecond):
	}
}

// TestPollerRearmRace: Rearm after data already arrived must redeliver
// immediately (the armed-before-probe ordering closes the lost-wakeup
// window).
func TestPollerRearmRace(t *testing.T) {
	n := New()
	a, b := n.Pipe()
	p := NewPoller()
	defer p.Close()
	h := p.AddConn(b, nil)

	a.Write([]byte("early"))
	if _, ok := p.Wait(); !ok {
		t.Fatal("no first delivery")
	}
	// More data lands while the handle is disarmed...
	a.Write([]byte("more"))
	// ...so Rearm must notice and redeliver without any new edge.
	h.Rearm()
	delivered := make(chan struct{})
	go func() {
		p.Wait()
		close(delivered)
	}()
	select {
	case <-delivered:
	case <-time.After(2 * time.Second):
		t.Fatal("Rearm lost the already-readable endpoint")
	}
}

// TestPollerEOFAndReset: close/reset count as readable so sinks observe
// connection teardown through the same run queue.
func TestPollerEOFAndReset(t *testing.T) {
	n := New()
	a, b := n.Pipe()
	p := NewPoller()
	defer p.Close()
	p.AddConn(b, "eof")

	a.Close()
	got, ok := p.Wait()
	if !ok || got.Tag != "eof" {
		t.Fatalf("EOF delivery = %v, %v", got, ok)
	}
	if _, err := b.Read(make([]byte, 1)); !errors.Is(err, io.EOF) {
		t.Fatalf("read after peer close = %v, want EOF", err)
	}
}

// TestPollerUDP: datagram sockets ride the same run queue.
func TestPollerUDP(t *testing.T) {
	n := New()
	a, _ := n.ListenPacket("a:1")
	b, _ := n.ListenPacket("b:1")
	p := NewPoller()
	defer p.Close()
	h := p.AddUDP(b, "udp")

	a.SendTo([]byte("dgram"), "b:1")
	got, ok := p.Wait()
	if !ok || got != h {
		t.Fatalf("UDP delivery = %v, %v", got, ok)
	}
	if b.Pending() != 1 {
		t.Fatalf("pending = %d", b.Pending())
	}
	buf := make([]byte, 16)
	m, from, err := b.ReceiveFrom(buf)
	if err != nil || string(buf[:m]) != "dgram" || from != "a:1" {
		t.Fatalf("receive = %q %q %v", buf[:m], from, err)
	}
}

// TestPollerLatencyGated: bytes held back by latency injection are not
// readable until the clock releases them.
func TestPollerLatencyGated(t *testing.T) {
	n := New()
	vc := n.UseVirtualClock()
	a, b := n.Pipe()
	p := NewPoller()
	defer p.Close()
	p.AddConn(b, nil)

	n.SetLatency(5 * time.Millisecond)
	a.Write([]byte("slow"))

	delivered := make(chan struct{})
	go func() {
		p.Wait()
		close(delivered)
	}()
	select {
	case <-delivered:
		t.Fatal("latency-held bytes delivered early")
	case <-time.After(10 * time.Millisecond):
	}
	vc.Advance(5 * time.Millisecond)
	select {
	case <-delivered:
	case <-time.After(2 * time.Second):
		t.Fatal("release did not wake the poller")
	}
}

// TestPollerManyConns: a single Wait loop fans in hundreds of
// connections and sees every payload exactly once.
func TestPollerManyConns(t *testing.T) {
	n := New()
	p := NewPoller()
	defer p.Close()

	const conns = 300
	type sess struct {
		id int
		c  *Conn
	}
	writers := make([]*Conn, conns)
	for i := 0; i < conns; i++ {
		a, b := n.Pipe()
		writers[i] = a
		p.AddConn(b, &sess{id: i, c: b})
	}
	var wg sync.WaitGroup
	for i, w := range writers {
		wg.Add(1)
		go func(i int, w *Conn) {
			defer wg.Done()
			fmt.Fprintf(w, "msg-%d", i)
		}(i, w)
	}

	seen := make(map[int]bool)
	buf := make([]byte, 32)
	for len(seen) < conns {
		h, ok := p.Wait()
		if !ok {
			t.Fatal("poller closed early")
		}
		s := h.Tag.(*sess)
		if seen[s.id] {
			t.Fatalf("conn %d delivered twice without rearm", s.id)
		}
		seen[s.id] = true
		if _, err := s.c.Read(buf); err != nil {
			t.Fatalf("read conn %d: %v", s.id, err)
		}
	}
	wg.Wait()
}
