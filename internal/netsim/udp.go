package netsim

import (
	"fmt"
	"sync"
)

// udpQueueCap bounds the per-socket receive queue; datagrams past it are
// dropped, as a real kernel buffer would.
const udpQueueCap = 1024

// datagram is one queued packet with its source address.
type datagram struct {
	payload []byte
	from    string
}

// UDPSocket is an unreliable, message-oriented endpoint — the UDP
// analogue. Datagram boundaries are preserved; reads into a short buffer
// truncate (like recvfrom).
type UDPSocket struct {
	net    *Network
	addr   string
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []datagram
	closed bool
}

// ListenPacket binds a datagram socket to addr.
func (n *Network) ListenPacket(addr string) (*UDPSocket, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return nil, ErrNetDown
	}
	if _, ok := n.udp[addr]; ok {
		return nil, fmt.Errorf("%w: %s", ErrAddrInUse, addr)
	}
	s := &UDPSocket{net: n, addr: addr}
	s.cond = sync.NewCond(&s.mu)
	n.udp[addr] = s
	return s, nil
}

// Addr returns the socket's bound address.
func (s *UDPSocket) Addr() string { return s.addr }

// SendTo sends one datagram to the socket bound at dst. Delivery is
// best-effort: unknown destinations, full queues and injected loss all
// drop silently, as UDP does.
func (s *UDPSocket) SendTo(payload []byte, dst string) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.mu.Unlock()

	n := s.net
	n.delay()
	n.datagrams.Add(1)
	n.datagramBytes.Add(int64(len(payload)))

	n.mu.Lock()
	if n.partitionedLocked(host(s.addr), host(dst)) {
		n.mu.Unlock()
		n.datagramsLost.Add(1)
		return nil
	}
	if n.lossRate > 0 && n.rng.Float64() < n.lossRate {
		n.mu.Unlock()
		n.datagramsLost.Add(1)
		return nil
	}
	peer, ok := n.udp[dst]
	n.mu.Unlock()
	if !ok {
		n.datagramsLost.Add(1)
		return nil
	}

	buf := make([]byte, len(payload))
	copy(buf, payload)
	peer.mu.Lock()
	defer peer.mu.Unlock()
	if peer.closed || len(peer.queue) >= udpQueueCap {
		n.datagramsLost.Add(1)
		return nil
	}
	peer.queue = append(peer.queue, datagram{payload: buf, from: s.addr})
	peer.cond.Signal()
	return nil
}

// ReceiveFrom blocks for the next datagram, copies up to len(b) bytes of
// it into b (truncating the rest), and returns the byte count and the
// sender address.
func (s *UDPSocket) ReceiveFrom(b []byte) (int, string, error) {
	return s.receive(b, true)
}

// PeekFrom behaves like ReceiveFrom but leaves the datagram queued —
// the semantics behind the peekData native of Table I.
func (s *UDPSocket) PeekFrom(b []byte) (int, string, error) {
	return s.receive(b, false)
}

func (s *UDPSocket) receive(b []byte, consume bool) (int, string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue) == 0 && !s.closed {
		s.cond.Wait()
	}
	if s.closed {
		return 0, "", ErrClosed
	}
	d := s.queue[0]
	if consume {
		s.queue = s.queue[1:]
	}
	n := copy(b, d.payload)
	return n, d.from, nil
}

// Close unbinds the socket and wakes pending receivers.
func (s *UDPSocket) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()

	s.net.mu.Lock()
	if s.net.udp[s.addr] == s {
		delete(s.net.udp, s.addr)
	}
	s.net.mu.Unlock()
	return nil
}
