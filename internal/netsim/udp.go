package netsim

import (
	"fmt"
	"sync"
)

// udpQueueCap bounds the per-socket receive queue; datagrams past it are
// dropped, as a real kernel buffer would.
const udpQueueCap = 1024

// datagram is one queued packet with its source address.
type datagram struct {
	payload []byte
	from    string
}

// UDPSocket is an unreliable, message-oriented endpoint — the UDP
// analogue. Datagram boundaries are preserved; reads into a short buffer
// truncate (like recvfrom). The receive queue is a head-indexed ring
// popped in O(1).
type UDPSocket struct {
	net    *Network
	addr   string
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []datagram
	head   int
	closed bool

	onReadable func() // poller hook, fired on empty -> nonempty edges
}

// ListenPacket binds a datagram socket to addr.
func (n *Network) ListenPacket(addr string) (*UDPSocket, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return nil, ErrNetDown
	}
	if _, ok := n.udp[addr]; ok {
		return nil, fmt.Errorf("%w: %s", ErrAddrInUse, addr)
	}
	s := &UDPSocket{net: n, addr: addr}
	s.cond = sync.NewCond(&s.mu)
	n.udp[addr] = s
	return s, nil
}

// Addr returns the socket's bound address.
func (s *UDPSocket) Addr() string { return s.addr }

// queueLenLocked is the number of queued, unread datagrams.
func (s *UDPSocket) queueLenLocked() int { return len(s.queue) - s.head }

// SendTo sends one datagram to the socket bound at dst. Delivery is
// best-effort: unknown destinations, full queues and injected loss all
// drop silently, as UDP does. Injected latency defers delivery on the
// fabric clock; the sender never blocks.
func (s *UDPSocket) SendTo(payload []byte, dst string) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.mu.Unlock()

	n := s.net
	n.datagrams.Add(1)
	n.datagramBytes.Add(int64(len(payload)))

	// Loss, partition and routing are decided at send time (the moment
	// the packet hits the wire); queue overflow at delivery time.
	if n.snap().partitioned(host(s.addr), host(dst)) {
		n.datagramsLost.Add(1)
		return nil
	}
	if rate := n.lossRateNow(); rate > 0 && n.coin(rate) {
		n.datagramsLost.Add(1)
		return nil
	}
	n.mu.Lock()
	peer, ok := n.udp[dst]
	n.mu.Unlock()
	if !ok {
		n.datagramsLost.Add(1)
		return nil
	}

	buf := make([]byte, len(payload))
	copy(buf, payload)
	d := datagram{payload: buf, from: s.addr}
	if delay := n.latencyNow(); delay > 0 {
		n.clock.AfterFunc(delay, func() { peer.deliver(d) })
		return nil
	}
	peer.deliver(d)
	return nil
}

// deliver enqueues d on the socket, dropping on close or overflow, and
// fires the poller hook on the empty -> nonempty edge.
func (s *UDPSocket) deliver(d datagram) {
	s.mu.Lock()
	if s.closed || s.queueLenLocked() >= udpQueueCap {
		s.mu.Unlock()
		s.net.datagramsLost.Add(1)
		return
	}
	wasEmpty := s.queueLenLocked() == 0
	s.queue = append(s.queue, d)
	s.cond.Signal()
	var notify func()
	if wasEmpty && s.onReadable != nil {
		notify = s.onReadable
	}
	s.mu.Unlock()
	if notify != nil {
		notify()
	}
}

// Pending reports how many datagrams a receive could return right now.
func (s *UDPSocket) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queueLenLocked()
}

// setOnReadable installs the poller's readiness hook (nil removes it).
func (s *UDPSocket) setOnReadable(fn func()) {
	s.mu.Lock()
	s.onReadable = fn
	s.mu.Unlock()
}

// readableLocked mirrors halfPipe.readableLocked for the poller.
func (s *UDPSocket) readableLocked() bool {
	return s.queueLenLocked() > 0 || s.closed
}

// ReceiveFrom blocks for the next datagram, copies up to len(b) bytes of
// it into b (truncating the rest), and returns the byte count and the
// sender address.
func (s *UDPSocket) ReceiveFrom(b []byte) (int, string, error) {
	return s.receive(b, true)
}

// PeekFrom behaves like ReceiveFrom but leaves the datagram queued —
// the semantics behind the peekData native of Table I.
func (s *UDPSocket) PeekFrom(b []byte) (int, string, error) {
	return s.receive(b, false)
}

func (s *UDPSocket) receive(b []byte, consume bool) (int, string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.queueLenLocked() == 0 && !s.closed {
		s.cond.Wait()
	}
	if s.closed {
		return 0, "", ErrClosed
	}
	d := s.queue[s.head]
	if consume {
		s.queue[s.head] = datagram{}
		s.head++
		if s.head == len(s.queue) {
			s.queue = s.queue[:0]
			s.head = 0
		}
	}
	n := copy(b, d.payload)
	return n, d.from, nil
}

// Close unbinds the socket and wakes pending receivers.
func (s *UDPSocket) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.cond.Broadcast()
	notify := s.onReadable
	s.mu.Unlock()
	if notify != nil {
		notify()
	}

	s.net.mu.Lock()
	if s.net.udp[s.addr] == s {
		delete(s.net.udp, s.addr)
	}
	s.net.mu.Unlock()
	return nil
}
