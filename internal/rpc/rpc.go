// Package rpc is the framed request/response layer the MapReduce/Yarn
// and HBase miniatures run on (the paper's "Yarn RPC" and "protobuf
// RPC" transports): object-serialized messages in length-prefixed
// frames over NIO SocketChannels, so every call exercises the Type 3
// instrumented path end to end.
package rpc

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"dista/internal/core/taint"
	"dista/internal/jre"
)

// maxBody bounds message sizes against corrupt frames.
const maxBody = 64 << 20

// Server dispatches calls by method name.
type Server struct {
	env      *jre.Env
	ssc      *jre.ServerSocketChannel
	mu       sync.Mutex
	handlers map[string]Handler
	done     chan struct{}
}

// Handler answers one call: it decodes the request body and returns the
// response body.
type Handler func(body taint.Bytes) (taint.Bytes, error)

// Serve starts an RPC server at addr.
func Serve(env *jre.Env, addr string) (*Server, error) {
	ssc, err := jre.OpenServerSocketChannel(env, addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		env:      env,
		ssc:      ssc,
		handlers: make(map[string]Handler),
		done:     make(chan struct{}),
	}
	go s.acceptLoop()
	return s, nil
}

// Handle registers the handler for a method name.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	s.handlers[method] = h
	s.mu.Unlock()
}

// HandleObject registers a typed handler: req is decoded into a fresh
// request object, and the returned object is encoded as the response.
func HandleObject[Req, Resp jre.Serializable](s *Server, method string, newReq func() Req, fn func(Req) (Resp, error)) {
	s.Handle(method, func(body taint.Bytes) (taint.Bytes, error) {
		req := newReq()
		if err := jre.UnmarshalObject(body, req); err != nil {
			return taint.Bytes{}, err
		}
		resp, err := fn(req)
		if err != nil {
			return taint.Bytes{}, err
		}
		return jre.MarshalObject(resp)
	})
}

func (s *Server) acceptLoop() {
	defer close(s.done)
	for {
		ch, err := s.ssc.Accept()
		if err != nil {
			return
		}
		go s.serveConn(ch)
	}
}

func (s *Server) serveConn(ch *jre.SocketChannel) {
	defer ch.Close()
	for {
		method, body, err := readFrame(ch)
		if err != nil {
			return
		}
		s.mu.Lock()
		h := s.handlers[method]
		s.mu.Unlock()
		if h == nil {
			if err := writeFrame(ch, "!error", taint.WrapBytes([]byte("rpc: no handler for "+method))); err != nil {
				return
			}
			continue
		}
		resp, err := h(body)
		if err != nil {
			if err := writeFrame(ch, "!error", taint.WrapBytes([]byte(err.Error()))); err != nil {
				return
			}
			continue
		}
		if err := writeFrame(ch, method, resp); err != nil {
			return
		}
	}
}

// Close stops the server.
func (s *Server) Close() error {
	err := s.ssc.Close()
	<-s.done
	return err
}

// Client is a connection to an RPC server; calls are serialized.
type Client struct {
	mu sync.Mutex
	ch *jre.SocketChannel
}

// Dial connects to an RPC server.
func Dial(env *jre.Env, addr string) (*Client, error) {
	ch, err := jre.OpenSocketChannel(env, addr)
	if err != nil {
		return nil, err
	}
	return &Client{ch: ch}, nil
}

// Call issues one request and waits for its response body.
func (c *Client) Call(method string, body taint.Bytes) (taint.Bytes, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.ch, method, body); err != nil {
		return taint.Bytes{}, err
	}
	gotMethod, resp, err := readFrame(c.ch)
	if err != nil {
		return taint.Bytes{}, err
	}
	if gotMethod == "!error" {
		return taint.Bytes{}, fmt.Errorf("rpc: remote error: %s", resp.Data)
	}
	if gotMethod != method {
		return taint.Bytes{}, fmt.Errorf("rpc: response for %q to a %q call", gotMethod, method)
	}
	return resp, nil
}

// CallObject issues a typed call.
func (c *Client) CallObject(method string, req, resp jre.Serializable) error {
	body, err := jre.MarshalObject(req)
	if err != nil {
		return err
	}
	out, err := c.Call(method, body)
	if err != nil {
		return err
	}
	return jre.UnmarshalObject(out, resp)
}

// Close tears the connection down.
func (c *Client) Close() error { return c.ch.Close() }

// CallOnce dials, performs one typed call, and closes.
func CallOnce(env *jre.Env, addr, method string, req, resp jre.Serializable) error {
	c, err := Dial(env, addr)
	if err != nil {
		return err
	}
	defer c.Close()
	return c.CallObject(method, req, resp)
}

// Frame format: uint16 method length | method | uint32 body length |
// body. Headers are untainted metadata; body labels ride the channel.

func writeFrame(ch *jre.SocketChannel, method string, body taint.Bytes) error {
	hdr := make([]byte, 0, 2+len(method)+4)
	hdr = binary.BigEndian.AppendUint16(hdr, uint16(len(method)))
	hdr = append(hdr, method...)
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(body.Len()))
	frame := taint.WrapBytes(hdr).Append(body)
	buf := jre.WrapBuffer(frame)
	for buf.HasRemaining() {
		if _, err := ch.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

func readFrame(ch *jre.SocketChannel) (string, taint.Bytes, error) {
	hdr, err := readExact(ch, 2)
	if err != nil {
		return "", taint.Bytes{}, err
	}
	methodLen := int(binary.BigEndian.Uint16(hdr.Data))
	method, err := readExact(ch, methodLen)
	if err != nil {
		return "", taint.Bytes{}, err
	}
	lenBuf, err := readExact(ch, 4)
	if err != nil {
		return "", taint.Bytes{}, err
	}
	bodyLen := int(binary.BigEndian.Uint32(lenBuf.Data))
	if bodyLen > maxBody {
		return "", taint.Bytes{}, fmt.Errorf("rpc: body of %d bytes exceeds limit", bodyLen)
	}
	body, err := readExact(ch, bodyLen)
	if err != nil {
		return "", taint.Bytes{}, err
	}
	return string(method.Data), body, nil
}

func readExact(ch *jre.SocketChannel, n int) (taint.Bytes, error) {
	dst := jre.AllocateBuffer(n)
	for dst.Position() < n {
		if _, err := ch.Read(dst); err != nil {
			if err == io.EOF && dst.Position() > 0 {
				return taint.Bytes{}, io.ErrUnexpectedEOF
			}
			return taint.Bytes{}, err
		}
	}
	dst.Flip()
	return dst.Get(n), nil
}
