package rpc

import (
	"strings"
	"sync"
	"testing"

	"dista/internal/core/taint"
	"dista/internal/core/tracker"
	"dista/internal/jre"
	"dista/internal/netsim"
	"dista/internal/taintmap"
)

func envs(t *testing.T, mode tracker.Mode, n int) []*jre.Env {
	t.Helper()
	net := netsim.New()
	store := taintmap.NewStore()
	out := make([]*jre.Env, n)
	for i := range out {
		name := "node" + string(rune('1'+i))
		a := tracker.New(name, mode)
		a = tracker.New(name, mode, tracker.WithTaintMap(taintmap.NewLocalClient(store, a.Tree())))
		out[i] = jre.NewEnv(net, a)
	}
	return out
}

// ping is a Serializable carrying a tainted text.
type ping struct {
	Text taint.String
}

func (p *ping) WriteTo(w *jre.DataOutputStream) error { return w.WriteString32(p.Text) }
func (p *ping) ReadFrom(r *jre.DataInputStream) error {
	var err error
	p.Text, err = r.ReadString32()
	return err
}

func TestMarshalObjectRoundTrip(t *testing.T) {
	tr := taint.NewTree()
	src := &ping{Text: taint.String{Value: "x", Label: tr.NewSource("m", "l")}}
	b, err := jre.MarshalObject(src)
	if err != nil {
		t.Fatal(err)
	}
	var dst ping
	if err := jre.UnmarshalObject(b, &dst); err != nil {
		t.Fatal(err)
	}
	if dst.Text.Value != "x" || !dst.Text.Label.Has("m") {
		t.Fatalf("got %+v", dst)
	}
}

func TestCallObjectTaintRoundTrip(t *testing.T) {
	e := envs(t, tracker.ModeDista, 2)
	srv, err := Serve(e[1], "rpc:1")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	HandleObject(srv, "echo", func() *ping { return &ping{} }, func(req *ping) (*ping, error) {
		// Echo with a server-side suffix carrying the request's taint.
		return &ping{Text: taint.String{
			Value: req.Text.Value + "-pong",
			Label: req.Text.Label,
		}}, nil
	})

	req := &ping{Text: taint.String{Value: "ping", Label: e[0].Agent.Source("s", "rpc")}}
	var resp ping
	if err := CallOnce(e[0], "rpc:1", "echo", req, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Text.Value != "ping-pong" || !resp.Text.Label.Has("rpc") {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestClientReuseAcrossCalls(t *testing.T) {
	e := envs(t, tracker.ModeDista, 2)
	srv, err := Serve(e[1], "rpc:1")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	HandleObject(srv, "upper", func() *ping { return &ping{} }, func(req *ping) (*ping, error) {
		return &ping{Text: taint.String{Value: strings.ToUpper(req.Text.Value), Label: req.Text.Label}}, nil
	})
	c, err := Dial(e[0], "rpc:1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 5; i++ {
		var resp ping
		if err := c.CallObject("upper", &ping{Text: taint.String{Value: "abc"}}, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Text.Value != "ABC" {
			t.Fatalf("call %d: %q", i, resp.Text.Value)
		}
	}
}

func TestUnknownMethodError(t *testing.T) {
	e := envs(t, tracker.ModeOff, 2)
	srv, err := Serve(e[1], "rpc:1")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var resp ping
	err = CallOnce(e[0], "rpc:1", "nope", &ping{}, &resp)
	if err == nil || !strings.Contains(err.Error(), "no handler") {
		t.Fatalf("err = %v", err)
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	e := envs(t, tracker.ModeOff, 2)
	srv, err := Serve(e[1], "rpc:1")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	HandleObject(srv, "fail", func() *ping { return &ping{} }, func(*ping) (*ping, error) {
		return nil, errFail
	})
	var resp ping
	err = CallOnce(e[0], "rpc:1", "fail", &ping{}, &resp)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
	// The connection stays usable after a handler error for persistent
	// clients.
	HandleObject(srv, "ok", func() *ping { return &ping{} }, func(p *ping) (*ping, error) { return p, nil })
	if err := CallOnce(e[0], "rpc:1", "ok", &ping{Text: taint.String{Value: "v"}}, &resp); err != nil {
		t.Fatal(err)
	}
}

var errFail = &failError{}

type failError struct{}

func (*failError) Error() string { return "boom" }

func TestConcurrentClients(t *testing.T) {
	e := envs(t, tracker.ModeDista, 2)
	srv, err := Serve(e[1], "rpc:1")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	HandleObject(srv, "id", func() *ping { return &ping{} }, func(p *ping) (*ping, error) { return p, nil })

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				var resp ping
				req := &ping{Text: taint.String{Value: strings.Repeat("x", g+1)}}
				if err := CallOnce(e[0], "rpc:1", "id", req, &resp); err != nil {
					t.Error(err)
					return
				}
				if len(resp.Text.Value) != g+1 {
					t.Errorf("goroutine %d: wrong echo", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
