// Package activemq is the mini-ActiveMQ of the evaluation (DSN'22
// Table III row 3): a network of three peer brokers distributing long
// text messages from a producer to a consumer over TCP object streams.
// Messages hop producer -> broker1 -> broker2 -> broker3 -> consumer,
// exercising multi-hop inter-node taint flow.
//
// SDT scenario (Table IV): the producer's text message (the paper's
// TomcatMessage variable) is the source; the consumer's received
// Message is the sink.
//
// SIM scenario: the producer reads a credentials file (source); the
// broker logs the connecting user (LOG.info sink).
package activemq

import (
	"fmt"
	"sync"

	"dista/internal/core/taint"
	"dista/internal/dlog"
	"dista/internal/jre"
)

// Taint point descriptors of the ActiveMQ scenarios.
const (
	// SourceText is the SDT source: the producer's text message.
	SourceText = "Producer#TextMessage"
	// SinkConsume is the SDT sink: the Message received on the consumer.
	SinkConsume = "Consumer#Message"
	// SourceCredentials is the SIM source: reading the credentials file.
	SourceCredentials = "Credentials#load"
)

// Frame kinds of the broker protocol.
const (
	kindConnect   = byte(1)
	kindPublish   = byte(2)
	kindSubscribe = byte(3)
	kindMessage   = byte(4)
	kindForward   = byte(5)
	kindSubAck    = byte(6)
)

// Message is the brokered payload (the TomcatMessage analogue).
type Message struct {
	ID    taint.Int64
	Topic taint.String
	Body  taint.String
}

// Frame is the single wire unit of the broker protocol.
type Frame struct {
	Kind  byte
	User  taint.String // CONNECT
	Topic taint.String // SUBSCRIBE
	Msg   Message      // PUBLISH / MESSAGE / FORWARD
	TTL   taint.Int32  // FORWARD hop budget
}

var _ jre.Serializable = (*Frame)(nil)

// WriteTo implements jre.Serializable.
func (f *Frame) WriteTo(w *jre.DataOutputStream) error {
	if err := w.WriteByteValue(f.Kind, taint.Taint{}); err != nil {
		return err
	}
	if err := w.WriteString32(f.User); err != nil {
		return err
	}
	if err := w.WriteString32(f.Topic); err != nil {
		return err
	}
	if err := w.WriteInt64(f.Msg.ID); err != nil {
		return err
	}
	if err := w.WriteString32(f.Msg.Topic); err != nil {
		return err
	}
	if err := w.WriteString32(f.Msg.Body); err != nil {
		return err
	}
	return w.WriteInt32(f.TTL)
}

// ReadFrom implements jre.Serializable.
func (f *Frame) ReadFrom(r *jre.DataInputStream) error {
	kind, _, err := r.ReadByteValue()
	if err != nil {
		return err
	}
	f.Kind = kind
	if f.User, err = r.ReadString32(); err != nil {
		return err
	}
	if f.Topic, err = r.ReadString32(); err != nil {
		return err
	}
	if f.Msg.ID, err = r.ReadInt64(); err != nil {
		return err
	}
	if f.Msg.Topic, err = r.ReadString32(); err != nil {
		return err
	}
	if f.Msg.Body, err = r.ReadString32(); err != nil {
		return err
	}
	f.TTL, err = r.ReadInt32()
	return err
}

// conn wraps one broker connection with a write lock.
type conn struct {
	sock *jre.Socket
	mu   sync.Mutex
	out  *jre.ObjectOutputStream
}

func (c *conn) send(f *Frame) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.out.WriteObject(f)
}

// Broker is one peer of the broker network.
type Broker struct {
	Name string
	Env  *jre.Env
	Log  *dlog.Logger

	addr     string
	forwards []string // peer broker addresses to forward publishes to
	ss       *jre.ServerSocket

	mu        sync.Mutex
	subs      map[string][]*conn // topic -> subscriber connections
	stompSubs []stompSub         // STOMP-frontend subscribers
	wsSubs    []wsSub            // STOMP-over-WebSocket subscribers
	done      chan struct{}
}

// StartBroker binds a broker at addr; forwards lists the peer brokers
// that receive FORWARD frames for every publish.
func StartBroker(name string, env *jre.Env, addr string, forwards []string) (*Broker, error) {
	ss, err := jre.ListenSocket(env, addr)
	if err != nil {
		return nil, err
	}
	b := &Broker{
		Name:     name,
		Env:      env,
		Log:      dlog.New(env.Agent),
		addr:     addr,
		forwards: forwards,
		ss:       ss,
		subs:     make(map[string][]*conn),
		done:     make(chan struct{}),
	}
	go b.acceptLoop()
	return b, nil
}

// Addr returns the broker's listen address.
func (b *Broker) Addr() string { return b.addr }

func (b *Broker) acceptLoop() {
	defer close(b.done)
	for {
		sock, err := b.ss.Accept()
		if err != nil {
			return
		}
		go b.serveConn(sock)
	}
}

func (b *Broker) serveConn(sock *jre.Socket) {
	defer sock.Close()
	c := &conn{sock: sock, out: jre.NewObjectOutputStream(sock.OutputStream())}
	oin := jre.NewObjectInputStream(sock.InputStream())
	for {
		var f Frame
		if err := oin.ReadObject(&f); err != nil {
			return
		}
		switch f.Kind {
		case kindConnect:
			// The SIM sink: the broker logs the connecting user.
			b.Log.Info("user %s connected to broker %s", f.User, b.Name)
		case kindSubscribe:
			b.mu.Lock()
			b.subs[f.Topic.Value] = append(b.subs[f.Topic.Value], c)
			b.mu.Unlock()
			if err := c.send(&Frame{Kind: kindSubAck}); err != nil {
				return
			}
		case kindPublish:
			b.route(&f.Msg, 8)
		case kindForward:
			b.route(&f.Msg, int(f.TTL.Value))
		}
	}
}

// route delivers a message to local subscribers and forwards it to the
// peer brokers while the hop budget lasts.
func (b *Broker) route(msg *Message, ttl int) {
	b.mu.Lock()
	subs := append([]*conn(nil), b.subs[msg.Topic.Value]...)
	b.mu.Unlock()
	for _, c := range subs {
		_ = c.send(&Frame{Kind: kindMessage, Msg: *msg})
	}
	b.deliverStomp(msg)
	b.deliverWS(msg)
	if ttl <= 0 {
		return
	}
	for _, peer := range b.forwards {
		if err := b.forward(msg, peer, ttl-1); err != nil {
			b.Log.Info("forward to %s failed: %v", peer, err)
		}
	}
}

// forward ships a message to one peer broker over a fresh connection.
func (b *Broker) forward(msg *Message, peer string, ttl int) error {
	sock, err := jre.DialSocket(b.Env, peer)
	if err != nil {
		return err
	}
	defer sock.Close()
	out := jre.NewObjectOutputStream(sock.OutputStream())
	return out.WriteObject(&Frame{Kind: kindForward, Msg: *msg, TTL: taint.Int32{Value: int32(ttl)}})
}

// Close stops the broker.
func (b *Broker) Close() error {
	err := b.ss.Close()
	<-b.done
	return err
}

// Producer publishes messages to one broker.
type Producer struct {
	env  *jre.Env
	conn *conn
	seq  int64
}

// ConnectProducer dials a broker and announces the user (the SIM-
// relevant CONNECT frame).
func ConnectProducer(env *jre.Env, brokerAddr string, user taint.String) (*Producer, error) {
	sock, err := jre.DialSocket(env, brokerAddr)
	if err != nil {
		return nil, err
	}
	p := &Producer{env: env, conn: &conn{sock: sock, out: jre.NewObjectOutputStream(sock.OutputStream())}}
	if err := p.conn.send(&Frame{Kind: kindConnect, User: user}); err != nil {
		sock.Close()
		return nil, err
	}
	return p, nil
}

// PublishText publishes a long text message; the body is the SDT source
// point.
func (p *Producer) PublishText(topic string, text string) (Message, error) {
	p.seq++
	msg := Message{
		ID:    taint.Int64{Value: p.seq},
		Topic: taint.String{Value: topic},
		Body: taint.String{
			Value: text,
			Label: p.env.Agent.Source(SourceText, "Message"),
		},
	}
	return msg, p.conn.send(&Frame{Kind: kindPublish, Msg: msg})
}

// PublishTainted publishes a message whose body (and its taint) the
// caller supplies — used when the payload derives from another tracked
// value such as a data-file read.
func (p *Producer) PublishTainted(topic string, body taint.String) (Message, error) {
	p.seq++
	msg := Message{
		ID:    taint.Int64{Value: p.seq},
		Topic: taint.String{Value: topic},
		Body:  body,
	}
	return msg, p.conn.send(&Frame{Kind: kindPublish, Msg: msg})
}

// Close disconnects the producer.
func (p *Producer) Close() error { return p.conn.sock.Close() }

// Consumer subscribes to a topic on one broker and receives messages.
type Consumer struct {
	env  *jre.Env
	sock *jre.Socket
	in   *jre.ObjectInputStream
}

// ConnectConsumer dials a broker and subscribes to topic.
func ConnectConsumer(env *jre.Env, brokerAddr, topic string) (*Consumer, error) {
	sock, err := jre.DialSocket(env, brokerAddr)
	if err != nil {
		return nil, err
	}
	out := jre.NewObjectOutputStream(sock.OutputStream())
	if err := out.WriteObject(&Frame{Kind: kindSubscribe, Topic: taint.String{Value: topic}}); err != nil {
		sock.Close()
		return nil, err
	}
	c := &Consumer{env: env, sock: sock, in: jre.NewObjectInputStream(sock.InputStream())}
	// Wait for the broker's acknowledgement so a publish racing with the
	// subscription cannot be missed.
	var ack Frame
	if err := c.in.ReadObject(&ack); err != nil || ack.Kind != kindSubAck {
		sock.Close()
		return nil, fmt.Errorf("activemq: subscribe not acknowledged: %v", err)
	}
	return c, nil
}

// Receive blocks for the next message and runs the SDT sink check.
func (c *Consumer) Receive() (Message, error) {
	for {
		var f Frame
		if err := c.in.ReadObject(&f); err != nil {
			return Message{}, err
		}
		if f.Kind != kindMessage {
			continue
		}
		c.env.Agent.CheckSink(SinkConsume, f.Msg.Body.Label)
		return f.Msg, nil
	}
}

// Close disconnects the consumer.
func (c *Consumer) Close() error { return c.sock.Close() }

// LoadCredentials reads a credentials file; the returned user name
// carries the SIM source taint.
func LoadCredentials(env *jre.Env, path string) (taint.String, error) {
	b, err := jre.ReadFileTainted(env, path, SourceCredentials, "cred")
	if err != nil {
		return taint.String{}, err
	}
	return taint.StringOf(b), nil
}

// BrokerChainAddrs returns the canonical three-broker chain addresses
// for a cluster id.
func BrokerChainAddrs(id string) [3]string {
	return [3]string{
		fmt.Sprintf("amq-%s-broker1:61616", id),
		fmt.Sprintf("amq-%s-broker2:61616", id),
		fmt.Sprintf("amq-%s-broker3:61616", id),
	}
}

// StartBrokerChain launches three brokers forwarding 1 -> 2 -> 3 on the
// given envs.
func StartBrokerChain(id string, envs [3]*jre.Env) ([3]*Broker, error) {
	addrs := BrokerChainAddrs(id)
	var brokers [3]*Broker
	for i := 2; i >= 0; i-- {
		var forwards []string
		if i < 2 {
			forwards = []string{addrs[i+1]}
		}
		b, err := StartBroker(fmt.Sprintf("broker%d", i+1), envs[i], addrs[i], forwards)
		if err != nil {
			for j := i + 1; j < 3; j++ {
				brokers[j].Close()
			}
			return brokers, err
		}
		brokers[i] = b
	}
	return brokers, nil
}
